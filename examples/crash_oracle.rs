//! Why PMTest's diagnostics matter: the ground-truth crash oracle.
//!
//! PMTest reasons about traces; this repository also simulates the
//! hardware, enumerating every memory image a power failure could leave
//! behind (`pmtest::pmem::crash`). This example shows the two agreeing on
//! the paper's B-Tree Bug 2: when the split node is modified without a
//! `TX_ADD`, (1) PMTest reports a missing backup, and (2) the crash-point
//! exploration engine (`pmtest::core::explore`, DESIGN.md §15) sweeps
//! every fence boundary of the recorded transaction, runs recovery against
//! each reachable image, and pins the violation to a crash point and a
//! culprit store.
//!
//! Run with: `cargo run --example crash_oracle`

use std::sync::Arc;

use pmtest::core::explore::{explore, ExploreConfig, RecoveryProc};
use pmtest::prelude::*;
use pmtest::txlib::ObjPool;
use pmtest::workloads::{gen, BTree, CheckMode, Fault, FaultSet, KvMap};

fn build_tree(
    pm: Arc<PmPool>,
    faults: FaultSet,
    check: CheckMode,
) -> Result<BTree, Box<dyn std::error::Error>> {
    let pool = Arc::new(ObjPool::create(pm, 4096, PersistMode::X86)?);
    Ok(BTree::create(pool, check, faults)?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ------------------------------------------------------------------
    // 1. PMTest's view: the missing TX_ADD is reported from the trace.
    // ------------------------------------------------------------------
    let session = PmTestSession::builder().build();
    session.start();
    let pm = Arc::new(PmPool::new(1 << 21, session.sink()));
    let tree = build_tree(pm, FaultSet::one(Fault::BtreeSkipLogSplitNode), CheckMode::Checkers)?;
    for k in 0..8u64 {
        // enough inserts to force a split
        tree.insert(k, &gen::value_for(k, 16))?;
        session.send_trace();
    }
    let report = session.finish();
    println!("PMTest: {} FAIL, {} WARN", report.fail_count(), report.warn_count());
    assert!(report.has(DiagKind::MissingLog), "Bug 2 detected from the trace");

    // ------------------------------------------------------------------
    // 2. The oracle's view: replay the same workload on an untracked pool,
    //    record valued operations, crash everywhere, and run recovery.
    // ------------------------------------------------------------------
    let pm = Arc::new(PmPool::untracked(1 << 17));
    let tree =
        build_tree(pm.clone(), FaultSet::one(Fault::BtreeSkipLogSplitNode), CheckMode::None)?;
    for k in 0..3u64 {
        tree.insert(k, &gen::value_for(k, 16))?;
    }
    // Record the transaction containing the split (4th insert fills the
    // root and forces it).
    pm.begin_crash_recording();
    tree.insert(3, &gen::value_for(3, 16))?;
    let sim = pmtest::pmem::crash::CrashSim::from_pool(&pm).expect("recording active");

    // Recovery procedure: after rollback, every previously inserted key
    // must still be found with its value (the transaction never committed
    // ⇒ old state), or all four keys if it did commit.
    struct TreeRecovery;

    impl RecoveryProc for TreeRecovery {
        fn name(&self) -> &str {
            "btree-split"
        }

        fn check(&self, _point: usize, image: &[u8]) -> Result<(), String> {
            let pool = Arc::new(
                ObjPool::recover_image(image, 4096, PersistMode::X86).map_err(|e| e.to_string())?,
            );
            let tree = BTree::open(pool, CheckMode::None, FaultSet::none());
            for k in 0..3u64 {
                match tree.get(k) {
                    Ok(Some(v)) if v == gen::value_for(k, 16) => {}
                    Ok(other) => return Err(format!("key {k}: lost or corrupted ({other:?})")),
                    Err(e) => return Err(format!("key {k}: tree unreadable: {e}")),
                }
            }
            Ok(())
        }
    }

    // The full Yat-style state space explodes (that is the point of §2.2);
    // report its size, then sweep the fence boundaries instead: model-mode
    // exploration visits every boundary crash point, prefix-sharing shadow
    // state between adjacent points, and bounds the per-point image count.
    let total = pmtest::baseline::yat::estimate_states(&sim);
    println!("oracle: {total} reachable crash states across all crash points");
    let config = ExploreConfig { max_states_per_point: 256, ..ExploreConfig::default() };
    let report = explore(&sim, &TreeRecovery, &config);
    println!("{}", report.render());
    match report.violations.first() {
        Some(v) => println!(
            "  reachable inconsistency at crash point {} (culprit op {:?}): {}",
            v.point, v.culprit_op, v.reason
        ),
        None => println!("  (no inconsistency within the per-point image budget)"),
    }
    Ok(())
}
