//! Why PMTest's diagnostics matter: the ground-truth crash oracle.
//!
//! PMTest reasons about traces; this repository also simulates the
//! hardware, enumerating every memory image a power failure could leave
//! behind (`pmtest::pmem::crash`). This example shows the two agreeing on
//! the paper's B-Tree Bug 2: when the split node is modified without a
//! `TX_ADD`, (1) PMTest reports a missing backup, and (2) the oracle finds
//! a reachable crash state from which recovery produces a corrupted tree.
//!
//! Run with: `cargo run --example crash_oracle`

use std::sync::Arc;

use pmtest::prelude::*;
use pmtest::txlib::ObjPool;
use pmtest::workloads::{gen, BTree, CheckMode, Fault, FaultSet, KvMap};

fn build_tree(
    pm: Arc<PmPool>,
    faults: FaultSet,
    check: CheckMode,
) -> Result<BTree, Box<dyn std::error::Error>> {
    let pool = Arc::new(ObjPool::create(pm, 4096, PersistMode::X86)?);
    Ok(BTree::create(pool, check, faults)?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ------------------------------------------------------------------
    // 1. PMTest's view: the missing TX_ADD is reported from the trace.
    // ------------------------------------------------------------------
    let session = PmTestSession::builder().build();
    session.start();
    let pm = Arc::new(PmPool::new(1 << 21, session.sink()));
    let tree = build_tree(pm, FaultSet::one(Fault::BtreeSkipLogSplitNode), CheckMode::Checkers)?;
    for k in 0..8u64 {
        // enough inserts to force a split
        tree.insert(k, &gen::value_for(k, 16))?;
        session.send_trace();
    }
    let report = session.finish();
    println!("PMTest: {} FAIL, {} WARN", report.fail_count(), report.warn_count());
    assert!(report.has(DiagKind::MissingLog), "Bug 2 detected from the trace");

    // ------------------------------------------------------------------
    // 2. The oracle's view: replay the same workload on an untracked pool,
    //    record valued operations, crash everywhere, and run recovery.
    // ------------------------------------------------------------------
    let pm = Arc::new(PmPool::untracked(1 << 17));
    let tree =
        build_tree(pm.clone(), FaultSet::one(Fault::BtreeSkipLogSplitNode), CheckMode::None)?;
    for k in 0..3u64 {
        tree.insert(k, &gen::value_for(k, 16))?;
    }
    // Record the transaction containing the split (4th insert fills the
    // root and forces it).
    pm.begin_crash_recording();
    tree.insert(3, &gen::value_for(3, 16))?;
    let sim = pmtest::pmem::crash::CrashSim::from_pool(&pm).expect("recording active");

    // Recovery check: after rollback, every previously inserted key must
    // still be found with its value (the transaction never committed ⇒ old
    // state), or all four keys if it did commit.
    let check = move |image: &[u8]| -> Result<(), String> {
        let pool = Arc::new(
            ObjPool::recover_image(image, 4096, PersistMode::X86).map_err(|e| e.to_string())?,
        );
        let tree = BTree::open(pool, CheckMode::None, FaultSet::none());
        for k in 0..3u64 {
            match tree.get(k) {
                Ok(Some(v)) if v == gen::value_for(k, 16) => {}
                Ok(other) => return Err(format!("key {k}: lost or corrupted ({other:?})")),
                Err(e) => return Err(format!("key {k}: tree unreadable: {e}")),
            }
        }
        Ok(())
    };
    // The full Yat-style state space explodes (that is the point of §2.2);
    // report its size, then search it by sampling instead.
    let total = pmtest::baseline::yat::estimate_states(&sim);
    println!("oracle: {total} reachable crash states across all crash points");
    use rand::SeedableRng;
    let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
    let violation = sim.find_violation_sampled(&check, 24, &mut rng);
    match violation {
        Some(v) => {
            println!("  reachable inconsistency at crash point {}: {}", v.point, v.reason);
        }
        None => println!("  (no inconsistency sampled — rerun with more samples)"),
    }
    Ok(())
}
