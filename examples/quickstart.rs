//! Quickstart: find the paper's Fig. 1a bug with the two low-level checkers.
//!
//! The program backs an array element up, sets a `valid` flag, and updates
//! in place — but misses two persist barriers, so the flag can reach
//! persistence before the backup it vouches for. PMTest reports the
//! violated ordering; the fixed version passes.
//!
//! Run with: `cargo run --example quickstart`

use pmtest::pmem::PmError;
use pmtest::prelude::*;

/// Offsets of the "array" and its backup record inside the pool.
const ARRAY: u64 = 0x000;
const BACKUP_VAL: u64 = 0x100;
const BACKUP_VALID: u64 = 0x140;

/// The buggy `ArrayUpdate` of Fig. 1a: only two persist barriers, so the
/// `valid` flag is not ordered after the backup value.
fn array_update_buggy(
    pool: &PmPool,
    session: &PmTestSession,
    index: u64,
    new_val: u64,
) -> Result<(), PmError> {
    let old = pool.read_u64(ARRAY + index * 8)?;
    let val = pool.write_u64(BACKUP_VAL, old)?; // backup.val = array[index]
    let valid = pool.write_u8(BACKUP_VALID, 1)?; // backup.valid = true
    pool.flush(val);
    pool.flush(valid);
    pool.fence(); // one barrier for both: their persist order is unconstrained!
                  // The programmer's intent, asserted where it matters: the backup value
                  // must be durable before the valid flag can persist.
    session.is_ordered_before(val, valid);
    let upd = pool.write_u64(ARRAY + index * 8, new_val)?; // in-place update
    let invalid = pool.write_u8(BACKUP_VALID, 0)?; // backup.valid = false
    pool.flush(upd);
    pool.flush(invalid);
    pool.fence(); // same problem again
    session.is_ordered_before(upd, invalid);
    session.is_persist(invalid);
    Ok(())
}

/// The fixed version: a barrier after every ordering-relevant store.
fn array_update_fixed(
    pool: &PmPool,
    session: &PmTestSession,
    index: u64,
    new_val: u64,
) -> Result<(), PmError> {
    let old = pool.read_u64(ARRAY + index * 8)?;
    let val = pool.write_u64(BACKUP_VAL, old)?;
    pool.persist_barrier(val); // missing in the buggy version
    let valid = pool.write_u8(BACKUP_VALID, 1)?;
    pool.persist_barrier(valid);
    session.is_ordered_before(val, valid);
    let upd = pool.write_u64(ARRAY + index * 8, new_val)?;
    pool.persist_barrier(upd); // missing in the buggy version
    let invalid = pool.write_u8(BACKUP_VALID, 0)?;
    pool.persist_barrier(invalid);
    session.is_ordered_before(upd, invalid);
    session.is_persist(invalid);
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // PMTest_INIT + PMTest_START (timing telemetry on, for the summary line)
    let session = PmTestSession::builder()
        .model(X86Model::new())
        .telemetry(TelemetryConfig::timing_only())
        .build();
    session.start();
    let pool = PmPool::new(4096, session.sink());

    println!("== buggy ArrayUpdate (Fig. 1a) ==");
    array_update_buggy(&pool, &session, 3, 0xC0FFEE)?;
    session.send_trace();
    let report = session.take_report();
    println!("{report}\n");
    assert!(report.fail_count() > 0, "the bug must be detected");

    println!("== fixed ArrayUpdate ==");
    array_update_fixed(&pool, &session, 3, 0xC0FFEE)?;
    session.send_trace();
    let report = session.finish();
    println!("{report}");
    assert!(report.is_clean(), "the fix must pass");
    println!("\n{}", session.telemetry_summary());
    Ok(())
}
