//! Engine telemetry end to end: drive a mixed multi-threaded workload with
//! every telemetry layer on, then export what the engine observed in all
//! three machine-readable formats (JSON-lines, Prometheus text exposition,
//! single-document JSON), the diagnostics as JSON-lines, and the ingest
//! spans as a Perfetto-loadable Chrome trace-event file.
//!
//! The emitted files land in `bench_results/` (same shape as the benchmark
//! reports there); CI re-parses them with the `obs-check` binary to keep the
//! formats honest. Open `TELEMETRY_trace.trace.json` at
//! <https://ui.perfetto.dev> to see the ship/claim/replay/merge timeline.
//!
//! Run with: `cargo run --release --example telemetry`

use pmtest::obs::writer;
use pmtest::prelude::*;

const THREADS: u64 = 4;
const TRACES_PER_THREAD: u64 = 100;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Everything on: timing histograms, the structured event ring, the
    // flight recorder, AND the per-thread span buffers. The verdict cache is
    // on too — with the instrumented replay lane active it must bypass every
    // trace, so the exported counters demonstrate the bypass predicate.
    let session = PmTestSession::builder()
        .workers(2)
        .batch_capacity(8)
        .telemetry(TelemetryConfig::enabled().with_tracing())
        .verdict_cache(true)
        .build();
    session.start();

    // A deliberately mixed workload: mostly clean traces, some missing their
    // persist barrier (FAIL: not_persisted), some flushing twice
    // (WARN: duplicate_flush) — so the per-kind counters all move.
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let session = session.clone();
            s.spawn(move || {
                session.thread_init();
                let pool = PmPool::new(4096, session.sink());
                for i in 0..TRACES_PER_THREAD {
                    let r = pool.write_u64((i % 64) * 8, t << 32 | i).expect("write");
                    match i % 10 {
                        0 => {} // no barrier at all: isPersist below FAILs
                        1 => {
                            pool.flush(r);
                            pool.flush(r); // duplicate writeback: WARN
                            pool.fence();
                        }
                        _ => pool.persist_barrier(r),
                    }
                    session.is_persist(r);
                    session.send_trace();
                }
            });
        }
    });
    let bundles = session.take_bundles();
    let report = session.take_report();
    let snap = session.telemetry_snapshot();

    println!("== run ==");
    println!("{}", report.summary());
    println!("{}", session.telemetry_summary());

    println!("\n== Prometheus text exposition (excerpt) ==");
    for line in snap.to_prometheus().lines().filter(|l| {
        l.starts_with("# TYPE")
            || l.starts_with("engine_traces_checked")
            || l.starts_with("engine_diag_total")
            || l.starts_with("session_flush_total")
    }) {
        println!("{line}");
    }

    println!("\n== JSON-lines (first 10 of {}) ==", snap.to_json_lines().lines().count());
    for line in snap.to_json_lines().lines().take(10) {
        println!("{line}");
    }

    // Dump everything next to the benchmark reports, in their shape.
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/bench_results");
    let doc = writer::write_snapshot(dir, "TELEMETRY_demo", &snap)?;
    let jsonl = writer::write_json_lines(dir, "telemetry_demo", &snap)?;
    let diags = format!("{dir}/telemetry_diags.jsonl");
    std::fs::write(&diags, report.to_json_lines())?;
    // The flight recorder auto-captured a diagnosis bundle for each failing
    // trace (bounded); dump the first one for `pmtest-explain` / `obs-check`.
    let bundle = writer::write_lines(dir, "EXPLAIN_demo", &bundles[0].to_json_lines())?;
    // The ingest spans as Chrome trace-event JSON — load this file in the
    // Perfetto UI to see every producer's ship spans above each worker's
    // claim/replay/merge lanes.
    let chrome = session.chrome_trace();
    let trace_path = format!("{dir}/TELEMETRY_trace.trace.json");
    std::fs::write(&trace_path, &chrome)?;
    println!("\nwrote {}", doc.display());
    println!("wrote {}", jsonl.display());
    println!("wrote {diags}");
    println!("wrote {} ({} bundles captured)", bundle.display(), bundles.len());
    println!("wrote {trace_path} (open at https://ui.perfetto.dev)");

    // The demo doubles as a smoke test: the planted bugs must be visible in
    // both the report and the telemetry counters.
    let expected = (THREADS * TRACES_PER_THREAD) as usize;
    assert_eq!(report.traces().len(), expected);
    assert_eq!(report.fail_count() as u64, THREADS * TRACES_PER_THREAD / 10);
    assert_eq!(report.warn_count() as u64, THREADS * TRACES_PER_THREAD / 10);
    assert_eq!(snap.counter("engine_traces_checked"), Some(expected as u64));
    assert_eq!(
        snap.counter_sum("engine_diag_total"),
        (report.fail_count() + report.warn_count()) as u64
    );
    assert!(snap.histogram("engine_check_latency_ns").map_or(0, |h| h.count) >= expected as u64);
    assert!(!snap.events.is_empty(), "event ring captured batch flushes");
    assert!(!bundles.is_empty(), "failing traces must auto-capture diagnosis bundles");
    assert!(bundles.iter().all(|b| !b.steps.is_empty()), "bundles carry a trace window");
    // The five ingest stages all saw traffic, and the exported trace-event
    // file is schema-valid and non-trivial.
    for stage in ["record_push", "ring_wait", "claim_replay", "replay", "report_merge"] {
        let h = snap.histogram_with("engine_stage_ns", "stage", stage).expect("stage registered");
        assert!(h.count > 0, "stage {stage} recorded no batches");
    }
    let stats = pmtest::obs::trace_event::validate_str(&chrome)
        .map_err(|e| format!("invalid trace-event JSON: {e}"))?;
    assert!(stats.pairs > 0, "tracing layer captured no spans");
    assert!(stats.threads >= 2, "producer and worker tracks expected, got {stats:?}");
    assert_eq!(snap.counter_sum("engine_spans_dropped"), 0, "span buffers must not overflow here");
    // The verdict cache saw every trace and bypassed all of them: the timing
    // layer and flight recorder are on, and the instrumented replay lane
    // must observe every occurrence cold.
    assert_eq!(snap.counter("verdict_cache_bypasses"), Some(expected as u64));
    assert_eq!(snap.counter("verdict_cache_l1_hits"), Some(0));
    assert_eq!(snap.counter("verdict_cache_l2_hits"), Some(0));
    assert_eq!(snap.counter("verdict_cache_misses"), Some(0));
    assert_eq!(snap.gauge("verdict_cache_entries"), Some(0.0), "bypassed traces cache nothing");
    Ok(())
}
