//! The §7.2 workflow: a *library author* annotates their crash-consistent
//! library once with composite checkers, and every downstream user gets
//! automated testing for free.
//!
//! The library here is a durable single-producer ring buffer (a common PM
//! logging primitive): records are written into a data region and published
//! by bumping a persistent head index. The author asserts the protocol with
//! [`pmtest::core::compose`] helpers at the natural spots; a fault flag
//! shows the annotations catching a broken variant.
//!
//! Run with: `cargo run --example library_author`

use pmtest::core::compose;
use pmtest::pmem::PmError;
use pmtest::prelude::*;
use pmtest::trace::TraceStats;
use std::sync::Arc;

/// Layout: `head: u64` (number of records published) at `base`, then
/// `capacity` fixed-size record slots.
struct RingLog {
    pm: Arc<PmPool>,
    session: Option<PmTestSession>,
    base: u64,
    capacity: u64,
    record_size: u64,
    correct: bool,
}

impl RingLog {
    fn create(
        pm: Arc<PmPool>,
        session: Option<PmTestSession>,
        base: u64,
        capacity: u64,
        record_size: u64,
        correct: bool,
    ) -> Result<Self, PmError> {
        let head = pm.write_u64(base, 0)?;
        pm.persist_barrier(head);
        Ok(Self { pm, session, base, capacity, record_size, correct })
    }

    fn slot(&self, index: u64) -> u64 {
        // Head slot occupies its own cache line.
        self.base + 64 + (index % self.capacity) * self.record_size
    }

    /// Appends one record: write the slot, persist it, then publish by
    /// bumping the head. The author's annotation (`compose::publishes`)
    /// states the protocol's contract in one line.
    fn append(&self, payload: &[u8]) -> Result<(), PmError> {
        assert!(payload.len() as u64 <= self.record_size);
        let head = self.pm.read_u64(self.base)?;
        let slot = self.pm.write(self.slot(head), payload)?;
        if self.correct {
            self.pm.persist_barrier(slot); // record durable before publish
        }
        let head_w = self.pm.write_u64(self.base, head + 1)?;
        self.pm.persist_barrier(head_w);
        // Library-author annotation: the record must be durable before the
        // head that publishes it, and both must be durable now. Emitting
        // into the pool's sink keeps the library backend-agnostic.
        compose::publishes(self.pm.sink(), slot, head_w);
        if let Some(session) = &self.session {
            session.send_trace();
        }
        Ok(())
    }

    fn len(&self) -> Result<u64, PmError> {
        self.pm.read_u64(self.base)
    }
}

fn run(correct: bool) -> (Report, u64) {
    let session = PmTestSession::builder().build();
    session.start();
    let pm = Arc::new(PmPool::new(1 << 16, session.sink()));
    let log = RingLog::create(pm, Some(session.clone()), 0, 32, 128, correct).expect("create");
    for i in 0..20u64 {
        log.append(format!("record {i}").as_bytes()).expect("append");
    }
    let published = log.len().expect("len");
    (session.finish(), published)
}

fn main() {
    println!("== correct ring log (record persisted before publish) ==");
    let (report, published) = run(true);
    println!("published {published} records: {}", report.summary());
    assert!(report.is_clean());

    println!("\n== broken variant (publish without persisting the record) ==");
    let (report, _) = run(false);
    println!("{}", report.summary());
    assert!(report.has(DiagKind::NotOrderedBefore), "the annotation catches it");
    assert!(report.has(DiagKind::NotPersisted));

    // The same annotations also yield WHISPER-style trace statistics for
    // the library's users (how checker-dense is the instrumentation?).
    let sink = Arc::new(pmtest::trace::MemorySink::new());
    let pm = Arc::new(PmPool::new(1 << 16, sink.clone()));
    let log = RingLog::create(pm, None, 0, 32, 128, true).expect("create");
    for i in 0..10u64 {
        log.append(format!("r{i}").as_bytes()).expect("append");
    }
    let stats = TraceStats::from_trace(&sink.take_trace(0));
    println!("\nper-run trace statistics: {stats}");
}
