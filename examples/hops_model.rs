//! Flexibility across persistency models (§5.2, Figs. 2–3): the *same*
//! crash-consistent code runs under the x86 model (`clwb`/`sfence`) and
//! under HOPS (`ofence`/`dfence`), and the *same* checkers validate both —
//! only the engine's checking rules change.
//!
//! Run with: `cargo run --example hops_model`

use std::sync::Arc;

use pmtest::prelude::*;
use pmtest::txlib::ObjPool;

/// An append-only durable log record update, written once per mode. The
/// `PersistMode` abstraction picks the primitives, exactly like Fig. 2's
/// stacks.
fn append_record(
    pool: &PmPool,
    session: &PmTestSession,
    mode: PersistMode,
    slot: u64,
    value: u64,
) -> Result<(), pmtest::pmem::PmError> {
    let record = pool.write_u64(slot, value)?;
    mode.persist(pool, record); // clwb+sfence on x86, dfence on HOPS
    let head = pool.write_u64(0, slot)?;
    mode.persist(pool, head);
    // Same two checkers under either model (Fig. 3).
    session.is_ordered_before(record, head);
    session.is_persist(record);
    session.is_persist(head);
    Ok(())
}

fn run(mode: PersistMode, session: PmTestSession) -> Report {
    session.start();
    let pool = PmPool::new(4096, session.sink());
    for i in 1..=4u64 {
        append_record(&pool, &session, mode, 64 * i, 0x1000 + i).expect("append");
        session.send_trace();
    }
    session.finish()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== x86 persistency model (Fig. 3a) ==");
    let report = run(PersistMode::X86, PmTestSession::builder().model(X86Model::new()).build());
    println!("{report}\n");
    assert!(report.is_clean());

    println!("== HOPS persistency model (Fig. 3b) ==");
    let report = run(PersistMode::Hops, PmTestSession::builder().model(HopsModel::new()).build());
    println!("{report}\n");
    assert!(report.is_clean());

    // Running HOPS code under the x86 rules is flagged, not silently
    // accepted — the models really differ.
    println!("== HOPS code under the x86 rules (model mismatch) ==");
    let report = run(PersistMode::Hops, PmTestSession::builder().model(X86Model::new()).build());
    println!("{report}\n");
    assert!(report.warn_count() > 0, "dfence is foreign to x86");

    // The transactional library is mode-generic too: the PMDK-like pool
    // emits ofence/dfence when created in HOPS mode, and the whole TX
    // checker machinery still applies.
    println!("== PMDK-like transactions on HOPS ==");
    let session = PmTestSession::builder().model(HopsModel::new()).build();
    session.start();
    let pm = Arc::new(PmPool::new(1 << 16, session.sink()));
    let pool = Arc::new(ObjPool::create(pm, 64, PersistMode::Hops)?);
    let root = pool.root().start();
    pool.pool().emit(Event::TxCheckerStart);
    pool.tx(|tx| {
        tx.add(ByteRange::with_len(root, 8))?;
        tx.write_u64(root, 7)?;
        Ok(())
    })?;
    pool.pool().emit(Event::TxCheckerEnd);
    session.send_trace();
    let report = session.finish();
    println!("{report}");
    assert!(report.is_clean());
    Ok(())
}
