//! Cross-trace performance profiling and the optimization advisor end to
//! end: drive a multi-threaded workload that plants the three wasteful
//! persistency shapes — duplicate writebacks, fences that order no new
//! work, and duplicate undo-log entries — with profiling on, then rank the
//! waste into source-located suggestions and emit the deterministic
//! `pmtest-advisor/v1` document next to the benchmark reports.
//!
//! The emitted `bench_results/ADVISOR_demo.json` is schema-checked by the
//! `obs-check` binary in CI and renders as tables with:
//! `cargo run -p pmtest-explain -- --advise bench_results/ADVISOR_demo.json`
//!
//! Run with: `cargo run --release --example advisor`

use std::sync::Arc;

use pmtest::obs::advisor;
use pmtest::prelude::*;
use pmtest::txlib::ObjPool;

const THREADS: u64 = 4;
const TRACES_PER_THREAD: u64 = 51;
const TX_TRACES: u64 = 10;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Profiling only: the timing/event/recorder layers stay off, the
    // replay hot path additionally decodes each checked trace into the
    // site-keyed profile store.
    let session = PmTestSession::builder()
        .workers(2)
        .batch_capacity(8)
        .telemetry(TelemetryConfig::profiling_only())
        .build();
    session.start();

    // Low-level waste, from four threads at once: every third trace flushes
    // the same line twice (WARN duplicate_flush → flush-coalescing
    // suggestion), every third issues a fence that orders nothing
    // (redundant-fence suggestion); the rest are clean.
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let session = session.clone();
            s.spawn(move || {
                session.thread_init();
                let pool = PmPool::new(4096, session.sink());
                for i in 0..TRACES_PER_THREAD {
                    let r = pool.write_u64((i % 64) * 8, t << 32 | i).expect("write");
                    match i % 3 {
                        0 => {
                            pool.flush(r);
                            pool.flush(r); // duplicate writeback of the same line
                            pool.fence();
                        }
                        1 => {
                            pool.persist_barrier(r);
                            pool.fence(); // orders no new work
                        }
                        _ => pool.persist_barrier(r),
                    }
                    session.is_persist(r);
                    session.send_trace();
                }
            });
        }
    });

    // Transactional waste: every transaction backs up the same object
    // twice (WARN duplicate_log → log-elision suggestion).
    let pm = Arc::new(PmPool::new(1 << 16, session.sink()));
    let pool = Arc::new(ObjPool::create(pm, 64, PersistMode::X86)?);
    let obj = pool.root().start();
    for i in 0..TX_TRACES {
        pool.pool().emit(Event::TxCheckerStart);
        let mut tx = pool.begin_tx()?;
        tx.add(ByteRange::with_len(obj, 8))?;
        tx.add(ByteRange::with_len(obj, 8))?; // already logged above
        tx.write_u64(obj, i)?;
        tx.commit()?;
        pool.pool().emit(Event::TxCheckerEnd);
        session.send_trace();
    }

    let report = session.take_report();
    let profile = session.profile();
    let advisor_report = session.advisor_report();
    let snap = session.telemetry_snapshot();

    println!("== run ==");
    println!("{}", report.summary());
    println!("{}", session.telemetry_summary());

    println!("\n== top suggestions ==");
    for s in advisor_report.top(5) {
        println!(
            "#{} {:<16} {:<24} count={:<4} wasted={}B score={}",
            s.rank,
            s.kind.code(),
            s.site,
            s.count,
            s.wasted_bytes,
            s.score
        );
    }

    // Emit the deterministic advisor document next to the benchmark
    // reports; CI re-validates it with `obs-check` and `pmtest-explain
    // --advise` renders it as top-K tables with per-site drill-down.
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/bench_results");
    std::fs::create_dir_all(dir)?;
    let path = format!("{dir}/ADVISOR_demo.json");
    std::fs::write(&path, advisor_report.to_json())?;
    println!("\nwrote {path}");
    println!("render with: cargo run -p pmtest-explain -- --advise {path}");

    // The demo doubles as a smoke test: the planted waste must surface as
    // ranked, source-located suggestions and a schema-valid document.
    let per_thread_third = TRACES_PER_THREAD.div_ceil(3);
    let expected_traces = THREADS * TRACES_PER_THREAD + TX_TRACES;
    assert_eq!(report.traces().len() as u64, expected_traces);
    assert_eq!(report.fail_count(), 0, "waste is advisory, not a failure:\n{report}");
    assert_eq!(snap.counter("profile_traces_profiled"), Some(expected_traces));
    assert_eq!(profile.traces, expected_traces);

    let kind_at = |kind: &str| {
        advisor_report
            .suggestions
            .iter()
            .find(|s| s.kind.code() == kind)
            .unwrap_or_else(|| panic!("no {kind} suggestion"))
    };
    let dup_flush = kind_at("flush_coalescing");
    assert_eq!(dup_flush.count, THREADS * per_thread_third, "one per planted double flush");
    assert!(dup_flush.site.contains("advisor.rs:"), "sited in this file: {}", dup_flush.site);
    assert_eq!(kind_at("redundant_fence").count, THREADS * per_thread_third);
    assert_eq!(kind_at("log_elision").count, TX_TRACES);
    let json = advisor_report.to_json();
    let stats = advisor::validate(&json).map_err(|e| format!("advisor document invalid: {e}"))?;
    assert_eq!(stats.suggestions, advisor_report.suggestions.len());
    assert_eq!(stats.traces, expected_traces);
    Ok(())
}
