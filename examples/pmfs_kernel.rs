//! Testing a kernel module through the bounded FIFO (§4.5, Fig. 9b).
//!
//! The PMFS-like file system runs on the "kernel side": its traces are
//! pushed into a 1024-entry [`KernelFifo`] (the stand-in for the paper's
//! `/proc/PMTest` kfifo) and a user-space pump thread drains them into the
//! checking engine. The run uses the *legacy* journal, reproducing the
//! paper's Bug 1 (duplicate flush of the commit log entry,
//! `journal.c:632`) and the known unmapped-buffer flush (`files.c:232`) —
//! both reported as performance `WARN`s.
//!
//! Run with: `cargo run --example pmfs_kernel`

use std::sync::Arc;

use pmtest::pmfs::{Pmfs, PmfsOptions};
use pmtest::prelude::*;

/// The kernel-side sink: buffers entries, ships complete traces into the
/// FIFO when the module commits a journal transaction.
struct KernelSink {
    fifo: Arc<KernelFifo>,
    buf: parking_lot_like::Mutex<Vec<Entry>>,
    next_id: std::sync::atomic::AtomicU64,
}

/// Minimal stand-in so the example has no extra dependencies.
mod parking_lot_like {
    pub use std::sync::Mutex;
}

impl KernelSink {
    fn new(fifo: Arc<KernelFifo>) -> Self {
        Self {
            fifo,
            buf: parking_lot_like::Mutex::new(Vec::new()),
            next_id: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Ships the buffered entries as one trace (blocking if the FIFO is
    /// full, like the kernel wait queue).
    fn send_trace(&self) {
        let entries = std::mem::take(&mut *self.buf.lock().expect("kernel sink lock"));
        if entries.is_empty() {
            return;
        }
        let id = self.next_id.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.fifo.push(Trace::from_entries(id, entries));
    }
}

impl Sink for KernelSink {
    fn record(&self, entry: Entry) {
        self.buf.lock().expect("kernel sink lock").push(entry);
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fifo = Arc::new(KernelFifo::new());

    // User-space side: engine + pump thread draining the FIFO. The pump
    // pops up to 32 traces per wakeup and ships them as one batch — one
    // dispatch instead of 32.
    let engine = Arc::new(Engine::new(EngineConfig::default()));
    let pump = {
        let fifo = fifo.clone();
        let engine = engine.clone();
        std::thread::spawn(move || loop {
            let batch = fifo.pop_batch(32);
            if batch.is_empty() {
                break; // FIFO closed and drained
            }
            if engine.submit_batch(batch).is_err() {
                break; // engine shut down under us
            }
        })
    };

    // Kernel side: PMFS with the legacy (buggy) journal paths enabled.
    let sink = Arc::new(KernelSink::new(fifo.clone()));
    let pm = Arc::new(PmPool::new(1 << 19, sink.clone()));
    let opts = PmfsOptions {
        checkers: true,
        legacy_double_flush: true,   // paper Bug 1
        legacy_flush_unmapped: true, // paper known bug
        ..PmfsOptions::default()
    };
    let fs = Pmfs::format(pm, opts)?;
    for i in 0..4 {
        let ino = fs.create(&format!("log{i}.dat"))?;
        sink.send_trace();
        fs.write(ino, 0, format!("entry {i}").as_bytes())?;
        sink.send_trace();
    }
    fs.unlink("log0.dat")?;
    sink.send_trace();

    // Shut the FIFO down and collect the results.
    fifo.close();
    pump.join().expect("pump thread");
    let report = engine.take_report();
    println!("journal stats: {:?}", fs.journal_stats());
    println!(
        "{} FAIL, {} WARN across {} traces; first diagnostics:",
        report.fail_count(),
        report.warn_count(),
        report.traces().len()
    );
    for diag in report.iter().take(4) {
        println!("  {diag}");
    }
    assert!(report.has(DiagKind::DuplicateFlush), "Bug 1: the commit log entry is flushed twice");
    assert!(report.has(DiagKind::UnnecessaryFlush), "known bug: a never-written buffer is flushed");
    assert_eq!(report.fail_count(), 0, "legacy bugs are performance-only");
    Ok(())
}
