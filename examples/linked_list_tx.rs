//! The paper's Fig. 1b bug: a transactional linked list that forgets to
//! back up its `length` field, caught automatically by the high-level
//! transaction checkers (`TX_CHECKER_START`/`END`).
//!
//! Run with: `cargo run --example linked_list_tx`

use std::sync::Arc;

use pmtest::prelude::*;
use pmtest::txlib::{ObjPool, TxError};

/// Root layout: `head: u64, length: u64`.
const HEAD: u64 = 0;
const LENGTH: u64 = 8;

struct List {
    pool: Arc<ObjPool>,
}

impl List {
    fn new(pool: Arc<ObjPool>) -> Result<Self, TxError> {
        let root = pool.root().start();
        pool.tx(|tx| {
            tx.add(ByteRange::with_len(root, 16))?;
            tx.write_u64(root + HEAD, 0)?;
            tx.write_u64(root + LENGTH, 0)?;
            Ok(())
        })?;
        Ok(Self { pool })
    }

    fn root(&self) -> u64 {
        self.pool.root().start()
    }

    /// Fig. 1b's `appendList`: creates a node, backs up the head... and
    /// updates the length without a `TX_ADD` when `buggy` is set.
    fn append(&self, value: u64, buggy: bool) -> Result<(), TxError> {
        self.pool.pool().emit(Event::TxCheckerStart); // TX_CHECKER_START
        let mut tx = self.pool.begin_tx()?;
        // node: { value, next }
        let node = tx.alloc(16, 8)?;
        let head = self.pool.pool().read_u64(self.root() + HEAD)?;
        tx.write_u64(node, value)?;
        tx.write_u64(node + 8, head)?;
        tx.add(ByteRange::with_len(self.root() + HEAD, 8))?; // TX_ADD(list.head)
        tx.write_u64(self.root() + HEAD, node)?;
        let length = self.pool.pool().read_u64(self.root() + LENGTH)?;
        if !buggy {
            tx.add(ByteRange::with_len(self.root() + LENGTH, 8))?; // the missing TX_ADD
        }
        tx.write_u64(self.root() + LENGTH, length + 1)?;
        tx.commit()?;
        self.pool.pool().emit(Event::TxCheckerEnd); // TX_CHECKER_END
        Ok(())
    }

    fn len(&self) -> u64 {
        self.pool.pool().read_u64(self.root() + LENGTH).unwrap_or(0)
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let session = PmTestSession::builder().build();
    session.start();
    let pm = Arc::new(PmPool::new(1 << 16, session.sink()));
    let pool = Arc::new(ObjPool::create(pm, 64, PersistMode::X86)?);
    let list = List::new(pool)?;

    println!("== buggy appendList (Fig. 1b): length not TX_ADDed ==");
    list.append(41, true)?;
    session.send_trace();
    let report = session.take_report();
    println!("{report}\n");
    assert!(
        report.has(DiagKind::MissingLog),
        "the forgotten backup must be reported as a missing log"
    );

    println!("== fixed appendList ==");
    list.append(42, false)?;
    session.send_trace();
    let report = session.finish();
    println!("{report}");
    assert!(report.is_clean());
    assert_eq!(list.len(), 2);
    Ok(())
}
