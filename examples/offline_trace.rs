//! Offline trace analysis: record a workload's trace once, then inspect it,
//! check it under different persistency models, and size the crash-state
//! space the Yat-like baseline would have to explore.
//!
//! This is the "post-mortem" usage mode: the trace is a value, so it can be
//! replayed against any [`PersistencyModel`] without rerunning the program.
//!
//! Run with: `cargo run --example offline_trace`

use std::sync::Arc;

use pmtest::baseline::yat;
use pmtest::prelude::*;
use pmtest::trace::MemorySink;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Record: run a small PM program against a memory sink (no engine).
    let sink = Arc::new(MemorySink::new());
    let pool = PmPool::new(4096, sink.clone());
    pool.begin_crash_recording();

    let data = pool.write_u64(0x00, 0x1111)?;
    pool.persist_barrier(data);
    let index = pool.write_u64(0x40, 1)?;
    pool.persist_barrier(index);
    sink.record(Event::IsOrderedBefore(data, index).here());
    sink.record(Event::IsPersist(index).here());

    let trace = sink.take_trace(0);
    println!("recorded:\n{trace}");

    // Check offline under the x86 rules...
    let x86 = pmtest::core::check_trace(&trace, &X86Model::new());
    println!("x86 model: {} diagnostics", x86.len());
    assert!(x86.is_empty(), "the barriered program is correct on x86");

    // ...and under HOPS, where the same trace is *not* correct: the
    // clwb/sfence vocabulary is foreign there, and without a dfence nothing
    // is ever guaranteed durable — the isPersist checker fails.
    let hops = pmtest::core::check_trace(&trace, &HopsModel::new());
    println!(
        "HOPS model: {} diagnostics (foreign x86 primitives + missing durability)",
        hops.len()
    );
    assert!(hops.iter().any(|d| d.kind == DiagKind::ForeignOperation));
    assert!(hops.iter().any(|d| d.kind == DiagKind::NotPersisted));

    // Size the crash-state space an exhaustive tester would face.
    let sim = pmtest::pmem::crash::CrashSim::from_pool(&pool).expect("recording active");
    let states = yat::estimate_states(&sim);
    let result = yat::run(&sim, &|_: &[u8]| Ok(()), yat::YatConfig { max_states: Some(100_000) });
    println!(
        "crash oracle: {} reachable states across {} crash points, {} validated exhaustively",
        states,
        sim.op_count() + 1,
        result.states_tested
    );
    assert!(result.exhausted_space);
    Ok(())
}
