//! Live scrape endpoint end to end: run an engine with
//! [`TelemetryConfig::scrape_addr`] set, drive a workload, and scrape the
//! endpoint over plain TCP exactly like a Prometheus poller would — no HTTP
//! client library, just `std::net::TcpStream`.
//!
//! The scraped JSON snapshot is written to `bench_results/SCRAPE_demo.json`
//! so CI can re-parse it with `obs-check`, proving the bytes served over the
//! wire are the same machine-readable document the in-process API returns.
//!
//! Run with: `cargo run --release --example scrape`

use std::io::{Read, Write};
use std::net::TcpStream;

use pmtest::prelude::*;

const TRACES: u64 = 200;

/// One `GET` against the scrape endpoint; returns `(headers, body)`.
fn http_get(addr: std::net::SocketAddr, path: &str) -> std::io::Result<(String, String)> {
    let mut conn = TcpStream::connect(addr)?;
    conn.write_all(format!("GET {path} HTTP/1.1\r\nHost: pmtest\r\n\r\n").as_bytes())?;
    let mut raw = String::new();
    conn.read_to_string(&mut raw)?; // server sends Connection: close
    raw.split_once("\r\n\r\n")
        .map(|(h, b)| (h.to_owned(), b.to_owned()))
        .ok_or_else(|| std::io::Error::other("malformed HTTP response"))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Port 0: let the OS pick, so the demo never collides with a real
    // exporter. A deployment would pin something like "127.0.0.1:9184".
    let session = PmTestSession::builder()
        .workers(2)
        .batch_capacity(8)
        .telemetry(TelemetryConfig::timing_only().with_scrape("127.0.0.1:0"))
        .build();
    let addr = session.scrape_addr().expect("scrape endpoint configured");
    println!("scrape endpoint live at http://{addr}/metrics");

    session.start();
    let pool = PmPool::new(4096, session.sink());
    for i in 0..TRACES {
        let r = pool.write_u64((i % 64) * 8, i).expect("write");
        pool.persist_barrier(r);
        session.is_persist(r);
        session.send_trace();
    }
    let report = session.report();
    assert!(report.is_clean(), "demo traces must check clean");

    // Scrape like Prometheus: text exposition from /metrics.
    let (head, prom) = http_get(addr, "/metrics")?;
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    assert!(head.contains("text/plain; version=0.0.4"), "{head}");
    println!("\n== GET /metrics (excerpt) ==");
    for line in prom.lines().filter(|l| {
        l.starts_with("engine_traces_checked")
            || l.starts_with("engine_workers")
            || l.starts_with("engine_ring_")
            || l.starts_with("engine_parker_")
    }) {
        println!("{line}");
    }
    assert!(prom.contains(&format!("engine_traces_checked {TRACES}")), "live counter served");
    assert!(prom.contains("engine_stage_ns"), "stage histograms served");

    // And the JSON document from /snapshot.json — saved for obs-check.
    let (head, body) = http_get(addr, "/snapshot.json")?;
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    assert!(head.contains("application/json"), "{head}");
    let doc = pmtest::obs::json::parse(&body).expect("served JSON parses");
    assert!(doc.get("counters").is_some(), "snapshot document shape");
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/bench_results");
    std::fs::create_dir_all(dir)?;
    let path = format!("{dir}/SCRAPE_demo.json");
    std::fs::write(&path, &body)?;
    println!("\nwrote {path} ({} bytes straight off the wire)", body.len());

    // The endpoint dies with the engine: dropping the last session handles
    // (the pool holds a sink clone) stops the serving thread.
    drop(pool);
    drop(session);
    assert!(
        TcpStream::connect(addr).is_err() || {
            let mut c = TcpStream::connect(addr)?;
            c.set_read_timeout(Some(std::time::Duration::from_millis(500)))?;
            c.write_all(b"GET /metrics HTTP/1.1\r\n\r\n")?;
            let mut s = String::new();
            c.read_to_string(&mut s).unwrap_or(0) == 0
        },
        "endpoint must stop serving after engine shutdown"
    );
    println!("endpoint shut down with the engine");
    Ok(())
}
