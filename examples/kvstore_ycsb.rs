//! Testing a Memcached-like store under a YCSB client mix (the Fig. 11 /
//! Fig. 12 configuration): four client threads drive the Mnemosyne-backed
//! store while PMTest checks every transaction on two worker threads.
//!
//! Run with: `cargo run --release --example kvstore_ycsb`

use std::sync::Arc;
use std::time::Instant;

use pmtest::mnemosyne::MnPool;
use pmtest::prelude::*;
use pmtest::workloads::{gen, CheckMode, FaultSet, KvStore};

const CLIENTS: usize = 4;
const OPS_PER_CLIENT: usize = 2_000;
const KEY_SPACE: u64 = 1_000;
const VALUE_SIZE: usize = 64;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two PMTest workers, as in the Fig. 12b sweet spot; timing telemetry
    // on, so the run ends with check-latency quantiles.
    let session =
        PmTestSession::builder().workers(2).telemetry(TelemetryConfig::timing_only()).build();
    session.start();

    let pm = Arc::new(PmPool::new(1 << 24, session.sink()));
    let pool = Arc::new(MnPool::create(pm, 4096, PersistMode::X86)?);
    let store =
        Arc::new(KvStore::create(pool, 256, CLIENTS * 4, CheckMode::Checkers, FaultSet::none())?);

    let start = Instant::now();
    std::thread::scope(|s| {
        for client in 0..CLIENTS {
            let store = store.clone();
            let session = session.clone();
            s.spawn(move || {
                session.thread_init(); // PMTest_THREAD_INIT
                let ops = gen::ycsb_update_heavy(OPS_PER_CLIENT, KEY_SPACE, client as u64);
                for op in ops {
                    match op {
                        gen::Op::Set(k) => {
                            store.set(k, &gen::value_for(k, VALUE_SIZE)).expect("set");
                            // One independent trace per transaction (§4.2).
                            session.send_trace();
                        }
                        gen::Op::Get(k) => {
                            let _ = store.get(k).expect("get");
                        }
                    }
                }
            });
        }
    });
    let elapsed = start.elapsed();

    let report = session.finish();
    println!(
        "{} clients x {} YCSB ops (50% update, zipfian) in {:.2?}",
        CLIENTS, OPS_PER_CLIENT, elapsed
    );
    println!("keys resident: {}", store.count()?);
    println!("traces checked: {}", report.traces().len());
    println!("{report}");
    assert!(report.is_clean(), "the store's redo-log protocol is correct");
    println!("{}", session.telemetry_summary());
    Ok(())
}
