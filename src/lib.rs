//! # pmtest — a Rust reproduction of PMTest (ASPLOS 2019)
//!
//! *PMTest: A Fast and Flexible Testing Framework for Persistent Memory
//! Programs*, Liu, Wei, Zhao, Kolli, Khan.
//!
//! Persistent memory (PM) programs must make their updates durable **and**
//! ordered — and the hardware is free to reorder persists, so the order
//! written in the code is not the order that reaches memory. PMTest finds
//! the resulting crash-consistency bugs with two assertion-like checkers
//! (`isPersist`, `isOrderedBefore`), validated by *inferring persist
//! intervals* from a trace of PM operations in a single pass instead of
//! enumerating orderings.
//!
//! This crate is the facade over the full reproduction:
//!
//! * [`core`] — the checking engine: shadow memory, persistency models
//!   (x86, HOPS), the low- and high-level checkers, the master/worker
//!   pipeline, and the [`core::PmTestSession`] API mirroring the paper's
//!   Table 2;
//! * [`pmem`] — the simulated PM substrate (pool, heap, cache lines) and
//!   the ground-truth crash-state generator used to validate diagnostics;
//! * [`txlib`] / [`mnemosyne`] — PMDK-like (undo-log) and Mnemosyne-like
//!   (redo-log) transactional libraries, instrumented for PMTest;
//! * [`pmfs`] — a PMFS-like journaling file system (the "kernel module"
//!   target, with the paper's real journal bugs behind flags);
//! * [`workloads`] — the WHISPER-like benchmarks of Figs. 10–12;
//! * [`bugs`] — the Table 5 synthetic-bug catalog and runner;
//! * [`baseline`] — the pmemcheck-like and Yat-like comparison tools;
//! * [`obs`] — the telemetry core: metrics registry, structured event log,
//!   and JSON-lines / Prometheus exporters behind
//!   [`core::Engine::telemetry_snapshot`] (see DESIGN.md §9);
//! * [`interval`] / [`trace`] — the underlying containers and the trace
//!   vocabulary.
//!
//! # Quickstart
//!
//! Annotate a program, run it, read the report (the Fig. 1a bug):
//!
//! ```
//! use pmtest::prelude::*;
//!
//! # fn main() -> Result<(), pmtest::pmem::PmError> {
//! // 1. A session hosts the checking engine (PMTest_INIT + PMTest_START).
//! let session = PmTestSession::builder().model(X86Model::new()).build();
//! session.start();
//!
//! // 2. The program writes persistent data through an instrumented pool.
//! let pool = PmPool::new(4096, session.sink());
//! let data = pool.write_u64(0x00, 0xDA7A)?;
//! let valid = pool.write_u8(0x40, 1)?;      // valid flag set...
//! pool.flush(data);
//! pool.flush(valid);
//! pool.fence();                              // ...but only one barrier!
//!
//! // 3. Assert the intended behaviour (the two low-level checkers).
//! session.is_ordered_before(data, valid);    // data must persist first
//! session.is_persist(valid);
//!
//! // 4. Ship the trace and collect results.
//! session.send_trace();
//! let report = session.finish();
//! assert_eq!(report.fail_count(), 1, "the missing barrier is caught:\n{report}");
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for transactional (`TX_CHECKER`) use, the HOPS model,
//! kernel-module testing through the bounded FIFO, and crash-state
//! validation; see DESIGN.md and EXPERIMENTS.md for the paper-reproduction
//! map.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pmtest_baseline as baseline;
pub use pmtest_bugs as bugs;
pub use pmtest_core as core;
pub use pmtest_interval as interval;
pub use pmtest_mnemosyne as mnemosyne;
pub use pmtest_obs as obs;
pub use pmtest_pmem as pmem;
pub use pmtest_pmfs as pmfs;
pub use pmtest_trace as trace;
pub use pmtest_txlib as txlib;
pub use pmtest_workloads as workloads;

/// The most common imports, re-exported flat.
pub mod prelude {
    pub use pmtest_core::{
        check_trace, Diag, DiagKind, Engine, EngineConfig, EngineStats, FifoStats, HopsModel,
        KernelFifo, PersistencyModel, PmTestSession, Report, Severity, SubmitError,
        TelemetryConfig, ThreadRecorder, X86Model,
    };
    pub use pmtest_interval::ByteRange;
    pub use pmtest_obs::TelemetrySnapshot;
    pub use pmtest_pmem::{PersistMode, PmHeap, PmPool};
    pub use pmtest_trace::{
        BufferPool, Entry, Event, PoolStats, Sink, SourceLoc, Trace, TraceStats,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_compose() {
        let session = PmTestSession::builder().workers(2).build();
        session.start();
        let pool = PmPool::new(1024, session.sink());
        let r = pool.write_u64(0, 1).unwrap();
        pool.persist_barrier(r);
        session.is_persist(r);
        session.send_trace();
        assert!(session.finish().is_clean());
    }
}
