//! The high-level transaction checkers (§5.1) against the real PMDK-like
//! library, including the nested-transaction semantics the paper
//! reverse-engineered with PMTest (§7.1).

use std::sync::Arc;

use pmtest::prelude::*;
use pmtest::txlib::ObjPool;

fn setup() -> (PmTestSession, Arc<ObjPool>) {
    let session = PmTestSession::builder().build();
    session.start();
    let pm = Arc::new(PmPool::new(1 << 18, session.sink()));
    let pool = Arc::new(ObjPool::create(pm, 4096, PersistMode::X86).expect("pool"));
    (session, pool)
}

#[test]
fn clean_transaction_passes_all_checkers() {
    let (session, pool) = setup();
    let root = pool.root().start();
    pool.pool().emit(Event::TxCheckerStart);
    pool.tx(|tx| {
        tx.add(ByteRange::with_len(root, 16))?;
        tx.write_u64(root, 1)?;
        tx.write_u64(root + 8, 2)?;
        Ok(())
    })
    .unwrap();
    pool.pool().emit(Event::TxCheckerEnd);
    session.send_trace();
    assert!(session.finish().is_clean());
}

/// §7.1: with the checker around the *inner* transaction, updates are not
/// yet persistent at its end — PMDK-style libraries only persist at the
/// outermost commit. Moving the checker to the outer transaction passes.
/// This is exactly the experiment the paper describes running to "demystify
/// the semantics of library functions".
#[test]
fn nested_tx_semantics_paper_7_1() {
    // Checker around the inner transaction: FAIL (not yet persistent).
    let (session, pool) = setup();
    let root = pool.root().start();
    pool.tx(|tx| {
        tx.add(ByteRange::with_len(root, 8))?;
        pool.pool().emit(Event::TxCheckerStart);
        tx.nested(|tx| {
            tx.write_u64(root, 42)?;
            Ok(())
        })?;
        pool.pool().emit(Event::TxCheckerEnd);
        Ok(())
    })
    .unwrap();
    session.send_trace();
    let report = session.finish();
    assert!(report.has(DiagKind::NotPersisted), "inner TX_END does not persist updates: {report}");

    // Checker around the outer transaction: clean.
    let (session, pool) = setup();
    let root = pool.root().start();
    pool.pool().emit(Event::TxCheckerStart);
    pool.tx(|tx| {
        tx.add(ByteRange::with_len(root, 8))?;
        tx.nested(|tx| {
            tx.write_u64(root, 42)?;
            Ok(())
        })
    })
    .unwrap();
    pool.pool().emit(Event::TxCheckerEnd);
    session.send_trace();
    assert!(session.finish().is_clean(), "outermost TX_END persists everything");
}

#[test]
fn abort_path_is_crash_consistent_and_clean() {
    let (session, pool) = setup();
    let root = pool.root().start();
    pool.pool().write_u64(root, 7).unwrap();
    pool.pool().emit(Event::TxCheckerStart);
    let result: Result<(), pmtest::txlib::TxError> = pool.tx(|tx| {
        tx.add(ByteRange::with_len(root, 8))?;
        tx.write_u64(root, 8)?;
        Err(pmtest::txlib::TxError::aborted("change of plans"))
    });
    pool.pool().emit(Event::TxCheckerEnd);
    assert!(result.is_err());
    assert_eq!(pool.pool().read_u64(root).unwrap(), 7, "rolled back");
    session.send_trace();
    let report = session.finish();
    assert!(report.is_clean(), "abort restores and persists old data: {report}");
}

#[test]
fn library_internals_are_whitelisted_not_flagged() {
    // The undo-log entries and lane heads are written inside the
    // transaction without an explicit application-level TX_ADD; the library
    // marks them as transaction-safe metadata, so no MissingLog fires.
    let (session, pool) = setup();
    let root = pool.root().start();
    pool.pool().emit(Event::TxCheckerStart);
    pool.tx(|tx| {
        tx.add(ByteRange::with_len(root, 8))?;
        tx.write_u64(root, 5)?;
        Ok(())
    })
    .unwrap();
    pool.pool().emit(Event::TxCheckerEnd);
    session.send_trace();
    let report = session.finish();
    assert!(!report.has(DiagKind::MissingLog), "{report}");
}

#[test]
fn alloc_objects_need_no_backup() {
    let (session, pool) = setup();
    pool.pool().emit(Event::TxCheckerStart);
    pool.tx(|tx| {
        let node = tx.alloc(64, 8)?;
        tx.write_u64(node, 1)?; // fresh object: no TX_ADD required
        Ok(())
    })
    .unwrap();
    pool.pool().emit(Event::TxCheckerEnd);
    session.send_trace();
    assert!(session.finish().is_clean());
}

#[test]
fn double_add_is_a_performance_warning_only() {
    let (session, pool) = setup();
    let root = pool.root().start();
    pool.pool().emit(Event::TxCheckerStart);
    pool.tx(|tx| {
        tx.add(ByteRange::with_len(root, 8))?;
        tx.add(ByteRange::with_len(root, 8))?; // redundant
        tx.write_u64(root, 5)?;
        Ok(())
    })
    .unwrap();
    pool.pool().emit(Event::TxCheckerEnd);
    session.send_trace();
    let report = session.finish();
    assert_eq!(report.fail_count(), 0);
    assert!(report.has(DiagKind::DuplicateLog));
}

#[test]
fn fault_options_produce_the_matching_diagnostics() {
    use pmtest::txlib::TxOptions;
    // skip_commit_writeback: modified objects never persisted.
    let (session, pool) = setup();
    let root = pool.root().start();
    pool.pool().emit(Event::TxCheckerStart);
    let mut tx = pool
        .begin_tx_with(TxOptions { skip_commit_writeback: true, ..TxOptions::default() })
        .unwrap();
    tx.add(ByteRange::with_len(root, 8)).unwrap();
    tx.write_u64(root, 9).unwrap();
    tx.commit().unwrap();
    pool.pool().emit(Event::TxCheckerEnd);
    session.send_trace();
    let report = session.finish();
    assert!(report.has(DiagKind::NotPersisted), "{report}");

    // double_commit_writeback: duplicate flush warning.
    let (session, pool) = setup();
    let root = pool.root().start();
    let mut tx = pool
        .begin_tx_with(TxOptions { double_commit_writeback: true, ..TxOptions::default() })
        .unwrap();
    tx.add(ByteRange::with_len(root, 8)).unwrap();
    tx.write_u64(root, 9).unwrap();
    tx.commit().unwrap();
    session.send_trace();
    let report = session.finish();
    assert!(report.has(DiagKind::DuplicateFlush), "{report}");
}

#[test]
fn hops_mode_transactions_check_cleanly_under_hops_model() {
    let session = PmTestSession::builder().model(HopsModel::new()).build();
    session.start();
    let pm = Arc::new(PmPool::new(1 << 18, session.sink()));
    let pool = Arc::new(ObjPool::create(pm, 4096, PersistMode::Hops).expect("pool"));
    let root = pool.root().start();
    pool.pool().emit(Event::TxCheckerStart);
    pool.tx(|tx| {
        tx.add(ByteRange::with_len(root, 8))?;
        tx.write_u64(root, 11)?;
        Ok(())
    })
    .unwrap();
    pool.pool().emit(Event::TxCheckerEnd);
    session.send_trace();
    let report = session.finish();
    assert!(report.is_clean(), "{report}");
}
