//! Flexibility claim (§5.2): "the new checking rules for other persistency
//! models can be integrated into PMTest by programmers". This test defines
//! a *third* persistency model — strict persistency (Pelley et al., ISCA
//! 2014), where every store persists synchronously in program order — from
//! **outside** the engine crate, using only the public
//! [`PersistencyModel`] trait and [`ShadowMemory`] API.

use pmtest::core::ShadowMemory;
use pmtest::prelude::*;
use pmtest::trace::Entry;

/// Strict persistency: stores persist in program order, synchronously.
/// Fences are unnecessary; writebacks are meaningless.
#[derive(Debug, Default)]
struct StrictModel;

impl PersistencyModel for StrictModel {
    fn name(&self) -> &str {
        "strict"
    }

    fn apply(&self, shadow: &mut ShadowMemory, entry: &Entry, diags: &mut Vec<Diag>) {
        match entry.event {
            Event::Write(range) => {
                // A store persists before the next instruction: open the
                // interval and close it immediately. `dfence` (close all
                // open persists, bump the epoch) gives each write its own
                // epoch, so program order becomes persist order.
                shadow.record_write(range, entry.loc);
                shadow.dfence();
            }
            // Under strict persistency the ordering/durability primitives
            // do nothing; programs carrying them are flagged (they were
            // written for a weaker model).
            Event::Flush(_) | Event::Fence | Event::OFence | Event::DFence => {
                diags.push(Diag {
                    kind: DiagKind::ForeignOperation,
                    loc: entry.loc,
                    range: None,
                    culprit: None,
                    message: format!("`{}` is unnecessary under strict persistency", entry.event),
                });
            }
            _ => unreachable!("non-operation event reached the model"),
        }
    }

    fn check_persist(
        &self,
        shadow: &ShadowMemory,
        range: ByteRange,
        loc: SourceLoc,
        diags: &mut Vec<Diag>,
    ) {
        for (sub, pi, culprit) in shadow.persist_intervals(range) {
            if !pi.is_closed() {
                diags.push(Diag {
                    kind: DiagKind::NotPersisted,
                    loc,
                    range: Some(sub),
                    culprit,
                    message: "write not persisted (impossible under strict persistency)".to_owned(),
                });
            }
        }
    }

    fn check_ordered_before(
        &self,
        shadow: &ShadowMemory,
        first: ByteRange,
        second: ByteRange,
        loc: SourceLoc,
        diags: &mut Vec<Diag>,
    ) {
        for (sub_a, pi_a, culprit) in shadow.persist_intervals(first) {
            for (_, pi_b, _) in shadow.persist_intervals(second) {
                if !pi_a.ends_before_starts(&pi_b) {
                    diags.push(Diag {
                        kind: DiagKind::NotOrderedBefore,
                        loc,
                        range: Some(sub_a),
                        culprit,
                        message: "issued after the second range (strict persistency orders \
                                  persists by program order)"
                            .to_owned(),
                    });
                    return;
                }
            }
        }
    }
}

#[test]
fn writes_persist_immediately_without_fences() {
    let session = PmTestSession::builder().model(StrictModel).build();
    session.start();
    let pool = PmPool::new(4096, session.sink());
    let a = pool.write_u64(0, 1).unwrap();
    let b = pool.write_u64(64, 2).unwrap();
    // No flush, no fence — strict persistency needs none.
    session.is_persist(a);
    session.is_persist(b);
    session.is_ordered_before(a, b);
    session.send_trace();
    let report = session.finish();
    assert!(report.is_clean(), "{report}");
}

#[test]
fn program_order_is_persist_order() {
    let session = PmTestSession::builder().model(StrictModel).build();
    session.start();
    let pool = PmPool::new(4096, session.sink());
    let a = pool.write_u64(0, 1).unwrap();
    let b = pool.write_u64(64, 2).unwrap();
    session.is_ordered_before(b, a); // inverted: must fail
    session.send_trace();
    let report = session.finish();
    assert_eq!(report.fail_count(), 1);
    assert!(report.has(DiagKind::NotOrderedBefore));
}

#[test]
fn x86_primitives_are_flagged_as_unnecessary() {
    let session = PmTestSession::builder().model(StrictModel).build();
    session.start();
    let pool = PmPool::new(4096, session.sink());
    let a = pool.write_u64(0, 1).unwrap();
    pool.persist_barrier(a); // clwb + sfence: both superfluous here
    session.send_trace();
    let report = session.finish();
    assert_eq!(report.warn_count(), 2, "{report}");
    assert_eq!(report.fail_count(), 0);
}

#[test]
fn transaction_checkers_compose_with_custom_models() {
    use pmtest::txlib::ObjPool;
    use std::sync::Arc;
    // The high-level TX checkers are model-independent: the same missing
    // TX_ADD is caught under the user-defined model.
    let session = PmTestSession::builder().model(StrictModel).build();
    session.start();
    let pm = Arc::new(PmPool::new(1 << 16, session.sink()));
    let pool = Arc::new(ObjPool::create(pm, 64, PersistMode::X86).unwrap());
    let root = pool.root().start();
    pool.pool().emit(Event::TxCheckerStart);
    let mut tx = pool.begin_tx().unwrap();
    tx.write_u64(root, 9).unwrap(); // no tx.add: missing backup
    tx.commit().unwrap();
    pool.pool().emit(Event::TxCheckerEnd);
    session.send_trace();
    let report = session.finish();
    assert!(report.has(DiagKind::MissingLog), "{report}");
}
