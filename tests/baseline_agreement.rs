//! Agreement and gaps between PMTest and the pmemcheck-like baseline
//! (Table 1): both detect PMDK-transaction bugs; only PMTest handles the
//! generic checkers, other libraries' idioms, and HOPS.

use std::sync::Arc;

use pmtest::baseline::Pmemcheck;
use pmtest::prelude::*;
use pmtest::txlib::ObjPool;
use pmtest::workloads::{gen, CheckMode, Fault, FaultSet, HashMapTx, KvMap};

/// Runs the transactional hashmap under a given sink.
fn run_hashmap(sink: pmtest::trace::SharedSink, faults: FaultSet) {
    let pm = Arc::new(PmPool::new(1 << 20, sink));
    let pool = Arc::new(ObjPool::create(pm, 4096, PersistMode::X86).expect("pool"));
    let map = HashMapTx::create(pool, 4, CheckMode::Checkers, faults).expect("map");
    for k in 0..16u64 {
        let _ = map.insert(k, &gen::value_for(k, 32));
    }
}

#[test]
fn both_tools_flag_the_missing_backup() {
    // PMTest.
    let session = PmTestSession::builder().build();
    session.start();
    run_hashmap(session.sink(), FaultSet::one(Fault::HmTxSkipLogCount));
    session.send_trace();
    let pmtest_report = session.finish();
    assert!(pmtest_report.has(DiagKind::MissingLog));

    // pmemcheck-like.
    let pc = Arc::new(Pmemcheck::new());
    run_hashmap(pc.clone(), FaultSet::one(Fault::HmTxSkipLogCount));
    let pc_report = pc.finish();
    assert!(pc_report.has(DiagKind::MissingLog), "{pc_report}");
}

#[test]
fn both_tools_pass_the_correct_hashmap() {
    let session = PmTestSession::builder().build();
    session.start();
    run_hashmap(session.sink(), FaultSet::none());
    session.send_trace();
    assert!(session.finish().is_clean());

    let pc = Arc::new(Pmemcheck::new());
    run_hashmap(pc.clone(), FaultSet::none());
    let report = pc.finish();
    assert!(report.is_clean(), "{report}");
}

#[test]
fn both_tools_flag_unpersisted_tx_stores() {
    use pmtest::txlib::TxOptions;
    let drive = |sink: pmtest::trace::SharedSink| {
        let pm = Arc::new(PmPool::new(1 << 18, sink));
        let pool = Arc::new(ObjPool::create(pm, 4096, PersistMode::X86).expect("pool"));
        let root = pool.root().start();
        pool.pool().emit(Event::TxCheckerStart);
        let mut tx = pool
            .begin_tx_with(TxOptions { skip_commit_writeback: true, ..TxOptions::default() })
            .expect("begin");
        tx.add(ByteRange::with_len(root, 8)).expect("add");
        tx.write_u64(root, 9).expect("write");
        tx.commit().expect("commit");
        pool.pool().emit(Event::TxCheckerEnd);
    };

    let session = PmTestSession::builder().build();
    session.start();
    drive(session.sink());
    session.send_trace();
    assert!(session.finish().has(DiagKind::NotPersisted));

    let pc = Arc::new(Pmemcheck::new());
    drive(pc.clone());
    assert!(pc.finish().has(DiagKind::NotPersisted));
}

/// The flexibility gap (Table 1): pmemcheck cannot express the low-level
/// ordering assertion that PMTest's `isOrderedBefore` checks — the paper's
/// motivating Fig. 1a bug slips through it.
#[test]
fn only_pmtest_catches_the_ordering_bug() {
    let drive = |sink: pmtest::trace::SharedSink| -> (ByteRange, ByteRange) {
        let pm = PmPool::new(4096, sink);
        let data = pm.write_u64(0, 0xDA7A).unwrap();
        let valid = pm.write_u8(64, 1).unwrap();
        pm.flush(data);
        pm.flush(valid);
        pm.fence(); // one fence: durable, but order unconstrained
        (data, valid)
    };

    // PMTest with the explicit ordering checker: caught.
    let session = PmTestSession::builder().build();
    session.start();
    let pm = PmPool::new(4096, session.sink());
    let data = pm.write_u64(0, 0xDA7A).unwrap();
    let valid = pm.write_u8(64, 1).unwrap();
    pm.flush(data);
    pm.flush(valid);
    pm.fence();
    session.is_ordered_before(data, valid);
    session.send_trace();
    assert!(session.finish().has(DiagKind::NotOrderedBefore));

    // pmemcheck-like: everything is durable, so nothing is reported — it
    // has no way to express the ordering requirement.
    let pc = Arc::new(Pmemcheck::new());
    let _ = drive(pc.clone());
    assert!(pc.finish().is_clean(), "pmemcheck misses the Fig. 1a ordering bug");
}

/// The model gap: pmemcheck ignores HOPS fences entirely, so a HOPS
/// program looks "never persisted" or silently passes depending on the
/// trace; PMTest validates it under the HOPS rules.
#[test]
fn only_pmtest_supports_hops() {
    let session = PmTestSession::builder().model(HopsModel::new()).build();
    session.start();
    let pm = PmPool::new(4096, session.sink());
    let a = pm.write_u64(0, 1).unwrap();
    pm.dfence();
    session.is_persist(a);
    session.send_trace();
    assert!(session.finish().is_clean(), "PMTest validates HOPS durability");

    let pc = Arc::new(Pmemcheck::new());
    let pm = PmPool::new(4096, pc.clone());
    let _ = pm.write_u64(0, 1).unwrap();
    pm.dfence(); // ignored by pmemcheck
    let report = pc.finish();
    assert!(report.has(DiagKind::NotPersisted), "pmemcheck cannot see HOPS durability: {report}");
}
