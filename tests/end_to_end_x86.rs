//! End-to-end reproduction of the paper's worked examples (Figs. 3, 4, 7)
//! through the full session → engine → worker pipeline.

use pmtest::prelude::*;

fn session() -> PmTestSession {
    let s = PmTestSession::builder().build();
    s.start();
    s
}

/// Fig. 4: `sfence; write A; clwb A; write B; sfence` — the ordering check
/// fails (intervals overlap) and B is never guaranteed durable.
#[test]
fn figure4_via_session() {
    let s = session();
    let pool = PmPool::new(4096, s.sink());
    pool.fence();
    let a = pool.write_u64(0x00, 1).unwrap();
    pool.flush(a);
    let b = pool.write_u64(0x40, 2).unwrap();
    pool.fence();
    s.is_ordered_before(a, b);
    s.is_persist(b);
    s.send_trace();
    let report = s.finish();
    assert_eq!(report.fail_count(), 2, "{report}");
    let kinds: Vec<DiagKind> = report.iter().map(|d| d.kind).collect();
    assert_eq!(kinds, [DiagKind::NotOrderedBefore, DiagKind::NotPersisted]);
}

/// Fig. 7: the persist interval of A closes at the fence; B's interval is
/// open, so `isPersist(B)` fails while `isOrderedBefore(A, B)` passes.
#[test]
fn figure7_via_session() {
    let s = session();
    let pool = PmPool::new(4096, s.sink());
    let a = pool.write(0x10, &[0xAA; 64]).unwrap();
    pool.flush(a);
    pool.fence();
    let b = pool.write(0x50, &[0xBB; 64]).unwrap();
    s.is_persist(b);
    s.is_ordered_before(ByteRange::new(0x10, 0x50), b);
    s.send_trace();
    let report = s.finish();
    assert_eq!(report.fail_count(), 1, "{report}");
    assert!(report.has(DiagKind::NotPersisted));
    assert!(!report.has(DiagKind::NotOrderedBefore));
}

/// Fig. 3a: the correctly barriered x86 sequence passes all three checkers.
#[test]
fn figure3a_clean() {
    let s = session();
    let pool = PmPool::new(4096, s.sink());
    let a = pool.write_u64(0x00, 1).unwrap();
    pool.persist_barrier(a);
    let b = pool.write_u64(0x40, 2).unwrap();
    pool.persist_barrier(b);
    s.is_ordered_before(a, b);
    s.is_persist(a);
    s.is_persist(b);
    s.send_trace();
    assert!(s.finish().is_clean());
}

/// Fig. 3b: the same checkers validate the HOPS sequence under the HOPS
/// rules.
#[test]
fn figure3b_clean_under_hops() {
    let s = PmTestSession::builder().model(HopsModel::new()).build();
    s.start();
    let pool = PmPool::new(4096, s.sink());
    let a = pool.write_u64(0x00, 1).unwrap();
    pool.ofence();
    let b = pool.write_u64(0x40, 2).unwrap();
    pool.dfence();
    s.is_ordered_before(a, b);
    s.is_persist(a);
    s.is_persist(b);
    s.send_trace();
    assert!(s.finish().is_clean());
}

/// A write invalidates the pending writeback of its range (§4.4 write
/// rule): flushing before the last write does not persist it.
#[test]
fn write_after_flush_reopens_interval() {
    let s = session();
    let pool = PmPool::new(4096, s.sink());
    let a = pool.write_u64(0, 1).unwrap();
    pool.flush(a);
    pool.write_u64(0, 2).unwrap();
    pool.fence();
    s.is_persist(a);
    s.send_trace();
    let report = s.finish();
    assert_eq!(report.fail_count(), 1);
}

/// Diagnostics carry the file/line of both the checker and the culprit
/// operation, as in the paper's `@<file>:<line>` output.
#[test]
fn diagnostics_point_at_this_file() {
    let s = session();
    let pool = PmPool::new(4096, s.sink());
    let a = pool.write_u64(0, 1).unwrap();
    s.is_persist(a);
    s.send_trace();
    let report = s.finish();
    let diag = report.iter().next().expect("one failure");
    assert!(diag.loc.file().ends_with("end_to_end_x86.rs"), "checker loc: {}", diag.loc);
    let culprit = diag.culprit.expect("culprit write recorded");
    assert!(culprit.file().ends_with("end_to_end_x86.rs"), "culprit loc: {culprit}");
    assert!(culprit.line() < diag.loc.line(), "write precedes checker");
}

/// Multiple independent traces: state does not leak between them.
#[test]
fn traces_are_isolated_units() {
    let s = session();
    let pool = PmPool::new(4096, s.sink());
    for i in 0..10u64 {
        let r = pool.write_u64(i * 8, i).unwrap();
        if i % 2 == 0 {
            pool.persist_barrier(r);
        }
        s.is_persist(r);
        s.send_trace();
    }
    let report = s.finish();
    assert_eq!(report.traces().len(), 10);
    assert_eq!(report.fail_count(), 5, "{report}");
}

/// The performance checkers (§5.1.2) fire through the full pipeline.
#[test]
fn performance_warnings_end_to_end() {
    let s = session();
    let pool = PmPool::new(4096, s.sink());
    let a = pool.write_u64(0, 1).unwrap();
    pool.flush(a);
    pool.flush(a); // duplicate
    pool.fence();
    pool.flush(ByteRange::with_len(0x100, 64)); // never written
    pool.fence();
    s.send_trace();
    let report = s.finish();
    assert_eq!(report.fail_count(), 0);
    assert!(report.has(DiagKind::DuplicateFlush));
    assert!(report.has(DiagKind::UnnecessaryFlush));
}

/// PMTest_EXCLUDE / INCLUDE control the testing scope end to end.
#[test]
fn exclude_include_scope() {
    let s = session();
    let pool = PmPool::new(4096, s.sink());
    let scratch = ByteRange::with_len(0x200, 8);
    s.exclude(scratch);
    pool.write_u64(0x200, 7).unwrap();
    s.is_persist(scratch); // would fail if tracked
    s.include(scratch);
    pool.write_u64(0x200, 8).unwrap();
    s.is_persist(scratch); // now it does fail
    s.send_trace();
    let report = s.finish();
    assert_eq!(report.fail_count(), 1, "{report}");
}

/// The variable registry works across scopes (PMTest_REG_VAR / GET_VAR).
#[test]
fn registered_variables() {
    let s = session();
    let pool = PmPool::new(4096, s.sink());

    // Scope 1: compute and register.
    {
        let r = pool.write_u64(0x80, 42).unwrap();
        s.reg_var("commit-record", r);
    }
    // Scope 2: check by name.
    assert!(s.is_persist_var("commit-record"));
    s.send_trace();
    let report = s.finish();
    assert_eq!(report.fail_count(), 1, "registered var was never persisted");
    assert_eq!(s.unreg_var("commit-record"), Some(ByteRange::with_len(0x80, 8)));
}
