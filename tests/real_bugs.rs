//! Table 6: the three *known* bugs (reproduced from commit history) and the
//! three *new* bugs PMTest found in PMFS and PMDK, each reproduced at its
//! analogous site in this codebase.
//!
//! | Paper bug | Here |
//! |---|---|
//! | known: `xips.c:207,262` flush same buffer twice | pmfs legacy double flush (same WARN class) |
//! | known: `files.c:232` flush an unmapped buffer | `legacy_flush_unmapped` |
//! | known: `rbtree_map.c:379` modify node without logging | `RbSkipLogRotatePivot` |
//! | new Bug 1: `journal.c:632` flush redundant data at commit | `legacy_double_flush` |
//! | new Bug 2: `btree_map.c:201` modify node without logging | `BtreeSkipLogSplitNode` |
//! | new Bug 3: `btree_map.c:367` log the same object twice | `BtreeDoubleLogSplitParent` |

use std::sync::Arc;

use pmtest::pmfs::{Pmfs, PmfsOptions};
use pmtest::prelude::*;
use pmtest::txlib::ObjPool;
use pmtest::workloads::{gen, BTree, CheckMode, Fault, FaultSet, KvMap, RbTree};

fn tx_session() -> (PmTestSession, Arc<ObjPool>) {
    let session = PmTestSession::builder().build();
    session.start();
    let pm = Arc::new(PmPool::new(1 << 21, session.sink()));
    let pool = Arc::new(ObjPool::create(pm, 4096, PersistMode::X86).expect("pool"));
    (session, pool)
}

fn run_pmfs(opts: PmfsOptions) -> Report {
    let session = PmTestSession::builder().build();
    session.start();
    let pm = Arc::new(PmPool::new(1 << 19, session.sink()));
    let fs = Pmfs::format(pm, PmfsOptions { checkers: true, ..opts }).expect("format");
    let ino = fs.create("db.dat").expect("create");
    session.send_trace();
    fs.write(ino, 0, b"some persistent payload").expect("write");
    session.send_trace();
    session.finish()
}

/// New Bug 1: committing the journal flushes the commit log entry, then
/// flushes the whole transaction again — "a better implementation should
/// flush only the remaining part".
#[test]
fn bug1_pmfs_journal_duplicate_flush() {
    let report = run_pmfs(PmfsOptions { legacy_double_flush: true, ..PmfsOptions::default() });
    assert!(report.has(DiagKind::DuplicateFlush), "{report}");
    assert_eq!(report.fail_count(), 0, "performance bug only");
    // The diagnostic points into the journal commit path.
    let diag = report.iter().find(|d| d.kind == DiagKind::DuplicateFlush).unwrap();
    assert!(diag.loc.file().contains("journal.rs"), "reported at {}", diag.loc);
}

/// Known bug (`files.c:232`): flushing a buffer that was never written.
#[test]
fn known_pmfs_flush_unmapped_buffer() {
    let report = run_pmfs(PmfsOptions { legacy_flush_unmapped: true, ..PmfsOptions::default() });
    assert!(report.has(DiagKind::UnnecessaryFlush), "{report}");
    assert_eq!(report.fail_count(), 0);
}

/// The fixed journal is completely clean — the paper's fix was accepted by
/// Intel with credit to PMTest.
#[test]
fn fixed_pmfs_journal_is_clean() {
    let report = run_pmfs(PmfsOptions::default());
    assert!(report.is_clean(), "{report}");
}

/// New Bug 2 (`btree_map.c:201`): `create_split_node` modifies the node
/// being split without logging it. "The correct implementation should call
/// TX_ADD(node)".
#[test]
fn bug2_btree_split_without_logging() {
    let (session, pool) = tx_session();
    let tree =
        BTree::create(pool, CheckMode::Checkers, FaultSet::one(Fault::BtreeSkipLogSplitNode))
            .unwrap();
    // Four inserts fill the order-4 root; the fifth splits it.
    for k in 0..8u64 {
        tree.insert(k, &gen::value_for(k, 16)).unwrap();
        session.send_trace();
    }
    let report = session.finish();
    assert!(report.has(DiagKind::MissingLog), "{report}");
    let diag = report.iter().find(|d| d.kind == DiagKind::MissingLog).unwrap();
    assert!(diag.loc.file().contains("btree.rs"), "reported at {}", diag.loc);
}

/// New Bug 3 (`btree_map.c:367`): the rotation/split caller logs a node
/// that its helper already logged — "double logging is unnecessary. This
/// bug is subtle as the two log operations are not in the same function."
#[test]
fn bug3_btree_double_logging() {
    let (session, pool) = tx_session();
    let tree =
        BTree::create(pool, CheckMode::Checkers, FaultSet::one(Fault::BtreeDoubleLogSplitParent))
            .unwrap();
    for k in 0..12u64 {
        tree.insert(k, &gen::value_for(k, 16)).unwrap();
        session.send_trace();
    }
    let report = session.finish();
    assert!(report.has(DiagKind::DuplicateLog), "{report}");
    assert_eq!(report.fail_count(), 0, "performance bug only: {report}");
}

/// Known bug (`rbtree_map.c:379`, fixed in the PMDK commit history): a
/// rotation modifies a tree node without adding it to the undo log.
#[test]
fn known_rbtree_unlogged_rotation() {
    let (session, pool) = tx_session();
    let tree =
        RbTree::create(pool, CheckMode::Checkers, FaultSet::one(Fault::RbSkipLogRotatePivot))
            .unwrap();
    // Sequential inserts force rotations quickly.
    for k in 0..16u64 {
        tree.insert(k, &gen::value_for(k, 16)).unwrap();
        session.send_trace();
    }
    let report = session.finish();
    assert!(report.has(DiagKind::MissingLog), "{report}");
}

/// All three PMDK-workload fixes pass cleanly.
#[test]
fn fixed_pmdk_workloads_are_clean() {
    for _ in 0..1 {
        let (session, pool) = tx_session();
        let tree = BTree::create(pool, CheckMode::Checkers, FaultSet::none()).unwrap();
        for k in 0..16u64 {
            tree.insert(k, &gen::value_for(k, 16)).unwrap();
            session.send_trace();
        }
        let report = session.finish();
        assert!(report.is_clean(), "btree: {report}");

        let (session, pool) = tx_session();
        let tree = RbTree::create(pool, CheckMode::Checkers, FaultSet::none()).unwrap();
        for k in 0..16u64 {
            tree.insert(k, &gen::value_for(k, 16)).unwrap();
            session.send_trace();
        }
        let report = session.finish();
        assert!(report.is_clean(), "rbtree: {report}");
    }
}
