//! Cross-validation of PMTest against the ground-truth crash oracle
//! (DESIGN.md §6): bugs that PMTest flags correspond to *reachable*
//! inconsistent crash states, and the correct protocols have none.

use std::sync::Arc;

use pmtest::pmem::crash::CrashSim;
use pmtest::pmfs::{Pmfs, PmfsOptions};
use pmtest::prelude::*;
use pmtest::txlib::ObjPool;
use pmtest::workloads::{gen, CheckMode, Fault, FaultSet, HashMapTx, KvMap};
use rand::rngs::SmallRng;
use rand::SeedableRng;

const SAMPLES_PER_POINT: usize = 16;

/// The hashmap consistency check used below: after recovery, the map's
/// count must equal the number of reachable keys, and every reachable node
/// must be intact.
fn hashmap_check(
    root_size: u64,
    expected_sets: &[Vec<u64>],
) -> impl Fn(&[u8]) -> Result<(), String> + '_ {
    move |image: &[u8]| {
        let pool = Arc::new(
            ObjPool::recover_image(image, root_size, PersistMode::X86)
                .map_err(|e| e.to_string())?,
        );
        let map =
            HashMapTx::open(pool, CheckMode::None, FaultSet::none()).map_err(|e| e.to_string())?;
        let count = map.len().map_err(|e| e.to_string())?;
        // The recovered state must match one of the expected key sets
        // (before or after the in-flight operation).
        'outer: for expected in expected_sets {
            if count != expected.len() as u64 {
                continue;
            }
            for &k in expected {
                match map.get(k) {
                    Ok(Some(v)) if v == gen::value_for(k, 16) => {}
                    _ => continue 'outer,
                }
            }
            return Ok(());
        }
        Err(format!("recovered state matches no consistent snapshot (count={count})"))
    }
}

fn record_one_insert(faults: FaultSet) -> (CrashSim, u64) {
    let pm = Arc::new(PmPool::untracked(1 << 18));
    let pool = Arc::new(ObjPool::create(pm.clone(), 4096, PersistMode::X86).unwrap());
    let map = HashMapTx::create(pool, 4, CheckMode::None, faults).unwrap();
    for k in 0..3u64 {
        map.insert(k, &gen::value_for(k, 16)).unwrap();
    }
    pm.begin_crash_recording();
    map.insert(3, &gen::value_for(3, 16)).unwrap();
    (CrashSim::from_pool(&pm).unwrap(), 4096)
}

/// The correct transactional hashmap: no reachable crash state is
/// inconsistent, at any crash point.
#[test]
fn correct_hashmap_has_no_bad_crash_state() {
    let (sim, root) = record_one_insert(FaultSet::none());
    let before: Vec<u64> = (0..3).collect();
    let after: Vec<u64> = (0..4).collect();
    let expected = [before, after];
    let check = hashmap_check(root, &expected);
    let mut rng = SmallRng::seed_from_u64(42);
    assert!(
        sim.find_violation_sampled(&check, SAMPLES_PER_POINT, &mut rng).is_none(),
        "correct protocol must be crash-consistent"
    );
}

/// The Fig. 1b bug (count not logged): PMTest flags it, and the oracle
/// confirms a reachable crash state where the recovered count disagrees
/// with the recovered keys.
#[test]
fn missing_count_log_has_a_reachable_bad_state() {
    let (sim, root) = record_one_insert(FaultSet::one(Fault::HmTxSkipLogCount));
    let before: Vec<u64> = (0..3).collect();
    let after: Vec<u64> = (0..4).collect();
    let expected = [before, after];
    let check = hashmap_check(root, &expected);
    let mut rng = SmallRng::seed_from_u64(42);
    let violation = sim.find_violation_sampled(&check, SAMPLES_PER_POINT, &mut rng);
    assert!(violation.is_some(), "the flagged bug must be reachable in hardware");
}

/// The missing-bucket-log bug: rollback cannot restore the bucket pointer,
/// so recovery can surface a half-linked chain.
#[test]
fn missing_bucket_log_has_a_reachable_bad_state() {
    let (sim, root) = record_one_insert(FaultSet::one(Fault::HmTxSkipLogBucket));
    let before: Vec<u64> = (0..3).collect();
    let after: Vec<u64> = (0..4).collect();
    let expected = [before, after];
    let check = hashmap_check(root, &expected);
    let mut rng = SmallRng::seed_from_u64(43);
    let violation = sim.find_violation_sampled(&check, SAMPLES_PER_POINT, &mut rng);
    assert!(violation.is_some());
}

/// PMFS: the correct journal yields a consistent file system at every
/// sampled crash state; skipping the commit writeback yields a reachable
/// inconsistency (or lost-but-committed data).
#[test]
fn pmfs_crash_states_match_pmtest_verdicts() {
    // Correct journal.
    let pm = Arc::new(PmPool::untracked(1 << 18));
    let fs = Pmfs::format(pm.clone(), PmfsOptions::default()).unwrap();
    pm.begin_crash_recording();
    let ino = fs.create("a").unwrap();
    fs.write(ino, 0, b"payload").unwrap();
    let sim = CrashSim::from_pool(&pm).unwrap();
    let check = |image: &[u8]| -> Result<(), String> {
        let fs = Pmfs::mount_image(image, PmfsOptions::default()).map_err(|e| e.to_string())?;
        fs.check_consistency()?;
        // If the file exists post-recovery it must be fully formed.
        if let Some(ino) = fs.lookup("a") {
            let stat = fs.stat(ino).map_err(|e| e.to_string())?;
            if stat.size > 0 {
                let data = fs.read(ino, 0, 7).map_err(|e| e.to_string())?;
                if data != b"payload" {
                    return Err("file content torn".to_owned());
                }
            }
        }
        Ok(())
    };
    assert!(sim.find_violation(&check, 2000).is_none(), "correct journal must be crash-consistent");

    // skip_commit_fence: the commit marker can persist before the data it
    // covers — a crash there shows "committed" metadata with torn content.
    let opts = PmfsOptions { skip_commit_fence: true, ..PmfsOptions::default() };
    let pm = Arc::new(PmPool::untracked(1 << 18));
    let fs = Pmfs::format(pm.clone(), opts).unwrap();
    pm.begin_crash_recording();
    let ino = fs.create("a").unwrap();
    fs.write(ino, 0, b"payload").unwrap();
    let sim = CrashSim::from_pool(&pm).unwrap();
    let violation = sim.find_violation(&check, 3000);
    assert!(violation.is_some(), "the ordering bug PMTest flags must be reachable in hardware");
}
