//! Differential property testing of the checking engine: random traces are
//! validated both by PMTest's interval-based single pass and by a naive
//! per-byte reference implementation of the §4.4 / §5.2 checking rules.
//! Any disagreement on any checker verdict or performance warning is a bug
//! in one of them.

use pmtest::prelude::*;
use proptest::prelude::*;

const SPACE: u64 = 96;

#[derive(Clone, Debug)]
enum Op {
    Write(u64, u64),
    Flush(u64, u64),
    Fence,
    OFence,
    DFence,
    IsPersist(u64, u64),
    IsOrderedBefore(u64, u64, u64, u64),
}

fn arb_range() -> impl Strategy<Value = (u64, u64)> {
    (0..SPACE, 1..24u64).prop_map(|(s, l)| (s, l.min(SPACE - s).max(1)))
}

fn arb_op(hops: bool) -> impl Strategy<Value = Op> {
    let base = prop_oneof![
        4 => arb_range().prop_map(|(s, l)| Op::Write(s, l)),
        2 => arb_range().prop_map(|(s, l)| Op::IsPersist(s, l)),
        2 => (arb_range(), arb_range())
            .prop_map(|((a, al), (b, bl))| Op::IsOrderedBefore(a, al, b, bl)),
    ];
    if hops {
        prop_oneof![
            6 => base,
            2 => Just(Op::OFence),
            2 => Just(Op::DFence),
        ]
        .boxed()
    } else {
        prop_oneof![
            6 => base,
            3 => arb_range().prop_map(|(s, l)| Op::Flush(s, l)),
            3 => Just(Op::Fence),
        ]
        .boxed()
    }
}

/// Per-byte reference state: the §4.4 intervals at byte granularity.
#[derive(Clone, Copy, Default)]
struct ByteState {
    pi: Option<(u64, Option<u64>)>,
    fi: Option<(u64, Option<u64>)>,
}

#[derive(Default)]
struct Reference {
    bytes: Vec<ByteState>,
    t: u64,
}

impl Reference {
    fn new() -> Self {
        Self { bytes: vec![ByteState::default(); SPACE as usize], t: 0 }
    }

    fn write(&mut self, s: u64, l: u64) {
        for b in s..s + l {
            self.bytes[b as usize] = ByteState { pi: Some((self.t, None)), fi: None };
        }
    }

    /// Returns (unnecessary, duplicate) warning verdicts for this flush.
    fn flush(&mut self, s: u64, l: u64) -> (bool, bool) {
        let (mut unnecessary, mut duplicate) = (false, false);
        for b in s..s + l {
            let st = &mut self.bytes[b as usize];
            match (st.pi, st.fi) {
                (None, None) => unnecessary = true,
                (pi, fi) => {
                    let fi_open = matches!(fi, Some((_, None)));
                    let pi_closed = matches!(pi, Some((_, Some(_))));
                    let flush_only = pi.is_none() && fi.is_some();
                    if fi_open || pi_closed || flush_only {
                        duplicate = true;
                    }
                    if flush_only {
                        unnecessary = true;
                    }
                }
            }
            st.fi = Some((self.t, None));
        }
        (unnecessary, duplicate)
    }

    fn fence(&mut self) {
        self.t += 1;
        for st in &mut self.bytes {
            if let Some((fs, None)) = st.fi {
                st.fi = Some((fs, Some(self.t)));
                if let Some((ps, None)) = st.pi {
                    st.pi = Some((ps, Some(self.t)));
                }
            }
        }
    }

    fn ofence(&mut self) {
        self.t += 1;
    }

    fn dfence(&mut self) {
        self.t += 1;
        for st in &mut self.bytes {
            if let Some((ps, None)) = st.pi {
                st.pi = Some((ps, Some(self.t)));
            }
        }
    }

    /// `isPersist` fails iff any written byte's interval is open.
    fn is_persist_fails(&self, s: u64, l: u64) -> bool {
        (s..s + l).any(|b| matches!(self.bytes[b as usize].pi, Some((_, None))))
    }

    /// x86 `isOrderedBefore`: every A-interval must end no later than any
    /// B-interval starts.
    fn ordered_fails_x86(&self, a: u64, al: u64, b: u64, bl: u64) -> bool {
        for ba in a..a + al {
            let Some(pa) = self.bytes[ba as usize].pi else { continue };
            for bb in b..b + bl {
                let Some(pb) = self.bytes[bb as usize].pi else { continue };
                let ok = matches!(pa.1, Some(end) if end <= pb.0);
                if !ok {
                    return true;
                }
            }
        }
        false
    }

    /// HOPS `isOrderedBefore`: strictly earlier start epoch.
    fn ordered_fails_hops(&self, a: u64, al: u64, b: u64, bl: u64) -> bool {
        for ba in a..a + al {
            let Some(pa) = self.bytes[ba as usize].pi else { continue };
            for bb in b..b + bl {
                let Some(pb) = self.bytes[bb as usize].pi else { continue };
                if pa.0 >= pb.0 {
                    return true;
                }
            }
        }
        false
    }
}

/// Runs ops through both implementations; returns disagreement description.
fn differential(ops: &[Op], hops: bool) -> Result<(), String> {
    // Build the PMTest trace with the op index as the source line, so each
    // diagnostic can be attributed to the op that raised it.
    let mut trace = Trace::new(0);
    for (i, op) in ops.iter().enumerate() {
        let loc = SourceLoc::new("prop.rs", i as u32 + 1);
        let event = match *op {
            Op::Write(s, l) => Event::Write(ByteRange::with_len(s, l)),
            Op::Flush(s, l) => Event::Flush(ByteRange::with_len(s, l)),
            Op::Fence => Event::Fence,
            Op::OFence => Event::OFence,
            Op::DFence => Event::DFence,
            Op::IsPersist(s, l) => Event::IsPersist(ByteRange::with_len(s, l)),
            Op::IsOrderedBefore(a, al, b, bl) => {
                Event::IsOrderedBefore(ByteRange::with_len(a, al), ByteRange::with_len(b, bl))
            }
        };
        trace.push(event.at(loc));
    }
    let diags = if hops {
        pmtest::core::check_trace(&trace, &HopsModel::new())
    } else {
        pmtest::core::check_trace(&trace, &X86Model::new())
    };
    let has = |line: usize, kind: DiagKind| {
        diags.iter().any(|d| d.loc.line() == line as u32 + 1 && d.kind == kind)
    };

    // Replay through the reference, comparing per-op verdicts.
    let mut reference = Reference::new();
    for (i, op) in ops.iter().enumerate() {
        match *op {
            Op::Write(s, l) => reference.write(s, l),
            Op::Flush(s, l) => {
                let (unnecessary, duplicate) = reference.flush(s, l);
                if unnecessary != has(i, DiagKind::UnnecessaryFlush) {
                    return Err(format!(
                        "op {i} {op:?}: unnecessary-flush mismatch (ref={unnecessary})"
                    ));
                }
                if duplicate != has(i, DiagKind::DuplicateFlush) {
                    return Err(format!(
                        "op {i} {op:?}: duplicate-flush mismatch (ref={duplicate})"
                    ));
                }
            }
            Op::Fence => reference.fence(),
            Op::OFence => reference.ofence(),
            Op::DFence => reference.dfence(),
            Op::IsPersist(s, l) => {
                let fails = reference.is_persist_fails(s, l);
                if fails != has(i, DiagKind::NotPersisted) {
                    return Err(format!("op {i} {op:?}: isPersist mismatch (ref={fails})"));
                }
            }
            Op::IsOrderedBefore(a, al, b, bl) => {
                let fails = if hops {
                    reference.ordered_fails_hops(a, al, b, bl)
                } else {
                    reference.ordered_fails_x86(a, al, b, bl)
                };
                if fails != has(i, DiagKind::NotOrderedBefore) {
                    return Err(format!("op {i} {op:?}: isOrderedBefore mismatch (ref={fails})"));
                }
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn x86_checker_matches_byte_reference(ops in prop::collection::vec(arb_op(false), 0..60)) {
        prop_assert_eq!(differential(&ops, false), Ok(()));
    }

    #[test]
    fn hops_checker_matches_byte_reference(ops in prop::collection::vec(arb_op(true), 0..60)) {
        prop_assert_eq!(differential(&ops, true), Ok(()));
    }
}

/// Regression shapes worth pinning beyond random search.
#[test]
fn differential_pinned_cases() {
    use Op::*;
    let cases: Vec<Vec<Op>> = vec![
        // Fig. 4.
        vec![
            Fence,
            Write(0, 8),
            Flush(0, 8),
            Write(16, 8),
            Fence,
            IsOrderedBefore(0, 8, 16, 8),
            IsPersist(16, 8),
        ],
        // Flush split across written/unwritten.
        vec![Write(0, 4), Flush(0, 8), Fence, IsPersist(0, 8)],
        // Overwrite invalidates a pending flush.
        vec![Write(0, 8), Flush(0, 8), Write(4, 4), Fence, IsPersist(0, 8)],
        // Inverted order without overlap.
        vec![
            Write(16, 8),
            Flush(16, 8),
            Fence,
            Write(0, 8),
            Flush(0, 8),
            Fence,
            IsOrderedBefore(0, 8, 16, 8),
        ],
        // Flush-only bytes then re-flush.
        vec![Flush(0, 8), Flush(0, 8), Fence, Flush(0, 8)],
    ];
    for (n, ops) in cases.iter().enumerate() {
        assert_eq!(differential(ops, false), Ok(()), "pinned case {n}");
    }
}
