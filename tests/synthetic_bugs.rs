//! Table 5 end-to-end: every synthetic bug in the catalog is detected, and
//! no clean variant produces a false alarm (§6.3: "PMTest reported all the
//! synthetic bugs we introduced").

use std::collections::HashSet;

use pmtest::bugs::{catalog, run_case, run_clean, BugClass, Scenario};

#[test]
fn catalog_covers_the_paper_scale() {
    let cases = catalog();
    assert!(cases.len() >= 45, "paper: 45 synthetic bugs; got {}", cases.len());
    let classes: HashSet<BugClass> = cases.iter().map(|c| c.class).collect();
    assert_eq!(classes.len(), 6, "all six Table 5 classes present");
}

#[test]
fn every_synthetic_bug_is_detected() {
    let mut missed = Vec::new();
    for case in catalog() {
        let outcome = run_case(&case);
        if !outcome.detected {
            missed.push(format!("{} ({}): {}", case.id, case.class, outcome.report));
        }
    }
    assert!(missed.is_empty(), "undetected bugs:\n{}", missed.join("\n"));
}

#[test]
fn clean_variants_have_no_false_positives() {
    let mut false_positives = Vec::new();
    let mut seen_scenarios = HashSet::new();
    for case in catalog() {
        // One clean run per distinct scenario shape is enough.
        let key = match &case.scenario {
            Scenario::Structure { kind, with_removes, .. } => format!("{kind:?}/{with_removes}"),
            Scenario::Pmfs { .. } => "pmfs".to_owned(),
            Scenario::TxlibAbandon => "txlib".to_owned(),
        };
        if !seen_scenarios.insert(key) {
            continue;
        }
        let outcome = run_clean(&case);
        if outcome.detected {
            false_positives.push(format!("{}: {}", case.id, outcome.report));
        }
    }
    assert!(false_positives.is_empty(), "false positives:\n{}", false_positives.join("\n"));
}

#[test]
fn detection_reports_the_expected_kind_not_just_any_failure() {
    // Spot-check one case per class: the *specific* diagnostic kind fires.
    let cases = catalog();
    for class in [
        BugClass::Ordering,
        BugClass::Writeback,
        BugClass::LowLevelPerf,
        BugClass::Backup,
        BugClass::Completion,
        BugClass::TxPerf,
    ] {
        let case = cases.iter().find(|c| c.class == class).expect("class populated");
        let outcome = run_case(case);
        assert!(
            outcome.report.iter().any(|d| d.kind == case.expect),
            "case {} expected {:?}, report: {}",
            case.id,
            case.expect,
            outcome.report
        );
    }
}
