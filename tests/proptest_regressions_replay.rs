//! Hygiene for `property_workloads.proptest-regressions`.
//!
//! The vendored proptest shim does **not** read `.proptest-regressions`
//! files, so cases stored there were silently never replayed. This test
//! closes the gap: every `cc` line is parsed and re-run against the
//! property it shrank from, and any line whose payload matches no known
//! property shape fails the build — a stored regression must never
//! reference a vanished property.

use std::collections::HashMap;
use std::sync::Arc;

use pmtest::prelude::*;
use pmtest::txlib::ObjPool;
use pmtest::workloads::{gen, BTree, CheckMode, CritBitTree, FaultSet, HashMapTx, KvMap, RbTree};
use rand::rngs::SmallRng;
use rand::SeedableRng;

const REGRESSIONS: &str = include_str!("property_workloads.proptest-regressions");

#[derive(Clone, Debug, PartialEq, Eq)]
enum WlOp {
    Insert(u64, usize),
    Remove(u64),
    Get(u64),
}

/// One stored regression, matched to the property it shrank from.
#[derive(Clone, Debug)]
enum Regression {
    /// `ops = [Insert(..), Remove(..), Get(..)]` — the
    /// `structures_mirror_hashmap_and_stay_clean` property.
    MirrorOps(Vec<WlOp>),
    /// `ops = [(k, l), ...], seed = N` — the
    /// `hashmap_recovers_to_an_operation_prefix` property.
    RecoveryOps(Vec<(u64, usize)>, u64),
}

/// Parses the payload after `shrinks to `. Returns `None` if the payload
/// matches no known property shape.
fn parse_payload(payload: &str) -> Option<Regression> {
    let payload = payload.trim();
    let rest = payload.strip_prefix("ops = [")?;
    let (list, tail) = rest.split_once(']')?;
    let tail = tail.trim().trim_start_matches(',').trim();
    if let Some(seed) = tail.strip_prefix("seed = ") {
        let seed: u64 = seed.trim().parse().ok()?;
        let mut ops = Vec::new();
        for item in split_items(list) {
            let inner = item.strip_prefix('(')?.strip_suffix(')')?;
            let (k, l) = inner.split_once(',')?;
            ops.push((k.trim().parse().ok()?, l.trim().parse().ok()?));
        }
        return Some(Regression::RecoveryOps(ops, seed));
    }
    if !tail.is_empty() {
        return None;
    }
    let mut ops = Vec::new();
    for item in split_items(list) {
        let (name, args) = item.split_once('(')?;
        let args = args.strip_suffix(')')?;
        match name.trim() {
            "Insert" => {
                let (k, l) = args.split_once(',')?;
                ops.push(WlOp::Insert(k.trim().parse().ok()?, l.trim().parse().ok()?));
            }
            "Remove" => ops.push(WlOp::Remove(args.trim().parse().ok()?)),
            "Get" => ops.push(WlOp::Get(args.trim().parse().ok()?)),
            _ => return None,
        }
    }
    Some(Regression::MirrorOps(ops))
}

/// Splits a `[...]` body into top-level comma-separated items, respecting
/// one level of parentheses.
fn split_items(list: &str) -> Vec<String> {
    let mut items = Vec::new();
    let mut depth = 0usize;
    let mut current = String::new();
    for ch in list.chars() {
        match ch {
            '(' => {
                depth += 1;
                current.push(ch);
            }
            ')' => {
                depth = depth.saturating_sub(1);
                current.push(ch);
            }
            ',' if depth == 0 => {
                if !current.trim().is_empty() {
                    items.push(current.trim().to_owned());
                }
                current.clear();
            }
            _ => current.push(ch),
        }
    }
    if !current.trim().is_empty() {
        items.push(current.trim().to_owned());
    }
    items
}

fn stored_regressions() -> Vec<(String, Option<Regression>)> {
    REGRESSIONS
        .lines()
        .map(str::trim)
        .filter(|l| l.starts_with("cc "))
        .map(|line| {
            let payload = line.split_once("# shrinks to").map(|(_, p)| p).unwrap_or("");
            (line.to_owned(), parse_payload(payload))
        })
        .collect()
}

type Structure = (&'static str, Arc<dyn KvMap>, Box<dyn Fn() -> Result<(), String>>);

fn make_structures(sink: pmtest::trace::SharedSink) -> Vec<Structure> {
    let mk_pool = |sink: &pmtest::trace::SharedSink| {
        Arc::new(
            ObjPool::create(Arc::new(PmPool::new(1 << 21, sink.clone())), 4096, PersistMode::X86)
                .expect("pool"),
        )
    };
    let ctree = Arc::new(
        CritBitTree::create(mk_pool(&sink), CheckMode::Checkers, FaultSet::none()).unwrap(),
    );
    let btree =
        Arc::new(BTree::create(mk_pool(&sink), CheckMode::Checkers, FaultSet::none()).unwrap());
    let rbtree =
        Arc::new(RbTree::create(mk_pool(&sink), CheckMode::Checkers, FaultSet::none()).unwrap());
    let hashmap = Arc::new(
        HashMapTx::create(mk_pool(&sink), 8, CheckMode::Checkers, FaultSet::none()).unwrap(),
    );
    vec![
        ("ctree", ctree.clone(), {
            let t = ctree;
            Box::new(move || t.check_invariants())
        }),
        ("btree", btree.clone(), {
            let t = btree;
            Box::new(move || t.check_invariants())
        }),
        ("rbtree", rbtree.clone(), {
            let t = rbtree;
            Box::new(move || t.check_no_red_red())
        }),
        ("hashmap", hashmap, Box::new(|| Ok(()))),
    ]
}

/// The `structures_mirror_hashmap_and_stay_clean` property body, as a plain
/// function replayable on a stored case.
fn replay_mirror(ops: &[WlOp]) {
    let session = PmTestSession::builder().build();
    session.start();
    for (name, map, validate) in make_structures(session.sink()) {
        let mut mirror: HashMap<u64, Vec<u8>> = HashMap::new();
        for op in ops {
            match *op {
                WlOp::Insert(k, len) => {
                    let v = gen::value_for(k, len);
                    map.insert(k, &v).unwrap();
                    mirror.insert(k, v);
                }
                WlOp::Remove(k) => {
                    let removed = map.remove(k).unwrap();
                    assert_eq!(removed, mirror.remove(&k).is_some(), "{name}: remove {k}");
                }
                WlOp::Get(k) => {
                    assert_eq!(map.get(k).unwrap(), mirror.get(&k).cloned(), "{name}: get {k}");
                }
            }
            assert_eq!(validate(), Ok(()), "{name}: invariants after {op:?}");
            session.send_trace();
        }
        assert_eq!(map.len().unwrap(), mirror.len() as u64, "{name}: len");
        for (k, v) in &mirror {
            assert_eq!(map.get(*k).unwrap(), Some(v.clone()), "{name}: final {k}");
        }
    }
    let report = session.finish();
    assert!(report.is_clean(), "diagnostics on a correct run: {report}");
}

/// The `hashmap_recovers_to_an_operation_prefix` property body.
fn replay_recovery(ops: &[(u64, usize)], seed: u64) {
    let pm = Arc::new(PmPool::untracked(1 << 17));
    let pool = Arc::new(ObjPool::create(pm.clone(), 4096, PersistMode::X86).unwrap());
    let map = HashMapTx::create(pool, 8, CheckMode::None, FaultSet::none()).unwrap();
    let mut prefixes: Vec<HashMap<u64, Vec<u8>>> = vec![HashMap::new()];
    pm.begin_crash_recording();
    for &(k, len) in ops {
        let v = gen::value_for(k, len);
        map.insert(k, &v).unwrap();
        let mut next = prefixes.last().unwrap().clone();
        next.insert(k, v);
        prefixes.push(next);
    }
    let sim = pmtest::pmem::crash::CrashSim::from_pool(&pm).unwrap();
    let check = |image: &[u8]| -> Result<(), String> {
        let pool = Arc::new(
            ObjPool::recover_image(image, 4096, PersistMode::X86).map_err(|e| e.to_string())?,
        );
        let map =
            HashMapTx::open(pool, CheckMode::None, FaultSet::none()).map_err(|e| e.to_string())?;
        'prefix: for mirror in &prefixes {
            if map.len().map_err(|e| e.to_string())? != mirror.len() as u64 {
                continue;
            }
            for (k, v) in mirror {
                match map.get(*k) {
                    Ok(Some(got)) if &got == v => {}
                    _ => continue 'prefix,
                }
            }
            return Ok(());
        }
        Err("recovered state matches no operation prefix".to_owned())
    };
    let mut rng = SmallRng::seed_from_u64(seed);
    let violation = sim.find_violation_sampled(&check, 4, &mut rng);
    assert!(violation.is_none(), "{:?}", violation.map(|v| (v.point, v.reason)));
}

/// Every stored `cc` line must parse against a known property shape; a line
/// that matches none references a vanished property and fails the build.
#[test]
fn no_stored_regression_references_a_vanished_property() {
    let stored = stored_regressions();
    assert!(!stored.is_empty(), "regressions file has no cc lines");
    for (line, parsed) in stored {
        assert!(parsed.is_some(), "stored regression matches no current property: {line}");
    }
}

/// Every stored regression is actually re-run.
#[test]
fn stored_regressions_replay_clean() {
    for (line, parsed) in stored_regressions() {
        match parsed {
            Some(Regression::MirrorOps(ops)) => replay_mirror(&ops),
            Some(Regression::RecoveryOps(ops, seed)) => replay_recovery(&ops, seed),
            None => panic!("unparsable stored regression: {line}"),
        }
    }
}

/// The vanished-property detector actually detects: payloads from renamed
/// or deleted properties must not silently parse.
#[test]
fn unknown_payload_shapes_are_rejected() {
    for payload in [
        "ops = [Insert(1, 2)], extra = 3",
        "ops = [Frobnicate(1)]",
        "values = [1, 2, 3]",
        "ops = [Insert(1)]",
    ] {
        assert!(parse_payload(payload).is_none(), "payload wrongly accepted: {payload}");
    }
}
