//! Multithreaded testing (§4.5): per-thread traces, concurrent clients on
//! the Memcached-like store, multiple checking workers, and the kernel
//! FIFO transport.

use std::sync::Arc;

use pmtest::mnemosyne::MnPool;
use pmtest::pmfs::{Pmfs, PmfsOptions};
use pmtest::prelude::*;
use pmtest::workloads::{gen, CheckMode, FaultSet, KvStore};

#[test]
fn concurrent_clients_produce_clean_per_thread_traces() {
    let session = PmTestSession::builder().workers(2).build();
    session.start();
    let pm = Arc::new(PmPool::new(1 << 22, session.sink()));
    let pool = Arc::new(MnPool::create(pm, 4096, PersistMode::X86).unwrap());
    let store =
        Arc::new(KvStore::create(pool, 64, 16, CheckMode::Checkers, FaultSet::none()).unwrap());

    std::thread::scope(|s| {
        for t in 0..4u64 {
            let store = store.clone();
            let session = session.clone();
            s.spawn(move || {
                session.thread_init();
                for op in gen::memslap(200, 500, 20, t) {
                    match op {
                        gen::Op::Set(k) => {
                            store.set(t * 10_000 + k, &gen::value_for(k, 48)).unwrap();
                            session.send_trace();
                        }
                        gen::Op::Get(k) => {
                            let _ = store.get(t * 10_000 + k).unwrap();
                        }
                    }
                }
            });
        }
    });
    let report = session.finish();
    assert!(report.traces().len() >= 4, "each thread shipped traces");
    assert!(report.is_clean(), "{report}");
}

#[test]
fn worker_count_does_not_change_results() {
    let run = |workers: usize| -> (usize, usize) {
        let session = PmTestSession::builder().workers(workers).build();
        session.start();
        let pm = Arc::new(PmPool::new(1 << 21, session.sink()));
        let pool = Arc::new(MnPool::create(pm, 4096, PersistMode::X86).unwrap());
        let store = KvStore::create(pool, 16, 4, CheckMode::Checkers, FaultSet::none()).unwrap();
        for k in 0..50u64 {
            store.set(k, &gen::value_for(k, 32)).unwrap();
            session.send_trace();
        }
        let report = session.finish();
        (report.traces().len(), report.fail_count() + report.warn_count())
    };
    let (t1, d1) = run(1);
    let (t4, d4) = run(4);
    assert_eq!(t1, t4);
    assert_eq!(d1, d4);
    assert_eq!(d1, 0);
}

#[test]
fn kernel_fifo_pipeline_matches_direct_checking() {
    // The same PMFS workload checked directly and through the FIFO gives
    // identical diagnostics.
    let run_direct = || {
        let session = PmTestSession::builder().build();
        session.start();
        let pm = Arc::new(PmPool::new(1 << 19, session.sink()));
        let opts =
            PmfsOptions { checkers: true, legacy_double_flush: true, ..PmfsOptions::default() };
        let fs = Pmfs::format(pm, opts).unwrap();
        let ino = fs.create("x").unwrap();
        fs.write(ino, 0, b"abc").unwrap();
        session.send_trace();
        session.finish()
    };

    let run_fifo = || {
        use pmtest::trace::MemorySink;
        let fifo = Arc::new(KernelFifo::with_capacity(8));
        let engine = Arc::new(Engine::new(EngineConfig::default()));
        let pump = {
            let (fifo, engine) = (fifo.clone(), engine.clone());
            std::thread::spawn(move || {
                while let Some(trace) = fifo.pop() {
                    engine.submit(trace).unwrap();
                }
            })
        };
        let sink = Arc::new(MemorySink::new());
        let pm = Arc::new(PmPool::new(1 << 19, sink.clone()));
        let opts =
            PmfsOptions { checkers: true, legacy_double_flush: true, ..PmfsOptions::default() };
        let fs = Pmfs::format(pm, opts).unwrap();
        let ino = fs.create("x").unwrap();
        fs.write(ino, 0, b"abc").unwrap();
        fifo.push(sink.take_trace(0));
        fifo.close();
        pump.join().unwrap();
        engine.take_report()
    };

    let direct = run_direct();
    let fifo = run_fifo();
    assert_eq!(direct.fail_count(), fifo.fail_count());
    assert_eq!(direct.warn_count(), fifo.warn_count());
    assert!(fifo.has(DiagKind::DuplicateFlush));
}

#[test]
fn backpressure_does_not_deadlock_the_pipeline() {
    // A tiny FIFO forces the producer to block; the pump keeps draining.
    let fifo = Arc::new(KernelFifo::with_capacity(2));
    let engine = Arc::new(Engine::new(EngineConfig::default()));
    let pump = {
        let (fifo, engine) = (fifo.clone(), engine.clone());
        std::thread::spawn(move || {
            // Batched drain: everything available goes to the engine in one
            // dispatch.
            loop {
                let batch = fifo.pop_batch(16);
                if batch.is_empty() {
                    break;
                }
                engine.submit_batch(batch).unwrap();
            }
        })
    };
    let producer = {
        let fifo = fifo.clone();
        std::thread::spawn(move || {
            for id in 0..100 {
                let mut t = Trace::new(id);
                t.push(Event::Write(ByteRange::with_len(0, 8)).here());
                t.push(Event::Flush(ByteRange::with_len(0, 8)).here());
                t.push(Event::Fence.here());
                t.push(Event::IsPersist(ByteRange::with_len(0, 8)).here());
                assert!(fifo.push(t));
            }
        })
    };
    producer.join().unwrap();
    fifo.close();
    pump.join().unwrap();
    let report = engine.take_report();
    assert_eq!(report.traces().len(), 100);
    assert!(report.is_clean());
}
