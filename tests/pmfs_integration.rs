//! End-to-end PMFS integration: the full kernel pipeline (§4.5) under real
//! file-system load, plus crash/remount recovery of the journal.

use std::sync::Arc;

use pmtest::pmfs::{Pmfs, PmfsOptions};
use pmtest::prelude::*;
use pmtest::trace::MemorySink;
use pmtest::workloads::fsbench;

/// Drives the Filebench personality through the kernel FIFO with the
/// checking engine on the "user-space" side — the complete Fig. 9b stack.
#[test]
fn filebench_through_the_kernel_fifo_is_clean() {
    let fifo = Arc::new(KernelFifo::with_capacity(64));
    let engine = Arc::new(Engine::new(EngineConfig::default()));
    let pump = {
        let (fifo, engine) = (fifo.clone(), engine.clone());
        std::thread::spawn(move || loop {
            let batch = fifo.pop_batch(8);
            if batch.is_empty() {
                break;
            }
            engine.submit_batch(batch).unwrap();
        })
    };

    let sink = Arc::new(MemorySink::new());
    let pm = Arc::new(PmPool::new(1 << 21, sink.clone()));
    let opts = PmfsOptions { checkers: true, inodes: 64, ..PmfsOptions::default() };
    let fs = Pmfs::format(pm, opts).unwrap();
    for client in 0..4 {
        let cfg = fsbench::FilebenchConfig { ops: 40, seed: client as u64, ..Default::default() };
        fsbench::filebench(&fs, client, cfg).unwrap();
        // Kernel side ships one trace per client batch.
        assert!(fifo.push(sink.take_trace(client as u64)));
    }
    fifo.close();
    pump.join().unwrap();
    let report = engine.take_report();
    let stats = engine.stats();
    assert_eq!(stats.traces_checked, 4);
    assert!(stats.entries_processed > 100, "real trace volume: {stats:?}");
    assert!(report.is_clean(), "{report}");
    assert!(fs.check_consistency().is_ok());
}

/// A crash mid-transaction leaves a journaled image; remounting rolls it
/// back and the file system is consistent and usable again.
#[test]
fn crash_then_remount_recovers_the_journal() {
    let pm = Arc::new(PmPool::untracked(1 << 19));
    let fs = Pmfs::format(pm.clone(), PmfsOptions::default()).unwrap();
    let keep = fs.create("survivor").unwrap();
    fs.write(keep, 0, b"keep me").unwrap();

    // Crash in the middle of a create: take the adversarial minimal image
    // at a point where the journal head is published but the commit marker
    // is not durable yet.
    pm.begin_crash_recording();
    let _ = fs.create("casualty").unwrap();
    let sim = pmtest::pmem::crash::CrashSim::from_pool(&pm).unwrap();
    // Find a crash point with an open journal (head != 0 in the minimal
    // image): the transaction is then mid-flight.
    let mut tested_open_journal = false;
    for point in 0..=sim.op_count() {
        let image = sim.analyze(point).minimal_image();
        let recovered = Pmfs::mount_image(&image, PmfsOptions::default()).unwrap();
        recovered.check_consistency().unwrap();
        // The survivor must always be intact.
        let ino = recovered.lookup("survivor").expect("committed file survives");
        assert_eq!(recovered.read(ino, 0, 7).unwrap(), b"keep me");
        // The in-flight file either exists completely or not at all.
        if let Some(ino) = recovered.lookup("casualty") {
            let stat = recovered.stat(ino).unwrap();
            assert_eq!(stat.size, 0, "created empty");
        } else {
            tested_open_journal = true;
        }
    }
    assert!(tested_open_journal, "some crash point rolled the create back");
}

/// The same pool can be unmounted and remounted repeatedly; data persists
/// across mounts and the inode count is read back from the superblock.
#[test]
fn remount_cycles_preserve_data() {
    let pm = Arc::new(PmPool::untracked(1 << 19));
    {
        let fs =
            Pmfs::format(pm.clone(), PmfsOptions { inodes: 32, ..PmfsOptions::default() }).unwrap();
        let ino = fs.create("a").unwrap();
        fs.write(ino, 0, b"first mount").unwrap();
    }
    for cycle in 0..3 {
        let fs = Pmfs::mount(pm.clone(), PmfsOptions::default()).unwrap();
        let ino = fs.lookup("a").unwrap();
        assert_eq!(fs.read(ino, 0, 11).unwrap(), b"first mount");
        let name = format!("cycle{cycle}");
        fs.create(&name).unwrap();
        assert!(fs.check_consistency().is_ok());
    }
    let fs = Pmfs::mount(pm, PmfsOptions::default()).unwrap();
    assert_eq!(fs.readdir().unwrap().len(), 4);
}

/// Rename and truncate run under PMTest with the journal checkers enabled —
/// the new metadata operations are as clean as the original ones.
#[test]
fn rename_truncate_under_pmtest_are_clean() {
    let session = PmTestSession::builder().build();
    session.start();
    let pm = Arc::new(PmPool::new(1 << 19, session.sink()));
    let fs = Pmfs::format(pm, PmfsOptions { checkers: true, ..PmfsOptions::default() }).unwrap();
    let ino = fs.create("report.tmp").unwrap();
    session.send_trace();
    fs.write(ino, 0, &[9u8; 600]).unwrap();
    session.send_trace();
    fs.truncate(ino, 64).unwrap();
    session.send_trace();
    fs.rename("report.tmp", "report.txt").unwrap();
    session.send_trace();
    let report = session.finish();
    assert!(report.is_clean(), "{report}");
}
