//! Stress tests for the batched, sharded checking engine: many producers,
//! many workers, mixed batch sizes — no trace may be lost, and merging the
//! per-worker result shards must preserve both the trace order (by id) and
//! the program order of diagnostics *within* each trace.

use std::sync::Arc;

use pmtest::prelude::*;

/// A trace with two failing `isPersist` checkers on distinct ranges. The
/// diagnostics must come back in program order: first the checker on
/// `[lo)`, then the one on `[hi)`.
fn two_failure_trace(id: u64) -> Trace {
    let lo = ByteRange::with_len(0, 8);
    let hi = ByteRange::with_len(64, 8);
    let mut t = Trace::new(id);
    t.push(Event::Write(lo).here());
    t.push(Event::Write(hi).here());
    t.push(Event::IsPersist(lo).here()); // FAIL 1: lo never flushed
    t.push(Event::IsPersist(hi).here()); // FAIL 2: hi never flushed
    t
}

fn clean_trace(id: u64) -> Trace {
    let r = ByteRange::with_len(0, 8);
    let mut t = Trace::new(id);
    t.push(Event::Write(r).here());
    t.push(Event::Flush(r).here());
    t.push(Event::Fence.here());
    t.push(Event::IsPersist(r).here());
    t
}

#[test]
fn no_trace_lost_under_producer_worker_contention() {
    const PRODUCERS: u64 = 8;
    const TRACES_PER_PRODUCER: u64 = 250;
    // Small queue so submissions regularly stall on backpressure.
    let engine = Arc::new(Engine::new(EngineConfig {
        workers: 4,
        queue_capacity: 4,
        ..EngineConfig::default()
    }));
    std::thread::scope(|s| {
        for p in 0..PRODUCERS {
            let engine = engine.clone();
            s.spawn(move || {
                let base = p * TRACES_PER_PRODUCER;
                let mut batch = Vec::new();
                for i in 0..TRACES_PER_PRODUCER {
                    let id = base + i;
                    // Mix submission shapes: singles, and batches of varying
                    // size (flushed every 7 traces).
                    if p % 2 == 0 {
                        engine.submit(two_failure_trace(id)).unwrap();
                    } else {
                        batch.push(two_failure_trace(id));
                        if batch.len() == 7 {
                            engine.submit_batch(std::mem::take(&mut batch)).unwrap();
                        }
                    }
                }
                engine.submit_batch(batch).unwrap();
            });
        }
    });
    let report = engine.take_report();
    let total = PRODUCERS * TRACES_PER_PRODUCER;
    assert_eq!(report.traces().len(), total as usize, "every submitted trace is checked");
    assert_eq!(report.fail_count(), 2 * total as usize);

    // Shard merge is ordered by trace id, with every id present exactly once.
    let ids: Vec<u64> = report.traces().iter().map(|t| t.trace_id).collect();
    assert_eq!(ids, (0..total).collect::<Vec<_>>());

    // Within each trace, diagnostics keep program order regardless of which
    // worker checked it: the range-0 failure strictly before the range-64
    // failure.
    for trace in report.traces() {
        assert_eq!(trace.diags.len(), 2, "trace {}", trace.trace_id);
        assert_eq!(trace.diags[0].range, Some(ByteRange::with_len(0, 8)));
        assert_eq!(trace.diags[1].range, Some(ByteRange::with_len(64, 8)));
    }

    let stats = engine.stats();
    assert_eq!(stats.traces_submitted, total);
    assert_eq!(stats.traces_checked, total);
    assert!(stats.backpressure_stalls > 0, "queue of 4 under 8 producers must stall");
    assert!(stats.queue_highwater >= 1);
}

#[test]
fn accumulate_and_drain_survive_concurrent_submission() {
    // report() (accumulating) interleaved with ongoing submissions, then a
    // final take_report() drains everything exactly once.
    let engine = Arc::new(Engine::new(EngineConfig { workers: 3, ..EngineConfig::default() }));
    for round in 0..5u64 {
        let base = round * 100;
        std::thread::scope(|s| {
            for p in 0..4u64 {
                let engine = engine.clone();
                s.spawn(move || {
                    let ids = (base + p * 25)..(base + (p + 1) * 25);
                    engine.submit_batch(ids.map(clean_trace).collect()).unwrap();
                });
            }
        });
        let report = engine.report();
        assert_eq!(report.traces().len(), ((round + 1) * 100) as usize, "report accumulates");
        assert!(report.is_clean());
    }
    assert_eq!(engine.take_report().traces().len(), 500, "take_report drains all");
    assert_eq!(engine.report().traces().len(), 0, "drained");
}

#[test]
fn batched_sessions_with_many_threads_lose_nothing() {
    const THREADS: usize = 6;
    const TRACES_PER_THREAD: usize = 100;
    let session = PmTestSession::builder().workers(4).batch_capacity(16).queue_capacity(8).build();
    session.start();
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let session = session.clone();
            s.spawn(move || {
                session.thread_init();
                for _ in 0..TRACES_PER_THREAD {
                    let r = ByteRange::with_len(0, 8);
                    session.record(Event::Write(r).here());
                    session.record(Event::Flush(r).here());
                    session.record(Event::Fence.here());
                    session.is_persist(r);
                    session.send_trace().expect("trace produced");
                }
                // 100 % 16 != 0: a partial batch is pending at thread exit
                // and must be flushed by the slot destructor.
            });
        }
    });
    let report = session.finish();
    assert_eq!(report.traces().len(), THREADS * TRACES_PER_THREAD);
    assert!(report.is_clean(), "{report}");
    let stats = session.stats();
    assert_eq!(stats.traces_submitted, (THREADS * TRACES_PER_THREAD) as u64);
    assert!(
        stats.batches_submitted < stats.traces_submitted,
        "batching must actually coalesce: {} batches for {} traces",
        stats.batches_submitted,
        stats.traces_submitted
    );
}
