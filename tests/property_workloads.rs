//! Randomized workload testing: arbitrary operation sequences against the
//! transactional structures must (1) behave like an in-memory mirror,
//! (2) pass all PMTest checkers, and (3) — for a sampled prefix — recover
//! to a consistent state from every sampled crash image.

use std::collections::HashMap;
use std::sync::Arc;

use pmtest::prelude::*;
use pmtest::txlib::ObjPool;
use pmtest::workloads::{gen, BTree, CheckMode, CritBitTree, FaultSet, HashMapTx, KvMap, RbTree};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[derive(Clone, Debug)]
enum WlOp {
    Insert(u64, usize),
    Remove(u64),
    Get(u64),
}

fn arb_op() -> impl Strategy<Value = WlOp> {
    prop_oneof![
        4 => (0..48u64, 1..64usize).prop_map(|(k, l)| WlOp::Insert(k, l)),
        2 => (0..48u64).prop_map(WlOp::Remove),
        2 => (0..48u64).prop_map(WlOp::Get),
    ]
}

type Structure = (&'static str, Arc<dyn KvMap>, Box<dyn Fn() -> Result<(), String>>);

fn make_structures(sink: pmtest::trace::SharedSink) -> Vec<Structure> {
    let mk_pool = |sink: &pmtest::trace::SharedSink| {
        Arc::new(
            ObjPool::create(Arc::new(PmPool::new(1 << 21, sink.clone())), 4096, PersistMode::X86)
                .expect("pool"),
        )
    };
    let ctree = Arc::new(
        CritBitTree::create(mk_pool(&sink), CheckMode::Checkers, FaultSet::none()).unwrap(),
    );
    let btree =
        Arc::new(BTree::create(mk_pool(&sink), CheckMode::Checkers, FaultSet::none()).unwrap());
    let rbtree =
        Arc::new(RbTree::create(mk_pool(&sink), CheckMode::Checkers, FaultSet::none()).unwrap());
    let hashmap = Arc::new(
        HashMapTx::create(mk_pool(&sink), 8, CheckMode::Checkers, FaultSet::none()).unwrap(),
    );
    vec![
        ("ctree", ctree.clone(), {
            let t = ctree;
            Box::new(move || t.check_invariants())
        }),
        ("btree", btree.clone(), {
            let t = btree;
            Box::new(move || t.check_invariants())
        }),
        ("rbtree", rbtree.clone(), {
            let t = rbtree;
            Box::new(move || t.check_no_red_red())
        }),
        ("hashmap", hashmap, Box::new(|| Ok(()))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Every structure mirrors a `HashMap` under arbitrary op sequences and
    /// produces zero diagnostics under full checking.
    #[test]
    fn structures_mirror_hashmap_and_stay_clean(ops in prop::collection::vec(arb_op(), 0..28)) {
        let session = PmTestSession::builder().build();
        session.start();
        for (name, map, validate) in make_structures(session.sink()) {
            let mut mirror: HashMap<u64, Vec<u8>> = HashMap::new();
            for op in &ops {
                match *op {
                    WlOp::Insert(k, len) => {
                        let v = gen::value_for(k, len);
                        map.insert(k, &v).unwrap();
                        mirror.insert(k, v);
                    }
                    WlOp::Remove(k) => {
                        let removed = map.remove(k).unwrap();
                        prop_assert_eq!(removed, mirror.remove(&k).is_some(), "{}: remove {}", name, k);
                    }
                    WlOp::Get(k) => {
                        prop_assert_eq!(&map.get(k).unwrap(), &mirror.get(&k).cloned(), "{}: get {}", name, k);
                    }
                }
                prop_assert_eq!(validate(), Ok(()), "{}: invariants after {:?}", name, op);
                session.send_trace();
            }
            prop_assert_eq!(map.len().unwrap(), mirror.len() as u64, "{}: len", name);
            for (k, v) in &mirror {
                prop_assert_eq!(&map.get(*k).unwrap(), &Some(v.clone()), "{}: final {}", name, k);
            }
            prop_assert_eq!(validate(), Ok(()), "{}: structural invariants", name);
        }
        let report = session.finish();
        prop_assert!(report.is_clean(), "diagnostics on a correct run: {}", report);
    }

    /// Crash-and-recover: run a short random prefix on the hashmap while
    /// recording values, then sample crash states at every point; after
    /// undo-log recovery the map must equal the mirror as of some consistent
    /// prefix of the executed operations.
    #[test]
    fn hashmap_recovers_to_an_operation_prefix(
        ops in prop::collection::vec((0..16u64, 1..24usize), 1..6),
        seed in any::<u64>(),
    ) {
        let pm = Arc::new(PmPool::untracked(1 << 17));
        let pool = Arc::new(ObjPool::create(pm.clone(), 4096, PersistMode::X86).unwrap());
        let map = HashMapTx::create(pool, 8, CheckMode::None, FaultSet::none()).unwrap();
        // Mirrors after each prefix of operations.
        let mut prefixes: Vec<HashMap<u64, Vec<u8>>> = vec![HashMap::new()];
        pm.begin_crash_recording();
        for &(k, len) in &ops {
            let v = gen::value_for(k, len);
            map.insert(k, &v).unwrap();
            let mut next = prefixes.last().unwrap().clone();
            next.insert(k, v);
            prefixes.push(next);
        }
        let sim = pmtest::pmem::crash::CrashSim::from_pool(&pm).unwrap();
        let check = |image: &[u8]| -> Result<(), String> {
            let pool = Arc::new(
                ObjPool::recover_image(image, 4096, PersistMode::X86)
                    .map_err(|e| e.to_string())?,
            );
            let map = HashMapTx::open(pool, CheckMode::None, FaultSet::none())
                .map_err(|e| e.to_string())?;
            'prefix: for mirror in &prefixes {
                if map.len().map_err(|e| e.to_string())? != mirror.len() as u64 {
                    continue;
                }
                for (k, v) in mirror {
                    match map.get(*k) {
                        Ok(Some(got)) if &got == v => {}
                        _ => continue 'prefix,
                    }
                }
                return Ok(());
            }
            Err("recovered state matches no operation prefix".to_owned())
        };
        let mut rng = SmallRng::seed_from_u64(seed);
        let violation = sim.find_violation_sampled(&check, 4, &mut rng);
        prop_assert!(violation.is_none(), "{:?}", violation.map(|v| (v.point, v.reason)));
    }
}
