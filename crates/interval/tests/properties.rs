//! Property tests comparing the interval containers against naive
//! byte-granular oracles.

use std::collections::HashMap;

use pmtest_interval::{ByteRange, IntervalTree, SegmentMap};
use proptest::prelude::*;

const ADDR_SPACE: u64 = 256;

fn arb_range() -> impl Strategy<Value = ByteRange> {
    (0..ADDR_SPACE, 0..ADDR_SPACE).prop_map(|(a, b)| {
        let (s, e) = if a <= b { (a, b) } else { (b, a) };
        ByteRange::new(s, e)
    })
}

#[derive(Debug, Clone)]
enum Op {
    Insert(ByteRange, u8),
    Remove(ByteRange),
    Update(ByteRange, u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (arb_range(), any::<u8>()).prop_map(|(r, v)| Op::Insert(r, v)),
        arb_range().prop_map(Op::Remove),
        (arb_range(), any::<u8>()).prop_map(|(r, v)| Op::Update(r, v)),
    ]
}

/// Byte-granular oracle for `SegmentMap`.
fn apply_oracle(oracle: &mut HashMap<u64, u8>, op: &Op) {
    match op {
        Op::Insert(r, v) => {
            for a in r.start()..r.end() {
                oracle.insert(a, *v);
            }
        }
        Op::Remove(r) => {
            for a in r.start()..r.end() {
                oracle.remove(&a);
            }
        }
        Op::Update(r, v) => {
            // Mirrors the closure below: add `v` to covered bytes, fill gaps
            // with `v`.
            for a in r.start()..r.end() {
                let cur = oracle.get(&a).copied();
                oracle.insert(a, cur.map_or(*v, |c| c.wrapping_add(*v)));
            }
        }
    }
}

fn apply_map(map: &mut SegmentMap<u8>, op: &Op) {
    match op {
        Op::Insert(r, v) => map.insert(*r, *v),
        Op::Remove(r) => map.remove(*r),
        Op::Update(r, v) => {
            map.update_range(*r, |_, cur| Some(cur.copied().map_or(*v, |c| c.wrapping_add(*v))))
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn segment_map_matches_byte_oracle(ops in prop::collection::vec(arb_op(), 0..40)) {
        let mut map = SegmentMap::new();
        let mut oracle = HashMap::new();
        for op in &ops {
            apply_map(&mut map, op);
            apply_oracle(&mut oracle, op);
        }
        for addr in 0..ADDR_SPACE {
            prop_assert_eq!(map.get(addr).copied(), oracle.get(&addr).copied(), "addr {}", addr);
        }
    }

    #[test]
    fn segment_map_segments_are_disjoint_sorted(ops in prop::collection::vec(arb_op(), 0..40)) {
        let mut map = SegmentMap::new();
        let mut oracle = HashMap::new();
        for op in &ops {
            apply_map(&mut map, op);
            apply_oracle(&mut oracle, op);
        }
        let mut prev_end = 0u64;
        for (r, _) in map.iter() {
            prop_assert!(!r.is_empty());
            prop_assert!(r.start() >= prev_end);
            prev_end = r.end();
        }
    }

    #[test]
    fn segment_map_covers_matches_oracle(
        ops in prop::collection::vec(arb_op(), 0..30),
        query in arb_range(),
    ) {
        let mut map = SegmentMap::new();
        let mut oracle = HashMap::new();
        for op in &ops {
            apply_map(&mut map, op);
            apply_oracle(&mut oracle, op);
        }
        let oracle_covers = (query.start()..query.end()).all(|a| oracle.contains_key(&a));
        let oracle_overlaps = (query.start()..query.end()).any(|a| oracle.contains_key(&a));
        prop_assert_eq!(map.covers(query), oracle_covers);
        prop_assert_eq!(map.overlaps(query), oracle_overlaps);
        // Gaps + overlapping partition the query range.
        let mut covered: u64 = map.overlapping(query).map(|(r, _)| r.len()).sum();
        covered += map.gaps(query).iter().map(ByteRange::len).sum::<u64>();
        prop_assert_eq!(covered, query.len());
    }

    #[test]
    fn interval_tree_overlaps_matches_naive(
        ivs in prop::collection::vec(arb_range(), 0..40),
        query in arb_range(),
    ) {
        let tree: IntervalTree<usize> =
            ivs.iter().copied().zip(0..).collect();
        let mut got: Vec<usize> = tree.overlaps(query).map(|(_, v)| *v).collect();
        got.sort_unstable();
        let mut expect: Vec<usize> = ivs
            .iter()
            .enumerate()
            .filter(|(_, r)| r.overlaps(&query))
            .map(|(i, _)| i)
            .collect();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn interval_tree_covers_matches_naive(
        ivs in prop::collection::vec(arb_range(), 0..40),
        query in arb_range(),
    ) {
        let tree: IntervalTree<()> = ivs.iter().map(|r| (*r, ())).collect();
        let naive = (query.start()..query.end())
            .all(|a| ivs.iter().any(|r| r.contains_addr(a)));
        prop_assert_eq!(tree.covers(query), naive);
        // `uncovered` is consistent with `covers`.
        let gaps = tree.uncovered(query);
        prop_assert_eq!(gaps.is_empty(), tree.covers(query));
        for g in &gaps {
            prop_assert!(!g.is_empty());
            for a in g.start()..g.end() {
                prop_assert!(!ivs.iter().any(|r| r.contains_addr(a)));
            }
        }
    }
}
