//! Property tests for the *adaptive* `SegmentMap` (flat small-map fast path
//! with automatic BTree spill) against a naive per-byte `BTreeMap<u64, u8>`
//! reference model.
//!
//! The sibling suite in `properties.rs` exercises the value semantics over a
//! tiny address space; this one stresses what the adaptive representation
//! adds: randomized range sequences wide enough to cross the flat→tree
//! threshold, `clear` interleaved mid-sequence (a recycled map must behave
//! like a fresh one), and query equivalence on both sides of a switch.

use std::collections::BTreeMap;

use pmtest_interval::{ByteRange, SegmentMap};
use proptest::prelude::*;

/// Wide enough that dozens of small disjoint segments fit, so op sequences
/// routinely push the map past its flat-representation crossover.
const ADDR_SPACE: u64 = 4096;

/// Short ranges keep segments from merging away; long ones exercise splits.
fn arb_range() -> impl Strategy<Value = ByteRange> {
    prop_oneof![
        // Small disjoint-ish segments: drive the segment count up.
        (0..ADDR_SPACE / 8, 1u64..8).prop_map(|(slot, len)| {
            let start = slot * 8;
            ByteRange::new(start, (start + len).min(ADDR_SPACE))
        }),
        // Arbitrary spans: exercise straddling splits and bulk overwrites.
        (0..ADDR_SPACE, 0..ADDR_SPACE).prop_map(|(a, b)| {
            let (s, e) = if a <= b { (a, b) } else { (b, a) };
            ByteRange::new(s, e)
        }),
    ]
}

#[derive(Debug, Clone)]
enum Op {
    Insert(ByteRange, u8),
    Remove(ByteRange),
    Update(ByteRange, u8),
    Clear,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (arb_range(), any::<u8>()).prop_map(|(r, v)| Op::Insert(r, v)),
        arb_range().prop_map(Op::Remove),
        (arb_range(), any::<u8>()).prop_map(|(r, v)| Op::Update(r, v)),
        Just(Op::Clear),
    ]
}

/// Per-byte reference model, as the issue prescribes: address -> value.
fn apply_reference(model: &mut BTreeMap<u64, u8>, op: &Op) {
    match op {
        Op::Insert(r, v) => {
            for a in r.start()..r.end() {
                model.insert(a, *v);
            }
        }
        Op::Remove(r) => {
            for a in r.start()..r.end() {
                model.remove(&a);
            }
        }
        Op::Update(r, v) => {
            for a in r.start()..r.end() {
                let cur = model.get(&a).copied();
                model.insert(a, cur.map_or(*v, |c| c.wrapping_add(*v)));
            }
        }
        Op::Clear => model.clear(),
    }
}

fn apply_map(map: &mut SegmentMap<u8>, op: &Op) {
    match op {
        Op::Insert(r, v) => map.insert(*r, *v),
        Op::Remove(r) => map.remove(*r),
        Op::Update(r, v) => {
            map.update_range(*r, |_, cur| Some(cur.copied().map_or(*v, |c| c.wrapping_add(*v))))
        }
        Op::Clear => map.clear(),
    }
}

/// The map's segments, exploded to bytes — must equal the reference exactly.
fn explode(map: &SegmentMap<u8>) -> BTreeMap<u64, u8> {
    let mut bytes = BTreeMap::new();
    for (r, v) in map.iter() {
        for a in r.start()..r.end() {
            bytes.insert(a, *v);
        }
    }
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Insert/split/remove/update/clear sequences leave the adaptive map
    /// byte-for-byte equal to the reference, at every step, regardless of
    /// which representation it is currently in.
    #[test]
    fn adaptive_map_matches_per_byte_reference(
        ops in prop::collection::vec(arb_op(), 0..120),
    ) {
        let mut map = SegmentMap::new();
        let mut reference = BTreeMap::new();
        for op in &ops {
            apply_map(&mut map, op);
            apply_reference(&mut reference, op);
            if matches!(op, Op::Clear) {
                prop_assert!(map.is_empty());
                prop_assert!(
                    map.is_flat(),
                    "a cleared map must return to the flat representation"
                );
            }
        }
        prop_assert_eq!(explode(&map), reference);
    }

    /// Point and range queries agree with the reference on both sides of a
    /// representation switch.
    #[test]
    fn adaptive_map_queries_match_reference(
        ops in prop::collection::vec(arb_op(), 0..120),
        probes in prop::collection::vec(arb_range(), 1..8),
    ) {
        let mut map = SegmentMap::new();
        let mut reference = BTreeMap::new();
        for op in &ops {
            apply_map(&mut map, op);
            apply_reference(&mut reference, op);
        }
        for q in &probes {
            prop_assert_eq!(
                map.get(q.start()).copied(),
                reference.get(&q.start()).copied()
            );
            let ref_covers = (q.start()..q.end()).all(|a| reference.contains_key(&a));
            let ref_overlaps = (q.start()..q.end()).any(|a| reference.contains_key(&a));
            prop_assert_eq!(map.covers(*q), ref_covers);
            prop_assert_eq!(map.overlaps(*q), ref_overlaps);
            // overlapping() + gaps() partition the probe range.
            let covered: u64 = map.overlapping(*q).map(|(r, _)| r.len()).sum::<u64>()
                + map.gaps(*q).iter().map(ByteRange::len).sum::<u64>();
            prop_assert_eq!(covered, q.len());
            // Clipped overlaps agree with the reference byte-wise.
            for (sub, v) in map.overlapping(*q) {
                for a in sub.start()..sub.end() {
                    prop_assert_eq!(reference.get(&a), Some(v));
                }
            }
        }
    }

    /// A map that crossed to the tree and was cleared behaves exactly like a
    /// fresh one under a second op sequence (recycling equivalence).
    #[test]
    fn cleared_map_is_equivalent_to_fresh(
        warmup in prop::collection::vec(arb_op(), 40..100),
        ops in prop::collection::vec(arb_op(), 0..60),
    ) {
        let mut recycled = SegmentMap::new();
        for op in &warmup {
            apply_map(&mut recycled, op);
        }
        let switched_during_warmup = recycled.repr_switches();
        recycled.clear();

        let mut fresh = SegmentMap::new();
        for op in &ops {
            apply_map(&mut recycled, op);
            apply_map(&mut fresh, op);
        }
        prop_assert_eq!(&recycled, &fresh);
        prop_assert_eq!(explode(&recycled), explode(&fresh));
        // The cumulative switch counter only ever grows.
        prop_assert!(recycled.repr_switches() >= switched_during_warmup);
    }

    /// Structural invariant under randomized sequences: segments non-empty,
    /// sorted, disjoint — in either representation.
    #[test]
    fn segments_stay_sorted_and_disjoint(
        ops in prop::collection::vec(arb_op(), 0..120),
    ) {
        let mut map = SegmentMap::new();
        for op in &ops {
            apply_map(&mut map, op);
            let mut prev_end = 0u64;
            for (r, _) in map.iter() {
                prop_assert!(!r.is_empty());
                prop_assert!(r.start() >= prev_end);
                prev_end = r.end();
            }
        }
    }
}
