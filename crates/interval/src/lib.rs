//! Interval containers used throughout the PMTest reproduction.
//!
//! The paper's checking engine (§4.4) keeps its *shadow memory* — the map from
//! persistent-memory addresses to persistency status — in an interval
//! structure so that updates and lookups cost `O(log n)`. This crate provides
//! the two containers the engine needs:
//!
//! * [`SegmentMap`] — a map from **non-overlapping** half-open byte ranges to
//!   values, with range-wise read/modify/write operations. The shadow memory
//!   (persist/flush intervals per address range) is a `SegmentMap`.
//! * [`IntervalTree`] — an augmented balanced tree over **possibly
//!   overlapping** intervals with stabbing/overlap queries. The transaction
//!   *log tree* that records `TX_ADD` ranges (§5.1.1) is an `IntervalTree`.
//!
//! Both containers operate on [`ByteRange`], a half-open `[start, end)` range
//! of `u64` addresses.
//!
//! # Examples
//!
//! ```
//! use pmtest_interval::{ByteRange, SegmentMap};
//!
//! let mut map = SegmentMap::new();
//! map.insert(ByteRange::new(0x10, 0x50), "a");
//! map.insert(ByteRange::new(0x30, 0x40), "b"); // splits "a"
//! assert_eq!(map.get(0x20), Some(&"a"));
//! assert_eq!(map.get(0x38), Some(&"b"));
//! assert_eq!(map.get(0x48), Some(&"a"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod interval_tree;
mod range;
mod segment_map;

pub use interval_tree::{IntervalTree, Overlaps};
pub use range::ByteRange;
pub use segment_map::{SegmentMap, Segments};
