use std::fmt;

/// A half-open range `[start, end)` of byte addresses.
///
/// Every PM operation the paper traces (`write`, `clwb`, checkers, `TX_ADD`)
/// carries an `(addr, size)` pair; `ByteRange` is the canonical form of that
/// pair used by the shadow memory and the log tree.
///
/// # Examples
///
/// ```
/// use pmtest_interval::ByteRange;
///
/// let r = ByteRange::with_len(0x100, 64);
/// assert_eq!(r.end(), 0x140);
/// assert!(r.contains_addr(0x13f));
/// assert!(!r.contains_addr(0x140));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ByteRange {
    start: u64,
    end: u64,
}

impl ByteRange {
    /// Creates the range `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    #[must_use]
    #[track_caller]
    pub fn new(start: u64, end: u64) -> Self {
        assert!(start <= end, "byte range start {start:#x} > end {end:#x}");
        Self { start, end }
    }

    /// Creates the range `[addr, addr + len)`.
    ///
    /// # Panics
    ///
    /// Panics if `addr + len` overflows `u64`.
    #[must_use]
    #[track_caller]
    pub fn with_len(addr: u64, len: u64) -> Self {
        let end = addr.checked_add(len).expect("byte range end overflows u64");
        Self { start: addr, end }
    }

    /// The inclusive lower bound.
    #[must_use]
    pub fn start(&self) -> u64 {
        self.start
    }

    /// The exclusive upper bound.
    #[must_use]
    pub fn end(&self) -> u64 {
        self.end
    }

    /// Number of bytes covered.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Whether the range covers zero bytes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Whether `addr` falls inside the range.
    #[must_use]
    pub fn contains_addr(&self, addr: u64) -> bool {
        self.start <= addr && addr < self.end
    }

    /// Whether `other` is fully contained in `self`.
    #[must_use]
    pub fn contains(&self, other: &ByteRange) -> bool {
        self.start <= other.start && other.end <= self.end
    }

    /// Whether the two ranges share at least one byte.
    #[must_use]
    pub fn overlaps(&self, other: &ByteRange) -> bool {
        self.start < other.end && other.start < self.end && !self.is_empty() && !other.is_empty()
    }

    /// The overlapping portion of the two ranges, if any.
    #[must_use]
    pub fn intersection(&self, other: &ByteRange) -> Option<ByteRange> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        (start < end).then_some(ByteRange { start, end })
    }
}

impl fmt::Debug for ByteRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:#x}, {:#x})", self.start, self.end)
    }
}

impl fmt::Display for ByteRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}+{}", self.start, self.len())
    }
}

impl From<std::ops::Range<u64>> for ByteRange {
    fn from(r: std::ops::Range<u64>) -> Self {
        ByteRange::new(r.start, r.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let r = ByteRange::new(8, 24);
        assert_eq!(r.start(), 8);
        assert_eq!(r.end(), 24);
        assert_eq!(r.len(), 16);
        assert!(!r.is_empty());
        assert!(ByteRange::new(4, 4).is_empty());
    }

    #[test]
    #[should_panic(expected = "byte range start")]
    fn inverted_range_panics() {
        let _ = ByteRange::new(10, 4);
    }

    #[test]
    fn with_len_matches_new() {
        assert_eq!(ByteRange::with_len(0x40, 64), ByteRange::new(0x40, 0x80));
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn with_len_overflow_panics() {
        let _ = ByteRange::with_len(u64::MAX - 1, 4);
    }

    #[test]
    fn contains_addr_is_half_open() {
        let r = ByteRange::new(16, 32);
        assert!(r.contains_addr(16));
        assert!(r.contains_addr(31));
        assert!(!r.contains_addr(32));
        assert!(!r.contains_addr(15));
    }

    #[test]
    fn containment() {
        let outer = ByteRange::new(0, 100);
        assert!(outer.contains(&ByteRange::new(0, 100)));
        assert!(outer.contains(&ByteRange::new(10, 20)));
        assert!(!outer.contains(&ByteRange::new(90, 101)));
    }

    #[test]
    fn overlap_rules() {
        let a = ByteRange::new(0, 10);
        assert!(a.overlaps(&ByteRange::new(9, 20)));
        assert!(!a.overlaps(&ByteRange::new(10, 20)), "touching is not overlap");
        assert!(!a.overlaps(&ByteRange::new(5, 5)), "empty never overlaps");
    }

    #[test]
    fn intersection() {
        let a = ByteRange::new(0, 10);
        assert_eq!(a.intersection(&ByteRange::new(5, 20)), Some(ByteRange::new(5, 10)));
        assert_eq!(a.intersection(&ByteRange::new(10, 20)), None);
    }

    #[test]
    fn from_std_range() {
        let r: ByteRange = (3..9).into();
        assert_eq!(r, ByteRange::new(3, 9));
    }

    #[test]
    fn display_and_debug_nonempty() {
        let r = ByteRange::new(0x10, 0x20);
        assert_eq!(format!("{r:?}"), "[0x10, 0x20)");
        assert_eq!(format!("{r}"), "0x10+16");
    }
}
