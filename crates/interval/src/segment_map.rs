use std::collections::BTreeMap;
use std::fmt;

use crate::ByteRange;

/// A map from non-overlapping half-open byte ranges to values.
///
/// This is the container backing the PMTest *shadow memory* (§4.4): each
/// modified address range maps to its persistency status, and the engine
/// needs `O(log n)` range-wise updates and lookups. Overlapping inserts split
/// or truncate the segments already present, exactly like writing over part
/// of a previously tracked range.
///
/// Internally the map is a `BTreeMap` keyed by segment start; the invariant
/// (checked in debug builds and by property tests) is that segments are
/// non-empty, sorted, and pairwise disjoint.
///
/// # Examples
///
/// ```
/// use pmtest_interval::{ByteRange, SegmentMap};
///
/// let mut map = SegmentMap::new();
/// map.insert(ByteRange::new(0, 64), 'x');
/// map.insert(ByteRange::new(16, 32), 'y');
/// let segs: Vec<_> = map.iter().map(|(r, v)| (r.start(), r.end(), *v)).collect();
/// assert_eq!(segs, [(0, 16, 'x'), (16, 32, 'y'), (32, 64, 'x')]);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct SegmentMap<V> {
    /// start -> (end, value)
    segments: BTreeMap<u64, (u64, V)>,
}

impl<V> Default for SegmentMap<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> SegmentMap<V> {
    /// Creates an empty map.
    #[must_use]
    pub fn new() -> Self {
        Self { segments: BTreeMap::new() }
    }

    /// Number of stored segments (not bytes).
    #[must_use]
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Whether the map holds no segments.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Removes all segments.
    pub fn clear(&mut self) {
        self.segments.clear();
    }

    /// Returns the value covering `addr`, if any.
    #[must_use]
    pub fn get(&self, addr: u64) -> Option<&V> {
        let (&start, (end, value)) = self.segments.range(..=addr).next_back()?;
        (start <= addr && addr < *end).then_some(value)
    }

    /// Returns the segment (range and value) covering `addr`, if any.
    #[must_use]
    pub fn get_segment(&self, addr: u64) -> Option<(ByteRange, &V)> {
        let (&start, (end, value)) = self.segments.range(..=addr).next_back()?;
        (start <= addr && addr < *end).then(|| (ByteRange::new(start, *end), value))
    }

    /// Iterates over all segments in address order.
    pub fn iter(&self) -> Segments<'_, V> {
        Segments { inner: self.segments.iter() }
    }

    /// Iterates over the segments overlapping `range`, clipped to `range`.
    ///
    /// Each yielded pair is `(clipped_range, value)`; gaps inside `range` are
    /// skipped (see [`SegmentMap::gaps`] for the complement).
    pub fn overlapping(&self, range: ByteRange) -> impl Iterator<Item = (ByteRange, &V)> {
        // The first candidate may start before `range.start()`.
        let first_start = self
            .segments
            .range(..=range.start())
            .next_back()
            .map(|(&s, _)| s)
            .unwrap_or(range.start());
        self.segments.range(first_start..range.end()).filter_map(move |(&s, (e, v))| {
            ByteRange::new(s, *e).intersection(&range).map(|clip| (clip, v))
        })
    }

    /// Iterates over the maximal sub-ranges of `range` not covered by any
    /// segment.
    pub fn gaps(&self, range: ByteRange) -> Vec<ByteRange> {
        let mut gaps = Vec::new();
        let mut cursor = range.start();
        for (seg, _) in self.overlapping(range) {
            if cursor < seg.start() {
                gaps.push(ByteRange::new(cursor, seg.start()));
            }
            cursor = seg.end();
        }
        if cursor < range.end() {
            gaps.push(ByteRange::new(cursor, range.end()));
        }
        gaps
    }

    /// Whether every byte of `range` is covered by some segment.
    #[must_use]
    pub fn covers(&self, range: ByteRange) -> bool {
        if range.is_empty() {
            return true;
        }
        let mut cursor = range.start();
        for (seg, _) in self.overlapping(range) {
            if seg.start() > cursor {
                return false;
            }
            cursor = seg.end();
        }
        cursor >= range.end()
    }

    /// Whether any byte of `range` is covered by some segment.
    #[must_use]
    pub fn overlaps(&self, range: ByteRange) -> bool {
        self.overlapping(range).next().is_some()
    }
}

impl<V: Clone> SegmentMap<V> {
    /// Maps `range` to `value`, overwriting anything previously stored there.
    ///
    /// Existing segments that partially overlap `range` are split; their
    /// portions outside `range` keep their old values.
    pub fn insert(&mut self, range: ByteRange, value: V) {
        if range.is_empty() {
            return;
        }
        self.carve(range);
        self.segments.insert(range.start(), (range.end(), value));
        self.debug_check();
    }

    /// Removes all coverage of `range`; segments partially overlapping it are
    /// truncated or split.
    pub fn remove(&mut self, range: ByteRange) {
        if range.is_empty() {
            return;
        }
        self.carve(range);
        self.debug_check();
    }

    /// Applies `f` to every sub-segment of `range`, including uncovered gaps.
    ///
    /// For each maximal sub-range with uniform current value (`Some(v)` for a
    /// covered sub-range, `None` for a gap), `f(sub_range, current)` decides
    /// the new value: `Some(v)` stores `v`, `None` leaves the sub-range empty.
    ///
    /// This is the primitive behind the paper's checking rules: a `write`
    /// replaces the status over its range, a `clwb` updates the flush interval
    /// of covered sub-ranges and can inspect gaps to flag unnecessary
    /// writebacks.
    pub fn update_range<F>(&mut self, range: ByteRange, mut f: F)
    where
        F: FnMut(ByteRange, Option<&V>) -> Option<V>,
    {
        if range.is_empty() {
            return;
        }
        // Collect the current view first to avoid aliasing the tree while
        // mutating it.
        let mut pieces: Vec<(ByteRange, Option<V>)> = Vec::new();
        let mut cursor = range.start();
        for (seg, v) in self.overlapping(range) {
            if cursor < seg.start() {
                pieces.push((ByteRange::new(cursor, seg.start()), None));
            }
            pieces.push((seg, Some(v.clone())));
            cursor = seg.end();
        }
        if cursor < range.end() {
            pieces.push((ByteRange::new(cursor, range.end()), None));
        }

        self.carve(range);
        for (sub, current) in pieces {
            if let Some(new) = f(sub, current.as_ref()) {
                self.segments.insert(sub.start(), (sub.end(), new));
            }
        }
        self.debug_check();
    }

    /// Removes `range` coverage, splitting boundary segments so that no
    /// remaining segment overlaps `range`.
    fn carve(&mut self, range: ByteRange) {
        // Split a segment straddling range.start().
        if let Some((&s, &(e, _))) = self.segments.range(..range.start()).next_back() {
            if e > range.start() {
                let (_, (_, v)) = self.segments.remove_entry(&s).expect("segment exists");
                self.segments.insert(s, (range.start(), v.clone()));
                if e > range.end() {
                    self.segments.insert(range.end(), (e, v));
                }
            }
        }
        // Remove or truncate segments starting inside the range.
        let starts: Vec<u64> =
            self.segments.range(range.start()..range.end()).map(|(&s, _)| s).collect();
        for s in starts {
            let (e, v) = self.segments.remove(&s).expect("segment exists");
            if e > range.end() {
                self.segments.insert(range.end(), (e, v));
            }
        }
    }

    fn debug_check(&self) {
        #[cfg(debug_assertions)]
        {
            let mut prev_end = 0u64;
            for (&s, &(e, _)) in &self.segments {
                debug_assert!(s < e, "empty segment [{s:#x},{e:#x})");
                debug_assert!(s >= prev_end, "overlapping segments at {s:#x}");
                prev_end = e;
            }
        }
    }
}

impl<V: fmt::Debug> fmt::Debug for SegmentMap<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter().map(|(r, v)| (format!("{r:?}"), v))).finish()
    }
}

/// Iterator over the segments of a [`SegmentMap`] in address order.
pub struct Segments<'a, V> {
    inner: std::collections::btree_map::Iter<'a, u64, (u64, V)>,
}

impl<'a, V> Iterator for Segments<'a, V> {
    type Item = (ByteRange, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next().map(|(&s, (e, v))| (ByteRange::new(s, *e), v))
    }
}

impl<V: Clone> FromIterator<(ByteRange, V)> for SegmentMap<V> {
    fn from_iter<T: IntoIterator<Item = (ByteRange, V)>>(iter: T) -> Self {
        let mut map = SegmentMap::new();
        for (r, v) in iter {
            map.insert(r, v);
        }
        map
    }
}

impl<V: Clone> Extend<(ByteRange, V)> for SegmentMap<V> {
    fn extend<T: IntoIterator<Item = (ByteRange, V)>>(&mut self, iter: T) {
        for (r, v) in iter {
            self.insert(r, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(s: u64, e: u64) -> ByteRange {
        ByteRange::new(s, e)
    }

    fn dump(map: &SegmentMap<char>) -> Vec<(u64, u64, char)> {
        map.iter().map(|(rg, v)| (rg.start(), rg.end(), *v)).collect()
    }

    #[test]
    fn insert_disjoint() {
        let mut m = SegmentMap::new();
        m.insert(r(0, 10), 'a');
        m.insert(r(20, 30), 'b');
        assert_eq!(dump(&m), [(0, 10, 'a'), (20, 30, 'b')]);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn insert_splits_enclosing_segment() {
        let mut m = SegmentMap::new();
        m.insert(r(0, 100), 'a');
        m.insert(r(40, 60), 'b');
        assert_eq!(dump(&m), [(0, 40, 'a'), (40, 60, 'b'), (60, 100, 'a')]);
    }

    #[test]
    fn insert_overwrites_contained_segments() {
        let mut m = SegmentMap::new();
        m.insert(r(10, 20), 'a');
        m.insert(r(30, 40), 'b');
        m.insert(r(0, 50), 'c');
        assert_eq!(dump(&m), [(0, 50, 'c')]);
    }

    #[test]
    fn insert_truncates_left_and_right_neighbours() {
        let mut m = SegmentMap::new();
        m.insert(r(0, 20), 'a');
        m.insert(r(30, 50), 'b');
        m.insert(r(10, 40), 'c');
        assert_eq!(dump(&m), [(0, 10, 'a'), (10, 40, 'c'), (40, 50, 'b')]);
    }

    #[test]
    fn empty_insert_is_noop() {
        let mut m = SegmentMap::new();
        m.insert(r(5, 5), 'a');
        assert!(m.is_empty());
    }

    #[test]
    fn get_lookups() {
        let mut m = SegmentMap::new();
        m.insert(r(10, 20), 'a');
        assert_eq!(m.get(10), Some(&'a'));
        assert_eq!(m.get(19), Some(&'a'));
        assert_eq!(m.get(20), None);
        assert_eq!(m.get(9), None);
        assert_eq!(m.get_segment(15), Some((r(10, 20), &'a')));
    }

    #[test]
    fn remove_splits() {
        let mut m = SegmentMap::new();
        m.insert(r(0, 100), 'a');
        m.remove(r(40, 60));
        assert_eq!(dump(&m), [(0, 40, 'a'), (60, 100, 'a')]);
        assert!(!m.covers(r(0, 100)));
        assert!(m.covers(r(0, 40)));
    }

    #[test]
    fn overlapping_clips_to_query() {
        let mut m = SegmentMap::new();
        m.insert(r(0, 10), 'a');
        m.insert(r(10, 20), 'b');
        m.insert(r(25, 35), 'c');
        let got: Vec<_> =
            m.overlapping(r(5, 30)).map(|(rg, v)| (rg.start(), rg.end(), *v)).collect();
        assert_eq!(got, [(5, 10, 'a'), (10, 20, 'b'), (25, 30, 'c')]);
    }

    #[test]
    fn gaps_and_covers() {
        let mut m = SegmentMap::new();
        m.insert(r(10, 20), 'a');
        m.insert(r(30, 40), 'b');
        assert_eq!(m.gaps(r(0, 50)), [r(0, 10), r(20, 30), r(40, 50)]);
        assert_eq!(m.gaps(r(12, 18)), []);
        assert!(m.covers(r(12, 18)));
        assert!(!m.covers(r(15, 35)));
        assert!(m.overlaps(r(15, 35)));
        assert!(!m.overlaps(r(20, 30)));
        assert!(m.covers(r(7, 7)), "empty range is vacuously covered");
    }

    #[test]
    fn update_range_visits_gaps_and_segments() {
        let mut m = SegmentMap::new();
        m.insert(r(10, 20), 'a');
        let mut seen = Vec::new();
        m.update_range(r(0, 30), |sub, cur| {
            seen.push((sub.start(), sub.end(), cur.copied()));
            Some(cur.copied().unwrap_or('x'))
        });
        assert_eq!(seen, [(0, 10, None), (10, 20, Some('a')), (20, 30, None)]);
        assert_eq!(dump(&m), [(0, 10, 'x'), (10, 20, 'a'), (20, 30, 'x')]);
    }

    #[test]
    fn update_range_can_erase() {
        let mut m = SegmentMap::new();
        m.insert(r(0, 30), 'a');
        m.update_range(r(10, 20), |_, _| None);
        assert_eq!(dump(&m), [(0, 10, 'a'), (20, 30, 'a')]);
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut m: SegmentMap<char> = [(r(0, 4), 'a'), (r(4, 8), 'b')].into_iter().collect();
        m.extend([(r(8, 12), 'c')]);
        assert_eq!(dump(&m), [(0, 4, 'a'), (4, 8, 'b'), (8, 12, 'c')]);
    }

    #[test]
    fn debug_is_nonempty() {
        let mut m = SegmentMap::new();
        assert_eq!(format!("{m:?}"), "{}");
        m.insert(r(0, 1), 'z');
        assert!(format!("{m:?}").contains("0x0"));
    }
}
