use std::collections::BTreeMap;
use std::fmt;

use crate::ByteRange;

/// Segment count past which a map spills from the flat vector to the BTree.
///
/// Traces in the engine's short-trace regime touch a handful of ranges, so
/// the common case is a linear scan over a few cache lines; the BTree only
/// wins once splits accumulate into dozens of segments (long fuzzed traces,
/// whole-pool workloads).
const FLAT_MAX: usize = 32;

/// A map from non-overlapping half-open byte ranges to values.
///
/// This is the container backing the PMTest *shadow memory* (§4.4): each
/// modified address range maps to its persistency status, and the engine
/// needs cheap range-wise updates and lookups. Overlapping inserts split
/// or truncate the segments already present, exactly like writing over part
/// of a previously tracked range.
///
/// Internally the map is **adaptive**: while small it is a flat sorted
/// vector of `(start, end, value)` segments — binary-searched reads, splice
/// writes, and zero steady-state allocation once [`clear`](Self::clear) has
/// been recycling the backing storage. Past [`FLAT_MAX`] segments it spills
/// into a `BTreeMap` keyed by segment start and stays there until cleared.
/// The invariant either way (checked in debug builds and by property tests)
/// is that segments are non-empty, sorted, and pairwise disjoint.
///
/// # Examples
///
/// ```
/// use pmtest_interval::{ByteRange, SegmentMap};
///
/// let mut map = SegmentMap::new();
/// map.insert(ByteRange::new(0, 64), 'x');
/// map.insert(ByteRange::new(16, 32), 'y');
/// let segs: Vec<_> = map.iter().map(|(r, v)| (r.start(), r.end(), *v)).collect();
/// assert_eq!(segs, [(0, 16, 'x'), (16, 32, 'y'), (32, 64, 'x')]);
/// ```
#[derive(Clone)]
pub struct SegmentMap<V> {
    /// The small-map representation: `(start, end, value)`, sorted by start.
    /// Authoritative while `in_tree` is false; kept (empty, capacity
    /// retained) while spilled so `clear` can recycle it.
    flat: Vec<(u64, u64, V)>,
    /// The large-map representation: start -> (end, value). Authoritative
    /// while `in_tree` is true.
    tree: BTreeMap<u64, (u64, V)>,
    in_tree: bool,
    /// Flat→tree migrations over the map's lifetime (not reset by `clear`).
    repr_switches: u64,
}

impl<V> Default for SegmentMap<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> SegmentMap<V> {
    /// Creates an empty map.
    #[must_use]
    pub fn new() -> Self {
        Self { flat: Vec::new(), tree: BTreeMap::new(), in_tree: false, repr_switches: 0 }
    }

    /// Number of stored segments (not bytes).
    #[must_use]
    pub fn len(&self) -> usize {
        if self.in_tree {
            self.tree.len()
        } else {
            self.flat.len()
        }
    }

    /// Whether the map holds no segments.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes all segments, retaining the flat vector's capacity so a
    /// recycled map allocates nothing on its next fill. A spilled map drops
    /// back to the flat representation.
    pub fn clear(&mut self) {
        self.flat.clear();
        self.tree.clear();
        self.in_tree = false;
    }

    /// Times this map migrated from the flat to the BTree representation
    /// (cumulative; survives [`clear`](Self::clear) so recycled maps keep
    /// reporting).
    #[must_use]
    pub fn repr_switches(&self) -> u64 {
        self.repr_switches
    }

    /// Whether the map currently uses the flat small-map representation.
    #[must_use]
    pub fn is_flat(&self) -> bool {
        !self.in_tree
    }

    /// Index of the first flat segment whose end is after `addr` — the first
    /// candidate to overlap a range starting at `addr`. (Starts and ends are
    /// both sorted because segments are disjoint.)
    fn flat_first_overlapping(&self, addr: u64) -> usize {
        self.flat.partition_point(|&(_, e, _)| e <= addr)
    }

    /// Returns the value covering `addr`, if any.
    #[must_use]
    pub fn get(&self, addr: u64) -> Option<&V> {
        if self.in_tree {
            let (&start, (end, value)) = self.tree.range(..=addr).next_back()?;
            (start <= addr && addr < *end).then_some(value)
        } else {
            let idx = self.flat.partition_point(|&(s, _, _)| s <= addr).checked_sub(1)?;
            let (_, end, value) = &self.flat[idx];
            (addr < *end).then_some(value)
        }
    }

    /// Returns the segment (range and value) covering `addr`, if any.
    #[must_use]
    pub fn get_segment(&self, addr: u64) -> Option<(ByteRange, &V)> {
        if self.in_tree {
            let (&start, (end, value)) = self.tree.range(..=addr).next_back()?;
            (start <= addr && addr < *end).then(|| (ByteRange::new(start, *end), value))
        } else {
            let idx = self.flat.partition_point(|&(s, _, _)| s <= addr).checked_sub(1)?;
            let (start, end, value) = &self.flat[idx];
            (addr < *end).then(|| (ByteRange::new(*start, *end), value))
        }
    }

    /// Iterates over all segments in address order.
    pub fn iter(&self) -> Segments<'_, V> {
        Segments {
            inner: if self.in_tree {
                SegmentsInner::Tree(self.tree.iter())
            } else {
                SegmentsInner::Flat(self.flat.iter())
            },
        }
    }

    /// Iterates over the segments overlapping `range`, clipped to `range`.
    ///
    /// Each yielded pair is `(clipped_range, value)`; gaps inside `range` are
    /// skipped (see [`SegmentMap::gaps`] for the complement).
    pub fn overlapping(&self, range: ByteRange) -> Overlapping<'_, V> {
        let inner = if self.in_tree {
            // The first candidate may start before `range.start()`.
            let first_start = self
                .tree
                .range(..=range.start())
                .next_back()
                .map(|(&s, _)| s)
                .unwrap_or(range.start());
            OverlapInner::Tree(self.tree.range(first_start..range.end()))
        } else {
            let lo = self.flat_first_overlapping(range.start());
            OverlapInner::Flat(self.flat[lo..].iter())
        };
        Overlapping { inner, range }
    }

    /// Iterates over the maximal sub-ranges of `range` not covered by any
    /// segment.
    pub fn gaps(&self, range: ByteRange) -> Vec<ByteRange> {
        let mut gaps = Vec::new();
        let mut cursor = range.start();
        for (seg, _) in self.overlapping(range) {
            if cursor < seg.start() {
                gaps.push(ByteRange::new(cursor, seg.start()));
            }
            cursor = seg.end();
        }
        if cursor < range.end() {
            gaps.push(ByteRange::new(cursor, range.end()));
        }
        gaps
    }

    /// Whether every byte of `range` is covered by some segment.
    #[must_use]
    pub fn covers(&self, range: ByteRange) -> bool {
        if range.is_empty() {
            return true;
        }
        let mut cursor = range.start();
        for (seg, _) in self.overlapping(range) {
            if seg.start() > cursor {
                return false;
            }
            cursor = seg.end();
        }
        cursor >= range.end()
    }

    /// Whether any byte of `range` is covered by some segment.
    #[must_use]
    pub fn overlaps(&self, range: ByteRange) -> bool {
        self.overlapping(range).next().is_some()
    }
}

impl<V: Clone> SegmentMap<V> {
    /// Maps `range` to `value`, overwriting anything previously stored there.
    ///
    /// Existing segments that partially overlap `range` are split; their
    /// portions outside `range` keep their old values.
    pub fn insert(&mut self, range: ByteRange, value: V) {
        if range.is_empty() {
            return;
        }
        if self.in_tree {
            self.tree_carve(range);
            self.tree.insert(range.start(), (range.end(), value));
        } else {
            self.flat_carve(range);
            let idx = self.flat.partition_point(|&(s, _, _)| s < range.start());
            self.flat.insert(idx, (range.start(), range.end(), value));
            self.maybe_spill();
        }
        self.debug_check();
    }

    /// Removes all coverage of `range`; segments partially overlapping it are
    /// truncated or split.
    pub fn remove(&mut self, range: ByteRange) {
        if range.is_empty() {
            return;
        }
        if self.in_tree {
            self.tree_carve(range);
        } else {
            self.flat_carve(range);
        }
        self.debug_check();
    }

    /// Applies `f` to every sub-segment of `range`, including uncovered gaps.
    ///
    /// For each maximal sub-range with uniform current value (`Some(v)` for a
    /// covered sub-range, `None` for a gap), `f(sub_range, current)` decides
    /// the new value: `Some(v)` stores `v`, `None` leaves the sub-range empty.
    ///
    /// This is the primitive behind the paper's checking rules: a `write`
    /// replaces the status over its range, a `clwb` updates the flush interval
    /// of covered sub-ranges and can inspect gaps to flag unnecessary
    /// writebacks. On the flat representation the rewrite happens in place —
    /// replacement pieces are staged on the vector's own tail — so the
    /// steady-state cost is zero allocations.
    pub fn update_range<F>(&mut self, range: ByteRange, mut f: F)
    where
        F: FnMut(ByteRange, Option<&V>) -> Option<V>,
    {
        if range.is_empty() {
            return;
        }
        if self.in_tree {
            self.tree_update_range(range, f);
        } else {
            // Window of flat segments overlapping the range.
            let lo = self.flat_first_overlapping(range.start());
            let hi = self.flat.partition_point(|&(s, _, _)| s < range.end());
            let old_len = self.flat.len();
            // Stage the replacement on the tail: the preserved left overhang
            // of a straddling first segment, then every piece `f` keeps, then
            // the preserved right overhang. Values are cloned out before the
            // push so growing the vector never invalidates a borrow.
            if lo < hi {
                let (s, _, _) = self.flat[lo];
                if s < range.start() {
                    let v = self.flat[lo].2.clone();
                    self.flat.push((s, range.start(), v));
                }
            }
            let mut cursor = range.start();
            for i in lo..hi {
                let (s, e, _) = self.flat[i];
                let clip_s = s.max(range.start());
                let clip_e = e.min(range.end());
                if cursor < clip_s {
                    if let Some(new) = f(ByteRange::new(cursor, clip_s), None) {
                        self.flat.push((cursor, clip_s, new));
                    }
                }
                let cur = self.flat[i].2.clone();
                if let Some(new) = f(ByteRange::new(clip_s, clip_e), Some(&cur)) {
                    self.flat.push((clip_s, clip_e, new));
                }
                cursor = clip_e;
            }
            if cursor < range.end() {
                if let Some(new) = f(ByteRange::new(cursor, range.end()), None) {
                    self.flat.push((cursor, range.end(), new));
                }
            }
            if lo < hi {
                let (_, e, _) = self.flat[hi - 1];
                if e > range.end() {
                    let v = self.flat[hi - 1].2.clone();
                    self.flat.push((range.end(), e, v));
                }
            }
            // Swap the staged tail into the window's place and drop the old
            // window: [prefix, window, rest, staged] → [prefix, staged, rest].
            let staged = self.flat.len() - old_len;
            self.flat[lo..].rotate_right(staged);
            self.flat.drain(lo + staged..lo + staged + (hi - lo));
            self.maybe_spill();
        }
        self.debug_check();
    }

    /// Spills the flat representation into the BTree once it outgrows
    /// [`FLAT_MAX`]. One-way until [`clear`](Self::clear).
    fn maybe_spill(&mut self) {
        if !self.in_tree && self.flat.len() > FLAT_MAX {
            self.tree.extend(self.flat.drain(..).map(|(s, e, v)| (s, (e, v))));
            self.in_tree = true;
            self.repr_switches += 1;
        }
    }

    /// Flat-representation carve: removes `range` coverage, keeping the
    /// out-of-range overhangs of straddling boundary segments. Overhangs are
    /// staged on the vector's tail, then rotated into the window's place.
    fn flat_carve(&mut self, range: ByteRange) {
        let lo = self.flat_first_overlapping(range.start());
        let hi = self.flat.partition_point(|&(s, _, _)| s < range.end());
        if lo == hi {
            return;
        }
        let old_len = self.flat.len();
        let (first_s, _, _) = self.flat[lo];
        if first_s < range.start() {
            let v = self.flat[lo].2.clone();
            self.flat.push((first_s, range.start(), v));
        }
        let (_, last_e, _) = self.flat[hi - 1];
        if last_e > range.end() {
            let v = self.flat[hi - 1].2.clone();
            self.flat.push((range.end(), last_e, v));
        }
        let staged = self.flat.len() - old_len;
        self.flat[lo..].rotate_right(staged);
        self.flat.drain(lo + staged..lo + staged + (hi - lo));
    }

    /// BTree-representation `update_range` (the pre-adaptive algorithm).
    fn tree_update_range<F>(&mut self, range: ByteRange, mut f: F)
    where
        F: FnMut(ByteRange, Option<&V>) -> Option<V>,
    {
        // Collect the current view first to avoid aliasing the tree while
        // mutating it.
        let mut pieces: Vec<(ByteRange, Option<V>)> = Vec::new();
        let mut cursor = range.start();
        for (seg, v) in self.overlapping(range) {
            if cursor < seg.start() {
                pieces.push((ByteRange::new(cursor, seg.start()), None));
            }
            pieces.push((seg, Some(v.clone())));
            cursor = seg.end();
        }
        if cursor < range.end() {
            pieces.push((ByteRange::new(cursor, range.end()), None));
        }

        self.tree_carve(range);
        for (sub, current) in pieces {
            if let Some(new) = f(sub, current.as_ref()) {
                self.tree.insert(sub.start(), (sub.end(), new));
            }
        }
    }

    /// BTree-representation carve: removes `range` coverage, splitting
    /// boundary segments so that no remaining segment overlaps `range`.
    fn tree_carve(&mut self, range: ByteRange) {
        // Split a segment straddling range.start().
        if let Some((&s, &(e, _))) = self.tree.range(..range.start()).next_back() {
            if e > range.start() {
                let (_, (_, v)) = self.tree.remove_entry(&s).expect("segment exists");
                self.tree.insert(s, (range.start(), v.clone()));
                if e > range.end() {
                    self.tree.insert(range.end(), (e, v));
                }
            }
        }
        // Remove or truncate segments starting inside the range.
        let starts: Vec<u64> =
            self.tree.range(range.start()..range.end()).map(|(&s, _)| s).collect();
        for s in starts {
            let (e, v) = self.tree.remove(&s).expect("segment exists");
            if e > range.end() {
                self.tree.insert(range.end(), (e, v));
            }
        }
    }

    fn debug_check(&self) {
        #[cfg(debug_assertions)]
        {
            let mut prev_end = 0u64;
            for (r, _) in self.iter() {
                let (s, e) = (r.start(), r.end());
                debug_assert!(s < e, "empty segment [{s:#x},{e:#x})");
                debug_assert!(s >= prev_end, "overlapping segments at {s:#x}");
                prev_end = e;
            }
        }
    }
}

/// Representation-independent equality: two maps are equal when they hold
/// the same segments, whether flat or spilled.
impl<V: PartialEq> PartialEq for SegmentMap<V> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl<V: Eq> Eq for SegmentMap<V> {}

impl<V: fmt::Debug> fmt::Debug for SegmentMap<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter().map(|(r, v)| (format!("{r:?}"), v))).finish()
    }
}

enum SegmentsInner<'a, V> {
    Flat(std::slice::Iter<'a, (u64, u64, V)>),
    Tree(std::collections::btree_map::Iter<'a, u64, (u64, V)>),
}

/// Iterator over the segments of a [`SegmentMap`] in address order.
pub struct Segments<'a, V> {
    inner: SegmentsInner<'a, V>,
}

impl<'a, V> Iterator for Segments<'a, V> {
    type Item = (ByteRange, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        match &mut self.inner {
            SegmentsInner::Flat(it) => it.next().map(|(s, e, v)| (ByteRange::new(*s, *e), v)),
            SegmentsInner::Tree(it) => it.next().map(|(&s, (e, v))| (ByteRange::new(s, *e), v)),
        }
    }
}

enum OverlapInner<'a, V> {
    Flat(std::slice::Iter<'a, (u64, u64, V)>),
    Tree(std::collections::btree_map::Range<'a, u64, (u64, V)>),
}

/// Iterator over the segments of a [`SegmentMap`] overlapping a query range,
/// clipped to it (see [`SegmentMap::overlapping`]).
pub struct Overlapping<'a, V> {
    inner: OverlapInner<'a, V>,
    range: ByteRange,
}

impl<'a, V> Iterator for Overlapping<'a, V> {
    type Item = (ByteRange, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let (s, e, v) = match &mut self.inner {
                OverlapInner::Flat(it) => {
                    let (s, e, v) = it.next()?;
                    (*s, *e, v)
                }
                OverlapInner::Tree(it) => {
                    let (&s, (e, v)) = it.next()?;
                    (s, *e, v)
                }
            };
            if s >= self.range.end() {
                return None;
            }
            if let Some(clip) = ByteRange::new(s, e).intersection(&self.range) {
                return Some((clip, v));
            }
        }
    }
}

impl<V: Clone> FromIterator<(ByteRange, V)> for SegmentMap<V> {
    fn from_iter<T: IntoIterator<Item = (ByteRange, V)>>(iter: T) -> Self {
        let mut map = SegmentMap::new();
        for (r, v) in iter {
            map.insert(r, v);
        }
        map
    }
}

impl<V: Clone> Extend<(ByteRange, V)> for SegmentMap<V> {
    fn extend<T: IntoIterator<Item = (ByteRange, V)>>(&mut self, iter: T) {
        for (r, v) in iter {
            self.insert(r, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(s: u64, e: u64) -> ByteRange {
        ByteRange::new(s, e)
    }

    fn dump(map: &SegmentMap<char>) -> Vec<(u64, u64, char)> {
        map.iter().map(|(rg, v)| (rg.start(), rg.end(), *v)).collect()
    }

    #[test]
    fn insert_disjoint() {
        let mut m = SegmentMap::new();
        m.insert(r(0, 10), 'a');
        m.insert(r(20, 30), 'b');
        assert_eq!(dump(&m), [(0, 10, 'a'), (20, 30, 'b')]);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn insert_splits_enclosing_segment() {
        let mut m = SegmentMap::new();
        m.insert(r(0, 100), 'a');
        m.insert(r(40, 60), 'b');
        assert_eq!(dump(&m), [(0, 40, 'a'), (40, 60, 'b'), (60, 100, 'a')]);
    }

    #[test]
    fn insert_overwrites_contained_segments() {
        let mut m = SegmentMap::new();
        m.insert(r(10, 20), 'a');
        m.insert(r(30, 40), 'b');
        m.insert(r(0, 50), 'c');
        assert_eq!(dump(&m), [(0, 50, 'c')]);
    }

    #[test]
    fn insert_truncates_left_and_right_neighbours() {
        let mut m = SegmentMap::new();
        m.insert(r(0, 20), 'a');
        m.insert(r(30, 50), 'b');
        m.insert(r(10, 40), 'c');
        assert_eq!(dump(&m), [(0, 10, 'a'), (10, 40, 'c'), (40, 50, 'b')]);
    }

    #[test]
    fn empty_insert_is_noop() {
        let mut m = SegmentMap::new();
        m.insert(r(5, 5), 'a');
        assert!(m.is_empty());
    }

    #[test]
    fn get_lookups() {
        let mut m = SegmentMap::new();
        m.insert(r(10, 20), 'a');
        assert_eq!(m.get(10), Some(&'a'));
        assert_eq!(m.get(19), Some(&'a'));
        assert_eq!(m.get(20), None);
        assert_eq!(m.get(9), None);
        assert_eq!(m.get_segment(15), Some((r(10, 20), &'a')));
    }

    #[test]
    fn remove_splits() {
        let mut m = SegmentMap::new();
        m.insert(r(0, 100), 'a');
        m.remove(r(40, 60));
        assert_eq!(dump(&m), [(0, 40, 'a'), (60, 100, 'a')]);
        assert!(!m.covers(r(0, 100)));
        assert!(m.covers(r(0, 40)));
    }

    #[test]
    fn overlapping_clips_to_query() {
        let mut m = SegmentMap::new();
        m.insert(r(0, 10), 'a');
        m.insert(r(10, 20), 'b');
        m.insert(r(25, 35), 'c');
        let got: Vec<_> =
            m.overlapping(r(5, 30)).map(|(rg, v)| (rg.start(), rg.end(), *v)).collect();
        assert_eq!(got, [(5, 10, 'a'), (10, 20, 'b'), (25, 30, 'c')]);
    }

    #[test]
    fn gaps_and_covers() {
        let mut m = SegmentMap::new();
        m.insert(r(10, 20), 'a');
        m.insert(r(30, 40), 'b');
        assert_eq!(m.gaps(r(0, 50)), [r(0, 10), r(20, 30), r(40, 50)]);
        assert_eq!(m.gaps(r(12, 18)), []);
        assert!(m.covers(r(12, 18)));
        assert!(!m.covers(r(15, 35)));
        assert!(m.overlaps(r(15, 35)));
        assert!(!m.overlaps(r(20, 30)));
        assert!(m.covers(r(7, 7)), "empty range is vacuously covered");
    }

    #[test]
    fn update_range_visits_gaps_and_segments() {
        let mut m = SegmentMap::new();
        m.insert(r(10, 20), 'a');
        let mut seen = Vec::new();
        m.update_range(r(0, 30), |sub, cur| {
            seen.push((sub.start(), sub.end(), cur.copied()));
            Some(cur.copied().unwrap_or('x'))
        });
        assert_eq!(seen, [(0, 10, None), (10, 20, Some('a')), (20, 30, None)]);
        assert_eq!(dump(&m), [(0, 10, 'x'), (10, 20, 'a'), (20, 30, 'x')]);
    }

    #[test]
    fn update_range_can_erase() {
        let mut m = SegmentMap::new();
        m.insert(r(0, 30), 'a');
        m.update_range(r(10, 20), |_, _| None);
        assert_eq!(dump(&m), [(0, 10, 'a'), (20, 30, 'a')]);
    }

    #[test]
    fn update_range_clips_straddling_segments() {
        let mut m = SegmentMap::new();
        m.insert(r(0, 100), 'a');
        let mut seen = Vec::new();
        m.update_range(r(40, 60), |sub, cur| {
            seen.push((sub.start(), sub.end(), cur.copied()));
            Some('b')
        });
        assert_eq!(seen, [(40, 60, Some('a'))]);
        assert_eq!(dump(&m), [(0, 40, 'a'), (40, 60, 'b'), (60, 100, 'a')]);
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut m: SegmentMap<char> = [(r(0, 4), 'a'), (r(4, 8), 'b')].into_iter().collect();
        m.extend([(r(8, 12), 'c')]);
        assert_eq!(dump(&m), [(0, 4, 'a'), (4, 8, 'b'), (8, 12, 'c')]);
    }

    #[test]
    fn debug_is_nonempty() {
        let mut m = SegmentMap::new();
        assert_eq!(format!("{m:?}"), "{}");
        m.insert(r(0, 1), 'z');
        assert!(format!("{m:?}").contains("0x0"));
    }

    /// Fills with `n` disjoint two-byte segments starting at 0.
    fn filled(n: u64) -> SegmentMap<char> {
        let mut m = SegmentMap::new();
        for i in 0..n {
            m.insert(r(i * 4, i * 4 + 2), 'a');
        }
        m
    }

    #[test]
    fn spills_to_tree_past_the_crossover() {
        let m = filled(FLAT_MAX as u64);
        assert!(m.is_flat());
        assert_eq!(m.repr_switches(), 0);
        let mut m = m;
        m.insert(r(10_000, 10_002), 'z');
        assert!(!m.is_flat(), "crossing FLAT_MAX must spill");
        assert_eq!(m.repr_switches(), 1);
        assert_eq!(m.len(), FLAT_MAX + 1);
        // The spilled map keeps behaving identically.
        assert_eq!(m.get(0), Some(&'a'));
        assert_eq!(m.get(10_001), Some(&'z'));
        m.insert(r(1, 5), 'b');
        assert_eq!(m.get(4), Some(&'b'));
    }

    #[test]
    fn clear_returns_to_flat_and_keeps_the_switch_count() {
        let mut m = filled(FLAT_MAX as u64 + 10);
        assert!(!m.is_flat());
        m.clear();
        assert!(m.is_empty());
        assert!(m.is_flat(), "clear drops back to the flat representation");
        assert_eq!(m.repr_switches(), 1, "switch count is cumulative");
        m.insert(r(0, 8), 'q');
        assert_eq!(dump(&m), [(0, 8, 'q')]);
    }

    #[test]
    fn representation_does_not_affect_equality() {
        let flat = filled(4);
        let mut spilled = filled(FLAT_MAX as u64 + 1);
        assert!(!spilled.is_flat());
        for i in 4..=FLAT_MAX as u64 {
            spilled.remove(r(i * 4, i * 4 + 2));
        }
        assert!(spilled.len() == flat.len());
        assert_eq!(spilled, flat, "same segments must compare equal across representations");
    }

    #[test]
    fn update_range_on_spilled_map_matches_flat() {
        let mut flat = filled(8);
        let mut spilled = filled(FLAT_MAX as u64 + 1);
        for i in 8..=FLAT_MAX as u64 {
            spilled.remove(r(i * 4, i * 4 + 2));
        }
        let bump = |_: ByteRange, cur: Option<&char>| Some(cur.copied().unwrap_or('x'));
        flat.update_range(r(0, 40), bump);
        spilled.update_range(r(0, 40), bump);
        assert_eq!(flat, spilled);
    }
}
