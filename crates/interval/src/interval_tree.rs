use std::fmt;

use crate::ByteRange;

/// An augmented balanced interval tree over possibly overlapping byte ranges.
///
/// The paper's transaction checker keeps a *log tree* of the ranges backed up
/// by `TX_ADD` (§5.1.1); the engine then asks, for every write inside a
/// transaction, whether the written range is fully covered by logged ranges,
/// and whether a new `TX_ADD` duplicates an existing one. Unlike
/// [`SegmentMap`](crate::SegmentMap), entries here may overlap and are never
/// merged, so each hit can be attributed to the specific `TX_ADD` call site
/// that created it.
///
/// The tree is an arena-allocated AVL tree ordered by interval start and
/// augmented with the maximum end per subtree, giving `O(log n)` insertion
/// and `O(log n + k)` overlap queries.
///
/// # Examples
///
/// ```
/// use pmtest_interval::{ByteRange, IntervalTree};
///
/// let mut tree = IntervalTree::new();
/// tree.insert(ByteRange::new(0, 10), "log A");
/// tree.insert(ByteRange::new(20, 30), "log B");
/// assert!(tree.covers(ByteRange::new(2, 8)));
/// assert!(!tree.covers(ByteRange::new(5, 25)));
/// let hits: Vec<_> = tree.overlaps(ByteRange::new(5, 25)).map(|(_, v)| *v).collect();
/// assert_eq!(hits, ["log A", "log B"]);
/// ```
#[derive(Clone)]
pub struct IntervalTree<V> {
    nodes: Vec<Node<V>>,
    root: Option<usize>,
}

#[derive(Clone)]
struct Node<V> {
    range: ByteRange,
    value: V,
    max_end: u64,
    height: i32,
    left: Option<usize>,
    right: Option<usize>,
}

impl<V> Default for IntervalTree<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> IntervalTree<V> {
    /// Creates an empty tree.
    #[must_use]
    pub fn new() -> Self {
        Self { nodes: Vec::new(), root: None }
    }

    /// Number of stored intervals.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree holds no intervals.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Removes all intervals.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.root = None;
    }

    /// Inserts `range` with `value`. Overlapping and duplicate ranges are
    /// allowed; empty ranges are ignored.
    pub fn insert(&mut self, range: ByteRange, value: V) {
        if range.is_empty() {
            return;
        }
        let id = self.nodes.len();
        self.nodes.push(Node {
            range,
            value,
            max_end: range.end(),
            height: 1,
            left: None,
            right: None,
        });
        self.root = Some(self.insert_at(self.root, id));
    }

    /// Iterates over the intervals overlapping `range` (pre-order).
    pub fn overlaps(&self, range: ByteRange) -> Overlaps<'_, V> {
        let mut stack = Vec::new();
        if let Some(root) = self.root {
            stack.push(root);
        }
        Overlaps { tree: self, range, stack }
    }

    /// Whether any stored interval overlaps `range`.
    #[must_use]
    pub fn overlaps_any(&self, range: ByteRange) -> bool {
        self.overlaps(range).next().is_some()
    }

    /// Whether the union of stored intervals fully covers `range`.
    ///
    /// An empty `range` is vacuously covered.
    #[must_use]
    pub fn covers(&self, range: ByteRange) -> bool {
        if range.is_empty() {
            return true;
        }
        let mut hits: Vec<ByteRange> = self.overlaps(range).map(|(r, _)| r).collect();
        hits.sort_by_key(ByteRange::start);
        let mut cursor = range.start();
        for hit in hits {
            if hit.start() > cursor {
                return false;
            }
            cursor = cursor.max(hit.end());
            if cursor >= range.end() {
                return true;
            }
        }
        cursor >= range.end()
    }

    /// The maximal sub-ranges of `range` not covered by any stored interval.
    pub fn uncovered(&self, range: ByteRange) -> Vec<ByteRange> {
        let mut hits: Vec<ByteRange> = self.overlaps(range).map(|(r, _)| r).collect();
        hits.sort_by_key(ByteRange::start);
        let mut gaps = Vec::new();
        let mut cursor = range.start();
        for hit in hits {
            if hit.start() > cursor {
                gaps.push(ByteRange::new(cursor, hit.start()));
            }
            cursor = cursor.max(hit.end());
        }
        if cursor < range.end() {
            gaps.push(ByteRange::new(cursor, range.end()));
        }
        gaps
    }

    /// Iterates over all stored intervals in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (ByteRange, &V)> {
        self.nodes.iter().map(|n| (n.range, &n.value))
    }

    fn insert_at(&mut self, at: Option<usize>, id: usize) -> usize {
        let Some(cur) = at else { return id };
        if self.nodes[id].range.start() < self.nodes[cur].range.start() {
            self.nodes[cur].left = Some(self.insert_at(self.nodes[cur].left, id));
        } else {
            self.nodes[cur].right = Some(self.insert_at(self.nodes[cur].right, id));
        }
        self.fixup(cur)
    }

    fn height(&self, n: Option<usize>) -> i32 {
        n.map_or(0, |i| self.nodes[i].height)
    }

    fn max_end(&self, n: Option<usize>) -> u64 {
        n.map_or(0, |i| self.nodes[i].max_end)
    }

    fn refresh(&mut self, n: usize) {
        let (l, r) = (self.nodes[n].left, self.nodes[n].right);
        self.nodes[n].height = 1 + self.height(l).max(self.height(r));
        self.nodes[n].max_end = self.nodes[n].range.end().max(self.max_end(l)).max(self.max_end(r));
    }

    fn balance_factor(&self, n: usize) -> i32 {
        self.height(self.nodes[n].left) - self.height(self.nodes[n].right)
    }

    fn rotate_right(&mut self, n: usize) -> usize {
        let l = self.nodes[n].left.expect("rotate_right requires left child");
        self.nodes[n].left = self.nodes[l].right;
        self.nodes[l].right = Some(n);
        self.refresh(n);
        self.refresh(l);
        l
    }

    fn rotate_left(&mut self, n: usize) -> usize {
        let r = self.nodes[n].right.expect("rotate_left requires right child");
        self.nodes[n].right = self.nodes[r].left;
        self.nodes[r].left = Some(n);
        self.refresh(n);
        self.refresh(r);
        r
    }

    fn fixup(&mut self, n: usize) -> usize {
        self.refresh(n);
        let bf = self.balance_factor(n);
        if bf > 1 {
            let l = self.nodes[n].left.expect("left-heavy implies left child");
            if self.balance_factor(l) < 0 {
                self.nodes[n].left = Some(self.rotate_left(l));
            }
            self.rotate_right(n)
        } else if bf < -1 {
            let r = self.nodes[n].right.expect("right-heavy implies right child");
            if self.balance_factor(r) > 0 {
                self.nodes[n].right = Some(self.rotate_right(r));
            }
            self.rotate_left(n)
        } else {
            n
        }
    }
}

impl<V: fmt::Debug> fmt::Debug for IntervalTree<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut entries: Vec<_> = self.iter().collect();
        entries.sort_by_key(|(r, _)| (r.start(), r.end()));
        f.debug_map().entries(entries.into_iter().map(|(r, v)| (format!("{r:?}"), v))).finish()
    }
}

impl<V> FromIterator<(ByteRange, V)> for IntervalTree<V> {
    fn from_iter<T: IntoIterator<Item = (ByteRange, V)>>(iter: T) -> Self {
        let mut tree = IntervalTree::new();
        for (r, v) in iter {
            tree.insert(r, v);
        }
        tree
    }
}

/// Iterator over the intervals of an [`IntervalTree`] that overlap a query
/// range.
pub struct Overlaps<'a, V> {
    tree: &'a IntervalTree<V>,
    range: ByteRange,
    stack: Vec<usize>,
}

impl<'a, V> Iterator for Overlaps<'a, V> {
    type Item = (ByteRange, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        while let Some(id) = self.stack.pop() {
            let node = &self.tree.nodes[id];
            // Prune subtrees whose max_end cannot reach the query.
            if node.max_end <= self.range.start() {
                continue;
            }
            if let Some(l) = node.left {
                self.stack.push(l);
            }
            // Right subtree only matters if this start is before query end.
            if node.range.start() < self.range.end() {
                if let Some(r) = node.right {
                    self.stack.push(r);
                }
            }
            if node.range.overlaps(&self.range) {
                return Some((node.range, &node.value));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(s: u64, e: u64) -> ByteRange {
        ByteRange::new(s, e)
    }

    #[test]
    fn empty_tree() {
        let tree: IntervalTree<()> = IntervalTree::new();
        assert!(tree.is_empty());
        assert_eq!(tree.overlaps(r(0, 100)).count(), 0);
        assert!(!tree.overlaps_any(r(0, 100)));
        assert!(tree.covers(r(5, 5)), "empty range vacuously covered");
        assert!(!tree.covers(r(0, 1)));
    }

    #[test]
    fn overlap_query_basics() {
        let tree: IntervalTree<i32> =
            [(r(0, 10), 1), (r(5, 15), 2), (r(20, 30), 3)].into_iter().collect();
        let mut hits: Vec<i32> = tree.overlaps(r(8, 22)).map(|(_, v)| *v).collect();
        hits.sort_unstable();
        assert_eq!(hits, [1, 2, 3]);
        assert_eq!(tree.overlaps(r(15, 20)).count(), 0, "touching is not overlap");
    }

    #[test]
    fn duplicates_are_kept() {
        let mut tree = IntervalTree::new();
        tree.insert(r(0, 10), "first");
        tree.insert(r(0, 10), "second");
        assert_eq!(tree.len(), 2);
        assert_eq!(tree.overlaps(r(0, 1)).count(), 2);
    }

    #[test]
    fn coverage_union() {
        let tree: IntervalTree<()> =
            [(r(0, 10), ()), (r(10, 20), ()), (r(15, 40), ())].into_iter().collect();
        assert!(tree.covers(r(0, 40)));
        assert!(tree.covers(r(5, 35)));
        assert!(!tree.covers(r(0, 41)));
        assert_eq!(tree.uncovered(r(0, 50)), [r(40, 50)]);
    }

    #[test]
    fn uncovered_reports_interior_gaps() {
        let tree: IntervalTree<()> = [(r(10, 20), ()), (r(30, 40), ())].into_iter().collect();
        assert_eq!(tree.uncovered(r(0, 50)), [r(0, 10), r(20, 30), r(40, 50)]);
    }

    #[test]
    fn clear_resets() {
        let mut tree: IntervalTree<()> = [(r(0, 10), ())].into_iter().collect();
        tree.clear();
        assert!(tree.is_empty());
        assert!(!tree.overlaps_any(r(0, 10)));
    }

    #[test]
    fn empty_insert_ignored() {
        let mut tree = IntervalTree::new();
        tree.insert(r(5, 5), ());
        assert!(tree.is_empty());
    }

    #[test]
    fn stays_balanced_under_sorted_inserts() {
        let mut tree = IntervalTree::new();
        let n = 1024u64;
        for i in 0..n {
            tree.insert(r(i * 10, i * 10 + 5), i);
        }
        let root = tree.root.expect("non-empty");
        let h = tree.nodes[root].height;
        assert!(h <= 2 * (64 - (n.leading_zeros() as i32)), "height {h} too large");
        // Every interval individually findable.
        for i in (0..n).step_by(97) {
            let hits: Vec<u64> =
                tree.overlaps(r(i * 10 + 1, i * 10 + 2)).map(|(_, v)| *v).collect();
            assert_eq!(hits, [i]);
        }
    }

    #[test]
    fn debug_nonempty() {
        let tree: IntervalTree<i32> = [(r(0, 4), 7)].into_iter().collect();
        assert!(format!("{tree:?}").contains('7'));
    }
}
