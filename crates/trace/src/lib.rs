//! Trace events, source locations, and sinks for the PMTest reproduction.
//!
//! PMTest is a *trace-based* tester (§4.3 of the paper): the program under
//! test is instrumented so that every persistent-memory operation — writes,
//! cache-line writebacks, fences, transaction-library calls — and every
//! checker the programmer places are appended, in program order, to a trace.
//! The checking engine later replays that trace against the persistency
//! model's checking rules.
//!
//! This crate defines the trace vocabulary shared by everything above it:
//!
//! * [`Event`] — the alphabet of PM operations and checkers (Table 2 plus the
//!   HOPS primitives of §5.2);
//! * [`SourceLoc`] / [`Entry`] — each event carries the file/line that issued
//!   it, so diagnostics read `FAIL @ examples/quickstart.rs:17` exactly like
//!   the paper's `WARN/FAIL @<file>:<line>` outputs;
//! * [`Trace`] — an ordered batch of entries shipped to the engine by
//!   `PMTest_SEND_TRACE`;
//! * [`Sink`] — the instrumentation interface. Instrumented libraries (the
//!   PM pool, the transactional libraries, the file system) emit events into
//!   a `Sink` without knowing whether it is PMTest's recorder, a baseline
//!   tool, or a no-op.
//!
//! # Examples
//!
//! ```
//! use pmtest_trace::{Event, MemorySink, Sink};
//! use pmtest_interval::ByteRange;
//!
//! let sink = MemorySink::new();
//! sink.record(Event::Write(ByteRange::with_len(0x10, 64)).here());
//! sink.record(Event::Fence.here());
//! assert_eq!(sink.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod event;
mod loc;
pub mod packed;
mod pool;
mod recorder;
mod sink;
mod stats;

pub use arena::{ArenaStats, TraceArena, TraceSpan};
pub use event::{Entry, Event, EventKind, SourceLoc, Trace};
pub use loc::{LocId, LocInterner};
pub use packed::{
    Fingerprinter, InternStats, LocResolver, PackedEntry, PackedOp, TraceFingerprint,
    PACKED_ENTRY_BYTES,
};
pub use pool::{ArenaPool, BufferPool, PoolItem, PoolStats, RecyclePool};
pub use recorder::{FlightRecorder, IntervalNote, StepRecord};
pub use sink::{CountingSink, MemorySink, NullSink, SharedSink, Sink};
pub use stats::TraceStats;
