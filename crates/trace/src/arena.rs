//! Arena-backed batch buffers: a session records straight into one
//! contiguous packed-record arena, and shipping a batch hands the whole
//! arena to the engine as a single pointer/offset move.
//!
//! The old batched path built one `Vec<Entry>` per trace and shipped a
//! `Vec<Trace>` — a heap buffer per trace plus an enum payload per entry.
//! A [`TraceArena`] replaces that with two flat vectors: the packed words
//! of every trace in the batch, back to back, and a small span index
//! `(id, start, records, entries)` marking where each sealed trace lives.
//! Arenas are recycled through the pool in `crate::pool`, so steady-state
//! recording never touches the allocator.

use crate::event::Entry;
use crate::packed::{encode_into_interned, InternStats, LocInterner, PackedEntry};

/// Where one sealed trace lives inside a [`TraceArena`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceSpan {
    /// The trace identifier (assigned in submission order).
    pub id: u64,
    /// First record of the trace in the arena's word buffer.
    pub start: u32,
    /// Number of packed records.
    pub records: u32,
    /// Logical entry count (`isOrderedBefore` packs into two records).
    pub entries: u32,
}

/// A recycled arena of packed trace records plus the span index of the
/// sealed traces inside it.
///
/// Recording appends to the *open* region at the tail; [`seal`](Self::seal)
/// turns the open region into a span. Shipping moves the whole arena; any
/// still-open tail is first carried over into the replacement arena by
/// [`detach_for_ship`](Self::detach_for_ship).
///
/// # Examples
///
/// ```
/// use pmtest_trace::{Event, TraceArena};
/// use pmtest_interval::ByteRange;
///
/// let mut arena = TraceArena::new();
/// arena.push(Event::Write(ByteRange::with_len(0, 8)).here());
/// arena.push(Event::Fence.here());
/// arena.seal(7);
/// assert_eq!(arena.sealed(), 1);
/// let (id, words, entries) = arena.traces().next().unwrap();
/// assert_eq!((id, words.len(), entries), (7, 2, 2));
/// ```
#[derive(Debug, Default)]
pub struct TraceArena {
    words: Vec<PackedEntry>,
    spans: Vec<TraceSpan>,
    /// First word of the open (not yet sealed) region.
    open_start: usize,
    /// Logical entries recorded into the open region.
    open_entries: u32,
    /// First-level location cache; survives [`clear`](Self::clear) so a
    /// recycled arena starts warm (interned ids are process-global).
    interner: LocInterner,
    /// Word-buffer reallocations observed so far (plain counter; the cold
    /// fold into shared telemetry happens at batch-ship time).
    slab_allocs: u64,
    /// Capacity at the last [`seal`](Self::seal), to detect growth.
    last_word_cap: usize,
}

/// Allocator-facing tallies of one recording arena: word-slab growth plus
/// the location-intern tier hits, taken (and reset) at batch-ship time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Times the packed-word buffer had to reallocate (steady state: zero —
    /// recycled arenas keep their backing slab).
    pub slab_allocs: u64,
    /// Location-intern tier hits recorded through this arena.
    pub interns: InternStats,
}

impl TraceArena {
    /// Creates an empty arena.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty arena whose word buffer is pre-sized to `words`
    /// records. Pre-warmed pool arenas use this so the first batches through
    /// a fresh pool record without slab growth — and so the pool's
    /// retention check (which drops zero-capacity items) keeps them.
    #[must_use]
    pub fn with_word_capacity(words: usize) -> Self {
        let mut arena = Self::default();
        arena.words.reserve_exact(words);
        arena.last_word_cap = arena.words.capacity();
        arena
    }

    /// Encodes one entry into the open region.
    #[inline]
    pub fn push(&mut self, entry: Entry) {
        encode_into_interned(&mut self.words, entry, &mut self.interner);
        self.open_entries += 1;
    }

    /// Entries recorded into the open region since the last seal.
    #[must_use]
    pub fn open_entries(&self) -> u32 {
        self.open_entries
    }

    /// Seals the open region as trace `id`. A seal with nothing recorded
    /// produces an (empty) span all the same; callers gate on
    /// [`open_entries`](Self::open_entries).
    pub fn seal(&mut self, id: u64) {
        let start = u32::try_from(self.open_start).expect("arena exceeds u32 records");
        let records =
            u32::try_from(self.words.len() - self.open_start).expect("trace exceeds u32 records");
        self.spans.push(TraceSpan { id, start, records, entries: self.open_entries });
        self.open_start = self.words.len();
        self.open_entries = 0;
        // Growth check once per trace, not per entry: cheap enough to keep
        // even with telemetry off.
        if self.words.capacity() > self.last_word_cap {
            self.slab_allocs += 1;
            self.last_word_cap = self.words.capacity();
        }
    }

    /// Number of sealed traces.
    #[must_use]
    pub fn sealed(&self) -> usize {
        self.spans.len()
    }

    /// Whether the arena holds neither sealed spans nor open records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.words.is_empty()
    }

    /// Iterates the sealed traces as `(id, records, entry_count)`.
    pub fn traces(&self) -> impl Iterator<Item = (u64, &[PackedEntry], u32)> {
        self.spans.iter().map(|s| {
            let lo = s.start as usize;
            let hi = lo + s.records as usize;
            (s.id, &self.words[lo..hi], s.entries)
        })
    }

    /// Prepares this arena for shipping: the still-open tail (entries
    /// recorded but not yet sealed) is moved into `fresh`, which replaces
    /// `self`; the sealed arena is returned, ready to hand to the engine.
    #[must_use]
    pub fn detach_for_ship(&mut self, mut fresh: TraceArena) -> TraceArena {
        debug_assert!(fresh.is_empty(), "replacement arena must be recycled clean");
        if self.open_entries > 0 {
            fresh.words.extend_from_slice(&self.words[self.open_start..]);
            fresh.open_entries = self.open_entries;
            self.words.truncate(self.open_start);
            self.open_entries = 0;
        }
        // The location cache belongs with the *recording* side: keep the
        // warm one here, ship the replacement's (the checker never uses it).
        // The allocation tallies travel with it — the ship path reads them
        // off the live arena right after this returns.
        std::mem::swap(&mut self.interner, &mut fresh.interner);
        std::mem::swap(&mut self.slab_allocs, &mut fresh.slab_allocs);
        let shipped = std::mem::replace(self, fresh);
        // `self` is now the replacement; re-anchor its growth watermark so
        // a retained slab is not miscounted as a fresh allocation.
        self.last_word_cap = self.words.capacity();
        shipped
    }

    /// Forgets all records and spans while keeping the backing allocations,
    /// upholding the pool's cleared-on-release invariant.
    pub fn clear(&mut self) {
        self.words.clear();
        self.spans.clear();
        self.open_start = 0;
        self.open_entries = 0;
        self.last_word_cap = self.words.capacity();
    }

    /// Returns and resets the allocator/intern tallies accumulated since
    /// the last take. The ship path calls this on the live (recording-side)
    /// arena right after [`detach_for_ship`](Self::detach_for_ship), which
    /// keeps the tallies on the recording side.
    pub fn take_stats(&mut self) -> ArenaStats {
        ArenaStats {
            slab_allocs: std::mem::take(&mut self.slab_allocs),
            interns: self.interner.take_stats(),
        }
    }

    /// Capacity of the word buffer, used by the pool's retention cap.
    #[must_use]
    pub fn word_capacity(&self) -> usize {
        self.words.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, SourceLoc};
    use pmtest_interval::ByteRange;

    fn r(s: u64, e: u64) -> ByteRange {
        ByteRange::new(s, e)
    }

    fn loc(line: u32) -> SourceLoc {
        SourceLoc::new("arena.rs", line)
    }

    #[test]
    fn seals_partition_the_word_buffer() {
        let mut arena = TraceArena::new();
        arena.push(Event::Write(r(0, 8)).at(loc(1)));
        arena.push(Event::Fence.at(loc(2)));
        arena.seal(10);
        arena.push(Event::IsOrderedBefore(r(0, 8), r(8, 16)).at(loc(3)));
        arena.seal(11);
        assert_eq!(arena.sealed(), 2);
        let spans: Vec<_> = arena.traces().collect();
        assert_eq!(spans[0].0, 10);
        assert_eq!(spans[0].1.len(), 2);
        assert_eq!(spans[0].2, 2);
        // isOrderedBefore is one entry but two records.
        assert_eq!(spans[1].0, 11);
        assert_eq!(spans[1].1.len(), 2);
        assert_eq!(spans[1].2, 1);
    }

    #[test]
    fn detach_carries_the_open_tail() {
        let mut arena = TraceArena::new();
        arena.push(Event::Write(r(0, 8)).at(loc(1)));
        arena.seal(1);
        arena.push(Event::Fence.at(loc(2))); // open, not sealed
        let shipped = arena.detach_for_ship(TraceArena::new());
        assert_eq!(shipped.sealed(), 1);
        assert_eq!(shipped.traces().next().unwrap().0, 1);
        // The open fence survived into the live arena.
        assert_eq!(arena.open_entries(), 1);
        arena.seal(2);
        let (id, words, entries) = arena.traces().next().unwrap();
        assert_eq!((id, entries), (2, 1));
        assert_eq!(words[0].op(), crate::packed::PackedOp::Fence);
    }

    #[test]
    fn stats_track_slab_growth_and_intern_tiers() {
        let mut arena = TraceArena::new();
        for i in 0..64 {
            // Two alternating sites: first touch falls through to TLS or
            // global, every later one hits the arena-resident cache.
            arena.push(Event::Write(r(0, 8)).at(loc(1)));
            arena.push(Event::Fence.at(loc(2)));
            arena.seal(i);
        }
        let stats = arena.take_stats();
        assert!(stats.slab_allocs >= 1, "growing from empty must count at least one slab");
        assert_eq!(stats.interns.arena_hits, 126, "all but the two first touches hit the arena");
        assert_eq!(stats.interns.tls_hits + stats.interns.global, 2);
        // take_stats resets.
        assert_eq!(arena.take_stats(), ArenaStats::default());

        // A recycled (cleared) arena keeps its slab: no further growth, and
        // the interner stays warm.
        let cap = arena.word_capacity();
        arena.clear();
        for i in 0..64 {
            arena.push(Event::Write(r(0, 8)).at(loc(1)));
            arena.push(Event::Fence.at(loc(2)));
            arena.seal(i);
        }
        assert_eq!(arena.word_capacity(), cap);
        let stats = arena.take_stats();
        assert_eq!(stats.slab_allocs, 0, "recycled slab must not recount");
        assert_eq!(stats.interns.arena_hits, 128, "warm interner hits every entry");
    }

    #[test]
    fn detach_keeps_tallies_on_the_recording_side() {
        let mut arena = TraceArena::new();
        arena.push(Event::Write(r(0, 8)).at(loc(9)));
        arena.seal(1);
        let mut shipped = arena.detach_for_ship(TraceArena::new());
        assert_eq!(shipped.take_stats(), ArenaStats::default(), "shipped side carries no tallies");
        let stats = arena.take_stats();
        assert!(stats.slab_allocs >= 1);
        assert_eq!(stats.interns.tls_hits + stats.interns.global, 1);
    }

    #[test]
    fn clear_recycles_allocations() {
        let mut arena = TraceArena::new();
        for i in 0..100 {
            arena.push(Event::Write(r(0, 8)).at(loc(1)));
            arena.seal(i);
        }
        let cap = arena.word_capacity();
        arena.clear();
        assert!(arena.is_empty());
        assert_eq!(arena.sealed(), 0);
        assert_eq!(arena.word_capacity(), cap, "clear must keep the backing buffer");
    }
}
