//! Compact binary trace encoding: fixed-width packed records and the
//! process-wide source-location table.
//!
//! The enum-of-structs [`Entry`] is ergonomic to record but expensive to
//! ship: with two embedded [`ByteRange`]s and a `&'static str` location it
//! is 56 bytes of pointer-carrying payload per event, and every consumer
//! (shadow memory, diagnostics) re-interns the location on its own. The
//! packed form fixes the width at three `u64` words per record —
//!
//! | word | bits    | field                                    |
//! |------|---------|------------------------------------------|
//! | 0    | 0..8    | opcode ([`PackedOp`])                    |
//! | 0    | 8..40   | interned [`SourceLoc`] id (32 bits)      |
//! | 0    | 40..64  | reserved (zero)                          |
//! | 1    | 0..64   | range start (zero for range-less ops)    |
//! | 2    | 0..64   | range end (zero for range-less ops)      |
//!
//! — with the location interned *at record time* into a process-wide
//! append-only table, so a record is `Copy`, pointer-free, and exactly
//! [`PACKED_ENTRY_BYTES`] wide. `isOrderedBefore` is the one two-operand
//! event; it encodes as its own record followed by one
//! [`PackedOp::Operand`] continuation record carrying the second range.
//!
//! Decoding resolves ids back through a [`LocResolver`], a cheap per-worker
//! mirror of the global table: the table is append-only, so a mirror only
//! ever needs to copy the tail it has not seen yet.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::OnceLock;

use parking_lot::{Mutex, RwLock};
use pmtest_interval::ByteRange;

use crate::event::{Entry, Event, SourceLoc};

/// Exact size of one packed record, in bytes. Guarded by a static assertion
/// so the record cannot silently grow.
pub const PACKED_ENTRY_BYTES: usize = 24;

/// One fixed-width trace record: three `u64` words (opcode + location id,
/// range start, range end). See the module docs for the layout.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(C)]
pub struct PackedEntry {
    meta: u64,
    lo: u64,
    hi: u64,
}

// The whole point of the packed form: fixed width, u64-aligned, no growth.
const _: () = assert!(std::mem::size_of::<PackedEntry>() == PACKED_ENTRY_BYTES);
const _: () = assert!(std::mem::align_of::<PackedEntry>() == 8);

/// Opcode of a [`PackedEntry`]. Values are part of the encoding and must
/// not be reordered.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum PackedOp {
    /// [`Event::Write`].
    Write = 0,
    /// [`Event::Flush`].
    Flush = 1,
    /// [`Event::Fence`].
    Fence = 2,
    /// [`Event::OFence`].
    OFence = 3,
    /// [`Event::DFence`].
    DFence = 4,
    /// [`Event::TxBegin`].
    TxBegin = 5,
    /// [`Event::TxEnd`].
    TxEnd = 6,
    /// [`Event::TxAdd`].
    TxAdd = 7,
    /// [`Event::IsPersist`].
    IsPersist = 8,
    /// [`Event::IsOrderedBefore`] — followed by one [`PackedOp::Operand`]
    /// record carrying the second range.
    IsOrderedBefore = 9,
    /// [`Event::TxCheckerStart`].
    TxCheckerStart = 10,
    /// [`Event::TxCheckerEnd`].
    TxCheckerEnd = 11,
    /// [`Event::Exclude`].
    Exclude = 12,
    /// [`Event::Include`].
    Include = 13,
    /// Continuation record: the second range of the preceding
    /// [`PackedOp::IsOrderedBefore`]. Never the first record of an event.
    Operand = 14,
}

impl PackedOp {
    fn from_u8(v: u8) -> PackedOp {
        match v {
            0 => PackedOp::Write,
            1 => PackedOp::Flush,
            2 => PackedOp::Fence,
            3 => PackedOp::OFence,
            4 => PackedOp::DFence,
            5 => PackedOp::TxBegin,
            6 => PackedOp::TxEnd,
            7 => PackedOp::TxAdd,
            8 => PackedOp::IsPersist,
            9 => PackedOp::IsOrderedBefore,
            10 => PackedOp::TxCheckerStart,
            11 => PackedOp::TxCheckerEnd,
            12 => PackedOp::Exclude,
            13 => PackedOp::Include,
            14 => PackedOp::Operand,
            other => unreachable!("invalid packed opcode {other}"),
        }
    }
}

impl PackedEntry {
    fn new(op: PackedOp, loc_id: u32, range: ByteRange) -> Self {
        Self { meta: (op as u64) | (u64::from(loc_id) << 8), lo: range.start(), hi: range.end() }
    }

    /// The record's opcode.
    #[must_use]
    pub fn op(&self) -> PackedOp {
        PackedOp::from_u8((self.meta & 0xff) as u8)
    }

    /// The interned id of the issuing source location.
    #[must_use]
    pub fn loc_id(&self) -> u32 {
        (self.meta >> 8) as u32
    }

    /// Range start word (zero for range-less opcodes).
    #[must_use]
    pub fn lo(&self) -> u64 {
        self.lo
    }

    /// Range end word (zero for range-less opcodes).
    #[must_use]
    pub fn hi(&self) -> u64 {
        self.hi
    }

    /// The encoded range. Meaningful only for opcodes that carry one.
    #[must_use]
    pub fn range(&self) -> ByteRange {
        ByteRange::new(self.lo, self.hi)
    }
}

// ---------------------------------------------------------------------------
// Process-wide source-location table
// ---------------------------------------------------------------------------

struct GlobalLocs {
    /// Append-only; an id, once handed out, resolves forever.
    table: RwLock<Vec<SourceLoc>>,
    /// Dedup index, only touched on a thread-cache miss.
    index: Mutex<HashMap<SourceLoc, u32>>,
}

fn global() -> &'static GlobalLocs {
    static LOCS: OnceLock<GlobalLocs> = OnceLock::new();
    LOCS.get_or_init(|| GlobalLocs {
        table: RwLock::new(Vec::new()),
        index: Mutex::new(HashMap::new()),
    })
}

/// Per-thread cache of recently interned locations. A recording thread
/// replays the same few call sites over and over; a short linear scan keeps
/// the global table off the record path entirely in steady state.
const THREAD_CACHE_MAX: usize = 128;

thread_local! {
    static LOC_CACHE: RefCell<Vec<(SourceLoc, u32)>> = const { RefCell::new(Vec::new()) };
}

fn intern_uncached(loc: SourceLoc) -> u32 {
    let g = global();
    let mut index = g.index.lock();
    if let Some(&id) = index.get(&loc) {
        return id;
    }
    let mut table = g.table.write();
    let id = u32::try_from(table.len()).expect("more than u32::MAX distinct source locations");
    table.push(loc);
    index.insert(loc, id);
    id
}

/// Interns `loc` into the process-wide location table, returning its stable
/// 32-bit id. Two locations with equal file/line always get the same id.
#[must_use]
pub fn intern_loc(loc: SourceLoc) -> u32 {
    intern_loc_tiered(loc).0
}

/// Which tier of the three-level intern cache settled a lookup. Purely an
/// observability detail; the returned id is identical either way.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InternTier {
    /// Hit in the thread-local cache.
    Tls,
    /// Fell through to the process-wide table (lock + dedup index).
    Global,
}

/// [`intern_loc`], also reporting which tier answered.
fn intern_loc_tiered(loc: SourceLoc) -> (u32, InternTier) {
    // The thread cache may already be torn down when a session slot flushes
    // from a thread-local destructor; fall through to the global table then.
    LOC_CACHE
        .try_with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some(&(_, id)) = cache.iter().find(|(l, _)| l.same_site(&loc)) {
                return (id, InternTier::Tls);
            }
            let id = intern_uncached(loc);
            if cache.len() < THREAD_CACHE_MAX {
                cache.push((loc, id));
            }
            (id, InternTier::Global)
        })
        .unwrap_or_else(|_| (intern_uncached(loc), InternTier::Global))
}

/// First-level intern cache embedded in a recording buffer.
///
/// [`intern_loc`]'s thread-local cache already keeps the global table off
/// the record path, but the `thread_local!` access plus `RefCell` borrow it
/// pays per entry is measurable at ingest rates. A recording thread replays
/// the same handful of call sites, so an arena-resident scan of at most
/// [`LOC_INTERNER_MAX`] sites settles almost every entry with a few
/// pointer compares; [`intern_loc`] is the miss path. Interned ids are
/// process-global, so a recycled buffer's cache stays valid on whatever
/// thread picks the buffer up next — eviction (round-robin) affects only
/// speed, never correctness.
#[derive(Debug, Default)]
pub struct LocInterner {
    sites: Vec<(SourceLoc, u32)>,
    /// Round-robin eviction cursor.
    next: usize,
    /// Tier-hit tallies (plain counters: the interner is single-owner, and
    /// the cold fold into shared telemetry happens at batch-ship time).
    stats: InternStats,
}

/// Sites held by a [`LocInterner`] — enough for the instrumentation macros
/// of a hot loop, small enough that a miss-heavy scan stays cheap.
const LOC_INTERNER_MAX: usize = 8;

/// Tier-hit tallies of the three-level location-intern cache: per-arena
/// scan → thread-local cache → process-global table.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InternStats {
    /// Lookups settled by the arena-resident site scan.
    pub arena_hits: u64,
    /// Arena misses settled by the thread-local cache.
    pub tls_hits: u64,
    /// Lookups that fell through to the process-global table.
    pub global: u64,
}

impl InternStats {
    /// Adds `other` into `self`, field by field.
    pub fn merge(&mut self, other: InternStats) {
        self.arena_hits += other.arena_hits;
        self.tls_hits += other.tls_hits;
        self.global += other.global;
    }
}

impl LocInterner {
    /// Interns `loc`, consulting the in-buffer cache first.
    #[inline]
    #[must_use]
    pub fn intern(&mut self, loc: SourceLoc) -> u32 {
        if let Some(&(_, id)) = self.sites.iter().find(|(l, _)| l.same_site(&loc)) {
            self.stats.arena_hits += 1;
            return id;
        }
        let (id, tier) = intern_loc_tiered(loc);
        match tier {
            InternTier::Tls => self.stats.tls_hits += 1,
            InternTier::Global => self.stats.global += 1,
        }
        if self.sites.len() < LOC_INTERNER_MAX {
            self.sites.push((loc, id));
        } else {
            self.sites[self.next] = (loc, id);
            self.next = (self.next + 1) % LOC_INTERNER_MAX;
        }
        id
    }

    /// Returns and resets the tier-hit tallies accumulated since the last
    /// take. Called at batch-ship time to fold into shared telemetry.
    pub fn take_stats(&mut self) -> InternStats {
        std::mem::take(&mut self.stats)
    }
}

/// Resolves an interned id against the global table (read lock). For bulk
/// decoding prefer a [`LocResolver`], which amortizes the lock.
#[must_use]
pub fn resolve_loc(id: u32) -> SourceLoc {
    global().table.read()[id as usize]
}

/// A cheap, lock-amortizing mirror of the global location table.
///
/// The table is append-only, so a resolver only ever copies the tail it has
/// not seen yet; steady-state resolution is an indexed load.
#[derive(Debug, Default)]
pub struct LocResolver {
    mirror: Vec<SourceLoc>,
}

impl LocResolver {
    /// Creates an empty resolver.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolves an interned id, refreshing the mirror from the global table
    /// when the id is newer than anything seen so far.
    pub fn resolve(&mut self, id: u32) -> SourceLoc {
        let idx = id as usize;
        if idx >= self.mirror.len() {
            let table = global().table.read();
            self.mirror.extend_from_slice(&table[self.mirror.len()..]);
        }
        self.mirror[idx]
    }
}

// ---------------------------------------------------------------------------
// Encode / decode
// ---------------------------------------------------------------------------

/// Encodes one [`Entry`] into `buf`, interning its location. Returns the
/// number of records appended (2 for `isOrderedBefore`, 1 otherwise).
#[inline]
pub fn encode_into(buf: &mut Vec<PackedEntry>, entry: Entry) -> usize {
    encode_with_id(buf, entry.event, intern_loc(entry.loc))
}

/// [`encode_into`], but interning through a buffer-resident [`LocInterner`]
/// instead of the thread-local cache — the ingest hot path.
#[inline]
pub fn encode_into_interned(
    buf: &mut Vec<PackedEntry>,
    entry: Entry,
    interner: &mut LocInterner,
) -> usize {
    let id = interner.intern(entry.loc);
    encode_with_id(buf, entry.event, id)
}

#[inline]
fn encode_with_id(buf: &mut Vec<PackedEntry>, event: Event, loc: u32) -> usize {
    let zero = ByteRange::new(0, 0);
    match event {
        Event::Write(r) => buf.push(PackedEntry::new(PackedOp::Write, loc, r)),
        Event::Flush(r) => buf.push(PackedEntry::new(PackedOp::Flush, loc, r)),
        Event::Fence => buf.push(PackedEntry::new(PackedOp::Fence, loc, zero)),
        Event::OFence => buf.push(PackedEntry::new(PackedOp::OFence, loc, zero)),
        Event::DFence => buf.push(PackedEntry::new(PackedOp::DFence, loc, zero)),
        Event::TxBegin => buf.push(PackedEntry::new(PackedOp::TxBegin, loc, zero)),
        Event::TxEnd => buf.push(PackedEntry::new(PackedOp::TxEnd, loc, zero)),
        Event::TxAdd(r) => buf.push(PackedEntry::new(PackedOp::TxAdd, loc, r)),
        Event::IsPersist(r) => buf.push(PackedEntry::new(PackedOp::IsPersist, loc, r)),
        Event::IsOrderedBefore(a, b) => {
            buf.push(PackedEntry::new(PackedOp::IsOrderedBefore, loc, a));
            buf.push(PackedEntry::new(PackedOp::Operand, loc, b));
            return 2;
        }
        Event::TxCheckerStart => buf.push(PackedEntry::new(PackedOp::TxCheckerStart, loc, zero)),
        Event::TxCheckerEnd => buf.push(PackedEntry::new(PackedOp::TxCheckerEnd, loc, zero)),
        Event::Exclude(r) => buf.push(PackedEntry::new(PackedOp::Exclude, loc, r)),
        Event::Include(r) => buf.push(PackedEntry::new(PackedOp::Include, loc, r)),
    }
    1
}

/// Decodes the record starting at `words[i]`, returning the entry and the
/// index of the next record. `None` once `i` is past the end.
pub fn decode_next(
    words: &[PackedEntry],
    i: usize,
    resolver: &mut LocResolver,
) -> Option<(Entry, usize)> {
    let rec = *words.get(i)?;
    let loc = resolver.resolve(rec.loc_id());
    let (event, next) = match rec.op() {
        PackedOp::Write => (Event::Write(rec.range()), i + 1),
        PackedOp::Flush => (Event::Flush(rec.range()), i + 1),
        PackedOp::Fence => (Event::Fence, i + 1),
        PackedOp::OFence => (Event::OFence, i + 1),
        PackedOp::DFence => (Event::DFence, i + 1),
        PackedOp::TxBegin => (Event::TxBegin, i + 1),
        PackedOp::TxEnd => (Event::TxEnd, i + 1),
        PackedOp::TxAdd => (Event::TxAdd(rec.range()), i + 1),
        PackedOp::IsPersist => (Event::IsPersist(rec.range()), i + 1),
        PackedOp::IsOrderedBefore => {
            let second = match words.get(i + 1) {
                Some(op) if op.op() == PackedOp::Operand => op.range(),
                _ => unreachable!("isOrderedBefore record without its operand continuation"),
            };
            (Event::IsOrderedBefore(rec.range(), second), i + 2)
        }
        PackedOp::TxCheckerStart => (Event::TxCheckerStart, i + 1),
        PackedOp::TxCheckerEnd => (Event::TxCheckerEnd, i + 1),
        PackedOp::Exclude => (Event::Exclude(rec.range()), i + 1),
        PackedOp::Include => (Event::Include(rec.range()), i + 1),
        PackedOp::Operand => unreachable!("dangling operand continuation record"),
    };
    Some((Event::at(event, loc), next))
}

/// Decodes a whole record slice back into entries.
#[must_use]
pub fn decode_all(words: &[PackedEntry]) -> Vec<Entry> {
    let mut resolver = LocResolver::new();
    let mut out = Vec::new();
    let mut i = 0;
    while let Some((entry, next)) = decode_next(words, i, &mut resolver) {
        out.push(entry);
        i = next;
    }
    out
}

// ---------------------------------------------------------------------------
// Trace fingerprinting
// ---------------------------------------------------------------------------

/// A stable 128-bit content fingerprint of a packed record stream.
///
/// Two streams fingerprint equal exactly when they encode the same event
/// sequence — same opcodes, same range words, same *source sites* — in the
/// same order. The key is run-stable: interned location ids are folded in
/// via a content hash of the site (file bytes + line), never via the raw id,
/// so the fingerprint does not depend on the order sites happened to be
/// interned in this process. That makes it safe to key caches that must
/// agree across runs, dialects, and worker schedules.
///
/// Collisions are not adversarially hard — this is a 128-bit mixing hash,
/// not a MAC — but accidental collision probability is ~2⁻¹²⁸ per pair,
/// negligible against any realistic trace population.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TraceFingerprint {
    hi: u64,
    lo: u64,
}

impl TraceFingerprint {
    /// The fingerprint as one 128-bit integer (for map keys / sharding).
    #[must_use]
    pub fn as_u128(self) -> u128 {
        (u128::from(self.hi) << 64) | u128::from(self.lo)
    }
}

/// One round of the splitmix64 finalizer — full-avalanche 64→64 mixing.
#[inline]
const fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Run-stable 64-bit hash of a source site: FNV-1a over the file bytes,
/// line folded in, finished with a splitmix round. Equal file/line content
/// hashes equal regardless of `&'static str` pointer identity or intern
/// order.
#[must_use]
pub fn site_hash(loc: SourceLoc) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in loc.file().as_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    splitmix64(h ^ (u64::from(loc.line()) << 1))
}

/// Computes [`TraceFingerprint`]s over packed record streams.
///
/// Owns a per-id mirror of site hashes (the global location table is
/// append-only, so the mirror only ever extends), keeping the table's read
/// lock off the per-record path: steady-state fingerprinting is an indexed
/// load plus a few arithmetic rounds per record.
#[derive(Debug, Default)]
pub struct Fingerprinter {
    site_hashes: Vec<u64>,
}

impl Fingerprinter {
    /// Creates a fingerprinter with an empty site-hash mirror.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The run-stable hash for an interned id, refreshing the mirror from
    /// the global table when the id is newer than anything seen so far.
    #[inline]
    fn id_hash(&mut self, id: u32) -> u64 {
        let idx = id as usize;
        if idx >= self.site_hashes.len() {
            let table = global().table.read();
            self.site_hashes.extend(table[self.site_hashes.len()..].iter().map(|&l| site_hash(l)));
        }
        self.site_hashes[idx]
    }

    /// Fingerprints one packed record stream.
    ///
    /// Two cross-coupled 64-bit lanes, three mixing rounds per record over
    /// (opcode ⊕ site hash, range start, range end), record count folded
    /// into the finalizer so a prefix never collides with its extension.
    #[must_use]
    pub fn fingerprint(&mut self, words: &[PackedEntry]) -> TraceFingerprint {
        let mut a = 0x243f_6a88_85a3_08d3u64; // distinct lane seeds (pi digits)
        let mut b = 0x1319_8a2e_0370_7344u64;
        for rec in words {
            let k = self.id_hash(rec.loc_id()) ^ (rec.meta & 0xff);
            a = splitmix64(a ^ k);
            b = splitmix64(b ^ rec.hi ^ a);
            a = splitmix64(a ^ rec.lo);
        }
        a = splitmix64(a ^ words.len() as u64);
        b = splitmix64(b ^ a.rotate_left(31));
        TraceFingerprint { hi: b, lo: a }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(s: u64, e: u64) -> ByteRange {
        ByteRange::new(s, e)
    }

    #[test]
    fn record_is_exactly_24_bytes() {
        assert_eq!(std::mem::size_of::<PackedEntry>(), PACKED_ENTRY_BYTES);
        assert_eq!(std::mem::align_of::<PackedEntry>(), 8);
    }

    #[test]
    fn every_event_round_trips() {
        let loc = SourceLoc::new("rt.rs", 11);
        let events = [
            Event::Write(r(0x10, 0x18)),
            Event::Flush(r(0, 4096)),
            Event::Fence,
            Event::OFence,
            Event::DFence,
            Event::TxBegin,
            Event::TxEnd,
            Event::TxAdd(r(7, 9)),
            Event::IsPersist(r(0, 0)),
            Event::IsOrderedBefore(r(0, 8), r(u64::MAX - 8, u64::MAX)),
            Event::TxCheckerStart,
            Event::TxCheckerEnd,
            Event::Exclude(r(1, 2)),
            Event::Include(r(3, 5)),
        ];
        let mut buf = Vec::new();
        for &e in &events {
            encode_into(&mut buf, e.at(loc));
        }
        // isOrderedBefore takes two records, everything else one.
        assert_eq!(buf.len(), events.len() + 1);
        let decoded = decode_all(&buf);
        assert_eq!(decoded.len(), events.len());
        for (entry, &event) in decoded.iter().zip(&events) {
            assert_eq!(entry.event, event);
            assert_eq!(entry.loc, loc);
        }
    }

    #[test]
    fn interning_is_stable_across_threads() {
        let loc = SourceLoc::new("stable.rs", 1);
        let here = intern_loc(loc);
        let from_thread =
            std::thread::spawn(move || intern_loc(SourceLoc::new("stable.rs", 1))).join().unwrap();
        assert_eq!(here, from_thread);
        assert_eq!(resolve_loc(here), loc);
        let mut resolver = LocResolver::new();
        assert_eq!(resolver.resolve(here), loc);
    }

    #[test]
    fn resolver_sees_later_interns() {
        let mut resolver = LocResolver::new();
        let a = intern_loc(SourceLoc::new("late.rs", 1));
        assert_eq!(resolver.resolve(a).line(), 1);
        let b = intern_loc(SourceLoc::new("late.rs", 2));
        assert_eq!(resolver.resolve(b), SourceLoc::new("late.rs", 2));
    }

    #[test]
    fn fingerprint_is_content_addressed() {
        let loc = SourceLoc::new("fp.rs", 1);
        let encode = |events: &[Event]| {
            let mut buf = Vec::new();
            for &e in events {
                encode_into(&mut buf, e.at(loc));
            }
            buf
        };
        let base = encode(&[Event::Write(r(0, 8)), Event::Flush(r(0, 8)), Event::Fence]);
        let mut fp = Fingerprinter::new();
        let f0 = fp.fingerprint(&base);
        // Same stream, same fingerprint — including from a fresh mirror.
        assert_eq!(Fingerprinter::new().fingerprint(&base), f0);
        // Any content change — opcode, range word, order, length — differs.
        let op = encode(&[Event::Write(r(0, 8)), Event::Flush(r(0, 8)), Event::OFence]);
        let range = encode(&[Event::Write(r(0, 9)), Event::Flush(r(0, 8)), Event::Fence]);
        let order = encode(&[Event::Flush(r(0, 8)), Event::Write(r(0, 8)), Event::Fence]);
        let longer =
            encode(&[Event::Write(r(0, 8)), Event::Flush(r(0, 8)), Event::Fence, Event::Fence]);
        for other in [&op, &range, &order, &longer] {
            assert_ne!(fp.fingerprint(other), f0);
        }
        // A prefix never collides with its extension.
        assert_ne!(fp.fingerprint(&base[..2]), f0);
        // The empty stream is a fixed, non-degenerate value.
        assert_eq!(fp.fingerprint(&[]), Fingerprinter::new().fingerprint(&[]));
        assert_ne!(fp.fingerprint(&[]).as_u128(), 0);
    }

    #[test]
    fn fingerprint_tracks_source_sites_not_intern_ids() {
        // Same event stream from a different source site: different key.
        let mk = |loc: SourceLoc| {
            let mut buf = Vec::new();
            encode_into(&mut buf, Event::Write(r(0, 8)).at(loc));
            buf
        };
        let mut fp = Fingerprinter::new();
        let a = fp.fingerprint(&mk(SourceLoc::new("site_a.rs", 7)));
        let b = fp.fingerprint(&mk(SourceLoc::new("site_b.rs", 7)));
        let a_line = fp.fingerprint(&mk(SourceLoc::new("site_a.rs", 8)));
        assert_ne!(a, b);
        assert_ne!(a, a_line);
        assert_eq!(a, fp.fingerprint(&mk(SourceLoc::new("site_a.rs", 7))));
    }

    #[test]
    fn site_hash_is_content_stable() {
        // Equal file/line content hashes equal even across distinct string
        // allocations — the property that makes fingerprints run-stable
        // (intern ids assigned in a different order hash the same).
        let heap_a: &'static str = Box::leak(String::from("stable_site.rs").into_boxed_str());
        let heap_b: &'static str = Box::leak(String::from("stable_site.rs").into_boxed_str());
        assert!(!std::ptr::eq(heap_a, heap_b));
        assert_eq!(site_hash(SourceLoc::new(heap_a, 3)), site_hash(SourceLoc::new(heap_b, 3)));
        assert_ne!(site_hash(SourceLoc::new(heap_a, 3)), site_hash(SourceLoc::new(heap_a, 4)));
    }

    #[test]
    fn loc_id_and_op_are_recoverable() {
        let mut buf = Vec::new();
        let loc = SourceLoc::new("fields.rs", 3);
        encode_into(&mut buf, Event::Write(r(0x40, 0x48)).at(loc));
        let rec = buf[0];
        assert_eq!(rec.op(), PackedOp::Write);
        assert_eq!(resolve_loc(rec.loc_id()), loc);
        assert_eq!(rec.range(), r(0x40, 0x48));
        assert_eq!((rec.lo(), rec.hi()), (0x40, 0x48));
    }
}
