use std::fmt;

use crate::{Entry, Event, EventKind, Trace};

/// Aggregate statistics of a trace — the kind of analysis WHISPER (ASPLOS
/// 2017) performs on PM workloads and that motivated PMTest's design: how
/// many PM operations a program issues, how they cluster into
/// fence-delimited epochs, and how checker-dense the annotation is.
///
/// # Examples
///
/// ```
/// use pmtest_trace::{Event, Trace, TraceStats};
/// use pmtest_interval::ByteRange;
///
/// let mut t = Trace::new(0);
/// let r = ByteRange::with_len(0, 64);
/// t.push(Event::Write(r).here());
/// t.push(Event::Flush(r).here());
/// t.push(Event::Fence.here());
/// t.push(Event::IsPersist(r).here());
/// let stats = TraceStats::from_trace(&t);
/// assert_eq!(stats.writes, 1);
/// assert_eq!(stats.epochs(), 2);
/// assert_eq!(stats.bytes_written, 64);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Store operations.
    pub writes: u64,
    /// Bytes covered by stores.
    pub bytes_written: u64,
    /// Writeback (`clwb`) operations.
    pub flushes: u64,
    /// Bytes covered by writebacks.
    pub bytes_flushed: u64,
    /// x86 `sfence` operations.
    pub fences: u64,
    /// HOPS `ofence` operations.
    pub ofences: u64,
    /// HOPS `dfence` operations.
    pub dfences: u64,
    /// Transaction begin/end pairs observed (counted by `TX_BEGIN`).
    pub transactions: u64,
    /// `TX_ADD` backup announcements.
    pub tx_adds: u64,
    /// Low-level checkers (`isPersist` + `isOrderedBefore`).
    pub low_level_checkers: u64,
    /// Transaction-checker scopes (`TX_CHECKER_START`).
    pub tx_checker_scopes: u64,
    /// Scope-control events (exclude/include).
    pub scope_events: u64,
    /// Total entries.
    pub entries: u64,
    /// The largest number of writes inside one fence-delimited epoch — the
    /// exponent of the Yat blow-up (see `pmtest-baseline`).
    pub max_writes_per_epoch: u64,
}

impl TraceStats {
    /// Computes the statistics of one trace.
    #[must_use]
    pub fn from_trace(trace: &Trace) -> Self {
        Self::from_entries(&trace.entries())
    }

    /// Computes the statistics of one trace given as an entry slice (the
    /// engine's already-decoded form).
    #[must_use]
    pub fn from_entries(entries: &[Entry]) -> Self {
        let mut stats = TraceStats { entries: entries.len() as u64, ..TraceStats::default() };
        let mut epoch_writes = 0u64;
        for entry in entries {
            match entry.event {
                Event::Write(r) => {
                    stats.writes += 1;
                    stats.bytes_written += r.len();
                    epoch_writes += 1;
                }
                Event::Flush(r) => {
                    stats.flushes += 1;
                    stats.bytes_flushed += r.len();
                }
                Event::Fence => {
                    stats.fences += 1;
                    stats.max_writes_per_epoch = stats.max_writes_per_epoch.max(epoch_writes);
                    epoch_writes = 0;
                }
                Event::OFence => {
                    stats.ofences += 1;
                    stats.max_writes_per_epoch = stats.max_writes_per_epoch.max(epoch_writes);
                    epoch_writes = 0;
                }
                Event::DFence => {
                    stats.dfences += 1;
                    stats.max_writes_per_epoch = stats.max_writes_per_epoch.max(epoch_writes);
                    epoch_writes = 0;
                }
                Event::TxBegin => stats.transactions += 1,
                Event::TxAdd(_) => stats.tx_adds += 1,
                Event::TxCheckerStart => stats.tx_checker_scopes += 1,
                Event::IsPersist(_) | Event::IsOrderedBefore(_, _) => {
                    stats.low_level_checkers += 1;
                }
                Event::TxEnd | Event::TxCheckerEnd => {}
                e if e.kind() == EventKind::Scope => stats.scope_events += 1,
                _ => {}
            }
        }
        stats.max_writes_per_epoch = stats.max_writes_per_epoch.max(epoch_writes);
        stats
    }

    /// Number of fence-delimited epochs (any fence flavour), counting the
    /// trailing open epoch.
    #[must_use]
    pub fn epochs(&self) -> u64 {
        self.fences + self.ofences + self.dfences + 1
    }

    /// Mean writes per epoch.
    #[must_use]
    pub fn avg_writes_per_epoch(&self) -> f64 {
        self.writes as f64 / self.epochs() as f64
    }

    /// Merges another trace's statistics into this one (per-run totals).
    pub fn merge(&mut self, other: &TraceStats) {
        self.writes += other.writes;
        self.bytes_written += other.bytes_written;
        self.flushes += other.flushes;
        self.bytes_flushed += other.bytes_flushed;
        self.fences += other.fences;
        self.ofences += other.ofences;
        self.dfences += other.dfences;
        self.transactions += other.transactions;
        self.tx_adds += other.tx_adds;
        self.low_level_checkers += other.low_level_checkers;
        self.tx_checker_scopes += other.tx_checker_scopes;
        self.scope_events += other.scope_events;
        self.entries += other.entries;
        self.max_writes_per_epoch = self.max_writes_per_epoch.max(other.max_writes_per_epoch);
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} entries: {} writes ({} B), {} clwb ({} B), {} sfence, {} ofence, {} dfence, \
             {} TX, {} TX_ADD, {} checkers, {} checker scopes; max {} writes/epoch",
            self.entries,
            self.writes,
            self.bytes_written,
            self.flushes,
            self.bytes_flushed,
            self.fences,
            self.ofences,
            self.dfences,
            self.transactions,
            self.tx_adds,
            self.low_level_checkers,
            self.tx_checker_scopes,
            self.max_writes_per_epoch,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmtest_interval::ByteRange;

    fn r(s: u64, e: u64) -> ByteRange {
        ByteRange::new(s, e)
    }

    #[test]
    fn counts_every_category() {
        let mut t = Trace::new(0);
        t.push(Event::TxCheckerStart.here());
        t.push(Event::TxBegin.here());
        t.push(Event::TxAdd(r(0, 8)).here());
        t.push(Event::Write(r(0, 8)).here());
        t.push(Event::Write(r(8, 24)).here());
        t.push(Event::Flush(r(0, 24)).here());
        t.push(Event::Fence.here());
        t.push(Event::TxEnd.here());
        t.push(Event::TxCheckerEnd.here());
        t.push(Event::IsPersist(r(0, 8)).here());
        t.push(Event::Exclude(r(64, 96)).here());
        let s = TraceStats::from_trace(&t);
        assert_eq!(s.entries, 11);
        assert_eq!(s.writes, 2);
        assert_eq!(s.bytes_written, 24);
        assert_eq!(s.flushes, 1);
        assert_eq!(s.bytes_flushed, 24);
        assert_eq!(s.fences, 1);
        assert_eq!(s.transactions, 1);
        assert_eq!(s.tx_adds, 1);
        assert_eq!(s.low_level_checkers, 1);
        assert_eq!(s.tx_checker_scopes, 1);
        assert_eq!(s.scope_events, 1);
        assert_eq!(s.epochs(), 2);
        assert_eq!(s.max_writes_per_epoch, 2);
    }

    #[test]
    fn epoch_width_tracks_the_maximum() {
        let mut t = Trace::new(0);
        for i in 0..3u64 {
            t.push(Event::Write(r(i * 8, i * 8 + 8)).here());
        }
        t.push(Event::Fence.here());
        t.push(Event::Write(r(64, 72)).here());
        t.push(Event::OFence.here());
        let s = TraceStats::from_trace(&t);
        assert_eq!(s.max_writes_per_epoch, 3);
        assert_eq!(s.epochs(), 3);
        assert!((s.avg_writes_per_epoch() - 4.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn hops_fences_count_separately_and_delimit_epochs() {
        // A HOPS trace (§5.2): ofence orders without forcing durability,
        // dfence forces durability — both close an epoch, neither counts as
        // an x86 sfence.
        let mut t = Trace::new(0);
        t.push(Event::Write(r(0, 8)).here());
        t.push(Event::Write(r(8, 16)).here());
        t.push(Event::OFence.here());
        t.push(Event::Write(r(16, 24)).here());
        t.push(Event::OFence.here());
        t.push(Event::Write(r(24, 32)).here());
        t.push(Event::DFence.here());
        t.push(Event::IsOrderedBefore(r(0, 8), r(24, 32)).here());
        let s = TraceStats::from_trace(&t);
        assert_eq!(s.fences, 0, "no sfence in a pure HOPS trace");
        assert_eq!(s.ofences, 2);
        assert_eq!(s.dfences, 1);
        assert_eq!(s.epochs(), 4, "3 fences + trailing open epoch");
        assert_eq!(s.max_writes_per_epoch, 2);
        assert!((s.avg_writes_per_epoch() - 1.0).abs() < 1e-9);
        assert_eq!(s.low_level_checkers, 1);
    }

    #[test]
    fn dfence_only_trace_has_no_trailing_writes() {
        let mut t = Trace::new(0);
        t.push(Event::Write(r(0, 64)).here());
        t.push(Event::DFence.here());
        let s = TraceStats::from_trace(&t);
        assert_eq!(s.dfences, 1);
        assert_eq!(s.epochs(), 2, "trailing epoch counts even when empty");
        assert_eq!(s.max_writes_per_epoch, 1);
    }

    #[test]
    fn mixed_model_trace_aggregates_every_fence_flavour() {
        // Traces replayed against composed/foreign models can interleave x86
        // and HOPS primitives; the stats must keep the flavours separate
        // while the epoch count sees them uniformly.
        let mut t = Trace::new(0);
        t.push(Event::Write(r(0, 8)).here());
        t.push(Event::Flush(r(0, 8)).here());
        t.push(Event::Fence.here());
        t.push(Event::Write(r(8, 16)).here());
        t.push(Event::OFence.here());
        t.push(Event::Write(r(16, 24)).here());
        t.push(Event::Write(r(24, 32)).here());
        t.push(Event::Write(r(32, 40)).here());
        t.push(Event::DFence.here());
        let s = TraceStats::from_trace(&t);
        assert_eq!((s.fences, s.ofences, s.dfences), (1, 1, 1));
        assert_eq!(s.epochs(), 4);
        assert_eq!(s.max_writes_per_epoch, 3, "widest epoch is the dfence-closed one");
        assert_eq!(s.writes, 5);
        assert_eq!(s.bytes_written, 40);
    }

    #[test]
    fn merging_x86_and_hops_traces_keeps_flavours_apart() {
        let mut x86 = Trace::new(0);
        x86.push(Event::Write(r(0, 8)).here());
        x86.push(Event::Flush(r(0, 8)).here());
        x86.push(Event::Fence.here());
        let mut hops = Trace::new(1);
        hops.push(Event::Write(r(0, 8)).here());
        hops.push(Event::OFence.here());
        hops.push(Event::Write(r(8, 16)).here());
        hops.push(Event::DFence.here());
        let mut total = TraceStats::from_trace(&x86);
        total.merge(&TraceStats::from_trace(&hops));
        assert_eq!((total.fences, total.ofences, total.dfences), (1, 1, 1));
        assert_eq!(total.entries, 7);
        // Per-run epoch arithmetic still holds on the merged totals: each
        // trace contributes its fences; the +1 trailing epoch is per-view.
        assert_eq!(total.epochs(), 4);
        let display = total.to_string();
        assert!(display.contains("1 ofence"), "{display}");
        assert!(display.contains("1 dfence"), "{display}");
    }

    #[test]
    fn merge_accumulates() {
        let mut t1 = Trace::new(0);
        t1.push(Event::Write(r(0, 8)).here());
        let mut t2 = Trace::new(1);
        t2.push(Event::Write(r(0, 16)).here());
        t2.push(Event::Write(r(16, 32)).here());
        let mut total = TraceStats::from_trace(&t1);
        total.merge(&TraceStats::from_trace(&t2));
        assert_eq!(total.writes, 3);
        assert_eq!(total.bytes_written, 40);
        assert_eq!(total.max_writes_per_epoch, 2);
    }

    #[test]
    fn display_mentions_key_counts() {
        let mut t = Trace::new(0);
        t.push(Event::Write(r(0, 8)).here());
        let s = TraceStats::from_trace(&t).to_string();
        assert!(s.contains("1 writes (8 B)"), "{s}");
    }
}
