//! Per-worker flight recorder: a bounded ring of recently replayed entries
//! annotated with the interval state the persistency model assigned.
//!
//! The recorder is an observability aid, not part of checking: workers push
//! a [`StepRecord`] after replaying each entry, and on an ERROR (or an
//! explicit capture request) the engine snapshots the window into a
//! diagnosis bundle. The ring is bounded so a long trace cannot grow it
//! without limit; old steps are dropped oldest-first.
//!
//! Epochs and intervals are recorded as plain `u64`s here because the trace
//! crate sits below the core crate that owns the epoch/interval types.

use std::collections::VecDeque;

use parking_lot::Mutex;
use pmtest_interval::ByteRange;

use crate::{Entry, SourceLoc};

/// One per-range persist interval as the model saw it after a step.
///
/// `end == None` means the interval is still open (flushed but not yet
/// fenced, or not flushed at all): the range is not guaranteed persistent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntervalNote {
    /// The byte range this interval covers.
    pub range: ByteRange,
    /// Epoch in which the persist interval began (the write's epoch).
    pub begin: u64,
    /// Epoch in which the interval closed, if it has closed.
    pub end: Option<u64>,
    /// Source location of the write that opened the interval, if known.
    pub write_loc: Option<SourceLoc>,
}

/// One replayed entry together with the interval state observed after it.
#[derive(Debug, Clone)]
pub struct StepRecord {
    /// Id of the trace this entry belonged to.
    pub trace_id: u64,
    /// Index of the entry within its trace.
    pub index: usize,
    /// The entry itself (events are `Copy`).
    pub entry: Entry,
    /// The model's epoch counter after replaying this entry.
    pub epoch: u64,
    /// Persist intervals touching the entry's own ranges after this step.
    pub intervals: Vec<IntervalNote>,
}

/// A bounded ring buffer of [`StepRecord`]s.
///
/// One recorder per engine worker; the ring persists across traces so a
/// capture sees the most recent window regardless of trace boundaries.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    buf: Mutex<VecDeque<StepRecord>>,
}

impl FlightRecorder {
    /// Default window size: enough for every trace the paper's examples
    /// produce while keeping the per-worker footprint small.
    pub const DEFAULT_CAPACITY: usize = 64;

    /// Create a recorder retaining at most `capacity` steps (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self { capacity, buf: Mutex::new(VecDeque::with_capacity(capacity)) }
    }

    /// Maximum number of steps retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Append a step, evicting the oldest if the ring is full.
    pub fn record(&self, step: StepRecord) {
        let mut buf = self.buf.lock();
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        buf.push_back(step);
    }

    /// Snapshot the current window, oldest step first.
    pub fn window(&self) -> Vec<StepRecord> {
        self.buf.lock().iter().cloned().collect()
    }

    /// Number of steps currently retained.
    pub fn len(&self) -> usize {
        self.buf.lock().len()
    }

    /// True when no steps have been recorded (or all were cleared).
    pub fn is_empty(&self) -> bool {
        self.buf.lock().is_empty()
    }

    /// Drop every retained step.
    pub fn clear(&self) {
        self.buf.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Event;

    fn step(trace_id: u64, index: usize) -> StepRecord {
        StepRecord {
            trace_id,
            index,
            entry: Event::Fence.here(),
            epoch: index as u64,
            intervals: Vec::new(),
        }
    }

    #[test]
    fn ring_evicts_oldest_first() {
        let rec = FlightRecorder::new(3);
        for i in 0..5 {
            rec.record(step(1, i));
        }
        let window = rec.window();
        assert_eq!(window.len(), 3);
        assert_eq!(window.iter().map(|s| s.index).collect::<Vec<_>>(), vec![2, 3, 4]);
    }

    #[test]
    fn window_spans_traces_until_cleared() {
        let rec = FlightRecorder::new(8);
        rec.record(step(1, 0));
        rec.record(step(2, 0));
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.window()[0].trace_id, 1);
        rec.clear();
        assert!(rec.is_empty());
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let rec = FlightRecorder::new(0);
        rec.record(step(1, 0));
        rec.record(step(1, 1));
        assert_eq!(rec.capacity(), 1);
        let window = rec.window();
        assert_eq!(window.len(), 1);
        assert_eq!(window[0].index, 1);
    }
}
