use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::{Entry, Trace};

/// Where instrumented code sends its trace events.
///
/// Every instrumented substrate in this repository (the PM pool, the
/// transactional libraries, the file system) is generic over *where* its
/// events go, mirroring Fig. 2 of the paper where the same CCS can run under
/// different testing back ends:
///
/// * PMTest's recorder (in `pmtest-core`) buffers entries per thread and
///   ships them to the asynchronous checking engine;
/// * the pmemcheck-like baseline (in `pmtest-baseline`) checks each event
///   synchronously on the application thread;
/// * [`NullSink`] discards everything — the "no testing tool" native runs
///   used as the normalization baseline in Figs. 10–12.
///
/// Implementations must be thread-safe: multithreaded workloads emit events
/// concurrently (§4.5).
pub trait Sink: Send + Sync {
    /// Records one trace entry.
    fn record(&self, entry: Entry);

    /// Whether the sink currently wants events at all.
    ///
    /// Instrumentation may (but need not) skip event construction when this
    /// returns `false`; `record` must still be safe to call.
    fn is_enabled(&self) -> bool {
        true
    }
}

/// A reference-counted, dynamically dispatched sink handle.
///
/// Instrumented pools store one of these; cloning is cheap.
pub type SharedSink = Arc<dyn Sink>;

impl<S: Sink + ?Sized> Sink for Arc<S> {
    fn record(&self, entry: Entry) {
        (**self).record(entry);
    }

    fn is_enabled(&self) -> bool {
        (**self).is_enabled()
    }
}

/// A sink that discards all events.
///
/// Used for the uninstrumented "native" runs that Figs. 10–12 normalize
/// against.
///
/// # Examples
///
/// ```
/// use pmtest_trace::{Event, NullSink, Sink};
///
/// let sink = NullSink;
/// assert!(!sink.is_enabled());
/// sink.record(Event::Fence.here()); // no-op
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NullSink;

impl Sink for NullSink {
    fn record(&self, _entry: Entry) {}

    fn is_enabled(&self) -> bool {
        false
    }
}

/// A sink that appends every entry to an in-memory buffer.
///
/// Useful in tests and for offline tools (the Yat-like exhaustive baseline
/// consumes a fully recorded trace).
pub struct MemorySink {
    entries: Mutex<Vec<Entry>>,
}

impl MemorySink {
    /// Creates an empty sink.
    #[must_use]
    pub fn new() -> Self {
        Self { entries: Mutex::new(Vec::new()) }
    }

    /// Number of recorded entries so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    /// Drains the recorded entries into a [`Trace`] with the given id.
    #[must_use]
    pub fn take_trace(&self, id: u64) -> Trace {
        Trace::from_entries(id, std::mem::take(&mut *self.entries.lock()))
    }

    /// Returns a copy of the recorded entries without draining them.
    #[must_use]
    pub fn snapshot(&self) -> Vec<Entry> {
        self.entries.lock().clone()
    }
}

impl Default for MemorySink {
    fn default() -> Self {
        Self::new()
    }
}

impl Sink for MemorySink {
    fn record(&self, entry: Entry) {
        self.entries.lock().push(entry);
    }
}

impl fmt::Debug for MemorySink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemorySink").field("len", &self.len()).finish()
    }
}

/// A sink that only counts events, for overhead measurements and tests.
#[derive(Debug, Default)]
pub struct CountingSink {
    count: AtomicU64,
}

impl CountingSink {
    /// Creates a sink with a zero count.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of events recorded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }
}

impl Sink for CountingSink {
    fn record(&self, _entry: Entry) {
        self.count.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Event;
    use pmtest_interval::ByteRange;

    #[test]
    fn null_sink_discards() {
        let sink = NullSink;
        sink.record(Event::Fence.here());
        assert!(!sink.is_enabled());
    }

    #[test]
    fn memory_sink_records_in_order() {
        let sink = MemorySink::new();
        assert!(sink.is_empty());
        sink.record(Event::Write(ByteRange::new(0, 8)).here());
        sink.record(Event::Fence.here());
        assert_eq!(sink.len(), 2);
        let snap = sink.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[1].event, Event::Fence);
        let trace = sink.take_trace(3);
        assert_eq!(trace.id(), 3);
        assert_eq!(trace.len(), 2);
        assert!(sink.is_empty(), "take_trace drains");
    }

    #[test]
    fn counting_sink_counts() {
        let sink = CountingSink::new();
        for _ in 0..5 {
            sink.record(Event::Fence.here());
        }
        assert_eq!(sink.count(), 5);
    }

    #[test]
    fn arc_dyn_sink_dispatches() {
        let sink: SharedSink = Arc::new(CountingSink::new());
        sink.record(Event::Fence.here());
        assert!(sink.is_enabled());
    }

    #[test]
    fn sinks_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NullSink>();
        assert_send_sync::<MemorySink>();
        assert_send_sync::<CountingSink>();
        assert_send_sync::<SharedSink>();
    }
}
