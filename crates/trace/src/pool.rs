//! Recycling pool for trace entry buffers.
//!
//! Decoupled checking (Fig. 8) moves a `Vec<Entry>` from the program thread
//! to a checking worker on every `PMTest_SEND_TRACE`. Without recycling, each
//! trace costs one heap allocation on the hot path plus one deallocation on a
//! worker — and under the short traces of the paper's microbenchmarks
//! (Fig. 10a) the allocator becomes a measurable fraction of the runtime
//! overhead. The [`BufferPool`] closes that loop: workers return emptied
//! buffers here, and sessions draw replacements instead of allocating.
//!
//! The free list is sharded to keep producers (many program threads) and
//! consumers (worker threads) from serialising on one lock. Each shard is a
//! small mutex-guarded stack; a release/acquire pair usually touches only one
//! shard. A strictly lock-free list would need `unsafe` or an external queue,
//! and this crate is `#![forbid(unsafe_code)]` — the sharded mutexes measure
//! within noise of that design for the pool's access pattern (sub-microsecond
//! critical sections, shard count ≥ typical thread count).
//!
//! Buffers are always [cleared](Vec::clear) on release, *before* they become
//! visible to any other trace. That is the pool's core invariant: a recycled
//! buffer can never leak entries from one trace into another.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use parking_lot::Mutex;

use crate::event::Entry;

/// Number of independent free-list shards. A power of two so the rotating
/// counter maps onto shards with a mask.
const SHARDS: usize = 8;

/// Default cap on buffers retained per shard (total = `SHARDS` × this).
const DEFAULT_BUFFERS_PER_SHARD: usize = 64;

/// Default cap on the capacity of a retained buffer. A trace that ballooned
/// to thousands of entries should not pin that memory forever; oversized
/// buffers are dropped instead of pooled.
const DEFAULT_MAX_BUFFER_CAPACITY: usize = 4096;

/// A sharded free list of `Vec<Entry>` buffers shared between sessions
/// (which acquire) and engine workers (which release).
///
/// # Examples
///
/// ```
/// use pmtest_trace::{BufferPool, Entry, Event};
///
/// let pool = BufferPool::new();
/// let mut buf = pool.acquire(); // fresh allocation: pool is empty
/// buf.push(Event::Fence.here());
/// pool.release(buf);
/// let buf = pool.acquire(); // recycled — and guaranteed empty
/// assert!(buf.is_empty());
/// assert_eq!(pool.stats().recycled, 1);
/// ```
pub struct BufferPool {
    shards: Vec<Mutex<Vec<Vec<Entry>>>>,
    /// Rotates acquire/release across shards so a single hot thread does not
    /// hammer shard 0.
    cursor: AtomicUsize,
    buffers_per_shard: usize,
    max_buffer_capacity: usize,
    recycled: AtomicU64,
    fresh: AtomicU64,
    released: AtomicU64,
    dropped: AtomicU64,
}

/// Lifetime counters of a [`BufferPool`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Acquires served from the free list.
    pub recycled: u64,
    /// Acquires that fell back to a fresh allocation.
    pub fresh: u64,
    /// Buffers returned to the pool (whether retained or dropped).
    pub released: u64,
    /// Released buffers dropped because a shard was full or the buffer
    /// exceeded the capacity cap.
    pub dropped: u64,
}

impl PoolStats {
    /// Fraction of acquires served by recycling, in `[0, 1]`.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.recycled + self.fresh;
        if total == 0 {
            0.0
        } else {
            self.recycled as f64 / total as f64
        }
    }
}

impl BufferPool {
    /// A pool with the default retention caps.
    #[must_use]
    pub fn new() -> Self {
        Self::with_limits(SHARDS * DEFAULT_BUFFERS_PER_SHARD, DEFAULT_MAX_BUFFER_CAPACITY)
    }

    /// A pool retaining at most `max_buffers` buffers in total, each of
    /// capacity at most `max_buffer_capacity` entries.
    #[must_use]
    pub fn with_limits(max_buffers: usize, max_buffer_capacity: usize) -> Self {
        let buffers_per_shard = max_buffers.div_ceil(SHARDS).max(1);
        Self {
            shards: (0..SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
            cursor: AtomicUsize::new(0),
            buffers_per_shard,
            max_buffer_capacity,
            recycled: AtomicU64::new(0),
            fresh: AtomicU64::new(0),
            released: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Takes a buffer from the pool, or allocates a fresh one if every shard
    /// is empty. The returned buffer is always empty.
    #[must_use]
    pub fn acquire(&self) -> Vec<Entry> {
        let start = self.cursor.fetch_add(1, Ordering::Relaxed);
        for offset in 0..SHARDS {
            let shard = &self.shards[(start + offset) & (SHARDS - 1)];
            // Skip contended shards: a miss here only costs an extra probe.
            let Some(mut guard) = shard.try_lock() else { continue };
            if let Some(buf) = guard.pop() {
                drop(guard);
                self.recycled.fetch_add(1, Ordering::Relaxed);
                debug_assert!(buf.is_empty(), "pooled buffer must be empty");
                return buf;
            }
        }
        self.fresh.fetch_add(1, Ordering::Relaxed);
        Vec::new()
    }

    /// Returns a buffer to the pool. The buffer is cleared here — before it
    /// becomes visible to any future [`acquire`](Self::acquire) — so entries
    /// can never leak across traces. Oversized buffers and overflow beyond
    /// the retention cap are dropped.
    pub fn release(&self, mut buf: Vec<Entry>) {
        self.released.fetch_add(1, Ordering::Relaxed);
        buf.clear();
        if buf.capacity() == 0 || buf.capacity() > self.max_buffer_capacity {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let start = self.cursor.fetch_add(1, Ordering::Relaxed);
        for offset in 0..SHARDS {
            let shard = &self.shards[(start + offset) & (SHARDS - 1)];
            let Some(mut guard) = shard.try_lock() else { continue };
            if guard.len() < self.buffers_per_shard {
                guard.push(buf);
                return;
            }
        }
        self.dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Buffers currently available for recycling.
    #[must_use]
    pub fn available(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Lifetime counters.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            recycled: self.recycled.load(Ordering::Relaxed),
            fresh: self.fresh.load(Ordering::Relaxed),
            released: self.released.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
        }
    }
}

impl Default for BufferPool {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("available", &self.available())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    fn dirty_buffer(n: usize) -> Vec<Entry> {
        let mut buf = Vec::with_capacity(n.max(1));
        for _ in 0..n {
            buf.push(Event::Fence.here());
        }
        buf
    }

    #[test]
    fn acquire_from_empty_pool_allocates() {
        let pool = BufferPool::new();
        let buf = pool.acquire();
        assert!(buf.is_empty());
        assert_eq!(pool.stats().fresh, 1);
        assert_eq!(pool.stats().recycled, 0);
    }

    #[test]
    fn released_buffers_come_back_empty() {
        let pool = BufferPool::new();
        pool.release(dirty_buffer(5));
        let buf = pool.acquire();
        assert!(buf.is_empty(), "recycled buffer leaked entries");
        assert!(buf.capacity() >= 5, "capacity should be retained");
        assert_eq!(pool.stats().recycled, 1);
    }

    #[test]
    fn oversized_buffers_are_dropped() {
        let pool = BufferPool::with_limits(16, 8);
        pool.release(dirty_buffer(9)); // capacity > 8 → dropped
        assert_eq!(pool.available(), 0);
        assert_eq!(pool.stats().dropped, 1);
    }

    #[test]
    fn zero_capacity_buffers_are_not_pooled() {
        let pool = BufferPool::new();
        pool.release(Vec::new());
        assert_eq!(pool.available(), 0);
    }

    #[test]
    fn retention_cap_is_enforced() {
        let pool = BufferPool::with_limits(4, 1024);
        for _ in 0..100 {
            pool.release(dirty_buffer(2));
        }
        // div_ceil rounds the per-shard cap up to 1, so at most SHARDS stay.
        assert!(pool.available() <= SHARDS);
        assert!(pool.stats().dropped >= 100 - SHARDS as u64);
    }

    #[test]
    fn hit_rate_reflects_recycling() {
        let pool = BufferPool::new();
        let a = pool.acquire(); // fresh
        pool.release(dirty_buffer(3));
        let _b = pool.acquire(); // recycled
        pool.release(a);
        let stats = pool.stats();
        assert_eq!(stats.fresh, 1);
        assert_eq!(stats.recycled, 1);
        assert!((stats.hit_rate() - 0.5).abs() < f64::EPSILON);
    }

    #[test]
    fn concurrent_producers_and_consumers() {
        let pool = std::sync::Arc::new(BufferPool::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let pool = pool.clone();
                s.spawn(move || {
                    for _ in 0..1_000 {
                        let mut buf = pool.acquire();
                        assert!(buf.is_empty());
                        buf.push(Event::Fence.here());
                        pool.release(buf);
                    }
                });
            }
        });
        let stats = pool.stats();
        assert_eq!(stats.recycled + stats.fresh, 4_000);
        assert_eq!(stats.released, 4_000);
    }
}
