//! Recycling pools for trace buffers and batch arenas.
//!
//! Decoupled checking (Fig. 8) moves trace storage from the program thread
//! to a checking worker on every `PMTest_SEND_TRACE`. Without recycling,
//! each trace costs one heap allocation on the hot path plus one
//! deallocation on a worker — and under the short traces of the paper's
//! microbenchmarks (Fig. 10a) the allocator becomes a measurable fraction
//! of the runtime overhead. The pools close that loop: workers return
//! emptied storage here, and sessions draw replacements instead of
//! allocating. Two instantiations exist:
//!
//! * [`BufferPool`] — `Vec<PackedEntry>` record buffers, backing
//!   single-`Trace` submissions;
//! * [`ArenaPool`] — [`TraceArena`] batch arenas, backing the session's
//!   record-in-place batching.
//!
//! The free list is sharded to keep producers (many program threads) and
//! consumers (worker threads) from serialising on one lock. Each shard is a
//! small mutex-guarded stack; a release/acquire pair usually touches only one
//! shard. A strictly lock-free list would need `unsafe` or an external queue,
//! and this crate is `#![forbid(unsafe_code)]` — the sharded mutexes measure
//! within noise of that design for the pool's access pattern (sub-microsecond
//! critical sections, shard count ≥ typical thread count).
//!
//! Items are always recycled (cleared) on release, *before* they become
//! visible to any other trace. That is the pool's core invariant: recycled
//! storage can never leak records from one trace into another.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use parking_lot::Mutex;

use crate::arena::TraceArena;
use crate::packed::PackedEntry;

/// Number of independent free-list shards. A power of two so the rotating
/// counter maps onto shards with a mask.
const SHARDS: usize = 8;

/// Default cap on items retained per shard (total = `SHARDS` × this).
const DEFAULT_ITEMS_PER_SHARD: usize = 64;

/// Default cap on the retained capacity of a pooled item, in records. A
/// trace that ballooned to thousands of records should not pin that memory
/// forever; oversized items are dropped instead of pooled.
const DEFAULT_MAX_ITEM_CAPACITY: usize = 4096;

/// Storage the recycling pool knows how to clear and size-check.
pub trait PoolItem: Default + Send {
    /// Empties the item while keeping its backing allocation.
    fn recycle(&mut self);
    /// Retained backing capacity, in records, for the retention cap.
    fn retained_capacity(&self) -> usize;
    /// Whether the item is empty (the pool's cleared-on-release invariant).
    fn is_clear(&self) -> bool;
}

impl PoolItem for Vec<PackedEntry> {
    fn recycle(&mut self) {
        self.clear();
    }

    fn retained_capacity(&self) -> usize {
        self.capacity()
    }

    fn is_clear(&self) -> bool {
        self.is_empty()
    }
}

impl PoolItem for TraceArena {
    fn recycle(&mut self) {
        self.clear();
    }

    fn retained_capacity(&self) -> usize {
        self.word_capacity()
    }

    fn is_clear(&self) -> bool {
        self.is_empty()
    }
}

/// A sharded free list of recyclable trace storage shared between sessions
/// (which acquire) and engine workers (which release).
///
/// # Examples
///
/// ```
/// use pmtest_trace::BufferPool;
///
/// let pool = BufferPool::new();
/// let mut buf = pool.acquire(); // fresh allocation: pool is empty
/// buf.reserve(16);
/// pool.release(buf);
/// let buf = pool.acquire(); // recycled — and guaranteed empty
/// assert!(buf.is_empty());
/// assert_eq!(pool.stats().recycled, 1);
/// ```
pub struct RecyclePool<T> {
    shards: Vec<Mutex<Vec<T>>>,
    /// Rotates acquire/release across shards so a single hot thread does not
    /// hammer shard 0.
    cursor: AtomicUsize,
    items_per_shard: usize,
    max_item_capacity: usize,
    recycled: AtomicU64,
    fresh: AtomicU64,
    released: AtomicU64,
    dropped: AtomicU64,
}

/// Packed-record buffers for single-`Trace` submissions.
pub type BufferPool = RecyclePool<Vec<PackedEntry>>;

/// Batch arenas for the session's record-in-place batching.
pub type ArenaPool = RecyclePool<TraceArena>;

/// Lifetime counters of a [`RecyclePool`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Acquires served from the free list.
    pub recycled: u64,
    /// Acquires that fell back to a fresh allocation.
    pub fresh: u64,
    /// Items returned to the pool (whether retained or dropped).
    pub released: u64,
    /// Released items dropped because a shard was full or the item exceeded
    /// the capacity cap.
    pub dropped: u64,
}

impl PoolStats {
    /// Fraction of acquires served by recycling, in `[0, 1]`.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.recycled + self.fresh;
        if total == 0 {
            0.0
        } else {
            self.recycled as f64 / total as f64
        }
    }
}

impl<T: PoolItem> RecyclePool<T> {
    /// A pool with the default retention caps.
    #[must_use]
    pub fn new() -> Self {
        Self::with_limits(SHARDS * DEFAULT_ITEMS_PER_SHARD, DEFAULT_MAX_ITEM_CAPACITY)
    }

    /// A pool retaining at most `max_items` items in total, each of
    /// capacity at most `max_item_capacity` records.
    #[must_use]
    pub fn with_limits(max_items: usize, max_item_capacity: usize) -> Self {
        let items_per_shard = max_items.div_ceil(SHARDS).max(1);
        Self {
            shards: (0..SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
            cursor: AtomicUsize::new(0),
            items_per_shard,
            max_item_capacity,
            recycled: AtomicU64::new(0),
            fresh: AtomicU64::new(0),
            released: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Takes an item from the pool, or allocates a fresh one if every shard
    /// is empty. The returned item is always empty.
    #[must_use]
    pub fn acquire(&self) -> T {
        let start = self.cursor.fetch_add(1, Ordering::Relaxed);
        for offset in 0..SHARDS {
            let shard = &self.shards[(start + offset) & (SHARDS - 1)];
            // Skip contended shards: a miss here only costs an extra probe.
            let Some(mut guard) = shard.try_lock() else { continue };
            if let Some(item) = guard.pop() {
                drop(guard);
                self.recycled.fetch_add(1, Ordering::Relaxed);
                debug_assert!(item.is_clear(), "pooled item must be empty");
                return item;
            }
        }
        self.fresh.fetch_add(1, Ordering::Relaxed);
        T::default()
    }

    /// Returns an item to the pool. The item is cleared here — before it
    /// becomes visible to any future [`acquire`](Self::acquire) — so records
    /// can never leak across traces. Oversized items and overflow beyond
    /// the retention cap are dropped.
    pub fn release(&self, mut item: T) {
        self.released.fetch_add(1, Ordering::Relaxed);
        item.recycle();
        let cap = item.retained_capacity();
        if cap == 0 || cap > self.max_item_capacity {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let start = self.cursor.fetch_add(1, Ordering::Relaxed);
        for offset in 0..SHARDS {
            let shard = &self.shards[(start + offset) & (SHARDS - 1)];
            let Some(mut guard) = shard.try_lock() else { continue };
            if guard.len() < self.items_per_shard {
                guard.push(item);
                return;
            }
        }
        self.dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Items currently available for recycling.
    #[must_use]
    pub fn available(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Lifetime counters.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            recycled: self.recycled.load(Ordering::Relaxed),
            fresh: self.fresh.load(Ordering::Relaxed),
            released: self.released.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
        }
    }
}

impl<T: PoolItem> Default for RecyclePool<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: PoolItem> std::fmt::Debug for RecyclePool<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecyclePool")
            .field("available", &self.available())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::packed::encode_into;

    fn dirty_buffer(n: usize) -> Vec<PackedEntry> {
        let mut buf = Vec::with_capacity(n.max(1));
        for _ in 0..n {
            encode_into(&mut buf, Event::Fence.here());
        }
        buf
    }

    #[test]
    fn acquire_from_empty_pool_allocates() {
        let pool = BufferPool::new();
        let buf = pool.acquire();
        assert!(buf.is_empty());
        assert_eq!(pool.stats().fresh, 1);
        assert_eq!(pool.stats().recycled, 0);
    }

    #[test]
    fn released_buffers_come_back_empty() {
        let pool = BufferPool::new();
        pool.release(dirty_buffer(5));
        let buf = pool.acquire();
        assert!(buf.is_empty(), "recycled buffer leaked records");
        assert!(buf.capacity() >= 5, "capacity should be retained");
        assert_eq!(pool.stats().recycled, 1);
    }

    #[test]
    fn oversized_buffers_are_dropped() {
        let pool = BufferPool::with_limits(16, 8);
        pool.release(dirty_buffer(9)); // capacity > 8 → dropped
        assert_eq!(pool.available(), 0);
        assert_eq!(pool.stats().dropped, 1);
    }

    #[test]
    fn zero_capacity_buffers_are_not_pooled() {
        let pool = BufferPool::new();
        pool.release(Vec::new());
        assert_eq!(pool.available(), 0);
    }

    #[test]
    fn retention_cap_is_enforced() {
        let pool = BufferPool::with_limits(4, 1024);
        for _ in 0..100 {
            pool.release(dirty_buffer(2));
        }
        // div_ceil rounds the per-shard cap up to 1, so at most SHARDS stay.
        assert!(pool.available() <= SHARDS);
        assert!(pool.stats().dropped >= 100 - SHARDS as u64);
    }

    #[test]
    fn hit_rate_reflects_recycling() {
        let pool = BufferPool::new();
        let a = pool.acquire(); // fresh
        pool.release(dirty_buffer(3));
        let _b = pool.acquire(); // recycled
        pool.release(a);
        let stats = pool.stats();
        assert_eq!(stats.fresh, 1);
        assert_eq!(stats.recycled, 1);
        assert!((stats.hit_rate() - 0.5).abs() < f64::EPSILON);
    }

    #[test]
    fn arena_pool_recycles_cleared_arenas() {
        let pool = ArenaPool::new();
        let mut arena = pool.acquire();
        arena.push(Event::Fence.here());
        arena.seal(1);
        pool.release(arena);
        let arena = pool.acquire();
        assert!(arena.is_empty(), "recycled arena leaked traces");
        assert_eq!(arena.sealed(), 0);
        assert_eq!(pool.stats().recycled, 1);
    }

    #[test]
    fn concurrent_producers_and_consumers() {
        let pool = std::sync::Arc::new(BufferPool::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let pool = pool.clone();
                s.spawn(move || {
                    for _ in 0..1_000 {
                        let mut buf = pool.acquire();
                        assert!(buf.is_empty());
                        encode_into(&mut buf, Event::Fence.here());
                        pool.release(buf);
                    }
                });
            }
        });
        let stats = pool.stats();
        assert_eq!(stats.recycled + stats.fresh, 4_000);
        assert_eq!(stats.released, 4_000);
    }
}
