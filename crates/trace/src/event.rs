use std::fmt;
use std::panic::Location;

use pmtest_interval::ByteRange;

/// The source location (file and line) that issued a traced operation.
///
/// The paper's engine reports `WARN/FAIL @<file>:<line>` (Fig. 6); this type
/// captures that attribution via [`std::panic::Location`], so instrumented
/// library methods annotated with `#[track_caller]` attribute events to the
/// *application* call site rather than to library internals.
///
/// # Examples
///
/// ```
/// use pmtest_trace::SourceLoc;
///
/// let loc = SourceLoc::here();
/// assert!(loc.file().ends_with(".rs"));
/// assert!(loc.line() > 0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct SourceLoc {
    file: &'static str,
    line: u32,
}

impl SourceLoc {
    /// Captures the caller's location.
    #[must_use]
    #[track_caller]
    pub fn here() -> Self {
        let loc = Location::caller();
        Self { file: loc.file(), line: loc.line() }
    }

    /// Creates a location from explicit parts (useful in tests and when
    /// replaying recorded traces).
    #[must_use]
    pub fn new(file: &'static str, line: u32) -> Self {
        Self { file, line }
    }

    /// The source file path.
    #[must_use]
    pub fn file(&self) -> &'static str {
        self.file
    }

    /// The 1-based line number.
    #[must_use]
    pub fn line(&self) -> u32 {
        self.line
    }

    /// Equality tuned for hot-path cache scans: `#[track_caller]` hands out
    /// the same `&'static str` per call site, so the file comparison is
    /// almost always settled by pointer identity instead of a `memcmp` of
    /// the path. Falls back to content equality for hand-built locations.
    #[must_use]
    #[inline]
    pub fn same_site(&self, other: &Self) -> bool {
        self.line == other.line && (std::ptr::eq(self.file, other.file) || self.file == other.file)
    }
}

impl fmt::Debug for SourceLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.file, self.line)
    }
}

impl fmt::Display for SourceLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.file, self.line)
    }
}

/// A traced persistent-memory operation or checker.
///
/// The first group mirrors the low-level primitives of the x86 persistency
/// model (`write`, `clwb`, `sfence`) and of HOPS (`ofence`, `dfence`, §5.2).
/// The second group are the transactional-library operations PMTest tracks to
/// drive its high-level checkers (§5.1.1). The third group are the checkers
/// and scope-control calls of Table 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Event {
    /// A store to persistent memory.
    Write(ByteRange),
    /// A cache-line writeback (`clwb`/`clflushopt`) of the given range.
    Flush(ByteRange),
    /// An `sfence`: orders and completes prior flushes (x86 model).
    Fence,
    /// HOPS ordering fence: orders prior writes without forcing durability.
    OFence,
    /// HOPS durability fence: stalls until all prior writes are durable.
    DFence,
    /// A transaction begins (`TX_BEGIN`).
    TxBegin,
    /// A transaction ends (`TX_END`).
    TxEnd,
    /// The range is backed up in the transaction's undo log (`TX_ADD`).
    TxAdd(ByteRange),
    /// Checker: has the range persisted since its last update?
    IsPersist(ByteRange),
    /// Checker: do all persists of the first range complete before any
    /// persist of the second can happen?
    IsOrderedBefore(ByteRange, ByteRange),
    /// Opens a transaction-checking scope (`TX_CHECKER_START`).
    TxCheckerStart,
    /// Closes a transaction-checking scope (`TX_CHECKER_END`), auto-injecting
    /// `IsPersist` for every modified, non-excluded object.
    TxCheckerEnd,
    /// Removes a persistent object from the testing scope
    /// (`PMTest_EXCLUDE`).
    Exclude(ByteRange),
    /// Adds a previously excluded object back (`PMTest_INCLUDE`).
    Include(ByteRange),
}

/// Coarse classification of an [`Event`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A PM operation executed by the program (write/flush/fence/tx ops).
    Operation,
    /// A checker placed by the programmer (or injected by a high-level
    /// checker).
    Checker,
    /// A scope-control call (exclude/include).
    Scope,
}

impl Event {
    /// Classifies the event.
    #[must_use]
    pub fn kind(&self) -> EventKind {
        match self {
            Event::Write(_)
            | Event::Flush(_)
            | Event::Fence
            | Event::OFence
            | Event::DFence
            | Event::TxBegin
            | Event::TxEnd
            | Event::TxAdd(_) => EventKind::Operation,
            Event::IsPersist(_)
            | Event::IsOrderedBefore(_, _)
            | Event::TxCheckerStart
            | Event::TxCheckerEnd => EventKind::Checker,
            Event::Exclude(_) | Event::Include(_) => EventKind::Scope,
        }
    }

    /// Wraps the event into an [`Entry`] attributed to the caller.
    #[must_use]
    #[track_caller]
    pub fn here(self) -> Entry {
        Entry { event: self, loc: SourceLoc::here() }
    }

    /// Wraps the event into an [`Entry`] with an explicit location.
    #[must_use]
    pub fn at(self, loc: SourceLoc) -> Entry {
        Entry { event: self, loc }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Write(r) => write!(f, "write({r})"),
            Event::Flush(r) => write!(f, "clwb({r})"),
            Event::Fence => write!(f, "sfence"),
            Event::OFence => write!(f, "ofence"),
            Event::DFence => write!(f, "dfence"),
            Event::TxBegin => write!(f, "tx_begin"),
            Event::TxEnd => write!(f, "tx_end"),
            Event::TxAdd(r) => write!(f, "tx_add({r})"),
            Event::IsPersist(r) => write!(f, "isPersist({r})"),
            Event::IsOrderedBefore(a, b) => write!(f, "isOrderedBefore({a}, {b})"),
            Event::TxCheckerStart => write!(f, "tx_checker_start"),
            Event::TxCheckerEnd => write!(f, "tx_checker_end"),
            Event::Exclude(r) => write!(f, "exclude({r})"),
            Event::Include(r) => write!(f, "include({r})"),
        }
    }
}

/// One trace record: an [`Event`] plus the [`SourceLoc`] that issued it.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Entry {
    /// The traced operation or checker.
    pub event: Event,
    /// Where in the program it was issued.
    pub loc: SourceLoc,
}

impl fmt::Debug for Entry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @ {}", self.event, self.loc)
    }
}

/// An ordered batch of trace entries, as shipped to the checking engine by
/// `PMTest_SEND_TRACE` (§4.2).
///
/// Traces are independent units of checking: each gets its own shadow memory
/// and may be validated on any worker thread (§4.4). Dividing a program into
/// per-transaction traces is what lets PMTest pipeline program execution with
/// checking.
///
/// Internally a trace stores the compact binary form — fixed-width
/// [`PackedEntry`](crate::PackedEntry) records with the source location
/// interned at record time — so shipping a trace moves pointer-free `u64`
/// words, not enum payloads. [`entries`](Self::entries) decodes back to
/// [`Entry`] values on demand.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    id: u64,
    /// Logical entry count: `isOrderedBefore` packs into two records, so
    /// the record count alone is not the entry count.
    len: u32,
    words: Vec<crate::PackedEntry>,
}

impl Trace {
    /// Creates an empty trace with the given identifier.
    #[must_use]
    pub fn new(id: u64) -> Self {
        Self { id, len: 0, words: Vec::new() }
    }

    /// Creates a trace from pre-recorded entries.
    #[must_use]
    pub fn from_entries(id: u64, entries: Vec<Entry>) -> Self {
        let mut trace = Self::new(id);
        trace.extend(entries);
        trace
    }

    /// Creates a trace directly from packed records. `len` is the logical
    /// entry count the records decode to.
    #[must_use]
    pub fn from_packed(id: u64, words: Vec<crate::PackedEntry>, len: u32) -> Self {
        Self { id, len, words }
    }

    /// The trace identifier (assigned in submission order).
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The recorded entries in program order, decoded from the packed form.
    /// Allocates; hot paths should walk [`packed`](Self::packed) instead.
    #[must_use]
    pub fn entries(&self) -> Vec<Entry> {
        crate::packed::decode_all(&self.words)
    }

    /// The packed records backing this trace.
    #[must_use]
    pub fn packed(&self) -> &[crate::PackedEntry] {
        &self.words
    }

    /// Number of recorded entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the trace holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends an entry, encoding it in place.
    pub fn push(&mut self, entry: Entry) {
        crate::packed::encode_into(&mut self.words, entry);
        self.len += 1;
    }

    /// Consumes the trace, returning its decoded entries.
    #[must_use]
    pub fn into_entries(self) -> Vec<Entry> {
        self.entries()
    }

    /// Consumes the trace, returning the packed record buffer (for
    /// recycling through a pool).
    #[must_use]
    pub fn into_packed(self) -> Vec<crate::PackedEntry> {
        self.words
    }
}

impl fmt::Display for Trace {
    /// One entry per line, in program order — handy when debugging a
    /// checker verdict.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "trace #{} ({} entries)", self.id, self.len)?;
        for (i, entry) in self.entries().iter().enumerate() {
            writeln!(f, "  [{i:>4}] {} @ {}", entry.event, entry.loc)?;
        }
        Ok(())
    }
}

impl Extend<Entry> for Trace {
    fn extend<T: IntoIterator<Item = Entry>>(&mut self, iter: T) {
        for entry in iter {
            self.push(entry);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(s: u64, e: u64) -> ByteRange {
        ByteRange::new(s, e)
    }

    #[test]
    fn source_loc_captures_this_file() {
        let loc = SourceLoc::here();
        assert!(loc.file().contains("event.rs"));
        assert_eq!(format!("{loc}"), format!("{}:{}", loc.file(), loc.line()));
    }

    #[test]
    fn track_caller_propagates_through_here() {
        #[track_caller]
        fn helper() -> Entry {
            Event::Fence.here()
        }
        let entry = helper();
        assert!(entry.loc.file().contains("event.rs"));
    }

    #[test]
    fn event_kinds() {
        assert_eq!(Event::Write(r(0, 8)).kind(), EventKind::Operation);
        assert_eq!(Event::Flush(r(0, 8)).kind(), EventKind::Operation);
        assert_eq!(Event::Fence.kind(), EventKind::Operation);
        assert_eq!(Event::TxAdd(r(0, 8)).kind(), EventKind::Operation);
        assert_eq!(Event::IsPersist(r(0, 8)).kind(), EventKind::Checker);
        assert_eq!(Event::IsOrderedBefore(r(0, 8), r(8, 16)).kind(), EventKind::Checker);
        assert_eq!(Event::TxCheckerEnd.kind(), EventKind::Checker);
        assert_eq!(Event::Exclude(r(0, 8)).kind(), EventKind::Scope);
    }

    #[test]
    fn event_display_is_readable() {
        assert_eq!(format!("{}", Event::Fence), "sfence");
        assert_eq!(format!("{}", Event::Write(r(0x10, 0x18))), "write(0x10+8)");
        assert!(
            format!("{}", Event::IsOrderedBefore(r(0, 8), r(8, 16))).starts_with("isOrderedBefore")
        );
    }

    #[test]
    fn trace_accumulates_in_order() {
        let mut t = Trace::new(7);
        t.push(Event::Write(r(0, 8)).here());
        t.extend([Event::Fence.here()]);
        assert_eq!(t.id(), 7);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.entries()[0].event, Event::Write(r(0, 8)));
        assert_eq!(t.entries()[1].event, Event::Fence);
        let entries = t.into_entries();
        assert_eq!(entries.len(), 2);
    }

    #[test]
    fn trace_display_lists_entries() {
        let mut t = Trace::new(3);
        t.push(Event::Write(r(0, 8)).at(SourceLoc::new("x.rs", 9)));
        t.push(Event::Fence.at(SourceLoc::new("x.rs", 10)));
        let s = t.to_string();
        assert!(s.contains("trace #3 (2 entries)"));
        assert!(s.contains("write(0x0+8) @ x.rs:9"));
        assert!(s.contains("sfence @ x.rs:10"));
    }

    #[test]
    fn entry_debug_contains_location() {
        let e = Event::Fence.at(SourceLoc::new("foo.rs", 42));
        assert_eq!(format!("{e:?}"), "sfence @ foo.rs:42");
    }
}
