//! Source-location interning for the checker hot path.
//!
//! A trace replays the same few call sites over and over — every `write`
//! from one instrumented store carries the identical [`SourceLoc`] — yet the
//! shadow memory used to clone that location into every segment it split.
//! Interning collapses the per-segment cost to a 4-byte [`LocId`] and makes
//! the segment state `Copy`, which is what lets the segment map's flat
//! representation move states around with `memcpy` instead of clone calls.
//!
//! The interner is built to be *recycled* across traces: [`LocInterner::clear`]
//! drops the entries but keeps every backing allocation, so a pooled checker
//! interns with zero steady-state allocation.

use std::collections::HashMap;

use crate::SourceLoc;

/// Distinct locations below which lookup is a linear scan of the arena; past
/// it a hash index is built (long fuzzed traces with per-op locations).
const LINEAR_MAX: usize = 16;

/// A compact handle to an interned [`SourceLoc`], valid for the interner (and
/// the trace) that produced it. `u32` keeps shadow-memory segment state small
/// and `Copy`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct LocId(u32);

/// Per-trace [`SourceLoc`] interner with recyclable storage.
///
/// # Examples
///
/// ```
/// use pmtest_trace::{LocInterner, SourceLoc};
///
/// let mut interner = LocInterner::new();
/// let a = interner.intern(SourceLoc::new("app.rs", 7));
/// let b = interner.intern(SourceLoc::new("app.rs", 7));
/// assert_eq!(a, b);
/// assert_eq!(interner.resolve(a), SourceLoc::new("app.rs", 7));
/// ```
#[derive(Debug, Default)]
pub struct LocInterner {
    locs: Vec<SourceLoc>,
    /// Hash index over `locs`, only populated once the arena outgrows
    /// [`LINEAR_MAX`]. Retained (empty) across `clear` so the capacity is
    /// recycled too.
    index: HashMap<SourceLoc, u32>,
    /// One-entry cache: consecutive events from the same call site hit here
    /// without any scan.
    last: Option<(SourceLoc, u32)>,
}

impl LocInterner {
    /// Creates an empty interner.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `loc`, returning the id of the existing entry when the same
    /// location was seen before.
    pub fn intern(&mut self, loc: SourceLoc) -> LocId {
        if let Some((cached, id)) = self.last {
            if cached == loc {
                return LocId(id);
            }
        }
        let id = if self.locs.len() <= LINEAR_MAX {
            match self.locs.iter().position(|&l| l == loc) {
                Some(i) => i as u32,
                None => self.push(loc),
            }
        } else {
            if self.index.is_empty() {
                // First lookup past the linear regime: index what we have.
                self.index.extend(self.locs.iter().enumerate().map(|(i, &l)| (l, i as u32)));
            }
            match self.index.get(&loc) {
                Some(&i) => i,
                None => {
                    let i = self.push(loc);
                    self.index.insert(loc, i);
                    i
                }
            }
        };
        self.last = Some((loc, id));
        LocId(id)
    }

    fn push(&mut self, loc: SourceLoc) -> u32 {
        let i = u32::try_from(self.locs.len()).expect("more than u32::MAX distinct locations");
        self.locs.push(loc);
        i
    }

    /// Looks up an interned location. Ids are only meaningful for the
    /// interner that produced them (and before its next [`clear`](Self::clear)).
    #[must_use]
    pub fn resolve(&self, id: LocId) -> SourceLoc {
        self.locs[id.0 as usize]
    }

    /// Number of distinct locations interned since the last clear.
    #[must_use]
    pub fn len(&self) -> usize {
        self.locs.len()
    }

    /// Whether nothing has been interned since the last clear.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.locs.is_empty()
    }

    /// Forgets all entries but keeps the backing allocations, so a recycled
    /// interner works allocation-free in steady state.
    pub fn clear(&mut self) {
        self.locs.clear();
        self.index.clear();
        self.last = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loc(line: u32) -> SourceLoc {
        SourceLoc::new("intern.rs", line)
    }

    #[test]
    fn same_location_same_id() {
        let mut i = LocInterner::new();
        let a = i.intern(loc(1));
        let b = i.intern(loc(2));
        assert_ne!(a, b);
        assert_eq!(i.intern(loc(1)), a);
        assert_eq!(i.intern(loc(2)), b);
        assert_eq!(i.len(), 2);
        assert_eq!(i.resolve(a), loc(1));
        assert_eq!(i.resolve(b), loc(2));
    }

    #[test]
    fn survives_the_switch_to_hashed_lookup() {
        let mut i = LocInterner::new();
        let ids: Vec<LocId> = (0..200).map(|n| i.intern(loc(n))).collect();
        assert_eq!(i.len(), 200);
        for (n, id) in ids.iter().enumerate() {
            assert_eq!(i.resolve(*id), loc(n as u32));
            assert_eq!(i.intern(loc(n as u32)), *id, "re-intern must dedupe");
        }
    }

    #[test]
    fn clear_recycles() {
        let mut i = LocInterner::new();
        for n in 0..100 {
            i.intern(loc(n));
        }
        i.clear();
        assert!(i.is_empty());
        let a = i.intern(loc(7));
        assert_eq!(i.resolve(a), loc(7));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn consecutive_hits_use_the_cache() {
        let mut i = LocInterner::new();
        let a = i.intern(loc(1));
        for _ in 0..10 {
            assert_eq!(i.intern(loc(1)), a);
        }
        assert_eq!(i.len(), 1);
    }
}
