//! Property tests for the trace-buffer recycling pool.
//!
//! The pool's core invariant: a buffer recycled through the pool can never
//! leak entries from one trace into another. Every `acquire` must observe an
//! empty buffer, no matter what interleaving of acquires and releases (with
//! arbitrarily dirty buffers) preceded it, and the stats counters must stay
//! consistent with the operation sequence.

use pmtest_trace::packed::encode_into;
use pmtest_trace::{BufferPool, Event, PackedEntry, Trace};
use proptest::prelude::*;

/// One step of a pool workload.
#[derive(Debug, Clone)]
enum Op {
    /// Acquire a buffer, stuff `fill` entries into it, keep it on the side.
    AcquireAndFill(u8),
    /// Release the oldest held buffer (no-op when none are held).
    ReleaseOldest,
    /// Release a freshly allocated dirty buffer of the given size.
    ReleaseForeign(u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<u8>().prop_map(Op::AcquireAndFill),
        Just(Op::ReleaseOldest),
        (1..64u8).prop_map(Op::ReleaseForeign),
    ]
}

fn dirty(n: u8) -> Vec<PackedEntry> {
    let mut buf = Vec::with_capacity(n.max(1) as usize);
    for _ in 0..n {
        encode_into(&mut buf, Event::Fence.here());
    }
    buf
}

proptest! {
    /// No interleaving of acquires and dirty releases ever surfaces a
    /// non-empty buffer from `acquire`.
    #[test]
    fn acquired_buffers_are_always_empty(ops in proptest::collection::vec(arb_op(), 1..200)) {
        let pool = BufferPool::new();
        let mut held: Vec<Vec<PackedEntry>> = Vec::new();
        let mut acquires = 0u64;
        let mut releases = 0u64;
        for op in &ops {
            match op {
                Op::AcquireAndFill(fill) => {
                    let mut buf = pool.acquire();
                    acquires += 1;
                    prop_assert!(buf.is_empty(), "acquire returned {} stale entries", buf.len());
                    buf.extend(dirty(*fill));
                    held.push(buf);
                }
                Op::ReleaseOldest => {
                    if !held.is_empty() {
                        pool.release(held.remove(0));
                        releases += 1;
                    }
                }
                Op::ReleaseForeign(n) => {
                    pool.release(dirty(*n));
                    releases += 1;
                }
            }
        }
        let stats = pool.stats();
        prop_assert_eq!(stats.recycled + stats.fresh, acquires);
        prop_assert_eq!(stats.released, releases);
        prop_assert!(stats.recycled <= releases, "cannot recycle more than was released");
        prop_assert!(pool.available() as u64 <= releases);
    }

    /// Round-tripping record buffers through `Trace` the way the engine does
    /// (session encodes into a pooled buffer, worker releases
    /// `trace.into_packed()`) never leaks records across traces, for any
    /// sequence of trace lengths.
    #[test]
    fn trace_round_trip_never_leaks(lens in proptest::collection::vec(0..40usize, 1..100)) {
        let pool = BufferPool::new();
        for (id, len) in lens.iter().enumerate() {
            let mut buf = pool.acquire();
            prop_assert!(buf.is_empty(), "trace {} inherited {} records", id, buf.len());
            for _ in 0..*len {
                encode_into(&mut buf, Event::Fence.here());
            }
            let trace = Trace::from_packed(id as u64, buf, *len as u32);
            prop_assert_eq!(trace.len(), *len);
            pool.release(trace.into_packed());
        }
        let stats = pool.stats();
        prop_assert_eq!(stats.released, lens.len() as u64);
    }
}
