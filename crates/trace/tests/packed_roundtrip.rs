//! Property tests for the compact binary trace encoding.
//!
//! The packed form must be a lossless encoding of `Entry` over the *full*
//! op alphabet — both persistency-model dialects (x86 `write`/`clwb`/
//! `sfence`, HOPS `ofence`/`dfence`), the transaction events, the checkers
//! (including the two-operand `isOrderedBefore`, which spans a continuation
//! record), and scope control. Any sequence of entries encoded into a trace
//! must decode back to exactly the same events and source locations.

use pmtest_interval::ByteRange;
use pmtest_trace::{Entry, Event, SourceLoc, Trace, PACKED_ENTRY_BYTES};
use proptest::prelude::*;

/// A handful of distinct static file names so locations vary without
/// needing leaked strings.
const FILES: [&str; 4] = ["alpha.rs", "beta.rs", "gamma.rs", "delta.rs"];

fn arb_loc() -> impl Strategy<Value = SourceLoc> {
    (0..FILES.len(), any::<u32>()).prop_map(|(f, line)| SourceLoc::new(FILES[f], line))
}

fn arb_range() -> impl Strategy<Value = ByteRange> {
    // Ordered pair over the full u64 width, empty ranges included.
    (any::<u64>(), any::<u64>()).prop_map(|(a, b)| ByteRange::new(a.min(b), a.max(b)))
}

fn arb_event() -> impl Strategy<Value = Event> {
    prop_oneof![
        arb_range().prop_map(Event::Write),
        arb_range().prop_map(Event::Flush),
        Just(Event::Fence),
        Just(Event::OFence),
        Just(Event::DFence),
        Just(Event::TxBegin),
        Just(Event::TxEnd),
        arb_range().prop_map(Event::TxAdd),
        arb_range().prop_map(Event::IsPersist),
        (arb_range(), arb_range()).prop_map(|(a, b)| Event::IsOrderedBefore(a, b)),
        Just(Event::TxCheckerStart),
        Just(Event::TxCheckerEnd),
        arb_range().prop_map(Event::Exclude),
        arb_range().prop_map(Event::Include),
    ]
}

fn arb_entry() -> impl Strategy<Value = Entry> {
    (arb_event(), arb_loc()).prop_map(|(e, l)| e.at(l))
}

proptest! {
    /// Old-`Entry` → packed records → `Entry` is the identity, entry for
    /// entry, over arbitrary sequences from the full alphabet.
    #[test]
    fn entries_round_trip_through_packed(entries in proptest::collection::vec(arb_entry(), 0..64)) {
        let trace = Trace::from_entries(42, entries.clone());
        prop_assert_eq!(trace.len(), entries.len());
        let decoded = trace.entries();
        prop_assert_eq!(decoded.len(), entries.len());
        for (got, want) in decoded.iter().zip(&entries) {
            prop_assert_eq!(got.event, want.event);
            prop_assert_eq!(got.loc, want.loc);
        }
        // The packed form never exceeds two records per entry and stays at
        // its fixed width.
        prop_assert!(trace.packed().len() <= 2 * entries.len());
        prop_assert_eq!(std::mem::size_of_val(trace.packed()),
                        trace.packed().len() * PACKED_ENTRY_BYTES);
    }

    /// Push-by-push encoding agrees with bulk `from_entries`, and
    /// `into_entries` matches `entries`.
    #[test]
    fn incremental_and_bulk_encoding_agree(entries in proptest::collection::vec(arb_entry(), 0..32)) {
        let bulk = Trace::from_entries(7, entries.clone());
        let mut incremental = Trace::new(7);
        for &e in &entries {
            incremental.push(e);
        }
        prop_assert_eq!(&bulk, &incremental);
        prop_assert_eq!(bulk.entries(), incremental.clone().into_entries());
    }
}

/// The record width is pinned: silent growth past 3×u64 is a build error in
/// the crate (const assert) and a test failure here.
#[test]
fn packed_record_width_is_pinned() {
    assert_eq!(PACKED_ENTRY_BYTES, 24);
    assert_eq!(std::mem::size_of::<pmtest_trace::PackedEntry>(), 24);
}
