//! Component timing probe for the ingest path. Not a benchmark of record —
//! a diagnostic for where the per-trace nanoseconds go, ending with the
//! telemetry layer's own five-stage latency decomposition
//! (record→ring-push, ring-wait, claim/steal→replay, replay, report-merge)
//! from an instrumented w4/b32 round. Run with:
//! `cargo run --release -p pmtest-bench --example ingest_probe [traces]`

use std::time::Instant;

use pmtest_core::{PersistencyModel, PmTestSession};
use pmtest_interval::ByteRange;
use pmtest_trace::{Event, Sink, TraceArena};

fn time(label: &str, traces: u64, f: impl FnOnce()) {
    let start = Instant::now();
    f();
    let ns = start.elapsed().as_nanos() as f64 / traces as f64;
    println!("{label:<44} {ns:>8.1} ns/trace ({:>6.2} M/s)", 1e3 / ns);
}

fn main() {
    let traces: u64 = std::env::args().nth(1).and_then(|v| v.parse().ok()).unwrap_or(500_000);
    let r = ByteRange::with_len(0, 8);

    // Floor: encode 5 entries into a reused arena, seal, clear.
    let mut arena = TraceArena::new();
    time("arena encode+seal only", traces, || {
        for id in 0..traces {
            arena.push(Event::Write(r).here());
            arena.push(Event::Flush(r).here());
            arena.push(Event::Fence.here());
            arena.push(Event::IsPersist(r).here());
            arena.seal(id);
            if arena.sealed() >= 32 {
                arena.clear();
            }
        }
    });

    // Clean-lane DFA over the canonical packed trace.
    let mut probe = TraceArena::new();
    probe.push(Event::Write(r).here());
    probe.push(Event::Flush(r).here());
    probe.push(Event::Fence.here());
    probe.push(Event::IsPersist(r).here());
    probe.seal(0);
    let words: Vec<_> = probe.traces().next().map(|(_, w, _)| w.to_vec()).unwrap();
    let fast = pmtest_core::X86Model::new().builtin().unwrap();
    time("packed_clean DFA only", traces, || {
        for _ in 0..traces {
            assert!(pmtest_core::packed_clean(fast, std::hint::black_box(&words)));
        }
    });

    // Session record path with tracking disabled: pure overhead floor of
    // the sink calls.
    let session = PmTestSession::builder().workers(1).batch_capacity(32).build();
    time("session record, disabled", traces, || {
        for _ in 0..traces {
            session.record(Event::Write(r).here());
            session.record(Event::Flush(r).here());
            session.record(Event::Fence.here());
            session.is_persist(r);
            session.send_trace();
        }
    });

    // Produce side alone: tracking on, but a batch capacity nothing reaches,
    // so no trace ever ships (one big arena grows instead).
    let produce_only = traces.min(500_000);
    let session = PmTestSession::builder().workers(1).batch_capacity(usize::MAX >> 1).build();
    session.start();
    time("session produce path, no shipping", produce_only, || {
        for _ in 0..produce_only {
            session.record(Event::Write(r).here());
            session.record(Event::Flush(r).here());
            session.record(Event::Fence.here());
            session.is_persist(r);
            session.send_trace();
        }
    });
    drop(session);

    // Report merge: what `take_report` pays to sort one round's results.
    {
        use pmtest_core::{Report, TraceReport};
        let round = traces.min(500_000);
        let reports: Vec<TraceReport> =
            (0..round).map(|id| TraceReport { trace_id: id, diags: Vec::new() }).collect();
        let mut merged = Report::default();
        time("report extend_traces (pre-sorted ids)", round, || {
            merged.extend_traces(reports);
        });
    }

    // Recorder-handle produce path: owned arena, no TLS/RefCell per event.
    let session = PmTestSession::builder().workers(1).batch_capacity(usize::MAX >> 1).build();
    session.start();
    let mut rec = session.recorder();
    time("recorder produce path, no shipping", produce_only, || {
        for _ in 0..produce_only {
            rec.record(Event::Write(r).here());
            rec.record(Event::Flush(r).here());
            rec.record(Event::Fence.here());
            rec.is_persist(r);
            rec.send_trace();
        }
    });
    drop(rec);
    drop(session);

    // Full single-producer pipeline, inline on the main thread.
    for batch in [32usize, 256] {
        let session = PmTestSession::builder().workers(1).batch_capacity(batch).build();
        session.start();
        for _ in 0..2_000 {
            session.record(Event::Write(r).here());
            session.record(Event::Flush(r).here());
            session.record(Event::Fence.here());
            session.is_persist(r);
            session.send_trace();
        }
        assert!(session.take_report().is_clean());
        time(&format!("1 producer inline, w1/b{batch}"), traces, || {
            for _ in 0..traces {
                session.record(Event::Write(r).here());
                session.record(Event::Flush(r).here());
                session.record(Event::Fence.here());
                session.is_persist(r);
                session.send_trace();
            }
            assert!(session.take_report().is_clean());
        });
        let stats = session.stats();
        println!(
            "    stalls={} steals={} highwater={}",
            stats.backpressure_stalls, stats.steals, stats.queue_highwater
        );
    }

    // Recorder-handle pipeline: the peak-ingest configuration.
    for batch in [256usize, 1024] {
        let session = PmTestSession::builder().workers(1).batch_capacity(batch).build();
        session.start();
        let mut rec = session.recorder();
        for _ in 0..2_000 {
            rec.record(Event::Write(r).here());
            rec.record(Event::Flush(r).here());
            rec.record(Event::Fence.here());
            rec.is_persist(r);
            rec.send_trace();
        }
        rec.flush();
        assert!(session.take_report().is_clean());
        time(&format!("1 recorder inline, w1/b{batch}"), traces, || {
            for _ in 0..traces {
                rec.record(Event::Write(r).here());
                rec.record(Event::Flush(r).here());
                rec.record(Event::Fence.here());
                rec.is_persist(r);
                rec.send_trace();
            }
            rec.flush();
            assert!(session.take_report().is_clean());
        });
        let stats = session.stats();
        println!(
            "    stalls={} steals={} highwater={}",
            stats.backpressure_stalls, stats.steals, stats.queue_highwater
        );
    }

    // Stage-latency decomposition: the same w4/b32 short-trace round with
    // the timing layer on, broken into the five per-batch pipeline stages
    // (record→ring-push, ring-wait, claim/steal→replay, replay,
    // report-merge). Per-*batch* numbers — divide by the batch size for the
    // per-trace share.
    {
        let round = traces.min(500_000);
        let session = PmTestSession::builder()
            .workers(4)
            .batch_capacity(32)
            .telemetry(pmtest_core::TelemetryConfig::timing_only())
            .build();
        session.start();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let session = session.clone();
                s.spawn(move || {
                    session.thread_init();
                    for _ in 0..round / 4 {
                        session.record(Event::Write(r).here());
                        session.record(Event::Flush(r).here());
                        session.record(Event::Fence.here());
                        session.is_persist(r);
                        session.send_trace();
                    }
                });
            }
        });
        assert!(session.take_report().is_clean());
        let snap = session.telemetry_snapshot();
        println!("\nstage latency decomposition (4 producers, w4/b32, per batch):");
        for stage in ["record_push", "ring_wait", "claim_replay", "replay", "report_merge"] {
            let h = snap
                .histogram_with("engine_stage_ns", "stage", stage)
                .expect("stage histograms register unconditionally");
            let mean = if h.count == 0 { 0.0 } else { h.sum as f64 / h.count as f64 };
            println!(
                "    {stage:<14} n={:>6}  mean {:>9.0} ns  p50 {:>9.0}  p90 {:>9.0}  p99 {:>9.0}",
                h.count, mean, h.p50, h.p90, h.p99
            );
        }
        println!("    {}", session.telemetry_summary().replace('\n', "\n    "));
    }

    // Verdict-cache decomposition: a repetitive workload (one 62-record
    // shape, 30 distinct ranges — past the clean-lane DFA's slots, so the
    // uncached run pays the full fused replay) checked cache-off then
    // cache-on, with the hit-rate breakdown by tier.
    {
        let round = traces.min(100_000);
        let record_rep = |session: &PmTestSession| {
            for i in 0..30u64 {
                let range = ByteRange::with_len(i * 64, 64);
                session.record(Event::Write(range).here());
                session.record(Event::Flush(range).here());
            }
            session.record(Event::Fence.here());
            session.is_persist(ByteRange::with_len(0, 64));
            session.send_trace();
        };
        println!("\nverdict-cache decomposition (1 producer, w1/b32, repetitive shape):");
        let mut uncached_ns = 0.0;
        for cached in [false, true] {
            let session = PmTestSession::builder()
                .workers(1)
                .batch_capacity(32)
                .verdict_cache(cached)
                .build();
            session.start();
            for _ in 0..2_000 {
                record_rep(&session);
            }
            assert!(session.take_report().is_clean());
            let start = Instant::now();
            for _ in 0..round {
                record_rep(&session);
            }
            assert!(session.take_report().is_clean());
            let ns = start.elapsed().as_nanos() as f64 / round as f64;
            let label = if cached { "repetitive, cache on" } else { "repetitive, cache off" };
            println!("    {label:<40} {ns:>8.1} ns/trace ({:>6.2} M/s)", 1e3 / ns);
            if cached {
                println!("    memoization speedup: {:.2}x", uncached_ns / ns);
                let stats = session.verdict_cache_stats().expect("cache enabled");
                let lookups =
                    (stats.l1_hits + stats.l2_hits + stats.misses + stats.bypasses).max(1);
                let share = |n: u64| 100.0 * n as f64 / lookups as f64;
                println!(
                    "    lookups={lookups}: L1 hits {:.2}% | L2 hits {:.2}% | misses {:.2}% \
                     | bypasses {:.2}% (hit rate {:.4})",
                    share(stats.l1_hits),
                    share(stats.l2_hits),
                    share(stats.misses),
                    share(stats.bypasses),
                    stats.hit_rate(),
                );
                println!(
                    "    L2 resident: {} entries, {} bytes ({} inserts, {} evictions)",
                    stats.entries, stats.bytes_resident, stats.inserts, stats.evictions
                );
            } else {
                uncached_ns = ns;
            }
        }
    }
}
