//! **Table 5** — the synthetic-bug validation matrix: every planted bug
//! across the six classes must be detected, with zero false positives on
//! the clean variants.
//!
//! Run with: `cargo bench -p pmtest-bench --bench table5_synthetic`

use std::collections::BTreeMap;
use std::sync::Arc;

use pmtest_bench::print_table;
use pmtest_bugs::{catalog, run_case, run_clean, BugClass, Scenario};
use pmtest_pmem::{PersistMode, PmPool};
use pmtest_trace::{MemorySink, TraceStats};
use pmtest_txlib::ObjPool;
use pmtest_workloads::{gen, CheckMode, FaultSet, HashMapTx, KvMap};

fn main() {
    let cases = catalog();
    println!("Table 5 reproduction — {} synthetic bugs (paper: 45)", cases.len());

    let mut per_class: BTreeMap<&'static str, (usize, usize)> = BTreeMap::new();
    let mut rows = Vec::new();
    let mut all_detected = true;
    for case in &cases {
        let outcome = run_case(case);
        let entry = per_class.entry(class_key(case.class)).or_insert((0, 0));
        entry.0 += 1;
        if outcome.detected {
            entry.1 += 1;
        } else {
            all_detected = false;
        }
        rows.push(vec![
            case.id.to_owned(),
            case.class.to_string(),
            format!("{:?}", case.expect),
            if outcome.detected { "detected".to_owned() } else { "MISSED".to_owned() },
        ]);
    }
    print_table(
        "Table 5 — per-case detection",
        &["case", "class", "expected diagnostic", "result"],
        &rows,
    );

    let class_rows: Vec<Vec<String>> = per_class
        .iter()
        .map(|(class, (total, detected))| {
            vec![(*class).to_owned(), total.to_string(), detected.to_string()]
        })
        .collect();
    print_table("Table 5 — per-class summary", &["class", "cases", "detected"], &class_rows);

    // False-positive sweep over the distinct clean scenarios.
    let mut clean_rows = Vec::new();
    let mut seen = std::collections::HashSet::new();
    let mut false_positives = 0;
    for case in &cases {
        let key = match &case.scenario {
            Scenario::Structure { kind, with_removes, .. } => format!("{kind:?}/{with_removes}"),
            Scenario::Pmfs { .. } => "pmfs".to_owned(),
            Scenario::TxlibAbandon => "txlib".to_owned(),
        };
        if !seen.insert(key.clone()) {
            continue;
        }
        let outcome = run_clean(case);
        if outcome.detected {
            false_positives += 1;
        }
        clean_rows.push(vec![
            key,
            if outcome.detected { "FALSE POSITIVE".to_owned() } else { "clean".to_owned() },
        ]);
    }
    print_table("Clean variants (no fault planted)", &["scenario", "result"], &clean_rows);

    println!(
        "\nsummary: {} / {} bugs detected, {} false positives (paper: all 45 detected, none missed)",
        rows.iter().filter(|r| r[3] == "detected").count(),
        cases.len(),
        false_positives
    );

    // WHISPER-style annotation statistics for one representative workload
    // (the paper reports 2 TX checkers, 12 isPersist + 6 isOrderedBefore
    // over ~2.6k LOC of benchmarks).
    let sink = Arc::new(MemorySink::new());
    let pm = Arc::new(PmPool::new(1 << 21, sink.clone()));
    let pool = Arc::new(ObjPool::create(pm, 4096, PersistMode::X86).expect("pool"));
    let map = HashMapTx::create(pool, 16, CheckMode::Checkers, FaultSet::none()).expect("map");
    for k in 0..32u64 {
        map.insert(k, &gen::value_for(k, 64)).expect("insert");
    }
    let stats = TraceStats::from_trace(&sink.take_trace(0));
    println!("\nannotation/trace statistics (hashmap_tx, 32 inserts):");
    println!("  {stats}");

    assert!(all_detected, "some synthetic bugs were not detected");
    assert_eq!(false_positives, 0, "clean variants must be clean");
}

fn class_key(class: BugClass) -> &'static str {
    match class {
        BugClass::Ordering => "Ordering",
        BugClass::Writeback => "Writeback",
        BugClass::LowLevelPerf => "Performance (low-level)",
        BugClass::Backup => "Backup",
        BugClass::Completion => "Completion",
        BugClass::TxPerf => "Performance (transaction)",
    }
}
