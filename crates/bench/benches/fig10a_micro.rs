//! **Fig. 10a** — PMTest vs the pmemcheck-like baseline on the five PMDK
//! microbenchmarks, across transaction (value) sizes 64 B – 4 KiB.
//!
//! Paper shapes to reproduce (not absolute numbers):
//! * PMTest is several times faster than pmemcheck (paper: 5.2–8.9×, avg
//!   7.1×);
//! * PMTest's overhead *falls* as the transaction size grows (it tracks
//!   coarse PM operations), while pmemcheck's stays roughly flat (it
//!   shadows every store);
//! * the non-transactional HashMap has the highest overhead (most PM
//!   operations per byte).
//!
//! Run with: `cargo bench -p pmtest-bench --bench fig10a_micro`
//! (set `PMTEST_BENCH_OPS=100000` for paper scale).

use pmtest_bench::{
    bench_ops, bench_reps, median_time, print_table, run_micro, slowdown, Micro, Tool,
};

const TX_SIZES: [usize; 7] = [64, 128, 256, 512, 1024, 2048, 4096];

fn main() {
    let ops = bench_ops();
    let reps = bench_reps();
    println!("Fig. 10a reproduction — {ops} insertions per point, median of {reps} runs");

    let mut rows = Vec::new();
    let mut pmtest_ratio_sum = 0.0;
    let mut pmtest_points = 0u32;
    let mut speedup_sum = 0.0;
    for micro in Micro::ALL {
        for &size in &TX_SIZES {
            let native = median_time(reps, || {
                std::hint::black_box(run_micro(micro, Tool::Native, ops, size));
            });
            let pmtest = median_time(reps, || {
                std::hint::black_box(run_micro(micro, Tool::PmTest, ops, size));
            });
            let pmemcheck = median_time(reps, || {
                std::hint::black_box(run_micro(micro, Tool::Pmemcheck, ops, size));
            });
            let s_pmtest = slowdown(pmtest, native);
            let s_pmc = slowdown(pmemcheck, native);
            pmtest_ratio_sum += s_pmtest;
            speedup_sum += s_pmc / s_pmtest;
            pmtest_points += 1;
            rows.push(vec![
                micro.label().to_owned(),
                size.to_string(),
                format!("{:.2}x", s_pmtest),
                format!("{:.2}x", s_pmc),
                format!("{:.2}x", s_pmc / s_pmtest),
            ]);
        }
    }
    print_table(
        "Fig. 10a — slowdown vs native (lower is better)",
        &["microbench", "tx size (B)", "PMTest", "pmemcheck-like", "PMTest speedup"],
        &rows,
    );
    println!(
        "\naverage PMTest slowdown: {:.2}x; average speedup over pmemcheck-like: {:.2}x (paper: 7.1x)",
        pmtest_ratio_sum / f64::from(pmtest_points),
        speedup_sum / f64::from(pmtest_points),
    );
}
