//! **§2.2 motivation** — why exhaustive testing does not scale.
//!
//! Yat validates every memory state a crash could leave. Within one
//! fence-delimited epoch, `w` writes to distinct cache lines are unordered,
//! so a crash inside the epoch can expose any of `2^w` persisted subsets
//! (and Yat actually permutes *orderings*, up to `w!`). Epoch width, not
//! trace length, is the exponent — and PMFS transactions have dozens of
//! unordered writes. This bench measures the blow-up against epoch width,
//! shows PMTest's single pass staying flat, and redoes the paper's
//! extrapolation ("more than five years for ~100k operations").
//!
//! Run with: `cargo bench -p pmtest-bench --bench yat_exhaustive`

use std::sync::Arc;
use std::time::Instant;

use pmtest_baseline::yat;
use pmtest_bench::print_table;
use pmtest_core::{check_trace, X86Model};
use pmtest_pmem::crash::CrashSim;
use pmtest_pmem::PmPool;
use pmtest_trace::MemorySink;

/// One epoch of `width` writes to distinct cache lines, then one batched
/// flush-all + fence (a common, correct idiom — and the worst case for
/// exhaustive testing).
fn record(width: usize) -> (CrashSim, pmtest_trace::Trace) {
    let sink = Arc::new(MemorySink::new());
    let pm = Arc::new(PmPool::new(1 << 16, sink.clone()));
    pm.begin_crash_recording();
    let mut ranges = Vec::new();
    for i in 0..width as u64 {
        ranges.push(pm.write_u64(i * 64, i).unwrap());
    }
    for r in &ranges {
        pm.flush(*r);
    }
    pm.fence();
    let sim = CrashSim::from_pool(&pm).unwrap();
    let trace = sink.take_trace(0);
    (sim, trace)
}

fn factorial_log2(n: u64) -> f64 {
    (2..=n).map(|i| (i as f64).log2()).sum()
}

fn main() {
    println!("Yat blow-up reproduction (§2.2)");
    let ok = |_: &[u8]| -> Result<(), String> { Ok(()) };
    let mut rows = Vec::new();
    let mut per_state_cost = 0.0f64;
    for width in [2usize, 4, 6, 8, 10, 12, 14, 16] {
        let (sim, trace) = record(width);
        let states = yat::estimate_states(&sim);
        let start = Instant::now();
        let result = yat::run(&sim, &ok, yat::YatConfig { max_states: Some(4_000_000) });
        let yat_time = start.elapsed();
        if result.exhausted_space && result.states_tested > 0 {
            per_state_cost = yat_time.as_secs_f64() / result.states_tested as f64;
        }
        let start = Instant::now();
        let diags = check_trace(&trace, &X86Model::new());
        let pmtest_time = start.elapsed();
        assert!(diags.is_empty());
        rows.push(vec![
            width.to_string(),
            states.to_string(),
            format!(
                "{:.3?}{}",
                yat_time,
                if result.exhausted_space { "" } else { " (budget hit)" }
            ),
            format!("{pmtest_time:.3?}"),
        ]);
    }
    print_table(
        "Exhaustive (Yat-like) vs single-pass (PMTest) checking, one epoch",
        &["unordered writes per epoch", "reachable crash states", "Yat-like time", "PMTest time"],
        &rows,
    );

    // Paper-style extrapolation: a 100k-PM-op trace with PMFS-sized epochs
    // (~20 unordered persists each). Yat permutes persist *orderings*
    // within the accepted window, so each epoch costs up to 20! recovery
    // validations.
    let epoch_width = 20u64;
    let epochs = 100_000.0 / (epoch_width as f64 + 2.0);
    let per_state = per_state_cost.max(1e-7);
    let subsets_log2 = epoch_width as f64; // 2^20 subsets per epoch
    let orderings_log2 = factorial_log2(epoch_width); // 20! orderings per epoch
    let subset_secs = epochs * subsets_log2.exp2() * per_state;
    let ordering_secs_log2 = (epochs * per_state).log2() + orderings_log2;
    let five_years_log2 = (5.0 * 365.25 * 86_400.0f64).log2();
    println!(
        "\nextrapolation to a 100k-op trace (epochs of {epoch_width} unordered writes, \
         {:.1}µs per validated state):",
        per_state * 1e6
    );
    println!("  subset-exhaustive (this simulator): ~{:.1} days", subset_secs / 86_400.0);
    println!(
        "  ordering-exhaustive (Yat, ~{epoch_width}! per epoch): ~2^{ordering_secs_log2:.0} \
         seconds — five years is only 2^{five_years_log2:.0} seconds, so the paper's '>5 years' \
         claim holds by orders of magnitude; PMTest's single pass above stays in microseconds"
    );
}
