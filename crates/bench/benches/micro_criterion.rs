//! Criterion microbenchmarks of the engine's own primitives: shadow-memory
//! updates, single-trace checking, and per-operation tracking cost — the
//! quantities behind Fig. 10's end-to-end numbers.
//!
//! Run with: `cargo bench -p pmtest-bench --bench micro_criterion`

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pmtest_core::{check_trace, PmTestSession, ShadowMemory, X86Model};
use pmtest_interval::{ByteRange, SegmentMap};
use pmtest_trace::{Event, Sink, SourceLoc, Trace};

/// A well-formed transactional trace of `n` persist-barriered writes.
fn make_trace(n: u64) -> Trace {
    let mut t = Trace::new(0);
    let loc = SourceLoc::new("bench.rs", 1);
    for i in 0..n {
        let r = ByteRange::with_len(i * 64, 32);
        t.push(Event::Write(r).at(loc));
        t.push(Event::Flush(r).at(loc));
        t.push(Event::Fence.at(loc));
        t.push(Event::IsPersist(r).at(loc));
    }
    t
}

fn bench_check_trace(c: &mut Criterion) {
    let mut group = c.benchmark_group("check_trace_x86");
    for n in [64u64, 512, 4096] {
        let trace = make_trace(n);
        group.throughput(Throughput::Elements(trace.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &trace, |b, trace| {
            let model = X86Model::new();
            b.iter(|| {
                let diags = check_trace(trace, &model);
                assert!(diags.is_empty());
            });
        });
    }
    group.finish();
}

fn bench_shadow_memory(c: &mut Criterion) {
    c.bench_function("shadow_write_flush_fence", |b| {
        let loc = SourceLoc::new("bench.rs", 1);
        b.iter(|| {
            let mut shadow = ShadowMemory::new();
            for i in 0..256u64 {
                let r = ByteRange::with_len(i * 64, 32);
                shadow.record_write(r, loc);
                let _ = shadow.record_flush(r, loc);
                shadow.fence();
            }
            assert!(shadow.is_persisted(ByteRange::new(0, 256 * 64)));
        });
    });
}

fn bench_segment_map(c: &mut Criterion) {
    c.bench_function("segment_map_insert_overlapping", |b| {
        b.iter(|| {
            let mut map = SegmentMap::new();
            for i in 0..512u64 {
                map.insert(ByteRange::with_len((i * 37) % 4096, 64), i);
            }
            std::hint::black_box(map.len());
        });
    });
}

fn bench_session_record(c: &mut Criterion) {
    c.bench_function("session_record_per_event", |b| {
        let session = PmTestSession::builder().build();
        session.start();
        let entry = Event::Write(ByteRange::with_len(0, 64)).at(SourceLoc::new("b.rs", 1));
        b.iter(|| {
            for _ in 0..64 {
                session.record(std::hint::black_box(entry));
            }
            // Drop the buffered entries without engine round-trips.
            let _ = session.send_trace();
        });
        let _ = session.finish();
    });
}

fn bench_pmemcheck_vs_pmtest_tracking(c: &mut Criterion) {
    let mut group = c.benchmark_group("per_write_tracking_cost");
    let entry = Event::Write(ByteRange::with_len(0, 4096)).at(SourceLoc::new("b.rs", 1));
    group.bench_function("pmtest_session", |b| {
        let session = PmTestSession::builder().build();
        session.start();
        b.iter(|| {
            session.record(std::hint::black_box(entry));
            let _ = session.send_trace();
        });
        let _ = session.finish();
    });
    group.bench_function("pmemcheck_like", |b| {
        let pc = Arc::new(pmtest_baseline::Pmemcheck::new());
        b.iter(|| {
            pc.record(std::hint::black_box(entry));
        });
        let _ = pc.finish();
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_check_trace, bench_shadow_memory, bench_segment_map, bench_session_record, bench_pmemcheck_vs_pmtest_tracking
}
criterion_main!(benches);
