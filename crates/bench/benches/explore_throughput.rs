//! Crash-point exploration throughput: crash points per second for the
//! prefix-shared model-mode sweep vs the quadratic fresh-replay reference,
//! on synthetic persist-block programs and on a recorded queue workload
//! with its real recovery procedure.
//!
//! The number this bench guards is the prefix-share win: an ascending
//! model-mode sweep must serve (nearly) every crash point off the live
//! cursor — the committed results assert a prefix-share hit rate of at
//! least 0.9 (skipped under `PMTEST_BENCH_NO_ASSERT=1` for noisy CI
//! runners, like the engine bench's budget assertion).
//!
//! Results are written to `bench_results/BENCH_explore.json`.
//!
//! Run with: `cargo bench -p pmtest-bench --bench explore_throughput`

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pmtest_core::explore::{explore, ExploreConfig, ExploreReport, RecoveryProc};
use pmtest_interval::ByteRange;
use pmtest_pmem::crash::{CrashSim, ValuedOp};
use pmtest_pmem::{PmHeap, PmPool};
use pmtest_workloads::{CheckMode, FaultSet, PmQueue, QueueRecovery};

/// Recorded ops per synthetic program: write+flush+fence blocks striding
/// disjoint cache lines, so every block adds one fence boundary.
const SYNTH_OPS: [usize; 3] = [24, 96, 384];

/// Queue enqueues recorded per workload sweep.
const QUEUE_ENQUEUES: [usize; 2] = [4, 16];

const ROOT: u64 = 4096;
const QUEUE_VAL: usize = 48; // 16-byte node header + 48 = one cache line

/// Recovery procedure for the synthetic programs: accept every image. The
/// sweep cost is then pure enumeration + materialization, the floor the
/// workload rows sit on top of.
struct AcceptAll;

impl RecoveryProc for AcceptAll {
    fn name(&self) -> &str {
        "accept-all"
    }

    fn check(&self, _point: usize, _image: &[u8]) -> Result<(), String> {
        Ok(())
    }
}

/// `ops / 3` write+flush+fence blocks over disjoint 64B-strided lines.
fn synth_sim(ops: usize) -> CrashSim {
    let blocks = ops / 3;
    let mut vops = Vec::with_capacity(blocks * 3);
    for b in 0..blocks {
        let r = ByteRange::with_len((b as u64 % 64) * 64, 8);
        vops.push(ValuedOp::Write { range: r, data: vec![b as u8; 8] });
        vops.push(ValuedOp::Flush(r));
        vops.push(ValuedOp::Fence);
    }
    CrashSim::new(vec![0; 64 * 64], vops)
}

/// Records `n` enqueues on a correct queue and pairs the sim with the
/// workload's real recovery procedure (walk the list, verify payloads).
fn queue_sim(n: usize) -> (CrashSim, QueueRecovery) {
    let pool = Arc::new(PmPool::untracked(1 << 14));
    let heap = Arc::new(PmHeap::new(pool.clone(), ROOT));
    let q = PmQueue::create(heap, CheckMode::None, FaultSet::default()).expect("create queue");
    pool.begin_crash_recording();
    let mut expected = Vec::with_capacity(n);
    for i in 0..n {
        let val = vec![i as u8 + 1; QUEUE_VAL];
        q.enqueue(&val).expect("enqueue");
        expected.push(val);
    }
    let sim = CrashSim::from_pool(&pool).expect("recording active");
    (sim, QueueRecovery::new(ROOT, expected, 0))
}

struct Sample {
    workload: String,
    ops: usize,
    mode: &'static str,
    crash_points: u64,
    images: u64,
    hit_rate: f64,
    ns_per_point: f64,
}

fn config(fresh: bool) -> ExploreConfig {
    ExploreConfig { max_states_per_point: 4096, fresh_replay: fresh, ..ExploreConfig::default() }
}

fn run_sweep(sim: &CrashSim, proc: &dyn RecoveryProc, fresh: bool) -> ExploreReport {
    explore(sim, proc, &config(fresh))
}

fn bench_case(
    group: &mut criterion::BenchmarkGroup<'_>,
    samples: &mut Vec<Sample>,
    workload: &str,
    ops: usize,
    sim: &CrashSim,
    proc: &dyn RecoveryProc,
) {
    let assert_budget = std::env::var("PMTEST_BENCH_NO_ASSERT").is_err();
    for (mode, fresh) in [("shared", false), ("fresh", true)] {
        let report = run_sweep(sim, proc, fresh);
        assert!(report.is_clean(), "bench sweeps must be violation-free:\n{}", report.render());
        if assert_budget && !fresh {
            assert!(
                report.stats.prefix_share_hit_rate() >= 0.9,
                "{workload}/{ops}: prefix-share hit rate {:.3} below the 0.9 floor",
                report.stats.prefix_share_hit_rate()
            );
        }
        group.throughput(Throughput::Elements(report.stats.crash_points_enumerated));
        let id = format!("{workload}_{ops}ops");
        group.bench_with_input(BenchmarkId::new(mode, &id), sim, |b, sim| {
            b.iter(|| run_sweep(sim, proc, fresh))
        });
        let ns = group.last_estimate_ns().expect("benchmark just ran");
        samples.push(Sample {
            workload: workload.to_owned(),
            ops,
            mode,
            crash_points: report.stats.crash_points_enumerated,
            images: report.stats.images_checked,
            hit_rate: report.stats.prefix_share_hit_rate(),
            ns_per_point: ns / report.stats.crash_points_enumerated as f64,
        });
    }
}

fn write_json(samples: &[Sample]) {
    let mut rows = String::new();
    for (i, s) in samples.iter().enumerate() {
        let _ = writeln!(
            rows,
            "    {{\"workload\": \"{}\", \"ops\": {}, \"mode\": \"{}\", \
             \"crash_points\": {}, \"images_checked\": {}, \
             \"prefix_share_hit_rate\": {:.3}, \"ns_per_point\": {:.1}, \
             \"points_per_sec\": {:.0}}}{}",
            s.workload,
            s.ops,
            s.mode,
            s.crash_points,
            s.images,
            s.hit_rate,
            s.ns_per_point,
            1e9 / s.ns_per_point,
            if i + 1 == samples.len() { "" } else { "," },
        );
    }
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"explore_throughput\",\n",
            "  \"workload\": \"model-mode crash-point sweeps: synthetic write+flush+fence \
             blocks over 64B-strided lines (accept-all recovery) and recorded PmQueue \
             enqueues (real list-walk recovery)\",\n",
            "  \"modes\": \"shared = incremental cursor prefix-shares shadow state across \
             adjacent crash points; fresh = from-scratch rescan at every point (the \
             quadratic reference)\",\n",
            "  \"results\": [\n{}  ]\n",
            "}}\n"
        ),
        rows,
    );
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../bench_results");
    std::fs::create_dir_all(dir).expect("create bench_results/");
    let path = format!("{dir}/BENCH_explore.json");
    std::fs::write(&path, &json).expect("write BENCH_explore.json");
    println!("\nwrote {path}");
    print!("{json}");
}

fn explore_throughput(c: &mut Criterion) {
    let mut samples = Vec::new();
    let mut group = c.benchmark_group("explore_throughput");
    for &ops in &SYNTH_OPS {
        let sim = synth_sim(ops);
        bench_case(&mut group, &mut samples, "synthetic", ops, &sim, &AcceptAll);
    }
    for &n in &QUEUE_ENQUEUES {
        let (sim, proc) = queue_sim(n);
        bench_case(&mut group, &mut samples, "queue", sim.op_count(), &sim, &proc);
    }
    group.finish();
    for s in &samples {
        println!(
            "{:<10} ops={:>3} {:>7}: {:>8.1} ns/point ({:>10.0} points/s), hit rate {:.3}",
            s.workload,
            s.ops,
            s.mode,
            s.ns_per_point,
            1e9 / s.ns_per_point,
            s.hit_rate
        );
    }
    write_json(&samples);
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(200));
    targets = explore_throughput
}
criterion_main!(benches);
