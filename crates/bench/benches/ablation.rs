//! Ablation of PMTest's design choices (DESIGN.md §7): what each mechanism
//! buys, measured on the transactional hashmap.
//!
//! * **Trace granularity** — the paper sends one trace per transaction
//!   (§4.2, "divide a program into independent sections ... for better
//!   testing speed"). Sweeping the batch size shows the trade-off between
//!   submission overhead (tiny traces) and shadow-memory growth + lost
//!   pipelining (one giant trace).
//! * **Queue depth** — the bounded engine queue trades memory for
//!   backpressure; a depth-1 queue serializes the pipeline.
//! * **Performance checkers** — the §5.1.2 WARN rules are almost free.
//!
//! Run with: `cargo bench -p pmtest-bench --bench ablation`

use std::sync::Arc;
use std::time::{Duration, Instant};

use pmtest_bench::{bench_ops, bench_reps, print_table};
use pmtest_core::{PmTestSession, X86Model};
use pmtest_pmem::{PersistMode, PmPool};
use pmtest_txlib::ObjPool;
use pmtest_workloads::{gen, CheckMode, FaultSet, HashMapTx, KvMap};

fn run(ops: usize, batch: usize, queue: usize, perf_checks: bool) -> Duration {
    let model = if perf_checks { X86Model::new() } else { X86Model::without_performance_checks() };
    let session = PmTestSession::builder().model(model).queue_capacity(queue).build();
    session.start();
    let pm = Arc::new(PmPool::new(16 << 20, session.sink()));
    let pool = Arc::new(ObjPool::create(pm, 8192, PersistMode::X86).expect("pool"));
    let map = HashMapTx::create(pool, 256, CheckMode::Checkers, FaultSet::none()).expect("map");
    let start = Instant::now();
    for k in 0..ops as u64 {
        map.insert(k, &gen::value_for(k, 64)).expect("insert");
        if (k + 1) % batch as u64 == 0 {
            session.send_trace();
        }
    }
    session.send_trace();
    let elapsed = start.elapsed();
    let report = session.finish();
    assert!(report.is_clean(), "{report}");
    elapsed
}

fn best_of(reps: usize, mut f: impl FnMut() -> Duration) -> Duration {
    (0..reps.max(2)).map(|_| f()).min().expect("samples")
}

fn main() {
    let ops = bench_ops().max(2000);
    let reps = bench_reps();
    println!("Design-choice ablation — {ops} insertions, best of {reps} runs");

    // (1) Trace granularity: transactions per trace.
    let baseline = best_of(reps, || run(ops, 1, 256, true));
    let mut rows = vec![vec![
        "1 (per transaction, paper)".to_owned(),
        format!("{baseline:.2?}"),
        "1.00x".to_owned(),
    ]];
    for batch in [8usize, 64, ops] {
        let t = best_of(reps, || run(ops, batch, 256, true));
        let label =
            if batch == ops { "entire run as one trace".to_owned() } else { batch.to_string() };
        rows.push(vec![
            label,
            format!("{t:.2?}"),
            format!("{:.2}x", t.as_secs_f64() / baseline.as_secs_f64()),
        ]);
    }
    print_table(
        "Ablation 1 — transactions per trace (vs paper's per-transaction)",
        &["batch", "time", "relative"],
        &rows,
    );

    // (2) Engine queue depth.
    let mut rows = Vec::new();
    for queue in [1usize, 16, 256, 4096] {
        let t = best_of(reps, || run(ops, 1, queue, true));
        rows.push(vec![
            queue.to_string(),
            format!("{t:.2?}"),
            format!("{:.2}x", t.as_secs_f64() / baseline.as_secs_f64()),
        ]);
    }
    print_table("Ablation 2 — engine queue depth", &["depth", "time", "relative"], &rows);

    // (3) Performance (WARN) checkers on/off.
    let without = best_of(reps, || run(ops, 1, 256, false));
    print_table(
        "Ablation 3 — §5.1.2 performance checkers",
        &["configuration", "time", "relative"],
        &[
            vec![
                "with WARN checkers (default)".to_owned(),
                format!("{baseline:.2?}"),
                "1.00x".to_owned(),
            ],
            vec![
                "without".to_owned(),
                format!("{without:.2?}"),
                format!("{:.2}x", without.as_secs_f64() / baseline.as_secs_f64()),
            ],
        ],
    );
}
