//! **Table 6** — the real bugs: three known (reproduced from commit
//! history) and three newly found by PMTest, each at its analogous site in
//! this codebase, with the actual diagnostics printed.
//!
//! Run with: `cargo bench -p pmtest-bench --bench table6_real_bugs`

use std::sync::Arc;

use pmtest_bench::print_table;
use pmtest_core::{DiagKind, PmTestSession, Report};
use pmtest_pmem::{PersistMode, PmPool};
use pmtest_pmfs::{Pmfs, PmfsOptions};
use pmtest_txlib::ObjPool;
use pmtest_workloads::{gen, BTree, CheckMode, Fault, FaultSet, HashMapLl, KvMap, RbTree};

fn pmfs_run(opts: PmfsOptions) -> Report {
    let session = PmTestSession::builder().build();
    session.start();
    let pm = Arc::new(PmPool::new(1 << 19, session.sink()));
    let fs = Pmfs::format(pm, PmfsOptions { checkers: true, ..opts }).expect("format");
    let ino = fs.create("table.db").expect("create");
    session.send_trace();
    fs.write(ino, 0, b"row data").expect("write");
    session.send_trace();
    session.finish()
}

fn tree_run<K: KvMap>(make: impl FnOnce(Arc<ObjPool>) -> K, inserts: u64) -> Report {
    let session = PmTestSession::builder().build();
    session.start();
    let pm = Arc::new(PmPool::new(1 << 21, session.sink()));
    let pool = Arc::new(ObjPool::create(pm, 4096, PersistMode::X86).expect("pool"));
    let tree = make(pool);
    for k in 0..inserts {
        tree.insert(k, &gen::value_for(k, 16)).expect("insert");
        session.send_trace();
    }
    session.finish()
}

fn hashmap_ll_run(fault: Fault) -> Report {
    let session = PmTestSession::builder().build();
    session.start();
    let pm = Arc::new(PmPool::new(1 << 20, session.sink()));
    let heap = Arc::new(pmtest_pmem::PmHeap::new(pm, 4096));
    let map =
        HashMapLl::create(heap, 16, CheckMode::Checkers, FaultSet::one(fault)).expect("create");
    for k in 0..8u64 {
        map.insert(k, b"value").expect("insert");
        session.send_trace();
    }
    session.finish()
}

fn summarize(report: &Report, expect: DiagKind) -> (String, String) {
    let hit = report.iter().find(|d| d.kind == expect);
    match hit {
        Some(d) => ("detected".to_owned(), format!("{d}")),
        None => ("MISSED".to_owned(), format!("{report}")),
    }
}

fn main() {
    println!("Table 6 reproduction — known + new real bugs");
    let mut rows = Vec::new();
    let mut all = true;

    let cases: Vec<(&str, &str, DiagKind, Report)> = vec![
        (
            "known: xips.c:207/262",
            "flush the same persistent buffer twice",
            DiagKind::DuplicateFlush,
            hashmap_ll_run(Fault::HmLlDoubleFlushNode),
        ),
        (
            "known: files.c:232",
            "flush an unmapped (never-written) buffer",
            DiagKind::UnnecessaryFlush,
            pmfs_run(PmfsOptions { legacy_flush_unmapped: true, ..PmfsOptions::default() }),
        ),
        (
            "known: rbtree_map.c:379",
            "modify a tree node without logging it",
            DiagKind::MissingLog,
            tree_run(
                |p| {
                    RbTree::create(
                        p,
                        CheckMode::Checkers,
                        FaultSet::one(Fault::RbSkipLogRotatePivot),
                    )
                    .expect("rbtree")
                },
                16,
            ),
        ),
        (
            "new Bug 1: journal.c:632",
            "flush redundant data when committing",
            DiagKind::DuplicateFlush,
            pmfs_run(PmfsOptions { legacy_double_flush: true, ..PmfsOptions::default() }),
        ),
        (
            "new Bug 2: btree_map.c:201",
            "modify a tree node without logging it",
            DiagKind::MissingLog,
            tree_run(
                |p| {
                    BTree::create(
                        p,
                        CheckMode::Checkers,
                        FaultSet::one(Fault::BtreeSkipLogSplitNode),
                    )
                    .expect("btree")
                },
                8,
            ),
        ),
        (
            "new Bug 3: btree_map.c:367",
            "log the same object twice",
            DiagKind::DuplicateLog,
            tree_run(
                |p| {
                    BTree::create(
                        p,
                        CheckMode::Checkers,
                        FaultSet::one(Fault::BtreeDoubleLogSplitParent),
                    )
                    .expect("btree")
                },
                12,
            ),
        ),
    ];

    for (id, description, expect, report) in &cases {
        let (status, first) = summarize(report, *expect);
        if status != "detected" {
            all = false;
        }
        rows.push(vec![(*id).to_owned(), (*description).to_owned(), status, first]);
    }
    print_table(
        "Table 6 — real bugs",
        &["paper bug", "description", "result", "diagnostic"],
        &rows,
    );

    // The fixed variants are clean (the paper's fixes were merged by Intel
    // with credit to PMTest).
    let fixed_fs = pmfs_run(PmfsOptions::default());
    let fixed_btree =
        tree_run(|p| BTree::create(p, CheckMode::Checkers, FaultSet::none()).expect("btree"), 12);
    let fixed_rb =
        tree_run(|p| RbTree::create(p, CheckMode::Checkers, FaultSet::none()).expect("rbtree"), 16);
    println!(
        "\nfixed variants clean: pmfs={}, btree={}, rbtree={}",
        fixed_fs.is_clean(),
        fixed_btree.is_clean(),
        fixed_rb.is_clean()
    );
    assert!(all, "a Table 6 bug went undetected");
    assert!(fixed_fs.is_clean() && fixed_btree.is_clean() && fixed_rb.is_clean());
}
