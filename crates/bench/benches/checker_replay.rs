//! Per-entry cost of the fused trace replay, without the engine around it:
//! ns/entry as a function of trace length and live-segment count, for both
//! built-in models, on recycled vs fresh checker state.
//!
//! This isolates the per-trace checking floor the engine benchmark can only
//! see through the dispatch pipeline. The `recycled` rows replay through
//! [`check_trace_with`] on one persistent [`CheckerScratch`] — the engine
//! worker's steady state, where the shadow memory, interner, and segment
//! maps retain their allocations across traces. The `fresh` rows pay the
//! construction cost every trace ([`check_trace`]), which is what every
//! check cost before the shadow pool existed.
//!
//! Results are written to `bench_results/BENCH_checker.json`.
//!
//! Run with: `cargo bench -p pmtest-bench --bench checker_replay`

use std::fmt::Write as _;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pmtest_core::{
    check_trace, check_trace_with, CheckerScratch, HopsModel, PersistencyModel, X86Model,
};
use pmtest_interval::ByteRange;
use pmtest_trace::{Event, Trace};

/// Entries per trace: spans the engine bench's 4-entry short traces up to
/// replays long enough for per-trace setup cost to amortize away.
const TRACE_LENGTHS: [usize; 3] = [4, 64, 512];

/// Distinct segments the writes cycle over. 1 keeps the shadow memory at a
/// single segment; 64 crosses the segment map's flat→BTree threshold, so
/// the `recycled` rows also measure replay in the tree representation.
const LIVE_SEGMENTS: [usize; 3] = [1, 8, 64];

/// One persist block per segment touch: write, make-durable, check. The
/// block shape is the model's clean idiom (x86: clwb+sfence; HOPS:
/// ofence+dfence), so every trace replays diagnostic-free.
const ENTRIES_PER_BLOCK: usize = 4;

fn build_trace(model: &str, entries: usize, live: usize) -> Trace {
    let mut trace = Trace::new(0);
    let blocks = entries / ENTRIES_PER_BLOCK;
    for b in 0..blocks {
        // Stride 64 keeps segments disjoint and un-mergeable, so `live`
        // really is the number of live segments in the shadow memory.
        let r = ByteRange::with_len(((b % live) as u64) * 64, 8);
        trace.push(Event::Write(r).here());
        match model {
            "x86" => {
                trace.push(Event::Flush(r).here());
                trace.push(Event::Fence.here());
            }
            _ => {
                trace.push(Event::OFence.here());
                trace.push(Event::DFence.here());
            }
        }
        trace.push(Event::IsPersist(r).here());
    }
    trace
}

struct Sample {
    model: &'static str,
    entries: usize,
    live: usize,
    mode: &'static str,
    ns_per_entry: f64,
}

fn bench_model(
    c: &mut Criterion,
    samples: &mut Vec<Sample>,
    name: &'static str,
    model: &dyn PersistencyModel,
) {
    let mut group = c.benchmark_group(&format!("checker_replay_{name}"));
    for &entries in &TRACE_LENGTHS {
        for &live in &LIVE_SEGMENTS {
            let trace = build_trace(name, entries, live);
            assert!(
                check_trace(&trace, model).is_empty(),
                "{name} bench trace (len {entries}, live {live}) must check clean"
            );
            group.throughput(Throughput::Elements(entries as u64));
            let id = format!("len{entries}_live{live}");
            let mut scratch = CheckerScratch::new();
            group.bench_with_input(BenchmarkId::new("recycled", &id), &trace, |b, trace| {
                b.iter(|| check_trace_with(trace, model, &mut scratch))
            });
            let ns = group.last_estimate_ns().expect("benchmark just ran");
            samples.push(Sample {
                model: name,
                entries,
                live,
                mode: "recycled",
                ns_per_entry: ns / entries as f64,
            });
            group.bench_with_input(BenchmarkId::new("fresh", &id), &trace, |b, trace| {
                b.iter(|| check_trace(trace, model))
            });
            let ns = group.last_estimate_ns().expect("benchmark just ran");
            samples.push(Sample {
                model: name,
                entries,
                live,
                mode: "fresh",
                ns_per_entry: ns / entries as f64,
            });
        }
    }
    group.finish();
}

fn write_json(samples: &[Sample]) {
    let mut rows = String::new();
    for (i, s) in samples.iter().enumerate() {
        let _ = writeln!(
            rows,
            "    {{\"model\": \"{}\", \"entries\": {}, \"live_segments\": {}, \
             \"mode\": \"{}\", \"ns_per_entry\": {:.1}, \"ns_per_trace\": {:.1}}}{}",
            s.model,
            s.entries,
            s.live,
            s.mode,
            s.ns_per_entry,
            s.ns_per_entry * s.entries as f64,
            if i + 1 == samples.len() { "" } else { "," },
        );
    }
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"checker_replay\",\n",
            "  \"workload\": \"write + make-durable + isPersist blocks cycling over N disjoint \
             64B-strided segments; clean traces; single thread, no engine\",\n",
            "  \"modes\": \"recycled = check_trace_with on one persistent CheckerScratch \
             (engine steady state); fresh = checker state constructed per trace\",\n",
            "  \"results\": [\n{}  ]\n",
            "}}\n"
        ),
        rows,
    );
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../bench_results");
    std::fs::create_dir_all(dir).expect("create bench_results/");
    let path = format!("{dir}/BENCH_checker.json");
    std::fs::write(&path, &json).expect("write BENCH_checker.json");
    println!("\nwrote {path}");
    print!("{json}");
}

fn checker_replay(c: &mut Criterion) {
    let mut samples = Vec::new();
    bench_model(c, &mut samples, "x86", &X86Model::new());
    bench_model(c, &mut samples, "hops", &HopsModel::new());
    for s in &samples {
        println!(
            "{} len={:>3} live={:>2} {:>8}: {:>6.1} ns/entry",
            s.model, s.entries, s.live, s.mode, s.ns_per_entry
        );
    }
    write_json(&samples);
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(200));
    targets = checker_replay
}
criterion_main!(benches);
