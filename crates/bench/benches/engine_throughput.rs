//! Submission throughput of the checking engine: traces/second as a
//! function of worker count (1–16) and session batch capacity (1 vs 32),
//! under the short traces where dispatch overhead dominates (the regime of
//! Fig. 10a's microbenchmarks and Fig. 12b's scaling study) — plus
//! peak-ingest rows driving the engine through the owned `ThreadRecorder`
//! handle at large batch sizes.
//!
//! Each measured iteration submits a fixed round of short traces and ends
//! with the `PMTest_GET_RESULT` barrier, so the number includes checking,
//! not just enqueueing. Results are written to
//! `bench_results/BENCH_engine.json` together with the engine's pipeline
//! counters (ring occupancy high-water, backpressure stalls, steal counts,
//! batch totals) and the arena pool's recycling stats.
//!
//! Run with: `cargo bench -p pmtest-bench --bench engine_throughput`
//! (`PMTEST_BENCH_TRACES` overrides the per-round trace count.)

use std::fmt::Write as _;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pmtest_core::{PmTestSession, TelemetryConfig, ThreadRecorder};
use pmtest_interval::ByteRange;
use pmtest_trace::{Event, Sink};

/// Traces submitted per measured iteration (at least one per producer, so
/// a degenerate override cannot divide by zero in the rate math).
fn traces_per_round() -> u64 {
    std::env::var("PMTEST_BENCH_TRACES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000)
        .max(PRODUCERS)
}

/// Entries per trace: write + flush + fence + checker — the short-trace
/// shape of the paper's microbenchmarks.
const ENTRIES_PER_TRACE: u64 = 4;

/// Concurrent instrumented threads feeding the session, as in the paper's
/// multi-client setups (Fig. 12b). Several producers keep the dispatch path
/// contended, which is exactly what batching is meant to amortize.
const PRODUCERS: u64 = 4;

/// The worker-count axis of the matrix. 16 on a small host is deliberate:
/// it exercises the oversubscribed regime where the dispatch tie-break
/// matters most.
const WORKER_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];

/// Adding workers must never make throughput *worse* at the same batched
/// load: every batch-32 row from 1 to 16 workers may run up to this factor
/// above the 4-worker row (measurement noise) before the bench fails. The
/// rotating tie-break this originally guarded against regressed 8w/b32 to
/// 1.42x the 4-worker time; the flat-through-16 requirement pins the ingest
/// plane's work-stealing behaviour in the oversubscribed regime.
/// Set `PMTEST_BENCH_NO_ASSERT=1` (as CI's smoke run does) to report only.
const SCALING_SLACK: f64 = 1.15;

/// Oversubscription budget (the 155→187 ns w1→w16 drift guard): the
/// batch-32 floor at 16 workers may not exceed the single-worker floor by
/// more than this factor. [`SCALING_SLACK`] pins every b32 row to the
/// 4-worker row; this pins the far end of the axis to the near end, so the
/// whole curve has to stay flat, not just its middle.
/// Same `PMTEST_BENCH_NO_ASSERT=1` escape hatch.
const W16_VS_W1_SLACK: f64 = 1.25;

/// Minimum speedup of the cached repetitive-workload row over its uncached
/// twin (floor over floor). The workload repeats one 62-record trace shape,
/// so the cache serves ~everything after the first occurrence; anything
/// under 3x means the cached path stopped being a hash lookup.
const REP_SPEEDUP_MIN: f64 = 3.0;

/// Budget for the cached-probe microbench row: fingerprint + L1 lookup on
/// the short 4-entry trace shape, in nanoseconds (floor sample).
const CACHED_PROBE_BUDGET_NS: f64 = 40.0;

/// Minimum verdict-cache hit rate over the repetitive workload (count-based,
/// from the cache's own counters — not a timing number).
const REP_HIT_RATE_MIN: f64 = 0.95;

/// Telemetry-off budget against the *committed* baseline: with every
/// telemetry layer disabled (the default), the w4/b32 session row's floor
/// sample may not run more than this factor above the ns/trace recorded in
/// the committed `bench_results/BENCH_engine.json` (its floor field when
/// present, else its median). This is the guard that keeps the
/// observability layers honest — "off" has to keep compiling down to a
/// branch on an atomic. Same `PMTEST_BENCH_NO_ASSERT=1` escape hatch.
const BASELINE_SLACK: f64 = 1.05;

/// Records and submits one round of short traces from [`PRODUCERS`]
/// threads, then drains the engine.
fn run_round(session: &PmTestSession, traces: u64) {
    let per_producer = traces / PRODUCERS;
    std::thread::scope(|s| {
        for _ in 0..PRODUCERS {
            s.spawn(|| {
                session.thread_init();
                let r = ByteRange::with_len(0, 8);
                for _ in 0..per_producer {
                    session.record(Event::Write(r).here());
                    session.record(Event::Flush(r).here());
                    session.record(Event::Fence.here());
                    session.is_persist(r);
                    session.send_trace();
                }
            });
        }
    });
    let report = session.take_report();
    assert!(report.is_clean(), "bench traces must check clean");
}

/// Distinct 64-byte ranges per repetitive-workload trace. Well past the
/// clean-lane DFA's exact-match slots, so the uncached run pays the full
/// fused replay — the production-shaped cost the verdict cache memoizes.
const REP_RANGES: u64 = 30;

/// Records one repetitive-workload trace: [`REP_RANGES`] write+flush pairs
/// over distinct ranges, a fence, and a checker — 62 records, one shape,
/// identical on every call (same ranges, same source sites), which is what
/// makes the whole round a single cache fingerprint.
fn record_repetitive_trace(session: &PmTestSession) {
    for i in 0..REP_RANGES {
        let r = ByteRange::with_len(i * 64, 64);
        session.record(Event::Write(r).here());
        session.record(Event::Flush(r).here());
    }
    session.record(Event::Fence.here());
    session.is_persist(ByteRange::with_len(0, 64));
    session.send_trace();
}

/// Records and submits one round of repetitive-workload traces from
/// [`PRODUCERS`] threads, then drains the engine. The A/B pair of rows runs
/// this with the verdict cache off and on.
fn run_round_repetitive(session: &PmTestSession, traces: u64) {
    let per_producer = traces / PRODUCERS;
    std::thread::scope(|s| {
        for _ in 0..PRODUCERS {
            s.spawn(|| {
                session.thread_init();
                for _ in 0..per_producer {
                    record_repetitive_trace(session);
                }
            });
        }
    });
    let report = session.take_report();
    assert!(report.is_clean(), "bench traces must check clean");
}

/// One round of short traces through an owned [`ThreadRecorder`], inline on
/// the bench thread — the peak-ingest configuration: no `Sink`-path TLS, no
/// producer-thread spawns, one producer saturating the plane.
fn run_round_recorder(rec: &mut ThreadRecorder, session: &PmTestSession, traces: u64) {
    let r = ByteRange::with_len(0, 8);
    for _ in 0..traces {
        rec.record(Event::Write(r).here());
        rec.record(Event::Flush(r).here());
        rec.record(Event::Fence.here());
        rec.is_persist(r);
        rec.send_trace();
    }
    rec.flush();
    let report = session.take_report();
    assert!(report.is_clean(), "bench traces must check clean");
}

struct Sample {
    /// `"session"` for the 4-producer `Sink`-path rows, `"recorder"` for
    /// the single-producer owned-handle rows.
    path: &'static str,
    workers: usize,
    batch: usize,
    /// Median over the sample batches — the headline number reported in
    /// the JSON.
    ns_per_trace: f64,
    /// Best (minimum) sample batch — the cost floor. The regression guards
    /// compare floors: on a shared single-core host, scheduler noise only
    /// ever *adds* time, so a noisy-neighbor episode inflates the median
    /// but cannot lower the floor, while a real code-cost increase raises
    /// both.
    floor_ns_per_trace: f64,
}

impl Sample {
    fn traces_per_sec(&self) -> f64 {
        1e9 / self.ns_per_trace
    }

    fn floor_traces_per_sec(&self) -> f64 {
        1e9 / self.floor_ns_per_trace
    }
}

fn bench_matrix(c: &mut Criterion) -> Vec<Sample> {
    let traces = traces_per_round();
    let mut samples = Vec::new();
    let mut group = c.benchmark_group("engine_throughput");
    group.throughput(Throughput::Elements(traces));
    for &workers in &WORKER_COUNTS {
        for &batch in &[1usize, 32] {
            // Queue depth left to the derived default (256/batch, floored
            // at 32): bounded like the kernel FIFO (§4.5), so dispatch cost
            // includes the producer/worker handoff, without the pinned
            // depth-4 queues that used to stall batched rounds.
            let session = PmTestSession::builder().workers(workers).batch_capacity(batch).build();
            session.start();
            run_round(&session, traces); // warm the buffer pool
            group.bench_with_input(
                BenchmarkId::new(format!("w{workers}"), format!("b{batch}")),
                &traces,
                |b, &traces| b.iter(|| run_round(&session, traces)),
            );
            let per_round_ns = group.last_estimate_ns().expect("benchmark just ran");
            let floor_ns = group.last_best_ns().expect("benchmark just ran");
            samples.push(Sample {
                path: "session",
                workers,
                batch,
                ns_per_trace: per_round_ns / traces as f64,
                floor_ns_per_trace: floor_ns / traces as f64,
            });
        }
    }
    // A/B row: the reference w4/b32 configuration with every telemetry
    // layer on (stage timing, event log, flight recorder, span tracing).
    // Not part of the scaling assertion — it exists so the overhead of the
    // observability plane is measured in every run, next to the off row it
    // is compared against.
    {
        let session = PmTestSession::builder()
            .workers(4)
            .batch_capacity(32)
            .telemetry(TelemetryConfig::enabled().with_tracing())
            .build();
        session.start();
        run_round(&session, traces); // warm the buffer pool
        group.bench_with_input(BenchmarkId::new("telemetry_w4", "b32"), &traces, |b, &traces| {
            b.iter(|| run_round(&session, traces))
        });
        let per_round_ns = group.last_estimate_ns().expect("benchmark just ran");
        let floor_ns = group.last_best_ns().expect("benchmark just ran");
        samples.push(Sample {
            path: "session-telemetry",
            workers: 4,
            batch: 32,
            ns_per_trace: per_round_ns / traces as f64,
            floor_ns_per_trace: floor_ns / traces as f64,
        });
    }
    // A/B row: the reference configuration with only the cross-trace
    // profiler on. The profiling decode walk runs on the replay path, so
    // this row prices the advisor's data collection; the profiling-*off*
    // guard is the plain w4/b32 row above, whose floor assertion keeps the
    // disabled-path cost (one relaxed load) from regressing.
    {
        let session = PmTestSession::builder()
            .workers(4)
            .batch_capacity(32)
            .telemetry(TelemetryConfig::profiling_only())
            .build();
        session.start();
        run_round(&session, traces); // warm the buffer pool
        group.bench_with_input(BenchmarkId::new("profiling_w4", "b32"), &traces, |b, &traces| {
            b.iter(|| run_round(&session, traces))
        });
        let per_round_ns = group.last_estimate_ns().expect("benchmark just ran");
        let floor_ns = group.last_best_ns().expect("benchmark just ran");
        samples.push(Sample {
            path: "session-profiling",
            workers: 4,
            batch: 32,
            ns_per_trace: per_round_ns / traces as f64,
            floor_ns_per_trace: floor_ns / traces as f64,
        });
    }
    // Repetitive-workload A/B rows: one 62-record trace shape repeated for
    // the whole round, checked with the verdict cache off (`session-rep`,
    // the full fused-replay cost) and on (`session-cached`, a fingerprint
    // plus an L1 probe per trace after the first). The ratio of the two
    // floors is the memoization win on production-shaped traffic.
    for cached in [false, true] {
        let session =
            PmTestSession::builder().workers(4).batch_capacity(32).verdict_cache(cached).build();
        session.start();
        run_round_repetitive(&session, traces); // warm pools and cache
        let id = if cached { "cached_w4" } else { "rep_w4" };
        group.bench_with_input(BenchmarkId::new(id, "b32"), &traces, |b, &traces| {
            b.iter(|| run_round_repetitive(&session, traces))
        });
        let per_round_ns = group.last_estimate_ns().expect("benchmark just ran");
        let floor_ns = group.last_best_ns().expect("benchmark just ran");
        samples.push(Sample {
            path: if cached { "session-cached" } else { "session-rep" },
            workers: 4,
            batch: 32,
            ns_per_trace: per_round_ns / traces as f64,
            floor_ns_per_trace: floor_ns / traces as f64,
        });
    }
    // Cached-probe microbench row: the marginal cost of the cached path in
    // isolation — fingerprint the short 4-entry trace shape and probe a
    // resident L1 entry. No engine, no dispatch: this is the number the
    // <=40 ns/trace cached-path budget pins.
    {
        use pmtest_core::cache::{CachedVerdict, VerdictCache, WorkerCache};
        use pmtest_core::VerdictCacheConfig;
        let mut words = Vec::new();
        let r = ByteRange::with_len(0, 8);
        for event in [Event::Write(r), Event::Flush(r), Event::Fence, Event::IsPersist(r)] {
            pmtest_trace::packed::encode_into(&mut words, event.here());
        }
        let cache = VerdictCache::new(&VerdictCacheConfig::default());
        let mut wc = WorkerCache::new();
        let fp = wc.fingerprint(&words);
        wc.install(&cache, fp, CachedVerdict::new(Vec::new(), None));
        group.bench_with_input(BenchmarkId::new("cached_probe", "b1"), &traces, |b, _| {
            b.iter(|| {
                let fp = wc.fingerprint(criterion::black_box(&words));
                criterion::black_box(wc.lookup(&cache, fp, false).is_some())
            })
        });
        let per_iter_ns = group.last_estimate_ns().expect("benchmark just ran");
        let floor_ns = group.last_best_ns().expect("benchmark just ran");
        samples.push(Sample {
            path: "cached-probe",
            workers: 1,
            batch: 1,
            ns_per_trace: per_iter_ns,
            floor_ns_per_trace: floor_ns,
        });
    }
    // Peak-ingest rows: one producer recording through the owned handle.
    for &(workers, batch) in &[(1usize, 256usize), (1, 1024), (2, 1024)] {
        let session = PmTestSession::builder().workers(workers).batch_capacity(batch).build();
        session.start();
        let mut rec = session.recorder();
        run_round_recorder(&mut rec, &session, traces); // warm the pools
        group.bench_with_input(
            BenchmarkId::new(format!("rec_w{workers}"), format!("b{batch}")),
            &traces,
            |b, &traces| b.iter(|| run_round_recorder(&mut rec, &session, traces)),
        );
        let per_round_ns = group.last_estimate_ns().expect("benchmark just ran");
        let floor_ns = group.last_best_ns().expect("benchmark just ran");
        samples.push(Sample {
            path: "recorder",
            workers,
            batch,
            ns_per_trace: per_round_ns / traces as f64,
            floor_ns_per_trace: floor_ns / traces as f64,
        });
    }
    group.finish();
    samples
}

/// Engine/pool counters from one instrumented 4-worker batch-32 round, for
/// the JSON report.
fn stats_sample(traces: u64) -> String {
    let session = PmTestSession::builder().workers(4).batch_capacity(32).build();
    session.start();
    run_round(&session, traces);
    run_round(&session, traces);
    let stats = session.stats();
    let pool = session.pool_stats();
    let snap = session.telemetry_snapshot();
    let shadow_recycled = snap.counter("shadow_pool_recycled").unwrap_or(0);
    let shadow_fresh = snap.counter("shadow_pool_fresh").unwrap_or(0);
    let shadow_hit = snap.gauge("shadow_pool_hit_rate").unwrap_or(0.0);
    let repr_switches = snap.counter("engine_segmap_repr_switches").unwrap_or(0);
    let mut s = String::new();
    let _ = write!(
        s,
        concat!(
            "{{\n",
            "    \"workers\": 4,\n",
            "    \"batch_capacity\": 32,\n",
            "    \"queue_capacity\": {},\n",
            "    \"traces_submitted\": {},\n",
            "    \"batches_submitted\": {},\n",
            "    \"mean_batch_size\": {:.2},\n",
            "    \"ring_occupancy_highwater\": {},\n",
            "    \"backpressure_stalls\": {},\n",
            "    \"steals\": {},\n",
            "    \"rings_registered\": {},\n",
            "    \"pool_recycled\": {},\n",
            "    \"pool_fresh\": {},\n",
            "    \"pool_hit_rate\": {:.4},\n",
            "    \"shadow_pool_recycled\": {},\n",
            "    \"shadow_pool_fresh\": {},\n",
            "    \"shadow_pool_hit_rate\": {:.4},\n",
            "    \"segmap_repr_switches\": {}\n",
            "  }}"
        ),
        session.queue_capacity(),
        stats.traces_submitted,
        stats.batches_submitted,
        stats.mean_batch_size(),
        stats.queue_highwater,
        stats.backpressure_stalls,
        stats.steals,
        stats.rings_registered,
        pool.recycled,
        pool.fresh,
        pool.hit_rate(),
        shadow_recycled,
        shadow_fresh,
        shadow_hit,
        repr_switches,
    );
    s
}

/// Verdict-cache counters from one cache-on repetitive round at the
/// reference w4/b32 configuration: the JSON block plus the count-based hit
/// rate the [`REP_HIT_RATE_MIN`] guard checks. A dedicated run (not the
/// timed rows) so the counters describe exactly one warm round.
fn verdict_cache_sample(traces: u64) -> (String, f64) {
    let session =
        PmTestSession::builder().workers(4).batch_capacity(32).verdict_cache(true).build();
    session.start();
    run_round_repetitive(&session, traces); // cold round: populates the cache
    run_round_repetitive(&session, traces); // warm round
    let stats = session.verdict_cache_stats().expect("cache enabled");
    let mut s = String::new();
    let _ = write!(
        s,
        concat!(
            "{{\n",
            "    \"workers\": 4,\n",
            "    \"batch_capacity\": 32,\n",
            "    \"l1_hits\": {},\n",
            "    \"l2_hits\": {},\n",
            "    \"misses\": {},\n",
            "    \"bypasses\": {},\n",
            "    \"inserts\": {},\n",
            "    \"evictions\": {},\n",
            "    \"bytes_resident\": {},\n",
            "    \"entries\": {},\n",
            "    \"hit_rate\": {:.4}\n",
            "  }}"
        ),
        stats.l1_hits,
        stats.l2_hits,
        stats.misses,
        stats.bypasses,
        stats.inserts,
        stats.evictions,
        stats.bytes_resident,
        stats.entries,
        stats.hit_rate(),
    );
    (s, stats.hit_rate())
}

fn write_json(samples: &[Sample], traces: u64, verdict_cache: &str) {
    let speedup_at = |workers: usize| -> Option<f64> {
        let b1 =
            samples.iter().find(|s| s.path == "session" && s.workers == workers && s.batch == 1)?;
        let b32 = samples
            .iter()
            .find(|s| s.path == "session" && s.workers == workers && s.batch == 32)?;
        Some(b1.ns_per_trace / b32.ns_per_trace)
    };
    let mut rows = String::new();
    for (i, s) in samples.iter().enumerate() {
        let _ = writeln!(
            rows,
            "    {{\"path\": \"{}\", \"workers\": {}, \"batch\": {}, \"ns_per_trace\": {:.1}, \"ns_per_trace_floor\": {:.1}, \"traces_per_sec\": {:.0}}}{}",
            s.path,
            s.workers,
            s.batch,
            s.ns_per_trace,
            s.floor_ns_per_trace,
            s.traces_per_sec(),
            if i + 1 == samples.len() { "" } else { "," },
        );
    }
    let mut speedups = String::new();
    for (i, &w) in WORKER_COUNTS.iter().enumerate() {
        if let Some(sp) = speedup_at(w) {
            let _ = writeln!(
                speedups,
                "    \"{}\": {:.2}{}",
                w,
                sp,
                if i + 1 == WORKER_COUNTS.len() { "" } else { "," },
            );
        }
    }
    // Peak is an end-to-end number (recorded, shipped, checked); the
    // cached-probe microbench runs no engine and must not claim it.
    let peak = samples
        .iter()
        .filter(|s| s.path != "cached-probe")
        .max_by(|a, b| a.traces_per_sec().total_cmp(&b.traces_per_sec()))
        .expect("bench produced samples");
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"engine_throughput\",\n",
            "  \"traces_per_round\": {},\n",
            "  \"entries_per_trace\": {},\n",
            "  \"workload\": \"short traces: write+flush+fence+isPersist; session rows: 4 producer threads via the Sink path; session-rep/session-cached rows: one 62-record repetitive shape (30 distinct write+flush ranges) with the verdict cache off/on; cached-probe row: fingerprint + L1 lookup only, no engine; recorder rows: 1 inline producer via the owned ThreadRecorder handle; ring capacity derived (256/batch, min 32)\",\n",
            "  \"telemetry\": \"all layers off (default) except the session-telemetry A/B row (timing + events + recorder + tracing on) and the session-profiling A/B row (cross-trace profiler only); per-producer SPSC rings with work-stealing workers; producers record packed records into recycled arenas; clean traces take the packed DFA lane, the rest the fused replay on recycled CheckerScratch state; session-cached serves repeats from the content-addressed verdict cache\",\n",
            "  \"results\": [\n{}  ],\n",
            "  \"peak\": {{\"path\": \"{}\", \"workers\": {}, \"batch\": {}, \"ns_per_trace\": {:.1}, \"traces_per_sec\": {:.0}}},\n",
            "  \"speedup_batch32_over_batch1_by_workers\": {{\n{}  }},\n",
            "  \"verdict_cache_sample\": {},\n",
            "  \"stats_sample\": {}\n",
            "}}\n"
        ),
        traces,
        ENTRIES_PER_TRACE,
        rows,
        peak.path,
        peak.workers,
        peak.batch,
        peak.ns_per_trace,
        peak.traces_per_sec(),
        speedups,
        verdict_cache,
        stats_sample(traces),
    );
    // cargo sets the bench cwd to crates/bench; anchor the output at the
    // workspace root so it lands in the committed bench_results/.
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../bench_results");
    std::fs::create_dir_all(dir).expect("create bench_results/");
    let path = format!("{dir}/BENCH_engine.json");
    std::fs::write(&path, &json).expect("write BENCH_engine.json");
    println!("\nwrote {path}");
    print!("{json}");
}

/// Pins flat scaling through the whole worker axis: at batch 32, no worker
/// count from 1 to 16 may be slower than the 4-worker row by more than
/// [`SCALING_SLACK`] of noise — adding (or removing) workers must never
/// cost throughput on this host. Skipped when `PMTEST_BENCH_NO_ASSERT=1` —
/// CI smoke runs are report-only.
fn assert_scaling(samples: &[Sample]) {
    if std::env::var_os("PMTEST_BENCH_NO_ASSERT").is_some() {
        println!("scaling assertion skipped (PMTEST_BENCH_NO_ASSERT)");
        return;
    }
    // Floors, not medians: a noisy-neighbor episode on this shared host
    // inflates whole sampling windows, and the inversion being guarded
    // against shows up in the floor just the same.
    let at = |workers: usize| {
        samples
            .iter()
            .find(|s| s.path == "session" && s.workers == workers && s.batch == 32)
            .map(|s| s.floor_ns_per_trace)
    };
    let Some(w4) = at(4) else { return };
    for &workers in &WORKER_COUNTS {
        let Some(t) = at(workers) else { continue };
        assert!(
            t <= w4 * SCALING_SLACK,
            "scaling inversion: {t:.1} ns/trace (floor) at w{workers}/b32 vs {w4:.1} at w4/b32 \
             (limit {:.1})",
            w4 * SCALING_SLACK,
        );
    }
    println!(
        "scaling assertion ok: every b32 floor within {SCALING_SLACK}x of w4/b32 ({w4:.1} ns)"
    );
    // Pin the far end of the axis to the near end: the oversubscribed
    // 16-worker row may not drift past the single-worker floor by more than
    // the [`W16_VS_W1_SLACK`] budget.
    if let (Some(w1), Some(w16)) = (at(1), at(16)) {
        assert!(
            w16 <= w1 * W16_VS_W1_SLACK,
            "oversubscription drift: {w16:.1} ns/trace (floor) at w16/b32 vs {w1:.1} at w1/b32 \
             (limit {:.1})",
            w1 * W16_VS_W1_SLACK,
        );
        println!(
            "oversubscription budget ok: w16/b32 floor {w16:.1} ns within {W16_VS_W1_SLACK}x \
             of w1/b32 floor {w1:.1} ns"
        );
    }
    // The ingest plane's headline number: the best configuration must clear
    // ten million short traces per second end to end (recorded, shipped,
    // and checked) on this host.
    let peak = samples
        .iter()
        .filter(|s| s.path != "cached-probe")
        .map(|s| s.floor_traces_per_sec())
        .fold(0.0f64, f64::max);
    assert!(
        peak >= 10e6,
        "peak throughput regression: best config reached {:.2}M traces/s, need >= 10M",
        peak / 1e6,
    );
    println!("peak throughput ok: {:.2}M traces/s best config", peak / 1e6);
}

/// The verdict-cache guards: the cached repetitive row must beat its
/// uncached twin by [`REP_SPEEDUP_MIN`] (floor over floor), the cached-probe
/// microbench must fit the [`CACHED_PROBE_BUDGET_NS`] budget, and the
/// count-based hit rate of the warm repetitive round must clear
/// [`REP_HIT_RATE_MIN`]. Same `PMTEST_BENCH_NO_ASSERT=1` escape hatch.
fn assert_verdict_cache(samples: &[Sample], hit_rate: f64) {
    let at = |path: &str| samples.iter().find(|s| s.path == path);
    if let (Some(rep), Some(cached)) = (at("session-rep"), at("session-cached")) {
        println!(
            "verdict-cache A/B at w4/b32: off {:.1} ns/trace, on {:.1} ns/trace \
             ({:.1}x floor speedup, hit rate {:.4})",
            rep.ns_per_trace,
            cached.ns_per_trace,
            rep.floor_ns_per_trace / cached.floor_ns_per_trace,
            hit_rate,
        );
    }
    if std::env::var_os("PMTEST_BENCH_NO_ASSERT").is_some() {
        println!("verdict-cache guards skipped (PMTEST_BENCH_NO_ASSERT)");
        return;
    }
    let (Some(rep), Some(cached)) = (at("session-rep"), at("session-cached")) else { return };
    let speedup = rep.floor_ns_per_trace / cached.floor_ns_per_trace;
    assert!(
        speedup >= REP_SPEEDUP_MIN,
        "verdict-cache speedup regression: cached row {:.1} ns/trace (floor) is only {speedup:.2}x \
         the uncached {:.1} ns/trace, need >= {REP_SPEEDUP_MIN}x",
        cached.floor_ns_per_trace,
        rep.floor_ns_per_trace,
    );
    if let Some(probe) = at("cached-probe") {
        assert!(
            probe.floor_ns_per_trace <= CACHED_PROBE_BUDGET_NS,
            "cached-path budget blown: fingerprint + L1 probe costs {:.1} ns (floor), \
             budget {CACHED_PROBE_BUDGET_NS} ns",
            probe.floor_ns_per_trace,
        );
    }
    assert!(
        hit_rate >= REP_HIT_RATE_MIN,
        "verdict-cache hit rate {hit_rate:.4} below {REP_HIT_RATE_MIN} on the repetitive workload",
    );
    println!(
        "verdict-cache guards ok: {speedup:.2}x speedup, probe floor {:.1} ns, hit rate {hit_rate:.4}",
        at("cached-probe").map_or(f64::NAN, |s| s.floor_ns_per_trace),
    );
}

/// The w4/b32 session ns/trace recorded in the *committed*
/// `bench_results/BENCH_engine.json`, read before this run overwrites it.
/// Prefers the floor (`ns_per_trace_floor`) when the committed file carries
/// one, falling back to the median for files written before the floor field
/// existed. `None` when the file is missing or does not carry the row
/// (first run on a fresh checkout).
fn committed_baseline_w4_b32() -> Option<f64> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../bench_results/BENCH_engine.json");
    let text = std::fs::read_to_string(path).ok()?;
    let doc = pmtest_obs::json::parse(&text).ok()?;
    let rows = match doc.get("results")? {
        pmtest_obs::json::JsonValue::Array(rows) => rows,
        _ => return None,
    };
    let row = rows.iter().find(|r| {
        r.get("path").and_then(|v| v.as_str()) == Some("session")
            && r.get("workers").and_then(|v| v.as_f64()) == Some(4.0)
            && r.get("batch").and_then(|v| v.as_f64()) == Some(32.0)
    })?;
    row.get("ns_per_trace_floor").or_else(|| row.get("ns_per_trace")).and_then(|v| v.as_f64())
}

/// The telemetry-off A/B guard: the default-config w4/b32 row must stay
/// within [`BASELINE_SLACK`] of the committed baseline, and the all-layers-on
/// row is reported next to it so the overhead is visible in every run. The
/// guarded number is the *floor* sample (see [`Sample`]): a 5% tolerance is
/// tighter than this shared host's run-to-run median swing, and only the
/// floor separates real added cost from a noisy neighbor.
fn assert_telemetry_budget(samples: &[Sample], baseline: Option<f64>) {
    let at =
        |path: &str| samples.iter().find(|s| s.path == path && s.workers == 4 && s.batch == 32);
    let Some(off) = at("session") else { return };
    if let Some(on) = at("session-telemetry") {
        println!(
            "telemetry A/B at w4/b32: off {:.1} ns/trace, all layers on {:.1} ns/trace \
             ({:+.1}%)",
            off.ns_per_trace,
            on.ns_per_trace,
            (on.ns_per_trace / off.ns_per_trace - 1.0) * 100.0,
        );
    }
    if let Some(on) = at("session-profiling") {
        println!(
            "profiling A/B at w4/b32: off {:.1} ns/trace, profiler on {:.1} ns/trace \
             ({:+.1}%)",
            off.ns_per_trace,
            on.ns_per_trace,
            (on.ns_per_trace / off.ns_per_trace - 1.0) * 100.0,
        );
    }
    if std::env::var_os("PMTEST_BENCH_NO_ASSERT").is_some() {
        println!("telemetry-off budget skipped (PMTEST_BENCH_NO_ASSERT)");
        return;
    }
    let Some(base) = baseline else {
        println!("telemetry-off budget skipped (no committed baseline row)");
        return;
    };
    let floor = off.floor_ns_per_trace;
    assert!(
        floor <= base * BASELINE_SLACK,
        "telemetry-off regression: {floor:.1} ns/trace (floor) at w4/b32 vs committed baseline \
         {base:.1} (limit {:.1})",
        base * BASELINE_SLACK,
    );
    println!(
        "telemetry-off budget ok: {floor:.1} ns/trace (floor) at w4/b32 within {BASELINE_SLACK}x \
         of committed {base:.1}"
    );
}

fn engine_throughput(c: &mut Criterion) {
    let traces = traces_per_round();
    // Read the committed baseline before write_json replaces the file.
    let baseline = committed_baseline_w4_b32();
    let samples = bench_matrix(c);
    for s in &samples {
        println!(
            "{:>8} workers={} batch={:>4}: {:>7.1} ns/trace ({:.2} M traces/s)",
            s.path,
            s.workers,
            s.batch,
            s.ns_per_trace,
            s.traces_per_sec() / 1e6
        );
    }
    let (cache_json, hit_rate) = verdict_cache_sample(traces);
    write_json(&samples, traces, &cache_json);
    assert_scaling(&samples);
    assert_telemetry_budget(&samples, baseline);
    assert_verdict_cache(&samples, hit_rate);
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(200));
    targets = engine_throughput
}
criterion_main!(benches);
