//! Submission throughput of the checking engine: traces/second as a
//! function of worker count (1–16) and session batch capacity (1 vs 32),
//! under the short traces where dispatch overhead dominates (the regime of
//! Fig. 10a's microbenchmarks and Fig. 12b's scaling study).
//!
//! Each measured iteration submits a fixed round of short traces through a
//! `PmTestSession` and ends with the `PMTest_GET_RESULT` barrier, so the
//! number includes checking, not just enqueueing. Results are written to
//! `bench_results/BENCH_engine.json` together with the engine's new
//! pipeline counters (queue high-water mark, backpressure stalls, batch
//! totals) and the buffer pool's recycling stats.
//!
//! Run with: `cargo bench -p pmtest-bench --bench engine_throughput`
//! (`PMTEST_BENCH_TRACES` overrides the per-round trace count.)

use std::fmt::Write as _;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pmtest_core::PmTestSession;
use pmtest_interval::ByteRange;
use pmtest_trace::{Event, Sink};

/// Traces submitted per measured iteration (at least one per producer, so
/// a degenerate override cannot divide by zero in the rate math).
fn traces_per_round() -> u64 {
    std::env::var("PMTEST_BENCH_TRACES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000)
        .max(PRODUCERS)
}

/// Entries per trace: write + flush + fence + checker — the short-trace
/// shape of the paper's microbenchmarks.
const ENTRIES_PER_TRACE: u64 = 4;

/// Concurrent instrumented threads feeding the session, as in the paper's
/// multi-client setups (Fig. 12b). Several producers keep the dispatch path
/// contended, which is exactly what batching is meant to amortize.
const PRODUCERS: u64 = 4;

/// The worker-count axis of the matrix. 16 on a small host is deliberate:
/// it exercises the oversubscribed regime where the dispatch tie-break
/// matters most.
const WORKER_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];

/// Adding workers must never make throughput *worse* at the same batched
/// load: the 8-worker row may run up to this factor above the 4-worker row
/// (measurement noise) before the bench fails. The rotating tie-break this
/// guards against regressed 8w/b32 to 1.42x the 4-worker time.
/// Set `PMTEST_BENCH_NO_ASSERT=1` (as CI's smoke run does) to report only.
const SCALING_SLACK: f64 = 1.15;

/// Records and submits one round of short traces from [`PRODUCERS`]
/// threads, then drains the engine.
fn run_round(session: &PmTestSession, traces: u64) {
    let per_producer = traces / PRODUCERS;
    std::thread::scope(|s| {
        for _ in 0..PRODUCERS {
            s.spawn(|| {
                session.thread_init();
                let r = ByteRange::with_len(0, 8);
                for _ in 0..per_producer {
                    session.record(Event::Write(r).here());
                    session.record(Event::Flush(r).here());
                    session.record(Event::Fence.here());
                    session.is_persist(r);
                    session.send_trace();
                }
            });
        }
    });
    let report = session.take_report();
    assert!(report.is_clean(), "bench traces must check clean");
}

struct Sample {
    workers: usize,
    batch: usize,
    ns_per_trace: f64,
}

impl Sample {
    fn traces_per_sec(&self) -> f64 {
        1e9 / self.ns_per_trace
    }
}

fn bench_matrix(c: &mut Criterion) -> Vec<Sample> {
    let traces = traces_per_round();
    let mut samples = Vec::new();
    let mut group = c.benchmark_group("engine_throughput");
    group.throughput(Throughput::Elements(traces));
    for &workers in &WORKER_COUNTS {
        for &batch in &[1usize, 32] {
            // Queue depth left to the derived default (256/batch, floored
            // at 8): bounded like the kernel FIFO (§4.5), so dispatch cost
            // includes the producer/worker handoff, without the pinned
            // depth-4 queues that used to stall batched rounds.
            let session = PmTestSession::builder().workers(workers).batch_capacity(batch).build();
            session.start();
            run_round(&session, traces); // warm the buffer pool
            group.bench_with_input(
                BenchmarkId::new(format!("w{workers}"), format!("b{batch}")),
                &traces,
                |b, &traces| b.iter(|| run_round(&session, traces)),
            );
            let per_round_ns = group.last_estimate_ns().expect("benchmark just ran");
            samples.push(Sample { workers, batch, ns_per_trace: per_round_ns / traces as f64 });
        }
    }
    group.finish();
    samples
}

/// Engine/pool counters from one instrumented 4-worker batch-32 round, for
/// the JSON report.
fn stats_sample(traces: u64) -> String {
    let session = PmTestSession::builder().workers(4).batch_capacity(32).build();
    session.start();
    run_round(&session, traces);
    run_round(&session, traces);
    let stats = session.stats();
    let pool = session.pool_stats();
    let snap = session.telemetry_snapshot();
    let shadow_recycled = snap.counter("shadow_pool_recycled").unwrap_or(0);
    let shadow_fresh = snap.counter("shadow_pool_fresh").unwrap_or(0);
    let shadow_hit = snap.gauge("shadow_pool_hit_rate").unwrap_or(0.0);
    let repr_switches = snap.counter("engine_segmap_repr_switches").unwrap_or(0);
    let mut s = String::new();
    let _ = write!(
        s,
        concat!(
            "{{\n",
            "    \"workers\": 4,\n",
            "    \"batch_capacity\": 32,\n",
            "    \"queue_capacity\": {},\n",
            "    \"traces_submitted\": {},\n",
            "    \"batches_submitted\": {},\n",
            "    \"mean_batch_size\": {:.2},\n",
            "    \"queue_highwater\": {},\n",
            "    \"backpressure_stalls\": {},\n",
            "    \"pool_recycled\": {},\n",
            "    \"pool_fresh\": {},\n",
            "    \"pool_hit_rate\": {:.4},\n",
            "    \"shadow_pool_recycled\": {},\n",
            "    \"shadow_pool_fresh\": {},\n",
            "    \"shadow_pool_hit_rate\": {:.4},\n",
            "    \"segmap_repr_switches\": {}\n",
            "  }}"
        ),
        session.queue_capacity(),
        stats.traces_submitted,
        stats.batches_submitted,
        stats.mean_batch_size(),
        stats.queue_highwater,
        stats.backpressure_stalls,
        pool.recycled,
        pool.fresh,
        pool.hit_rate(),
        shadow_recycled,
        shadow_fresh,
        shadow_hit,
        repr_switches,
    );
    s
}

fn write_json(samples: &[Sample], traces: u64) {
    let speedup_at = |workers: usize| -> Option<f64> {
        let b1 = samples.iter().find(|s| s.workers == workers && s.batch == 1)?;
        let b32 = samples.iter().find(|s| s.workers == workers && s.batch == 32)?;
        Some(b1.ns_per_trace / b32.ns_per_trace)
    };
    let mut rows = String::new();
    for (i, s) in samples.iter().enumerate() {
        let _ = writeln!(
            rows,
            "    {{\"workers\": {}, \"batch\": {}, \"ns_per_trace\": {:.1}, \"traces_per_sec\": {:.0}}}{}",
            s.workers,
            s.batch,
            s.ns_per_trace,
            s.traces_per_sec(),
            if i + 1 == samples.len() { "" } else { "," },
        );
    }
    let mut speedups = String::new();
    for (i, &w) in WORKER_COUNTS.iter().enumerate() {
        if let Some(sp) = speedup_at(w) {
            let _ = writeln!(
                speedups,
                "    \"{}\": {:.2}{}",
                w,
                sp,
                if i + 1 == WORKER_COUNTS.len() { "" } else { "," },
            );
        }
    }
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"engine_throughput\",\n",
            "  \"traces_per_round\": {},\n",
            "  \"entries_per_trace\": {},\n",
            "  \"workload\": \"short traces: write+flush+fence+isPersist, 4 producer threads, queue capacity derived (256/batch, min 8)\",\n",
            "  \"telemetry\": \"all layers off (default); workers run the fused single-pass replay on recycled CheckerScratch state (shadow pool); dispatch is submitter-affinity with a fill-first spill bounded by host parallelism\",\n",
            "  \"results\": [\n{}  ],\n",
            "  \"speedup_batch32_over_batch1_by_workers\": {{\n{}  }},\n",
            "  \"stats_sample\": {}\n",
            "}}\n"
        ),
        traces,
        ENTRIES_PER_TRACE,
        rows,
        speedups,
        stats_sample(traces),
    );
    // cargo sets the bench cwd to crates/bench; anchor the output at the
    // workspace root so it lands in the committed bench_results/.
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../bench_results");
    std::fs::create_dir_all(dir).expect("create bench_results/");
    let path = format!("{dir}/BENCH_engine.json");
    std::fs::write(&path, &json).expect("write BENCH_engine.json");
    println!("\nwrote {path}");
    print!("{json}");
}

/// Pins the 8-worker inversion fix: at batch 32, going from 4 to 8 workers
/// must not cost throughput (up to [`SCALING_SLACK`] of noise). Skipped
/// when `PMTEST_BENCH_NO_ASSERT=1` — CI smoke runs are report-only.
fn assert_scaling(samples: &[Sample]) {
    if std::env::var_os("PMTEST_BENCH_NO_ASSERT").is_some() {
        println!("scaling assertion skipped (PMTEST_BENCH_NO_ASSERT)");
        return;
    }
    let at = |workers: usize| {
        samples.iter().find(|s| s.workers == workers && s.batch == 32).map(|s| s.ns_per_trace)
    };
    let (Some(w4), Some(w8)) = (at(4), at(8)) else { return };
    assert!(
        w8 <= w4 * SCALING_SLACK,
        "8-worker scaling inversion: {w8:.1} ns/trace at w8/b32 vs {w4:.1} at w4/b32 \
         (limit {:.1})",
        w4 * SCALING_SLACK,
    );
    println!("scaling assertion ok: w8/b32 {w8:.1} ns <= w4/b32 {w4:.1} ns x {SCALING_SLACK}");
}

fn engine_throughput(c: &mut Criterion) {
    let traces = traces_per_round();
    let samples = bench_matrix(c);
    for s in &samples {
        println!(
            "workers={} batch={:>2}: {:>7.1} ns/trace ({:.2} M traces/s)",
            s.workers,
            s.batch,
            s.ns_per_trace,
            s.traces_per_sec() / 1e6
        );
    }
    write_json(&samples, traces);
    assert_scaling(&samples);
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(200));
    targets = engine_throughput
}
criterion_main!(benches);
