//! **Fig. 10b** — PMTest overhead breakdown: tracking/framework cost vs
//! checker cost.
//!
//! Paper shape: because checking is decoupled onto worker threads, the
//! checkers contribute only a minority of the total overhead (paper:
//! 18.9%–37.8%).
//!
//! Run with: `cargo bench -p pmtest-bench --bench fig10b_breakdown`

use pmtest_bench::{
    bench_ops, bench_reps, median_time, print_table, run_micro, slowdown, Micro, Tool,
};

const TX_SIZES: [usize; 4] = [64, 256, 1024, 4096];

fn main() {
    let ops = bench_ops();
    let reps = bench_reps();
    println!("Fig. 10b reproduction — {ops} insertions per point, median of {reps} runs");

    let mut rows = Vec::new();
    let mut checker_fractions = Vec::new();
    for micro in Micro::ALL {
        for &size in &TX_SIZES {
            let native = median_time(reps, || {
                std::hint::black_box(run_micro(micro, Tool::Native, ops, size));
            });
            let framework = median_time(reps, || {
                std::hint::black_box(run_micro(micro, Tool::PmTestFrameworkOnly, ops, size));
            });
            let full = median_time(reps, || {
                std::hint::black_box(run_micro(micro, Tool::PmTest, ops, size));
            });
            let s_framework = slowdown(framework, native);
            let s_full = slowdown(full, native);
            let overhead_total = (s_full - 1.0).max(1e-9);
            let overhead_checker = (s_full - s_framework).max(0.0);
            let fraction = (overhead_checker / overhead_total).clamp(0.0, 1.0);
            checker_fractions.push(fraction);
            rows.push(vec![
                micro.label().to_owned(),
                size.to_string(),
                format!("{:.2}x", s_framework),
                format!("{:.2}x", s_full),
                format!("{:.1}%", fraction * 100.0),
            ]);
        }
    }
    print_table(
        "Fig. 10b — overhead breakdown (framework vs +checkers)",
        &[
            "microbench",
            "tx size (B)",
            "framework only",
            "full PMTest",
            "checker share of overhead",
        ],
        &rows,
    );
    let avg = checker_fractions.iter().sum::<f64>() / checker_fractions.len() as f64;
    println!("\naverage checker share of total overhead: {:.1}% (paper: 18.9%-37.8%)", avg * 100.0);
}
