//! **Fig. 11** — testing overhead on the "real" workloads of Table 4:
//! Memcached-like + Memslap, Memcached-like + YCSB, Redis-like + LRU test,
//! PMFS-like + OLTP, PMFS-like + Filebench.
//!
//! Paper shapes: the slowdown is much lower than on the microbenchmarks
//! (paper: 1.33–1.98×, avg 1.69×) because real workloads are less
//! PM-operation-intensive; the pmemcheck-like baseline on the Redis
//! workload is drastically slower (paper: 22.3×, 13.6× slower than
//! PMTest).
//!
//! Only the client-operation loop is timed; tool setup and the final result
//! drain sit outside the timed region (checking overlaps execution, §3.2).
//!
//! Run with: `cargo bench -p pmtest-bench --bench fig11_real`

use std::sync::Arc;
use std::time::{Duration, Instant};

use pmtest_baseline::Pmemcheck;
use pmtest_bench::{bench_ops, bench_reps, build_kvstore, print_table, slowdown};
use pmtest_core::PmTestSession;
use pmtest_pmem::{PersistMode, PmPool};
use pmtest_pmfs::{Pmfs, PmfsOptions};
use pmtest_trace::{NullSink, SharedSink};
use pmtest_txlib::ObjPool;
use pmtest_workloads::{fsbench, gen, CheckMode, FaultSet, RedisKv};

#[derive(Clone, Copy, PartialEq, Eq)]
enum Tool {
    Native,
    PmTest,
    Pmemcheck,
}

struct RunHandles {
    sink: SharedSink,
    session: Option<PmTestSession>,
    pmemcheck: Option<Arc<Pmemcheck>>,
    check: CheckMode,
}

fn handles(tool: Tool) -> RunHandles {
    match tool {
        Tool::Native => RunHandles {
            sink: Arc::new(NullSink),
            session: None,
            pmemcheck: None,
            check: CheckMode::None,
        },
        Tool::PmTest => {
            let s = PmTestSession::builder().build();
            s.start();
            RunHandles {
                sink: s.sink(),
                session: Some(s),
                pmemcheck: None,
                check: CheckMode::Checkers,
            }
        }
        Tool::Pmemcheck => {
            let pc = Arc::new(Pmemcheck::new());
            RunHandles {
                sink: pc.clone(),
                session: None,
                pmemcheck: Some(pc),
                check: CheckMode::Checkers,
            }
        }
    }
}

fn finish(run: RunHandles, expect_clean: bool) {
    if let Some(s) = run.session {
        let report = s.finish();
        if expect_clean {
            assert!(report.is_clean(), "{report}");
        }
    }
    if let Some(pc) = run.pmemcheck {
        let _ = pc.finish();
    }
}

fn kv_workload(tool: Tool, ops: &[gen::Op]) -> Duration {
    let run = handles(tool);
    let store = build_kvstore(run.sink.clone(), run.check, 64 << 20, 8);
    let start = Instant::now();
    for op in ops {
        match op {
            gen::Op::Set(k) => {
                store.set(*k, &gen::value_for(*k, 64)).expect("set");
                if let Some(s) = &run.session {
                    s.send_trace();
                }
            }
            gen::Op::Get(k) => {
                let _ = store.get(*k).expect("get");
            }
        }
    }
    let elapsed = start.elapsed();
    finish(run, true);
    elapsed
}

fn redis_workload(tool: Tool, ops: &[gen::Op]) -> Duration {
    let run = handles(tool);
    let pm = Arc::new(PmPool::new(64 << 20, run.sink.clone()));
    let pool = Arc::new(ObjPool::create(pm, 16384, PersistMode::X86).expect("pool"));
    let store = RedisKv::create(pool, 1024, ops.len() / 4 + 16, run.check, FaultSet::none())
        .expect("redis");
    let start = Instant::now();
    for op in ops {
        match op {
            gen::Op::Set(k) => {
                store.set(*k, &gen::value_for(*k, 64)).expect("set");
                if let Some(s) = &run.session {
                    s.send_trace();
                }
            }
            gen::Op::Get(k) => {
                let _ = store.get(*k).expect("get");
            }
        }
    }
    let elapsed = start.elapsed();
    finish(run, true);
    elapsed
}

fn pmfs_workload(tool: Tool, oltp: bool, scale: usize) -> Duration {
    let run = handles(tool);
    let pm = Arc::new(PmPool::new(32 << 20, run.sink.clone()));
    let opts = PmfsOptions { checkers: run.check.enabled(), inodes: 128, ..PmfsOptions::default() };
    let fs = Pmfs::format(pm, opts).expect("format");
    let start = Instant::now();
    if oltp {
        // Table 4: "MySQL (OLTP-complex, 4 clients)".
        for client in 0..4 {
            let cfg = fsbench::OltpConfig {
                transactions: scale / 4,
                seed: client as u64,
                ..fsbench::OltpConfig::default()
            };
            fsbench::oltp(&fs, client, cfg).expect("oltp");
            if let Some(s) = &run.session {
                s.send_trace();
            }
        }
    } else {
        // Table 4: "NFS (Filebench, 8 clients)".
        for client in 0..8 {
            let cfg = fsbench::FilebenchConfig {
                ops: scale / 8,
                seed: client as u64,
                ..fsbench::FilebenchConfig::default()
            };
            fsbench::filebench(&fs, client, cfg).expect("filebench");
            if let Some(s) = &run.session {
                s.send_trace();
            }
        }
    }
    let elapsed = start.elapsed();
    finish(run, true);
    elapsed
}

/// Best-of-N: these loops run well under a millisecond, where scheduler
/// noise dwarfs the median; the minimum is the standard stable estimator.
fn best_of(reps: usize, mut f: impl FnMut() -> Duration) -> Duration {
    (0..reps.max(2)).map(|_| f()).min().expect("at least one sample")
}

fn main() {
    let ops = bench_ops().max(10_000);
    let reps = bench_reps();
    println!("Fig. 11 reproduction — {ops} client ops per workload, best of {reps} runs");

    let memslap = gen::memslap(ops, 1000, 5, 1);
    let ycsb = gen::ycsb_update_heavy(ops, 1000, 2);
    let lru = gen::lru_churn(ops, 100_000, 3);
    let fs_scale = ops.min(4000);

    type Driver<'a> = Box<dyn Fn(Tool) -> Duration + 'a>;
    let workloads: Vec<(&str, Driver<'_>)> = vec![
        ("Memcached + Memslap (5% set)", Box::new(|tool| kv_workload(tool, &memslap))),
        ("Memcached + YCSB (50% update)", Box::new(|tool| kv_workload(tool, &ycsb))),
        ("Redis + LRU test", Box::new(|tool| redis_workload(tool, &lru))),
        ("PMFS + OLTP", Box::new(move |tool| pmfs_workload(tool, true, fs_scale))),
        ("PMFS + Filebench", Box::new(move |tool| pmfs_workload(tool, false, fs_scale))),
    ];

    let mut rows = Vec::new();
    let mut sum = 0.0;
    for (label, driver) in &workloads {
        let native = best_of(reps, || driver(Tool::Native));
        let pmtest = best_of(reps, || driver(Tool::PmTest));
        let s = slowdown(pmtest, native);
        sum += s;
        rows.push(vec![(*label).to_owned(), format!("{:.2}x", s)]);
    }
    // The paper's extra data point: Redis under pmemcheck.
    let native = best_of(reps, || redis_workload(Tool::Native, &lru));
    let pmc = best_of(reps, || redis_workload(Tool::Pmemcheck, &lru));
    rows.push(vec![
        "Redis + LRU under pmemcheck-like".to_owned(),
        format!("{:.2}x", slowdown(pmc, native)),
    ]);

    print_table("Fig. 11 — real-workload slowdown vs native", &["workload", "slowdown"], &rows);
    println!(
        "\naverage PMTest slowdown: {:.2}x (paper: 1.69x avg, 1.33-1.98x range; Redis pmemcheck 22.3x)",
        sum / workloads.len() as f64
    );
}
