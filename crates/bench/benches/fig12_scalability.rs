//! **Fig. 12** — scalability of the Memcached-like store under PMTest:
//! (a) more application threads against one checking worker raises the
//! slowdown (the worker saturates and its bounded queue backpressures the
//! clients); (b) more checking workers (at 4 app threads) lowers it;
//! (c) scaling both together stays roughly level.
//!
//! Only the client-operation loops are timed; store construction and the
//! final `PMTest_GET_RESULT` drain sit outside.
//!
//! Run with: `cargo bench -p pmtest-bench --bench fig12_scalability`

use std::sync::Arc;
use std::time::{Duration, Instant};

use pmtest_bench::{bench_ops, bench_reps, build_kvstore, print_table, slowdown};
use pmtest_core::{EngineStats, PmTestSession};
use pmtest_trace::NullSink;
use pmtest_workloads::{gen, CheckMode};

/// Runs `threads` YCSB clients against one shared store; `workers` is the
/// PMTest pool size (`None` = native, untracked) and `batch` the session
/// batch capacity (1 = submit every trace immediately, the paper's
/// semantics). Returns the time of the client phase only.
fn run(
    threads: usize,
    workers: Option<usize>,
    batch: usize,
    ops_per_thread: usize,
) -> (Duration, Option<EngineStats>) {
    let (sink, session): (pmtest_trace::SharedSink, Option<PmTestSession>) = match workers {
        None => (Arc::new(NullSink), None),
        Some(w) => {
            // A small queue makes checking-pipeline saturation visible at
            // bench scale, as the kernel FIFO does in the paper (§4.5).
            let s = PmTestSession::builder()
                .workers(w)
                .queue_capacity(16)
                .batch_capacity(batch)
                .build();
            s.start();
            (s.sink(), Some(s))
        }
    };
    let check = if workers.is_some() { CheckMode::Checkers } else { CheckMode::None };
    let store = Arc::new(build_kvstore(sink, check, 64 << 20, threads * 8));
    let plans: Vec<Vec<gen::Op>> =
        (0..threads).map(|t| gen::ycsb_update_heavy(ops_per_thread, 1000, t as u64)).collect();

    let start = Instant::now();
    std::thread::scope(|scope| {
        for (t, plan) in plans.iter().enumerate() {
            let store = store.clone();
            let session = session.clone();
            scope.spawn(move || {
                if let Some(s) = &session {
                    s.thread_init();
                }
                for op in plan {
                    match op {
                        gen::Op::Set(k) => {
                            store
                                .set((t as u64) * 100_000 + k, &gen::value_for(*k, 64))
                                .expect("set");
                            if let Some(s) = &session {
                                s.send_trace();
                            }
                        }
                        gen::Op::Get(k) => {
                            let _ = store.get((t as u64) * 100_000 + k).expect("get");
                        }
                    }
                }
            });
        }
    });
    let elapsed = start.elapsed();
    let stats = session.map(|s| {
        let report = s.finish();
        assert!(report.is_clean(), "{report}");
        s.stats()
    });
    (elapsed, stats)
}

fn best_of(reps: usize, mut f: impl FnMut() -> Duration) -> Duration {
    (0..reps.max(2)).map(|_| f()).min().expect("at least one sample")
}

fn main() {
    let ops = bench_ops().max(5_000);
    let reps = bench_reps();
    println!("Fig. 12 reproduction — {ops} YCSB ops per client, best of {reps} runs");
    let cores = std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
    println!("available CPU cores: {cores}");
    if cores < 8 {
        println!(
            "WARNING: Fig. 12's trends need real parallelism (the paper uses 8 cores / 16 \
             threads). With {cores} core(s), app threads and checking workers time-share a \
             CPU, so expect flat curves; run on a multi-core machine for the paper's shapes."
        );
    }

    let threads_axis = [1usize, 2, 4];

    // (a) one worker, varying app threads.
    let mut rows_a = Vec::new();
    for &threads in &threads_axis {
        let native = best_of(reps, || run(threads, None, 1, ops).0);
        let pmtest = best_of(reps, || run(threads, Some(1), 1, ops).0);
        rows_a.push(vec![threads.to_string(), format!("{:.2}x", slowdown(pmtest, native))]);
    }
    print_table(
        "Fig. 12a — slowdown vs #Memcached threads (1 PMTest worker)",
        &["app threads", "slowdown"],
        &rows_a,
    );

    // (b) four app threads, varying workers.
    let mut rows_b = Vec::new();
    let native4 = best_of(reps, || run(4, None, 1, ops).0);
    for &workers in &threads_axis {
        let pmtest = best_of(reps, || run(4, Some(workers), 1, ops).0);
        rows_b.push(vec![workers.to_string(), format!("{:.2}x", slowdown(pmtest, native4))]);
    }
    print_table(
        "Fig. 12b — slowdown vs #PMTest workers (4 Memcached threads)",
        &["PMTest workers", "slowdown"],
        &rows_b,
    );

    // (c) scale both together.
    let mut rows_c = Vec::new();
    for &n in &threads_axis {
        let native = best_of(reps, || run(n, None, 1, ops).0);
        let pmtest = best_of(reps, || run(n, Some(n), 1, ops).0);
        rows_c.push(vec![n.to_string(), format!("{:.2}x", slowdown(pmtest, native))]);
    }
    print_table(
        "Fig. 12c — slowdown with #threads == #workers",
        &["threads = workers", "slowdown"],
        &rows_c,
    );

    // (d) batched submission: same 4-thread/4-worker setup, session batch
    // capacity 1 (paper semantics) vs 32. Shows how much of the slowdown is
    // per-trace handoff that batching amortizes away.
    let mut rows_d = Vec::new();
    for &batch in &[1usize, 32] {
        let pmtest = best_of(reps, || run(4, Some(4), batch, ops).0);
        rows_d.push(vec![batch.to_string(), format!("{:.2}x", slowdown(pmtest, native4))]);
    }
    print_table(
        "Fig. 12 extension — slowdown vs session batch capacity (4 threads, 4 workers)",
        &["batch capacity", "slowdown"],
        &rows_d,
    );

    // Engine pipeline counters from one instrumented batched run.
    if let (_, Some(stats)) = run(4, Some(4), 32, ops) {
        println!(
            "\nengine stats (4 threads, 4 workers, batch 32): {} traces in {} batches \
             (mean {:.1}/batch), queue high-water {}, backpressure stalls {}",
            stats.traces_submitted,
            stats.batches_submitted,
            stats.mean_batch_size(),
            stats.queue_highwater,
            stats.backpressure_stalls,
        );
    }
    println!("\npaper shapes: (a) rises with threads, (b) falls with workers, (c) roughly level");
}
