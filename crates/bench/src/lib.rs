//! Shared harness utilities for the paper-reproduction benchmarks.
//!
//! Every table and figure of the paper's evaluation (§6) has one bench
//! target in `benches/`; this library provides the pieces they share:
//! stopwatch helpers, table printing, and builders that run each WHISPER
//! microbenchmark under a configurable *testing tool* ([`Tool`]).
//!
//! Scale knobs (environment variables):
//!
//! * `PMTEST_BENCH_OPS` — operations per microbenchmark data point
//!   (default 1000; the paper uses 100 000 — set it for paper-scale runs);
//! * `PMTEST_BENCH_REPS` — repetitions per measurement (default 3, median
//!   reported; the paper averages ten runs).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Arc;
use std::time::{Duration, Instant};

use pmtest_baseline::Pmemcheck;
use pmtest_core::{PmTestSession, Report};
use pmtest_mnemosyne::MnPool;
use pmtest_pmem::{PersistMode, PmHeap, PmPool};
use pmtest_trace::{NullSink, SharedSink};
use pmtest_txlib::ObjPool;
use pmtest_workloads::{
    gen, BTree, CheckMode, CritBitTree, FaultSet, HashMapLl, HashMapTx, KvMap, RbTree,
};

/// Operations per data point (`PMTEST_BENCH_OPS`, default 1000).
#[must_use]
pub fn bench_ops() -> usize {
    std::env::var("PMTEST_BENCH_OPS").ok().and_then(|v| v.parse().ok()).unwrap_or(1000)
}

/// Repetitions per measurement (`PMTEST_BENCH_REPS`, default 3).
#[must_use]
pub fn bench_reps() -> usize {
    std::env::var("PMTEST_BENCH_REPS").ok().and_then(|v| v.parse().ok()).unwrap_or(3)
}

/// Times one run of `f`.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (Duration, T) {
    let start = Instant::now();
    let value = f();
    (start.elapsed(), value)
}

/// Median wall-clock time of `reps` runs of `f`.
pub fn median_time(reps: usize, mut f: impl FnMut()) -> Duration {
    let mut samples: Vec<Duration> = (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Ratio formatted as the paper reports slowdowns.
#[must_use]
pub fn slowdown(tool: Duration, native: Duration) -> f64 {
    tool.as_secs_f64() / native.as_secs_f64().max(1e-9)
}

/// Prints a markdown-style table.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n### {title}\n");
    println!("| {} |", header.join(" | "));
    println!("|{}|", header.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
}

/// Which testing tool observes the workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tool {
    /// No tool (the normalization baseline of Figs. 10–12).
    Native,
    /// PMTest with checkers, traces checked asynchronously.
    PmTest,
    /// PMTest tracking only — no checkers placed (the "framework" bar of
    /// Fig. 10b).
    PmTestFrameworkOnly,
    /// The pmemcheck-like synchronous baseline.
    Pmemcheck,
}

impl Tool {
    /// Display label matching the paper's figures.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Tool::Native => "native",
            Tool::PmTest => "PMTest",
            Tool::PmTestFrameworkOnly => "PMTest (framework)",
            Tool::Pmemcheck => "pmemcheck-like",
        }
    }
}

/// The five microbenchmarks of Fig. 10.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Micro {
    /// Crit-bit tree.
    Ctree,
    /// B-tree.
    Btree,
    /// Red-black tree.
    Rbtree,
    /// HashMap with transactions.
    HashMapTx,
    /// HashMap on low-level primitives.
    HashMapLl,
}

impl Micro {
    /// All five, in the paper's order.
    pub const ALL: [Micro; 5] =
        [Micro::Ctree, Micro::Btree, Micro::Rbtree, Micro::HashMapTx, Micro::HashMapLl];

    /// Display label matching Fig. 10.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Micro::Ctree => "C-Tree",
            Micro::Btree => "B-Tree",
            Micro::Rbtree => "RB-Tree",
            Micro::HashMapTx => "HashMap (w/ TX)",
            Micro::HashMapLl => "HashMap (w/o TX)",
        }
    }
}

/// The per-run handles the driver needs.
struct ToolRun {
    sink: SharedSink,
    session: Option<PmTestSession>,
    pmemcheck: Option<Arc<Pmemcheck>>,
    check: CheckMode,
}

fn tool_run(tool: Tool) -> ToolRun {
    match tool {
        Tool::Native => ToolRun {
            sink: Arc::new(NullSink),
            session: None,
            pmemcheck: None,
            check: CheckMode::None,
        },
        Tool::PmTest => {
            let session = PmTestSession::builder().build();
            session.start();
            ToolRun {
                sink: session.sink(),
                session: Some(session),
                pmemcheck: None,
                check: CheckMode::Checkers,
            }
        }
        Tool::PmTestFrameworkOnly => {
            let session = PmTestSession::builder().build();
            session.start();
            ToolRun {
                sink: session.sink(),
                session: Some(session),
                pmemcheck: None,
                check: CheckMode::None,
            }
        }
        Tool::Pmemcheck => {
            let pc = Arc::new(Pmemcheck::new());
            ToolRun {
                sink: pc.clone(),
                session: None,
                pmemcheck: Some(pc),
                check: CheckMode::Checkers,
            }
        }
    }
}

fn pool_bytes(ops: usize, value_size: usize) -> usize {
    // Values + node/log overhead, with generous slack.
    (ops * (value_size + 1024) + (4 << 20)).next_power_of_two()
}

/// Runs `ops` insertions of `value_size`-byte values into the chosen
/// microbenchmark under `tool`, returning the wall-clock time of the
/// insertion loop (trace shipping included; final drain excluded, as the
/// checking pipeline overlaps execution, §3.2).
///
/// # Panics
///
/// Panics on substrate errors (benchmarks run the correct protocol).
#[must_use]
pub fn run_micro(micro: Micro, tool: Tool, ops: usize, value_size: usize) -> Duration {
    let run = tool_run(tool);
    let pm = Arc::new(PmPool::new(pool_bytes(ops, value_size), run.sink.clone()));
    let map: Box<dyn KvMap> = match micro {
        Micro::HashMapLl => {
            let heap = Arc::new(PmHeap::new(pm, 8192));
            Box::new(HashMapLl::create(heap, 256, run.check, FaultSet::none()).expect("create"))
        }
        _ => {
            let pool = Arc::new(ObjPool::create(pm, 8192, PersistMode::X86).expect("create pool"));
            match micro {
                Micro::Ctree => Box::new(
                    CritBitTree::create(pool, run.check, FaultSet::none()).expect("create"),
                ),
                Micro::Btree => {
                    Box::new(BTree::create(pool, run.check, FaultSet::none()).expect("create"))
                }
                Micro::Rbtree => {
                    Box::new(RbTree::create(pool, run.check, FaultSet::none()).expect("create"))
                }
                Micro::HashMapTx => Box::new(
                    HashMapTx::create(pool, 256, run.check, FaultSet::none()).expect("create"),
                ),
                Micro::HashMapLl => unreachable!(),
            }
        }
    };

    let start = Instant::now();
    for k in 0..ops as u64 {
        map.insert(k, &gen::value_for(k, value_size)).expect("insert");
        if let Some(session) = &run.session {
            session.send_trace();
        }
    }
    let elapsed = start.elapsed();

    // Drain and sanity-check outside the timed region.
    if let Some(session) = run.session {
        let report = session.finish();
        assert!(report.is_clean(), "{}: {report}", micro.label());
    }
    if let Some(pc) = run.pmemcheck {
        let report = pc.finish();
        assert!(report.is_clean(), "{}: {report}", micro.label());
    }
    elapsed
}

/// Like [`run_micro`] but *includes* the final drain (`PMTest_GET_RESULT`)
/// in the timed region — used by the breakdown figure.
#[must_use]
pub fn run_micro_with_drain(micro: Micro, tool: Tool, ops: usize, value_size: usize) -> Duration {
    let (elapsed, _) = time_once(|| {
        let d = run_micro(micro, tool, ops, value_size);
        std::hint::black_box(d);
    });
    elapsed
}

/// Builds a Mnemosyne-backed KvStore for the real-workload benches.
///
/// # Panics
///
/// Panics on substrate errors.
#[must_use]
pub fn build_kvstore(
    sink: SharedSink,
    check: CheckMode,
    bytes: usize,
    shards: usize,
) -> pmtest_workloads::KvStore {
    let pm = Arc::new(PmPool::new(bytes, sink));
    let pool = Arc::new(MnPool::create(pm, 16384, PersistMode::X86).expect("mn pool"));
    pmtest_workloads::KvStore::create(pool, 1024, shards, check, FaultSet::none()).expect("kvstore")
}

/// Convenience: asserts a report is clean and returns it (for harness
/// sanity checks).
#[must_use]
pub fn expect_clean(report: Report, what: &str) -> Report {
    assert!(report.is_clean(), "{what}: {report}");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_runs_under_every_tool() {
        for tool in [Tool::Native, Tool::PmTest, Tool::PmTestFrameworkOnly, Tool::Pmemcheck] {
            let d = run_micro(Micro::HashMapTx, tool, 20, 64);
            assert!(d.as_nanos() > 0, "{tool:?}");
        }
    }

    #[test]
    fn all_micros_run_clean_under_pmtest() {
        for micro in Micro::ALL {
            let _ = run_micro(micro, Tool::PmTest, 30, 64);
        }
    }

    #[test]
    fn helpers() {
        assert!(bench_ops() > 0);
        assert!(bench_reps() > 0);
        let d = median_time(3, || {
            std::hint::black_box(1 + 1);
        });
        assert!(slowdown(d + Duration::from_nanos(1), d.max(Duration::from_nanos(1))) >= 1.0);
    }
}
