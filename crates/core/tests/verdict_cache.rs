//! Integration tests for the verdict cache (DESIGN.md §17).
//!
//! The cache's one obligation is invisibility: with it on, every observable
//! output — `Report` rendering, diagnosis bundles, profile snapshots — must
//! be identical to a cache-off run, while the bypass predicate keeps the
//! instrumented replay lane (timing layer, flight recorder) checking every
//! occurrence cold.

use pmtest_core::{HopsModel, PmTestSession, SessionBuilder, TelemetryConfig};
use pmtest_interval::ByteRange;
use pmtest_trace::{Event, Sink};

fn r(start: u64, end: u64) -> ByteRange {
    ByteRange::new(start, end)
}

/// Records one multi-range trace; `fail` leaves the last write unflushed so
/// the `is_persist` checker produces a diagnostic.
fn record_x86_shape(session: &PmTestSession, tag: u64, fail: bool) {
    let base = tag * 256;
    for i in 0..3 {
        let range = r(base + i * 64, base + i * 64 + 16);
        session.record(Event::Write(range).here());
        session.record(Event::Flush(range).here());
    }
    session.record(Event::Fence.here());
    let last = r(base + 192, base + 200);
    session.record(Event::Write(last).here());
    if !fail {
        session.record(Event::Flush(last).here());
        session.record(Event::Fence.here());
    }
    session.is_persist(last);
    session.send_trace().expect("trace submitted");
}

/// The HOPS-dialect equivalent, using `ofence`/`dfence` epochs.
fn record_hops_shape(session: &PmTestSession, tag: u64, fail: bool) {
    let base = tag * 256;
    let a = r(base, base + 16);
    let b = r(base + 64, base + 80);
    session.record(Event::Write(a).here());
    session.record(Event::OFence.here());
    session.record(Event::Write(b).here());
    if !fail {
        session.record(Event::DFence.here());
    }
    session.is_ordered_before(a, b);
    session.is_persist(a);
    session.send_trace().expect("trace submitted");
}

fn run_workload(builder: SessionBuilder, hops: bool) -> PmTestSession {
    let session = builder.build();
    session.start();
    // A repetitive mix: 4 distinct shapes (2 clean, 2 failing), each
    // repeated 25 times — production-shaped traffic for the cache.
    for round in 0..25 {
        let _ = round;
        for tag in 0..4u64 {
            let fail = tag % 2 == 1;
            if hops {
                record_hops_shape(&session, tag, fail);
            } else {
                record_x86_shape(&session, tag, fail);
            }
        }
    }
    session.flush();
    session
}

#[test]
fn cache_on_matches_cache_off_x86() {
    let off = run_workload(PmTestSession::builder().workers(1), false);
    let on = run_workload(PmTestSession::builder().workers(1).verdict_cache(true), false);
    let report_off = off.finish();
    let report_on = on.finish();
    assert_eq!(report_on.to_string(), report_off.to_string(), "cache must be invisible");
    assert_eq!(report_on.fail_count(), 50);
}

#[test]
fn cache_on_matches_cache_off_hops() {
    let off = run_workload(PmTestSession::builder().workers(1).model(HopsModel::new()), true);
    let on = run_workload(
        PmTestSession::builder().workers(1).model(HopsModel::new()).verdict_cache(true),
        true,
    );
    assert_eq!(on.finish().to_string(), off.finish().to_string(), "cache must be invisible");
}

#[test]
fn repeated_shapes_hit_the_cache() {
    let session = run_workload(PmTestSession::builder().workers(1).verdict_cache(true), false);
    let report = session.finish();
    assert_eq!(report.traces().len(), 100);
    let stats = session.verdict_cache_stats().expect("cache enabled");
    assert_eq!(stats.misses, 4, "one cold check per distinct shape");
    assert_eq!(stats.l1_hits + stats.l2_hits, 96, "every repeat served from cache");
    assert_eq!(stats.bypasses, 0);
    assert!(stats.hit_rate() >= 0.95, "hit rate {:.3} below target", stats.hit_rate());
    // The counters surface through the snapshot and the summary line.
    let snap = session.telemetry_snapshot();
    assert_eq!(snap.counter("verdict_cache_misses"), Some(4));
    assert_eq!(snap.counter("verdict_cache_l1_hits"), Some(96));
    assert!(snap.gauge("verdict_cache_hit_rate").unwrap() >= 0.95);
    assert!(snap.gauge("verdict_cache_bytes_resident").unwrap() > 0.0);
    assert!(
        session.telemetry_summary().contains("verdict cache:"),
        "summary line reports the cache"
    );
}

#[test]
fn cache_off_exposes_no_stats() {
    let session = run_workload(PmTestSession::builder().workers(1), false);
    assert!(session.verdict_cache_stats().is_none());
    assert_eq!(session.telemetry_snapshot().counter("verdict_cache_misses"), None);
    assert!(session.finish().fail_count() > 0);
}

#[test]
fn timing_layer_bypasses_the_cache() {
    let session = run_workload(
        PmTestSession::builder()
            .workers(1)
            .telemetry(TelemetryConfig::timing_only())
            .verdict_cache(true),
        false,
    );
    let report = session.finish();
    assert_eq!(report.traces().len(), 100);
    let stats = session.verdict_cache_stats().expect("cache enabled");
    assert_eq!(stats.bypasses, 100, "instrumented lane checks every occurrence cold");
    assert_eq!(stats.l1_hits + stats.l2_hits + stats.misses, 0);
}

#[test]
fn recorder_bypasses_and_still_captures_bundles_per_repeat() {
    let run = |cache: bool| {
        let builder = PmTestSession::builder()
            .workers(1)
            .telemetry(TelemetryConfig::recorder_only())
            .verdict_cache(cache);
        let session = builder.build();
        session.start();
        for _ in 0..6 {
            record_x86_shape(&session, 1, true);
        }
        session.flush();
        let report = session.report();
        let bundles = session.take_bundles();
        (report.to_string(), bundles.len(), session.verdict_cache_stats())
    };
    let (report_off, bundles_off, _) = run(false);
    let (report_on, bundles_on, stats) = run(true);
    assert_eq!(report_on, report_off);
    assert_eq!(bundles_on, bundles_off, "ERROR bundle capture must stay per-occurrence");
    assert_eq!(bundles_on, 6);
    let stats = stats.expect("cache enabled");
    assert_eq!(stats.bypasses, 6, "recorder lane bypasses the cache");
    assert_eq!(stats.l1_hits + stats.l2_hits + stats.misses, 0);
}

#[test]
fn profile_stays_exact_under_hits() {
    let run = |cache: bool| {
        let session = run_workload(
            PmTestSession::builder()
                .workers(1)
                .telemetry(TelemetryConfig::profiling_only())
                .verdict_cache(cache),
            false,
        );
        assert!(session.report().fail_count() > 0);
        let profile = session.profile();
        let advisor = session.advisor_report();
        (profile, format!("{advisor:?}"), session.verdict_cache_stats())
    };
    let (profile_off, advisor_off, _) = run(false);
    let (profile_on, advisor_on, stats) = run(true);
    assert_eq!(profile_on, profile_off, "profile must be exact under cache hits");
    assert_eq!(advisor_on, advisor_off);
    let stats = stats.expect("cache enabled");
    assert!(stats.l1_hits > 0, "profiling does not bypass the cache: {stats:?}");
}

#[test]
fn eviction_under_pressure_stays_correct() {
    let run = |cache: bool| {
        let builder = PmTestSession::builder().workers(1).verdict_cache(cache);
        // ~4 KiB of budget: far fewer slots than distinct shapes.
        let builder = if cache { builder.verdict_cache_max_bytes(4 << 10) } else { builder };
        let session = builder.build();
        session.start();
        // 200 distinct failing shapes, cycled twice.
        for _ in 0..2 {
            for tag in 0..200u64 {
                record_x86_shape(&session, tag, true);
            }
        }
        session.flush();
        (session.finish().to_string(), session.verdict_cache_stats())
    };
    let (report_off, _) = run(false);
    let (report_on, stats) = run(true);
    assert_eq!(report_on, report_off, "eviction must never change a verdict");
    let stats = stats.expect("cache enabled");
    assert!(stats.evictions > 0, "pressure must evict: {stats:?}");
    assert!(stats.bytes_resident <= 4 << 10, "memory bound holds: {stats:?}");
}

#[test]
fn reg_var_ranges_resolve_at_record_time() {
    // The same source-level trace shape, recorded while the session variable
    // points at two different ranges, must fingerprint differently: ranges
    // resolve when recorded, never at check time — this is what makes the
    // verdict a pure function of the packed words.
    let session = PmTestSession::builder().workers(1).verdict_cache(true).build();
    session.start();
    let flushed = r(0, 8);
    let unflushed = r(64, 72);
    for round in 0..4 {
        let range = if round % 2 == 0 { flushed } else { unflushed };
        session.reg_var("slot", range);
        session.record(Event::Write(flushed).here());
        session.record(Event::Flush(flushed).here());
        session.record(Event::Fence.here());
        session.record(Event::Write(unflushed).here());
        assert!(session.is_persist_var("slot"), "variable is registered");
        session.send_trace().expect("trace submitted");
    }
    session.flush();
    let report = session.finish();
    assert_eq!(report.traces().len(), 4);
    // Rounds checking the flushed range pass; rounds checking the unflushed
    // range fail — even though the recording code is identical.
    assert_eq!(report.fail_count(), 2, "record-time resolution keeps verdicts distinct");
    let stats = session.verdict_cache_stats().expect("cache enabled");
    assert_eq!(stats.misses, 2, "two distinct fingerprints, each repeated once");
    assert_eq!(stats.l1_hits, 2);
}
