//! Cross-trace profiling + advisor integration: the profiling layer's
//! engine-side behavior, WARN perf-checker parity between the x86 and HOPS
//! dialects, and the telemetry-snapshot/summary wiring.
//!
//! The WARN perf checkers are dialect-asymmetric by design — under HOPS,
//! `Flush`/`Fence` demote to `foreign_operation` and never reach the
//! duplicate-flush shadow logic — so cross-dialect parity lives in the
//! *profiler*: the same wasteful event sequence must produce identical
//! per-site deltas (duplicate flushes, duplicate logs, redundant fences)
//! whichever model checks the trace.

use std::sync::Arc;

use pmtest_core::{DiagKind, Engine, EngineConfig, HopsModel, TelemetryConfig, X86Model};
use pmtest_interval::ByteRange;
use pmtest_obs::advisor::SuggestionKind;
use pmtest_trace::{Event, SourceLoc, Trace};

fn profiling_engine(model: Arc<dyn pmtest_core::PersistencyModel>) -> Engine {
    Engine::new(EngineConfig {
        model,
        workers: 1,
        deterministic_dispatch: true,
        telemetry: TelemetryConfig::profiling_only(),
        ..EngineConfig::default()
    })
}

/// One trace planting every wasteful shape at pinned sites: a duplicate
/// undo-log entry (line 2), a duplicate flush (line 5), and a fence that
/// orders no new work (line 7). HOPS expresses the fences as
/// ofence/dfence; the flush/log shapes are shared.
fn wasteful_trace(id: u64, hops: bool) -> Trace {
    let at = |line: u32| SourceLoc::new("wasteful.rs", line);
    let r = ByteRange::with_len(0, 64);
    let mut t = Trace::new(id);
    t.push(Event::TxCheckerStart.at(at(0)));
    t.push(Event::TxBegin.at(at(0)));
    t.push(Event::TxAdd(ByteRange::with_len(0, 8)).at(at(1)));
    t.push(Event::TxAdd(ByteRange::with_len(0, 8)).at(at(2)));
    t.push(Event::Write(ByteRange::with_len(0, 64)).at(at(3)));
    t.push(Event::Flush(r).at(at(4)));
    t.push(Event::Flush(r).at(at(5)));
    t.push(if hops { Event::OFence.at(at(6)) } else { Event::Fence.at(at(6)) });
    t.push(if hops { Event::DFence.at(at(7)) } else { Event::Fence.at(at(7)) });
    t.push(Event::TxEnd.at(at(8)));
    t.push(Event::TxCheckerEnd.at(at(8)));
    t
}

#[test]
fn duplicate_log_warn_fires_on_both_dialects() {
    // The TX undo-log checker is dialect-independent: the second TX_ADD of
    // an already-logged object warns under x86 AND under HOPS.
    for (name, model) in [
        ("x86", Arc::new(X86Model::new()) as Arc<dyn pmtest_core::PersistencyModel>),
        ("hops", Arc::new(HopsModel::new())),
    ] {
        let engine = profiling_engine(model);
        engine.submit(wasteful_trace(0, name == "hops")).unwrap();
        engine.wait_idle();
        let report = engine.report();
        assert!(
            report.iter().any(|d| d.kind == DiagKind::DuplicateLog && d.loc.line() == 2),
            "{name}: duplicate-log WARN at the second TX_ADD site, got: {report}"
        );
    }
}

#[test]
fn profiler_detects_the_same_waste_on_both_dialects() {
    let snapshots: Vec<_> = [false, true]
        .into_iter()
        .map(|hops| {
            let model: Arc<dyn pmtest_core::PersistencyModel> =
                if hops { Arc::new(HopsModel::new()) } else { Arc::new(X86Model::new()) };
            let engine = profiling_engine(model);
            engine.submit(wasteful_trace(0, hops)).unwrap();
            engine.wait_idle();
            engine.profile()
        })
        .collect();
    for (snap, name) in snapshots.iter().zip(["x86", "hops"]) {
        assert_eq!(snap.traces, 1, "{name}");
        let site = |line: u32| {
            snap.sites
                .iter()
                .find(|s| s.file == "wasteful.rs" && s.line == line)
                .unwrap_or_else(|| panic!("{name}: no profile for wasteful.rs:{line}"))
        };
        assert_eq!(site(2).ops.dup_logs, 1, "{name}: duplicate log at line 2");
        assert_eq!(site(5).ops.dup_flushes, 1, "{name}: duplicate flush at line 5");
        assert_eq!(site(5).ops.dup_flush_bytes, 64, "{name}");
        assert_eq!(site(7).ops.redundant_fences, 1, "{name}: extra fence at line 7");
        assert_eq!(site(6).ops.redundant_fences, 0, "{name}: first fence orders real work");
    }
    // Parity: per-site operation deltas are identical across dialects.
    let per_site = |i: usize| -> Vec<(String, u32, pmtest_obs::SiteDelta)> {
        snapshots[i].sites.iter().map(|s| (s.file.clone(), s.line, s.ops)).collect()
    };
    assert_eq!(per_site(0), per_site(1), "x86 and HOPS profiles diverged");
}

#[test]
fn advisor_ranks_the_planted_waste_with_sites() {
    let engine = profiling_engine(Arc::new(X86Model::new()));
    for id in 0..10 {
        engine.submit(wasteful_trace(id, false)).unwrap();
    }
    engine.wait_idle();
    let report = engine.advisor_report();
    let find = |kind: SuggestionKind, line: u32| {
        let site = format!("wasteful.rs:{line}");
        report
            .suggestions
            .iter()
            .find(|s| s.kind == kind && s.site == site)
            .unwrap_or_else(|| panic!("no {} suggestion at {site}", kind.code()))
    };
    assert_eq!(find(SuggestionKind::FlushCoalescing, 5).count, 10, "one per trace");
    assert_eq!(find(SuggestionKind::LogElision, 2).count, 10);
    assert_eq!(find(SuggestionKind::RedundantFence, 7).count, 10);
    // Ranks are contiguous from 1 and scores never increase.
    for (i, s) in report.suggestions.iter().enumerate() {
        assert_eq!(s.rank as usize, i + 1);
        if i > 0 {
            assert!(report.suggestions[i - 1].score >= s.score, "ranking not monotone");
        }
    }
}

#[test]
fn profiling_is_off_by_default_and_absent_from_snapshots() {
    let engine = Engine::new(EngineConfig::default());
    engine.submit(wasteful_trace(0, false)).unwrap();
    engine.wait_idle();
    assert_eq!(engine.profile().traces, 0, "no profiling without the layer");
    assert!(engine.advisor_report().suggestions.is_empty());
    let snap = engine.telemetry_snapshot();
    assert_eq!(snap.counter("profile_traces_profiled"), None, "no profile counters when off");
    assert!(!engine.telemetry_summary().contains("advisor:"));
}

#[test]
fn snapshot_and_summary_carry_profile_and_advisor_counters() {
    let engine = profiling_engine(Arc::new(X86Model::new()));
    engine.submit(wasteful_trace(0, false)).unwrap();
    engine.wait_idle();
    let snap = engine.telemetry_snapshot();
    assert_eq!(snap.counter("profile_traces_profiled"), Some(1));
    assert_eq!(snap.counter_sum("profile_duplicate_flushes"), 1);
    assert_eq!(snap.counter_sum("profile_duplicate_logs"), 1);
    assert_eq!(snap.counter_sum("profile_redundant_fences"), 1);
    assert!(snap.counter_sum("profile_wasted_persist_bytes") >= 64 + 8);
    assert!(snap.counter_sum("advisor_suggestions") >= 3);
    // WARN diagnostics aggregate into the per-code warn counter.
    assert!(snap.counter_sum("profile_warn_total") >= 1);
    let summary = engine.telemetry_summary();
    assert!(summary.contains("advisor: 1 traces profiled"), "{summary}");
}
