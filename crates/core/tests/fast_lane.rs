//! Differential property tests for the clean-lane DFA (`packed_clean`).
//!
//! The clean lane is a conservative pre-pass: scanning a trace's packed
//! records, it may prove the trace produces *zero* diagnostics under a
//! built-in model, letting the worker skip the full shadow-memory replay.
//! Its one obligation is soundness — `packed_clean(model, words) == true`
//! must imply the full checker returns no diagnostics, for every trace, on
//! every built-in model flavour. (Completeness is not required: bailing to
//! the full checker is always allowed, so `false` proves nothing.)
//!
//! The generator leans on overlapping, adjacent, empty, and disjoint ranges
//! drawn from a small universe — exactly the aliasing patterns where an
//! exact-match DFA could go wrong if its bail conditions were too loose.

use pmtest_core::{check_trace, packed_clean, BuiltinModel, HopsModel, PersistencyModel, X86Model};
use pmtest_interval::ByteRange;
use pmtest_trace::{Event, Trace};
use proptest::prelude::*;

/// A small universe of ranges: overlapping, nested, adjacent, disjoint, and
/// empty, so sequences alias in every way the DFA's exact-match slots must
/// handle conservatively.
fn arb_range() -> impl Strategy<Value = ByteRange> {
    prop_oneof![
        Just(ByteRange::new(0, 8)),
        Just(ByteRange::new(0, 16)),  // contains the first
        Just(ByteRange::new(4, 12)),  // straddles both halves
        Just(ByteRange::new(8, 16)),  // adjacent to the first
        Just(ByteRange::new(32, 64)), // disjoint
        Just(ByteRange::new(40, 48)), // nested in the disjoint one
        Just(ByteRange::new(5, 5)),   // empty
    ]
}

/// Events over both model dialects plus the checkers — everything the lane
/// claims to classify. (Tx/scope ops always bail, so including them only
/// wastes cases; `clean_lane_bails_on_foreign_ops` covers them directly.)
fn arb_event() -> impl Strategy<Value = Event> {
    prop_oneof![
        4 => arb_range().prop_map(Event::Write),
        4 => arb_range().prop_map(Event::Flush),
        2 => Just(Event::Fence),
        1 => Just(Event::OFence),
        1 => Just(Event::DFence),
        3 => arb_range().prop_map(Event::IsPersist),
        1 => (arb_range(), arb_range()).prop_map(|(a, b)| Event::IsOrderedBefore(a, b)),
    ]
}

fn arb_trace() -> impl Strategy<Value = Trace> {
    proptest::collection::vec(arb_event(), 0..24).prop_map(|events| {
        let mut t = Trace::new(0);
        for e in events {
            t.push(e.here());
        }
        t
    })
}

/// Every built-in model flavour the lane supports, paired with the dynamic
/// model the full checker replays.
fn flavours() -> Vec<(BuiltinModel, Box<dyn PersistencyModel>)> {
    vec![
        (X86Model::new().builtin().unwrap(), Box::new(X86Model::new())),
        (
            X86Model::without_performance_checks().builtin().unwrap(),
            Box::new(X86Model::without_performance_checks()),
        ),
        (HopsModel::new().builtin().unwrap(), Box::new(HopsModel::new())),
    ]
}

proptest! {
    /// Soundness: whenever the lane says "clean", the full checker agrees —
    /// zero diagnostics, FAIL or WARN — on every built-in flavour.
    #[test]
    fn clean_verdicts_are_sound(trace in arb_trace()) {
        for (fast, model) in flavours() {
            if packed_clean(fast, trace.packed()) {
                let diags = check_trace(&trace, model.as_ref());
                prop_assert!(
                    diags.is_empty(),
                    "lane called trace clean under {:?} but checker found {:?}\ntrace: {:?}",
                    fast,
                    diags,
                    trace.entries(),
                );
            }
        }
    }

    /// The lane is not vacuous: the canonical write→flush→fence→isPersist
    /// pattern — the shape the throughput benchmark hammers — must take the
    /// fast path, for any of the universe's non-empty ranges.
    #[test]
    fn canonical_clean_pattern_takes_the_lane(
        r in arb_range().prop_map(|r| if r.is_empty() { ByteRange::new(0, 8) } else { r }),
    ) {
        let mut t = Trace::new(0);
        t.push(Event::Write(r).here());
        t.push(Event::Flush(r).here());
        t.push(Event::Fence.here());
        t.push(Event::IsPersist(r).here());
        prop_assert!(packed_clean(X86Model::new().builtin().unwrap(), t.packed()));
    }
}

/// Transaction and scope operations are outside the DFA's model; it must
/// refuse to classify any trace containing them.
#[test]
fn clean_lane_bails_on_foreign_ops() {
    let fast = X86Model::new().builtin().unwrap();
    let r = ByteRange::new(0, 8);
    for op in [
        Event::TxBegin,
        Event::TxEnd,
        Event::TxAdd(r),
        Event::TxCheckerStart,
        Event::TxCheckerEnd,
        Event::Exclude(r),
        Event::Include(r),
    ] {
        let mut t = Trace::new(0);
        t.push(Event::Write(r).here());
        t.push(Event::Flush(r).here());
        t.push(Event::Fence.here());
        t.push(op.here());
        assert!(!packed_clean(fast, t.packed()), "lane must bail on {op:?}");
    }
}

/// A failing isPersist must never be called clean (the direct, non-random
/// form of the soundness property).
#[test]
fn unpersisted_check_is_never_clean() {
    let fast = X86Model::new().builtin().unwrap();
    let r = ByteRange::new(0, 8);
    let mut t = Trace::new(0);
    t.push(Event::Write(r).here());
    t.push(Event::IsPersist(r).here());
    assert!(!packed_clean(fast, t.packed()));
}
