//! Composite checkers built from the two low-level ones (§5.1).
//!
//! The paper's workflow for library authors: "programmers can use the
//! PMTest framework to build custom, high-level checkers in the software
//! based on the two low-level checkers". The transaction checkers are the
//! built-in instance; this module packages the other invariant shapes that
//! recur across crash-consistent code so applications and libraries can
//! assert them in one call. Each helper only *emits checker events* into a
//! sink — validation still happens in the engine, under whatever
//! persistency model the session runs.

use pmtest_interval::ByteRange;
use pmtest_trace::{Event, Sink};

/// Asserts a *persist chain*: each range must be guaranteed durable before
/// the next one can persist, and every range must be durable now.
///
/// This is the shape of multi-step initialization protocols (superblock →
/// metadata → commit record). Emits `n-1` `isOrderedBefore` checkers plus
/// `n` `isPersist` checkers.
///
/// # Examples
///
/// ```
/// use pmtest_core::{compose, PmTestSession};
/// use pmtest_trace::{Event, Sink};
/// use pmtest_interval::ByteRange;
///
/// let session = PmTestSession::builder().build();
/// session.start();
/// let a = ByteRange::with_len(0, 8);
/// let b = ByteRange::with_len(64, 8);
/// session.record(Event::Write(a).here());
/// session.record(Event::Flush(a).here());
/// session.record(Event::Fence.here());
/// session.record(Event::Write(b).here());
/// session.record(Event::Flush(b).here());
/// session.record(Event::Fence.here());
/// compose::persist_chain(&session, &[a, b]);
/// session.send_trace();
/// assert!(session.finish().is_clean());
/// ```
#[track_caller]
pub fn persist_chain(sink: &impl Sink, ranges: &[ByteRange]) {
    for pair in ranges.windows(2) {
        sink.record(Event::IsOrderedBefore(pair[0], pair[1]).here());
    }
    for &range in ranges {
        sink.record(Event::IsPersist(range).here());
    }
}

/// Asserts the *publish* protocol: `object` must be guaranteed durable
/// before `pointer` can persist, and both must be durable now — the
/// persist-then-link idiom of every pointer-based durable structure
/// (Fig. 1a's backup/valid pair, the hashmap node/bucket pair, the queue
/// node/tail pair).
#[track_caller]
pub fn publishes(sink: &impl Sink, object: ByteRange, pointer: ByteRange) {
    sink.record(Event::IsOrderedBefore(object, pointer).here());
    sink.record(Event::IsPersist(object).here());
    sink.record(Event::IsPersist(pointer).here());
}

/// Asserts *mutual exclusion in time*: a log (undo or redo) must be durable
/// strictly before the data it protects can persist. Identical to
/// [`publishes`] but without requiring the data itself to be durable yet —
/// the write-ahead-logging invariant.
#[track_caller]
pub fn logged_before(sink: &impl Sink, log: ByteRange, data: ByteRange) {
    sink.record(Event::IsOrderedBefore(log, data).here());
    sink.record(Event::IsPersist(log).here());
}

/// Asserts that every range in `ranges` is guaranteed durable — the
/// "everything reached persistence" postcondition of a checkpoint or sync
/// operation.
#[track_caller]
pub fn all_persisted(sink: &impl Sink, ranges: &[ByteRange]) {
    for &range in ranges {
        sink.record(Event::IsPersist(range).here());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DiagKind, PmTestSession};
    use pmtest_trace::Event;

    fn r(s: u64, e: u64) -> ByteRange {
        ByteRange::new(s, e)
    }

    fn session() -> PmTestSession {
        let s = PmTestSession::builder().build();
        s.start();
        s
    }

    fn barriered_write(s: &PmTestSession, range: ByteRange) {
        s.record(Event::Write(range).here());
        s.record(Event::Flush(range).here());
        s.record(Event::Fence.here());
    }

    #[test]
    fn persist_chain_passes_on_ordered_protocol() {
        let s = session();
        let ranges = [r(0, 8), r(64, 72), r(128, 136)];
        for range in ranges {
            barriered_write(&s, range);
        }
        persist_chain(&s, &ranges);
        s.send_trace();
        assert!(s.finish().is_clean());
    }

    #[test]
    fn persist_chain_catches_a_shared_barrier() {
        let s = session();
        let (a, b) = (r(0, 8), r(64, 72));
        s.record(Event::Write(a).here());
        s.record(Event::Write(b).here());
        s.record(Event::Flush(a).here());
        s.record(Event::Flush(b).here());
        s.record(Event::Fence.here());
        persist_chain(&s, &[a, b]);
        s.send_trace();
        let report = s.finish();
        assert_eq!(report.fail_count(), 1);
        assert!(report.has(DiagKind::NotOrderedBefore));
    }

    #[test]
    fn publishes_catches_early_link() {
        let s = session();
        let (node, head) = (r(0, 32), r(64, 72));
        s.record(Event::Write(head).here()); // pointer published first!
        barriered_write(&s, node);
        s.record(Event::Flush(head).here());
        s.record(Event::Fence.here());
        publishes(&s, node, head);
        s.send_trace();
        let report = s.finish();
        assert!(report.has(DiagKind::NotOrderedBefore), "{report}");
    }

    #[test]
    fn logged_before_does_not_require_data_durability() {
        let s = session();
        let (log, data) = (r(0, 32), r(64, 96));
        barriered_write(&s, log);
        s.record(Event::Write(data).here()); // data still in flight: fine
        logged_before(&s, log, data);
        s.send_trace();
        assert!(s.finish().is_clean());
    }

    #[test]
    fn all_persisted_reports_each_violation() {
        let s = session();
        barriered_write(&s, r(0, 8));
        s.record(Event::Write(r(64, 72)).here());
        s.record(Event::Write(r(128, 136)).here());
        all_persisted(&s, &[r(0, 8), r(64, 72), r(128, 136)]);
        s.send_trace();
        let report = s.finish();
        assert_eq!(report.fail_count(), 2, "{report}");
    }
}
