//! The PMTest checking engine.
//!
//! This crate implements the paper's core contribution (§3–§5): a fast,
//! flexible, trace-based detector of crash-consistency bugs in persistent
//! memory programs.
//!
//! # How checking works
//!
//! The program under test is instrumented (see `pmtest-pmem` and the
//! libraries built on it) so that every PM operation and every checker the
//! programmer places flows into a [`PmTestSession`]. The session buffers
//! entries per thread into a compact packed-record arena; `send_trace`
//! seals the open records as an independent trace and ships it to the
//! [`Engine`] — singly or in per-thread batches — over a sharded ingest
//! plane: one bounded ring per producer thread, drained by workers that
//! prefer their affinity rings and steal from the rest when idle (Fig. 8;
//! DESIGN.md §13). Each worker replays the trace against the configured
//! [`PersistencyModel`]'s *checking rules*, maintaining a [`ShadowMemory`]
//! that maps each modified address range to a *persist interval* — the epoch
//! window in which the write may become durable. Checkers then reduce to
//! interval arithmetic:
//!
//! * [`Event::IsPersist`](pmtest_trace::Event::IsPersist) passes iff every
//!   written byte's persist interval has closed;
//! * [`Event::IsOrderedBefore`](pmtest_trace::Event::IsOrderedBefore) passes
//!   iff every interval of the first range ends no later than any interval of
//!   the second begins.
//!
//! This is what makes PMTest fast: one linear pass per trace instead of
//! enumerating persist orderings (Yat) or instrumenting every store
//! (pmemcheck).
//!
//! # Flexibility
//!
//! [`PersistencyModel`] is an open trait: [`X86Model`] implements Intel's
//! `clwb`/`sfence` semantics (§4.4) and [`HopsModel`] the relaxed
//! `ofence`/`dfence` semantics of HOPS (§5.2); users add models by
//! implementing the trait. High-level transaction checkers
//! (`TX_CHECKER_START/END`, §5.1) are built from the two low-level checkers
//! and run inside the same pass.
//!
//! # Examples
//!
//! Checking the exact trace of the paper's Fig. 7:
//!
//! ```
//! use pmtest_core::{check_trace, DiagKind, X86Model};
//! use pmtest_trace::{Event, Trace};
//! use pmtest_interval::ByteRange;
//!
//! let mut trace = Trace::new(0);
//! let a = ByteRange::with_len(0x10, 64);
//! let b = ByteRange::with_len(0x50, 64);
//! trace.push(Event::Write(a).here());
//! trace.push(Event::Flush(a).here());
//! trace.push(Event::Fence.here());
//! trace.push(Event::Write(b).here());
//! trace.push(Event::IsPersist(b).here());          // FAIL: B never flushed
//! trace.push(Event::IsOrderedBefore(a, b).here()); // pass: A closed at 1, B opens at 1
//! let diags = check_trace(&trace, &X86Model::new());
//! assert_eq!(diags.len(), 1);
//! assert_eq!(diags[0].kind, DiagKind::NotPersisted);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bundle;
pub mod cache;
mod checker;
pub mod compose;
mod diag;
mod engine;
mod epoch;
pub mod explore;
mod fifo;
mod ingest;
mod model;
mod session;
mod shadow;
pub mod telemetry;

pub use bundle::{op_token, BundleReason, DiagnosisBundle};
pub use cache::{VerdictCacheConfig, VerdictCacheStats};
pub use checker::{
    check_packed_with, check_trace, check_trace_with, packed_clean, CheckerScratch, TraceChecker,
};
pub use diag::{Diag, DiagKind, Report, Severity, TraceReport};
pub use engine::{derived_queue_capacity, Engine, EngineConfig, EngineStats, SubmitError};
pub use epoch::{Epoch, EpochInterval};
pub use explore::{
    explore, ExploreConfig, ExploreMode, ExplorePhase, ExploreReport, ExploreStats,
    ExploreViolation, PointOutcome, RecoveryProc,
};
pub use fifo::{FifoStats, KernelFifo};
pub use model::{BuiltinModel, HopsModel, PersistencyModel, X86Model};
pub use session::{PmTestSession, SessionBuilder, ThreadRecorder};
pub use shadow::{SegState, ShadowMemory};
pub use telemetry::{CheckerCategory, TelemetryConfig};
