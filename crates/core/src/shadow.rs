use std::fmt;

use pmtest_interval::{ByteRange, SegmentMap};
use pmtest_trace::{LocId, LocInterner, SourceLoc};

use crate::epoch::{Epoch, EpochInterval};

/// The persistency status of one tracked address range (§4.4).
///
/// * `persist` — the epoch window in which the last write to this range may
///   become durable;
/// * `flush` — the window in which an issued writeback may take effect
///   (x86 only; the HOPS rules never set it, §5.2).
///
/// Source locations of the responsible write/flush are kept so diagnostics
/// can point at the culprit operation, not just the failing checker. They
/// are stored as [`LocId`]s interned per shadow memory — a trace replays the
/// same few call sites over and over, and the 4-byte id keeps this state
/// `Copy` when a write splits into many segments. Resolve them with
/// [`ShadowMemory::resolve_loc`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegState {
    /// Persist interval of the last write, if the range was written.
    pub persist: Option<EpochInterval>,
    /// Flush interval of the last writeback, if one was issued.
    pub flush: Option<EpochInterval>,
    /// Where the last write was issued (interned).
    pub write_loc: Option<LocId>,
    /// Where the last writeback was issued (interned).
    pub flush_loc: Option<LocId>,
}

/// What a writeback observed about the ranges it covered, used by the
/// performance checkers (§5.1.2).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FlushObservation {
    /// Sub-ranges that had never been written (nothing to write back).
    pub unmodified: Vec<ByteRange>,
    /// Sub-ranges already covered by an issued or completed writeback, with
    /// the location of the earlier writeback.
    pub duplicate: Vec<(ByteRange, Option<SourceLoc>)>,
}

/// The per-trace shadow memory: a segment map from modified address ranges
/// to their persistency status, plus the global epoch timestamp (§4.4).
///
/// Every trace is checked against a *logically* fresh `ShadowMemory`; traces
/// are independent units of checking. The instance itself is built to be
/// recycled: [`clear`](Self::clear) resets the state while keeping every
/// backing allocation (segment vectors, interner arena), so a pooled shadow
/// memory checks trace after trace without touching the allocator.
///
/// # Examples
///
/// ```
/// use pmtest_core::ShadowMemory;
/// use pmtest_interval::ByteRange;
/// use pmtest_trace::SourceLoc;
///
/// let mut shadow = ShadowMemory::new();
/// let r = ByteRange::with_len(0x10, 64);
/// shadow.record_write(r, SourceLoc::here());
/// shadow.record_flush(r, SourceLoc::here());
/// assert!(!shadow.is_persisted(r));
/// shadow.fence();
/// assert!(shadow.is_persisted(r));
/// ```
pub struct ShadowMemory {
    map: SegmentMap<SegState>,
    timestamp: Epoch,
    /// Ranges with a writeback issued since the last fence.
    open_flushes: Vec<ByteRange>,
    /// Ranges written since the last durability fence (for `dfence`).
    open_writes: Vec<ByteRange>,
    excluded: SegmentMap<()>,
    /// Source locations of this trace's writes/flushes, interned so segment
    /// states stay small and `Copy`.
    locs: LocInterner,
}

impl Default for ShadowMemory {
    fn default() -> Self {
        Self::new()
    }
}

impl ShadowMemory {
    /// Creates an empty shadow memory at epoch 0.
    #[must_use]
    pub fn new() -> Self {
        Self {
            map: SegmentMap::new(),
            timestamp: 0,
            open_flushes: Vec::new(),
            open_writes: Vec::new(),
            excluded: SegmentMap::new(),
            locs: LocInterner::new(),
        }
    }

    /// Resets to the empty epoch-0 state while retaining every backing
    /// allocation, so a recycled shadow memory checks its next trace without
    /// allocating. Equivalent to `*self = ShadowMemory::new()` semantically.
    pub fn clear(&mut self) {
        self.map.clear();
        self.timestamp = 0;
        self.open_flushes.clear();
        self.open_writes.clear();
        self.excluded.clear();
        self.locs.clear();
    }

    /// The current global epoch.
    #[must_use]
    pub fn timestamp(&self) -> Epoch {
        self.timestamp
    }

    /// Resolves an interned source location stored in a [`SegState`].
    #[must_use]
    pub fn resolve_loc(&self, id: LocId) -> SourceLoc {
        self.locs.resolve(id)
    }

    /// Times the underlying segment maps migrated from their flat small-map
    /// representation to the BTree (cumulative; survives
    /// [`clear`](Self::clear)).
    #[must_use]
    pub fn repr_switches(&self) -> u64 {
        self.map.repr_switches() + self.excluded.repr_switches()
    }

    /// Records a store: clears any previous status over `range` and opens a
    /// fresh persist interval at the current epoch (§4.4 `write` rule).
    pub fn record_write(&mut self, range: ByteRange, loc: SourceLoc) {
        if range.is_empty() {
            return;
        }
        let loc = self.locs.intern(loc);
        self.map.insert(
            range,
            SegState {
                persist: Some(EpochInterval::open(self.timestamp)),
                flush: None,
                write_loc: Some(loc),
                flush_loc: None,
            },
        );
        self.open_writes.push(range);
    }

    /// Records a writeback: opens a flush interval over `range` and reports
    /// what the performance checkers need (§4.4 `clwb` rule, §5.1.2).
    pub fn record_flush(&mut self, range: ByteRange, loc: SourceLoc) -> FlushObservation {
        let mut obs = FlushObservation::default();
        if range.is_empty() {
            return obs;
        }
        let ts = self.timestamp;
        let loc = self.locs.intern(loc);
        let locs = &self.locs;
        self.map.update_range(range, |sub, cur| match cur {
            None => {
                // Never written: flushing unmodified data.
                obs.unmodified.push(sub);
                Some(SegState {
                    persist: None,
                    flush: Some(EpochInterval::open(ts)),
                    write_loc: None,
                    flush_loc: Some(loc),
                })
            }
            Some(state) => {
                let mut state = *state;
                let already_flushed = match (&state.flush, &state.persist) {
                    // A writeback is already in flight for this data.
                    (Some(f), _) if !f.is_closed() => true,
                    // The data already persisted and was not rewritten since.
                    (_, Some(p)) if p.is_closed() => true,
                    // Never written at all but flushed before.
                    (Some(_), None) => true,
                    _ => false,
                };
                if already_flushed {
                    let earlier = state.flush_loc.or(state.write_loc);
                    obs.duplicate.push((sub, earlier.map(|id| locs.resolve(id))));
                }
                if state.persist.is_none() && state.flush.is_some() {
                    // Re-flushing a never-written range: also unmodified.
                    obs.unmodified.push(sub);
                }
                state.flush = Some(EpochInterval::open(ts));
                state.flush_loc = Some(loc);
                Some(state)
            }
        });
        self.open_flushes.push(range);
        obs
    }

    /// An `sfence` (§4.4): advances the epoch, completes issued writebacks,
    /// and closes the persist intervals they cover.
    pub fn fence(&mut self) {
        self.timestamp += 1;
        let ts = self.timestamp;
        for range in std::mem::take(&mut self.open_flushes) {
            self.map.update_range(range, |_, cur| {
                let mut state = *cur?;
                if let Some(f) = &mut state.flush {
                    if !f.is_closed() {
                        f.close(ts);
                        if let Some(p) = &mut state.persist {
                            p.close(ts);
                        }
                    }
                }
                Some(state)
            });
        }
    }

    /// A HOPS `ofence` (§5.2): advances the epoch without forcing
    /// durability.
    pub fn ofence(&mut self) {
        self.timestamp += 1;
    }

    /// A HOPS `dfence` (§5.2): advances the epoch and closes the persist
    /// interval of every prior write.
    pub fn dfence(&mut self) {
        self.timestamp += 1;
        let ts = self.timestamp;
        for range in std::mem::take(&mut self.open_writes) {
            self.map.update_range(range, |_, cur| {
                let mut state = *cur?;
                if let Some(p) = &mut state.persist {
                    p.close(ts);
                }
                Some(state)
            });
        }
        self.open_flushes.clear();
    }

    /// The persist intervals (with write locations) of the written
    /// sub-ranges of `range`.
    #[must_use]
    pub fn persist_intervals(
        &self,
        range: ByteRange,
    ) -> Vec<(ByteRange, EpochInterval, Option<SourceLoc>)> {
        self.map
            .overlapping(range)
            .filter_map(|(sub, st)| {
                st.persist.map(|p| (sub, p, st.write_loc.map(|id| self.locs.resolve(id))))
            })
            .collect()
    }

    /// Whether every written byte of `range` has a closed persist interval.
    #[must_use]
    pub fn is_persisted(&self, range: ByteRange) -> bool {
        self.persist_intervals(range).iter().all(|(_, p, _)| p.is_closed())
    }

    /// Direct access to the raw segment states overlapping `range`.
    pub fn states_in(&self, range: ByteRange) -> impl Iterator<Item = (ByteRange, &SegState)> {
        self.map.overlapping(range)
    }

    // ------------------------------------------------------------------
    // Testing scope (PMTest_EXCLUDE / PMTest_INCLUDE, §4.2)
    // ------------------------------------------------------------------

    /// Removes `range` from the testing scope.
    pub fn exclude(&mut self, range: ByteRange) {
        self.excluded.insert(range, ());
    }

    /// Adds a previously excluded `range` back to the testing scope.
    pub fn include(&mut self, range: ByteRange) {
        self.excluded.remove(range);
    }

    /// Whether any exclusions are active (fast path: none usually are).
    #[must_use]
    pub fn has_exclusions(&self) -> bool {
        !self.excluded.is_empty()
    }

    /// The sub-ranges of `range` still in the testing scope.
    #[must_use]
    pub fn in_scope(&self, range: ByteRange) -> Vec<ByteRange> {
        if self.excluded.is_empty() {
            return vec![range];
        }
        self.excluded.gaps(range)
    }

    /// Whether any part of `range` is in the testing scope.
    #[must_use]
    pub fn is_in_scope(&self, range: ByteRange) -> bool {
        !self.excluded.covers(range)
    }
}

impl fmt::Debug for ShadowMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShadowMemory")
            .field("timestamp", &self.timestamp)
            .field("segments", &self.map.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loc() -> SourceLoc {
        SourceLoc::new("test.rs", 1)
    }

    fn r(s: u64, e: u64) -> ByteRange {
        ByteRange::new(s, e)
    }

    #[test]
    fn write_opens_interval_at_current_epoch() {
        let mut sh = ShadowMemory::new();
        sh.record_write(r(0, 8), loc());
        let pis = sh.persist_intervals(r(0, 8));
        assert_eq!(pis.len(), 1);
        assert_eq!(pis[0].1, EpochInterval::open(0));
        assert!(!sh.is_persisted(r(0, 8)));
    }

    #[test]
    fn figure7_walkthrough() {
        // write(0x10,64); clwb(0x10,64); sfence; write(0x50,64)
        let mut sh = ShadowMemory::new();
        let a = ByteRange::with_len(0x10, 64);
        let b = ByteRange::with_len(0x50, 64);
        sh.record_write(a, loc());
        let obs = sh.record_flush(a, loc());
        assert!(obs.unmodified.is_empty() && obs.duplicate.is_empty());
        sh.fence();
        assert_eq!(sh.timestamp(), 1);
        sh.record_write(b, loc());
        // PI(A ∖ B) = (0,1) closed; PI(B) = (1,∞) open.
        let a_only = ByteRange::new(0x10, 0x50);
        let pis = sh.persist_intervals(a_only);
        assert!(pis.iter().all(|(_, p, _)| *p == EpochInterval::closed(0, 1)));
        let pis_b = sh.persist_intervals(b);
        assert_eq!(pis_b[0].1, EpochInterval::open(1));
        assert!(sh.is_persisted(a_only));
        assert!(!sh.is_persisted(b));
    }

    #[test]
    fn fence_without_flush_does_not_persist() {
        let mut sh = ShadowMemory::new();
        sh.record_write(r(0, 8), loc());
        sh.fence();
        assert!(!sh.is_persisted(r(0, 8)));
        assert_eq!(sh.persist_intervals(r(0, 8))[0].1, EpochInterval::open(0));
    }

    #[test]
    fn flush_without_fence_does_not_persist() {
        let mut sh = ShadowMemory::new();
        sh.record_write(r(0, 8), loc());
        sh.record_flush(r(0, 8), loc());
        assert!(!sh.is_persisted(r(0, 8)));
    }

    #[test]
    fn write_after_flush_reopens_interval() {
        let mut sh = ShadowMemory::new();
        sh.record_write(r(0, 8), loc());
        sh.record_flush(r(0, 8), loc());
        sh.record_write(r(0, 8), loc()); // clears the pending flush (§4.4)
        sh.fence();
        assert!(!sh.is_persisted(r(0, 8)), "write invalidated the writeback");
    }

    #[test]
    fn partial_flush_persists_only_covered_bytes() {
        let mut sh = ShadowMemory::new();
        sh.record_write(r(0, 16), loc());
        sh.record_flush(r(0, 8), loc());
        sh.fence();
        assert!(sh.is_persisted(r(0, 8)));
        assert!(!sh.is_persisted(r(8, 16)));
        assert!(!sh.is_persisted(r(0, 16)));
    }

    #[test]
    fn unwritten_range_is_vacuously_persisted() {
        let sh = ShadowMemory::new();
        assert!(sh.is_persisted(r(100, 200)));
        assert!(sh.persist_intervals(r(100, 200)).is_empty());
    }

    #[test]
    fn flush_of_unmodified_data_is_observed() {
        let mut sh = ShadowMemory::new();
        let obs = sh.record_flush(r(0, 8), loc());
        assert_eq!(obs.unmodified, [r(0, 8)]);
        assert!(obs.duplicate.is_empty());
    }

    #[test]
    fn double_flush_is_observed() {
        let mut sh = ShadowMemory::new();
        sh.record_write(r(0, 8), loc());
        let first = sh.record_flush(r(0, 8), loc());
        assert!(first.duplicate.is_empty());
        let second = sh.record_flush(r(0, 8), loc());
        assert_eq!(second.duplicate.len(), 1);
        assert_eq!(second.duplicate[0].0, r(0, 8));
    }

    #[test]
    fn flush_after_persist_is_duplicate() {
        let mut sh = ShadowMemory::new();
        sh.record_write(r(0, 8), loc());
        sh.record_flush(r(0, 8), loc());
        sh.fence();
        let obs = sh.record_flush(r(0, 8), loc());
        assert_eq!(obs.duplicate.len(), 1, "re-flushing persisted data");
    }

    #[test]
    fn flush_covering_written_and_unwritten_splits_observation() {
        let mut sh = ShadowMemory::new();
        sh.record_write(r(0, 8), loc());
        let obs = sh.record_flush(r(0, 16), loc());
        assert_eq!(obs.unmodified, [r(8, 16)]);
        assert!(obs.duplicate.is_empty());
    }

    #[test]
    fn dfence_closes_all_writes() {
        let mut sh = ShadowMemory::new();
        sh.record_write(r(0, 8), loc());
        sh.record_write(r(100, 108), loc());
        sh.ofence();
        sh.record_write(r(200, 208), loc());
        assert_eq!(sh.timestamp(), 1);
        sh.dfence();
        assert!(sh.is_persisted(r(0, 300)));
        assert_eq!(sh.timestamp(), 2);
    }

    #[test]
    fn ofence_advances_epoch_only() {
        let mut sh = ShadowMemory::new();
        sh.record_write(r(0, 8), loc());
        sh.ofence();
        assert_eq!(sh.timestamp(), 1);
        assert!(!sh.is_persisted(r(0, 8)));
        sh.record_write(r(8, 16), loc());
        assert_eq!(sh.persist_intervals(r(8, 16))[0].1, EpochInterval::open(1));
    }

    #[test]
    fn exclusion_scope() {
        let mut sh = ShadowMemory::new();
        sh.exclude(r(0, 10));
        assert_eq!(sh.in_scope(r(0, 20)), [r(10, 20)]);
        assert!(!sh.is_in_scope(r(0, 10)));
        assert!(sh.is_in_scope(r(5, 15)));
        sh.include(r(0, 10));
        assert_eq!(sh.in_scope(r(0, 20)), [r(0, 20)]);
    }

    #[test]
    fn write_loc_retained_for_attribution() {
        let mut sh = ShadowMemory::new();
        let wloc = SourceLoc::new("app.rs", 99);
        sh.record_write(r(0, 8), wloc);
        let pis = sh.persist_intervals(r(0, 8));
        assert_eq!(pis[0].2, Some(wloc));
    }

    #[test]
    fn cleared_shadow_behaves_like_fresh() {
        let mut sh = ShadowMemory::new();
        sh.record_write(r(0, 16), SourceLoc::new("old.rs", 1));
        sh.record_flush(r(0, 8), SourceLoc::new("old.rs", 2));
        sh.fence();
        sh.exclude(r(100, 110));
        sh.clear();
        assert_eq!(sh.timestamp(), 0);
        assert!(!sh.has_exclusions());
        assert!(sh.persist_intervals(r(0, 16)).is_empty());
        // Replaying figure 7 on the recycled instance gives fresh results,
        // including correctly re-interned locations.
        let wloc = SourceLoc::new("new.rs", 7);
        sh.record_write(r(0, 8), wloc);
        sh.record_flush(r(0, 8), SourceLoc::new("new.rs", 8));
        sh.fence();
        assert!(sh.is_persisted(r(0, 8)));
        assert_eq!(sh.persist_intervals(r(0, 8))[0].2, Some(wloc));
        // A fence after clear must not close stale open_flushes ranges.
        let mut sh2 = ShadowMemory::new();
        sh2.record_write(r(0, 8), wloc);
        sh2.record_flush(r(0, 8), wloc);
        sh2.clear();
        sh2.record_write(r(0, 8), wloc);
        sh2.fence();
        assert!(!sh2.is_persisted(r(0, 8)), "pre-clear flush must be forgotten");
    }
}
