use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use parking_lot::Mutex;
use pmtest_interval::ByteRange;
use pmtest_obs::SpanHandle;
use pmtest_trace::{Entry, Event, SharedSink, Sink, TraceArena};

use crate::diag::Report;
use crate::engine::{Engine, EngineConfig};
use crate::model::PersistencyModel;
use crate::telemetry::{FlushCause, TelemetryConfig};

static NEXT_SESSION_ID: AtomicU64 = AtomicU64::new(0);

/// Producer-side span-buffer thread ids start here, leaving the low range
/// for the engine's workers (worker `i` records under tid `i`).
static NEXT_PRODUCER_TID: AtomicU64 = AtomicU64::new(1000);

/// Per-thread recording state for one session (§4.5: "PMTest maintains a
/// per-thread data structure that maintains the trace of different
/// threads").
struct Slot {
    session: u64,
    /// This thread's record arena: the open tail is the trace currently
    /// being recorded (entries encode to packed records as they arrive);
    /// sealed spans are traces completed by `send_trace` but not yet shipped
    /// — the per-thread submission batch. Recycled through the engine's
    /// [`pmtest_trace::ArenaPool`] so checked batches return their
    /// allocation to us.
    arena: TraceArena,
    /// This thread's producer-side span buffer, present when the session's
    /// engine had the tracing layer on at slot creation; `ship` spans land
    /// here.
    span: Option<SpanHandle>,
    /// Back-reference for the drop-flush; weak so a dead session does not
    /// keep its engine alive through thread-local storage.
    shared: Weak<SessionShared>,
}

impl Drop for Slot {
    fn drop(&mut self) {
        // Thread exit with traces still batched: ship them so nothing a
        // thread recorded is ever lost (`per_thread_buffers_do_not_mix`
        // relies on this when batching is on). An open, un-`send_trace`d
        // tail is dropped, as it always was.
        if self.arena.sealed() == 0 {
            return;
        }
        if let Some(shared) = self.shared.upgrade() {
            shared.ship_from(&mut self.arena, self.span.as_ref(), FlushCause::ThreadExit);
        }
    }
}

/// This thread's slot registry: the slots plus a one-entry position cache.
/// Slots are never removed while the thread lives, so a cache hit skips
/// even the linear scan on the per-event path; one struct keeps the whole
/// lookup to a single thread-local access and `RefCell` borrow.
struct ThreadSlots {
    /// `(session id, index into list)` of the last slot this thread used.
    last: (u64, usize),
    /// Per-thread slots, keyed by session id. A linear-scanned small
    /// vector: in practice a thread records into one or two sessions, and
    /// the scan beats hashing on the per-event hot path.
    list: Vec<Slot>,
}

impl ThreadSlots {
    /// Position of `id`'s slot, via the one-entry cache when possible.
    #[inline]
    fn pos(&mut self, id: u64) -> Option<usize> {
        let (cached_id, cached_pos) = self.last;
        if cached_id == id {
            if let Some(slot) = self.list.get(cached_pos) {
                if slot.session == id {
                    return Some(cached_pos);
                }
            }
        }
        let pos = self.list.iter().position(|slot| slot.session == id)?;
        self.last = (id, pos);
        Some(pos)
    }
}

thread_local! {
    static SLOTS: RefCell<ThreadSlots> =
        const { RefCell::new(ThreadSlots { last: (u64::MAX, usize::MAX), list: Vec::new() }) };
}

fn with_slot<R>(shared: &Arc<SessionShared>, f: impl FnOnce(&mut Slot) -> R) -> R {
    SLOTS.with(|s| {
        let slots = &mut *s.borrow_mut();
        if let Some(pos) = slots.pos(shared.id) {
            let slot = &mut slots.list[pos];
            // The slot may have been created by `SessionShared::record`,
            // which only has `&self` and therefore no back-reference to give
            // it. Repair it here so the drop-flush can reach the engine.
            if slot.shared.strong_count() == 0 {
                slot.shared = Arc::downgrade(shared);
            }
            return f(slot);
        }
        slots.last = (shared.id, slots.list.len());
        slots.list.push(Slot {
            session: shared.id,
            arena: shared.prewarmed_arena(),
            span: shared.producer_span(),
            shared: Arc::downgrade(shared),
        });
        let last = slots.list.len() - 1;
        f(&mut slots.list[last])
    })
}

/// A PMTest testing session — the Rust face of the paper's Table 2 API.
///
/// | Paper function | Here |
/// |---|---|
/// | `PMTest_INIT` | [`PmTestSession::builder`] / [`SessionBuilder::build`] |
/// | `PMTest_EXIT` | drop the session (or [`finish`](Self::finish)) |
/// | `PMTest_THREAD_INIT` | [`thread_init`](Self::thread_init) |
/// | `PMTest_START` / `PMTest_END` | [`start`](Self::start) / [`end`](Self::end) |
/// | `PMTest_EXCLUDE` / `PMTest_INCLUDE` | [`exclude`](Self::exclude) / [`include`](Self::include) |
/// | `PMTest_REG_VAR` / `UNREG_VAR` / `GET_VAR` | [`reg_var`](Self::reg_var) / [`unreg_var`](Self::unreg_var) / [`var`](Self::var) |
/// | `PMTest_SEND_TRACE` | [`send_trace`](Self::send_trace) |
/// | `PMTest_GET_RESULT` | [`report`](Self::report) |
/// | `isPersist` / `isOrderedBefore` | [`is_persist`](Self::is_persist) / [`is_ordered_before`](Self::is_ordered_before) |
/// | `TX_CHECKER_START` / `TX_CHECKER_END` | [`tx_checker_start`](Self::tx_checker_start) / [`tx_checker_end`](Self::tx_checker_end) |
///
/// The session is the [`Sink`] that instrumented pools record into: entries
/// are buffered per thread; [`send_trace`](Self::send_trace) ships the
/// calling thread's buffer to the asynchronous [`Engine`]. Clone the session
/// (cheap; shared state) to hand it to other threads.
///
/// ## Batched submission
///
/// By default every `send_trace` goes straight to the engine (the paper's
/// behaviour). With [`SessionBuilder::batch_capacity`] greater than one,
/// completed traces collect in the thread's record arena and ship together
/// once the batch fills — one ring operation and one dispatch for many
/// traces, which is what lets short-trace workloads scale (Fig. 12b).
/// Batches flush
/// automatically on [`report`](Self::report), [`take_report`](Self::take_report),
/// [`finish`](Self::finish), thread exit, and explicitly via
/// [`flush`](Self::flush). Results are identical either way; only submission
/// granularity changes.
///
/// The thread-exit flush runs in a thread-local destructor. Note that
/// `std::thread::scope` unblocks when the spawned *closures* return, which
/// is before TLS destructors run — so a report taken right after a bare
/// `scope` can race a still-flushing exiting thread. Join the
/// `ScopedJoinHandle`s explicitly (a real OS-thread join, which waits for
/// destructors) or call [`flush`](Self::flush) at the end of the closure.
///
/// # Examples
///
/// ```
/// use pmtest_core::PmTestSession;
/// use pmtest_trace::{Event, Sink};
/// use pmtest_interval::ByteRange;
///
/// let session = PmTestSession::builder().build();
/// session.start();
/// let r = ByteRange::with_len(0, 8);
/// session.record(Event::Write(r).here());
/// session.is_persist(r); // checker recorded into the trace
/// session.send_trace();
/// let report = session.report();
/// assert_eq!(report.fail_count(), 1); // the write was never persisted
/// ```
#[derive(Clone)]
pub struct PmTestSession {
    shared: Arc<SessionShared>,
}

struct SessionShared {
    id: u64,
    enabled: AtomicBool,
    engine: Engine,
    next_trace: AtomicU64,
    batch_capacity: usize,
    vars: Mutex<HashMap<String, ByteRange>>,
    /// Arenas pre-released into the engine's pool so far, bounding the
    /// per-producer pre-warm at [`PREWARM_MAX_ARENAS`] per session.
    prewarmed: AtomicU64,
}

/// Session-wide cap on pre-warmed arenas — the pool's own retention cap
/// (8 shards × 64 items), past which releases would be dropped anyway.
const PREWARM_MAX_ARENAS: u64 = 512;

impl SessionShared {
    /// Pre-warms the engine's arena pool for one new producer thread and
    /// draws the thread's initial recording arena from it.
    ///
    /// A producer keeps `queue_capacity + 1` arenas in flight once its ring
    /// backs up (one per queued batch, plus the one it records into), so a
    /// cold pool mints exactly that many `pool_fresh` arenas per thread
    /// before recycling takes over. Releasing them up front — pre-sized so
    /// the pool's retention check keeps them and the first batches record
    /// without slab growth — moves those misses off the steady-state rate:
    /// the committed w4/b32 `pool_hit_rate` was 0.79 without this, ≥0.9
    /// with it (asserted in the engine stress test).
    fn prewarmed_arena(&self) -> TraceArena {
        let pool = self.engine.arena_pool();
        let per_producer = self.engine.queue_capacity() as u64 + 1;
        // ~8 packed words per trace of headroom, clamped to the pool's
        // per-item retention cap.
        let words = (self.batch_capacity * 8).clamp(16, 4096);
        for _ in 0..per_producer {
            if self.prewarmed.fetch_add(1, Ordering::Relaxed) >= PREWARM_MAX_ARENAS {
                break;
            }
            pool.release(TraceArena::with_word_capacity(words));
        }
        pool.acquire()
    }
    /// Ships one completed per-thread batch arena to the engine, recording
    /// its fill level and why it flushed (`session_flush_total{cause=…}`).
    /// With batching off (capacity 1) every trace ships the moment it is
    /// sent, so there is no batch telemetry to record.
    fn ship_arena(&self, arena: TraceArena, cause: FlushCause) {
        let n = arena.sealed();
        if n == 0 {
            return;
        }
        if self.batch_capacity > 1 {
            self.engine.telemetry().note_batch_shipped(cause, n);
        }
        let _ = self.engine.submit_arena(arena);
    }

    /// The full ship path for a recording-side arena: detach the sealed
    /// batch onto a recycled arena, fold the allocator/intern tallies the
    /// live arena kept through the detach into the engine's counters, and
    /// submit — wrapped in a producer-side `ship` span when `span` is
    /// recording. A no-op when nothing is sealed.
    fn ship_from(&self, arena: &mut TraceArena, span: Option<&SpanHandle>, cause: FlushCause) {
        if arena.sealed() == 0 {
            return;
        }
        match span.filter(|h| h.enabled()) {
            Some(h) => {
                let start = h.now_ns();
                self.ship_detached(arena, cause);
                let name = self.engine.telemetry().span_names.ship;
                h.record(name, start, h.now_ns().saturating_sub(start));
            }
            None => self.ship_detached(arena, cause),
        }
    }

    fn ship_detached(&self, arena: &mut TraceArena, cause: FlushCause) {
        let shipped = arena.detach_for_ship(self.engine.arena_pool().acquire());
        // `detach_for_ship` keeps the tallies on the recording side; taking
        // them here makes the fold exactly once per shipped batch.
        self.engine.telemetry().note_arena_stats(arena.take_stats());
        self.ship_arena(shipped, cause);
    }

    /// A producer-side span buffer for one recording thread, when the
    /// engine's tracing layer is on.
    fn producer_span(&self) -> Option<SpanHandle> {
        let spans = &self.engine.telemetry().spans;
        spans
            .is_enabled()
            .then(|| spans.register(NEXT_PRODUCER_TID.fetch_add(1, Ordering::Relaxed)))
    }
}

/// Builder for [`PmTestSession`] (`PMTest_INIT`).
pub struct SessionBuilder {
    config: EngineConfig,
    batch_capacity: usize,
    /// Explicit queue depth, if [`queue_capacity`](Self::queue_capacity)
    /// was called; otherwise `build` derives one from the batch size.
    queue_capacity: Option<usize>,
}

impl SessionBuilder {
    /// Sets the persistency model (default: x86).
    #[must_use]
    pub fn model<M: PersistencyModel + 'static>(mut self, model: M) -> Self {
        self.config.model = Arc::new(model);
        self
    }

    /// Sets a shared persistency model handle.
    #[must_use]
    pub fn model_arc(mut self, model: Arc<dyn PersistencyModel>) -> Self {
        self.config.model = model;
        self
    }

    /// Sets the number of checking workers (default: 1, as in §6.1).
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Sets the per-producer ring depth in batches. A full ring
    /// backpressures `send_trace`, bounding the engine's memory use.
    ///
    /// When not set, the depth is derived from the batch size
    /// ([`derived_queue_capacity`](crate::derived_queue_capacity)):
    /// `256 / batch_capacity`, clamped to `[8, 256]`, so the pipeline
    /// buffers a consistent number of *traces* whether submission is
    /// batched or not.
    #[must_use]
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = Some(capacity);
        self
    }

    /// Sets how many completed traces each thread collects before shipping
    /// them to the engine in one batch (default: 1 — submit immediately,
    /// like the paper). Values above one amortise dispatch overhead on
    /// short-trace workloads; see the session-level docs for the flush
    /// points.
    #[must_use]
    pub fn batch_capacity(mut self, capacity: usize) -> Self {
        self.batch_capacity = capacity.max(1);
        self
    }

    /// Configures engine telemetry (default: counters only — no clocks read
    /// on the hot path, empty event ring). See [`TelemetryConfig`].
    #[must_use]
    pub fn telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.config.telemetry = telemetry;
        self
    }

    /// Retained for replay harnesses (default: off). The sharded ingest
    /// plane is per-producer FIFO and reports are sorted by trace id, so
    /// results are reproducible regardless; this knob no longer changes
    /// scheduling. See [`crate::EngineConfig::deterministic_dispatch`].
    #[must_use]
    pub fn deterministic_dispatch(mut self, on: bool) -> Self {
        self.config.deterministic_dispatch = on;
        self
    }

    /// Enables the content-addressed verdict cache (default: off): repeated
    /// trace shapes are fingerprinted and their memoized verdict — same
    /// diagnostics, same profile deltas — replayed at hash-lookup cost. See
    /// [`crate::cache`] for the bypass predicate and memory bound.
    #[must_use]
    pub fn verdict_cache(mut self, on: bool) -> Self {
        self.config.verdict_cache.enabled = on;
        self
    }

    /// Sets the verdict cache's resident-byte bound (default: 32 MiB).
    /// Implies nothing about [`verdict_cache`](Self::verdict_cache) — the
    /// cache must still be enabled explicitly.
    #[must_use]
    pub fn verdict_cache_max_bytes(mut self, max_bytes: usize) -> Self {
        self.config.verdict_cache.max_bytes = max_bytes;
        self
    }

    /// Spawns the engine and returns the session (tracking starts *disabled*;
    /// call [`PmTestSession::start`]).
    #[must_use]
    pub fn build(self) -> PmTestSession {
        let mut config = self.config;
        config.queue_capacity = self
            .queue_capacity
            .unwrap_or_else(|| crate::engine::derived_queue_capacity(self.batch_capacity));
        PmTestSession {
            shared: Arc::new(SessionShared {
                id: NEXT_SESSION_ID.fetch_add(1, Ordering::Relaxed),
                enabled: AtomicBool::new(false),
                engine: Engine::new(config),
                next_trace: AtomicU64::new(0),
                batch_capacity: self.batch_capacity,
                vars: Mutex::new(HashMap::new()),
                prewarmed: AtomicU64::new(0),
            }),
        }
    }
}

impl PmTestSession {
    /// Starts building a session.
    #[must_use]
    pub fn builder() -> SessionBuilder {
        SessionBuilder { config: EngineConfig::default(), batch_capacity: 1, queue_capacity: None }
    }

    /// A `Sink` handle to hand to instrumented pools.
    #[must_use]
    pub fn sink(&self) -> SharedSink {
        self.shared.clone()
    }

    /// Enables tracking and testing (`PMTest_START`).
    pub fn start(&self) {
        self.shared.enabled.store(true, Ordering::Release);
    }

    /// Disables tracking and testing (`PMTest_END`).
    pub fn end(&self) {
        self.shared.enabled.store(false, Ordering::Release);
    }

    /// Whether tracking is currently enabled.
    #[must_use]
    pub fn is_started(&self) -> bool {
        self.shared.enabled.load(Ordering::Acquire)
    }

    /// Initializes per-thread tracking for the calling thread
    /// (`PMTest_THREAD_INIT`). Buffers are created lazily anyway; calling
    /// this up front matches the paper's API and pre-allocates the slot.
    pub fn thread_init(&self) {
        with_slot(&self.shared, |_| {});
    }

    /// Creates an owned per-thread recording handle — see
    /// [`ThreadRecorder`]. The handle bypasses the `Sink` path's
    /// thread-local slot registry for the lowest per-event overhead; keep
    /// one per producer thread.
    #[must_use]
    pub fn recorder(&self) -> ThreadRecorder {
        ThreadRecorder {
            arena: self.shared.engine.arena_pool().acquire(),
            span: self.shared.producer_span(),
            shared: self.shared.clone(),
        }
    }

    /// Ships the calling thread's buffered entries to the checking engine as
    /// one independent trace (`PMTest_SEND_TRACE`). Empty buffers are
    /// skipped.
    ///
    /// With a [`batch_capacity`](SessionBuilder::batch_capacity) above one
    /// the trace may sit in the thread's batch until the batch fills or a
    /// flush point is reached.
    ///
    /// Returns the trace id, if a trace was produced. If the engine's
    /// workers have terminated (it was shut down or a worker panicked) the
    /// trace is dropped and will not appear in any report.
    pub fn send_trace(&self) -> Option<u64> {
        let shared = &self.shared;
        with_slot(shared, |slot| {
            if slot.arena.open_entries() == 0 {
                return None;
            }
            let trace_id = shared.next_trace.fetch_add(1, Ordering::Relaxed);
            slot.arena.seal(trace_id);
            if slot.arena.sealed() >= shared.batch_capacity {
                // Swap in a recycled arena from the engine's pool; the
                // checked batch's arena flows back into the pool from the
                // worker. Any open tail (none here — we just sealed) would
                // carry over.
                shared.ship_from(&mut slot.arena, slot.span.as_ref(), FlushCause::Capacity);
            }
            Some(trace_id)
        })
    }

    /// Ships the calling thread's pending trace batch to the engine now.
    ///
    /// A no-op when the batch is empty — in particular always, when
    /// [`batch_capacity`](SessionBuilder::batch_capacity) is 1. Entries
    /// still being recorded (not yet `send_trace`d) are *not* flushed.
    pub fn flush(&self) {
        with_slot(&self.shared, |slot| {
            self.shared.ship_from(&mut slot.arena, slot.span.as_ref(), FlushCause::ResultPoint);
        });
    }

    /// Blocks until all submitted traces are checked and returns the
    /// accumulated results (`PMTest_GET_RESULT`). Flushes the calling
    /// thread's pending batch first.
    #[must_use]
    pub fn report(&self) -> Report {
        self.flush();
        self.shared.engine.report()
    }

    /// Like [`report`](Self::report) but drains the accumulated results.
    #[must_use]
    pub fn take_report(&self) -> Report {
        self.flush();
        self.shared.engine.take_report()
    }

    /// Engine lifetime counters (traces checked, batches submitted, queue
    /// high-water mark, backpressure stalls, …).
    #[must_use]
    pub fn stats(&self) -> crate::engine::EngineStats {
        self.shared.engine.stats()
    }

    /// Statistics of the engine's arena recycling pool — the pool this
    /// session's record batches cycle through.
    #[must_use]
    pub fn pool_stats(&self) -> pmtest_trace::PoolStats {
        self.shared.engine.arena_pool().stats()
    }

    /// Counter snapshot of the engine's verdict cache — `None` unless
    /// [`SessionBuilder::verdict_cache`] enabled it.
    #[must_use]
    pub fn verdict_cache_stats(&self) -> Option<crate::cache::VerdictCacheStats> {
        self.shared.engine.verdict_cache_stats()
    }

    /// The per-producer ring depth the engine was built with — explicit if
    /// [`SessionBuilder::queue_capacity`] was called, otherwise derived from
    /// the batch size.
    #[must_use]
    pub fn queue_capacity(&self) -> usize {
        self.shared.engine.queue_capacity()
    }

    /// Drains the diagnosis bundles captured on ERROR so far — see
    /// [`Engine::take_bundles`]. Flushes the calling thread's pending batch
    /// first so failures it contains are captured. Empty unless
    /// [`crate::TelemetryConfig::recorder`] is on.
    #[must_use]
    pub fn take_bundles(&self) -> Vec<crate::DiagnosisBundle> {
        self.flush();
        self.shared.engine.take_bundles()
    }

    /// On-demand flight-recorder capture — see [`Engine::capture_bundle`].
    /// Flushes the calling thread's pending batch first.
    #[must_use]
    pub fn capture_bundle(&self) -> Vec<crate::DiagnosisBundle> {
        self.flush();
        self.shared.engine.capture_bundle()
    }

    /// A machine-readable snapshot of the engine's telemetry — see
    /// [`Engine::telemetry_snapshot`]. Includes the session-level batching
    /// metrics (`session_batch_fill`, `session_flush_total{cause=…}`).
    #[must_use]
    pub fn telemetry_snapshot(&self) -> pmtest_obs::TelemetrySnapshot {
        self.shared.engine.telemetry_snapshot()
    }

    /// One human-readable telemetry summary line — see
    /// [`Engine::telemetry_summary`].
    #[must_use]
    pub fn telemetry_summary(&self) -> String {
        self.shared.engine.telemetry_summary()
    }

    /// Exports the captured ingest-plane spans as Chrome trace-event JSON —
    /// see [`Engine::chrome_trace`]. Empty (`{"traceEvents":[]}`-shaped)
    /// unless [`crate::TelemetryConfig::tracing`] is on.
    #[must_use]
    pub fn chrome_trace(&self) -> String {
        self.shared.engine.chrome_trace()
    }

    /// The cross-trace performance profile — see [`Engine::profile`].
    /// Flushes the calling thread's pending batch and waits for the engine
    /// so every recorded trace is aggregated. Empty unless
    /// [`crate::TelemetryConfig::profiling`] is on.
    #[must_use]
    pub fn profile(&self) -> pmtest_obs::ProfileSnapshot {
        self.flush();
        self.shared.engine.wait_idle();
        self.shared.engine.profile()
    }

    /// The advisor's ranked, source-located suggestions derived from
    /// [`profile`](Self::profile) — see [`Engine::advisor_report`].
    #[must_use]
    pub fn advisor_report(&self) -> pmtest_obs::AdvisorReport {
        self.flush();
        self.shared.engine.wait_idle();
        self.shared.engine.advisor_report()
    }

    /// Local address of the live telemetry scrape endpoint, if
    /// [`crate::TelemetryConfig::scrape_addr`] was configured — see
    /// [`Engine::scrape_addr`].
    #[must_use]
    pub fn scrape_addr(&self) -> Option<std::net::SocketAddr> {
        self.shared.engine.scrape_addr()
    }

    /// The engine's structured event log (empty unless enabled via
    /// [`SessionBuilder::telemetry`] or at runtime).
    #[must_use]
    pub fn event_log(&self) -> &pmtest_obs::EventLog {
        self.shared.engine.event_log()
    }

    /// Convenience teardown: flushes the calling thread's trace, waits for
    /// the engine, and returns everything (`PMTest_SEND_TRACE` +
    /// `PMTest_GET_RESULT` + `PMTest_EXIT`).
    #[must_use]
    pub fn finish(&self) -> Report {
        self.send_trace();
        self.end();
        self.report()
    }

    // ------------------------------------------------------------------
    // Checkers (recorded into the trace at the current program point)
    // ------------------------------------------------------------------

    /// Places an `isPersist(range)` checker (§4.4).
    #[track_caller]
    pub fn is_persist(&self, range: ByteRange) {
        self.record(Event::IsPersist(range).here());
    }

    /// Places an `isOrderedBefore(first, second)` checker (§4.4).
    #[track_caller]
    pub fn is_ordered_before(&self, first: ByteRange, second: ByteRange) {
        self.record(Event::IsOrderedBefore(first, second).here());
    }

    /// Opens a transaction-checking scope (`TX_CHECKER_START`, §5.1.1).
    #[track_caller]
    pub fn tx_checker_start(&self) {
        self.record(Event::TxCheckerStart.here());
    }

    /// Closes a transaction-checking scope (`TX_CHECKER_END`, §5.1.1),
    /// auto-injecting `isPersist` for every object modified inside it.
    #[track_caller]
    pub fn tx_checker_end(&self) {
        self.record(Event::TxCheckerEnd.here());
    }

    /// Removes `range` from the testing scope (`PMTest_EXCLUDE`).
    #[track_caller]
    pub fn exclude(&self, range: ByteRange) {
        self.record(Event::Exclude(range).here());
    }

    /// Adds `range` back to the testing scope (`PMTest_INCLUDE`).
    #[track_caller]
    pub fn include(&self, range: ByteRange) {
        self.record(Event::Include(range).here());
    }

    // ------------------------------------------------------------------
    // Variable registry (PMTest_REG_VAR / UNREG_VAR / GET_VAR)
    // ------------------------------------------------------------------

    /// Registers `range` under `name` so its persistency can be checked
    /// outside the scope where it was computed (§4.2).
    pub fn reg_var(&self, name: impl Into<String>, range: ByteRange) {
        self.shared.vars.lock().insert(name.into(), range);
    }

    /// Unregisters `name`; returns its range if it was registered.
    pub fn unreg_var(&self, name: &str) -> Option<ByteRange> {
        self.shared.vars.lock().remove(name)
    }

    /// Looks up a registered variable.
    #[must_use]
    pub fn var(&self, name: &str) -> Option<ByteRange> {
        self.shared.vars.lock().get(name).copied()
    }

    /// Places an `isPersist` checker on a registered variable; returns
    /// `false` if `name` is unknown.
    #[track_caller]
    pub fn is_persist_var(&self, name: &str) -> bool {
        match self.var(name) {
            Some(range) => {
                self.record(Event::IsPersist(range).here());
                true
            }
            None => false,
        }
    }
}

impl Sink for PmTestSession {
    #[inline]
    fn record(&self, entry: Entry) {
        self.shared.record(entry);
    }

    #[inline]
    fn is_enabled(&self) -> bool {
        self.shared.is_enabled()
    }
}

impl Sink for SessionShared {
    #[inline]
    fn record(&self, entry: Entry) {
        if !self.enabled.load(Ordering::Acquire) {
            return;
        }
        // `record` only has `&self`, so a slot created here carries no weak
        // back-reference for the drop-flush; `with_slot` repairs it on the
        // next session call from this thread.
        SLOTS.with(|s| {
            let slots = &mut *s.borrow_mut();
            if let Some(pos) = slots.pos(self.id) {
                slots.list[pos].arena.push(entry);
            } else {
                // First event on this thread before any session call.
                let mut slot = Slot {
                    session: self.id,
                    arena: TraceArena::new(),
                    span: self.producer_span(),
                    shared: Weak::new(),
                };
                slot.arena.push(entry);
                slots.last = (self.id, slots.list.len());
                slots.list.push(slot);
            }
        });
    }

    fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Acquire)
    }
}

/// An owned per-thread recording handle — the fastest way into the engine.
///
/// The [`Sink`] path (`session.record(...)`) routes every entry through a
/// thread-local slot registry: a TLS lookup plus a `RefCell` borrow per
/// event. That is what makes `&self` recording from any thread safe, and
/// its cost is real but modest — a few nanoseconds per event. A
/// `ThreadRecorder` removes it entirely by *owning* its record arena and
/// taking `&mut self`: the borrow checker replaces the runtime machinery,
/// and `record` compiles down to the enabled check plus the packed-arena
/// append. This mirrors the paper's C instrumentation, where each thread
/// writes into its own buffer with no indirection (§4.2).
///
/// Traces recorded here are interleaved with `Sink`-path traces in the same
/// session: ids come from the same counter, batches ship through the same
/// per-producer ring, and results land in the same [`Report`].
///
/// Batching follows the session's
/// [`batch_capacity`](SessionBuilder::batch_capacity). Sealed traces ship
/// when the batch fills, on [`flush`](Self::flush), or when the recorder is
/// dropped; entries recorded but never [`send_trace`](Self::send_trace)d are
/// discarded on drop, exactly like the `Sink` path's thread slots.
///
/// # Examples
///
/// ```
/// use pmtest_core::PmTestSession;
/// use pmtest_trace::Event;
/// use pmtest_interval::ByteRange;
///
/// let session = PmTestSession::builder().build();
/// session.start();
/// let mut rec = session.recorder();
/// let r = ByteRange::with_len(0, 8);
/// rec.record(Event::Write(r).here());
/// rec.record(Event::Flush(r).here());
/// rec.record(Event::Fence.here());
/// rec.is_persist(r);
/// rec.send_trace();
/// drop(rec); // ships the pending batch
/// assert!(session.take_report().is_clean());
/// ```
pub struct ThreadRecorder {
    shared: Arc<SessionShared>,
    arena: TraceArena,
    /// This recorder's producer-side span buffer (tracing layer).
    span: Option<SpanHandle>,
}

impl ThreadRecorder {
    /// Appends one entry to the open trace. A no-op while the session is
    /// stopped (before [`PmTestSession::start`] / after
    /// [`PmTestSession::end`]).
    #[inline]
    pub fn record(&mut self, entry: Entry) {
        if self.shared.enabled.load(Ordering::Acquire) {
            self.arena.push(entry);
        }
    }

    /// Places an `isPersist(range)` checker (§4.4).
    #[inline]
    #[track_caller]
    pub fn is_persist(&mut self, range: ByteRange) {
        self.record(Event::IsPersist(range).here());
    }

    /// Places an `isOrderedBefore(first, second)` checker (§4.4).
    #[inline]
    #[track_caller]
    pub fn is_ordered_before(&mut self, first: ByteRange, second: ByteRange) {
        self.record(Event::IsOrderedBefore(first, second).here());
    }

    /// Seals the entries recorded since the last seal as one trace
    /// (`PMTest_SEND_TRACE`), shipping the batch if it is now full.
    /// Returns the trace id, or `None` when nothing was recorded.
    #[inline]
    pub fn send_trace(&mut self) -> Option<u64> {
        if self.arena.open_entries() == 0 {
            return None;
        }
        let trace_id = self.shared.next_trace.fetch_add(1, Ordering::Relaxed);
        self.arena.seal(trace_id);
        if self.arena.sealed() >= self.shared.batch_capacity {
            self.shared.ship_from(&mut self.arena, self.span.as_ref(), FlushCause::Capacity);
        }
        Some(trace_id)
    }

    /// Ships the pending batch now, regardless of fill level. Entries still
    /// being recorded (not yet sealed) stay in the recorder.
    pub fn flush(&mut self) {
        self.shared.ship_from(&mut self.arena, self.span.as_ref(), FlushCause::ResultPoint);
    }

    /// The session this recorder feeds.
    #[must_use]
    pub fn session(&self) -> PmTestSession {
        PmTestSession { shared: self.shared.clone() }
    }
}

impl Drop for ThreadRecorder {
    fn drop(&mut self) {
        // Sealed traces were promised to the report; the open tail was not.
        self.shared.ship_from(&mut self.arena, self.span.as_ref(), FlushCause::ThreadExit);
    }
}

impl fmt::Debug for ThreadRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadRecorder")
            .field("session", &self.shared.id)
            .field("open_entries", &self.arena.open_entries())
            .field("sealed", &self.arena.sealed())
            .finish()
    }
}

impl fmt::Debug for PmTestSession {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PmTestSession")
            .field("id", &self.shared.id)
            .field("started", &self.is_started())
            .field("batch_capacity", &self.shared.batch_capacity)
            .field("engine", &self.shared.engine)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::DiagKind;
    use crate::model::HopsModel;

    fn r(s: u64, e: u64) -> ByteRange {
        ByteRange::new(s, e)
    }

    #[test]
    fn queue_capacity_is_derived_from_the_batch_size() {
        assert_eq!(PmTestSession::builder().build().queue_capacity(), 256);
        assert_eq!(PmTestSession::builder().batch_capacity(32).build().queue_capacity(), 32);
        assert_eq!(PmTestSession::builder().batch_capacity(4).build().queue_capacity(), 64);
        // An explicit setting always wins, in either call order.
        let s = PmTestSession::builder().batch_capacity(32).queue_capacity(4).build();
        assert_eq!(s.queue_capacity(), 4);
        let s = PmTestSession::builder().queue_capacity(4).batch_capacity(32).build();
        assert_eq!(s.queue_capacity(), 4);
    }

    #[test]
    fn disabled_session_records_nothing() {
        let session = PmTestSession::builder().build();
        assert!(!session.is_started());
        session.record(Event::Write(r(0, 8)).here());
        assert!(session.send_trace().is_none());
        assert!(session.report().is_clean());
    }

    #[test]
    fn start_end_toggles_tracking() {
        let session = PmTestSession::builder().build();
        session.start();
        session.record(Event::Write(r(0, 8)).here());
        session.end();
        session.record(Event::Write(r(8, 16)).here()); // dropped
        session.start();
        session.is_persist(r(0, 16));
        assert!(session.send_trace().is_some());
        let report = session.report();
        // Only the first write was tracked; only it can fail isPersist.
        assert_eq!(report.fail_count(), 1);
        assert_eq!(report.iter().next().unwrap().range, Some(r(0, 8)));
    }

    #[test]
    fn traces_are_independent() {
        let session = PmTestSession::builder().build();
        session.start();
        session.record(Event::Write(r(0, 8)).here());
        session.send_trace();
        // New trace: fresh shadow memory, the earlier write is unknown.
        session.is_persist(r(0, 8));
        session.send_trace();
        let report = session.finish();
        assert!(report.is_clean(), "checker in a fresh trace is vacuous");
    }

    #[test]
    fn per_thread_buffers_do_not_mix() {
        let session = PmTestSession::builder().workers(2).build();
        session.start();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let session = session.clone();
                s.spawn(move || {
                    session.thread_init();
                    for _ in 0..10 {
                        session.record(Event::Write(r(0, 8)).here());
                        session.record(Event::Flush(r(0, 8)).here());
                        session.record(Event::Fence.here());
                        session.is_persist(r(0, 8));
                        session.send_trace().expect("trace submitted");
                    }
                });
            }
        });
        let report = session.finish();
        assert_eq!(report.traces().len(), 40);
        assert!(report.is_clean());
    }

    #[test]
    fn hops_model_session() {
        let session = PmTestSession::builder().model(HopsModel::new()).build();
        session.start();
        session.record(Event::Write(r(0, 8)).here());
        session.record(Event::OFence.here());
        session.record(Event::Write(r(64, 72)).here());
        session.record(Event::DFence.here());
        session.is_ordered_before(r(0, 8), r(64, 72));
        let report = session.finish();
        assert!(report.is_clean(), "got {report}");
    }

    #[test]
    fn var_registry_round_trip() {
        let session = PmTestSession::builder().build();
        session.start();
        session.reg_var("backup", r(0, 16));
        assert_eq!(session.var("backup"), Some(r(0, 16)));
        session.record(Event::Write(r(0, 16)).here());
        assert!(session.is_persist_var("backup"));
        assert!(!session.is_persist_var("nope"));
        assert_eq!(session.unreg_var("backup"), Some(r(0, 16)));
        assert_eq!(session.var("backup"), None);
        let report = session.finish();
        assert_eq!(report.fail_count(), 1, "registered var checked");
    }

    #[test]
    fn duplicate_flush_warn_reaches_report() {
        let session = PmTestSession::builder().build();
        session.start();
        session.record(Event::Write(r(0, 8)).here());
        session.record(Event::Flush(r(0, 8)).here());
        session.record(Event::Flush(r(0, 8)).here());
        let report = session.finish();
        assert_eq!(report.warn_count(), 1);
        assert!(report.has(DiagKind::DuplicateFlush));
    }

    #[test]
    fn session_clones_share_state() {
        let session = PmTestSession::builder().build();
        let clone = session.clone();
        session.start();
        assert!(clone.is_started());
        clone.record(Event::Write(r(0, 8)).here());
        clone.is_persist(r(0, 8));
        // Same thread: same buffer, session can send what clone recorded.
        assert!(session.send_trace().is_some());
        assert_eq!(session.report().fail_count(), 1);
    }

    // --------------------------------------------------------------
    // Batched submission
    // --------------------------------------------------------------

    fn record_clean_trace(session: &PmTestSession) {
        session.record(Event::Write(r(0, 8)).here());
        session.record(Event::Flush(r(0, 8)).here());
        session.record(Event::Fence.here());
        session.is_persist(r(0, 8));
        session.send_trace().expect("trace submitted");
    }

    #[test]
    fn batches_ship_when_full() {
        let session = PmTestSession::builder().batch_capacity(4).build();
        session.start();
        for _ in 0..8 {
            record_clean_trace(&session);
        }
        // Two full batches of four shipped without any flush call.
        assert_eq!(session.stats().batches_submitted, 2);
        assert_eq!(session.stats().traces_submitted, 8);
        assert!(session.report().is_clean());
    }

    #[test]
    fn report_flushes_partial_batch() {
        let session = PmTestSession::builder().batch_capacity(32).build();
        session.start();
        for _ in 0..5 {
            record_clean_trace(&session);
        }
        let report = session.report();
        assert_eq!(report.traces().len(), 5, "partial batch reached the engine");
        let stats = session.stats();
        assert_eq!(stats.batches_submitted, 1);
        assert!((stats.mean_batch_size() - 5.0).abs() < f64::EPSILON);
    }

    #[test]
    fn explicit_flush_ships_partial_batch() {
        let session = PmTestSession::builder().batch_capacity(32).build();
        session.start();
        for _ in 0..3 {
            record_clean_trace(&session);
        }
        assert_eq!(session.stats().traces_submitted, 0, "still batched");
        session.flush();
        session.flush(); // second flush is a no-op
        let stats = session.stats();
        assert_eq!(stats.traces_submitted, 3);
        assert_eq!(stats.batches_submitted, 1);
    }

    #[test]
    fn thread_exit_flushes_pending_batch() {
        let session = PmTestSession::builder().batch_capacity(64).workers(2).build();
        session.start();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let session = session.clone();
                    s.spawn(move || {
                        session.thread_init();
                        for _ in 0..10 {
                            record_clean_trace(&session);
                        }
                        // Batch (10 < 64) still pending here; the thread-local
                        // slot's Drop must ship it on thread exit.
                    })
                })
                .collect();
            // Join each handle explicitly: the scope exit itself only waits
            // for the closures to return, which happens *before* TLS
            // destructors — and the drop-flush under test runs in one.
            for h in handles {
                h.join().unwrap();
            }
        });
        let report = session.finish();
        assert_eq!(report.traces().len(), 40, "no trace lost to thread exit");
        assert!(report.is_clean());
    }

    #[test]
    fn sink_only_thread_flushes_pending_batch_on_exit() {
        // A thread whose *first* session interaction is `record` through the
        // shared sink (the normal instrumented-pool path) gets its slot from
        // `SessionShared::record`, which cannot attach the drop-flush
        // back-reference. `with_slot` must repair it, or the thread's whole
        // pending batch vanishes on exit.
        let session = PmTestSession::builder().batch_capacity(64).build();
        session.start();
        let handle = {
            let session = session.clone();
            std::thread::spawn(move || {
                let sink = session.sink();
                for _ in 0..10 {
                    // No thread_init: the sink record creates the slot.
                    sink.record(Event::Write(r(0, 8)).here());
                    sink.record(Event::Flush(r(0, 8)).here());
                    sink.record(Event::Fence.here());
                    session.is_persist(r(0, 8));
                    session.send_trace().expect("trace submitted");
                }
                // 10 < 64: everything is still in the pending batch here.
            })
        };
        handle.join().unwrap();
        let report = session.report();
        assert_eq!(report.traces().len(), 10, "drop-flush shipped the batch");
        assert!(report.is_clean());
    }

    fn flush_cause_count(snap: &pmtest_obs::TelemetrySnapshot, cause: &str) -> u64 {
        snap.counters
            .iter()
            .filter(|c| {
                c.name == "session_flush_total"
                    && c.labels.iter().any(|(k, v)| k == "cause" && v == cause)
            })
            .map(|c| c.value)
            .sum()
    }

    #[test]
    fn flush_causes_and_batch_fill_are_recorded() {
        let session = PmTestSession::builder().batch_capacity(4).build();
        session.start();
        for _ in 0..9 {
            record_clean_trace(&session);
        }
        // 9 traces at capacity 4: two capacity flushes, one trace pending.
        let report = session.report(); // result-point flush ships the ninth
        assert_eq!(report.traces().len(), 9);
        let snap = session.telemetry_snapshot();
        assert_eq!(flush_cause_count(&snap, "capacity"), 2);
        assert_eq!(flush_cause_count(&snap, "result_point"), 1);
        assert_eq!(flush_cause_count(&snap, "thread_exit"), 0);
        let fill = snap.histogram("session_batch_fill").expect("registered");
        assert_eq!(fill.count, 3);
        assert_eq!(fill.sum, 9, "4 + 4 + 1 traces across the three batches");
    }

    #[test]
    fn thread_exit_flush_cause_is_attributed() {
        let session = PmTestSession::builder().batch_capacity(64).build();
        session.start();
        let handle = {
            let session = session.clone();
            std::thread::spawn(move || {
                session.thread_init();
                for _ in 0..5 {
                    record_clean_trace(&session);
                }
            })
        };
        handle.join().unwrap();
        let report = session.report();
        assert_eq!(report.traces().len(), 5);
        let snap = session.telemetry_snapshot();
        assert_eq!(flush_cause_count(&snap, "thread_exit"), 1);
        assert_eq!(flush_cause_count(&snap, "capacity"), 0);
    }

    #[test]
    fn session_event_log_captures_flushes() {
        let session = PmTestSession::builder()
            .batch_capacity(2)
            .telemetry(TelemetryConfig::enabled())
            .build();
        session.start();
        for _ in 0..4 {
            record_clean_trace(&session);
        }
        assert!(session.report().is_clean());
        let events = session.event_log().snapshot();
        let flushes: Vec<_> = events.iter().filter(|e| e.name == "session.flush").collect();
        assert_eq!(flushes.len(), 2, "two capacity flushes recorded as events");
        let snap = session.telemetry_snapshot();
        assert!(!snap.events.is_empty(), "snapshot carries the event ring");
    }

    #[test]
    fn batching_defaults_off() {
        let session = PmTestSession::builder().build();
        session.start();
        for _ in 0..3 {
            record_clean_trace(&session);
        }
        let stats = session.stats();
        assert_eq!(stats.batches_submitted, 3, "capacity 1 submits immediately");
        assert_eq!(stats.traces_submitted, 3);
    }

    #[test]
    fn batched_sessions_with_many_threads_keep_the_pool_warm() {
        // Stress shape: many producer threads shipping many batches each.
        // The per-producer pre-warm (queue_capacity + 1 arenas released at
        // slot creation) must hold the arena pool hit rate at steady-state
        // levels from the first batch — this was 0.79 cold at w4/b32.
        let session =
            PmTestSession::builder().workers(4).batch_capacity(16).queue_capacity(8).build();
        session.start();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..6)
                .map(|_| {
                    let session = session.clone();
                    s.spawn(move || {
                        session.thread_init();
                        for _ in 0..100 {
                            record_clean_trace(&session);
                        }
                        session.flush();
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
        let report = session.finish();
        assert_eq!(report.traces().len(), 600, "no trace lost under stress");
        assert!(report.is_clean());
        let pool = session.pool_stats();
        assert!(
            pool.hit_rate() >= 0.9,
            "pre-warmed arena pool must serve >=90% of acquires: {pool:?}"
        );
    }

    #[test]
    fn buffers_recycle_between_traces() {
        let session = PmTestSession::builder().build();
        session.start();
        for _ in 0..10 {
            record_clean_trace(&session);
        }
        // Barrier: every checked batch has returned its arena to the pool,
        // so the next round's acquires must be recycles.
        assert!(session.report().is_clean());
        for _ in 0..10 {
            record_clean_trace(&session);
        }
        assert!(session.report().is_clean());
        let pool = session.pool_stats();
        assert_eq!(pool.released, 20, "workers return every arena (one per trace at capacity 1)");
        assert!(pool.recycled > 0, "later traces reuse returned arenas");
    }

    #[test]
    fn ship_spans_appear_in_the_chrome_trace() {
        let session = PmTestSession::builder()
            .batch_capacity(2)
            .telemetry(TelemetryConfig::tracing_only())
            .build();
        session.start();
        for _ in 0..4 {
            record_clean_trace(&session);
        }
        assert!(session.report().is_clean());
        let json = session.chrome_trace();
        let stats = pmtest_obs::trace_event::validate_str(&json).expect("loadable trace");
        // Two capacity ships on the producer side plus claim/replay/merge
        // per batch on the worker side.
        assert!(stats.pairs >= 8, "expected ship + worker stage spans, got {stats:?}");
        for name in ["ship", "claim", "replay", "merge"] {
            assert!(json.contains(&format!("\"name\":\"{name}\"")), "span {name} missing");
        }
    }

    #[test]
    fn arena_tallies_fold_into_the_snapshot_at_ship_time() {
        let session = PmTestSession::builder().batch_capacity(8).build();
        session.start();
        for _ in 0..32 {
            record_clean_trace(&session);
        }
        assert!(session.report().is_clean());
        let snap = session.telemetry_snapshot();
        // Growing the first arena from empty reallocates at least once.
        assert!(snap.counter("engine_arena_slab_allocs").unwrap_or(0) >= 1);
        // Every recorded entry resolves its source location through some
        // intern tier; repeats within a batch hit the arena cache.
        let interns = snap.counter_sum("engine_intern_hits");
        assert!(interns >= 32, "expected intern tier hits, got {interns}");
        let arena_hits = snap
            .counters
            .iter()
            .filter(|c| {
                c.name == "engine_intern_hits"
                    && c.labels.iter().any(|(k, v)| k == "tier" && v == "arena")
            })
            .map(|c| c.value)
            .sum::<u64>();
        assert!(arena_hits > 0, "repeat sites must hit the arena-resident cache");
    }
}
