//! Engine telemetry: the typed metrics the checking pipeline exposes
//! through [`pmtest_obs`].
//!
//! The engine's counters are always on — each is one `Relaxed` atomic op on
//! an already-atomic-heavy path, which is why telemetry-off overhead is
//! within noise (see DESIGN.md §9 for the budget). The *timing* layer
//! (per-checker latency histograms, dispatch latency, worker utilization,
//! per-worker [`TraceStats`] aggregation) costs `Instant` reads per entry
//! and is opt-in via [`TelemetryConfig::timing`]; the structured
//! [`EventLog`] ring is likewise behind [`TelemetryConfig::events`].

use std::time::Instant;

use parking_lot::Mutex;
use pmtest_obs::{Counter, EventLog, Gauge, Histogram, MetricsRegistry, TelemetrySnapshot};
use pmtest_trace::{Event, FlightRecorder, TraceStats};

use crate::diag::DiagKind;

/// What the engine records beyond its always-on counters.
///
/// The default is everything off: counters and the queue-depth gauge still
/// update (they are single relaxed atomics), but no clocks are read on the
/// hot path and the event ring stays empty.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Record latency histograms (per-checker, per-trace, dispatch), worker
    /// busy time / utilization, and per-worker [`TraceStats`] aggregation.
    /// Costs two `Instant` reads per trace entry on the worker side.
    pub timing: bool,
    /// Record structured events (batch spans, flush causes) into the ring.
    pub events: bool,
    /// Capacity of the event ring (oldest events are overwritten).
    pub event_capacity: usize,
    /// Keep a per-worker flight-recorder ring of recently replayed entries
    /// with the interval state the model assigned, and emit a diagnosis
    /// bundle whenever a checker fires an ERROR (see DESIGN.md §11). Costs
    /// an interval snapshot per entry on the worker side.
    pub recorder: bool,
    /// Steps retained per worker by the flight recorder.
    pub recorder_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self::off()
    }
}

impl TelemetryConfig {
    /// Counters only — the zero-cost default.
    #[must_use]
    pub fn off() -> Self {
        Self {
            timing: false,
            events: false,
            event_capacity: EventLog::DEFAULT_CAPACITY,
            recorder: false,
            recorder_capacity: FlightRecorder::DEFAULT_CAPACITY,
        }
    }

    /// Everything on: timing histograms, the event ring, and the flight
    /// recorder (diagnosis bundles on ERROR).
    #[must_use]
    pub fn enabled() -> Self {
        Self {
            timing: true,
            events: true,
            event_capacity: EventLog::DEFAULT_CAPACITY,
            recorder: true,
            recorder_capacity: FlightRecorder::DEFAULT_CAPACITY,
        }
    }

    /// Timing histograms without the event ring.
    #[must_use]
    pub fn timing_only() -> Self {
        Self { timing: true, ..Self::off() }
    }

    /// Flight recorder only: bundles on ERROR, no timing, no event ring.
    #[must_use]
    pub fn recorder_only() -> Self {
        Self { recorder: true, ..Self::off() }
    }
}

/// Cost category a trace entry is attributed to in the per-checker
/// wall-time histograms (`engine_checker_ns{checker=…}`), so `isPersist`
/// cost is separable from `TX_CHECKER` maintenance and from replaying plain
/// PM operations against the model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckerCategory {
    /// Plain PM operations replayed into the shadow memory
    /// (write/flush/fence, any flavour).
    ModelReplay,
    /// `isPersist` checkers.
    IsPersist,
    /// `isOrderedBefore` checkers.
    IsOrderedBefore,
    /// Transaction bookkeeping and the high-level checker
    /// (`TX_BEGIN`/`TX_END`/`TX_ADD`, `TX_CHECKER_START`/`END`).
    TxChecker,
    /// Scope control (exclude/include).
    Scope,
}

impl CheckerCategory {
    /// Every category, in histogram registration order.
    pub const ALL: [CheckerCategory; 5] = [
        CheckerCategory::ModelReplay,
        CheckerCategory::IsPersist,
        CheckerCategory::IsOrderedBefore,
        CheckerCategory::TxChecker,
        CheckerCategory::Scope,
    ];

    /// The category charged for processing `event`.
    #[must_use]
    pub fn of(event: &Event) -> Self {
        match event {
            Event::Write(_) | Event::Flush(_) | Event::Fence | Event::OFence | Event::DFence => {
                CheckerCategory::ModelReplay
            }
            Event::IsPersist(_) => CheckerCategory::IsPersist,
            Event::IsOrderedBefore(_, _) => CheckerCategory::IsOrderedBefore,
            Event::TxBegin
            | Event::TxEnd
            | Event::TxAdd(_)
            | Event::TxCheckerStart
            | Event::TxCheckerEnd => CheckerCategory::TxChecker,
            Event::Exclude(_) | Event::Include(_) => CheckerCategory::Scope,
        }
    }

    /// The `checker` label value of the category's histogram.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            CheckerCategory::ModelReplay => "model_replay",
            CheckerCategory::IsPersist => "is_persist",
            CheckerCategory::IsOrderedBefore => "is_ordered_before",
            CheckerCategory::TxChecker => "tx_checker",
            CheckerCategory::Scope => "scope",
        }
    }
}

/// Why a session shipped a pending trace batch to the engine
/// (`session_flush_total{cause=…}`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlushCause {
    /// The per-thread batch reached `batch_capacity`.
    Capacity,
    /// A result point — `flush`, `report`, `take_report`, or `finish`.
    ResultPoint,
    /// The recording thread exited with traces still batched.
    ThreadExit,
}

impl FlushCause {
    /// The `cause` label value.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            FlushCause::Capacity => "capacity",
            FlushCause::ResultPoint => "result_point",
            FlushCause::ThreadExit => "thread_exit",
        }
    }
}

/// The engine's typed metric handles, shared with its workers.
pub(crate) struct EngineTelemetry {
    registry: MetricsRegistry,
    /// Structured event ring (batch spans, flush events).
    pub(crate) events: EventLog,
    /// Whether the timing layer is on (checked by workers and dispatch).
    pub(crate) timing: bool,
    started: Instant,
    /// Submit → worker-dequeue latency, ns (timing only).
    pub(crate) dispatch_latency: Histogram,
    /// Queue depth of the chosen worker, sampled on every submit.
    pub(crate) queue_depth: Gauge,
    /// Whole-trace check latency, ns (timing only).
    pub(crate) check_latency: Histogram,
    /// Per-category entry-processing time, ns (timing only); indexed like
    /// [`CheckerCategory::ALL`].
    pub(crate) checker_ns: [Histogram; CheckerCategory::ALL.len()],
    /// Whole-trace fused-replay time on the clock-free worker path, ns,
    /// timed once per trace (timing only). The per-entry `checker_ns`
    /// histograms attribute cost per checker category; this one measures the
    /// single-pass loop the engine actually runs in production mode.
    pub(crate) fused_replay: Histogram,
    /// Flat→BTree representation switches across the workers' recycled
    /// segment maps (always on — the delta is folded in once per trace).
    pub(crate) segmap_repr_switches: Counter,
    /// FAIL/WARN production per [`DiagKind`]; indexed like [`DiagKind::ALL`].
    diag_kinds: [Counter; DiagKind::ALL.len()],
    /// Busy nanoseconds per worker (timing only).
    pub(crate) worker_busy: Vec<Counter>,
    /// Aggregated [`TraceStats`] per worker (timing only).
    pub(crate) worker_stats: Vec<Mutex<TraceStats>>,
    /// Traces per shipped session batch.
    pub(crate) batch_fill: Histogram,
    flush_causes: [Counter; 3],
}

impl EngineTelemetry {
    pub(crate) fn new(workers: usize, config: TelemetryConfig) -> Self {
        let registry = MetricsRegistry::new();
        let events = EventLog::with_capacity(config.event_capacity.max(1));
        events.set_enabled(config.events);
        let checker_ns = CheckerCategory::ALL
            .map(|c| registry.histogram("engine_checker_ns", &[("checker", c.label())]));
        let diag_kinds = DiagKind::ALL.map(|k| {
            registry.counter(
                "engine_diag_total",
                &[("code", k.code()), ("severity", k.severity().as_str())],
            )
        });
        let worker_busy = (0..workers)
            .map(|i| {
                let worker = i.to_string();
                registry.counter("engine_worker_busy_ns", &[("worker", &worker)])
            })
            .collect();
        Self {
            events,
            timing: config.timing,
            started: Instant::now(),
            dispatch_latency: registry.histogram("engine_dispatch_latency_ns", &[]),
            queue_depth: registry.gauge("engine_queue_depth", &[]),
            check_latency: registry.histogram("engine_check_latency_ns", &[]),
            checker_ns,
            fused_replay: registry.histogram("engine_fused_replay_ns", &[]),
            segmap_repr_switches: registry.counter("engine_segmap_repr_switches", &[]),
            diag_kinds,
            worker_busy,
            worker_stats: (0..workers).map(|_| Mutex::new(TraceStats::default())).collect(),
            batch_fill: registry.histogram("session_batch_fill", &[]),
            flush_causes: [
                registry.counter("session_flush_total", &[("cause", FlushCause::Capacity.label())]),
                registry
                    .counter("session_flush_total", &[("cause", FlushCause::ResultPoint.label())]),
                registry
                    .counter("session_flush_total", &[("cause", FlushCause::ThreadExit.label())]),
            ],
            registry,
        }
    }

    /// The counter for one diagnostic kind.
    pub(crate) fn diag_counter(&self, kind: DiagKind) -> &Counter {
        let idx = DiagKind::ALL.iter().position(|k| *k == kind).expect("kind listed in ALL");
        &self.diag_kinds[idx]
    }

    /// Records one shipped session batch.
    pub(crate) fn note_batch_shipped(&self, cause: FlushCause, traces: usize) {
        self.batch_fill.record(traces as u64);
        self.flush_causes[cause as usize].inc();
        if self.events.is_enabled() {
            self.events.record(
                "session.flush",
                &[("cause", cause.label().into()), ("traces", (traces as u64).into())],
            );
        }
    }

    /// The per-category histogram charged for `event`.
    pub(crate) fn checker_histogram(&self, event: &Event) -> &Histogram {
        &self.checker_ns[CheckerCategory::of(event) as usize]
    }

    /// Registry metrics plus derived per-worker gauges and the event ring.
    pub(crate) fn snapshot(&self) -> TelemetrySnapshot {
        let mut snap = self.registry.snapshot();
        let uptime_ns = self.started.elapsed().as_nanos() as f64;
        for (i, busy) in self.worker_busy.iter().enumerate() {
            let worker = i.to_string();
            snap.push_gauge(
                "engine_worker_utilization",
                &[("worker", &worker)],
                busy.get() as f64 / uptime_ns.max(1.0),
            );
        }
        if self.timing {
            for (i, stats) in self.worker_stats.iter().enumerate() {
                let stats = *stats.lock();
                let worker = i.to_string();
                let labels: &[(&str, &str)] = &[("worker", &worker)];
                snap.push_counter("engine_worker_entries", labels, stats.entries);
                snap.push_counter("engine_worker_writes", labels, stats.writes);
                snap.push_counter("engine_worker_fences", labels, stats.fences);
                snap.push_counter("engine_worker_ofences", labels, stats.ofences);
                snap.push_counter("engine_worker_dfences", labels, stats.dfences);
                snap.push_counter("engine_worker_epochs", labels, stats.epochs());
                snap.push_gauge(
                    "engine_worker_avg_writes_per_epoch",
                    labels,
                    stats.avg_writes_per_epoch(),
                );
                snap.push_gauge(
                    "engine_worker_max_writes_per_epoch",
                    labels,
                    stats.max_writes_per_epoch as f64,
                );
            }
        }
        snap.push_counter("engine_events_dropped", &[], self.events.dropped());
        snap.events = self.events.snapshot();
        snap
    }
}

/// A one-line human summary of an engine snapshot — traces checked, check
/// latency p50/p99, queue high-water, diagnostics — for examples and
/// harnesses to dogfood the telemetry API without formatting it themselves.
#[must_use]
pub fn summary_line(snap: &TelemetrySnapshot) -> String {
    let traces = snap.counter("engine_traces_checked").unwrap_or(0);
    let highwater = snap.counter("engine_queue_highwater").unwrap_or(0);
    let sev_total = |sev: &str| -> u64 {
        snap.counters
            .iter()
            .filter(|c| {
                c.name == "engine_diag_total"
                    && c.labels.iter().any(|(k, v)| k == "severity" && v == sev)
            })
            .map(|c| c.value)
            .sum()
    };
    let latency = match snap.histogram("engine_check_latency_ns") {
        Some(h) if h.count > 0 => {
            format!("check p50 {:.1}µs / p99 {:.1}µs", h.p50 / 1_000.0, h.p99 / 1_000.0)
        }
        _ => "check latency n/a (timing off)".to_owned(),
    };
    format!(
        "telemetry: {traces} traces checked, {latency}, queue high-water {highwater}, \
         {} FAIL / {} WARN",
        sev_total("FAIL"),
        sev_total("WARN"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmtest_interval::ByteRange;

    #[test]
    fn every_event_maps_to_a_category() {
        let r = ByteRange::with_len(0, 8);
        assert_eq!(CheckerCategory::of(&Event::Write(r)), CheckerCategory::ModelReplay);
        assert_eq!(CheckerCategory::of(&Event::Flush(r)), CheckerCategory::ModelReplay);
        assert_eq!(CheckerCategory::of(&Event::Fence), CheckerCategory::ModelReplay);
        assert_eq!(CheckerCategory::of(&Event::OFence), CheckerCategory::ModelReplay);
        assert_eq!(CheckerCategory::of(&Event::DFence), CheckerCategory::ModelReplay);
        assert_eq!(CheckerCategory::of(&Event::IsPersist(r)), CheckerCategory::IsPersist);
        assert_eq!(
            CheckerCategory::of(&Event::IsOrderedBefore(r, r)),
            CheckerCategory::IsOrderedBefore
        );
        assert_eq!(CheckerCategory::of(&Event::TxBegin), CheckerCategory::TxChecker);
        assert_eq!(CheckerCategory::of(&Event::TxAdd(r)), CheckerCategory::TxChecker);
        assert_eq!(CheckerCategory::of(&Event::TxCheckerEnd), CheckerCategory::TxChecker);
        assert_eq!(CheckerCategory::of(&Event::Exclude(r)), CheckerCategory::Scope);
        // Labels are distinct (they key the histogram label set).
        let mut labels: Vec<_> = CheckerCategory::ALL.iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), CheckerCategory::ALL.len());
    }

    #[test]
    fn diag_counters_cover_every_kind() {
        let tel = EngineTelemetry::new(1, TelemetryConfig::off());
        for kind in DiagKind::ALL {
            tel.diag_counter(kind).inc();
        }
        let snap = tel.snapshot();
        let total: u64 = snap.counter_sum("engine_diag_total");
        assert_eq!(total, DiagKind::ALL.len() as u64);
    }

    #[test]
    fn summary_line_reports_timing_state() {
        let tel = EngineTelemetry::new(1, TelemetryConfig::off());
        let s = summary_line(&tel.snapshot());
        assert!(s.contains("timing off"), "{s}");
        let tel = EngineTelemetry::new(1, TelemetryConfig::enabled());
        tel.check_latency.record(1_500);
        let mut snap = tel.snapshot();
        snap.push_counter("engine_traces_checked", &[], 1);
        let s = summary_line(&snap);
        assert!(s.contains("1 traces checked"), "{s}");
        assert!(s.contains("p50"), "{s}");
    }
}
