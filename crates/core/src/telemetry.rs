//! Engine telemetry: the typed metrics the checking pipeline exposes
//! through [`pmtest_obs`].
//!
//! The engine's counters are always on — each is one `Relaxed` atomic op on
//! an already-atomic-heavy path, which is why telemetry-off overhead is
//! within noise (see DESIGN.md §9 for the budget). The *timing* layer
//! (per-checker latency histograms, dispatch latency, worker utilization,
//! per-worker [`TraceStats`] aggregation) costs `Instant` reads per entry
//! and is opt-in via [`TelemetryConfig::timing`]; the structured
//! [`EventLog`] ring is likewise behind [`TelemetryConfig::events`].

use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use pmtest_interval::{ByteRange, SegmentMap};
use pmtest_obs::advisor::AdvisorReport;
use pmtest_obs::{
    Counter, EventLog, Gauge, Histogram, MetricsRegistry, ProfileStore, SiteDelta, SpanSink,
    TelemetrySnapshot,
};
use pmtest_trace::packed::decode_next;
use pmtest_trace::{ArenaStats, Event, FlightRecorder, LocResolver, PackedEntry, TraceStats};

use crate::diag::{Diag, DiagKind, Severity};

/// What the engine records beyond its always-on counters.
///
/// The default is everything off: counters and the queue-depth gauge still
/// update (they are single relaxed atomics), but no clocks are read on the
/// hot path, the event ring stays empty, and the span buffers are never
/// even allocated.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Record latency histograms (per-checker, per-trace, dispatch, the
    /// five pipeline stages), worker busy time / utilization, and
    /// per-worker [`TraceStats`] aggregation. Costs two `Instant` reads per
    /// trace entry on the worker side.
    pub timing: bool,
    /// Record structured events (batch spans, flush causes) into the ring.
    pub events: bool,
    /// Capacity of the event ring (oldest events are overwritten).
    pub event_capacity: usize,
    /// Keep a per-worker flight-recorder ring of recently replayed entries
    /// with the interval state the model assigned, and emit a diagnosis
    /// bundle whenever a checker fires an ERROR (see DESIGN.md §11). Costs
    /// an interval snapshot per entry on the worker side.
    pub recorder: bool,
    /// Steps retained per worker by the flight recorder.
    pub recorder_capacity: usize,
    /// Record per-thread ingest spans (ship/claim/replay/merge) into
    /// lock-free span buffers, exportable as Perfetto-loadable Chrome
    /// trace-event JSON (see DESIGN.md §14). When off — the default — the
    /// record path is one relaxed atomic load and a branch.
    pub tracing: bool,
    /// Spans retained per thread by the span buffers (newest win).
    pub tracing_capacity: usize,
    /// Aggregate a cross-trace performance profile: per-`SourceLoc`
    /// flush/fence/log counts, wasted-persist bytes, and WARN diagnostics,
    /// feeding the optimization advisor (see DESIGN.md §16). When off — the
    /// default — the per-trace cost is one relaxed atomic load and a branch.
    pub profiling: bool,
    /// When set (e.g. `"127.0.0.1:9184"`), the engine serves its live
    /// telemetry over HTTP from this address: `GET /metrics` (Prometheus
    /// text exposition) and `GET /snapshot.json`. Port `0` binds an
    /// OS-assigned port, readable from `Engine::scrape_addr`.
    pub scrape_addr: Option<String>,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self::off()
    }
}

impl TelemetryConfig {
    /// Counters only — the zero-cost default.
    #[must_use]
    pub fn off() -> Self {
        Self {
            timing: false,
            events: false,
            event_capacity: EventLog::DEFAULT_CAPACITY,
            recorder: false,
            recorder_capacity: FlightRecorder::DEFAULT_CAPACITY,
            tracing: false,
            tracing_capacity: pmtest_obs::DEFAULT_SPAN_CAPACITY,
            profiling: false,
            scrape_addr: None,
        }
    }

    /// Everything on: timing histograms, the event ring, the flight
    /// recorder (diagnosis bundles on ERROR), span tracing, and the
    /// cross-trace performance profile. The scrape endpoint stays off —
    /// opt in with [`with_scrape`](Self::with_scrape).
    #[must_use]
    pub fn enabled() -> Self {
        Self {
            timing: true,
            events: true,
            recorder: true,
            tracing: true,
            profiling: true,
            ..Self::off()
        }
    }

    /// Timing histograms without the event ring.
    #[must_use]
    pub fn timing_only() -> Self {
        Self { timing: true, ..Self::off() }
    }

    /// Flight recorder only: bundles on ERROR, no timing, no event ring.
    #[must_use]
    pub fn recorder_only() -> Self {
        Self { recorder: true, ..Self::off() }
    }

    /// Span tracing only: per-thread ingest spans, no timing histograms.
    #[must_use]
    pub fn tracing_only() -> Self {
        Self { tracing: true, ..Self::off() }
    }

    /// Cross-trace performance profiling only: the advisor's site-keyed
    /// profile store, no timing histograms, no rings.
    #[must_use]
    pub fn profiling_only() -> Self {
        Self { profiling: true, ..Self::off() }
    }

    /// Turns span tracing on.
    #[must_use]
    pub fn with_tracing(mut self) -> Self {
        self.tracing = true;
        self
    }

    /// Turns cross-trace performance profiling on.
    #[must_use]
    pub fn with_profiling(mut self) -> Self {
        self.profiling = true;
        self
    }

    /// Serves live telemetry over HTTP from `addr` (see
    /// [`scrape_addr`](Self::scrape_addr)).
    #[must_use]
    pub fn with_scrape(mut self, addr: impl Into<String>) -> Self {
        self.scrape_addr = Some(addr.into());
        self
    }
}

/// A pipeline stage of the ingest plane, as decomposed by the
/// `engine_stage_ns{stage=…}` latency histograms: one trace's life is
/// record→ring-push on the producer, the ring wait, claim (or steal) to
/// replay start on the worker, the replay itself, and the report merge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Producer side: sealing the batch and pushing it into the producer's
    /// ring, including any backpressure wait.
    RecordPush,
    /// Submit to worker dequeue: time the batch sat in the ring.
    RingWait,
    /// Worker dequeue to first replay: shadow-state acquisition and batch
    /// unpacking.
    ClaimReplay,
    /// Replaying the batch through the checkers.
    Replay,
    /// Appending results to the report shard and settling the tallies.
    ReportMerge,
}

impl Stage {
    /// Every stage, in histogram registration order.
    pub const ALL: [Stage; 5] =
        [Stage::RecordPush, Stage::RingWait, Stage::ClaimReplay, Stage::Replay, Stage::ReportMerge];

    /// The `stage` label value of the stage's histogram.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Stage::RecordPush => "record_push",
            Stage::RingWait => "ring_wait",
            Stage::ClaimReplay => "claim_replay",
            Stage::Replay => "replay",
            Stage::ReportMerge => "report_merge",
        }
    }
}

/// Cost category a trace entry is attributed to in the per-checker
/// wall-time histograms (`engine_checker_ns{checker=…}`), so `isPersist`
/// cost is separable from `TX_CHECKER` maintenance and from replaying plain
/// PM operations against the model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckerCategory {
    /// Plain PM operations replayed into the shadow memory
    /// (write/flush/fence, any flavour).
    ModelReplay,
    /// `isPersist` checkers.
    IsPersist,
    /// `isOrderedBefore` checkers.
    IsOrderedBefore,
    /// Transaction bookkeeping and the high-level checker
    /// (`TX_BEGIN`/`TX_END`/`TX_ADD`, `TX_CHECKER_START`/`END`).
    TxChecker,
    /// Scope control (exclude/include).
    Scope,
}

impl CheckerCategory {
    /// Every category, in histogram registration order.
    pub const ALL: [CheckerCategory; 5] = [
        CheckerCategory::ModelReplay,
        CheckerCategory::IsPersist,
        CheckerCategory::IsOrderedBefore,
        CheckerCategory::TxChecker,
        CheckerCategory::Scope,
    ];

    /// The category charged for processing `event`.
    #[must_use]
    pub fn of(event: &Event) -> Self {
        match event {
            Event::Write(_) | Event::Flush(_) | Event::Fence | Event::OFence | Event::DFence => {
                CheckerCategory::ModelReplay
            }
            Event::IsPersist(_) => CheckerCategory::IsPersist,
            Event::IsOrderedBefore(_, _) => CheckerCategory::IsOrderedBefore,
            Event::TxBegin
            | Event::TxEnd
            | Event::TxAdd(_)
            | Event::TxCheckerStart
            | Event::TxCheckerEnd => CheckerCategory::TxChecker,
            Event::Exclude(_) | Event::Include(_) => CheckerCategory::Scope,
        }
    }

    /// The `checker` label value of the category's histogram.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            CheckerCategory::ModelReplay => "model_replay",
            CheckerCategory::IsPersist => "is_persist",
            CheckerCategory::IsOrderedBefore => "is_ordered_before",
            CheckerCategory::TxChecker => "tx_checker",
            CheckerCategory::Scope => "scope",
        }
    }
}

/// Why a session shipped a pending trace batch to the engine
/// (`session_flush_total{cause=…}`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlushCause {
    /// The per-thread batch reached `batch_capacity`.
    Capacity,
    /// A result point — `flush`, `report`, `take_report`, or `finish`.
    ResultPoint,
    /// The recording thread exited with traces still batched.
    ThreadExit,
}

impl FlushCause {
    /// The `cause` label value.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            FlushCause::Capacity => "capacity",
            FlushCause::ResultPoint => "result_point",
            FlushCause::ThreadExit => "thread_exit",
        }
    }
}

/// The engine's typed metric handles, shared with its workers.
pub(crate) struct EngineTelemetry {
    registry: MetricsRegistry,
    /// Structured event ring (batch spans, flush events).
    pub(crate) events: EventLog,
    /// Whether the timing layer is on (checked by workers and dispatch).
    pub(crate) timing: bool,
    started: Instant,
    /// Submit → worker-dequeue latency, ns (timing only).
    pub(crate) dispatch_latency: Histogram,
    /// Queue depth of the chosen worker, sampled on every submit.
    pub(crate) queue_depth: Gauge,
    /// Whole-trace check latency, ns (timing only).
    pub(crate) check_latency: Histogram,
    /// Per-category entry-processing time, ns (timing only); indexed like
    /// [`CheckerCategory::ALL`].
    pub(crate) checker_ns: [Histogram; CheckerCategory::ALL.len()],
    /// Whole-trace fused-replay time on the clock-free worker path, ns,
    /// timed once per trace (timing only). The per-entry `checker_ns`
    /// histograms attribute cost per checker category; this one measures the
    /// single-pass loop the engine actually runs in production mode.
    pub(crate) fused_replay: Histogram,
    /// Flat→BTree representation switches across the workers' recycled
    /// segment maps (always on — the delta is folded in once per trace).
    pub(crate) segmap_repr_switches: Counter,
    /// FAIL/WARN production per [`DiagKind`]; indexed like [`DiagKind::ALL`].
    diag_kinds: [Counter; DiagKind::ALL.len()],
    /// Busy nanoseconds per worker (timing only).
    pub(crate) worker_busy: Vec<Counter>,
    /// Aggregated [`TraceStats`] per worker (timing only).
    pub(crate) worker_stats: Vec<Mutex<TraceStats>>,
    /// Traces per shipped session batch.
    pub(crate) batch_fill: Histogram,
    flush_causes: [Counter; 3],
    /// Per-stage pipeline latency, ns (timing only); indexed like
    /// [`Stage::ALL`]. Registered unconditionally so a snapshot always
    /// exposes all five stages (count 0 with timing off).
    pub(crate) stages: [Histogram; Stage::ALL.len()],
    /// Cross-trace, site-keyed performance profile feeding the advisor
    /// (profiling layer; see DESIGN.md §16). One relaxed load when off.
    pub(crate) profile: ProfileStore,
    /// Lock-free per-thread span buffers (tracing layer; see DESIGN.md §14).
    pub(crate) spans: Arc<SpanSink>,
    /// Pre-interned span names for the ingest pipeline's recording sites.
    pub(crate) span_names: SpanNames,
    /// Arena word-slab reallocations, folded in at batch-ship time.
    arena_slab_allocs: Counter,
    /// Location-intern tier hits (arena / TLS / global), folded in at
    /// batch-ship time.
    intern_tiers: [Counter; 3],
}

/// Span-name ids pre-interned at engine construction so recording threads
/// never touch the intern table.
#[derive(Clone, Copy, Debug)]
pub(crate) struct SpanNames {
    /// Producer: seal + ring push of one batch (includes backpressure).
    pub(crate) ship: u32,
    /// Worker: dequeue to replay start for one batch.
    pub(crate) claim: u32,
    /// Worker: replaying one batch.
    pub(crate) replay: u32,
    /// Worker: merging one batch's results into the report shard.
    pub(crate) merge: u32,
}

impl EngineTelemetry {
    pub(crate) fn new(workers: usize, config: &TelemetryConfig) -> Self {
        let registry = MetricsRegistry::new();
        let events = EventLog::with_capacity(config.event_capacity.max(1));
        events.set_enabled(config.events);
        let spans = Arc::new(SpanSink::new(config.tracing_capacity.max(1)));
        spans.set_enabled(config.tracing);
        let profile = ProfileStore::new();
        profile.set_enabled(config.profiling);
        let span_names = SpanNames {
            ship: spans.intern("ship"),
            claim: spans.intern("claim"),
            replay: spans.intern("replay"),
            merge: spans.intern("merge"),
        };
        let stages =
            Stage::ALL.map(|s| registry.histogram("engine_stage_ns", &[("stage", s.label())]));
        let intern_tiers = ["arena", "tls", "global"]
            .map(|tier| registry.counter("engine_intern_hits", &[("tier", tier)]));
        let checker_ns = CheckerCategory::ALL
            .map(|c| registry.histogram("engine_checker_ns", &[("checker", c.label())]));
        let diag_kinds = DiagKind::ALL.map(|k| {
            registry.counter(
                "engine_diag_total",
                &[("code", k.code()), ("severity", k.severity().as_str())],
            )
        });
        let worker_busy = (0..workers)
            .map(|i| {
                let worker = i.to_string();
                registry.counter("engine_worker_busy_ns", &[("worker", &worker)])
            })
            .collect();
        Self {
            events,
            timing: config.timing,
            started: Instant::now(),
            dispatch_latency: registry.histogram("engine_dispatch_latency_ns", &[]),
            queue_depth: registry.gauge("engine_queue_depth", &[]),
            check_latency: registry.histogram("engine_check_latency_ns", &[]),
            checker_ns,
            fused_replay: registry.histogram("engine_fused_replay_ns", &[]),
            segmap_repr_switches: registry.counter("engine_segmap_repr_switches", &[]),
            diag_kinds,
            worker_busy,
            worker_stats: (0..workers).map(|_| Mutex::new(TraceStats::default())).collect(),
            batch_fill: registry.histogram("session_batch_fill", &[]),
            flush_causes: [
                registry.counter("session_flush_total", &[("cause", FlushCause::Capacity.label())]),
                registry
                    .counter("session_flush_total", &[("cause", FlushCause::ResultPoint.label())]),
                registry
                    .counter("session_flush_total", &[("cause", FlushCause::ThreadExit.label())]),
            ],
            stages,
            profile,
            spans,
            span_names,
            arena_slab_allocs: registry.counter("engine_arena_slab_allocs", &[]),
            intern_tiers,
            registry,
        }
    }

    /// The latency histogram of one pipeline stage.
    pub(crate) fn stage(&self, stage: Stage) -> &Histogram {
        &self.stages[stage as usize]
    }

    /// Folds one shipped arena's allocator/intern tallies into the shared
    /// counters (called once per batch — cold by construction).
    pub(crate) fn note_arena_stats(&self, stats: ArenaStats) {
        if stats.slab_allocs > 0 {
            self.arena_slab_allocs.add(stats.slab_allocs);
        }
        let ArenaStats { interns, .. } = stats;
        if interns.arena_hits > 0 {
            self.intern_tiers[0].add(interns.arena_hits);
        }
        if interns.tls_hits > 0 {
            self.intern_tiers[1].add(interns.tls_hits);
        }
        if interns.global > 0 {
            self.intern_tiers[2].add(interns.global);
        }
    }

    /// The counter for one diagnostic kind.
    pub(crate) fn diag_counter(&self, kind: DiagKind) -> &Counter {
        let idx = DiagKind::ALL.iter().position(|k| *k == kind).expect("kind listed in ALL");
        &self.diag_kinds[idx]
    }

    /// Records one shipped session batch.
    pub(crate) fn note_batch_shipped(&self, cause: FlushCause, traces: usize) {
        self.batch_fill.record(traces as u64);
        self.flush_causes[cause as usize].inc();
        if self.events.is_enabled() {
            self.events.record(
                "session.flush",
                &[("cause", cause.label().into()), ("traces", (traces as u64).into())],
            );
        }
    }

    /// The per-category histogram charged for `event`.
    pub(crate) fn checker_histogram(&self, event: &Event) -> &Histogram {
        &self.checker_ns[CheckerCategory::of(event) as usize]
    }

    /// Registry metrics plus derived per-worker gauges and the event ring.
    pub(crate) fn snapshot(&self) -> TelemetrySnapshot {
        let mut snap = self.registry.snapshot();
        let uptime_ns = self.started.elapsed().as_nanos() as f64;
        for (i, busy) in self.worker_busy.iter().enumerate() {
            let worker = i.to_string();
            snap.push_gauge(
                "engine_worker_utilization",
                &[("worker", &worker)],
                busy.get() as f64 / uptime_ns.max(1.0),
            );
        }
        if self.timing {
            for (i, stats) in self.worker_stats.iter().enumerate() {
                let stats = *stats.lock();
                let worker = i.to_string();
                let labels: &[(&str, &str)] = &[("worker", &worker)];
                snap.push_counter("engine_worker_entries", labels, stats.entries);
                snap.push_counter("engine_worker_writes", labels, stats.writes);
                snap.push_counter("engine_worker_fences", labels, stats.fences);
                snap.push_counter("engine_worker_ofences", labels, stats.ofences);
                snap.push_counter("engine_worker_dfences", labels, stats.dfences);
                snap.push_counter("engine_worker_epochs", labels, stats.epochs());
                snap.push_gauge(
                    "engine_worker_avg_writes_per_epoch",
                    labels,
                    stats.avg_writes_per_epoch(),
                );
                snap.push_gauge(
                    "engine_worker_max_writes_per_epoch",
                    labels,
                    stats.max_writes_per_epoch as f64,
                );
            }
        }
        snap.push_counter("engine_events_dropped", &[], self.events.dropped());
        snap.push_counter("engine_spans_dropped", &[], self.spans.dropped());
        if self.profile.is_enabled() {
            let profile = self.profile.snapshot();
            profile.fold_into(&mut snap);
            AdvisorReport::from_profile(&profile).fold_into(&mut snap);
        }
        snap.events = self.events.snapshot();
        snap
    }
}

/// Feeds one checked trace into the cross-trace profile store: a single
/// decode walk re-detects the wasteful persistency patterns — duplicate and
/// unnecessary flushes, duplicate undo-log appends, fences ordering no new
/// work — per source site, dialect-independently (under HOPS the checkers
/// demote flush/fence to `ForeignOperation`, but the profile still sees
/// them), and attributes every WARN diagnostic to its site. Called from the
/// worker replay path only when [`ProfileStore::is_enabled`] — the off cost
/// is the caller's one relaxed load.
pub(crate) fn profile_span(
    store: &ProfileStore,
    words: &[PackedEntry],
    resolver: &mut LocResolver,
    diags: &[Diag],
) {
    let (ops, warns) = profile_deltas(words, resolver, diags);
    store.record_trace(&ops, &warns);
}

/// The profiling walk of [`profile_span`], separated from the store fold so
/// the verdict cache can capture (and later replay) a trace's deltas: both
/// vectors' keys are `'static`, making the pair storable verbatim.
pub(crate) fn profile_deltas(
    words: &[PackedEntry],
    resolver: &mut LocResolver,
    diags: &[Diag],
) -> crate::cache::ProfileDeltas {
    let mut sites: std::collections::BTreeMap<(&'static str, u32), SiteDelta> =
        std::collections::BTreeMap::new();
    // Shadow sets mirroring the checker's redundancy view: what has been
    // written (and not yet re-dirtied), what is clean-flushed, and what the
    // open transaction has already logged.
    let mut written: SegmentMap<()> = SegmentMap::new();
    let mut flushed: SegmentMap<()> = SegmentMap::new();
    let mut logged: SegmentMap<()> = SegmentMap::new();
    let mut work_since_fence = false;
    let overlap_bytes = |map: &SegmentMap<()>, r: ByteRange| -> u64 {
        map.overlapping(r).map(|(seg, _)| seg.intersection(&r).map_or(0, |o| o.len())).sum()
    };
    let mut i = 0;
    while let Some((entry, next)) = decode_next(words, i, resolver) {
        i = next;
        let site = (entry.loc.file(), entry.loc.line());
        match entry.event {
            Event::Write(r) => {
                sites.entry(site).or_default().writes += 1;
                written.insert(r, ());
                // A rewrite re-dirties the line: a later flush is useful again.
                flushed.remove(r);
                work_since_fence = true;
            }
            Event::Flush(r) => {
                let delta = sites.entry(site).or_default();
                delta.flushes += 1;
                let dup = overlap_bytes(&flushed, r);
                if dup > 0 {
                    delta.dup_flushes += 1;
                    delta.dup_flush_bytes += dup;
                }
                let unwritten: u64 = written.gaps(r).iter().map(ByteRange::len).sum();
                if unwritten > 0 {
                    delta.unnecessary_flushes += 1;
                    delta.unnecessary_flush_bytes += unwritten;
                }
                flushed.insert(r, ());
                work_since_fence = true;
            }
            Event::Fence | Event::OFence | Event::DFence => {
                let delta = sites.entry(site).or_default();
                delta.fences += 1;
                if !work_since_fence {
                    delta.redundant_fences += 1;
                }
                work_since_fence = false;
            }
            Event::TxAdd(r) => {
                let delta = sites.entry(site).or_default();
                delta.logs += 1;
                let dup = overlap_bytes(&logged, r);
                if dup > 0 {
                    delta.dup_logs += 1;
                    delta.dup_log_bytes += dup;
                }
                logged.insert(r, ());
                work_since_fence = true;
            }
            Event::TxBegin | Event::TxEnd => logged.clear(),
            Event::IsPersist(_)
            | Event::IsOrderedBefore(_, _)
            | Event::TxCheckerStart
            | Event::TxCheckerEnd
            | Event::Exclude(_)
            | Event::Include(_) => {}
        }
    }
    let ops: Vec<_> = sites.into_iter().collect();
    let warns: Vec<_> = diags
        .iter()
        .filter(|d| d.severity() == Severity::Warn)
        .map(|d| ((d.loc.file(), d.loc.line()), d.kind.code()))
        .collect();
    (ops, warns)
}

/// A one-line human summary of an engine snapshot — traces checked, check
/// latency p50/p99, queue high-water, diagnostics — for examples and
/// harnesses to dogfood the telemetry API without formatting it themselves.
///
/// When the capped telemetry rings lost anything (event-ring overwrites,
/// span-buffer overwrites), a second WARNING line is appended — silent data
/// loss in the observability layer is how regressions hide.
#[must_use]
pub fn summary_line(snap: &TelemetrySnapshot) -> String {
    let traces = snap.counter("engine_traces_checked").unwrap_or(0);
    let highwater = snap.counter("engine_queue_highwater").unwrap_or(0);
    let sev_total = |sev: &str| -> u64 {
        snap.counters
            .iter()
            .filter(|c| {
                c.name == "engine_diag_total"
                    && c.labels.iter().any(|(k, v)| k == "severity" && v == sev)
            })
            .map(|c| c.value)
            .sum()
    };
    let latency = match snap.histogram("engine_check_latency_ns") {
        Some(h) if h.count > 0 => {
            format!("check p50 {:.1}µs / p99 {:.1}µs", h.p50 / 1_000.0, h.p99 / 1_000.0)
        }
        _ => "check latency n/a (timing off)".to_owned(),
    };
    let mut line = format!(
        "telemetry: {traces} traces checked, {latency}, queue high-water {highwater}, \
         {} FAIL / {} WARN",
        sev_total("FAIL"),
        sev_total("WARN"),
    );
    let profiled = snap.counter_sum("profile_traces_profiled");
    if profiled > 0 {
        line.push_str(&format!(
            "\nadvisor: {profiled} traces profiled across {} sites — {} suggestion(s), \
             {} wasted persist bytes, {} redundant fence(s)",
            snap.gauge("profile_sites_tracked").unwrap_or(0.0) as u64,
            snap.counter_sum("advisor_suggestions"),
            snap.counter_sum("profile_wasted_persist_bytes"),
            snap.counter_sum("profile_redundant_fences"),
        ));
    }
    // Presence of the miss counter marks a cache-enabled engine (all-zero
    // counters on an idle cached engine still print, deliberately).
    if snap.counter("verdict_cache_misses").is_some() {
        let l1 = snap.counter_sum("verdict_cache_l1_hits");
        let l2 = snap.counter_sum("verdict_cache_l2_hits");
        line.push_str(&format!(
            "\nverdict cache: {:.1}% hit rate ({l1} L1 / {l2} L2), {} miss(es), \
             {} bypassed, {} eviction(s), {} bytes resident",
            snap.gauge("verdict_cache_hit_rate").unwrap_or(0.0) * 100.0,
            snap.counter_sum("verdict_cache_misses"),
            snap.counter_sum("verdict_cache_bypasses"),
            snap.counter_sum("verdict_cache_evictions"),
            snap.gauge("verdict_cache_bytes_resident").unwrap_or(0.0) as u64,
        ));
    }
    let events_dropped = snap.counter_sum("engine_events_dropped");
    let spans_dropped = snap.counter_sum("engine_spans_dropped");
    if events_dropped > 0 || spans_dropped > 0 {
        line.push_str(&format!(
            "\nWARNING: telemetry rings overflowed — {events_dropped} event(s) and \
             {spans_dropped} span(s) dropped; raise event_capacity/tracing_capacity \
             or snapshot more often"
        ));
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmtest_interval::ByteRange;

    #[test]
    fn every_event_maps_to_a_category() {
        let r = ByteRange::with_len(0, 8);
        assert_eq!(CheckerCategory::of(&Event::Write(r)), CheckerCategory::ModelReplay);
        assert_eq!(CheckerCategory::of(&Event::Flush(r)), CheckerCategory::ModelReplay);
        assert_eq!(CheckerCategory::of(&Event::Fence), CheckerCategory::ModelReplay);
        assert_eq!(CheckerCategory::of(&Event::OFence), CheckerCategory::ModelReplay);
        assert_eq!(CheckerCategory::of(&Event::DFence), CheckerCategory::ModelReplay);
        assert_eq!(CheckerCategory::of(&Event::IsPersist(r)), CheckerCategory::IsPersist);
        assert_eq!(
            CheckerCategory::of(&Event::IsOrderedBefore(r, r)),
            CheckerCategory::IsOrderedBefore
        );
        assert_eq!(CheckerCategory::of(&Event::TxBegin), CheckerCategory::TxChecker);
        assert_eq!(CheckerCategory::of(&Event::TxAdd(r)), CheckerCategory::TxChecker);
        assert_eq!(CheckerCategory::of(&Event::TxCheckerEnd), CheckerCategory::TxChecker);
        assert_eq!(CheckerCategory::of(&Event::Exclude(r)), CheckerCategory::Scope);
        // Labels are distinct (they key the histogram label set).
        let mut labels: Vec<_> = CheckerCategory::ALL.iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), CheckerCategory::ALL.len());
    }

    #[test]
    fn diag_counters_cover_every_kind() {
        let tel = EngineTelemetry::new(1, &TelemetryConfig::off());
        for kind in DiagKind::ALL {
            tel.diag_counter(kind).inc();
        }
        let snap = tel.snapshot();
        let total: u64 = snap.counter_sum("engine_diag_total");
        assert_eq!(total, DiagKind::ALL.len() as u64);
    }

    #[test]
    fn summary_line_reports_timing_state() {
        let tel = EngineTelemetry::new(1, &TelemetryConfig::off());
        let s = summary_line(&tel.snapshot());
        assert!(s.contains("timing off"), "{s}");
        let tel = EngineTelemetry::new(1, &TelemetryConfig::enabled());
        tel.check_latency.record(1_500);
        let mut snap = tel.snapshot();
        snap.push_counter("engine_traces_checked", &[], 1);
        let s = summary_line(&snap);
        assert!(s.contains("1 traces checked"), "{s}");
        assert!(s.contains("p50"), "{s}");
        assert!(!s.contains("WARNING"), "no drops, no warning: {s}");
    }

    #[test]
    fn summary_line_warns_on_ring_drops() {
        let tel = EngineTelemetry::new(1, &TelemetryConfig::off());
        let mut snap = tel.snapshot();
        // Simulate overflowed rings.
        snap.push_counter("engine_events_dropped", &[], 3);
        snap.push_counter("engine_spans_dropped", &[], 5);
        let s = summary_line(&snap);
        assert!(s.contains("WARNING"), "{s}");
        assert!(s.contains("3 event(s)"), "{s}");
        assert!(s.contains("5 span(s)"), "{s}");
    }

    #[test]
    fn all_five_stage_histograms_register_even_when_off() {
        let tel = EngineTelemetry::new(1, &TelemetryConfig::off());
        let snap = tel.snapshot();
        for stage in Stage::ALL {
            let h = snap
                .histogram_with("engine_stage_ns", "stage", stage.label())
                .unwrap_or_else(|| panic!("stage {} must be registered", stage.label()));
            assert_eq!(h.count, 0, "timing off records nothing");
        }
        // Labels are distinct (they key the histogram label set).
        let mut labels: Vec<_> = Stage::ALL.iter().map(|s| s.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), Stage::ALL.len());
    }

    #[test]
    fn arena_stats_fold_into_tiered_counters() {
        use pmtest_trace::InternStats;
        let tel = EngineTelemetry::new(1, &TelemetryConfig::off());
        tel.note_arena_stats(ArenaStats {
            slab_allocs: 2,
            interns: InternStats { arena_hits: 100, tls_hits: 7, global: 1 },
        });
        tel.note_arena_stats(ArenaStats {
            slab_allocs: 0,
            interns: InternStats { arena_hits: 50, tls_hits: 0, global: 0 },
        });
        let snap = tel.snapshot();
        assert_eq!(snap.counter("engine_arena_slab_allocs"), Some(2));
        assert_eq!(snap.counter_sum("engine_intern_hits"), 158);
    }

    #[test]
    fn tracing_layer_gates_span_recording() {
        let tel = EngineTelemetry::new(1, &TelemetryConfig::off());
        assert!(!tel.spans.is_enabled(), "tracing is off by default");
        let tel = EngineTelemetry::new(1, &TelemetryConfig::tracing_only());
        assert!(tel.spans.is_enabled());
        let h = tel.spans.register(0);
        h.record(tel.span_names.replay, 10, 5);
        let dump = tel.spans.snapshot();
        assert_eq!(dump.records.len(), 1);
        assert_eq!(dump.records[0].name, "replay");
    }
}
