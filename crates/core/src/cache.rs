//! Content-addressed verdict cache: repeated trace shapes check at
//! hash-lookup cost.
//!
//! Production-shaped traffic (per-op traces from hot data-structure code,
//! kvstore loops) emits the *same trace shape* millions of times — same
//! opcodes, same ranges, same source sites; only trace ids differ. Checking
//! is a pure function of the packed words and the model (session variables
//! resolve to concrete ranges *at record time*, and every trace replays
//! against freshly-reset scratch state), so the verdict of one occurrence is
//! the verdict of all of them. This module memoizes it:
//!
//! * the key is a [`TraceFingerprint`] — a run-stable 128-bit content hash
//!   of the packed record stream (opcode + range words + source *sites*,
//!   never raw intern ids);
//! * each worker owns an open-addressed, lock-free-by-construction L1
//!   ([`WorkerCache`]) probed without touching any shared state;
//! * L1 misses fall through to a sharded shared L2 ([`VerdictCache`]) with
//!   a hard memory bound and CLOCK-style second-chance eviction;
//! * a cache entry ([`CachedVerdict`]) carries the *full verdict*: the exact
//!   diagnostic list (interned sites included — `Report` output is
//!   byte-identical to a cold check) and, when the profiling layer is on,
//!   the per-site [`SiteDelta`]s of the §16 profile walk, so the cross-trace
//!   profile stays exact under hits.
//!
//! **Bypass predicate.** A trace bypasses the cache (checked cold, nothing
//! cached) when the engine's instrumented replay lane is active — the
//! telemetry *timing* layer (per-entry checker histograms and per-worker
//! `TraceStats` must observe every entry) or the *flight recorder*
//! (per-step window capture, including the automatic ERROR-bundle capture
//! on failing traces, must run per occurrence). Those are exactly the
//! features whose answers depend on more than (words, model): they consume
//! wall-clock time and cross-trace recorder state. Everything else —
//! including the profiling layer, whose per-site deltas are themselves a
//! pure function of the words — is served from the cache. The predicate is
//! evaluated per engine construction (both layers are fixed at
//! [`TelemetryConfig`](crate::TelemetryConfig) time), tested in
//! `crates/core/tests/verdict_cache.rs`, and documented in DESIGN.md §17.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use pmtest_obs::SiteDelta;
use pmtest_trace::{Fingerprinter, PackedEntry, TraceFingerprint};

use crate::diag::Diag;

/// Configuration of the engine's verdict cache. Off by default: the cache
/// only pays for itself on repetitive workloads, and the default
/// configuration must keep measuring the uncached path.
#[derive(Clone, Debug)]
pub struct VerdictCacheConfig {
    /// Whether the cache is constructed at all.
    pub enabled: bool,
    /// Hard bound on resident L2 verdict bytes (per engine, split evenly
    /// across shards). Per-worker L1s additionally pin at most
    /// [`L1_SLOTS`] `Arc`s each, all aliasing L2-counted verdicts.
    pub max_bytes: usize,
}

impl Default for VerdictCacheConfig {
    fn default() -> Self {
        Self { enabled: false, max_bytes: 32 << 20 }
    }
}

/// The memoized outcome of checking one trace shape.
#[doc(hidden)]
#[derive(Debug)]
pub struct CachedVerdict {
    /// The exact diagnostics a cold check produces, interned sites and all.
    pub diags: Vec<Diag>,
    /// The §16 profile-walk deltas, captured when the profiling layer was
    /// on at insert time. `None` entries are treated as misses while
    /// profiling is enabled, so a runtime `ProfileStore::set_enabled(true)`
    /// never replays an entry that skipped the walk.
    pub profile: Option<ProfileDeltas>,
    /// Approximate resident size, for the L2 memory bound.
    pub bytes: usize,
}

/// The profiling layer's per-trace output: per-site operation/waste deltas
/// plus `(site, code)` WARN attributions. Keys are `'static`, so the pair is
/// storable and replayable verbatim via `ProfileStore::record_trace`.
pub type ProfileDeltas =
    (Vec<((&'static str, u32), SiteDelta)>, Vec<((&'static str, u32), &'static str)>);

impl CachedVerdict {
    /// Builds a verdict, computing its resident-size estimate.
    #[must_use]
    pub fn new(diags: Vec<Diag>, profile: Option<ProfileDeltas>) -> Self {
        let mut bytes = std::mem::size_of::<Self>();
        bytes += diags.capacity() * std::mem::size_of::<Diag>();
        bytes += diags.iter().map(|d| d.message.capacity()).sum::<usize>();
        if let Some((ops, warns)) = &profile {
            bytes += ops.capacity() * std::mem::size_of::<((&'static str, u32), SiteDelta)>();
            bytes += warns.capacity() * std::mem::size_of::<((&'static str, u32), &'static str)>();
        }
        Self { diags, profile, bytes }
    }
}

/// Number of L2 shards; a power of two so fingerprint bits map with a mask.
const L2_SHARDS: usize = 16;

/// Slots in each worker's open-addressed L1.
const L1_SLOTS: usize = 512;

/// Linear probes an L1 lookup attempts before declaring a miss.
const L1_PROBES: usize = 4;

struct L2Slot {
    verdict: Arc<CachedVerdict>,
    /// CLOCK second-chance bit: set on every hit, cleared (once) by the
    /// sweeping hand before the slot becomes evictable.
    referenced: bool,
}

#[derive(Default)]
struct L2Shard {
    map: HashMap<u128, L2Slot>,
    /// CLOCK ring of resident keys; `hand` is the sweep cursor.
    ring: Vec<u128>,
    hand: usize,
    bytes: usize,
}

/// The engine-wide shared L2: fingerprint → verdict, sharded by fingerprint
/// bits, memory-bounded with CLOCK eviction per shard.
#[doc(hidden)]
pub struct VerdictCache {
    shards: Vec<Mutex<L2Shard>>,
    /// Per-shard byte budget (`max_bytes / L2_SHARDS`).
    shard_budget: usize,
    l1_hits: AtomicU64,
    l2_hits: AtomicU64,
    misses: AtomicU64,
    bypasses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
    bytes_resident: AtomicU64,
}

/// Counter snapshot of a [`VerdictCache`] (see
/// [`Engine::verdict_cache_stats`](crate::Engine::verdict_cache_stats)).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VerdictCacheStats {
    /// Lookups answered by a worker's own L1.
    pub l1_hits: u64,
    /// L1 misses answered by the shared L2 (the verdict is then pulled into
    /// the prober's L1).
    pub l2_hits: u64,
    /// Lookups answered by neither tier — the trace paid a cold check.
    pub misses: u64,
    /// Traces that skipped the cache entirely under the bypass predicate
    /// (instrumented replay: timing layer or flight recorder active).
    pub bypasses: u64,
    /// Verdicts inserted into the L2.
    pub inserts: u64,
    /// Verdicts evicted by the CLOCK hand to keep the memory bound.
    pub evictions: u64,
    /// Resident L2 verdict bytes.
    pub bytes_resident: u64,
    /// Resident L2 entries.
    pub entries: u64,
}

impl VerdictCacheStats {
    /// Hits over cache-eligible lookups (bypasses excluded); 0 when idle.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let hits = self.l1_hits + self.l2_hits;
        let total = hits + self.misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

impl VerdictCache {
    /// Builds an empty cache with `config`'s memory bound.
    #[must_use]
    pub fn new(config: &VerdictCacheConfig) -> Self {
        Self {
            shards: (0..L2_SHARDS).map(|_| Mutex::new(L2Shard::default())).collect(),
            shard_budget: (config.max_bytes / L2_SHARDS).max(1),
            l1_hits: AtomicU64::new(0),
            l2_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            bypasses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            bytes_resident: AtomicU64::new(0),
        }
    }

    fn shard(&self, fp: TraceFingerprint) -> &Mutex<L2Shard> {
        // Shard on high bits; the L1 indexes on low bits, so the two
        // never alias their selection bits.
        &self.shards[(fp.as_u128() >> 124) as usize & (L2_SHARDS - 1)]
    }

    /// L2 lookup. A hit sets the slot's CLOCK bit and clones the `Arc` out
    /// (the caller installs it in its L1).
    fn get(&self, fp: TraceFingerprint) -> Option<Arc<CachedVerdict>> {
        let mut shard = self.shard(fp).lock();
        let slot = shard.map.get_mut(&fp.as_u128())?;
        slot.referenced = true;
        Some(slot.verdict.clone())
    }

    /// Inserts a verdict, evicting via the CLOCK hand until it fits the
    /// shard budget. Verdicts larger than a whole shard budget are not
    /// inserted (they would evict everything and still not fit); racing
    /// workers inserting the same fingerprint keep the first copy.
    fn insert(&self, fp: TraceFingerprint, verdict: &Arc<CachedVerdict>) {
        let bytes = verdict.bytes;
        if bytes > self.shard_budget {
            return;
        }
        let mut shard = self.shard(fp).lock();
        let key = fp.as_u128();
        if let Some(slot) = shard.map.get_mut(&key) {
            slot.referenced = true;
            if slot.verdict.profile.is_none() && verdict.profile.is_some() {
                // Upgrade: the resident copy was cached while profiling was
                // off and cannot serve profiling lookups; swap in the
                // complete verdict (byte accounting follows the swap).
                let old_bytes = slot.verdict.bytes;
                slot.verdict = verdict.clone();
                shard.bytes = shard.bytes - old_bytes + bytes;
                drop(shard);
                if bytes >= old_bytes {
                    self.bytes_resident.fetch_add((bytes - old_bytes) as u64, Ordering::Relaxed);
                } else {
                    self.bytes_resident.fetch_sub((old_bytes - bytes) as u64, Ordering::Relaxed);
                }
            }
            return;
        }
        let mut evicted = 0u64;
        let mut freed = 0usize;
        while shard.bytes + bytes > self.shard_budget && !shard.ring.is_empty() {
            let hand = shard.hand % shard.ring.len();
            let candidate = shard.ring[hand];
            let slot = shard.map.get_mut(&candidate).expect("CLOCK ring key must be resident");
            if slot.referenced {
                // Second chance: clear the bit, advance the hand. Every
                // slot's bit is cleared at most once per sweep, so the loop
                // terminates within two passes.
                slot.referenced = false;
                shard.hand = hand + 1;
            } else {
                let gone = shard.map.remove(&candidate).expect("evicting resident key");
                shard.bytes -= gone.verdict.bytes;
                freed += gone.verdict.bytes;
                evicted += 1;
                // swap_remove moves the ring tail into `hand`; do not
                // advance, the hand now points at an unswept key.
                shard.ring.swap_remove(hand);
            }
        }
        shard.bytes += bytes;
        shard.ring.push(key);
        shard.map.insert(key, L2Slot { verdict: verdict.clone(), referenced: true });
        drop(shard);
        self.inserts.fetch_add(1, Ordering::Relaxed);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        if bytes as u64 >= freed as u64 {
            self.bytes_resident.fetch_add(bytes as u64 - freed as u64, Ordering::Relaxed);
        } else {
            self.bytes_resident.fetch_sub(freed as u64 - bytes as u64, Ordering::Relaxed);
        }
    }

    /// Folds a worker's batch-local lookup tallies into the shared
    /// counters: one `fetch_add` per counter per batch, never per trace.
    pub fn flush_tally(&self, tally: &mut CacheTally) {
        let t = std::mem::take(tally);
        if t.l1_hits > 0 {
            self.l1_hits.fetch_add(t.l1_hits, Ordering::Relaxed);
        }
        if t.l2_hits > 0 {
            self.l2_hits.fetch_add(t.l2_hits, Ordering::Relaxed);
        }
        if t.misses > 0 {
            self.misses.fetch_add(t.misses, Ordering::Relaxed);
        }
        if t.bypasses > 0 {
            self.bypasses.fetch_add(t.bypasses, Ordering::Relaxed);
        }
    }

    /// Counter snapshot (resident entries counted under the shard locks).
    #[must_use]
    pub fn stats(&self) -> VerdictCacheStats {
        VerdictCacheStats {
            l1_hits: self.l1_hits.load(Ordering::Relaxed),
            l2_hits: self.l2_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            bypasses: self.bypasses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            bytes_resident: self.bytes_resident.load(Ordering::Relaxed),
            entries: self.shards.iter().map(|s| s.lock().map.len() as u64).sum(),
        }
    }
}

/// Batch-local lookup tallies, settled into the shared cache counters by
/// [`VerdictCache::flush_tally`] once per batch.
#[derive(Debug, Default)]
pub struct CacheTally {
    /// Lookups answered by this worker's L1.
    pub l1_hits: u64,
    /// Lookups answered by the shared L2.
    pub l2_hits: u64,
    /// Lookups answered by neither tier.
    pub misses: u64,
    /// Traces that skipped the cache under the bypass predicate.
    pub bypasses: u64,
}

/// One worker's private cache front end: the fingerprinter (with its
/// site-hash mirror), the open-addressed L1, and the batch-local tallies.
/// Nothing here is shared — an L1 hit touches no lock, no atomic, and does
/// not even bump the verdict's `Arc` count (the hit path borrows).
#[doc(hidden)]
pub struct WorkerCache {
    fingerprinter: Fingerprinter,
    l1: Vec<Option<(TraceFingerprint, Arc<CachedVerdict>)>>,
    /// Batch-local lookup tallies; flushed by the worker loop per batch.
    pub tally: CacheTally,
}

impl Default for WorkerCache {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkerCache {
    /// Builds an empty worker cache.
    #[must_use]
    pub fn new() -> Self {
        let mut l1 = Vec::with_capacity(L1_SLOTS);
        l1.resize_with(L1_SLOTS, || None);
        Self { fingerprinter: Fingerprinter::new(), l1, tally: CacheTally::default() }
    }

    /// Fingerprints one packed record stream.
    #[inline]
    pub fn fingerprint(&mut self, words: &[PackedEntry]) -> TraceFingerprint {
        self.fingerprinter.fingerprint(words)
    }

    /// Index of the L1 slot holding `fp`, if resident within the probe
    /// window.
    #[inline]
    fn l1_find(&self, fp: TraceFingerprint) -> Option<usize> {
        let base = fp.as_u128() as usize;
        for probe in 0..L1_PROBES {
            let i = (base + probe) & (L1_SLOTS - 1);
            match &self.l1[i] {
                Some((key, _)) if *key == fp => return Some(i),
                _ => {}
            }
        }
        None
    }

    /// Installs a verdict in the L1, returning its slot: an existing slot
    /// with the same fingerprint is overwritten (so upgrades replace rather
    /// than shadow), else the first free slot in the probe window, else the
    /// window's base slot is displaced (plain clobbering keeps the probe
    /// invariant — a resident key is always within `L1_PROBES` of its base).
    fn l1_put(&mut self, fp: TraceFingerprint, verdict: Arc<CachedVerdict>) -> usize {
        let base = fp.as_u128() as usize;
        let mut target = base & (L1_SLOTS - 1);
        let mut free = None;
        for probe in 0..L1_PROBES {
            let i = (base + probe) & (L1_SLOTS - 1);
            match &self.l1[i] {
                Some((key, _)) if *key == fp => {
                    target = i;
                    free = None;
                    break;
                }
                None if free.is_none() => free = Some(i),
                _ => {}
            }
        }
        if let Some(i) = free {
            target = i;
        }
        self.l1[target] = Some((fp, verdict));
        target
    }

    /// Two-tier lookup. `want_profile` is whether the profiling layer needs
    /// replayable deltas right now: an entry cached while profiling was off
    /// carries none and is treated as a miss (then re-inserted complete),
    /// so a runtime profiling toggle can never replay a skipped walk.
    ///
    /// A hit borrows the verdict out of the L1 — no `Arc` clone, no shared
    /// traffic; only the L1-miss path touches the L2 (lock + clone).
    pub fn lookup(
        &mut self,
        cache: &VerdictCache,
        fp: TraceFingerprint,
        want_profile: bool,
    ) -> Option<&CachedVerdict> {
        if let Some(i) = self.l1_find(fp) {
            let complete = {
                let (_, v) = self.l1[i].as_ref().expect("found slot is occupied");
                !want_profile || v.profile.is_some()
            };
            if complete {
                self.tally.l1_hits += 1;
                let (_, v) = self.l1[i].as_ref().expect("found slot is occupied");
                return Some(v);
            }
            self.tally.misses += 1;
            return None;
        }
        if let Some(v) = cache.get(fp) {
            if !want_profile || v.profile.is_some() {
                self.tally.l2_hits += 1;
                let i = self.l1_put(fp, v);
                let (_, v) = self.l1[i].as_ref().expect("just-installed slot is occupied");
                return Some(v);
            }
        }
        self.tally.misses += 1;
        None
    }

    /// Installs a freshly computed verdict in both tiers (L2 first, so
    /// other workers can share it immediately).
    pub fn install(&mut self, cache: &VerdictCache, fp: TraceFingerprint, verdict: CachedVerdict) {
        let verdict = Arc::new(verdict);
        cache.insert(fp, &verdict);
        self.l1_put(fp, verdict);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::DiagKind;
    use pmtest_trace::packed::encode_into;
    use pmtest_trace::{Event, SourceLoc};

    fn words(tag: u64) -> Vec<PackedEntry> {
        let mut buf = Vec::new();
        let loc = SourceLoc::new("cache_unit.rs", 1);
        encode_into(
            &mut buf,
            Event::Write(pmtest_interval::ByteRange::new(tag * 64, tag * 64 + 8)).at(loc),
        );
        buf
    }

    fn verdict(msg: &str) -> CachedVerdict {
        CachedVerdict::new(
            vec![Diag {
                kind: DiagKind::NotPersisted,
                loc: SourceLoc::new("cache_unit.rs", 1),
                range: None,
                culprit: None,
                message: msg.to_owned(),
            }],
            None,
        )
    }

    #[test]
    fn l1_round_trip_and_tallies() {
        let cache = VerdictCache::new(&VerdictCacheConfig::default());
        let mut wc = WorkerCache::new();
        let fp = wc.fingerprint(&words(1));
        assert!(wc.lookup(&cache, fp, false).is_none());
        wc.install(&cache, fp, verdict("v"));
        assert_eq!(wc.lookup(&cache, fp, false).unwrap().diags.len(), 1);
        assert_eq!((wc.tally.misses, wc.tally.l1_hits), (1, 1));
        // A second worker misses its L1 but hits the shared L2.
        let mut other = WorkerCache::new();
        assert!(other.lookup(&cache, fp, false).is_some());
        assert_eq!(other.tally.l2_hits, 1);
        // And now holds it in its own L1.
        assert!(other.lookup(&cache, fp, false).is_some());
        assert_eq!(other.tally.l1_hits, 1);
        cache.flush_tally(&mut wc.tally);
        cache.flush_tally(&mut other.tally);
        let stats = cache.stats();
        assert_eq!((stats.l1_hits, stats.l2_hits, stats.misses), (2, 1, 1));
        assert_eq!(stats.inserts, 1);
        assert_eq!(stats.entries, 1);
        assert!(stats.bytes_resident > 0);
        assert!((stats.hit_rate() - 0.75).abs() < 1e-9);
        // Tallies were reset by the flush.
        assert_eq!(wc.tally.l1_hits, 0);
    }

    #[test]
    fn profile_incomplete_entries_read_as_misses() {
        let cache = VerdictCache::new(&VerdictCacheConfig::default());
        let mut wc = WorkerCache::new();
        let fp = wc.fingerprint(&words(2));
        wc.install(&cache, fp, verdict("no-profile"));
        // Profiling now wants deltas the entry never captured: miss.
        assert!(wc.lookup(&cache, fp, true).is_none());
        // Re-inserted complete, it serves both modes.
        wc.install(&cache, fp, CachedVerdict::new(Vec::new(), Some((Vec::new(), Vec::new()))));
        assert!(wc.lookup(&cache, fp, true).is_some());
        assert!(wc.lookup(&cache, fp, false).is_some());
    }

    #[test]
    fn l2_eviction_respects_the_byte_bound() {
        // A tiny budget: every shard holds at most a few verdicts.
        let cache = VerdictCache::new(&VerdictCacheConfig { enabled: true, max_bytes: 16 << 10 });
        let mut wc = WorkerCache::new();
        let mut fps = Vec::new();
        for tag in 0..512 {
            let w = words(tag);
            let fp = wc.fingerprint(&w);
            fps.push(fp);
            if wc.lookup(&cache, fp, false).is_none() {
                wc.install(&cache, fp, verdict(&format!("verdict {tag}")));
            }
        }
        let stats = cache.stats();
        assert!(stats.evictions > 0, "pressure must evict");
        assert!(
            stats.bytes_resident <= 16 << 10,
            "resident bytes {} exceed the bound",
            stats.bytes_resident
        );
        // Entries and bytes agree with a direct recount.
        let recount: u64 = cache.shards.iter().map(|s| s.lock().bytes as u64).sum();
        assert_eq!(recount, stats.bytes_resident);
        let ring_len: u64 = cache.shards.iter().map(|s| s.lock().ring.len() as u64).sum();
        assert_eq!(ring_len, stats.entries);
        // Survivors still answer correctly.
        let mut live = 0;
        for (tag, fp) in fps.iter().enumerate() {
            if let Some(v) = wc.lookup(&cache, *fp, false) {
                if v.diags[0].message == format!("verdict {tag}") {
                    live += 1;
                } else {
                    panic!("fingerprint {tag} returned another trace's verdict");
                }
            }
        }
        assert!(live > 0, "some verdicts must survive eviction");
    }

    #[test]
    fn oversized_verdicts_are_not_inserted() {
        let cache = VerdictCache::new(&VerdictCacheConfig { enabled: true, max_bytes: 1 << 10 });
        let mut wc = WorkerCache::new();
        let fp = wc.fingerprint(&words(3));
        wc.install(&cache, fp, verdict(&"x".repeat(8 << 10)));
        assert_eq!(cache.stats().inserts, 0);
        assert_eq!(cache.stats().bytes_resident, 0);
        // The L1 still holds it: correctness is unaffected, only sharing.
        assert!(wc.lookup(&cache, fp, false).is_some());
    }

    #[test]
    fn racing_inserts_keep_one_copy() {
        let cache = VerdictCache::new(&VerdictCacheConfig::default());
        let mut a = WorkerCache::new();
        let mut b = WorkerCache::new();
        let fp = a.fingerprint(&words(4));
        a.install(&cache, fp, verdict("first"));
        b.install(&cache, fp, verdict("second"));
        assert_eq!(cache.stats().entries, 1);
        assert_eq!(cache.stats().inserts, 1, "duplicate insert is dropped");
        assert_eq!(cache.get(fp).unwrap().diags[0].message, "first");
    }
}
