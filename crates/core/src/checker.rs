use pmtest_interval::{ByteRange, IntervalTree, SegmentMap};
use pmtest_trace::packed::decode_next;
use pmtest_trace::{Entry, Event, LocResolver, PackedEntry, PackedOp, SourceLoc, Trace};

use crate::diag::{Diag, DiagKind};
use crate::model::{
    hops_op, hops_ordered_before, persist_failure, x86_op, x86_ordered_before, BuiltinModel,
    PersistencyModel,
};
use crate::shadow::ShadowMemory;

/// The recyclable working state of a [`TraceChecker`]: the shadow memory,
/// the transaction-checker scope, and the scratch buffers the replay loop
/// needs.
///
/// Every trace is checked against logically fresh state, but the state's
/// *allocations* (segment vectors, interval-tree arena, interner) are
/// expensive to rebuild per trace. A `CheckerScratch` is `reset()` between
/// traces instead — mirroring the entry [`BufferPool`](pmtest_trace::BufferPool)
/// — so a steady-state worker checks without touching the allocator. Pass it
/// to [`TraceChecker::with_scratch`] or [`check_trace_with`].
#[derive(Default)]
pub struct CheckerScratch {
    shadow: ShadowMemory,
    tx: TxScope,
    /// Locations of the currently open `TX_BEGIN`s, innermost last (the
    /// stack's length is the transaction nesting depth). Kept so an
    /// unterminated-transaction diagnostic can name the begin that was
    /// never closed as its culprit.
    tx_begins: Vec<SourceLoc>,
    /// Reused buffer for the modified-object sweep at `TX_CHECKER_END`.
    modified_ranges: Vec<ByteRange>,
    /// Segment-map representation switches already handed to telemetry;
    /// see [`take_repr_switch_delta`](Self::take_repr_switch_delta).
    reported_repr_switches: u64,
}

impl CheckerScratch {
    /// Creates fresh (empty) scratch state.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets to the logical state of a fresh scratch while keeping every
    /// backing allocation. Called automatically by
    /// [`TraceChecker::with_scratch`].
    pub fn reset(&mut self) {
        self.shadow.clear();
        self.tx.active = false;
        self.tx.start_loc = None;
        self.tx.log.clear();
        self.tx.modified.clear();
        self.tx_begins.clear();
        self.modified_ranges.clear();
        // reported_repr_switches intentionally survives: the underlying
        // counters are cumulative across resets.
    }

    /// Read access to the shadow memory (for tests and custom checkers).
    #[must_use]
    pub fn shadow(&self) -> &ShadowMemory {
        &self.shadow
    }

    /// Cumulative flat→BTree representation switches across this scratch's
    /// segment maps (shadow memory plus the transaction modified-set).
    #[must_use]
    pub fn repr_switches(&self) -> u64 {
        self.shadow.repr_switches() + self.tx.modified.repr_switches()
    }

    /// Representation switches since the last call (for feeding a telemetry
    /// counter incrementally from a recycled scratch).
    pub fn take_repr_switch_delta(&mut self) -> u64 {
        let total = self.repr_switches();
        let delta = total - self.reported_repr_switches;
        self.reported_repr_switches = total;
        delta
    }
}

/// State of an open `TX_CHECKER_START` … `TX_CHECKER_END` scope.
#[derive(Default)]
struct TxScope {
    active: bool,
    start_loc: Option<SourceLoc>,
    /// Ranges backed up by `TX_ADD`, attributed to the call that logged them.
    log: IntervalTree<SourceLoc>,
    /// Ranges modified inside the scope, attributed to the last write.
    modified: SegmentMap<SourceLoc>,
}

/// Owned-or-borrowed scratch: `TraceChecker::new` owns fresh state for
/// one-shot use; `with_scratch` borrows a pooled instance.
enum ScratchSlot<'a> {
    Owned(Box<CheckerScratch>),
    Borrowed(&'a mut CheckerScratch),
}

impl ScratchSlot<'_> {
    fn get(&self) -> &CheckerScratch {
        match self {
            ScratchSlot::Owned(s) => s,
            ScratchSlot::Borrowed(s) => s,
        }
    }

    fn get_mut(&mut self) -> &mut CheckerScratch {
        match self {
            ScratchSlot::Owned(s) => s,
            ScratchSlot::Borrowed(s) => s,
        }
    }
}

/// Applies one *operation* event. For the built-in models the rules are
/// called directly — no dynamic dispatch, no per-event [`Entry`]
/// reconstruction; custom models take the object-safe path. Both run the
/// same rule code (`x86_op`/`hops_op`), so diagnostics are identical.
#[inline]
fn apply_op(
    fast: Option<BuiltinModel>,
    model: &dyn PersistencyModel,
    shadow: &mut ShadowMemory,
    event: Event,
    loc: SourceLoc,
    diags: &mut Vec<Diag>,
) {
    match fast {
        Some(BuiltinModel::X86 { warn_performance }) => {
            x86_op(warn_performance, shadow, event, loc, diags);
        }
        Some(BuiltinModel::Hops) => hops_op(shadow, event, loc, diags),
        None => model.apply(shadow, &event.at(loc), diags),
    }
}

#[inline]
fn do_check_persist(
    fast: Option<BuiltinModel>,
    model: &dyn PersistencyModel,
    shadow: &ShadowMemory,
    range: ByteRange,
    loc: SourceLoc,
    diags: &mut Vec<Diag>,
) {
    match fast {
        Some(_) => persist_failure(shadow, range, loc, diags),
        None => model.check_persist(shadow, range, loc, diags),
    }
}

#[inline]
fn do_check_ordered_before(
    fast: Option<BuiltinModel>,
    model: &dyn PersistencyModel,
    shadow: &ShadowMemory,
    first: ByteRange,
    second: ByteRange,
    loc: SourceLoc,
    diags: &mut Vec<Diag>,
) {
    match fast {
        Some(BuiltinModel::X86 { .. }) => x86_ordered_before(shadow, first, second, loc, diags),
        Some(BuiltinModel::Hops) => hops_ordered_before(shadow, first, second, loc, diags),
        None => model.check_ordered_before(shadow, first, second, loc, diags),
    }
}

/// Validates one trace against a persistency model's checking rules (§4.4)
/// and the high-level transaction checkers (§5.1).
///
/// The checker walks entries in program order in a single fused pass:
/// operations update the [`ShadowMemory`] (for the built-in models the rules
/// are inlined, bypassing dynamic dispatch), checkers are validated against
/// it in place, and the transaction checker maintains the *log tree* of
/// `TX_ADD`ed ranges plus the set of objects modified inside the checked
/// scope.
///
/// For one-shot use see [`check_trace`]; for the engine's recycled hot path
/// see [`check_trace_with`] and [`CheckerScratch`].
pub struct TraceChecker<'a> {
    model: &'a dyn PersistencyModel,
    /// `Some` when `model` is one of the built-ins, enabling the fused
    /// devirtualized replay; queried once per trace.
    fast: Option<BuiltinModel>,
    scratch: ScratchSlot<'a>,
    diags: Vec<Diag>,
}

impl<'a> TraceChecker<'a> {
    /// Creates a checker for one trace with its own fresh state.
    #[must_use]
    pub fn new(model: &'a dyn PersistencyModel) -> Self {
        Self {
            model,
            fast: model.builtin(),
            scratch: ScratchSlot::Owned(Box::default()),
            diags: Vec::new(),
        }
    }

    /// Creates a checker that replays onto recycled `scratch` state (which
    /// is reset here; any previous trace's results are discarded).
    #[must_use]
    pub fn with_scratch(model: &'a dyn PersistencyModel, scratch: &'a mut CheckerScratch) -> Self {
        scratch.reset();
        Self {
            model,
            fast: model.builtin(),
            scratch: ScratchSlot::Borrowed(scratch),
            diags: Vec::new(),
        }
    }

    /// Splits the borrow so handlers can mutate scratch state and the
    /// diagnostics sink simultaneously.
    fn parts(&mut self) -> (&mut CheckerScratch, &mut Vec<Diag>) {
        let Self { scratch, diags, .. } = self;
        (scratch.get_mut(), diags)
    }

    /// Processes one entry.
    pub fn process(&mut self, entry: &Entry) {
        let model = self.model;
        let fast = self.fast;
        let (scratch, diags) = self.parts();
        // Fast path: no exclusions active (the overwhelmingly common case),
        // so no range clipping and no per-event allocation is needed.
        if !scratch.shadow.has_exclusions() {
            return process_unclipped(model, fast, scratch, diags, entry);
        }
        match entry.event {
            Event::Write(range) => {
                for sub in scratch.shadow.in_scope(range) {
                    write_sub(model, fast, scratch, diags, sub, entry.loc);
                }
            }
            Event::Flush(range) => {
                for sub in scratch.shadow.in_scope(range) {
                    apply_op(fast, model, &mut scratch.shadow, Event::Flush(sub), entry.loc, diags);
                }
            }
            Event::Fence | Event::OFence | Event::DFence => {
                apply_op(fast, model, &mut scratch.shadow, entry.event, entry.loc, diags);
            }
            Event::TxBegin => scratch.tx_begins.push(entry.loc),
            Event::TxEnd => on_tx_end(scratch, diags, entry.loc),
            Event::TxAdd(range) => {
                if scratch.tx.active {
                    for sub in scratch.shadow.in_scope(range) {
                        tx_add_sub(scratch, diags, sub, entry.loc);
                    }
                }
            }
            Event::IsPersist(range) => {
                for sub in scratch.shadow.in_scope(range) {
                    do_check_persist(fast, model, &scratch.shadow, sub, entry.loc, diags);
                }
            }
            Event::IsOrderedBefore(first, second) => {
                for a in scratch.shadow.in_scope(first) {
                    for b in scratch.shadow.in_scope(second) {
                        do_check_ordered_before(
                            fast,
                            model,
                            &scratch.shadow,
                            a,
                            b,
                            entry.loc,
                            diags,
                        );
                    }
                }
            }
            Event::TxCheckerStart => on_tx_checker_start(scratch, entry.loc),
            Event::TxCheckerEnd => on_tx_checker_end(model, fast, scratch, diags, entry.loc),
            Event::Exclude(range) => scratch.shadow.exclude(range),
            Event::Include(range) => scratch.shadow.include(range),
        }
    }

    /// Processes every entry of `trace` and returns the diagnostics.
    #[must_use]
    pub fn run(mut self, trace: &Trace) -> Vec<Diag> {
        let mut resolver = LocResolver::new();
        self.process_packed(trace.packed(), &mut resolver);
        self.finish()
    }

    /// Processes a packed record slice in place. Decoding happens one entry
    /// at a time on the stack — the worker hot path never materialises a
    /// `Vec<Entry>` for the trace.
    pub fn process_packed(&mut self, words: &[PackedEntry], resolver: &mut LocResolver) {
        let mut i = 0;
        while let Some((entry, next)) = decode_next(words, i, resolver) {
            self.process(&entry);
            i = next;
        }
    }

    /// Processes packed records and returns the diagnostics.
    #[must_use]
    pub fn run_packed(mut self, words: &[PackedEntry], resolver: &mut LocResolver) -> Vec<Diag> {
        self.process_packed(words, resolver);
        self.finish()
    }

    /// Returns the diagnostics accumulated so far.
    #[must_use]
    pub fn finish(self) -> Vec<Diag> {
        self.diags
    }

    /// Read access to the shadow memory (for tests and custom checkers).
    #[must_use]
    pub fn shadow(&self) -> &ShadowMemory {
        &self.scratch.get().shadow
    }
}

/// The no-exclusions fast path of [`TraceChecker::process`]: identical
/// semantics with every range passed through whole.
fn process_unclipped(
    model: &dyn PersistencyModel,
    fast: Option<BuiltinModel>,
    scratch: &mut CheckerScratch,
    diags: &mut Vec<Diag>,
    entry: &Entry,
) {
    match entry.event {
        Event::Write(range) => write_sub(model, fast, scratch, diags, range, entry.loc),
        Event::Flush(_) | Event::Fence | Event::OFence | Event::DFence => {
            apply_op(fast, model, &mut scratch.shadow, entry.event, entry.loc, diags);
        }
        Event::IsPersist(range) => {
            do_check_persist(fast, model, &scratch.shadow, range, entry.loc, diags);
        }
        Event::IsOrderedBefore(first, second) => {
            do_check_ordered_before(fast, model, &scratch.shadow, first, second, entry.loc, diags);
        }
        Event::TxAdd(range) => tx_add_sub(scratch, diags, range, entry.loc),
        Event::TxBegin => scratch.tx_begins.push(entry.loc),
        Event::TxEnd => on_tx_end(scratch, diags, entry.loc),
        Event::TxCheckerStart => on_tx_checker_start(scratch, entry.loc),
        Event::TxCheckerEnd => on_tx_checker_end(model, fast, scratch, diags, entry.loc),
        Event::Exclude(range) => scratch.shadow.exclude(range),
        Event::Include(range) => scratch.shadow.include(range),
    }
}

fn on_tx_end(scratch: &mut CheckerScratch, diags: &mut Vec<Diag>, loc: SourceLoc) {
    if scratch.tx_begins.pop().is_none() {
        diags.push(Diag {
            kind: DiagKind::UnmatchedTxEnd,
            loc,
            range: None,
            culprit: None,
            message: "transaction end without a matching begin".to_owned(),
        });
    }
}

/// Opens (or re-opens) the checked scope; the log tree and modified set are
/// cleared in place, retaining their capacity for the recycled case.
fn on_tx_checker_start(scratch: &mut CheckerScratch, loc: SourceLoc) {
    scratch.tx.active = true;
    scratch.tx.start_loc = Some(loc);
    scratch.tx.log.clear();
    scratch.tx.modified.clear();
}

/// Handles one (possibly clipped) written sub-range.
fn write_sub(
    model: &dyn PersistencyModel,
    fast: Option<BuiltinModel>,
    scratch: &mut CheckerScratch,
    diags: &mut Vec<Diag>,
    sub: ByteRange,
    loc: SourceLoc,
) {
    // Missing-backup check (§5.1.1): inside a checked transaction, every
    // modified range must already be in the undo log.
    if scratch.tx.active && !scratch.tx_begins.is_empty() {
        for gap in scratch.tx.log.uncovered(sub) {
            diags.push(Diag {
                kind: DiagKind::MissingLog,
                loc,
                range: Some(gap),
                // The unlogged write itself is the site to fix.
                culprit: Some(loc),
                message: "persistent object modified inside a transaction without \
                          a prior TX_ADD backup"
                    .to_owned(),
            });
        }
    }
    if scratch.tx.active {
        scratch.tx.modified.insert(sub, loc);
    }
    apply_op(fast, model, &mut scratch.shadow, Event::Write(sub), loc, diags);
}

fn tx_add_sub(scratch: &mut CheckerScratch, diags: &mut Vec<Diag>, sub: ByteRange, loc: SourceLoc) {
    if !scratch.tx.active {
        return;
    }
    // Duplicate-log check (§5.1.2).
    if let Some((_, earlier)) = scratch.tx.log.overlaps(sub).next() {
        diags.push(Diag {
            kind: DiagKind::DuplicateLog,
            loc,
            range: Some(sub),
            culprit: Some(*earlier),
            message: "object already added to the undo log in this transaction".to_owned(),
        });
    }
    scratch.tx.log.insert(sub, loc);
}

fn on_tx_checker_end(
    model: &dyn PersistencyModel,
    fast: Option<BuiltinModel>,
    scratch: &mut CheckerScratch,
    diags: &mut Vec<Diag>,
    loc: SourceLoc,
) {
    if !scratch.tx.active {
        diags.push(Diag {
            kind: DiagKind::UnterminatedTx,
            loc,
            range: None,
            culprit: None,
            message: "TX_CHECKER_END without a matching TX_CHECKER_START".to_owned(),
        });
        return;
    }
    // Incomplete-transaction check (§5.1.1).
    if !scratch.tx_begins.is_empty() {
        diags.push(Diag {
            kind: DiagKind::UnterminatedTx,
            loc,
            range: None,
            // The innermost TX_BEGIN that was never closed.
            culprit: scratch.tx_begins.last().copied().or(scratch.tx.start_loc),
            message: format!(
                "{} transaction(s) still open at the end of the checked scope",
                scratch.tx_begins.len()
            ),
        });
    }
    // Auto-injected `isPersist` for every modified, in-scope object
    // (§5.1.1, Fig. 5b). The range list goes through a recycled buffer.
    let mut ranges = std::mem::take(&mut scratch.modified_ranges);
    ranges.clear();
    ranges.extend(scratch.tx.modified.iter().map(|(r, _)| r));
    let clipping = scratch.shadow.has_exclusions();
    for &range in &ranges {
        if clipping {
            for sub in scratch.shadow.in_scope(range) {
                do_check_persist(fast, model, &scratch.shadow, sub, loc, diags);
            }
        } else {
            do_check_persist(fast, model, &scratch.shadow, range, loc, diags);
        }
    }
    scratch.modified_ranges = ranges;
    scratch.tx.active = false;
    scratch.tx.start_loc = None;
    scratch.tx.log.clear();
    scratch.tx.modified.clear();
}

/// Checks one trace against `model`, returning all diagnostics.
///
/// This is the one-shot path; tests and custom tools can call it directly.
/// The engine's workers use [`check_trace_with`], which recycles the
/// checker's allocations across traces.
///
/// # Examples
///
/// ```
/// use pmtest_core::{check_trace, X86Model};
/// use pmtest_trace::{Event, Trace};
/// use pmtest_interval::ByteRange;
///
/// let mut trace = Trace::new(0);
/// let r = ByteRange::with_len(0, 8);
/// trace.push(Event::Write(r).here());
/// trace.push(Event::Flush(r).here());
/// trace.push(Event::Fence.here());
/// trace.push(Event::IsPersist(r).here());
/// assert!(check_trace(&trace, &X86Model::new()).is_empty());
/// ```
#[must_use]
pub fn check_trace(trace: &Trace, model: &dyn PersistencyModel) -> Vec<Diag> {
    TraceChecker::new(model).run(trace)
}

/// Checks one trace on recycled scratch state — the engine hot path. The
/// scratch is reset first, so results are identical to [`check_trace`];
/// in steady state no allocation happens besides the returned diagnostics.
///
/// # Examples
///
/// ```
/// use pmtest_core::{check_trace_with, CheckerScratch, X86Model};
/// use pmtest_trace::{Event, Trace};
/// use pmtest_interval::ByteRange;
///
/// let model = X86Model::new();
/// let mut scratch = CheckerScratch::new();
/// for id in 0..3 {
///     let mut trace = Trace::new(id);
///     let r = ByteRange::with_len(0, 8);
///     trace.push(Event::Write(r).here());
///     trace.push(Event::IsPersist(r).here());
///     assert_eq!(check_trace_with(&trace, &model, &mut scratch).len(), 1);
/// }
/// ```
#[must_use]
pub fn check_trace_with(
    trace: &Trace,
    model: &dyn PersistencyModel,
    scratch: &mut CheckerScratch,
) -> Vec<Diag> {
    TraceChecker::with_scratch(model, scratch).run(trace)
}

/// Checks a packed record slice on recycled scratch state — the worker hot
/// path over arena-shipped batches. Entries are decoded one at a time on the
/// stack (locations resolved through the caller's [`LocResolver`] mirror),
/// so no per-trace `Vec<Entry>` is ever built. Diagnostics are identical to
/// decoding the slice and calling [`check_trace_with`].
#[must_use]
pub fn check_packed_with(
    words: &[PackedEntry],
    model: &dyn PersistencyModel,
    scratch: &mut CheckerScratch,
    resolver: &mut LocResolver,
) -> Vec<Diag> {
    TraceChecker::with_scratch(model, scratch).run_packed(words, resolver)
}

/// Maximum number of distinct ranges the clean-lane DFA tracks before it
/// defers to the full checker. The paper's microbenchmark traces (Fig. 10a)
/// touch one or two objects; four slots covers them with room to spare.
const FAST_SLOTS: usize = 4;

#[derive(Clone, Copy, PartialEq, Eq)]
enum FastState {
    Dirty,
    Flushed,
    Persisted,
}

/// The *clean lane*: a conservative single-pass DFA over packed records that
/// answers "is this trace certainly diagnostic-free under `model`?" without
/// decoding entries, resolving locations, or touching shadow memory.
///
/// The DFA tracks up to [`FAST_SLOTS`] mutually disjoint ranges, each
/// matched *exactly* (same start and end on every reappearance), through
/// `dirty → flushed → persisted`. Anything it is not absolutely sure about —
/// partially overlapping ranges, transaction events, ordering checkers,
/// scope control, ops foreign to the model, a flush that could draw a
/// performance warning — makes it bail with `false`, and the caller runs the
/// full checker. `true` is a proof: the full checker would emit no
/// diagnostics, so the report is byte-identical either way (an empty
/// diagnostics list), verified by a differential property test.
#[must_use]
pub fn packed_clean(model: BuiltinModel, words: &[PackedEntry]) -> bool {
    let hops = matches!(model, BuiltinModel::Hops);
    let mut slots = [(0u64, 0u64, FastState::Dirty); FAST_SLOTS];
    let mut used = 0usize;
    for w in words {
        match w.op() {
            PackedOp::Write => {
                let (lo, hi) = (w.lo(), w.hi());
                if lo >= hi {
                    return false; // empty write: stay out of corner cases
                }
                let mut found = false;
                for s in slots[..used].iter_mut() {
                    if s.0 == lo && s.1 == hi {
                        // Re-dirty: matches the model resetting the flush
                        // interval on overwrite.
                        s.2 = FastState::Dirty;
                        found = true;
                        break;
                    }
                    if lo < s.1 && s.0 < hi {
                        return false; // partial overlap: defer
                    }
                }
                if !found {
                    if used == FAST_SLOTS {
                        return false;
                    }
                    slots[used] = (lo, hi, FastState::Dirty);
                    used += 1;
                }
            }
            PackedOp::Flush => {
                if hops {
                    return false; // foreign op under HOPS
                }
                let (lo, hi) = (w.lo(), w.hi());
                let mut closed = false;
                for s in slots[..used].iter_mut() {
                    if s.0 == lo && s.1 == hi {
                        if s.2 != FastState::Dirty {
                            return false; // duplicate flush may warn
                        }
                        s.2 = FastState::Flushed;
                        closed = true;
                        break;
                    }
                    if lo < s.1 && s.0 < hi {
                        return false;
                    }
                }
                if !closed {
                    return false; // flush of an unwritten range may warn
                }
            }
            PackedOp::Fence => {
                if hops {
                    return false;
                }
                for s in slots[..used].iter_mut() {
                    if s.2 == FastState::Flushed {
                        s.2 = FastState::Persisted;
                    }
                }
            }
            PackedOp::OFence => {
                if !hops {
                    return false; // foreign op under x86
                }
                // Epoch boundary: orders, persists nothing.
            }
            PackedOp::DFence => {
                if !hops {
                    return false;
                }
                for s in slots[..used].iter_mut() {
                    s.2 = FastState::Persisted;
                }
            }
            PackedOp::IsPersist => {
                let (lo, hi) = (w.lo(), w.hi());
                if lo >= hi {
                    return false;
                }
                for s in slots[..used].iter() {
                    if s.0 == lo && s.1 == hi {
                        if s.2 != FastState::Persisted {
                            return false; // would FAIL — full checker reports it
                        }
                        break;
                    }
                    if lo < s.1 && s.0 < hi {
                        return false;
                    }
                }
                // Disjoint from every tracked range: the checker would pass
                // it only if the range was never written — which holds, or
                // the write would have landed in a slot or bailed.
            }
            // Transactions, ordering checkers, scope control, continuation
            // records: always the full checker's business.
            _ => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{HopsModel, X86Model};

    fn r(s: u64, e: u64) -> ByteRange {
        ByteRange::new(s, e)
    }

    fn trace(events: &[Event]) -> Trace {
        let mut t = Trace::new(0);
        for (i, &e) in events.iter().enumerate() {
            t.push(e.at(SourceLoc::new("t.rs", i as u32 + 1)));
        }
        t
    }

    fn kinds(diags: &[Diag]) -> Vec<DiagKind> {
        diags.iter().map(|d| d.kind).collect()
    }

    #[test]
    fn figure4_trace() {
        // sfence; write A; clwb A; write B; sfence;
        // isOrderedBefore A B → FAIL; isPersist B → FAIL.
        let a = ByteRange::with_len(0x00, 8);
        let b = ByteRange::with_len(0x40, 8);
        let diags = check_trace(
            &trace(&[
                Event::Fence,
                Event::Write(a),
                Event::Flush(a),
                Event::Write(b),
                Event::Fence,
                Event::IsOrderedBefore(a, b),
                Event::IsPersist(b),
            ]),
            &X86Model::new(),
        );
        assert_eq!(kinds(&diags), [DiagKind::NotOrderedBefore, DiagKind::NotPersisted]);
        // Locations point at the checkers (lines 6 and 7).
        assert_eq!(diags[0].loc.line(), 6);
        assert_eq!(diags[1].loc.line(), 7);
        // The culprit of the isPersist failure is the write at line 4.
        assert_eq!(diags[1].culprit.map(|l| l.line()), Some(4));
    }

    #[test]
    fn figure7_trace() {
        // write(0x10,64); clwb(0x10,64); sfence; write(0x50,64);
        // isPersist(0x50,64) → FAIL; isOrderedBefore(0x10 → 0x50) → pass.
        let a = ByteRange::with_len(0x10, 64);
        let b = ByteRange::with_len(0x50, 64);
        let diags = check_trace(
            &trace(&[
                Event::Write(a),
                Event::Flush(a),
                Event::Fence,
                Event::Write(b),
                Event::IsPersist(b),
                Event::IsOrderedBefore(a, b),
            ]),
            &X86Model::new(),
        );
        // Note: [0x10,0x50) closed at 1; the overlap of a and b ([0x50,0x50))
        // is empty, so the ordering check sees A=(0,1) vs B=(1,∞) — pass.
        assert_eq!(kinds(&diags), [DiagKind::NotPersisted]);
    }

    #[test]
    fn clean_figure3a_trace() {
        let a = r(0, 8);
        let b = r(64, 72);
        let diags = check_trace(
            &trace(&[
                Event::Write(a),
                Event::Flush(a),
                Event::Fence,
                Event::Write(b),
                Event::Flush(b),
                Event::Fence,
                Event::IsOrderedBefore(a, b),
                Event::IsPersist(a),
                Event::IsPersist(b),
            ]),
            &X86Model::new(),
        );
        assert!(diags.is_empty(), "got {diags:?}");
    }

    #[test]
    fn clean_figure3b_trace_under_hops() {
        let a = r(0, 8);
        let b = r(64, 72);
        let diags = check_trace(
            &trace(&[
                Event::Write(a),
                Event::OFence,
                Event::Write(b),
                Event::DFence,
                Event::IsOrderedBefore(a, b),
                Event::IsPersist(a),
                Event::IsPersist(b),
            ]),
            &HopsModel::new(),
        );
        assert!(diags.is_empty(), "got {diags:?}");
    }

    #[test]
    fn tx_checker_detects_missing_log() {
        // Fig. 1b shape: head is TX_ADDed, length is not.
        let head = r(0, 8);
        let length = r(8, 16);
        let diags = check_trace(
            &trace(&[
                Event::TxCheckerStart,
                Event::TxBegin,
                Event::TxAdd(head),
                Event::Write(head),
                Event::Write(length), // bug: no TX_ADD
                Event::Flush(r(0, 16)),
                Event::Fence,
                Event::TxEnd,
                Event::TxCheckerEnd,
            ]),
            &X86Model::new(),
        );
        assert_eq!(kinds(&diags), [DiagKind::MissingLog]);
        assert_eq!(diags[0].range, Some(length));
        assert_eq!(diags[0].loc.line(), 5);
        // The unlogged write is also the culprit to fix.
        assert_eq!(diags[0].culprit.map(|l| l.line()), Some(5));
    }

    #[test]
    fn tx_checker_detects_incomplete_transaction() {
        let a = r(0, 8);
        let diags = check_trace(
            &trace(&[
                Event::TxCheckerStart,
                Event::TxBegin,
                Event::TxAdd(a),
                Event::Write(a),
                Event::Flush(a),
                Event::Fence,
                // bug: no TxEnd
                Event::TxCheckerEnd,
            ]),
            &X86Model::new(),
        );
        assert_eq!(kinds(&diags), [DiagKind::UnterminatedTx]);
        // Culprit: the TX_BEGIN (line 2) that was never closed.
        assert_eq!(diags[0].culprit.map(|l| l.line()), Some(2));
    }

    #[test]
    fn tx_checker_injects_is_persist_at_end() {
        let a = r(0, 8);
        let diags = check_trace(
            &trace(&[
                Event::TxCheckerStart,
                Event::TxBegin,
                Event::TxAdd(a),
                Event::Write(a),
                // bug: modified object never written back
                Event::TxEnd,
                Event::TxCheckerEnd,
            ]),
            &X86Model::new(),
        );
        assert_eq!(kinds(&diags), [DiagKind::NotPersisted]);
        assert_eq!(diags[0].culprit.map(|l| l.line()), Some(4));
    }

    #[test]
    fn tx_checker_detects_duplicate_log() {
        let a = r(0, 8);
        let diags = check_trace(
            &trace(&[
                Event::TxCheckerStart,
                Event::TxBegin,
                Event::TxAdd(a),
                Event::TxAdd(a), // bug: double log
                Event::Write(a),
                Event::Flush(a),
                Event::Fence,
                Event::TxEnd,
                Event::TxCheckerEnd,
            ]),
            &X86Model::new(),
        );
        assert_eq!(kinds(&diags), [DiagKind::DuplicateLog]);
        assert_eq!(diags[0].culprit.map(|l| l.line()), Some(3));
    }

    #[test]
    fn clean_transaction_passes() {
        let a = r(0, 8);
        let b = r(64, 72);
        let diags = check_trace(
            &trace(&[
                Event::TxCheckerStart,
                Event::TxBegin,
                Event::TxAdd(a),
                Event::Write(a),
                Event::TxAdd(b),
                Event::Write(b),
                Event::Flush(a),
                Event::Flush(b),
                Event::Fence,
                Event::TxEnd,
                Event::TxCheckerEnd,
            ]),
            &X86Model::new(),
        );
        assert!(diags.is_empty(), "got {diags:?}");
    }

    #[test]
    fn unmatched_tx_end_reported() {
        let diags = check_trace(&trace(&[Event::TxEnd]), &X86Model::new());
        assert_eq!(kinds(&diags), [DiagKind::UnmatchedTxEnd]);
    }

    #[test]
    fn tx_checker_end_without_start_reported() {
        let diags = check_trace(&trace(&[Event::TxCheckerEnd]), &X86Model::new());
        assert_eq!(kinds(&diags), [DiagKind::UnterminatedTx]);
    }

    #[test]
    fn exclusion_silences_checks_on_a_range() {
        let a = r(0, 8);
        let diags = check_trace(
            &trace(&[
                Event::TxCheckerStart,
                Event::TxBegin,
                Event::Exclude(a),
                Event::Write(a), // would be MissingLog + NotPersisted
                Event::TxEnd,
                Event::TxCheckerEnd,
                Event::IsPersist(a),
            ]),
            &X86Model::new(),
        );
        assert!(diags.is_empty(), "got {diags:?}");
    }

    #[test]
    fn include_restores_checking() {
        let a = r(0, 8);
        let diags = check_trace(
            &trace(&[Event::Exclude(a), Event::Include(a), Event::Write(a), Event::IsPersist(a)]),
            &X86Model::new(),
        );
        assert_eq!(kinds(&diags), [DiagKind::NotPersisted]);
    }

    #[test]
    fn writes_outside_transactions_are_not_log_checked() {
        let a = r(0, 8);
        let diags = check_trace(
            &trace(&[
                Event::TxCheckerStart,
                Event::Write(a), // outside TX_BEGIN/END: no MissingLog
                Event::Flush(a),
                Event::Fence,
                Event::TxCheckerEnd,
            ]),
            &X86Model::new(),
        );
        assert!(diags.is_empty(), "got {diags:?}");
    }

    #[test]
    fn nested_transactions_must_all_terminate() {
        let a = r(0, 8);
        let diags = check_trace(
            &trace(&[
                Event::TxCheckerStart,
                Event::TxBegin,
                Event::TxBegin,
                Event::TxAdd(a),
                Event::Write(a),
                Event::Flush(a),
                Event::Fence,
                Event::TxEnd,
                // inner ended; outer still open
                Event::TxCheckerEnd,
            ]),
            &X86Model::new(),
        );
        assert_eq!(kinds(&diags), [DiagKind::UnterminatedTx]);
        // TxEnd closed the inner begin (line 3); the outer (line 2) is the
        // one still open.
        assert_eq!(diags[0].culprit.map(|l| l.line()), Some(2));
    }

    #[test]
    fn partial_log_coverage_reports_only_the_gap() {
        let diags = check_trace(
            &trace(&[
                Event::TxCheckerStart,
                Event::TxBegin,
                Event::TxAdd(r(0, 8)),
                Event::Write(r(0, 16)), // bytes 8..16 unlogged
                Event::Flush(r(0, 16)),
                Event::Fence,
                Event::TxEnd,
                Event::TxCheckerEnd,
            ]),
            &X86Model::new(),
        );
        assert_eq!(kinds(&diags), [DiagKind::MissingLog]);
        assert_eq!(diags[0].range, Some(r(8, 16)));
    }
}
