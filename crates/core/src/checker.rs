use pmtest_interval::{ByteRange, IntervalTree, SegmentMap};
use pmtest_trace::{Entry, Event, SourceLoc, Trace};

use crate::diag::{Diag, DiagKind};
use crate::model::PersistencyModel;
use crate::shadow::ShadowMemory;

/// Validates one trace against a persistency model's checking rules (§4.4)
/// and the high-level transaction checkers (§5.1).
///
/// The checker owns the trace's [`ShadowMemory`] and walks entries in program
/// order: operations update the shadow state (via the model), checkers are
/// validated against it, and the transaction checker maintains the *log tree*
/// of `TX_ADD`ed ranges plus the set of objects modified inside the checked
/// scope.
///
/// For one-shot use see [`check_trace`].
pub struct TraceChecker<'m> {
    model: &'m dyn PersistencyModel,
    shadow: ShadowMemory,
    diags: Vec<Diag>,
    tx: TxScope,
    /// Locations of the currently open `TX_BEGIN`s, innermost last (the
    /// stack's length is the transaction nesting depth). Kept so an
    /// unterminated-transaction diagnostic can name the begin that was
    /// never closed as its culprit.
    tx_begins: Vec<SourceLoc>,
}

/// State of an open `TX_CHECKER_START` … `TX_CHECKER_END` scope.
#[derive(Default)]
struct TxScope {
    active: bool,
    start_loc: Option<SourceLoc>,
    /// Ranges backed up by `TX_ADD`, attributed to the call that logged them.
    log: IntervalTree<SourceLoc>,
    /// Ranges modified inside the scope, attributed to the last write.
    modified: SegmentMap<SourceLoc>,
}

impl<'m> TraceChecker<'m> {
    /// Creates a checker for one trace.
    #[must_use]
    pub fn new(model: &'m dyn PersistencyModel) -> Self {
        Self {
            model,
            shadow: ShadowMemory::new(),
            diags: Vec::new(),
            tx: TxScope::default(),
            tx_begins: Vec::new(),
        }
    }

    /// Processes one entry.
    pub fn process(&mut self, entry: &Entry) {
        // Fast path: no exclusions active (the overwhelmingly common case),
        // so no range clipping and no per-event allocation is needed.
        if !self.shadow.has_exclusions() {
            return self.process_unclipped(entry);
        }
        match entry.event {
            Event::Write(range) => self.on_write(range, entry),
            Event::Flush(range) => {
                for sub in self.shadow.in_scope(range) {
                    let clipped = Event::Flush(sub).at(entry.loc);
                    self.model.apply(&mut self.shadow, &clipped, &mut self.diags);
                }
            }
            Event::Fence | Event::OFence | Event::DFence => {
                self.model.apply(&mut self.shadow, entry, &mut self.diags);
            }
            Event::TxBegin => self.tx_begins.push(entry.loc),
            Event::TxEnd => self.on_tx_end(entry),
            Event::TxAdd(range) => self.on_tx_add(range, entry),
            Event::IsPersist(range) => {
                for sub in self.shadow.in_scope(range) {
                    self.model.check_persist(&self.shadow, sub, entry.loc, &mut self.diags);
                }
            }
            Event::IsOrderedBefore(first, second) => {
                for a in self.shadow.in_scope(first) {
                    for b in self.shadow.in_scope(second) {
                        self.model.check_ordered_before(
                            &self.shadow,
                            a,
                            b,
                            entry.loc,
                            &mut self.diags,
                        );
                    }
                }
            }
            Event::TxCheckerStart => {
                self.tx = TxScope {
                    active: true,
                    start_loc: Some(entry.loc),
                    log: IntervalTree::new(),
                    modified: SegmentMap::new(),
                };
            }
            Event::TxCheckerEnd => self.on_tx_checker_end(entry),
            Event::Exclude(range) => self.shadow.exclude(range),
            Event::Include(range) => self.shadow.include(range),
        }
    }

    /// The no-exclusions fast path of [`process`](Self::process): identical
    /// semantics with every range passed through whole.
    fn process_unclipped(&mut self, entry: &Entry) {
        match entry.event {
            Event::Write(range) => self.write_sub(range, range, entry),
            Event::Flush(_) | Event::Fence | Event::OFence | Event::DFence => {
                self.model.apply(&mut self.shadow, entry, &mut self.diags);
            }
            Event::IsPersist(range) => {
                self.model.check_persist(&self.shadow, range, entry.loc, &mut self.diags);
            }
            Event::IsOrderedBefore(first, second) => {
                self.model.check_ordered_before(
                    &self.shadow,
                    first,
                    second,
                    entry.loc,
                    &mut self.diags,
                );
            }
            Event::TxAdd(range) => self.tx_add_sub(range, entry),
            _ => self.process_slow(entry),
        }
    }

    /// Events with no hot-path concern (tx boundaries, scope control,
    /// checker scopes).
    fn process_slow(&mut self, entry: &Entry) {
        match entry.event {
            Event::TxBegin => self.tx_begins.push(entry.loc),
            Event::TxEnd => self.on_tx_end(entry),
            Event::TxCheckerStart => {
                self.tx = TxScope {
                    active: true,
                    start_loc: Some(entry.loc),
                    log: IntervalTree::new(),
                    modified: SegmentMap::new(),
                };
            }
            Event::TxCheckerEnd => self.on_tx_checker_end(entry),
            Event::Exclude(range) => self.shadow.exclude(range),
            Event::Include(range) => self.shadow.include(range),
            _ => unreachable!("hot-path event {} reached process_slow", entry.event),
        }
    }

    fn on_tx_end(&mut self, entry: &Entry) {
        if self.tx_begins.pop().is_none() {
            self.diags.push(Diag {
                kind: DiagKind::UnmatchedTxEnd,
                loc: entry.loc,
                range: None,
                culprit: None,
                message: "transaction end without a matching begin".to_owned(),
            });
        }
    }

    fn on_write(&mut self, range: ByteRange, entry: &Entry) {
        for sub in self.shadow.in_scope(range) {
            self.write_sub(range, sub, entry);
        }
    }

    /// Handles one (possibly clipped) written sub-range.
    fn write_sub(&mut self, _full: ByteRange, sub: ByteRange, entry: &Entry) {
        // Missing-backup check (§5.1.1): inside a checked transaction,
        // every modified range must already be in the undo log.
        if self.tx.active && !self.tx_begins.is_empty() {
            for gap in self.tx.log.uncovered(sub) {
                self.diags.push(Diag {
                    kind: DiagKind::MissingLog,
                    loc: entry.loc,
                    range: Some(gap),
                    // The unlogged write itself is the site to fix.
                    culprit: Some(entry.loc),
                    message: "persistent object modified inside a transaction without \
                              a prior TX_ADD backup"
                        .to_owned(),
                });
            }
        }
        if self.tx.active {
            self.tx.modified.insert(sub, entry.loc);
        }
        let clipped = Event::Write(sub).at(entry.loc);
        self.model.apply(&mut self.shadow, &clipped, &mut self.diags);
    }

    fn on_tx_add(&mut self, range: ByteRange, entry: &Entry) {
        if !self.tx.active {
            return;
        }
        for sub in self.shadow.in_scope(range) {
            self.tx_add_sub(sub, entry);
        }
    }

    fn tx_add_sub(&mut self, sub: ByteRange, entry: &Entry) {
        if !self.tx.active {
            return;
        }
        // Duplicate-log check (§5.1.2).
        if let Some((_, earlier)) = self.tx.log.overlaps(sub).next() {
            self.diags.push(Diag {
                kind: DiagKind::DuplicateLog,
                loc: entry.loc,
                range: Some(sub),
                culprit: Some(*earlier),
                message: "object already added to the undo log in this transaction".to_owned(),
            });
        }
        self.tx.log.insert(sub, entry.loc);
    }

    fn on_tx_checker_end(&mut self, entry: &Entry) {
        if !self.tx.active {
            self.diags.push(Diag {
                kind: DiagKind::UnterminatedTx,
                loc: entry.loc,
                range: None,
                culprit: None,
                message: "TX_CHECKER_END without a matching TX_CHECKER_START".to_owned(),
            });
            return;
        }
        // Incomplete-transaction check (§5.1.1).
        if !self.tx_begins.is_empty() {
            self.diags.push(Diag {
                kind: DiagKind::UnterminatedTx,
                loc: entry.loc,
                range: None,
                // The innermost TX_BEGIN that was never closed.
                culprit: self.tx_begins.last().copied().or(self.tx.start_loc),
                message: format!(
                    "{} transaction(s) still open at the end of the checked scope",
                    self.tx_begins.len()
                ),
            });
        }
        // Auto-injected `isPersist` for every modified, in-scope object
        // (§5.1.1, Fig. 5b).
        let modified: Vec<ByteRange> = self.tx.modified.iter().map(|(r, _)| r).collect();
        for range in modified {
            for sub in self.shadow.in_scope(range) {
                self.model.check_persist(&self.shadow, sub, entry.loc, &mut self.diags);
            }
        }
        self.tx = TxScope::default();
    }

    /// Processes every entry of `trace` and returns the diagnostics.
    #[must_use]
    pub fn run(mut self, trace: &Trace) -> Vec<Diag> {
        for entry in trace.entries() {
            self.process(entry);
        }
        self.finish()
    }

    /// Returns the diagnostics accumulated so far.
    #[must_use]
    pub fn finish(self) -> Vec<Diag> {
        self.diags
    }

    /// Read access to the shadow memory (for tests and custom checkers).
    #[must_use]
    pub fn shadow(&self) -> &ShadowMemory {
        &self.shadow
    }
}

/// Checks one trace against `model`, returning all diagnostics.
///
/// This is the synchronous path used by a single [`Engine`](crate::Engine)
/// worker per trace; tests and custom tools can call it directly.
///
/// # Examples
///
/// ```
/// use pmtest_core::{check_trace, X86Model};
/// use pmtest_trace::{Event, Trace};
/// use pmtest_interval::ByteRange;
///
/// let mut trace = Trace::new(0);
/// let r = ByteRange::with_len(0, 8);
/// trace.push(Event::Write(r).here());
/// trace.push(Event::Flush(r).here());
/// trace.push(Event::Fence.here());
/// trace.push(Event::IsPersist(r).here());
/// assert!(check_trace(&trace, &X86Model::new()).is_empty());
/// ```
#[must_use]
pub fn check_trace(trace: &Trace, model: &dyn PersistencyModel) -> Vec<Diag> {
    TraceChecker::new(model).run(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{HopsModel, X86Model};

    fn r(s: u64, e: u64) -> ByteRange {
        ByteRange::new(s, e)
    }

    fn trace(events: &[Event]) -> Trace {
        let mut t = Trace::new(0);
        for (i, &e) in events.iter().enumerate() {
            t.push(e.at(SourceLoc::new("t.rs", i as u32 + 1)));
        }
        t
    }

    fn kinds(diags: &[Diag]) -> Vec<DiagKind> {
        diags.iter().map(|d| d.kind).collect()
    }

    #[test]
    fn figure4_trace() {
        // sfence; write A; clwb A; write B; sfence;
        // isOrderedBefore A B → FAIL; isPersist B → FAIL.
        let a = ByteRange::with_len(0x00, 8);
        let b = ByteRange::with_len(0x40, 8);
        let diags = check_trace(
            &trace(&[
                Event::Fence,
                Event::Write(a),
                Event::Flush(a),
                Event::Write(b),
                Event::Fence,
                Event::IsOrderedBefore(a, b),
                Event::IsPersist(b),
            ]),
            &X86Model::new(),
        );
        assert_eq!(kinds(&diags), [DiagKind::NotOrderedBefore, DiagKind::NotPersisted]);
        // Locations point at the checkers (lines 6 and 7).
        assert_eq!(diags[0].loc.line(), 6);
        assert_eq!(diags[1].loc.line(), 7);
        // The culprit of the isPersist failure is the write at line 4.
        assert_eq!(diags[1].culprit.map(|l| l.line()), Some(4));
    }

    #[test]
    fn figure7_trace() {
        // write(0x10,64); clwb(0x10,64); sfence; write(0x50,64);
        // isPersist(0x50,64) → FAIL; isOrderedBefore(0x10 → 0x50) → pass.
        let a = ByteRange::with_len(0x10, 64);
        let b = ByteRange::with_len(0x50, 64);
        let diags = check_trace(
            &trace(&[
                Event::Write(a),
                Event::Flush(a),
                Event::Fence,
                Event::Write(b),
                Event::IsPersist(b),
                Event::IsOrderedBefore(a, b),
            ]),
            &X86Model::new(),
        );
        // Note: [0x10,0x50) closed at 1; the overlap of a and b ([0x50,0x50))
        // is empty, so the ordering check sees A=(0,1) vs B=(1,∞) — pass.
        assert_eq!(kinds(&diags), [DiagKind::NotPersisted]);
    }

    #[test]
    fn clean_figure3a_trace() {
        let a = r(0, 8);
        let b = r(64, 72);
        let diags = check_trace(
            &trace(&[
                Event::Write(a),
                Event::Flush(a),
                Event::Fence,
                Event::Write(b),
                Event::Flush(b),
                Event::Fence,
                Event::IsOrderedBefore(a, b),
                Event::IsPersist(a),
                Event::IsPersist(b),
            ]),
            &X86Model::new(),
        );
        assert!(diags.is_empty(), "got {diags:?}");
    }

    #[test]
    fn clean_figure3b_trace_under_hops() {
        let a = r(0, 8);
        let b = r(64, 72);
        let diags = check_trace(
            &trace(&[
                Event::Write(a),
                Event::OFence,
                Event::Write(b),
                Event::DFence,
                Event::IsOrderedBefore(a, b),
                Event::IsPersist(a),
                Event::IsPersist(b),
            ]),
            &HopsModel::new(),
        );
        assert!(diags.is_empty(), "got {diags:?}");
    }

    #[test]
    fn tx_checker_detects_missing_log() {
        // Fig. 1b shape: head is TX_ADDed, length is not.
        let head = r(0, 8);
        let length = r(8, 16);
        let diags = check_trace(
            &trace(&[
                Event::TxCheckerStart,
                Event::TxBegin,
                Event::TxAdd(head),
                Event::Write(head),
                Event::Write(length), // bug: no TX_ADD
                Event::Flush(r(0, 16)),
                Event::Fence,
                Event::TxEnd,
                Event::TxCheckerEnd,
            ]),
            &X86Model::new(),
        );
        assert_eq!(kinds(&diags), [DiagKind::MissingLog]);
        assert_eq!(diags[0].range, Some(length));
        assert_eq!(diags[0].loc.line(), 5);
        // The unlogged write is also the culprit to fix.
        assert_eq!(diags[0].culprit.map(|l| l.line()), Some(5));
    }

    #[test]
    fn tx_checker_detects_incomplete_transaction() {
        let a = r(0, 8);
        let diags = check_trace(
            &trace(&[
                Event::TxCheckerStart,
                Event::TxBegin,
                Event::TxAdd(a),
                Event::Write(a),
                Event::Flush(a),
                Event::Fence,
                // bug: no TxEnd
                Event::TxCheckerEnd,
            ]),
            &X86Model::new(),
        );
        assert_eq!(kinds(&diags), [DiagKind::UnterminatedTx]);
        // Culprit: the TX_BEGIN (line 2) that was never closed.
        assert_eq!(diags[0].culprit.map(|l| l.line()), Some(2));
    }

    #[test]
    fn tx_checker_injects_is_persist_at_end() {
        let a = r(0, 8);
        let diags = check_trace(
            &trace(&[
                Event::TxCheckerStart,
                Event::TxBegin,
                Event::TxAdd(a),
                Event::Write(a),
                // bug: modified object never written back
                Event::TxEnd,
                Event::TxCheckerEnd,
            ]),
            &X86Model::new(),
        );
        assert_eq!(kinds(&diags), [DiagKind::NotPersisted]);
        assert_eq!(diags[0].culprit.map(|l| l.line()), Some(4));
    }

    #[test]
    fn tx_checker_detects_duplicate_log() {
        let a = r(0, 8);
        let diags = check_trace(
            &trace(&[
                Event::TxCheckerStart,
                Event::TxBegin,
                Event::TxAdd(a),
                Event::TxAdd(a), // bug: double log
                Event::Write(a),
                Event::Flush(a),
                Event::Fence,
                Event::TxEnd,
                Event::TxCheckerEnd,
            ]),
            &X86Model::new(),
        );
        assert_eq!(kinds(&diags), [DiagKind::DuplicateLog]);
        assert_eq!(diags[0].culprit.map(|l| l.line()), Some(3));
    }

    #[test]
    fn clean_transaction_passes() {
        let a = r(0, 8);
        let b = r(64, 72);
        let diags = check_trace(
            &trace(&[
                Event::TxCheckerStart,
                Event::TxBegin,
                Event::TxAdd(a),
                Event::Write(a),
                Event::TxAdd(b),
                Event::Write(b),
                Event::Flush(a),
                Event::Flush(b),
                Event::Fence,
                Event::TxEnd,
                Event::TxCheckerEnd,
            ]),
            &X86Model::new(),
        );
        assert!(diags.is_empty(), "got {diags:?}");
    }

    #[test]
    fn unmatched_tx_end_reported() {
        let diags = check_trace(&trace(&[Event::TxEnd]), &X86Model::new());
        assert_eq!(kinds(&diags), [DiagKind::UnmatchedTxEnd]);
    }

    #[test]
    fn tx_checker_end_without_start_reported() {
        let diags = check_trace(&trace(&[Event::TxCheckerEnd]), &X86Model::new());
        assert_eq!(kinds(&diags), [DiagKind::UnterminatedTx]);
    }

    #[test]
    fn exclusion_silences_checks_on_a_range() {
        let a = r(0, 8);
        let diags = check_trace(
            &trace(&[
                Event::TxCheckerStart,
                Event::TxBegin,
                Event::Exclude(a),
                Event::Write(a), // would be MissingLog + NotPersisted
                Event::TxEnd,
                Event::TxCheckerEnd,
                Event::IsPersist(a),
            ]),
            &X86Model::new(),
        );
        assert!(diags.is_empty(), "got {diags:?}");
    }

    #[test]
    fn include_restores_checking() {
        let a = r(0, 8);
        let diags = check_trace(
            &trace(&[Event::Exclude(a), Event::Include(a), Event::Write(a), Event::IsPersist(a)]),
            &X86Model::new(),
        );
        assert_eq!(kinds(&diags), [DiagKind::NotPersisted]);
    }

    #[test]
    fn writes_outside_transactions_are_not_log_checked() {
        let a = r(0, 8);
        let diags = check_trace(
            &trace(&[
                Event::TxCheckerStart,
                Event::Write(a), // outside TX_BEGIN/END: no MissingLog
                Event::Flush(a),
                Event::Fence,
                Event::TxCheckerEnd,
            ]),
            &X86Model::new(),
        );
        assert!(diags.is_empty(), "got {diags:?}");
    }

    #[test]
    fn nested_transactions_must_all_terminate() {
        let a = r(0, 8);
        let diags = check_trace(
            &trace(&[
                Event::TxCheckerStart,
                Event::TxBegin,
                Event::TxBegin,
                Event::TxAdd(a),
                Event::Write(a),
                Event::Flush(a),
                Event::Fence,
                Event::TxEnd,
                // inner ended; outer still open
                Event::TxCheckerEnd,
            ]),
            &X86Model::new(),
        );
        assert_eq!(kinds(&diags), [DiagKind::UnterminatedTx]);
        // TxEnd closed the inner begin (line 3); the outer (line 2) is the
        // one still open.
        assert_eq!(diags[0].culprit.map(|l| l.line()), Some(2));
    }

    #[test]
    fn partial_log_coverage_reports_only_the_gap() {
        let diags = check_trace(
            &trace(&[
                Event::TxCheckerStart,
                Event::TxBegin,
                Event::TxAdd(r(0, 8)),
                Event::Write(r(0, 16)), // bytes 8..16 unlogged
                Event::Flush(r(0, 16)),
                Event::Fence,
                Event::TxEnd,
                Event::TxCheckerEnd,
            ]),
            &X86Model::new(),
        );
        assert_eq!(kinds(&diags), [DiagKind::MissingLog]);
        assert_eq!(diags[0].range, Some(r(8, 16)));
    }
}
