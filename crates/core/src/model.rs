use std::fmt::Debug;

use pmtest_interval::ByteRange;
use pmtest_trace::{Entry, Event, SourceLoc};

use crate::diag::{Diag, DiagKind};
use crate::shadow::ShadowMemory;

/// The checking rules for one memory persistency model (§4.4, §5.2).
///
/// A model decides (i) how each PM *operation* updates the shadow memory's
/// persist/flush intervals and (ii) how the two low-level checkers are
/// validated against those intervals. PMTest ships the x86 rules
/// ([`X86Model`]) and the HOPS rules ([`HopsModel`]); supporting another
/// persistency model — the paper names DPO and epoch persistency as
/// candidates — means implementing this trait, nothing else changes.
///
/// The trait is object-safe: the engine stores models as `Arc<dyn
/// PersistencyModel>`.
pub trait PersistencyModel: Send + Sync + Debug {
    /// A short model name for reports (e.g. `"x86"`).
    fn name(&self) -> &str;

    /// Applies one *operation* entry (`write`/`clwb`/fences) to the shadow
    /// memory, appending any performance diagnostics to `diags`.
    ///
    /// Transaction events and checkers never reach this method; the
    /// [`TraceChecker`](crate::TraceChecker) handles those uniformly.
    fn apply(&self, shadow: &mut ShadowMemory, entry: &Entry, diags: &mut Vec<Diag>);

    /// Validates `isPersist(range)` (§4.4): every written byte of `range`
    /// must be guaranteed durable.
    fn check_persist(
        &self,
        shadow: &ShadowMemory,
        range: ByteRange,
        loc: SourceLoc,
        diags: &mut Vec<Diag>,
    );

    /// Validates `isOrderedBefore(first, second)` (§4.4): every persist of
    /// `first` must be guaranteed to complete before any persist of `second`
    /// can happen.
    fn check_ordered_before(
        &self,
        shadow: &ShadowMemory,
        first: ByteRange,
        second: ByteRange,
        loc: SourceLoc,
        diags: &mut Vec<Diag>,
    );

    /// Identifies a built-in model so the checker can replay its rules
    /// without dynamic dispatch or per-event [`Entry`] reconstruction (the
    /// fused hot path). Custom models keep the default `None` and go through
    /// [`apply`](Self::apply) / the `check_*` methods per entry — semantics
    /// are identical either way.
    fn builtin(&self) -> Option<BuiltinModel> {
        None
    }
}

/// A built-in persistency model, carrying the configuration the checker
/// needs to inline its rules. See [`PersistencyModel::builtin`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BuiltinModel {
    /// [`X86Model`] with its performance-checker switch.
    X86 {
        /// Whether the §5.1.2 performance checkers are enabled.
        warn_performance: bool,
    },
    /// [`HopsModel`].
    Hops,
}

fn foreign_op(event: Event, loc: SourceLoc, model: &str, diags: &mut Vec<Diag>) {
    diags.push(Diag {
        kind: DiagKind::ForeignOperation,
        loc,
        range: None,
        culprit: None,
        message: format!("`{event}` is not part of the {model} persistency model"),
    });
}

/// The shared `isPersist` validation (§4.4): both built-in models report an
/// open persist interval the same way. Also the fused-path implementation.
pub(crate) fn persist_failure(
    shadow: &ShadowMemory,
    range: ByteRange,
    loc: SourceLoc,
    diags: &mut Vec<Diag>,
) {
    for (sub, st) in shadow.states_in(range) {
        if let Some(pi) = st.persist {
            if !pi.is_closed() {
                diags.push(Diag {
                    kind: DiagKind::NotPersisted,
                    loc,
                    range: Some(sub),
                    culprit: st.write_loc.map(|id| shadow.resolve_loc(id)),
                    message: format!("persist interval {pi} never closes"),
                });
            }
        }
    }
}

/// One x86 operation (§4.4 rules + §5.1.2 performance checkers). Both
/// [`X86Model::apply`] and the checker's fused path run exactly this code,
/// which is what keeps their diagnostics byte-identical.
pub(crate) fn x86_op(
    warn_performance: bool,
    shadow: &mut ShadowMemory,
    event: Event,
    loc: SourceLoc,
    diags: &mut Vec<Diag>,
) {
    match event {
        Event::Write(range) => shadow.record_write(range, loc),
        Event::Flush(range) => {
            let obs = shadow.record_flush(range, loc);
            if warn_performance {
                for sub in obs.unmodified {
                    diags.push(Diag {
                        kind: DiagKind::UnnecessaryFlush,
                        loc,
                        range: Some(sub),
                        culprit: None,
                        message: "writing back data that was never modified".to_owned(),
                    });
                }
                for (sub, earlier) in obs.duplicate {
                    diags.push(Diag {
                        kind: DiagKind::DuplicateFlush,
                        loc,
                        range: Some(sub),
                        culprit: earlier,
                        message: "data already written back".to_owned(),
                    });
                }
            }
        }
        Event::Fence => shadow.fence(),
        Event::OFence => {
            foreign_op(event, loc, "x86", diags);
            shadow.ofence();
        }
        Event::DFence => {
            foreign_op(event, loc, "x86", diags);
            shadow.dfence();
        }
        _ => unreachable!("non-operation event {event} reached the model"),
    }
}

/// One HOPS operation (§5.2 rules); shared by [`HopsModel::apply`] and the
/// fused path.
pub(crate) fn hops_op(
    shadow: &mut ShadowMemory,
    event: Event,
    loc: SourceLoc,
    diags: &mut Vec<Diag>,
) {
    match event {
        Event::Write(range) => shadow.record_write(range, loc),
        Event::OFence => shadow.ofence(),
        Event::DFence => shadow.dfence(),
        Event::Flush(_) => {
            // HOPS hardware tracks dirty PM data itself; clwb is redundant
            // there (§5.2 removes the flush interval).
            foreign_op(event, loc, "hops", diags);
        }
        Event::Fence => {
            foreign_op(event, loc, "hops", diags);
            shadow.ofence();
        }
        _ => unreachable!("non-operation event {event} reached the model"),
    }
}

/// x86 `isOrderedBefore` (§4.4): interval ends-before-starts, one witness
/// per checker. Shared by [`X86Model`] and the fused path.
pub(crate) fn x86_ordered_before(
    shadow: &ShadowMemory,
    first: ByteRange,
    second: ByteRange,
    loc: SourceLoc,
    diags: &mut Vec<Diag>,
) {
    let firsts = shadow.persist_intervals(first);
    let seconds = shadow.persist_intervals(second);
    for (sub_a, pi_a, loc_a) in &firsts {
        for (sub_b, pi_b, _) in &seconds {
            if !pi_a.ends_before_starts(pi_b) {
                diags.push(Diag {
                    kind: DiagKind::NotOrderedBefore,
                    loc,
                    range: Some(*sub_a),
                    culprit: *loc_a,
                    message: format!(
                        "persist interval {pi_a} of {sub_a:?} may not complete before \
                         {pi_b} of {sub_b:?} begins"
                    ),
                });
                return; // one witness per checker, like the paper's output
            }
        }
    }
}

/// HOPS `isOrderedBefore` (§5.2): fences order persists across epochs, so
/// interval *starts* are compared. Shared by [`HopsModel`] and the fused
/// path.
pub(crate) fn hops_ordered_before(
    shadow: &ShadowMemory,
    first: ByteRange,
    second: ByteRange,
    loc: SourceLoc,
    diags: &mut Vec<Diag>,
) {
    let firsts = shadow.persist_intervals(first);
    let seconds = shadow.persist_intervals(second);
    for (sub_a, pi_a, loc_a) in &firsts {
        for (sub_b, pi_b, _) in &seconds {
            if !pi_a.starts_before(pi_b) {
                diags.push(Diag {
                    kind: DiagKind::NotOrderedBefore,
                    loc,
                    range: Some(*sub_a),
                    culprit: *loc_a,
                    message: format!(
                        "write at {sub_a:?} (epoch {}) is not fence-ordered before \
                         write at {sub_b:?} (epoch {})",
                        pi_a.start(),
                        pi_b.start()
                    ),
                });
                return;
            }
        }
    }
}

/// The x86 persistency model: `write` / `clwb` / `sfence` (§4.4).
///
/// * a write may persist any time from its issue epoch onward;
/// * a `clwb` makes the eventual writeback *possible*;
/// * an `sfence` completes all issued writebacks, so a write is guaranteed
///   durable once a covering `clwb` and a subsequent `sfence` have executed.
///
/// The built-in performance checkers (§5.1.2) fire here: `clwb` of
/// never-written data reports [`DiagKind::UnnecessaryFlush`], and `clwb` of
/// data whose writeback is already issued or completed reports
/// [`DiagKind::DuplicateFlush`].
#[derive(Clone, Copy, Debug, Default)]
pub struct X86Model {
    warn_performance: bool,
}

impl X86Model {
    /// Creates the model with performance warnings enabled.
    #[must_use]
    pub fn new() -> Self {
        Self { warn_performance: true }
    }

    /// Creates the model without the §5.1.2 performance checkers (only
    /// correctness FAILs are reported).
    #[must_use]
    pub fn without_performance_checks() -> Self {
        Self { warn_performance: false }
    }
}

impl PersistencyModel for X86Model {
    fn name(&self) -> &str {
        "x86"
    }

    fn apply(&self, shadow: &mut ShadowMemory, entry: &Entry, diags: &mut Vec<Diag>) {
        x86_op(self.warn_performance, shadow, entry.event, entry.loc, diags);
    }

    fn check_persist(
        &self,
        shadow: &ShadowMemory,
        range: ByteRange,
        loc: SourceLoc,
        diags: &mut Vec<Diag>,
    ) {
        persist_failure(shadow, range, loc, diags);
    }

    fn check_ordered_before(
        &self,
        shadow: &ShadowMemory,
        first: ByteRange,
        second: ByteRange,
        loc: SourceLoc,
        diags: &mut Vec<Diag>,
    ) {
        x86_ordered_before(shadow, first, second, loc, diags);
    }

    fn builtin(&self) -> Option<BuiltinModel> {
        Some(BuiltinModel::X86 { warn_performance: self.warn_performance })
    }
}

/// The HOPS persistency model: `write` / `ofence` / `dfence` (§5.2).
///
/// `ofence` orders persists without forcing durability (epoch bump);
/// `dfence` stalls until everything before it is durable (epoch bump plus
/// closing all open persist intervals). Because fences already order
/// persists across epochs, `isOrderedBefore` compares interval *starts*.
#[derive(Clone, Copy, Debug, Default)]
pub struct HopsModel;

impl HopsModel {
    /// Creates the model.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl PersistencyModel for HopsModel {
    fn name(&self) -> &str {
        "hops"
    }

    fn apply(&self, shadow: &mut ShadowMemory, entry: &Entry, diags: &mut Vec<Diag>) {
        hops_op(shadow, entry.event, entry.loc, diags);
    }

    fn check_persist(
        &self,
        shadow: &ShadowMemory,
        range: ByteRange,
        loc: SourceLoc,
        diags: &mut Vec<Diag>,
    ) {
        persist_failure(shadow, range, loc, diags);
    }

    fn check_ordered_before(
        &self,
        shadow: &ShadowMemory,
        first: ByteRange,
        second: ByteRange,
        loc: SourceLoc,
        diags: &mut Vec<Diag>,
    ) {
        hops_ordered_before(shadow, first, second, loc, diags);
    }

    fn builtin(&self) -> Option<BuiltinModel> {
        Some(BuiltinModel::Hops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(event: Event) -> Entry {
        event.at(SourceLoc::new("m.rs", 1))
    }

    fn r(s: u64, e: u64) -> ByteRange {
        ByteRange::new(s, e)
    }

    fn apply_all(
        model: &dyn PersistencyModel,
        shadow: &mut ShadowMemory,
        events: &[Event],
    ) -> Vec<Diag> {
        let mut diags = Vec::new();
        for &e in events {
            model.apply(shadow, &entry(e), &mut diags);
        }
        diags
    }

    #[test]
    fn x86_flush_fence_persists() {
        let model = X86Model::new();
        let mut sh = ShadowMemory::new();
        let diags = apply_all(
            &model,
            &mut sh,
            &[Event::Write(r(0, 8)), Event::Flush(r(0, 8)), Event::Fence],
        );
        assert!(diags.is_empty());
        let mut out = Vec::new();
        model.check_persist(&sh, r(0, 8), SourceLoc::new("m.rs", 9), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn x86_missing_flush_fails_is_persist() {
        let model = X86Model::new();
        let mut sh = ShadowMemory::new();
        apply_all(&model, &mut sh, &[Event::Write(r(0, 8)), Event::Fence]);
        let mut out = Vec::new();
        model.check_persist(&sh, r(0, 8), SourceLoc::new("m.rs", 9), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, DiagKind::NotPersisted);
        assert_eq!(out[0].culprit, Some(SourceLoc::new("m.rs", 1)));
    }

    #[test]
    fn x86_ordered_before_direction_matters() {
        let model = X86Model::new();
        let mut sh = ShadowMemory::new();
        // B persists first, then A is written: isOrderedBefore(A, B) fails.
        apply_all(
            &model,
            &mut sh,
            &[
                Event::Write(r(64, 72)),
                Event::Flush(r(64, 72)),
                Event::Fence,
                Event::Write(r(0, 8)),
            ],
        );
        let mut out = Vec::new();
        model.check_ordered_before(&sh, r(0, 8), r(64, 72), SourceLoc::new("m.rs", 9), &mut out);
        assert_eq!(out.len(), 1, "inverted order is a failure even without overlap");
        out.clear();
        model.check_ordered_before(&sh, r(64, 72), r(0, 8), SourceLoc::new("m.rs", 9), &mut out);
        assert!(out.is_empty(), "actual order passes");
    }

    #[test]
    fn x86_performance_warnings_fire() {
        let model = X86Model::new();
        let mut sh = ShadowMemory::new();
        let diags = apply_all(
            &model,
            &mut sh,
            &[
                Event::Flush(r(0, 8)),
                Event::Write(r(64, 72)),
                Event::Flush(r(64, 72)),
                Event::Flush(r(64, 72)),
            ],
        );
        assert!(diags.iter().any(|d| d.kind == DiagKind::UnnecessaryFlush));
        assert!(diags.iter().any(|d| d.kind == DiagKind::DuplicateFlush));
    }

    #[test]
    fn x86_performance_warnings_can_be_disabled() {
        let model = X86Model::without_performance_checks();
        let mut sh = ShadowMemory::new();
        let diags = apply_all(&model, &mut sh, &[Event::Flush(r(0, 8)), Event::Flush(r(0, 8))]);
        assert!(diags.is_empty());
    }

    #[test]
    fn x86_rejects_hops_fences_but_keeps_going() {
        let model = X86Model::new();
        let mut sh = ShadowMemory::new();
        let diags = apply_all(&model, &mut sh, &[Event::Write(r(0, 8)), Event::DFence]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].kind, DiagKind::ForeignOperation);
        assert!(sh.is_persisted(r(0, 8)), "dfence semantics still applied");
    }

    #[test]
    fn hops_dfence_persists_everything() {
        let model = HopsModel::new();
        let mut sh = ShadowMemory::new();
        let diags = apply_all(
            &model,
            &mut sh,
            &[Event::Write(r(0, 8)), Event::OFence, Event::Write(r(64, 72)), Event::DFence],
        );
        assert!(diags.is_empty());
        let mut out = Vec::new();
        model.check_persist(&sh, r(0, 128), SourceLoc::new("m.rs", 9), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn hops_ordering_by_epoch_start() {
        let model = HopsModel::new();
        let mut sh = ShadowMemory::new();
        // Figure 3b: write A; ofence; write B; dfence.
        apply_all(
            &model,
            &mut sh,
            &[Event::Write(r(0, 8)), Event::OFence, Event::Write(r(64, 72)), Event::DFence],
        );
        let mut out = Vec::new();
        model.check_ordered_before(&sh, r(0, 8), r(64, 72), SourceLoc::new("m.rs", 9), &mut out);
        assert!(out.is_empty(), "A ofence-ordered before B");
        model.check_ordered_before(&sh, r(64, 72), r(0, 8), SourceLoc::new("m.rs", 9), &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn hops_same_epoch_writes_are_unordered() {
        let model = HopsModel::new();
        let mut sh = ShadowMemory::new();
        apply_all(&model, &mut sh, &[Event::Write(r(0, 8)), Event::Write(r(64, 72))]);
        let mut out = Vec::new();
        model.check_ordered_before(&sh, r(0, 8), r(64, 72), SourceLoc::new("m.rs", 9), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, DiagKind::NotOrderedBefore);
    }

    #[test]
    fn hops_flags_clwb_as_foreign() {
        let model = HopsModel::new();
        let mut sh = ShadowMemory::new();
        let diags = apply_all(&model, &mut sh, &[Event::Write(r(0, 8)), Event::Flush(r(0, 8))]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].kind, DiagKind::ForeignOperation);
    }

    #[test]
    fn models_are_object_safe() {
        let models: Vec<Box<dyn PersistencyModel>> =
            vec![Box::new(X86Model::new()), Box::new(HopsModel::new())];
        assert_eq!(models[0].name(), "x86");
        assert_eq!(models[1].name(), "hops");
    }

    #[test]
    fn vacuous_checks_pass_on_unwritten_ranges() {
        let model = X86Model::new();
        let sh = ShadowMemory::new();
        let mut out = Vec::new();
        model.check_persist(&sh, r(0, 8), SourceLoc::new("m.rs", 9), &mut out);
        model.check_ordered_before(&sh, r(0, 8), r(8, 16), SourceLoc::new("m.rs", 9), &mut out);
        assert!(out.is_empty());
    }
}
