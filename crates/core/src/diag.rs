use std::fmt;

use pmtest_interval::ByteRange;
use pmtest_trace::SourceLoc;

/// Diagnostic severity, matching the paper's two output classes (§4.1):
/// `FAIL` for crash-consistency bugs and `WARN` for performance bugs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// A performance bug (redundant writeback, duplicated log, …).
    Warn,
    /// A crash-consistency bug (missing fence, missing backup, …).
    Fail,
}

impl Severity {
    /// The severity's output label, as the paper prints it.
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            Severity::Warn => "WARN",
            Severity::Fail => "FAIL",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The specific rule a diagnostic was produced by.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum DiagKind {
    /// `isPersist` failed: the range is not guaranteed durable (§4.4).
    NotPersisted,
    /// `isOrderedBefore` failed: persist intervals overlap or are inverted
    /// (§4.4).
    NotOrderedBefore,
    /// A write inside a transaction was not backed up by `TX_ADD` first
    /// (§5.1.1, "check missing backup logs").
    MissingLog,
    /// A transaction-checker scope ended with an open transaction
    /// (§5.1.1, "check incomplete transactions").
    UnterminatedTx,
    /// `TX_END` without a matching `TX_BEGIN`.
    UnmatchedTxEnd,
    /// Performance: writeback of a range that was never modified (§5.1.2).
    UnnecessaryFlush,
    /// Performance: writeback of a range already written back (§5.1.2).
    DuplicateFlush,
    /// Performance: `TX_ADD` of a range already in the undo log (§5.1.2).
    DuplicateLog,
    /// An operation outside the configured persistency model's vocabulary
    /// (e.g. `ofence` under the x86 model).
    ForeignOperation,
}

impl DiagKind {
    /// Every diagnostic kind, in declaration order. Telemetry and emitters
    /// iterate this to stay exhaustive as kinds are added.
    pub const ALL: [DiagKind; 9] = [
        DiagKind::NotPersisted,
        DiagKind::NotOrderedBefore,
        DiagKind::MissingLog,
        DiagKind::UnterminatedTx,
        DiagKind::UnmatchedTxEnd,
        DiagKind::UnnecessaryFlush,
        DiagKind::DuplicateFlush,
        DiagKind::DuplicateLog,
        DiagKind::ForeignOperation,
    ];

    /// A stable machine-readable identifier (`snake_case`), used as the
    /// `code` field of JSON-lines diagnostics and as the metric label of
    /// `engine_diag_total`. Unlike [`Display`](fmt::Display) output, codes
    /// are an interchange format: they never change once published.
    #[must_use]
    pub fn code(&self) -> &'static str {
        match self {
            DiagKind::NotPersisted => "not_persisted",
            DiagKind::NotOrderedBefore => "not_ordered_before",
            DiagKind::MissingLog => "missing_log",
            DiagKind::UnterminatedTx => "unterminated_tx",
            DiagKind::UnmatchedTxEnd => "unmatched_tx_end",
            DiagKind::UnnecessaryFlush => "unnecessary_flush",
            DiagKind::DuplicateFlush => "duplicate_flush",
            DiagKind::DuplicateLog => "duplicate_log",
            DiagKind::ForeignOperation => "foreign_operation",
        }
    }

    /// Parses a [`code`](Self::code) back to its kind.
    #[must_use]
    pub fn from_code(code: &str) -> Option<DiagKind> {
        DiagKind::ALL.iter().copied().find(|k| k.code() == code)
    }

    /// The severity class this kind reports at.
    #[must_use]
    pub fn severity(&self) -> Severity {
        match self {
            DiagKind::NotPersisted
            | DiagKind::NotOrderedBefore
            | DiagKind::MissingLog
            | DiagKind::UnterminatedTx
            | DiagKind::UnmatchedTxEnd => Severity::Fail,
            DiagKind::UnnecessaryFlush
            | DiagKind::DuplicateFlush
            | DiagKind::DuplicateLog
            | DiagKind::ForeignOperation => Severity::Warn,
        }
    }
}

impl fmt::Display for DiagKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DiagKind::NotPersisted => "not persisted",
            DiagKind::NotOrderedBefore => "persist order not guaranteed",
            DiagKind::MissingLog => "modified without undo-log backup",
            DiagKind::UnterminatedTx => "transaction not terminated",
            DiagKind::UnmatchedTxEnd => "tx_end without tx_begin",
            DiagKind::UnnecessaryFlush => "writeback of unmodified data",
            DiagKind::DuplicateFlush => "duplicate writeback",
            DiagKind::DuplicateLog => "duplicate undo-log entry",
            DiagKind::ForeignOperation => "operation outside persistency model",
        };
        f.write_str(s)
    }
}

/// One `WARN`/`FAIL` output of the checking engine, with the source
/// attribution the paper reports (`@<file>:<line>`, Fig. 6).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diag {
    /// Which rule fired.
    pub kind: DiagKind,
    /// Where the checker (or offending operation) was issued.
    pub loc: SourceLoc,
    /// The address range involved, when applicable.
    pub range: Option<ByteRange>,
    /// The source location of the operation that caused the problem (e.g.
    /// the unpersisted write), when known.
    pub culprit: Option<SourceLoc>,
    /// Human-readable details.
    pub message: String,
}

impl Diag {
    /// The severity class of this diagnostic.
    #[must_use]
    pub fn severity(&self) -> Severity {
        self.kind.severity()
    }
}

impl fmt::Display for Diag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} @ {}", self.severity(), self.kind, self.loc)?;
        if let Some(r) = self.range {
            write!(f, " [{r}]")?;
        }
        if !self.message.is_empty() {
            write!(f, " — {}", self.message)?;
        }
        if let Some(c) = self.culprit {
            write!(f, " (caused at {c})")?;
        }
        Ok(())
    }
}

/// The diagnostics produced by checking one trace.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceReport {
    /// The trace identifier assigned at submission.
    pub trace_id: u64,
    /// Diagnostics in trace order.
    pub diags: Vec<Diag>,
}

/// The aggregated result of a testing run (what `PMTest_GET_RESULT` returns).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Report {
    traces: Vec<TraceReport>,
}

impl Report {
    /// Builds a report from per-trace results, sorting by trace id.
    #[must_use]
    pub fn from_traces(mut traces: Vec<TraceReport>) -> Self {
        traces.sort_by_key(|t| t.trace_id);
        Self { traces }
    }

    /// Per-trace results in submission order.
    #[must_use]
    pub fn traces(&self) -> &[TraceReport] {
        &self.traces
    }

    /// All diagnostics across traces, in trace order.
    pub fn iter(&self) -> impl Iterator<Item = &Diag> {
        self.traces.iter().flat_map(|t| t.diags.iter())
    }

    /// All `FAIL` diagnostics.
    pub fn fails(&self) -> impl Iterator<Item = &Diag> {
        self.iter().filter(|d| d.severity() == Severity::Fail)
    }

    /// All `WARN` diagnostics.
    pub fn warns(&self) -> impl Iterator<Item = &Diag> {
        self.iter().filter(|d| d.severity() == Severity::Warn)
    }

    /// Number of `FAIL` diagnostics.
    #[must_use]
    pub fn fail_count(&self) -> usize {
        self.fails().count()
    }

    /// Number of `WARN` diagnostics.
    #[must_use]
    pub fn warn_count(&self) -> usize {
        self.warns().count()
    }

    /// Whether no diagnostics at all were reported.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.traces.iter().all(|t| t.diags.is_empty())
    }

    /// Whether any diagnostic of `kind` was reported.
    #[must_use]
    pub fn has(&self, kind: DiagKind) -> bool {
        self.iter().any(|d| d.kind == kind)
    }

    /// Merges another report into this one (re-sorting by trace id).
    pub fn merge(&mut self, other: Report) {
        self.extend_traces(other.traces);
    }

    /// Appends per-trace results, keeping the report sorted by trace id.
    /// A no-op for an empty batch, so repeated drains of idle shards cost
    /// nothing.
    ///
    /// The common shape — a worker shard, whose trace ids are already
    /// ascending and all follow the accumulated tail — is a plain append;
    /// the stable sort (which allocates its merge buffer every call) only
    /// runs when shards actually interleave.
    pub fn extend_traces(&mut self, traces: Vec<TraceReport>) {
        if traces.is_empty() {
            return;
        }
        let sorted_append = traces.windows(2).all(|w| w[0].trace_id <= w[1].trace_id)
            && self.traces.last().is_none_or(|last| last.trace_id <= traces[0].trace_id);
        self.traces.extend(traces);
        if !sorted_append {
            self.traces.sort_by_key(|t| t.trace_id);
        }
    }

    /// Diagnostic counts per kind, for summaries and harness tables.
    #[must_use]
    pub fn counts_by_kind(&self) -> std::collections::BTreeMap<DiagKind, usize> {
        let mut counts = std::collections::BTreeMap::new();
        for d in self.iter() {
            *counts.entry(d.kind).or_insert(0) += 1;
        }
        counts
    }

    /// A canonical, location- and message-free digest of the report: one
    /// `(trace_id, kind, range)` entry per diagnostic, sorted. Two runs of
    /// the same program agree on this even when worker interleaving varies
    /// the order diagnostics were produced in, and even when different
    /// checker paths word their messages differently — which makes it the
    /// right equality for cross-configuration comparisons (the differential
    /// harness checks it across worker counts and batch sizes).
    #[must_use]
    pub fn signature(&self) -> Vec<(u64, DiagKind, Option<ByteRange>)> {
        let mut sig: Vec<_> = self
            .traces
            .iter()
            .flat_map(|t| t.diags.iter().map(move |d| (t.trace_id, d.kind, d.range)))
            .collect();
        sig.sort_unstable();
        sig
    }

    /// Whether two reports carry the same diagnostics up to ordering,
    /// wording, and source attribution — i.e. their [`signature`]s
    /// (Self::signature) match. Use `==` instead when byte-identical
    /// reports (messages and locations included) are required.
    #[must_use]
    pub fn equivalent(&self, other: &Report) -> bool {
        self.signature() == other.signature()
    }

    /// Serializes every diagnostic as JSON-lines: one object per diagnostic
    /// with stable field names (`trace_id`, `severity`, `code`, `loc`,
    /// `range`, `culprit`, `message`), using [`DiagKind::code`] identifiers.
    /// Each line parses on its own, so reports stream, grep, and diff; an
    /// empty report serializes to the empty string.
    #[must_use]
    pub fn to_json_lines(&self) -> String {
        use std::fmt::Write as _;

        use pmtest_obs::json::escape_into;

        let mut out = String::new();
        for t in &self.traces {
            for d in &t.diags {
                let _ = write!(out, "{{\"trace_id\":{},\"severity\":", t.trace_id);
                escape_into(&mut out, d.severity().as_str());
                out.push_str(",\"code\":");
                escape_into(&mut out, d.kind.code());
                out.push_str(",\"loc\":");
                escape_into(&mut out, &d.loc.to_string());
                match d.range {
                    Some(r) => {
                        let _ = write!(out, ",\"range\":[{},{}]", r.start(), r.end());
                    }
                    None => out.push_str(",\"range\":null"),
                }
                match d.culprit {
                    Some(c) => {
                        out.push_str(",\"culprit\":");
                        escape_into(&mut out, &c.to_string());
                    }
                    None => out.push_str(",\"culprit\":null"),
                }
                out.push_str(",\"message\":");
                escape_into(&mut out, &d.message);
                out.push_str("}\n");
            }
        }
        out
    }

    /// A one-line summary, e.g. `2 FAIL (not persisted x2), 1 WARN
    /// (duplicate writeback x1)`.
    #[must_use]
    pub fn summary(&self) -> String {
        if self.is_clean() {
            return format!("clean ({} traces)", self.traces.len());
        }
        let detail: Vec<String> =
            self.counts_by_kind().into_iter().map(|(kind, n)| format!("{kind} x{n}")).collect();
        format!("{} FAIL, {} WARN ({})", self.fail_count(), self.warn_count(), detail.join(", "))
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return writeln!(f, "PMTest: all checks passed ({} traces)", self.traces.len());
        }
        for t in &self.traces {
            for d in &t.diags {
                writeln!(f, "[trace {}] {}", t.trace_id, d)?;
            }
        }
        write!(f, "PMTest: {} FAIL, {} WARN", self.fail_count(), self.warn_count())
    }
}

impl IntoIterator for Report {
    type Item = TraceReport;
    type IntoIter = std::vec::IntoIter<TraceReport>;

    fn into_iter(self) -> Self::IntoIter {
        self.traces.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(kind: DiagKind) -> Diag {
        Diag {
            kind,
            loc: SourceLoc::new("app.rs", 10),
            range: Some(ByteRange::new(0, 8)),
            culprit: Some(SourceLoc::new("app.rs", 5)),
            message: "details".to_owned(),
        }
    }

    #[test]
    fn severity_classes_match_paper() {
        assert_eq!(DiagKind::NotPersisted.severity(), Severity::Fail);
        assert_eq!(DiagKind::NotOrderedBefore.severity(), Severity::Fail);
        assert_eq!(DiagKind::MissingLog.severity(), Severity::Fail);
        assert_eq!(DiagKind::UnterminatedTx.severity(), Severity::Fail);
        assert_eq!(DiagKind::UnnecessaryFlush.severity(), Severity::Warn);
        assert_eq!(DiagKind::DuplicateFlush.severity(), Severity::Warn);
        assert_eq!(DiagKind::DuplicateLog.severity(), Severity::Warn);
    }

    #[test]
    fn diag_display_has_paper_shape() {
        let d = diag(DiagKind::NotPersisted);
        let s = d.to_string();
        assert!(s.starts_with("FAIL: not persisted @ app.rs:10"), "got {s}");
        assert!(s.contains("caused at app.rs:5"));
    }

    #[test]
    fn report_queries() {
        let report = Report::from_traces(vec![
            TraceReport { trace_id: 1, diags: vec![diag(DiagKind::DuplicateFlush)] },
            TraceReport { trace_id: 0, diags: vec![diag(DiagKind::NotPersisted)] },
        ]);
        assert_eq!(report.traces()[0].trace_id, 0, "sorted by id");
        assert_eq!(report.fail_count(), 1);
        assert_eq!(report.warn_count(), 1);
        assert!(!report.is_clean());
        assert!(report.has(DiagKind::NotPersisted));
        assert!(!report.has(DiagKind::MissingLog));
    }

    #[test]
    fn merge_combines_and_sorts() {
        let mut a = Report::from_traces(vec![TraceReport { trace_id: 2, diags: vec![] }]);
        let b = Report::from_traces(vec![TraceReport { trace_id: 1, diags: vec![] }]);
        a.merge(b);
        let ids: Vec<u64> = a.traces().iter().map(|t| t.trace_id).collect();
        assert_eq!(ids, [1, 2]);
        assert!(a.is_clean());
    }

    #[test]
    fn summary_and_counts() {
        let report = Report::from_traces(vec![TraceReport {
            trace_id: 0,
            diags: vec![
                diag(DiagKind::NotPersisted),
                diag(DiagKind::NotPersisted),
                diag(DiagKind::DuplicateFlush),
            ],
        }]);
        let counts = report.counts_by_kind();
        assert_eq!(counts[&DiagKind::NotPersisted], 2);
        assert_eq!(counts[&DiagKind::DuplicateFlush], 1);
        let s = report.summary();
        assert!(s.contains("2 FAIL"), "{s}");
        assert!(s.contains("not persisted x2"), "{s}");
        assert!(Report::default().summary().contains("clean"));
    }

    #[test]
    fn codes_round_trip_for_every_kind() {
        for kind in DiagKind::ALL {
            let code = kind.code();
            assert_eq!(DiagKind::from_code(code), Some(kind), "{code}");
            assert!(
                code.chars().all(|c| c.is_ascii_lowercase() || c == '_'),
                "code {code:?} is not snake_case"
            );
        }
        // Codes are unique — two kinds must never alias in machine output.
        let mut codes: Vec<_> = DiagKind::ALL.iter().map(|k| k.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), DiagKind::ALL.len());
        assert_eq!(DiagKind::from_code("nonsense"), None);
    }

    #[test]
    fn codes_are_stable() {
        // The exact published strings: changing any of these breaks every
        // consumer of the JSON-lines format. Append-only.
        let expected = [
            "not_persisted",
            "not_ordered_before",
            "missing_log",
            "unterminated_tx",
            "unmatched_tx_end",
            "unnecessary_flush",
            "duplicate_flush",
            "duplicate_log",
            "foreign_operation",
        ];
        let actual: Vec<_> = DiagKind::ALL.iter().map(|k| k.code()).collect();
        assert_eq!(actual, expected);
    }

    #[test]
    fn json_lines_emit_every_variant_parseably() {
        let report = Report::from_traces(
            DiagKind::ALL
                .iter()
                .enumerate()
                .map(|(i, &kind)| TraceReport { trace_id: i as u64, diags: vec![diag(kind)] })
                .collect(),
        );
        let jsonl = report.to_json_lines();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), DiagKind::ALL.len());
        for (line, kind) in lines.iter().zip(DiagKind::ALL) {
            let v = pmtest_obs::json::parse(line).unwrap_or_else(|e| panic!("{line}: {e}"));
            let code = v.get("code").unwrap().as_str().unwrap();
            assert_eq!(DiagKind::from_code(code), Some(kind), "round-trip through JSON");
            assert_eq!(v.get("severity").unwrap().as_str().unwrap(), kind.severity().as_str());
            assert_eq!(v.get("loc").unwrap().as_str(), Some("app.rs:10"));
            assert_eq!(v.get("message").unwrap().as_str(), Some("details"));
        }
    }

    #[test]
    fn json_lines_handle_missing_fields_and_quoting() {
        let report = Report::from_traces(vec![TraceReport {
            trace_id: 7,
            diags: vec![Diag {
                kind: DiagKind::ForeignOperation,
                loc: SourceLoc::new("a\"b.rs", 1),
                range: None,
                culprit: None,
                message: "say \"hi\"\n".to_owned(),
            }],
        }]);
        let jsonl = report.to_json_lines();
        let v = pmtest_obs::json::parse(jsonl.trim_end()).unwrap();
        assert_eq!(v.get("trace_id").unwrap().as_f64(), Some(7.0));
        assert_eq!(v.get("loc").unwrap().as_str(), Some("a\"b.rs:1"));
        assert_eq!(v.get("message").unwrap().as_str(), Some("say \"hi\"\n"));
        assert!(matches!(v.get("range"), Some(pmtest_obs::json::JsonValue::Null)));
        assert!(Report::default().to_json_lines().is_empty());
    }

    #[test]
    fn extend_traces_keeps_sorted_order() {
        let mut report = Report::from_traces(vec![TraceReport { trace_id: 5, diags: vec![] }]);
        report.extend_traces(vec![
            TraceReport { trace_id: 9, diags: vec![] },
            TraceReport { trace_id: 1, diags: vec![] },
        ]);
        report.extend_traces(Vec::new());
        let ids: Vec<u64> = report.traces().iter().map(|t| t.trace_id).collect();
        assert_eq!(ids, [1, 5, 9]);
    }

    #[test]
    fn equivalence_ignores_order_message_and_location() {
        let a = Report::from_traces(vec![TraceReport {
            trace_id: 3,
            diags: vec![
                Diag {
                    kind: DiagKind::NotPersisted,
                    loc: SourceLoc::new("a.rs", 1),
                    range: Some(ByteRange::new(0, 8)),
                    culprit: Some(SourceLoc::new("a.rs", 2)),
                    message: "worded one way".to_owned(),
                },
                Diag {
                    kind: DiagKind::UnnecessaryFlush,
                    loc: SourceLoc::new("a.rs", 3),
                    range: Some(ByteRange::new(8, 16)),
                    culprit: None,
                    message: String::new(),
                },
            ],
        }]);
        let b = Report::from_traces(vec![TraceReport {
            trace_id: 3,
            diags: vec![
                Diag {
                    kind: DiagKind::UnnecessaryFlush,
                    loc: SourceLoc::new("b.rs", 9),
                    range: Some(ByteRange::new(8, 16)),
                    culprit: None,
                    message: "different words".to_owned(),
                },
                Diag {
                    kind: DiagKind::NotPersisted,
                    loc: SourceLoc::new("b.rs", 7),
                    range: Some(ByteRange::new(0, 8)),
                    culprit: None,
                    message: String::new(),
                },
            ],
        }]);
        assert!(a.equivalent(&b));
        assert_ne!(a, b, "equivalence is weaker than equality");
        // A changed range, kind, or trace id breaks equivalence.
        let c = Report::from_traces(vec![TraceReport {
            trace_id: 4,
            diags: b.traces()[0].diags.clone(),
        }]);
        assert!(!a.equivalent(&c));
        assert!(a.equivalent(&a.clone()));
        assert!(Report::default().equivalent(&Report::default()));
    }

    #[test]
    fn clean_report_display() {
        let r = Report::default();
        assert!(r.to_string().contains("all checks passed"));
        let r = Report::from_traces(vec![TraceReport {
            trace_id: 0,
            diags: vec![diag(DiagKind::MissingLog)],
        }]);
        assert!(r.to_string().contains("1 FAIL, 0 WARN"));
    }
}
