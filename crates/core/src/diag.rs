use std::fmt;

use pmtest_interval::ByteRange;
use pmtest_trace::SourceLoc;

/// Diagnostic severity, matching the paper's two output classes (§4.1):
/// `FAIL` for crash-consistency bugs and `WARN` for performance bugs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// A performance bug (redundant writeback, duplicated log, …).
    Warn,
    /// A crash-consistency bug (missing fence, missing backup, …).
    Fail,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warn => write!(f, "WARN"),
            Severity::Fail => write!(f, "FAIL"),
        }
    }
}

/// The specific rule a diagnostic was produced by.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum DiagKind {
    /// `isPersist` failed: the range is not guaranteed durable (§4.4).
    NotPersisted,
    /// `isOrderedBefore` failed: persist intervals overlap or are inverted
    /// (§4.4).
    NotOrderedBefore,
    /// A write inside a transaction was not backed up by `TX_ADD` first
    /// (§5.1.1, "check missing backup logs").
    MissingLog,
    /// A transaction-checker scope ended with an open transaction
    /// (§5.1.1, "check incomplete transactions").
    UnterminatedTx,
    /// `TX_END` without a matching `TX_BEGIN`.
    UnmatchedTxEnd,
    /// Performance: writeback of a range that was never modified (§5.1.2).
    UnnecessaryFlush,
    /// Performance: writeback of a range already written back (§5.1.2).
    DuplicateFlush,
    /// Performance: `TX_ADD` of a range already in the undo log (§5.1.2).
    DuplicateLog,
    /// An operation outside the configured persistency model's vocabulary
    /// (e.g. `ofence` under the x86 model).
    ForeignOperation,
}

impl DiagKind {
    /// The severity class this kind reports at.
    #[must_use]
    pub fn severity(&self) -> Severity {
        match self {
            DiagKind::NotPersisted
            | DiagKind::NotOrderedBefore
            | DiagKind::MissingLog
            | DiagKind::UnterminatedTx
            | DiagKind::UnmatchedTxEnd => Severity::Fail,
            DiagKind::UnnecessaryFlush
            | DiagKind::DuplicateFlush
            | DiagKind::DuplicateLog
            | DiagKind::ForeignOperation => Severity::Warn,
        }
    }
}

impl fmt::Display for DiagKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DiagKind::NotPersisted => "not persisted",
            DiagKind::NotOrderedBefore => "persist order not guaranteed",
            DiagKind::MissingLog => "modified without undo-log backup",
            DiagKind::UnterminatedTx => "transaction not terminated",
            DiagKind::UnmatchedTxEnd => "tx_end without tx_begin",
            DiagKind::UnnecessaryFlush => "writeback of unmodified data",
            DiagKind::DuplicateFlush => "duplicate writeback",
            DiagKind::DuplicateLog => "duplicate undo-log entry",
            DiagKind::ForeignOperation => "operation outside persistency model",
        };
        f.write_str(s)
    }
}

/// One `WARN`/`FAIL` output of the checking engine, with the source
/// attribution the paper reports (`@<file>:<line>`, Fig. 6).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diag {
    /// Which rule fired.
    pub kind: DiagKind,
    /// Where the checker (or offending operation) was issued.
    pub loc: SourceLoc,
    /// The address range involved, when applicable.
    pub range: Option<ByteRange>,
    /// The source location of the operation that caused the problem (e.g.
    /// the unpersisted write), when known.
    pub culprit: Option<SourceLoc>,
    /// Human-readable details.
    pub message: String,
}

impl Diag {
    /// The severity class of this diagnostic.
    #[must_use]
    pub fn severity(&self) -> Severity {
        self.kind.severity()
    }
}

impl fmt::Display for Diag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} @ {}", self.severity(), self.kind, self.loc)?;
        if let Some(r) = self.range {
            write!(f, " [{r}]")?;
        }
        if !self.message.is_empty() {
            write!(f, " — {}", self.message)?;
        }
        if let Some(c) = self.culprit {
            write!(f, " (caused at {c})")?;
        }
        Ok(())
    }
}

/// The diagnostics produced by checking one trace.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceReport {
    /// The trace identifier assigned at submission.
    pub trace_id: u64,
    /// Diagnostics in trace order.
    pub diags: Vec<Diag>,
}

/// The aggregated result of a testing run (what `PMTest_GET_RESULT` returns).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Report {
    traces: Vec<TraceReport>,
}

impl Report {
    /// Builds a report from per-trace results, sorting by trace id.
    #[must_use]
    pub fn from_traces(mut traces: Vec<TraceReport>) -> Self {
        traces.sort_by_key(|t| t.trace_id);
        Self { traces }
    }

    /// Per-trace results in submission order.
    #[must_use]
    pub fn traces(&self) -> &[TraceReport] {
        &self.traces
    }

    /// All diagnostics across traces, in trace order.
    pub fn iter(&self) -> impl Iterator<Item = &Diag> {
        self.traces.iter().flat_map(|t| t.diags.iter())
    }

    /// All `FAIL` diagnostics.
    pub fn fails(&self) -> impl Iterator<Item = &Diag> {
        self.iter().filter(|d| d.severity() == Severity::Fail)
    }

    /// All `WARN` diagnostics.
    pub fn warns(&self) -> impl Iterator<Item = &Diag> {
        self.iter().filter(|d| d.severity() == Severity::Warn)
    }

    /// Number of `FAIL` diagnostics.
    #[must_use]
    pub fn fail_count(&self) -> usize {
        self.fails().count()
    }

    /// Number of `WARN` diagnostics.
    #[must_use]
    pub fn warn_count(&self) -> usize {
        self.warns().count()
    }

    /// Whether no diagnostics at all were reported.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.traces.iter().all(|t| t.diags.is_empty())
    }

    /// Whether any diagnostic of `kind` was reported.
    #[must_use]
    pub fn has(&self, kind: DiagKind) -> bool {
        self.iter().any(|d| d.kind == kind)
    }

    /// Merges another report into this one (re-sorting by trace id).
    pub fn merge(&mut self, other: Report) {
        self.traces.extend(other.traces);
        self.traces.sort_by_key(|t| t.trace_id);
    }

    /// Diagnostic counts per kind, for summaries and harness tables.
    #[must_use]
    pub fn counts_by_kind(&self) -> std::collections::BTreeMap<DiagKind, usize> {
        let mut counts = std::collections::BTreeMap::new();
        for d in self.iter() {
            *counts.entry(d.kind).or_insert(0) += 1;
        }
        counts
    }

    /// A one-line summary, e.g. `2 FAIL (not persisted x2), 1 WARN
    /// (duplicate writeback x1)`.
    #[must_use]
    pub fn summary(&self) -> String {
        if self.is_clean() {
            return format!("clean ({} traces)", self.traces.len());
        }
        let detail: Vec<String> =
            self.counts_by_kind().into_iter().map(|(kind, n)| format!("{kind} x{n}")).collect();
        format!("{} FAIL, {} WARN ({})", self.fail_count(), self.warn_count(), detail.join(", "))
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return writeln!(f, "PMTest: all checks passed ({} traces)", self.traces.len());
        }
        for t in &self.traces {
            for d in &t.diags {
                writeln!(f, "[trace {}] {}", t.trace_id, d)?;
            }
        }
        write!(f, "PMTest: {} FAIL, {} WARN", self.fail_count(), self.warn_count())
    }
}

impl IntoIterator for Report {
    type Item = TraceReport;
    type IntoIter = std::vec::IntoIter<TraceReport>;

    fn into_iter(self) -> Self::IntoIter {
        self.traces.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(kind: DiagKind) -> Diag {
        Diag {
            kind,
            loc: SourceLoc::new("app.rs", 10),
            range: Some(ByteRange::new(0, 8)),
            culprit: Some(SourceLoc::new("app.rs", 5)),
            message: "details".to_owned(),
        }
    }

    #[test]
    fn severity_classes_match_paper() {
        assert_eq!(DiagKind::NotPersisted.severity(), Severity::Fail);
        assert_eq!(DiagKind::NotOrderedBefore.severity(), Severity::Fail);
        assert_eq!(DiagKind::MissingLog.severity(), Severity::Fail);
        assert_eq!(DiagKind::UnterminatedTx.severity(), Severity::Fail);
        assert_eq!(DiagKind::UnnecessaryFlush.severity(), Severity::Warn);
        assert_eq!(DiagKind::DuplicateFlush.severity(), Severity::Warn);
        assert_eq!(DiagKind::DuplicateLog.severity(), Severity::Warn);
    }

    #[test]
    fn diag_display_has_paper_shape() {
        let d = diag(DiagKind::NotPersisted);
        let s = d.to_string();
        assert!(s.starts_with("FAIL: not persisted @ app.rs:10"), "got {s}");
        assert!(s.contains("caused at app.rs:5"));
    }

    #[test]
    fn report_queries() {
        let report = Report::from_traces(vec![
            TraceReport { trace_id: 1, diags: vec![diag(DiagKind::DuplicateFlush)] },
            TraceReport { trace_id: 0, diags: vec![diag(DiagKind::NotPersisted)] },
        ]);
        assert_eq!(report.traces()[0].trace_id, 0, "sorted by id");
        assert_eq!(report.fail_count(), 1);
        assert_eq!(report.warn_count(), 1);
        assert!(!report.is_clean());
        assert!(report.has(DiagKind::NotPersisted));
        assert!(!report.has(DiagKind::MissingLog));
    }

    #[test]
    fn merge_combines_and_sorts() {
        let mut a = Report::from_traces(vec![TraceReport { trace_id: 2, diags: vec![] }]);
        let b = Report::from_traces(vec![TraceReport { trace_id: 1, diags: vec![] }]);
        a.merge(b);
        let ids: Vec<u64> = a.traces().iter().map(|t| t.trace_id).collect();
        assert_eq!(ids, [1, 2]);
        assert!(a.is_clean());
    }

    #[test]
    fn summary_and_counts() {
        let report = Report::from_traces(vec![TraceReport {
            trace_id: 0,
            diags: vec![
                diag(DiagKind::NotPersisted),
                diag(DiagKind::NotPersisted),
                diag(DiagKind::DuplicateFlush),
            ],
        }]);
        let counts = report.counts_by_kind();
        assert_eq!(counts[&DiagKind::NotPersisted], 2);
        assert_eq!(counts[&DiagKind::DuplicateFlush], 1);
        let s = report.summary();
        assert!(s.contains("2 FAIL"), "{s}");
        assert!(s.contains("not persisted x2"), "{s}");
        assert!(Report::default().summary().contains("clean"));
    }

    #[test]
    fn clean_report_display() {
        let r = Report::default();
        assert!(r.to_string().contains("all checks passed"));
        let r = Report::from_traces(vec![TraceReport {
            trace_id: 0,
            diags: vec![diag(DiagKind::MissingLog)],
        }]);
        assert!(r.to_string().contains("1 FAIL, 0 WARN"));
    }
}
