//! Systematic crash-point exploration with prefix-shared replay.
//!
//! PMTest (§3.1) infers durability guarantees but never *executes* a
//! recovery path. This module closes that gap: it enumerates crash points of
//! a recorded program, materializes each point's reachable post-crash
//! images through the ground-truth oracle ([`pmtest_pmem::crash`]), and runs
//! a workload-supplied [`RecoveryProc`] — recover, then check invariants —
//! against every image.
//!
//! # Crash-point selection
//!
//! *Model mode* visits the ordering boundaries: one crash point immediately
//! before each `sfence`/`dfence`, plus the end of the trace
//! ([`CrashSim::boundary_points`]). Within an epoch no write becomes forced
//! and pieces only accumulate, so every image reachable at an interior point
//! is also reachable at the epoch's terminating fence point — boundary
//! points are a covering set, and the sweep is exhaustive up to the
//! per-point state cap. *Random mode* samples crash points (and images per
//! point) with a seeded RNG for cheap wide sweeps over long traces.
//!
//! # Prefix sharing
//!
//! Visiting crash points in ascending order drives one
//! [`CrashCursor`](pmtest_pmem::crash::CrashCursor) forward, folding in only
//! the ops between adjacent points, so a whole sweep replays each operation
//! exactly once instead of rescanning the prefix per point (the
//! [`CrashSim::analyze`] cost profile, quadratic over a sweep). The
//! [`ExploreStats`] hit/miss counters make the sharing observable: a point
//! served off the live cursor is a `prefix_share_hit`; a point that forced a
//! rebuild from operation 0 (backward seek, or a fresh-replay reference run)
//! is a miss.

use std::fmt;

use pmtest_pmem::crash::{CrashSim, CrashState};
use pmtest_trace::SourceLoc;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A workload's recovery procedure plus post-recovery invariants.
///
/// Exploration hands each reachable crash image first to
/// [`recover`](Self::recover) (which may mutate it, e.g. replaying or
/// rolling back a journal, and may *refuse* images it can prove lost
/// acknowledged data), then to [`check`](Self::check) for the workload's
/// consistency invariants. Both phases report violations as human-readable
/// strings; exploration attaches the crash point and culprit attribution.
pub trait RecoveryProc {
    /// Short name for reports (e.g. `"queue"`).
    fn name(&self) -> &str;

    /// Runs recovery on a raw post-crash image, mutating it in place.
    ///
    /// The default is a no-op for workloads whose recovery is read-only.
    ///
    /// # Errors
    ///
    /// Returns a description of why recovery rejected the image (an
    /// unrecoverable or impossible state).
    fn recover(&self, image: &mut [u8]) -> Result<(), String> {
        let _ = image;
        Ok(())
    }

    /// Checks the workload's invariants on a recovered image.
    ///
    /// `point` is the crash point that produced the image (number of
    /// operations executed before the crash), for point-dependent
    /// invariants.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    fn check(&self, point: usize, image: &[u8]) -> Result<(), String>;
}

/// Crash-point selection strategy.
#[derive(Clone, Debug)]
pub enum ExploreMode {
    /// Enumerate every ordering boundary (`sfence`/`dfence`/epoch end) and
    /// all reachable images per point, up to the state cap.
    Model,
    /// Sample `points` crash points and `samples_per_point` images each with
    /// a deterministic RNG. Sampled points are visited in ascending order so
    /// the sweep still prefix-shares.
    Random {
        /// RNG seed (same seed, same sweep).
        seed: u64,
        /// Crash points to draw from `0..=op_count`.
        points: usize,
        /// Images sampled per visited point.
        samples_per_point: usize,
    },
}

/// Configuration of one exploration sweep.
#[derive(Clone, Debug)]
pub struct ExploreConfig {
    /// Crash-point selection strategy.
    pub mode: ExploreMode,
    /// Model mode: most images enumerated per crash point. Points with more
    /// reachable states are truncated and marked `capped` in the report.
    pub max_states_per_point: usize,
    /// Stop the sweep after this many violations.
    pub max_violations: usize,
    /// Rebuild the analysis from scratch at every crash point instead of
    /// prefix-sharing — the reference the proptests compare against. Same
    /// verdicts, quadratic cost, zero prefix-share hits.
    pub fresh_replay: bool,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        Self {
            mode: ExploreMode::Model,
            max_states_per_point: 512,
            max_violations: 16,
            fresh_replay: false,
        }
    }
}

/// Which phase of the recovery procedure rejected the image.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExplorePhase {
    /// [`RecoveryProc::recover`] refused or failed on the raw image.
    Recover,
    /// [`RecoveryProc::check`] found an invariant violation after recovery.
    Invariant,
}

impl fmt::Display for ExplorePhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Recover => write!(f, "recover"),
            Self::Invariant => write!(f, "invariant"),
        }
    }
}

/// One violated crash image.
#[derive(Clone, Debug)]
pub struct ExploreViolation {
    /// Crash point (operations executed before the crash).
    pub point: usize,
    /// Phase that rejected the image.
    pub phase: ExplorePhase,
    /// The violation, as reported by the recovery procedure.
    pub reason: String,
    /// Index of the earliest recorded operation whose loss distinguishes
    /// this image from the fully-persisted state — the write the program
    /// failed to make durable in time.
    pub culprit_op: Option<usize>,
    /// Source site of the culprit op, when the recording captured one.
    pub culprit_site: Option<SourceLoc>,
    /// The offending raw (pre-recovery) memory image.
    pub image: Vec<u8>,
}

/// Per-crash-point summary row.
#[derive(Clone, Debug)]
pub struct PointOutcome {
    /// The crash point.
    pub point: usize,
    /// Cache lines with pending writes at this point.
    pub dirty_lines: usize,
    /// Reachable crash states at this point (saturating).
    pub state_count: u128,
    /// Images actually validated at this point.
    pub images_checked: u64,
    /// Whether enumeration was truncated by `max_states_per_point`.
    pub capped: bool,
    /// Violations found at this point.
    pub violations: usize,
}

/// Exploration counters, also exported through
/// [`telemetry_snapshot`](crate::Engine::telemetry_snapshot) after
/// [`Engine::record_exploration`](crate::Engine::record_exploration).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Crash points visited.
    pub crash_points_enumerated: u64,
    /// Images materialized and run through the recovery procedure.
    pub images_checked: u64,
    /// Crash points served by advancing the live cursor (shared prefix
    /// state reused).
    pub prefix_share_hits: u64,
    /// Crash points that paid a from-scratch rescan of the op prefix
    /// (backward seeks; every point of a fresh-replay run).
    pub prefix_share_misses: u64,
}

impl ExploreStats {
    /// Fraction of crash points served off shared prefix state.
    #[must_use]
    pub fn prefix_share_hit_rate(&self) -> f64 {
        let total = self.prefix_share_hits + self.prefix_share_misses;
        if total == 0 {
            0.0
        } else {
            self.prefix_share_hits as f64 / total as f64
        }
    }

    /// Accumulates another sweep's counters into this one.
    pub fn merge(&mut self, other: &ExploreStats) {
        self.crash_points_enumerated += other.crash_points_enumerated;
        self.images_checked += other.images_checked;
        self.prefix_share_hits += other.prefix_share_hits;
        self.prefix_share_misses += other.prefix_share_misses;
    }
}

/// The result of one exploration sweep.
#[derive(Clone, Debug)]
pub struct ExploreReport {
    /// [`RecoveryProc::name`] of the validated workload.
    pub proc_name: String,
    /// Total recorded operations (crash points range over `0..=op_count`).
    pub op_count: usize,
    /// One row per visited crash point, in visit order.
    pub points: Vec<PointOutcome>,
    /// Violations, in discovery order (bounded by `max_violations`).
    pub violations: Vec<ExploreViolation>,
    /// Sweep counters.
    pub stats: ExploreStats,
}

impl ExploreReport {
    /// Whether every checked image recovered cleanly.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Deterministic text rendering (no image bytes), used by the golden
    /// corpus tests: any drift in exploration verdicts is byte-visible.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "explore {}: {} ops", self.proc_name, self.op_count);
        for p in &self.points {
            let capped = if p.capped { " (capped)" } else { "" };
            let _ = write!(
                out,
                "point {:>3}: {} dirty lines, {} states, {} checked{}",
                p.point, p.dirty_lines, p.state_count, p.images_checked, capped
            );
            let _ = if p.violations > 0 {
                writeln!(out, " <- {} violation(s)", p.violations)
            } else {
                writeln!(out)
            };
        }
        for v in &self.violations {
            let _ = write!(out, "FAIL @point {} [{}]: {}", v.point, v.phase, v.reason);
            match (v.culprit_op, v.culprit_site) {
                (Some(op), Some(site)) => {
                    let _ = writeln!(out, " (culprit op {op} @{site})");
                }
                (Some(op), None) => {
                    let _ = writeln!(out, " (culprit op {op})");
                }
                _ => {
                    let _ = writeln!(out);
                }
            }
        }
        let s = &self.stats;
        let _ = writeln!(
            out,
            "summary: {} points, {} images checked, {} violation(s), prefix-share {}/{}",
            s.crash_points_enumerated,
            s.images_checked,
            self.violations.len(),
            s.prefix_share_hits,
            s.prefix_share_hits + s.prefix_share_misses,
        );
        out
    }
}

/// Runs one exploration sweep of `sim` against `proc`.
///
/// Standalone so tests and tools can explore without an engine;
/// [`Engine::explore`](crate::Engine::explore) wraps this and folds the
/// counters into the engine's telemetry.
#[must_use]
pub fn explore(sim: &CrashSim, proc: &dyn RecoveryProc, cfg: &ExploreConfig) -> ExploreReport {
    let (points, samples_per_point): (Vec<usize>, Option<usize>) = match cfg.mode {
        ExploreMode::Model => (sim.boundary_points(), None),
        ExploreMode::Random { seed, points, samples_per_point } => {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut pts: Vec<usize> =
                (0..points).map(|_| rng.gen_range(0..=sim.op_count())).collect();
            pts.sort_unstable();
            pts.dedup();
            (pts, Some(samples_per_point))
        }
    };
    let mut sample_rng = match cfg.mode {
        ExploreMode::Random { seed, .. } => SmallRng::seed_from_u64(seed ^ 0x9e37_79b9),
        ExploreMode::Model => SmallRng::seed_from_u64(0),
    };

    let mut report = ExploreReport {
        proc_name: proc.name().to_owned(),
        op_count: sim.op_count(),
        points: Vec::with_capacity(points.len()),
        violations: Vec::new(),
        stats: ExploreStats::default(),
    };
    let mut cursor = sim.cursor();
    'sweep: for point in points {
        let rebuilt = if cfg.fresh_replay {
            // Reference mode: throw the shared state away so every point
            // pays the full rescan, like per-point `analyze()`.
            cursor = sim.cursor();
            cursor.seek(point);
            true
        } else {
            cursor.seek(point)
        };
        report.stats.crash_points_enumerated += 1;
        if rebuilt {
            report.stats.prefix_share_misses += 1;
        } else {
            report.stats.prefix_share_hits += 1;
        }
        let analysis = cursor.analysis();
        let state_count = analysis.state_count();
        let mut outcome = PointOutcome {
            point,
            dirty_lines: analysis.dirty_lines(),
            state_count,
            images_checked: 0,
            capped: false,
            violations: 0,
        };
        let states: Vec<CrashState> = match samples_per_point {
            None => {
                outcome.capped = state_count > cfg.max_states_per_point as u128;
                analysis.enumerate().take(cfg.max_states_per_point).collect()
            }
            Some(n) => (0..n).map(|_| analysis.sample_with_choice(&mut sample_rng)).collect(),
        };
        for state in states {
            outcome.images_checked += 1;
            report.stats.images_checked += 1;
            let mut image = state.image.clone();
            let failed = match proc.recover(&mut image) {
                Err(reason) => Some((ExplorePhase::Recover, reason)),
                Ok(()) => match proc.check(point, &image) {
                    Err(reason) => Some((ExplorePhase::Invariant, reason)),
                    Ok(()) => None,
                },
            };
            if let Some((phase, reason)) = failed {
                outcome.violations += 1;
                let culprit_op = analysis.culprit_op(&state.prefixes);
                let culprit_site = culprit_op.and_then(|op| sim.site(op));
                report.violations.push(ExploreViolation {
                    point,
                    phase,
                    reason,
                    culprit_op,
                    culprit_site,
                    image: state.image,
                });
                if report.violations.len() >= cfg.max_violations {
                    report.points.push(outcome);
                    break 'sweep;
                }
            }
        }
        report.points.push(outcome);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmtest_interval::ByteRange;
    use pmtest_pmem::crash::ValuedOp;

    fn w(addr: u64, data: &[u8]) -> ValuedOp {
        ValuedOp::Write { range: ByteRange::with_len(addr, data.len() as u64), data: data.to_vec() }
    }

    fn fl(addr: u64, len: u64) -> ValuedOp {
        ValuedOp::Flush(ByteRange::with_len(addr, len))
    }

    /// Fig. 1a shape: valid flag may persist before the data it guards.
    fn buggy_sim() -> CrashSim {
        CrashSim::new(
            vec![0; 128],
            vec![w(0, &[0xAA]), w(64, &[1]), fl(0, 1), fl(64, 1), ValuedOp::Fence],
        )
    }

    fn fixed_sim() -> CrashSim {
        CrashSim::new(
            vec![0; 128],
            vec![w(0, &[0xAA]), fl(0, 1), ValuedOp::Fence, w(64, &[1]), fl(64, 1), ValuedOp::Fence],
        )
    }

    struct FlagProc;

    impl RecoveryProc for FlagProc {
        fn name(&self) -> &str {
            "flag"
        }

        fn check(&self, _point: usize, image: &[u8]) -> Result<(), String> {
            if image[64] == 1 && image[0] != 0xAA {
                Err("valid flag set but data stale".to_owned())
            } else {
                Ok(())
            }
        }
    }

    #[test]
    fn model_mode_finds_the_missing_barrier() {
        let report = explore(&buggy_sim(), &FlagProc, &ExploreConfig::default());
        assert!(!report.is_clean());
        let v = &report.violations[0];
        assert_eq!(v.phase, ExplorePhase::Invariant);
        assert_eq!(v.culprit_op, Some(0), "stale data write is the culprit");
        assert!(v.reason.contains("stale"));
    }

    #[test]
    fn model_mode_clean_on_fixed_program() {
        let report = explore(&fixed_sim(), &FlagProc, &ExploreConfig::default());
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.stats.prefix_share_misses, 0);
        assert_eq!(
            report.stats.crash_points_enumerated,
            3,
            "two fences plus trace end: {}",
            report.render()
        );
    }

    #[test]
    fn random_mode_is_deterministic_and_shares_prefixes() {
        let cfg = ExploreConfig {
            mode: ExploreMode::Random { seed: 7, points: 16, samples_per_point: 8 },
            ..ExploreConfig::default()
        };
        let a = explore(&buggy_sim(), &FlagProc, &cfg);
        let b = explore(&buggy_sim(), &FlagProc, &cfg);
        assert_eq!(a.render(), b.render(), "same seed, same sweep");
        assert_eq!(a.stats.prefix_share_misses, 0, "sorted points never rebuild");
        assert!(!a.is_clean(), "sampling finds the reachable bug");
    }

    #[test]
    fn fresh_replay_matches_shared_verdicts_with_zero_hits() {
        let shared = explore(&buggy_sim(), &FlagProc, &ExploreConfig::default());
        let fresh = explore(
            &buggy_sim(),
            &FlagProc,
            &ExploreConfig { fresh_replay: true, ..ExploreConfig::default() },
        );
        assert_eq!(shared.stats.prefix_share_misses, 0);
        assert_eq!(fresh.stats.prefix_share_hits, 0);
        // Everything except the share counters must agree byte-for-byte.
        let strip = |r: &ExploreReport| {
            r.render().lines().filter(|l| !l.starts_with("summary:")).collect::<Vec<_>>().join("\n")
        };
        assert_eq!(strip(&shared), strip(&fresh));
        assert_eq!(shared.stats.images_checked, fresh.stats.images_checked);
    }

    #[test]
    fn max_violations_bounds_the_sweep() {
        let cfg = ExploreConfig { max_violations: 1, ..ExploreConfig::default() };
        let report = explore(&buggy_sim(), &FlagProc, &cfg);
        assert_eq!(report.violations.len(), 1);
    }

    #[test]
    fn recover_phase_failures_are_attributed() {
        struct Refusing;
        impl RecoveryProc for Refusing {
            fn name(&self) -> &str {
                "refusing"
            }
            fn recover(&self, image: &mut [u8]) -> Result<(), String> {
                if image[0] == 0xAA {
                    Err("cannot mount".to_owned())
                } else {
                    Ok(())
                }
            }
            fn check(&self, _point: usize, _image: &[u8]) -> Result<(), String> {
                Ok(())
            }
        }
        let report = explore(&buggy_sim(), &Refusing, &ExploreConfig::default());
        assert!(report.violations.iter().all(|v| v.phase == ExplorePhase::Recover));
        assert!(!report.is_clean());
    }
}
