//! Diagnosis bundles: self-contained post-mortem captures of a failing
//! check (DESIGN.md §11).
//!
//! When the flight recorder is on ([`crate::TelemetryConfig::recorder`]),
//! every worker keeps a ring of recently replayed entries annotated with
//! the interval state the model assigned. On any ERROR — or on demand via
//! [`crate::Engine::capture_bundle`] — that window is frozen into a
//! [`DiagnosisBundle`]: the firing checker, the full diagnostics, the
//! trace window with source locations, the epoch boundaries, and the
//! culprit write's interval history. Bundles serialize to JSON-lines
//! (validated by `obs-check`) and replay in `pmtest-explain`.

use std::fmt::Write as _;

use pmtest_obs::json::escape_into;
use pmtest_trace::{Entry, Event, IntervalNote, StepRecord};

use crate::diag::{Diag, Severity};
use crate::shadow::ShadowMemory;

/// Why a bundle was captured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BundleReason {
    /// A checker fired a FAIL-severity diagnostic.
    Error,
    /// An explicit [`crate::Engine::capture_bundle`] request.
    Manual,
}

impl BundleReason {
    /// Stable identifier used in the serialized header.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            BundleReason::Error => "error",
            BundleReason::Manual => "manual",
        }
    }
}

/// A frozen flight-recorder window plus the diagnostics that triggered it.
#[derive(Debug, Clone)]
pub struct DiagnosisBundle {
    /// Name of the persistency model that replayed the trace.
    pub model: String,
    /// Why the bundle was captured.
    pub reason: BundleReason,
    /// Id of the trace the (latest) window steps belong to.
    pub trace_id: u64,
    /// Every diagnostic the trace produced, in emission order.
    pub diags: Vec<Diag>,
    /// Index into `diags` of the firing (first FAIL) diagnostic, if any.
    pub firing: Option<usize>,
    /// The recorded window, oldest step first.
    pub steps: Vec<StepRecord>,
}

/// Build the step record for one replayed entry: the model's epoch counter
/// plus the persist intervals touching the entry's own ranges.
pub(crate) fn capture_step(
    trace_id: u64,
    index: usize,
    entry: &Entry,
    shadow: &ShadowMemory,
) -> StepRecord {
    let mut intervals = Vec::new();
    let mut note = |range| {
        for (sub, iv, write_loc) in shadow.persist_intervals(range) {
            intervals.push(IntervalNote {
                range: sub,
                begin: iv.start(),
                end: iv.end(),
                write_loc,
            });
        }
    };
    match entry.event {
        Event::Write(r)
        | Event::Flush(r)
        | Event::TxAdd(r)
        | Event::IsPersist(r)
        | Event::Exclude(r)
        | Event::Include(r) => note(r),
        Event::IsOrderedBefore(a, b) => {
            note(a);
            note(b);
        }
        Event::Fence
        | Event::OFence
        | Event::DFence
        | Event::TxBegin
        | Event::TxEnd
        | Event::TxCheckerStart
        | Event::TxCheckerEnd => {}
    }
    StepRecord { trace_id, index, entry: *entry, epoch: shadow.timestamp(), intervals }
}

/// The corpus-text token for an event (the dialect `pmtest-explain` and the
/// difftest corpus share), e.g. `write 0 8`, `tx_commit`, `check_ordered 0
/// 8 64 8`.
#[must_use]
pub fn op_token(event: &Event) -> String {
    match *event {
        Event::Write(r) => format!("write {} {}", r.start(), r.len()),
        Event::Flush(r) => format!("flush {} {}", r.start(), r.len()),
        Event::Fence => "fence".to_owned(),
        Event::OFence => "ofence".to_owned(),
        Event::DFence => "dfence".to_owned(),
        Event::TxBegin => "tx_begin".to_owned(),
        Event::TxEnd => "tx_commit".to_owned(),
        Event::TxAdd(r) => format!("tx_add {} {}", r.start(), r.len()),
        Event::IsPersist(r) => format!("check_persist {} {}", r.start(), r.len()),
        Event::IsOrderedBefore(a, b) => {
            format!("check_ordered {} {} {} {}", a.start(), a.len(), b.start(), b.len())
        }
        Event::TxCheckerStart => "tx_checker_start".to_owned(),
        Event::TxCheckerEnd => "tx_checker_end".to_owned(),
        Event::Exclude(r) => format!("exclude {} {}", r.start(), r.len()),
        Event::Include(r) => format!("include {} {}", r.start(), r.len()),
    }
}

fn fence_cause(event: &Event) -> Option<&'static str> {
    match event {
        Event::Fence => Some("fence"),
        Event::OFence => Some("ofence"),
        Event::DFence => Some("dfence"),
        _ => None,
    }
}

impl DiagnosisBundle {
    /// Assemble a bundle from a worker's window for one trace's diagnostics.
    #[must_use]
    pub(crate) fn from_window(
        model: &str,
        reason: BundleReason,
        trace_id: u64,
        diags: Vec<Diag>,
        steps: Vec<StepRecord>,
    ) -> Self {
        let firing = diags.iter().position(|d| d.severity() == Severity::Fail);
        Self { model: model.to_owned(), reason, trace_id, diags, firing, steps }
    }

    /// Serialize as JSON-lines: one `header` line, one `diag` line per
    /// diagnostic, one `step` line per recorded entry (with an `epoch` line
    /// after every fence step), and a trailing `culprit` line when the
    /// firing diagnostic names one. Every line parses on its own with
    /// `pmtest_obs::json::parse`; `obs-check` validates the whole file.
    #[must_use]
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"kind\":\"header\",\"bundle\":\"pmtest-diagnosis\",\"version\":1,\"model\":"
        );
        escape_into(&mut out, &self.model);
        out.push_str(",\"reason\":");
        escape_into(&mut out, self.reason.as_str());
        let _ = write!(
            out,
            ",\"trace_id\":{},\"steps\":{},\"diags\":{}}}",
            self.trace_id,
            self.steps.len(),
            self.diags.len()
        );
        out.push('\n');

        for (i, d) in self.diags.iter().enumerate() {
            let _ = write!(
                out,
                "{{\"kind\":\"diag\",\"firing\":{},\"severity\":",
                self.firing == Some(i)
            );
            escape_into(&mut out, d.severity().as_str());
            out.push_str(",\"code\":");
            escape_into(&mut out, d.kind.code());
            out.push_str(",\"loc\":");
            escape_into(&mut out, &d.loc.to_string());
            match d.range {
                Some(r) => {
                    let _ = write!(out, ",\"range\":[{},{}]", r.start(), r.end());
                }
                None => out.push_str(",\"range\":null"),
            }
            match d.culprit {
                Some(c) => {
                    out.push_str(",\"culprit\":");
                    escape_into(&mut out, &c.to_string());
                }
                None => out.push_str(",\"culprit\":null"),
            }
            out.push_str(",\"message\":");
            escape_into(&mut out, &d.message);
            out.push_str("}\n");
        }

        for step in &self.steps {
            let _ = write!(out, "{{\"kind\":\"step\",\"index\":{},\"op\":", step.index);
            escape_into(&mut out, &op_token(&step.entry.event));
            out.push_str(",\"loc\":");
            escape_into(&mut out, &step.entry.loc.to_string());
            let _ = write!(out, ",\"epoch\":{},\"intervals\":[", step.epoch);
            for (j, iv) in step.intervals.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"range\":[{},{}],\"begin\":{},\"end\":",
                    iv.range.start(),
                    iv.range.end(),
                    iv.begin
                );
                match iv.end {
                    Some(e) => {
                        let _ = write!(out, "{e}");
                    }
                    None => out.push_str("null"),
                }
                out.push_str(",\"write_loc\":");
                match iv.write_loc {
                    Some(loc) => escape_into(&mut out, &loc.to_string()),
                    None => out.push_str("null"),
                }
                out.push('}');
            }
            out.push_str("]}\n");
            if let Some(cause) = fence_cause(&step.entry.event) {
                let _ = write!(
                    out,
                    "{{\"kind\":\"epoch\",\"epoch\":{},\"at_index\":{},\"cause\":\"{}\"}}",
                    step.epoch, step.index, cause
                );
                out.push('\n');
            }
        }

        if let Some(firing) = self.firing {
            let d = &self.diags[firing];
            if let Some(culprit) = d.culprit {
                out.push_str("{\"kind\":\"culprit\",\"loc\":");
                escape_into(&mut out, &culprit.to_string());
                out.push_str(",\"checker_loc\":");
                escape_into(&mut out, &d.loc.to_string());
                out.push_str(",\"code\":");
                escape_into(&mut out, d.kind.code());
                out.push_str("}\n");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmtest_interval::ByteRange;
    use pmtest_trace::SourceLoc;

    use crate::diag::DiagKind;

    fn sample_bundle() -> DiagnosisBundle {
        let loc = SourceLoc::new("app.rs", 10);
        let culprit = SourceLoc::new("app.rs", 3);
        DiagnosisBundle::from_window(
            "x86",
            BundleReason::Error,
            7,
            vec![Diag {
                kind: DiagKind::NotPersisted,
                loc,
                range: Some(ByteRange::with_len(0, 8)),
                culprit: Some(culprit),
                message: "interval still open".to_owned(),
            }],
            vec![
                StepRecord {
                    trace_id: 7,
                    index: 0,
                    entry: Event::Write(ByteRange::with_len(0, 8)).at(culprit),
                    epoch: 0,
                    intervals: vec![IntervalNote {
                        range: ByteRange::with_len(0, 8),
                        begin: 0,
                        end: None,
                        write_loc: Some(culprit),
                    }],
                },
                StepRecord {
                    trace_id: 7,
                    index: 1,
                    entry: Event::Fence.at(SourceLoc::new("app.rs", 5)),
                    epoch: 1,
                    intervals: Vec::new(),
                },
            ],
        )
    }

    #[test]
    fn bundle_serializes_and_every_line_parses() {
        let text = sample_bundle().to_json_lines();
        let lines: Vec<&str> = text.lines().collect();
        // header, 1 diag, 2 steps, 1 epoch (after the fence), 1 culprit.
        assert_eq!(lines.len(), 6);
        for line in &lines {
            let doc = pmtest_obs::json::parse(line).expect("line parses");
            assert!(doc.get("kind").is_some(), "line has a kind: {line}");
        }
        let header = pmtest_obs::json::parse(lines[0]).unwrap();
        assert_eq!(header.get("bundle").and_then(|v| v.as_str()), Some("pmtest-diagnosis"));
        assert_eq!(header.get("steps").and_then(|v| v.as_f64()), Some(2.0));
        assert_eq!(header.get("diags").and_then(|v| v.as_f64()), Some(1.0));
        let culprit = pmtest_obs::json::parse(lines[5]).unwrap();
        assert_eq!(culprit.get("loc").and_then(|v| v.as_str()), Some("app.rs:3"));
    }

    #[test]
    fn firing_marks_first_fail_not_warns() {
        let loc = SourceLoc::new("a.rs", 1);
        let bundle = DiagnosisBundle::from_window(
            "x86",
            BundleReason::Error,
            1,
            vec![
                Diag {
                    kind: DiagKind::DuplicateFlush,
                    loc,
                    range: None,
                    culprit: None,
                    message: String::new(),
                },
                Diag {
                    kind: DiagKind::NotPersisted,
                    loc,
                    range: None,
                    culprit: None,
                    message: String::new(),
                },
            ],
            Vec::new(),
        );
        assert_eq!(bundle.firing, Some(1));
    }

    #[test]
    fn op_tokens_round_trip_the_corpus_dialect() {
        assert_eq!(op_token(&Event::Write(ByteRange::with_len(0, 8))), "write 0 8");
        assert_eq!(op_token(&Event::TxEnd), "tx_commit");
        assert_eq!(
            op_token(&Event::IsOrderedBefore(
                ByteRange::with_len(0, 8),
                ByteRange::with_len(64, 8)
            )),
            "check_ordered 0 8 64 8"
        );
        assert_eq!(op_token(&Event::Exclude(ByteRange::with_len(16, 4))), "exclude 16 4");
    }
}
