use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use parking_lot::{Condvar, Mutex};
use pmtest_obs::TelemetrySnapshot;
use pmtest_trace::Trace;

/// A bounded trace queue simulating the kernel FIFO of §4.5.
///
/// Crash-consistent *kernel modules* (the paper tests PMFS) cannot host the
/// checking engine; instead the kernel side pushes traces into a FIFO
/// (`/proc/PMTest`, 1024 entries) that a user-space pump drains into the
/// engine. Two details from the paper are reproduced:
///
/// * when the FIFO is full, the producer blocks on an interruptible wait
///   queue;
/// * it is woken only once the FIFO has drained below **half** capacity,
///   avoiding wakeup thrashing.
///
/// This FIFO models the *kernel↔user* boundary only; it is not on the
/// engine's own ingest path, which uses per-producer SPSC rings carrying
/// packed arenas (DESIGN.md §13). The user-space pump that drains this
/// FIFO submits into that plane like any other producer.
///
/// # Examples
///
/// ```
/// use pmtest_core::KernelFifo;
/// use pmtest_trace::Trace;
///
/// let fifo = KernelFifo::with_capacity(4);
/// assert!(fifo.push(Trace::new(0)));
/// assert_eq!(fifo.pop().map(|t| t.id()), Some(0));
/// fifo.close();
/// assert_eq!(fifo.pop(), None);
/// ```
pub struct KernelFifo {
    state: Mutex<FifoState>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
    counters: FifoCounters,
}

struct FifoState {
    queue: VecDeque<Trace>,
    closed: bool,
}

/// Always-on occupancy and stall accounting. Counters are relaxed atomics;
/// the stall clocks are read only on the blocking paths, where a condvar
/// wait already dwarfs them.
#[derive(Default)]
struct FifoCounters {
    pushes: AtomicU64,
    pops: AtomicU64,
    occupancy_highwater: AtomicU64,
    push_stalls: AtomicU64,
    push_stall_ns: AtomicU64,
    pop_stalls: AtomicU64,
    pop_stall_ns: AtomicU64,
}

/// Lifetime statistics of a [`KernelFifo`] — how full the FIFO ran and how
/// long each side spent blocked on the other (§4.5's producer wait queue).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FifoStats {
    /// Traces accepted by [`KernelFifo::push`].
    pub pushes: u64,
    /// Traces handed out by [`KernelFifo::pop`] / [`KernelFifo::pop_batch`].
    pub pops: u64,
    /// Highest occupancy ever reached. At capacity, the producer has been
    /// put on the wait queue at least once.
    pub occupancy_highwater: u64,
    /// Times a push found the FIFO full and blocked.
    pub push_stalls: u64,
    /// Total nanoseconds pushes spent blocked on a full FIFO.
    pub push_stall_ns: u64,
    /// Times a pop found the FIFO empty and blocked.
    pub pop_stalls: u64,
    /// Total nanoseconds pops spent blocked on an empty FIFO.
    pub pop_stall_ns: u64,
}

impl Default for KernelFifo {
    fn default() -> Self {
        Self::new()
    }
}

impl KernelFifo {
    /// The paper's FIFO depth.
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// Creates a FIFO with the paper's 1024-trace capacity.
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// Creates a FIFO with a custom capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "fifo capacity must be positive");
        Self {
            state: Mutex::new(FifoState { queue: VecDeque::new(), closed: false }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity,
            counters: FifoCounters::default(),
        }
    }

    /// Lifetime occupancy and stall statistics.
    #[must_use]
    pub fn stats(&self) -> FifoStats {
        FifoStats {
            pushes: self.counters.pushes.load(Ordering::Relaxed),
            pops: self.counters.pops.load(Ordering::Relaxed),
            occupancy_highwater: self.counters.occupancy_highwater.load(Ordering::Relaxed),
            push_stalls: self.counters.push_stalls.load(Ordering::Relaxed),
            push_stall_ns: self.counters.push_stall_ns.load(Ordering::Relaxed),
            pop_stalls: self.counters.pop_stalls.load(Ordering::Relaxed),
            pop_stall_ns: self.counters.pop_stall_ns.load(Ordering::Relaxed),
        }
    }

    /// Folds the FIFO's statistics into a telemetry snapshot (so a pump
    /// harness can merge them with [`Engine::telemetry_snapshot`]).
    ///
    /// [`Engine::telemetry_snapshot`]: crate::Engine::telemetry_snapshot
    pub fn snapshot_into(&self, snap: &mut TelemetrySnapshot) {
        let stats = self.stats();
        snap.push_counter("fifo_pushes", &[], stats.pushes);
        snap.push_counter("fifo_pops", &[], stats.pops);
        snap.push_counter("fifo_occupancy_highwater", &[], stats.occupancy_highwater);
        snap.push_counter("fifo_push_stalls", &[], stats.push_stalls);
        snap.push_counter("fifo_push_stall_ns", &[], stats.push_stall_ns);
        snap.push_counter("fifo_pop_stalls", &[], stats.pop_stalls);
        snap.push_counter("fifo_pop_stall_ns", &[], stats.pop_stall_ns);
        snap.push_gauge("fifo_capacity", &[], self.capacity as f64);
        snap.push_gauge("fifo_occupancy", &[], self.len() as f64);
    }

    /// The FIFO's statistics as a standalone telemetry snapshot.
    #[must_use]
    pub fn telemetry_snapshot(&self) -> TelemetrySnapshot {
        let mut snap = TelemetrySnapshot::default();
        self.snapshot_into(&mut snap);
        snap
    }

    /// Maximum number of queued traces.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently queued traces.
    #[must_use]
    pub fn len(&self) -> usize {
        self.state.lock().queue.len()
    }

    /// Whether the queue is currently empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.state.lock().queue.is_empty()
    }

    /// Enqueues a trace, blocking while the FIFO is full (the kernel module
    /// putting itself on the wait queue, §4.5). Returns `false` if the FIFO
    /// was closed.
    pub fn push(&self, trace: Trace) -> bool {
        let mut state = self.state.lock();
        if state.queue.len() >= self.capacity && !state.closed {
            // Producer goes on the wait queue: count the stall and clock it.
            self.counters.push_stalls.fetch_add(1, Ordering::Relaxed);
            let stalled = Instant::now();
            while state.queue.len() >= self.capacity && !state.closed {
                self.not_full.wait(&mut state);
            }
            self.counters
                .push_stall_ns
                .fetch_add(stalled.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
        if state.closed {
            return false;
        }
        state.queue.push_back(trace);
        let occupancy = state.queue.len() as u64;
        drop(state);
        self.counters.pushes.fetch_add(1, Ordering::Relaxed);
        self.counters.occupancy_highwater.fetch_max(occupancy, Ordering::Relaxed);
        self.not_empty.notify_one();
        true
    }

    /// Dequeues the next trace, blocking while the FIFO is empty. Returns
    /// `None` once the FIFO is closed *and* drained.
    pub fn pop(&self) -> Option<Trace> {
        let mut state = self.state.lock();
        let mut stalled = None;
        loop {
            if let Some(trace) = state.queue.pop_front() {
                // Paper: the producer "gets interrupted and resumes execution
                // when the FIFO is less than half full".
                if state.queue.len() < self.capacity / 2 {
                    self.not_full.notify_all();
                }
                drop(state);
                self.settle_pop_stall(stalled);
                self.counters.pops.fetch_add(1, Ordering::Relaxed);
                return Some(trace);
            }
            if state.closed {
                drop(state);
                self.settle_pop_stall(stalled);
                return None;
            }
            if stalled.is_none() {
                self.counters.pop_stalls.fetch_add(1, Ordering::Relaxed);
                stalled = Some(Instant::now());
            }
            self.not_empty.wait(&mut state);
        }
    }

    /// Accumulates the time a pop spent blocked, if it blocked at all.
    fn settle_pop_stall(&self, stalled: Option<Instant>) {
        if let Some(since) = stalled {
            self.counters
                .pop_stall_ns
                .fetch_add(since.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
    }

    /// Dequeues up to `max` traces in one lock acquisition, blocking while
    /// the FIFO is empty. Returns an empty vector once the FIFO is closed
    /// *and* drained.
    ///
    /// This is the batched drain for the user-space pump: everything popped
    /// here can go to the engine via `Engine::submit_batch` as one dispatch.
    ///
    /// # Panics
    ///
    /// Panics if `max` is zero.
    pub fn pop_batch(&self, max: usize) -> Vec<Trace> {
        assert!(max > 0, "pop_batch needs a positive batch size");
        let mut state = self.state.lock();
        let mut stalled = None;
        loop {
            if !state.queue.is_empty() {
                let take = max.min(state.queue.len());
                let batch: Vec<Trace> = state.queue.drain(..take).collect();
                if state.queue.len() < self.capacity / 2 {
                    self.not_full.notify_all();
                }
                drop(state);
                self.settle_pop_stall(stalled);
                self.counters.pops.fetch_add(batch.len() as u64, Ordering::Relaxed);
                return batch;
            }
            if state.closed {
                drop(state);
                self.settle_pop_stall(stalled);
                return Vec::new();
            }
            if stalled.is_none() {
                self.counters.pop_stalls.fetch_add(1, Ordering::Relaxed);
                stalled = Some(Instant::now());
            }
            self.not_empty.wait(&mut state);
        }
    }

    /// Closes the FIFO: producers stop being admitted, consumers drain what
    /// remains and then observe `None`.
    pub fn close(&self) {
        let mut state = self.state.lock();
        state.closed = true;
        drop(state);
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }
}

impl fmt::Debug for KernelFifo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = self.state.lock();
        f.debug_struct("KernelFifo")
            .field("capacity", &self.capacity)
            .field("len", &state.queue.len())
            .field("closed", &state.closed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn fifo_order_preserved() {
        let fifo = KernelFifo::with_capacity(8);
        for id in 0..5 {
            assert!(fifo.push(Trace::new(id)));
        }
        assert_eq!(fifo.len(), 5);
        for id in 0..5 {
            assert_eq!(fifo.pop().map(|t| t.id()), Some(id));
        }
        assert!(fifo.is_empty());
    }

    #[test]
    fn push_blocks_until_half_drained() {
        let fifo = Arc::new(KernelFifo::with_capacity(4));
        for id in 0..4 {
            fifo.push(Trace::new(id));
        }
        let producer = {
            let fifo = fifo.clone();
            std::thread::spawn(move || fifo.push(Trace::new(99)))
        };
        // Give the producer time to block.
        std::thread::sleep(Duration::from_millis(50));
        assert!(!producer.is_finished(), "producer must block on a full fifo");
        // One pop leaves 3 >= capacity/2: still blocked.
        fifo.pop().unwrap();
        std::thread::sleep(Duration::from_millis(50));
        assert!(!producer.is_finished(), "woken only below half capacity");
        // Two more pops drop below half (1 < 2): producer resumes.
        fifo.pop().unwrap();
        fifo.pop().unwrap();
        assert!(producer.join().unwrap());
        let remaining: Vec<u64> =
            std::iter::from_fn(|| if fifo.is_empty() { None } else { fifo.pop().map(|t| t.id()) })
                .collect();
        assert_eq!(remaining, [3, 99]);
    }

    #[test]
    fn close_unblocks_everyone() {
        let fifo = Arc::new(KernelFifo::with_capacity(1));
        fifo.push(Trace::new(0));
        let blocked_producer = {
            let fifo = fifo.clone();
            std::thread::spawn(move || fifo.push(Trace::new(1)))
        };
        let consumer = {
            let fifo = fifo.clone();
            std::thread::spawn(move || {
                let mut seen = Vec::new();
                while let Some(t) = fifo.pop() {
                    seen.push(t.id());
                }
                seen
            })
        };
        std::thread::sleep(Duration::from_millis(50));
        fifo.close();
        assert!(!blocked_producer.join().unwrap(), "closed fifo rejects");
        let seen = consumer.join().unwrap();
        assert_eq!(seen, [0], "consumer drained then observed close");
    }

    #[test]
    fn pop_batch_drains_up_to_max() {
        let fifo = KernelFifo::with_capacity(8);
        for id in 0..6 {
            assert!(fifo.push(Trace::new(id)));
        }
        let batch = fifo.pop_batch(4);
        assert_eq!(batch.iter().map(|t| t.id()).collect::<Vec<_>>(), [0, 1, 2, 3]);
        let batch = fifo.pop_batch(4);
        assert_eq!(batch.iter().map(|t| t.id()).collect::<Vec<_>>(), [4, 5]);
        fifo.close();
        assert!(fifo.pop_batch(4).is_empty(), "closed and drained");
    }

    #[test]
    fn pop_batch_wakes_blocked_producer() {
        let fifo = Arc::new(KernelFifo::with_capacity(4));
        for id in 0..4 {
            fifo.push(Trace::new(id));
        }
        let producer = {
            let fifo = fifo.clone();
            std::thread::spawn(move || fifo.push(Trace::new(99)))
        };
        std::thread::sleep(Duration::from_millis(50));
        assert!(!producer.is_finished(), "producer must block on a full fifo");
        // Draining four at once goes far below half capacity: wakes producer.
        assert_eq!(fifo.pop_batch(4).len(), 4);
        assert!(producer.join().unwrap());
        assert_eq!(fifo.pop().map(|t| t.id()), Some(99));
    }

    #[test]
    fn pop_on_closed_empty_returns_none() {
        let fifo = KernelFifo::new();
        assert_eq!(fifo.capacity(), KernelFifo::DEFAULT_CAPACITY);
        fifo.close();
        assert_eq!(fifo.pop(), None);
        assert!(!fifo.push(Trace::new(0)));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = KernelFifo::with_capacity(0);
    }

    #[test]
    fn stats_track_occupancy_and_stalls() {
        let fifo = Arc::new(KernelFifo::with_capacity(2));
        fifo.push(Trace::new(0));
        fifo.push(Trace::new(1));
        assert_eq!(fifo.stats().occupancy_highwater, 2);
        assert_eq!(fifo.stats().push_stalls, 0);
        let producer = {
            let fifo = fifo.clone();
            std::thread::spawn(move || fifo.push(Trace::new(2)))
        };
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(fifo.stats().push_stalls, 1, "full fifo stalls the producer");
        fifo.pop().unwrap();
        fifo.pop().unwrap();
        assert!(producer.join().unwrap());
        let stats = fifo.stats();
        assert_eq!(stats.pushes, 3);
        assert_eq!(stats.pops, 2);
        assert!(stats.push_stall_ns > 0, "stall time accumulates while blocked");
    }

    #[test]
    fn pop_stall_time_is_clocked() {
        let fifo = Arc::new(KernelFifo::with_capacity(4));
        let consumer = {
            let fifo = fifo.clone();
            std::thread::spawn(move || fifo.pop_batch(4))
        };
        std::thread::sleep(Duration::from_millis(50));
        fifo.push(Trace::new(0));
        assert_eq!(consumer.join().unwrap().len(), 1);
        let stats = fifo.stats();
        assert_eq!(stats.pop_stalls, 1);
        assert!(stats.pop_stall_ns > 0);
        assert_eq!(stats.pops, 1);
    }

    #[test]
    fn snapshot_folds_into_telemetry() {
        let fifo = KernelFifo::with_capacity(8);
        for id in 0..3 {
            fifo.push(Trace::new(id));
        }
        fifo.pop().unwrap();
        let snap = fifo.telemetry_snapshot();
        assert_eq!(snap.counter("fifo_pushes"), Some(3));
        assert_eq!(snap.counter("fifo_pops"), Some(1));
        assert_eq!(snap.counter("fifo_occupancy_highwater"), Some(3));
        assert_eq!(snap.gauge("fifo_occupancy"), Some(2.0));
        assert_eq!(snap.gauge("fifo_capacity"), Some(8.0));
        // Folds into an existing snapshot without clobbering it.
        let mut merged = TelemetrySnapshot::default();
        merged.push_counter("engine_traces_checked", &[], 9);
        fifo.snapshot_into(&mut merged);
        assert_eq!(merged.counter("engine_traces_checked"), Some(9));
        assert_eq!(merged.counter("fifo_pushes"), Some(3));
    }
}
