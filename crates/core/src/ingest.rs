//! The sharded ingest plane: one bounded SPSC ring per producer thread,
//! drained by worker threads that prefer their affinity rings and steal
//! from the others when idle.
//!
//! The previous ingest path multiplexed every submitting thread onto
//! per-worker MPMC channels, so each submit paid a channel lock that all
//! producers contended on, plus a load-aware scan over worker queue depths.
//! Here each producer owns a private ring: a push is one uncontended slot
//! mutex, one tail store, and a conditional wake. Consumers claim batches
//! by a head CAS and take the message under the slot mutex — the only
//! place a producer and a consumer can meet, and only when the ring wraps.
//!
//! ## Steal protocol
//!
//! Every ring is assigned a *preferred* worker round-robin at registration.
//! A worker looking for work scans its own rings first; only when all of
//! them are empty does it scan the rest, counting each foreign claim as a
//! steal. An idle worker parks on a LIFO stack (`std::thread::park`);
//! producers unpark the ring's preferred worker when parked — else the most
//! recently parked, cache-warm one — and only when the backlog exceeds the
//! awake worker count with no recruit already in flight, so the saturated
//! path never touches the park lock and an oversubscribed pool is not
//! dragged through park/unpark churn.
//!
//! ## Lifecycle
//!
//! * A producer thread's rings retire when the thread exits (thread-local
//!   destructor); retired, drained rings are pruned by idle workers.
//! * The last worker to exit — normal shutdown or panic — marks the plane
//!   *dead*, discards every queued message (their drop guards settle the
//!   engine's `outstanding` accounting), and wakes stalled producers so a
//!   blocked submit surfaces as an error instead of a hang.
//! * Closing the plane (engine drop) lets workers drain what is queued and
//!   then exit.
//!
//! The crate is `#![forbid(unsafe_code)]`: the ring is safe Rust. The slot
//! mutexes are uncontended in steady state (a producer and a consumer only
//! share a slot across a full wrap), so the design measures within noise of
//! an unsafe seqlock ring for this access pattern.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex, RwLock};

/// Sequence numbers for plane identities, used to key producer thread-local
/// ring registries (an address would alias after an engine is dropped).
static PLANE_SEQ: AtomicU64 = AtomicU64::new(0);

/// How long a producer stalled on a full ring sleeps between re-checks.
/// Backpressure is the slow regime by definition; a short poll keeps the
/// wait loop free of a producer-side lost-wakeup protocol.
const FULL_RING_POLL: Duration = Duration::from_millis(1);

/// Safety-net bound on a worker's park. Wakeups are signalled; the timeout
/// only covers protocol bugs and retired-ring pruning.
const WORKER_PARK: Duration = Duration::from_millis(50);

/// Error: the plane is no longer accepting messages — it was closed, or
/// every worker has exited.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct PlaneClosed;

/// A ring slot: the message plus the trace count it carries, `Some` from
/// the producer's write until a consumer's take.
type RingSlot<T> = Mutex<Option<(T, u64)>>;

/// One producer's bounded SPSC ring. `push` is called by exactly one thread
/// (the owning producer); `try_pop` by any worker.
pub(crate) struct ProducerRing<T> {
    /// Power-of-two slot array. The mutex is the producer/consumer
    /// rendezvous on wrap-around and is otherwise uncontended.
    slots: Box<[RingSlot<T>]>,
    mask: u64,
    /// Next slot the producer fills. Published with `Release` *after* the
    /// slot is written, so a consumer that observes `head < tail` is
    /// guaranteed to find the slot occupied.
    tail: AtomicU64,
    /// Next slot a consumer claims (CAS).
    head: AtomicU64,
    /// Traces currently queued on this ring.
    occupancy: AtomicU64,
    /// The owning producer thread has exited; no further pushes.
    retired: AtomicBool,
    /// The worker that scans this ring in its affinity pass.
    pref: usize,
    /// Messages ever pushed onto this ring.
    pushed: AtomicU64,
    /// Highest trace occupancy this ring has ever reached.
    highwater: AtomicU64,
    /// Producers stalled on a full ring wait here; consumers notify after
    /// every take.
    space_lock: Mutex<()>,
    space: Condvar,
}

/// One ring's observability sample, as exported by
/// [`IngestPlane::ring_stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct RingStats {
    /// The worker that scans this ring in its affinity pass.
    pub(crate) pref: usize,
    /// Traces currently queued.
    pub(crate) occupancy: u64,
    /// Messages ever pushed.
    pub(crate) pushed: u64,
    /// Highest trace occupancy ever reached.
    pub(crate) highwater: u64,
    /// The owning producer has exited.
    pub(crate) retired: bool,
}

impl<T> ProducerRing<T> {
    fn new(capacity: usize, pref: usize) -> Self {
        let capacity = capacity.next_power_of_two().max(1);
        Self {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            mask: capacity as u64 - 1,
            tail: AtomicU64::new(0),
            head: AtomicU64::new(0),
            occupancy: AtomicU64::new(0),
            retired: AtomicBool::new(false),
            pref,
            pushed: AtomicU64::new(0),
            highwater: AtomicU64::new(0),
            space_lock: Mutex::new(()),
            space: Condvar::new(),
        }
    }

    /// Marks the ring as no longer produced into. Queued messages are still
    /// drained; once empty the plane prunes the ring.
    pub(crate) fn retire(&self) {
        self.retired.store(true, Ordering::Release);
    }

    /// Traces currently queued here.
    pub(crate) fn occupancy(&self) -> u64 {
        self.occupancy.load(Ordering::Relaxed)
    }

    /// Retired and empty: nothing will ever appear here again.
    fn is_drained(&self) -> bool {
        self.retired.load(Ordering::Acquire)
            && self.head.load(Ordering::Acquire) == self.tail.load(Ordering::Acquire)
    }
}

/// The plane: every registered ring plus the worker wake/stall protocol and
/// the observability counters the engine exports.
pub(crate) struct IngestPlane<T> {
    id: u64,
    /// Slots per ring (rounded up to a power of two from the engine's
    /// configured queue capacity).
    ring_capacity: usize,
    workers: usize,
    rings: RwLock<Vec<Arc<ProducerRing<T>>>>,
    /// Batches queued across all rings. The Dekker-style handshake with the
    /// park path (worker: enlist in `parked` then re-check `pending`;
    /// producer: bump `pending` then check `sleepers`) makes the
    /// producer-side wake skippable when nobody sleeps.
    pending: AtomicU64,
    /// Workers parked waiting for work, most recent on top. Producers wake
    /// the ring's preferred worker if it is parked, otherwise the *top* of
    /// the stack — the most recently active, cache-warm thread — instead of
    /// rotating batches through every cold sleeper the way a condvar's FIFO
    /// order would.
    parked: Mutex<Vec<(usize, std::thread::Thread)>>,
    /// Mirror of `parked.len()`, so the saturated push path can skip the
    /// lock entirely.
    sleepers: AtomicUsize,
    /// A wake has been issued and its worker has not yet claimed a batch
    /// (or parked again). Recruiting one worker per claim, not one per
    /// push, keeps a burst of pushes from dragging the whole pool through
    /// park/unpark cycles on an oversubscribed host.
    recruiting: AtomicBool,
    /// Engine is shutting down; workers drain and exit.
    closed: AtomicBool,
    /// Every worker has exited; submissions must fail, queued messages are
    /// discarded.
    dead: AtomicBool,
    workers_alive: AtomicUsize,
    // ---- counters ----
    /// Batches claimed outside the claiming worker's affinity pass.
    steals: AtomicU64,
    /// Batches claimed inside the claiming worker's affinity pass.
    affinity_hits: AtomicU64,
    /// Rings ever registered (≥ live rings; retired rings are pruned).
    rings_registered: AtomicU64,
    /// Highest trace occupancy ever observed on a single ring at push time.
    occupancy_highwater: AtomicU64,
    /// Pushes that found their ring full and had to wait for a consumer.
    backpressure_stalls: AtomicU64,
    /// Worker parks actually entered (`park_timeout` calls).
    parks: AtomicU64,
    /// Sleepers unparked by a producer's recruit wake.
    wakes: AtomicU64,
    /// Recruiting CAS attempts that lost to an in-flight recruit: the
    /// backlog warranted a wake but one was already pending.
    recruit_cas_fails: AtomicU64,
}

impl<T: Send> IngestPlane<T> {
    pub(crate) fn new(workers: usize, ring_capacity: usize) -> Self {
        Self {
            id: PLANE_SEQ.fetch_add(1, Ordering::Relaxed),
            ring_capacity,
            workers: workers.max(1),
            rings: RwLock::new(Vec::new()),
            pending: AtomicU64::new(0),
            parked: Mutex::new(Vec::new()),
            sleepers: AtomicUsize::new(0),
            recruiting: AtomicBool::new(false),
            closed: AtomicBool::new(false),
            dead: AtomicBool::new(false),
            workers_alive: AtomicUsize::new(workers),
            steals: AtomicU64::new(0),
            affinity_hits: AtomicU64::new(0),
            rings_registered: AtomicU64::new(0),
            occupancy_highwater: AtomicU64::new(0),
            backpressure_stalls: AtomicU64::new(0),
            parks: AtomicU64::new(0),
            wakes: AtomicU64::new(0),
            recruit_cas_fails: AtomicU64::new(0),
        }
    }

    /// Identity for keying producer thread-local ring registries.
    pub(crate) fn plane_id(&self) -> u64 {
        self.id
    }

    /// Registers a new producer ring, assigning its preferred worker
    /// round-robin so producers spread across the pool.
    pub(crate) fn register_ring(&self) -> Arc<ProducerRing<T>> {
        let seq = self.rings_registered.fetch_add(1, Ordering::Relaxed);
        let ring = Arc::new(ProducerRing::new(self.ring_capacity, seq as usize % self.workers));
        self.rings.write().push(ring.clone());
        ring
    }

    /// Pushes one message carrying `n` traces onto `ring` (producer side).
    /// Blocks while the ring is full — the backpressure regime — and fails
    /// once the plane is closed or its workers are gone. Returns the ring's
    /// trace occupancy right after the push (the queue-depth sample).
    ///
    /// On failure the message is dropped here; callers rely on its drop
    /// guard to settle any accounting.
    pub(crate) fn push(
        &self,
        ring: &ProducerRing<T>,
        payload: T,
        n: u64,
    ) -> Result<u64, PlaneClosed> {
        if self.dead.load(Ordering::Acquire) || self.closed.load(Ordering::Acquire) {
            return Err(PlaneClosed);
        }
        let t = ring.tail.load(Ordering::Relaxed);
        let slot = &ring.slots[(t & ring.mask) as usize];
        let mut payload = Some((payload, n));
        let mut stalled = false;
        loop {
            {
                let mut guard = slot.lock();
                if guard.is_none() {
                    // Re-checked under the slot mutex: `mark_dead` stores the
                    // flag before its drain takes this slot, so a producer
                    // that sees the slot freed *by the death drain* is
                    // guaranteed to see `dead` here and error out instead of
                    // pushing into a plane nobody will ever drain again.
                    if self.dead.load(Ordering::Acquire) {
                        return Err(PlaneClosed);
                    }
                    *guard = payload.take();
                    break;
                }
            }
            // Ring full: the program now blocks behind the checking
            // pipeline (Fig. 12a's backpressure regime).
            if !stalled {
                stalled = true;
                self.backpressure_stalls.fetch_add(1, Ordering::Relaxed);
            }
            if self.dead.load(Ordering::Acquire) {
                return Err(PlaneClosed);
            }
            let mut guard = ring.space_lock.lock();
            ring.space.wait_for(&mut guard, FULL_RING_POLL);
        }
        ring.tail.store(t + 1, Ordering::Release);
        ring.pushed.fetch_add(1, Ordering::Relaxed);
        let depth = ring.occupancy.fetch_add(n, Ordering::Relaxed) + n;
        ring.highwater.fetch_max(depth, Ordering::Relaxed);
        self.occupancy_highwater.fetch_max(depth, Ordering::Relaxed);
        let pending = self.pending.fetch_add(1, Ordering::SeqCst) + 1;
        // Dekker handshake with the park path: workers enlist in `parked`
        // (bumping `sleepers`, SeqCst) before re-checking `pending`, so
        // either we see the sleeper here or it sees our pending increment.
        //
        // Waking a sleeper on *every* push thrashes an oversubscribed host:
        // with one worker awake and keeping up, each push would drag another
        // thread through a park/unpark cycle just to find the batch already
        // claimed. A worker can only transition awake→asleep after its
        // post-enlist `pending` re-check reads zero, and our increment above
        // precedes the `sleepers` load (both SeqCst) — so any worker counted
        // awake here is guaranteed to claim work before it can park. A wake
        // is therefore only needed when the backlog exceeds the awake count,
        // and one outstanding recruit at a time (`recruiting`) is enough:
        // the recruit clears the flag when it claims, at which point the
        // next push re-evaluates the backlog.
        let sleepers = self.sleepers.load(Ordering::SeqCst);
        if sleepers > 0 {
            let awake = self.workers_alive.load(Ordering::SeqCst).saturating_sub(sleepers);
            if pending > awake as u64 {
                if self
                    .recruiting
                    .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
                {
                    self.wake_one();
                } else {
                    // Backlog warranted a wake, but a recruit is already in
                    // flight. High rates here mean the single-recruit gate is
                    // doing real damping work.
                    self.recruit_cas_fails.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        Ok(depth)
    }

    /// Unparks the most recently parked sleeper. LIFO keeps the working set
    /// on the fewest (and warmest) threads: a pool bigger than the load
    /// leaves its surplus parked instead of rotating batches through every
    /// cold worker. (Ring affinity governs a woken worker's *scan order*,
    /// not which worker gets woken — a steal is cheaper than a cold stack.)
    fn wake_one(&self) {
        let woken = {
            let mut parked = self.parked.lock();
            let Some((_, thread)) = parked.pop() else { return };
            self.sleepers.fetch_sub(1, Ordering::SeqCst);
            thread
        };
        self.wakes.fetch_add(1, Ordering::Relaxed);
        woken.unpark();
    }

    /// Claims one message from `ring` (any worker). The claim is a head CAS;
    /// the take happens under the slot mutex, which is what makes the
    /// `expect` sound: `head < tail` (tail released after the slot write)
    /// guarantees the slot was filled, the CAS makes this claim exclusive,
    /// and a producer wrapping onto the same physical slot blocks on the
    /// mutex until the take completes.
    fn try_pop(&self, ring: &ProducerRing<T>) -> Option<(T, u64)> {
        loop {
            let h = ring.head.load(Ordering::Relaxed);
            let t = ring.tail.load(Ordering::Acquire);
            if h >= t {
                return None;
            }
            if ring
                .head
                .compare_exchange_weak(h, h + 1, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                let (payload, n) = ring.slots[(h & ring.mask) as usize]
                    .lock()
                    .take()
                    .expect("claimed ring slot must hold a message");
                ring.occupancy.fetch_sub(n, Ordering::Relaxed);
                self.pending.fetch_sub(1, Ordering::SeqCst);
                ring.space.notify_all();
                return Some((payload, n));
            }
        }
    }

    /// One scan for work: the worker's affinity rings first, then everything
    /// else (counted as steals).
    fn try_claim(&self, me: usize) -> Option<(T, u64)> {
        if self.pending.load(Ordering::Acquire) == 0 {
            return None;
        }
        let rings = self.rings.read();
        for ring in rings.iter().filter(|r| r.pref == me) {
            if let Some(got) = self.try_pop(ring) {
                self.affinity_hits.fetch_add(1, Ordering::Relaxed);
                return Some(got);
            }
        }
        for ring in rings.iter().filter(|r| r.pref != me) {
            if let Some(got) = self.try_pop(ring) {
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(got);
            }
        }
        None
    }

    /// Blocks until a message is available, the plane is closed *and*
    /// drained (`None`), or a park times out and the scan repeats.
    pub(crate) fn next_batch(&self, me: usize) -> Option<(T, u64)> {
        loop {
            if let Some(got) = self.try_claim(me) {
                // Progress: any outstanding recruit credit is spent, so the
                // next push re-evaluates whether the backlog needs another
                // worker.
                self.recruiting.store(false, Ordering::SeqCst);
                return Some(got);
            }
            if self.closed.load(Ordering::Acquire) && self.pending.load(Ordering::Acquire) == 0 {
                return None;
            }
            self.prune_retired();
            // About to park: this worker is no longer a claimant, so release
            // any recruit credit it holds — a flag stuck true would suppress
            // producer wakes until the park timeout.
            self.recruiting.store(false, Ordering::SeqCst);
            {
                let mut parked = self.parked.lock();
                parked.push((me, std::thread::current()));
                self.sleepers.fetch_add(1, Ordering::SeqCst);
            }
            if self.pending.load(Ordering::SeqCst) > 0 || self.closed.load(Ordering::Acquire) {
                self.delist(me);
                continue;
            }
            self.parks.fetch_add(1, Ordering::Relaxed);
            std::thread::park_timeout(WORKER_PARK);
            self.delist(me);
        }
    }

    /// Removes this worker's `parked` entry unless a producer already popped
    /// it. A raced wake leaves a stale unpark token behind, which only makes
    /// the next park return immediately — the loop re-checks for work either
    /// way.
    fn delist(&self, me: usize) {
        let mut parked = self.parked.lock();
        if let Some(at) = parked.iter().position(|(idx, _)| *idx == me) {
            parked.remove(at);
            self.sleepers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Drops retired rings that can never hold a message again. Producers
    /// that come and go (one ring per thread per plane) would otherwise
    /// accumulate dead rings on the scan path forever.
    fn prune_retired(&self) {
        if self.rings.read().iter().any(|r| r.is_drained()) {
            self.rings.write().retain(|r| !r.is_drained());
        }
    }

    /// Discards everything queued on `ring`; each message's drop settles its
    /// own accounting. Used by a producer that raced a dying worker pool.
    pub(crate) fn drain_discard(&self, ring: &ProducerRing<T>) {
        while self.try_pop(ring).is_some() {}
    }

    fn drain_all_discard(&self) {
        let rings: Vec<_> = self.rings.read().clone();
        for ring in rings {
            self.drain_discard(&ring);
        }
    }

    /// Called by the last exiting worker (shutdown or panic): no message
    /// will ever be claimed again, so discard the queue (settling the
    /// accounting of every batch in flight) and wake stalled producers so
    /// their submits fail instead of hanging.
    fn mark_dead(&self) {
        self.dead.store(true, Ordering::Release);
        self.drain_all_discard();
        for ring in self.rings.read().iter() {
            ring.space.notify_all();
        }
        self.nudge_workers();
    }

    /// Whether the worker pool is gone (submissions must fail).
    pub(crate) fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Acquire)
    }

    /// Shuts the plane down: workers drain what is queued, then exit.
    pub(crate) fn close(&self) {
        self.closed.store(true, Ordering::Release);
        self.nudge_workers();
    }

    /// Wakes every parked worker (retired-ring pruning, close, death).
    pub(crate) fn nudge_workers(&self) {
        let drained: Vec<_> = {
            let mut parked = self.parked.lock();
            self.sleepers.fetch_sub(parked.len(), Ordering::SeqCst);
            parked.drain(..).collect()
        };
        for (_, thread) in drained {
            thread.unpark();
        }
    }

    // ---- observability ----

    /// Batches claimed outside the claiming worker's affinity pass.
    pub(crate) fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    /// Batches claimed inside the claiming worker's affinity pass.
    pub(crate) fn affinity_hits(&self) -> u64 {
        self.affinity_hits.load(Ordering::Relaxed)
    }

    /// Worker parks actually entered.
    pub(crate) fn parks(&self) -> u64 {
        self.parks.load(Ordering::Relaxed)
    }

    /// Sleepers unparked by a producer's recruit wake.
    pub(crate) fn wakes(&self) -> u64 {
        self.wakes.load(Ordering::Relaxed)
    }

    /// Recruiting CAS attempts that lost to an in-flight recruit.
    pub(crate) fn recruit_cas_fails(&self) -> u64 {
        self.recruit_cas_fails.load(Ordering::Relaxed)
    }

    /// A per-ring observability sample across every registered ring still
    /// on the scan path.
    pub(crate) fn ring_stats(&self) -> Vec<RingStats> {
        self.rings
            .read()
            .iter()
            .map(|r| RingStats {
                pref: r.pref,
                occupancy: r.occupancy.load(Ordering::Relaxed),
                pushed: r.pushed.load(Ordering::Relaxed),
                highwater: r.highwater.load(Ordering::Relaxed),
                retired: r.retired.load(Ordering::Acquire),
            })
            .collect()
    }

    /// Producer rings ever registered with this plane.
    pub(crate) fn rings_registered(&self) -> u64 {
        self.rings_registered.load(Ordering::Relaxed)
    }

    /// Highest trace occupancy ever observed on one ring at push time.
    pub(crate) fn occupancy_highwater(&self) -> u64 {
        self.occupancy_highwater.load(Ordering::Relaxed)
    }

    /// Pushes that found their ring full and had to wait.
    pub(crate) fn backpressure_stalls(&self) -> u64 {
        self.backpressure_stalls.load(Ordering::Relaxed)
    }

    /// Traces currently queued across all rings.
    pub(crate) fn current_occupancy(&self) -> u64 {
        self.rings.read().iter().map(|r| r.occupancy()).sum()
    }

    /// Rings currently registered (live or retired-but-undrained).
    pub(crate) fn rings_live(&self) -> usize {
        self.rings.read().len()
    }
}

/// RAII guard a worker thread holds for its whole life: the drop (normal
/// exit or unwinding panic) decrements the live-worker count, and the last
/// one out marks the plane dead.
pub(crate) struct WorkerGuard<T: Send> {
    plane: Arc<IngestPlane<T>>,
}

impl<T: Send> WorkerGuard<T> {
    pub(crate) fn new(plane: Arc<IngestPlane<T>>) -> Self {
        Self { plane }
    }
}

impl<T: Send> Drop for WorkerGuard<T> {
    fn drop(&mut self) {
        if self.plane.workers_alive.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.plane.mark_dead();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;

    /// No interleaving of producers registering, pushing, and exiting with
    /// concurrent stealing consumers loses or duplicates a batch.
    #[test]
    fn no_lost_or_duplicated_batches_under_producer_exit_races() {
        const PRODUCERS: u64 = 4;
        const PER_PRODUCER: u64 = 500;
        let plane: Arc<IngestPlane<u64>> = Arc::new(IngestPlane::new(2, 4));
        let seen = Mutex::new(HashSet::new());
        std::thread::scope(|s| {
            for p in 0..PRODUCERS {
                let plane = plane.clone();
                s.spawn(move || {
                    // Fresh ring per producer; retired the moment the
                    // producer is done — the exit race under test.
                    let ring = plane.register_ring();
                    for i in 0..PER_PRODUCER {
                        plane.push(&ring, p * PER_PRODUCER + i, 1).unwrap();
                    }
                    ring.retire();
                });
            }
            for w in 0..2 {
                let plane = plane.clone();
                let seen = &seen;
                s.spawn(move || {
                    while let Some((v, n)) = plane.next_batch(w) {
                        assert_eq!(n, 1);
                        assert!(seen.lock().insert(v), "batch {v} delivered twice");
                    }
                });
            }
            // Producers finish first (scope joins in spawn order is not
            // guaranteed, so poll): close once everything is accounted for.
            while seen.lock().len() < (PRODUCERS * PER_PRODUCER) as usize {
                std::thread::yield_now();
            }
            plane.close();
        });
        assert_eq!(seen.lock().len(), (PRODUCERS * PER_PRODUCER) as usize);
        assert_eq!(plane.current_occupancy(), 0);
        assert_eq!(plane.rings_registered(), PRODUCERS);
    }

    /// A full ring blocks its producer (counting the stall) until a consumer
    /// frees a slot.
    #[test]
    fn full_ring_backpressures_the_producer() {
        let plane: Arc<IngestPlane<u32>> = Arc::new(IngestPlane::new(1, 1));
        let ring = plane.register_ring();
        plane.push(&ring, 0, 1).unwrap();
        let pushed = Arc::new(AtomicBool::new(false));
        let blocked = {
            let plane = plane.clone();
            let ring = ring.clone();
            let pushed = pushed.clone();
            std::thread::spawn(move || {
                plane.push(&ring, 1, 1).unwrap();
                pushed.store(true, Ordering::Release);
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        assert!(!pushed.load(Ordering::Acquire), "push into a full ring must block");
        assert!(plane.backpressure_stalls() >= 1);
        let (first, _) = plane.try_pop(&ring).expect("first message queued");
        assert_eq!(first, 0);
        blocked.join().unwrap();
        assert!(pushed.load(Ordering::Acquire));
        let (second, _) = plane.try_pop(&ring).expect("stalled push landed");
        assert_eq!(second, 1);
    }

    /// When the last worker dies, queued messages are discarded — and each
    /// discarded message's drop guard still runs, which is how the engine's
    /// `outstanding` counter settles after a worker panic.
    #[test]
    fn dead_plane_discards_queued_messages_and_fails_pushes() {
        struct Settles(Arc<AtomicUsize>);
        impl Drop for Settles {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let settled = Arc::new(AtomicUsize::new(0));
        let plane: Arc<IngestPlane<Settles>> = Arc::new(IngestPlane::new(1, 8));
        let ring = plane.register_ring();
        for _ in 0..3 {
            plane.push(&ring, Settles(settled.clone()), 1).unwrap();
        }
        // The only worker exits (as a panic would): everything settles.
        drop(WorkerGuard::new(plane.clone()));
        assert!(plane.is_dead());
        assert_eq!(settled.load(Ordering::SeqCst), 3, "queued messages must settle");
        let err = plane.push(&ring, Settles(settled.clone()), 1);
        assert_eq!(err.unwrap_err(), PlaneClosed);
        assert_eq!(settled.load(Ordering::SeqCst), 4, "rejected message settles too");
    }

    /// A producer stalled on a full ring is released with an error when the
    /// worker pool dies — a blocked submit must not hang forever.
    #[test]
    fn worker_death_unblocks_a_stalled_producer() {
        let plane: Arc<IngestPlane<u32>> = Arc::new(IngestPlane::new(1, 1));
        let ring = plane.register_ring();
        plane.push(&ring, 0, 1).unwrap();
        let stalled = {
            let plane = plane.clone();
            let ring = ring.clone();
            std::thread::spawn(move || plane.push(&ring, 1, 1))
        };
        std::thread::sleep(Duration::from_millis(10));
        drop(WorkerGuard::new(plane.clone()));
        assert_eq!(stalled.join().unwrap(), Err(PlaneClosed));
    }

    /// Retired, drained rings disappear from the scan path; undrained ones
    /// survive until their messages are claimed.
    #[test]
    fn retired_rings_are_pruned_once_drained() {
        let plane: Arc<IngestPlane<u32>> = Arc::new(IngestPlane::new(1, 8));
        let ring = plane.register_ring();
        plane.push(&ring, 7, 1).unwrap();
        ring.retire();
        drop(ring);
        plane.prune_retired();
        assert_eq!(plane.rings_live(), 1, "undrained ring must survive pruning");
        let (v, _) = plane.next_batch(0).expect("retired ring still drains");
        assert_eq!(v, 7);
        plane.prune_retired();
        assert_eq!(plane.rings_live(), 0, "drained retired ring is pruned");
    }

    /// Affinity: a lone preferred worker claims without steals; a foreign
    /// worker's claims are counted.
    #[test]
    fn steals_are_counted_only_for_foreign_claims() {
        let plane: Arc<IngestPlane<u32>> = Arc::new(IngestPlane::new(2, 8));
        let ring = plane.register_ring(); // pref = 0
        plane.push(&ring, 1, 1).unwrap();
        assert!(plane.try_claim(0).is_some());
        assert_eq!(plane.steals(), 0, "affinity claim is not a steal");
        plane.push(&ring, 2, 1).unwrap();
        assert!(plane.try_claim(1).is_some());
        assert_eq!(plane.steals(), 1, "foreign claim is a steal");
        assert_eq!(plane.affinity_hits(), 1, "only the first claim was on-affinity");
    }

    /// Per-ring samples track pushes, occupancy, and the high-water mark.
    #[test]
    fn ring_stats_sample_push_and_highwater() {
        let plane: Arc<IngestPlane<u32>> = Arc::new(IngestPlane::new(2, 8));
        let a = plane.register_ring();
        let b = plane.register_ring();
        plane.push(&a, 1, 3).unwrap();
        plane.push(&a, 2, 2).unwrap();
        plane.push(&b, 3, 1).unwrap();
        assert!(plane.try_claim(0).is_some());
        let stats = plane.ring_stats();
        assert_eq!(stats.len(), 2);
        let sa = stats.iter().find(|s| s.pref == 0).unwrap();
        let sb = stats.iter().find(|s| s.pref == 1).unwrap();
        assert_eq!(sa.pushed, 2);
        assert_eq!(sa.highwater, 5, "high-water survives the claim");
        assert_eq!(sa.occupancy, 2, "one 3-trace batch claimed");
        assert!(!sa.retired);
        assert_eq!((sb.pushed, sb.occupancy, sb.highwater), (1, 1, 1));
        a.retire();
        assert!(plane.ring_stats().iter().any(|s| s.retired));
    }

    /// A parked worker records the park, and the producer wake that recruits
    /// it is counted; a second ready batch while the recruit is still in
    /// flight records a recruiting-CAS loss instead of a second wake.
    #[test]
    fn parker_counters_track_parks_wakes_and_recruit_losses() {
        let plane: Arc<IngestPlane<u32>> = Arc::new(IngestPlane::new(1, 8));
        let ring = plane.register_ring();
        let worker = {
            let plane = plane.clone();
            std::thread::spawn(move || {
                let mut got = 0u32;
                while plane.next_batch(0).is_some() {
                    got += 1;
                }
                got
            })
        };
        // Wait until the worker is actually parked, then feed it.
        while plane.sleepers.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now();
        }
        plane.push(&ring, 1, 1).unwrap();
        while plane.pending.load(Ordering::SeqCst) > 0 {
            std::thread::yield_now();
        }
        plane.close();
        assert_eq!(worker.join().unwrap(), 1);
        assert!(plane.parks() >= 1, "the worker parked at least once");

        // Wake accounting, driven deterministically: enlist this thread as a
        // sleeper, then a wake must pop it and count exactly once.
        let plane: Arc<IngestPlane<u32>> = Arc::new(IngestPlane::new(1, 8));
        plane.parked.lock().push((0, std::thread::current()));
        plane.sleepers.store(1, Ordering::SeqCst);
        plane.wake_one();
        assert_eq!(plane.wakes(), 1, "popping a sleeper counts one wake");
        plane.wake_one();
        assert_eq!(plane.wakes(), 1, "an empty stack wakes (and counts) nothing");

        // Recruit-loss path: with the recruiting flag pre-claimed and a
        // sleeper enlisted, a push whose backlog exceeds the awake count
        // must count a CAS loss rather than wake anyone.
        let plane: Arc<IngestPlane<u32>> = Arc::new(IngestPlane::new(1, 8));
        let ring = plane.register_ring();
        plane.recruiting.store(true, Ordering::SeqCst);
        plane.sleepers.store(1, Ordering::SeqCst);
        plane.push(&ring, 2, 1).unwrap();
        assert_eq!(plane.recruit_cas_fails(), 1);
        assert_eq!(plane.wakes(), 0, "a lost recruit CAS must not wake");
    }
}
