use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::Instant;

use parking_lot::{Condvar, Mutex};
use pmtest_obs::{EventLog, ScrapeServer, SpanHandle, TelemetrySnapshot};
use pmtest_trace::packed::decode_all;
use pmtest_trace::{
    ArenaPool, BufferPool, FlightRecorder, LocResolver, PackedEntry, Trace, TraceArena, TraceStats,
};

use crate::bundle::{capture_step, BundleReason, DiagnosisBundle};
use crate::cache::{
    CachedVerdict, VerdictCache, VerdictCacheConfig, VerdictCacheStats, WorkerCache,
};
use crate::checker::{check_packed_with, packed_clean, CheckerScratch, TraceChecker};
use crate::diag::{Report, Severity, TraceReport};
use crate::ingest::{IngestPlane, ProducerRing, WorkerGuard};
use crate::model::{BuiltinModel, PersistencyModel, X86Model};
use crate::telemetry::{EngineTelemetry, Stage, TelemetryConfig};

/// Configuration of the checking engine.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// The persistency model whose checking rules to apply.
    pub model: Arc<dyn PersistencyModel>,
    /// Number of worker threads (the paper uses one unless stated, §6.1;
    /// Fig. 12b scales this up).
    pub workers: usize,
    /// Per-producer ring depth, in *batches* (rounded up to a power of two
    /// internally). Bounding the rings keeps memory finite and reproduces
    /// the paper's behaviour that a saturated checking pipeline
    /// backpressures the program (Fig. 12a).
    pub queue_capacity: usize,
    /// What the engine records beyond its always-on counters (latency
    /// histograms, the structured event ring). Defaults to everything off.
    pub telemetry: TelemetryConfig,
    /// Retained for compatibility with replay harnesses (the differential
    /// fuzzer's replay mode). The sharded ingest plane already gives every
    /// producer thread its own FIFO ring — each producer's batches are
    /// claimed in submission order — and reports are sorted by trace id
    /// regardless of which worker checked what, so results are reproducible
    /// with or without this knob. It no longer changes scheduling.
    pub deterministic_dispatch: bool,
    /// The content-addressed verdict cache (see [`crate::cache`]). Off by
    /// default: the default configuration keeps measuring — and the golden
    /// suites keep pinning — the uncached path.
    pub verdict_cache: VerdictCacheConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            model: Arc::new(X86Model::new()),
            workers: 1,
            queue_capacity: 256,
            telemetry: TelemetryConfig::off(),
            deterministic_dispatch: false,
            verdict_cache: VerdictCacheConfig::default(),
        }
    }
}

/// One message on the ingest plane: a single trace, a batch of traces, or a
/// whole record arena.
///
/// The single-trace variant keeps the unbatched path (the paper's default)
/// free of the extra `Vec` a one-element batch would allocate; the arena
/// variant is the batched session's zero-copy handoff — many traces, one
/// contiguous buffer, one pointer move.
enum TraceBatch {
    One(Trace),
    Many(Vec<Trace>),
    Arena(TraceArena),
}

impl TraceBatch {
    fn len(&self) -> u64 {
        match self {
            TraceBatch::One(_) => 1,
            TraceBatch::Many(traces) => traces.len() as u64,
            TraceBatch::Arena(arena) => arena.sealed() as u64,
        }
    }
}

/// What actually travels on a producer ring: the traces plus their dispatch
/// accounting. The accounting settles on drop, so the `outstanding` counter
/// stays consistent no matter how the batch dies — checked normally,
/// abandoned mid-batch by a panicking checker, or discarded from a dead
/// plane's rings after the last worker exits.
struct BatchMsg {
    traces: TraceBatch,
    accounting: BatchAccounting,
    /// Send time, for the dispatch-latency histogram. `None` unless the
    /// telemetry timing layer is on — reading the clock per submit would
    /// otherwise dominate short traces.
    submitted: Option<Instant>,
}

/// Drop-guard for one dispatched batch. Dropping it marks the batch's traces
/// as no longer outstanding, waking idle waiters if it was the last work in
/// flight.
struct BatchAccounting {
    shared: Arc<Shared>,
    n: u64,
}

impl Drop for BatchAccounting {
    fn drop(&mut self) {
        self.shared.retire(self.n);
    }
}

/// Error returned by [`Engine::submit`] / [`Engine::submit_batch`] /
/// [`Engine::submit_arena`] when the worker pool is no longer accepting
/// traces — its threads have terminated, either because the engine was shut
/// down or because a worker panicked.
///
/// The submitted traces are dropped; results already collected remain
/// available through [`Engine::report`] / [`Engine::take_report`]. Those
/// calls stay safe after a worker death: every dispatched batch settles its
/// idle-tracking accounting even if a panicking checker abandons it or the
/// dying worker pool discards it from a ring, so the report barrier cannot
/// hang on traces that will never be checked.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SubmitError;

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("checking engine is no longer accepting traces (workers terminated)")
    }
}

impl std::error::Error for SubmitError {}

/// Per-producer ring depth (in batches) that [`SessionBuilder`] derives when
/// none is configured explicitly: sized so the pipeline buffers roughly the
/// same number of *traces* regardless of batch size.
///
/// The engine's historical default of 256 was tuned for unbatched
/// submission. A batched session multiplies it: 256 batches of 32 traces is
/// an 8192-trace pipeline whose memory high-water dwarfs the checking
/// backlog it buys, while a *fixed* small depth starves the unbatched path.
/// Deriving `256 / batch_capacity` (capped at the historical 256) keeps the
/// buffered trace count — and therefore backpressure onset — roughly
/// consistent across batch sizes. The floor is 32 batches: below that, a
/// producer on a busy host fills its ring faster than a worker gets
/// scheduled to drain it, and every fill is a millisecond-scale
/// backpressure stall — a few hundred KiB of extra arena capacity buys back
/// the whole stall budget. See DESIGN.md §12–13.
///
/// [`SessionBuilder`]: crate::SessionBuilder
#[must_use]
pub fn derived_queue_capacity(batch_capacity: usize) -> usize {
    (256 / batch_capacity.max(1)).clamp(32, 256)
}

/// Pool of recycled [`CheckerScratch`] instances shared by the workers.
///
/// A worker takes one scratch per received batch and returns it afterwards,
/// so the pool never holds more instances than there are workers — but the
/// shadow memory, transaction log tree, and interner *allocations* inside
/// each instance survive indefinitely. Together with the entry
/// [`BufferPool`] this removes the last per-trace allocation from the
/// steady-state checking path.
struct ShadowPool {
    // Boxed so acquire/release move one pointer under the lock, not the
    // whole scratch struct.
    #[allow(clippy::vec_box)]
    free: Mutex<Vec<Box<CheckerScratch>>>,
    /// Acquisitions served by recycling a pooled instance.
    recycled: AtomicU64,
    /// Acquisitions that had to allocate a fresh instance.
    fresh: AtomicU64,
    /// Instances retained when released; beyond this they are dropped.
    cap: usize,
}

impl ShadowPool {
    fn new(cap: usize) -> Self {
        Self {
            free: Mutex::new(Vec::with_capacity(cap)),
            recycled: AtomicU64::new(0),
            fresh: AtomicU64::new(0),
            cap,
        }
    }

    fn acquire(&self) -> Box<CheckerScratch> {
        if let Some(scratch) = self.free.lock().pop() {
            self.recycled.fetch_add(1, Ordering::Relaxed);
            scratch
        } else {
            self.fresh.fetch_add(1, Ordering::Relaxed);
            Box::default()
        }
    }

    fn release(&self, scratch: Box<CheckerScratch>) {
        let mut free = self.free.lock();
        if free.len() < self.cap {
            free.push(scratch);
        }
    }

    /// (recycled, fresh) acquisition counts.
    fn counts(&self) -> (u64, u64) {
        (self.recycled.load(Ordering::Relaxed), self.fresh.load(Ordering::Relaxed))
    }
}

/// The decoupled checking engine: trace batches flow through a sharded
/// ingest plane to a pool of worker threads (Fig. 8).
///
/// The program under test keeps executing while workers validate completed
/// traces — this pipelining is the second half of the paper's performance
/// story (§3.2, "Runtime Testing"). [`Engine::wait_idle`] is the
/// `PMTest_GET_RESULT` barrier: it blocks until every submitted trace has
/// been checked.
///
/// Four mechanisms keep the submission path cheap (Fig. 12's scalability
/// depends on all of them):
///
/// * **Per-producer SPSC rings** — each submitting thread registers its own
///   bounded ring on first submit; a push is one uncontended slot write plus
///   a tail store, with no cross-producer channel lock. Workers drain their
///   affinity rings first and *steal* from the rest when idle, so the active
///   worker set tracks the offered load. See `crate::ingest` and DESIGN.md
///   §13.
/// * **Arena batches** — a batched session records straight into a
///   [`TraceArena`] of compact packed records; [`submit_arena`](Self::submit_arena)
///   moves the whole batch as one pointer handoff, and workers check the
///   packed records in place without decoding them into `Entry` vectors.
/// * **Sharded results** — each worker appends finished [`TraceReport`]s to
///   its own shard; shards merge only when a report is requested, so workers
///   never contend on a global results lock.
/// * **Storage recycling** — workers return entry buffers, arenas, and
///   checker scratch state to pools that sessions and later batches draw
///   from, keeping the steady-state path off the allocator.
///
/// # Examples
///
/// ```
/// use pmtest_core::{Engine, EngineConfig};
/// use pmtest_trace::{Event, Trace};
/// use pmtest_interval::ByteRange;
///
/// let engine = Engine::new(EngineConfig::default());
/// let mut trace = Trace::new(0);
/// let r = ByteRange::with_len(0, 8);
/// trace.push(Event::Write(r).here());
/// trace.push(Event::IsPersist(r).here()); // will FAIL
/// engine.submit(trace).unwrap();
/// let report = engine.take_report();
/// assert_eq!(report.fail_count(), 1);
/// ```
pub struct Engine {
    shared: Arc<Shared>,
    workers: usize,
    queue_capacity: usize,
    handles: Mutex<Vec<JoinHandle<()>>>,
    /// Live HTTP scrape endpoint, present when
    /// [`TelemetryConfig::scrape_addr`] is set. Holds only a [`Weak`] back
    /// to [`Shared`], so it never keeps a dropped engine's state alive; its
    /// drop (after the workers join) stops the serving thread.
    scrape: Option<ScrapeServer>,
}

struct Shared {
    /// Traces submitted but not yet checked. Producers only touch this
    /// atomic (plus their own ring), keeping `submit` off the result shards.
    outstanding: AtomicU64,
    /// The sharded ingest plane: per-producer rings plus the worker
    /// wake/steal protocol.
    plane: Arc<IngestPlane<BatchMsg>>,
    /// Per-worker result shards; worker `i` writes only `shards[i]`.
    shards: Vec<Mutex<Vec<TraceReport>>>,
    /// Results merged out of the shards so far, kept sorted by trace id.
    /// Drained by [`Engine::take_report`], appended to by every report
    /// request — so [`Engine::report`] clones an already-built [`Report`]
    /// and [`Engine::with_report`] borrows it without copying at all.
    collected: Mutex<Report>,
    /// Record buffers recycled between workers (release) and sessions
    /// (acquire) on the unbatched path.
    pool: Arc<BufferPool>,
    /// Batch arenas recycled between workers and batched sessions.
    arena_pool: Arc<ArenaPool>,
    /// Checker scratch state (shadow memory, tx scope, interner) recycled
    /// across batches, one instance held per busy worker.
    shadow_pool: ShadowPool,
    /// Shared L2 of the content-addressed verdict cache; `None` unless
    /// [`VerdictCacheConfig::enabled`]. Workers keep their L1s privately.
    verdict_cache: Option<VerdictCache>,
    idle_lock: Mutex<()>,
    idle: Condvar,
    traces_checked: AtomicU64,
    entries_processed: AtomicU64,
    diagnostics: AtomicU64,
    batches_submitted: AtomicU64,
    traces_submitted: AtomicU64,
    /// Typed metric handles (histograms, per-kind diagnostic counters, the
    /// event ring). Always present; whether clocks are read depends on
    /// [`TelemetryConfig::timing`].
    telemetry: EngineTelemetry,
    /// Per-worker flight recorders. Empty unless
    /// [`TelemetryConfig::recorder`] is on, so the off path never touches
    /// them (`recorders.get(idx)` is `None`).
    recorders: Vec<FlightRecorder>,
    /// Diagnosis bundles captured on ERROR, drained by
    /// [`Engine::take_bundles`]. Bounded at [`MAX_BUNDLES`]; captures past
    /// the bound increment `bundles_dropped` instead of growing the queue.
    bundles: Mutex<Vec<DiagnosisBundle>>,
    /// ERROR bundles discarded because the bundle queue was full.
    bundles_dropped: AtomicU64,
    /// Name of the configured persistency model, for bundle headers built
    /// outside the workers ([`Engine::capture_bundle`]).
    model_name: String,
    /// Crash points visited by exploration sweeps recorded on this engine
    /// ([`Engine::record_exploration`]).
    explore_points: AtomicU64,
    /// Crash images run through a recovery procedure.
    explore_images: AtomicU64,
    /// Crash points served off shared (incrementally advanced) prefix state.
    explore_share_hits: AtomicU64,
    /// Crash points that paid a from-scratch rescan.
    explore_share_misses: AtomicU64,
}

/// Most ERROR bundles retained between [`Engine::take_bundles`] drains. One
/// failing checker in a loop would otherwise buffer a window of every
/// iteration; the first failures are the interesting ones.
const MAX_BUNDLES: usize = 16;

/// One producer thread's registration with one engine's ingest plane. Lives
/// in thread-local storage; the drop (thread exit) retires the ring so idle
/// workers can prune it once drained.
struct RingSlot {
    plane_id: u64,
    ring: Arc<ProducerRing<BatchMsg>>,
    /// Weak so a thread's registry never keeps a dropped engine alive.
    plane: Weak<IngestPlane<BatchMsg>>,
}

impl Drop for RingSlot {
    fn drop(&mut self) {
        self.ring.retire();
        if let Some(plane) = self.plane.upgrade() {
            // Wake parked workers so a retired-but-nonempty ring drains and
            // the registry entry gets pruned.
            plane.nudge_workers();
        }
    }
}

thread_local! {
    /// This thread's producer rings, one per live engine it has submitted
    /// to. Linear-scanned: a thread talks to one engine in practice.
    static RINGS: RefCell<Vec<RingSlot>> = const { RefCell::new(Vec::new()) };
}

impl Shared {
    /// Marks `n` traces as no longer outstanding, waking idle waiters when
    /// the count reaches zero. Runs from [`BatchAccounting`]'s drop — after
    /// a worker finishes a batch, or when an unchecked batch is discarded.
    fn retire(&self, n: u64) {
        if self.outstanding.fetch_sub(n, Ordering::AcqRel) == n {
            // Last outstanding trace: wake any waiter. The brief lock pairs
            // with the wait in `wait_idle`.
            drop(self.idle_lock.lock());
            self.idle.notify_all();
        }
    }

    /// Lifetime counters; see [`Engine::stats`].
    fn stats(&self) -> EngineStats {
        let plane = &self.plane;
        EngineStats {
            traces_checked: self.traces_checked.load(Ordering::Relaxed),
            entries_processed: self.entries_processed.load(Ordering::Relaxed),
            diagnostics: self.diagnostics.load(Ordering::Relaxed),
            batches_submitted: self.batches_submitted.load(Ordering::Relaxed),
            traces_submitted: self.traces_submitted.load(Ordering::Relaxed),
            queue_highwater: plane.occupancy_highwater(),
            backpressure_stalls: plane.backpressure_stalls(),
            steals: plane.steals(),
            rings_registered: plane.rings_registered(),
            affinity_hits: plane.affinity_hits(),
            parks: plane.parks(),
            wakes: plane.wakes(),
            recruit_cas_fails: plane.recruit_cas_fails(),
        }
    }

    /// Snapshot assembly; see [`Engine::telemetry_snapshot`]. Lives on
    /// `Shared` so the scrape endpoint can serve live snapshots through a
    /// [`Weak`] without holding the engine itself.
    fn telemetry_snapshot(&self) -> TelemetrySnapshot {
        let mut snap = self.telemetry.snapshot();
        let stats = self.stats();
        snap.push_counter("engine_traces_checked", &[], stats.traces_checked);
        snap.push_counter("engine_entries_processed", &[], stats.entries_processed);
        snap.push_counter("engine_diagnostics", &[], stats.diagnostics);
        snap.push_counter("engine_batches_submitted", &[], stats.batches_submitted);
        snap.push_counter("engine_traces_submitted", &[], stats.traces_submitted);
        snap.push_counter("engine_queue_highwater", &[], stats.queue_highwater);
        snap.push_counter("engine_backpressure_stalls", &[], stats.backpressure_stalls);
        snap.push_counter("engine_ring_steals", &[], stats.steals);
        snap.push_counter("engine_ring_affinity_hits", &[], stats.affinity_hits);
        snap.push_counter("engine_rings_registered", &[], stats.rings_registered);
        snap.push_counter("engine_parker_parks", &[], stats.parks);
        snap.push_counter("engine_parker_wakes", &[], stats.wakes);
        snap.push_counter("engine_parker_recruit_cas_fails", &[], stats.recruit_cas_fails);
        snap.push_gauge("engine_workers", &[], self.shards.len() as f64);
        let plane = &self.plane;
        snap.push_gauge("engine_ring_occupancy", &[], plane.current_occupancy() as f64);
        snap.push_gauge("engine_rings_live", &[], plane.rings_live() as f64);
        for (i, ring) in plane.ring_stats().iter().enumerate() {
            let idx = i.to_string();
            let labels: &[(&str, &str)] = &[("ring", &idx)];
            snap.push_gauge("engine_ring_occupancy_traces", labels, ring.occupancy as f64);
            snap.push_gauge("engine_ring_highwater", labels, ring.highwater as f64);
            snap.push_counter("engine_ring_pushed", labels, ring.pushed);
        }
        let pool = self.pool.stats();
        snap.push_counter("pool_recycled", &[], pool.recycled);
        snap.push_counter("pool_fresh", &[], pool.fresh);
        snap.push_counter("pool_released", &[], pool.released);
        snap.push_counter("pool_dropped", &[], pool.dropped);
        snap.push_gauge("pool_hit_rate", &[], pool.hit_rate());
        let arena = self.arena_pool.stats();
        snap.push_counter("arena_pool_recycled", &[], arena.recycled);
        snap.push_counter("arena_pool_fresh", &[], arena.fresh);
        snap.push_counter("arena_pool_released", &[], arena.released);
        snap.push_counter("arena_pool_dropped", &[], arena.dropped);
        snap.push_gauge("arena_pool_hit_rate", &[], arena.hit_rate());
        let (recycled, fresh) = self.shadow_pool.counts();
        snap.push_counter("shadow_pool_recycled", &[], recycled);
        snap.push_counter("shadow_pool_fresh", &[], fresh);
        let acquisitions = recycled + fresh;
        snap.push_gauge(
            "shadow_pool_hit_rate",
            &[],
            if acquisitions == 0 { 0.0 } else { recycled as f64 / acquisitions as f64 },
        );
        if let Some(cache) = &self.verdict_cache {
            let stats = cache.stats();
            snap.push_counter("verdict_cache_l1_hits", &[], stats.l1_hits);
            snap.push_counter("verdict_cache_l2_hits", &[], stats.l2_hits);
            snap.push_counter("verdict_cache_misses", &[], stats.misses);
            snap.push_counter("verdict_cache_bypasses", &[], stats.bypasses);
            snap.push_counter("verdict_cache_inserts", &[], stats.inserts);
            snap.push_counter("verdict_cache_evictions", &[], stats.evictions);
            snap.push_gauge("verdict_cache_bytes_resident", &[], stats.bytes_resident as f64);
            snap.push_gauge("verdict_cache_entries", &[], stats.entries as f64);
            snap.push_gauge("verdict_cache_hit_rate", &[], stats.hit_rate());
        }
        let hits = self.explore_share_hits.load(Ordering::Relaxed);
        let misses = self.explore_share_misses.load(Ordering::Relaxed);
        snap.push_counter(
            "crash_points_enumerated",
            &[],
            self.explore_points.load(Ordering::Relaxed),
        );
        snap.push_counter("images_checked", &[], self.explore_images.load(Ordering::Relaxed));
        snap.push_counter("prefix_share_hits", &[], hits);
        snap.push_counter("prefix_share_misses", &[], misses);
        snap.push_gauge(
            "prefix_share_hit_rate",
            &[],
            if hits + misses == 0 { 0.0 } else { hits as f64 / (hits + misses) as f64 },
        );
        snap
    }
}

/// Lifetime counters of an [`Engine`] (useful for the benchmark harnesses
/// and for sizing trace batches).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Traces fully checked.
    pub traces_checked: u64,
    /// Trace entries processed across all traces.
    pub entries_processed: u64,
    /// Diagnostics (FAIL + WARN) produced.
    pub diagnostics: u64,
    /// Batches accepted by the submit methods (a bare `submit` counts as a
    /// batch of one).
    pub batches_submitted: u64,
    /// Traces accepted across all batches. `traces_submitted /
    /// batches_submitted` is the mean batch size.
    pub traces_submitted: u64,
    /// Highest number of traces ever queued on a single producer ring — how
    /// deep the checking pipeline ran behind the program.
    pub queue_highwater: u64,
    /// Times a submission found its ring full and had to block until a
    /// worker caught up (Fig. 12a's backpressure regime).
    pub backpressure_stalls: u64,
    /// Batches claimed by a worker outside its affinity pass — the
    /// work-stealing traffic between producers and non-preferred workers.
    pub steals: u64,
    /// Producer rings ever registered with the ingest plane (one per
    /// submitting thread, plus temporaries for submissions during TLS
    /// teardown).
    pub rings_registered: u64,
    /// Batches claimed by a worker inside its affinity pass — the complement
    /// of `steals`.
    pub affinity_hits: u64,
    /// Worker parks actually entered (a worker found no work and slept).
    pub parks: u64,
    /// Parked workers recruited awake by a producer push.
    pub wakes: u64,
    /// Recruiting-CAS attempts that lost to an already-in-flight recruit —
    /// how often the single-recruit gate damped a would-be wake.
    pub recruit_cas_fails: u64,
}

impl EngineStats {
    /// Mean traces per submitted batch (0 if nothing was submitted).
    #[must_use]
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches_submitted == 0 {
            0.0
        } else {
            self.traces_submitted as f64 / self.batches_submitted as f64
        }
    }
}

impl Engine {
    /// Spawns the worker pool.
    ///
    /// # Panics
    ///
    /// Panics if `config.workers` or `config.queue_capacity` is zero.
    #[must_use]
    pub fn new(config: EngineConfig) -> Self {
        assert!(config.workers > 0, "engine needs at least one worker");
        assert!(config.queue_capacity > 0, "engine queue capacity must be positive");
        let shared = Arc::new(Shared {
            outstanding: AtomicU64::new(0),
            plane: Arc::new(IngestPlane::new(config.workers, config.queue_capacity)),
            shards: (0..config.workers).map(|_| Mutex::new(Vec::new())).collect(),
            collected: Mutex::new(Report::default()),
            pool: Arc::new(BufferPool::new()),
            arena_pool: Arc::new(ArenaPool::new()),
            shadow_pool: ShadowPool::new(config.workers),
            verdict_cache: config
                .verdict_cache
                .enabled
                .then(|| VerdictCache::new(&config.verdict_cache)),
            idle_lock: Mutex::new(()),
            idle: Condvar::new(),
            traces_checked: AtomicU64::new(0),
            entries_processed: AtomicU64::new(0),
            diagnostics: AtomicU64::new(0),
            batches_submitted: AtomicU64::new(0),
            traces_submitted: AtomicU64::new(0),
            telemetry: EngineTelemetry::new(config.workers, &config.telemetry),
            recorders: if config.telemetry.recorder {
                (0..config.workers)
                    .map(|_| FlightRecorder::new(config.telemetry.recorder_capacity))
                    .collect()
            } else {
                Vec::new()
            },
            bundles: Mutex::new(Vec::new()),
            bundles_dropped: AtomicU64::new(0),
            model_name: config.model.name().to_owned(),
            explore_points: AtomicU64::new(0),
            explore_images: AtomicU64::new(0),
            explore_share_hits: AtomicU64::new(0),
            explore_share_misses: AtomicU64::new(0),
        });
        let mut handles = Vec::with_capacity(config.workers);
        for i in 0..config.workers {
            let shared = shared.clone();
            let model = config.model.clone();
            let handle = std::thread::Builder::new()
                .name(format!("pmtest-worker-{i}"))
                .spawn(move || worker_loop(&shared, i, &model))
                .expect("spawn pmtest worker");
            handles.push(handle);
        }
        // The scrape endpoint captures only a weak reference: an engine
        // being torn down answers its last scrapes with an empty snapshot
        // instead of keeping `Shared` alive.
        let scrape = config.telemetry.scrape_addr.as_deref().map(|addr| {
            let weak = Arc::downgrade(&shared);
            let source: pmtest_obs::SnapshotSource = Arc::new(move || {
                weak.upgrade().map(|s| s.telemetry_snapshot()).unwrap_or_default()
            });
            ScrapeServer::bind(addr, source)
                .unwrap_or_else(|e| panic!("bind telemetry scrape endpoint {addr}: {e}"))
        });
        Self {
            shared,
            workers: config.workers,
            queue_capacity: config.queue_capacity,
            handles: Mutex::new(handles),
            scrape,
        }
    }

    /// Number of worker threads.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Per-producer ring depth, in batches (whatever
    /// [`EngineConfig::queue_capacity`] was at construction — possibly
    /// derived from the batch size, see [`derived_queue_capacity`]; the
    /// rings themselves round up to a power of two).
    #[must_use]
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// The pool of recycled trace-record buffers. Sessions draw replacement
    /// buffers from here; workers return each checked trace's buffer.
    #[must_use]
    pub fn buffer_pool(&self) -> &Arc<BufferPool> {
        &self.shared.pool
    }

    /// The pool of recycled batch arenas. Batched sessions draw replacement
    /// arenas from here; workers return each checked batch's arena.
    #[must_use]
    pub fn arena_pool(&self) -> &Arc<ArenaPool> {
        &self.shared.arena_pool
    }

    /// Lifetime counters (never reset, even by
    /// [`take_report`](Self::take_report)).
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        self.shared.stats()
    }

    /// Counter snapshot of the verdict cache — `None` unless
    /// [`VerdictCacheConfig::enabled`] was set at construction. Hit tallies
    /// settle per worker batch, so read after [`wait_idle`](Self::wait_idle)
    /// for exact counts.
    #[must_use]
    pub fn verdict_cache_stats(&self) -> Option<VerdictCacheStats> {
        self.shared.verdict_cache.as_ref().map(VerdictCache::stats)
    }

    /// The typed metric handles shared with sessions (batch-fill histogram,
    /// flush-cause counters).
    pub(crate) fn telemetry(&self) -> &EngineTelemetry {
        &self.shared.telemetry
    }

    /// The engine's structured event log. Empty unless
    /// [`TelemetryConfig::events`] is on (or it is enabled here at runtime
    /// via [`EventLog::set_enabled`]).
    #[must_use]
    pub fn event_log(&self) -> &EventLog {
        &self.shared.telemetry.events
    }

    /// A full machine-readable snapshot of the engine's telemetry: registry
    /// metrics (per-checker latency histograms, per-kind diagnostic
    /// counters, queue-depth and worker-utilization gauges), the lifetime
    /// [`EngineStats`] counters, ingest-plane ring metrics, pool statistics,
    /// and the contents of the event ring.
    ///
    /// Export it with [`TelemetrySnapshot::to_json_lines`],
    /// [`TelemetrySnapshot::to_prometheus`], or dump it to disk via
    /// [`pmtest_obs::writer`].
    #[must_use]
    pub fn telemetry_snapshot(&self) -> TelemetrySnapshot {
        self.shared.telemetry_snapshot()
    }

    /// The address the telemetry scrape endpoint is actually serving from,
    /// when [`TelemetryConfig::scrape_addr`] was set — with port `0` in the
    /// config, this carries the OS-assigned port.
    #[must_use]
    pub fn scrape_addr(&self) -> Option<std::net::SocketAddr> {
        self.scrape.as_ref().map(ScrapeServer::local_addr)
    }

    /// Folds one exploration sweep's counters into the engine's telemetry
    /// (`crash_points_enumerated`, `images_checked`, `prefix_share_hits`,
    /// `prefix_share_misses` in [`telemetry_snapshot`](Self::telemetry_snapshot)).
    pub fn record_exploration(&self, stats: &crate::explore::ExploreStats) {
        self.shared.explore_points.fetch_add(stats.crash_points_enumerated, Ordering::Relaxed);
        self.shared.explore_images.fetch_add(stats.images_checked, Ordering::Relaxed);
        self.shared.explore_share_hits.fetch_add(stats.prefix_share_hits, Ordering::Relaxed);
        self.shared.explore_share_misses.fetch_add(stats.prefix_share_misses, Ordering::Relaxed);
    }

    /// Runs a crash-point exploration sweep ([`crate::explore::explore`])
    /// and records its counters on this engine's telemetry.
    pub fn explore(
        &self,
        sim: &pmtest_pmem::crash::CrashSim,
        proc: &dyn crate::explore::RecoveryProc,
        config: &crate::explore::ExploreConfig,
    ) -> crate::explore::ExploreReport {
        let report = crate::explore::explore(sim, proc, config);
        self.record_exploration(&report.stats);
        report
    }

    /// Exports the span buffers as Chrome trace-event JSON — load the string
    /// (saved as `*.trace.json`) in Perfetto or `chrome://tracing` to see
    /// the ship/claim/replay/merge timeline per thread. Empty (but valid)
    /// unless [`TelemetryConfig::tracing`] is on.
    #[must_use]
    pub fn chrome_trace(&self) -> String {
        pmtest_obs::trace_event::to_chrome_trace(&self.shared.telemetry.spans.snapshot())
    }

    /// One human-readable line summarizing [`telemetry_snapshot`]
    /// (Self::telemetry_snapshot): traces checked, check-latency quantiles,
    /// queue high-water, diagnostic totals.
    #[must_use]
    pub fn telemetry_summary(&self) -> String {
        crate::telemetry::summary_line(&self.telemetry_snapshot())
    }

    /// Aggregated [`TraceStats`] per worker — how checker-dense and
    /// epoch-dense each worker's share of the workload was. All zeros unless
    /// [`TelemetryConfig::timing`] is on.
    #[must_use]
    pub fn worker_trace_stats(&self) -> Vec<TraceStats> {
        self.shared.telemetry.worker_stats.iter().map(|s| *s.lock()).collect()
    }

    /// The cross-trace performance profile aggregated so far — per-site
    /// flush/fence/log counts, wasted-persist bytes, and WARN occurrences.
    /// Empty unless [`TelemetryConfig::profiling`] is on. Call after the
    /// traces of interest have been checked (e.g. after
    /// [`wait_idle`](Self::wait_idle) or a session flush).
    #[must_use]
    pub fn profile(&self) -> pmtest_obs::ProfileSnapshot {
        self.shared.telemetry.profile.snapshot()
    }

    /// Ranks [`profile`](Self::profile) into the advisor's source-located
    /// suggestions (see DESIGN.md §16). Serialize with
    /// [`AdvisorReport::to_json`](pmtest_obs::AdvisorReport::to_json) or
    /// render with `pmtest-explain --advise`.
    #[must_use]
    pub fn advisor_report(&self) -> pmtest_obs::AdvisorReport {
        pmtest_obs::AdvisorReport::from_profile(&self.profile())
    }

    /// Submits one trace for asynchronous checking.
    ///
    /// # Errors
    ///
    /// Returns [`SubmitError`] if the worker pool has terminated (the engine
    /// was shut down, or a worker panicked); the trace is dropped.
    pub fn submit(&self, trace: Trace) -> Result<(), SubmitError> {
        self.dispatch(TraceBatch::One(trace))
    }

    /// Submits a batch of traces in one ring operation, paying the dispatch
    /// cost once. An empty batch is a no-op.
    ///
    /// # Errors
    ///
    /// Returns [`SubmitError`] if the worker pool has terminated; the whole
    /// batch is dropped.
    pub fn submit_batch(&self, traces: Vec<Trace>) -> Result<(), SubmitError> {
        if traces.is_empty() {
            return Ok(());
        }
        self.dispatch(TraceBatch::Many(traces))
    }

    /// Submits a sealed record arena — the batched session's zero-copy path.
    /// Only sealed traces are checked; an arena with no seals is a no-op
    /// (any open tail it carries is dropped). The arena returns to
    /// [`arena_pool`](Self::arena_pool) once its traces are checked.
    ///
    /// # Errors
    ///
    /// Returns [`SubmitError`] if the worker pool has terminated; the whole
    /// arena is dropped.
    pub fn submit_arena(&self, arena: TraceArena) -> Result<(), SubmitError> {
        if arena.sealed() == 0 {
            return Ok(());
        }
        self.dispatch(TraceBatch::Arena(arena))
    }

    fn dispatch(&self, batch: TraceBatch) -> Result<(), SubmitError> {
        let plane = &self.shared.plane;
        if plane.is_dead() {
            return Err(SubmitError);
        }
        let n = batch.len();
        self.shared.outstanding.fetch_add(n, Ordering::AcqRel);
        let submitted = self.shared.telemetry.timing.then(Instant::now);
        // From here the accounting settles when `msg` drops — whether a
        // worker finishes it, a panicking checker abandons it, or a dead
        // plane discards it. No explicit rollback.
        let msg = BatchMsg {
            traces: batch,
            accounting: BatchAccounting { shared: self.shared.clone(), n },
            submitted,
        };
        let (ring, temporary) = self.producer_ring();
        let depth = match plane.push(&ring, msg, n) {
            Ok(depth) => depth,
            Err(_) => return Err(SubmitError),
        };
        if temporary {
            ring.retire();
            plane.nudge_workers();
        }
        if plane.is_dead() {
            // The last worker may have died — and run its final ring drain —
            // between our push landing and now. Discard our own ring so the
            // message cannot linger unclaimed; its accounting settles on
            // drop either way.
            plane.drain_discard(&ring);
            return Err(SubmitError);
        }
        if let Some(sent) = submitted {
            // Producer-side stage: building the message and landing it in
            // the ring, including any backpressure wait inside `push`.
            self.shared.telemetry.stage(Stage::RecordPush).record(sent.elapsed().as_nanos() as u64);
        }
        self.note_submitted(n, depth);
        Ok(())
    }

    /// This thread's producer ring for this engine, registering one on first
    /// use. The `bool` is true for a *temporary* ring: during thread-local
    /// teardown (a session slot flushing from its TLS destructor) the
    /// registry may already be gone, so the submission gets a one-shot ring
    /// that is retired immediately after the push.
    fn producer_ring(&self) -> (Arc<ProducerRing<BatchMsg>>, bool) {
        let plane = &self.shared.plane;
        let id = plane.plane_id();
        RINGS
            .try_with(|slots| {
                let mut slots = slots.borrow_mut();
                if let Some(slot) = slots.iter().find(|s| s.plane_id == id) {
                    return slot.ring.clone();
                }
                // Drop registrations whose engine is gone before adding one.
                slots.retain(|s| s.plane.strong_count() > 0);
                let ring = plane.register_ring();
                slots.push(RingSlot {
                    plane_id: id,
                    ring: ring.clone(),
                    plane: Arc::downgrade(plane),
                });
                ring
            })
            .map(|ring| (ring, false))
            .unwrap_or_else(|_| (plane.register_ring(), true))
    }

    /// Records a successfully delivered batch: submission counters plus the
    /// queue-depth gauge (the ring occupancy the batch landed at).
    fn note_submitted(&self, n: u64, depth: u64) {
        self.shared.batches_submitted.fetch_add(1, Ordering::Relaxed);
        self.shared.traces_submitted.fetch_add(n, Ordering::Relaxed);
        self.shared.telemetry.queue_depth.set(depth);
    }

    /// Blocks until every submitted trace has been checked
    /// (`PMTest_GET_RESULT`, §4.2).
    pub fn wait_idle(&self) {
        if self.shared.outstanding.load(Ordering::Acquire) == 0 {
            return;
        }
        let mut guard = self.shared.idle_lock.lock();
        while self.shared.outstanding.load(Ordering::Acquire) > 0 {
            self.shared.idle.wait(&mut guard);
        }
    }

    /// Merges every worker shard into the accumulated, sorted [`Report`].
    /// Callers must already hold no shard or collected lock.
    fn drain_shards(&self) -> parking_lot::MutexGuard<'_, Report> {
        let mut collected = self.shared.collected.lock();
        for shard in &self.shared.shards {
            collected.extend_traces(std::mem::take(&mut *shard.lock()));
        }
        collected
    }

    /// Waits for all outstanding traces, then returns a copy of every result
    /// so far (results keep accumulating). The accumulated report is kept
    /// merged and sorted between calls, so each call clones only once — for
    /// read-only access without even that clone, use
    /// [`with_report`](Self::with_report).
    #[must_use]
    pub fn report(&self) -> Report {
        self.wait_idle();
        self.drain_shards().clone()
    }

    /// Waits for all outstanding traces, then runs `f` on a borrow of the
    /// accumulated results — the zero-copy variant of
    /// [`report`](Self::report). Results keep accumulating; `f` must not
    /// call back into report methods (the results lock is held).
    pub fn with_report<R>(&self, f: impl FnOnce(&Report) -> R) -> R {
        self.wait_idle();
        f(&self.drain_shards())
    }

    /// Waits for all outstanding traces, then drains and returns the results.
    #[must_use]
    pub fn take_report(&self) -> Report {
        self.wait_idle();
        std::mem::take(&mut *self.drain_shards())
    }

    /// Drains the diagnosis bundles captured so far (one per ERROR trace
    /// while [`TelemetryConfig::recorder`] is on, bounded at 16 between
    /// drains — the counterexamples that matter are the first ones).
    /// Returns an empty vec when the recorder is off.
    #[must_use]
    pub fn take_bundles(&self) -> Vec<DiagnosisBundle> {
        self.wait_idle();
        std::mem::take(&mut *self.shared.bundles.lock())
    }

    /// ERROR bundles discarded because more than 16 traces failed between
    /// [`take_bundles`](Self::take_bundles) drains.
    #[must_use]
    pub fn bundles_dropped(&self) -> u64 {
        self.shared.bundles_dropped.load(Ordering::Relaxed)
    }

    /// On-demand capture: waits for the pipeline to drain, then freezes
    /// every worker's current flight-recorder window into a
    /// [`BundleReason::Manual`] bundle (one per worker that has recorded
    /// anything). Unlike the automatic ERROR path this does not require a
    /// failing checker — use it to inspect interval state of a passing run.
    /// Empty when the recorder is off.
    #[must_use]
    pub fn capture_bundle(&self) -> Vec<DiagnosisBundle> {
        self.wait_idle();
        self.shared
            .recorders
            .iter()
            .filter_map(|rec| {
                let steps = rec.window();
                let last = steps.last()?;
                Some(DiagnosisBundle::from_window(
                    &self.shared.model_name,
                    BundleReason::Manual,
                    last.trace_id,
                    Vec::new(),
                    steps,
                ))
            })
            .collect()
    }

    /// Shuts the worker pool down, returning everything checked so far
    /// (`PMTest_EXIT`, §4.2).
    ///
    /// Consumes the engine; the ingest plane closes and workers are joined.
    /// `take_report` already waits for every outstanding trace, so this
    /// performs exactly one idle wait.
    pub fn shutdown(self) -> Report {
        // Drop (after the return value is built) closes the plane and joins.
        self.take_report()
    }
}

/// Tallies a worker accumulates across one batch, settled into the shared
/// atomics with one `fetch_add` each per batch instead of per trace.
#[derive(Default)]
struct BatchTally {
    traces: u64,
    entries: u64,
    diags: u64,
}

/// One worker thread: claim batches off the ingest plane (affinity rings
/// first, then stealing), check each trace's packed records in place, and
/// file results. Exits when the plane is closed and drained; the guard marks
/// the plane dead if this is the last worker out (normal exit or panic).
fn worker_loop(shared: &Arc<Shared>, idx: usize, model: &Arc<dyn PersistencyModel>) {
    let _guard = WorkerGuard::new(shared.plane.clone());
    let fast = model.builtin();
    let mut resolver = LocResolver::new();
    let mut reports: Vec<TraceReport> = Vec::new();
    // This worker's verdict-cache front end (fingerprinter + private L1),
    // present only when the engine carries the shared L2.
    let mut wcache: Option<WorkerCache> = shared.verdict_cache.as_ref().map(|_| WorkerCache::new());
    // One span buffer per worker (tid = worker index). Registration is the
    // only allocation; with the tracing layer off the sink defers even that,
    // and every record below is one relaxed load and a taken-branch.
    let span: SpanHandle = shared.telemetry.spans.register(idx as u64);
    while let Some((msg, _n)) = shared.plane.next_batch(idx) {
        // Re-checked per batch: the sink can be toggled at runtime.
        let tracing = span.enabled();
        // Destructured so the accounting guard outlives the checking: a
        // panicking checker unwinds through it and the batch still retires
        // (otherwise `wait_idle` would block forever on the lost traces).
        let BatchMsg { traces, accounting: _accounting, submitted } = msg;
        let dequeued = submitted.map(|sent| {
            let now = Instant::now();
            let waited = now.duration_since(sent).as_nanos() as u64;
            shared.telemetry.dispatch_latency.record(waited);
            shared.telemetry.stage(Stage::RingWait).record(waited);
            now
        });
        let span_claim = tracing.then(|| span.now_ns());
        // One recycled scratch serves the whole batch; it is reset (not
        // reallocated) between traces.
        let mut scratch = shared.shadow_pool.acquire();
        let replay_start = shared.telemetry.timing.then(Instant::now);
        if let (Some(from), Some(to)) = (dequeued, replay_start) {
            shared
                .telemetry
                .stage(Stage::ClaimReplay)
                .record(to.duration_since(from).as_nanos() as u64);
        }
        let span_replay = tracing.then(|| span.now_ns());
        let mut tally = BatchTally::default();
        match traces {
            TraceBatch::One(trace) => {
                check_span(
                    shared,
                    idx,
                    model,
                    fast,
                    trace.id(),
                    trace.packed(),
                    trace.len() as u32,
                    &mut scratch,
                    &mut resolver,
                    &mut reports,
                    &mut tally,
                    wcache.as_mut(),
                );
                shared.pool.release(trace.into_packed());
            }
            TraceBatch::Many(traces) => {
                for trace in traces {
                    check_span(
                        shared,
                        idx,
                        model,
                        fast,
                        trace.id(),
                        trace.packed(),
                        trace.len() as u32,
                        &mut scratch,
                        &mut resolver,
                        &mut reports,
                        &mut tally,
                        wcache.as_mut(),
                    );
                    shared.pool.release(trace.into_packed());
                }
            }
            TraceBatch::Arena(arena) => {
                for (id, words, entries) in arena.traces() {
                    check_span(
                        shared,
                        idx,
                        model,
                        fast,
                        id,
                        words,
                        entries,
                        &mut scratch,
                        &mut resolver,
                        &mut reports,
                        &mut tally,
                        wcache.as_mut(),
                    );
                }
                shared.arena_pool.release(arena);
            }
        }
        let replay_done = shared.telemetry.timing.then(Instant::now);
        if let (Some(from), Some(to)) = (replay_start, replay_done) {
            shared.telemetry.stage(Stage::Replay).record(to.duration_since(from).as_nanos() as u64);
        }
        let span_merge = tracing.then(|| span.now_ns());
        shared.telemetry.segmap_repr_switches.add(scratch.take_repr_switch_delta());
        shared.shadow_pool.release(scratch);
        // Batched settlement: one fetch_add per counter per batch.
        if let (Some(cache), Some(wc)) = (shared.verdict_cache.as_ref(), wcache.as_mut()) {
            cache.flush_tally(&mut wc.tally);
        }
        shared.traces_checked.fetch_add(tally.traces, Ordering::Relaxed);
        shared.entries_processed.fetch_add(tally.entries, Ordering::Relaxed);
        shared.diagnostics.fetch_add(tally.diags, Ordering::Relaxed);
        if !reports.is_empty() {
            shared.shards[idx].lock().append(&mut reports);
        }
        if let Some(from) = replay_done {
            shared.telemetry.stage(Stage::ReportMerge).record(from.elapsed().as_nanos() as u64);
        }
        if let (Some(claim), Some(replay), Some(merge)) = (span_claim, span_replay, span_merge) {
            let names = shared.telemetry.span_names;
            let end = span.now_ns();
            span.record(names.claim, claim, replay.saturating_sub(claim));
            span.record(names.replay, replay, merge.saturating_sub(replay));
            span.record(names.merge, merge, end.saturating_sub(merge));
        }
        if let Some(start) = dequeued {
            shared.telemetry.worker_busy[idx].add(start.elapsed().as_nanos() as u64);
        }
    }
}

/// Checks one trace's packed records on worker `idx`.
///
/// Three paths, fastest first:
///
/// * **Clean lane** — for built-in models (and no instrumentation), a
///   conservative DFA sweep over the raw records ([`packed_clean`]) proves
///   the common all-clean trace diagnostic-free without decoding entries or
///   touching the shadow memory.
/// * **Packed replay** — otherwise the full checker replays the records,
///   decoding one entry at a time on the stack ([`check_packed_with`]).
/// * **Instrumented replay** — with the telemetry timing layer or the flight
///   recorder on, entries are decoded up front and the checker loop is run
///   manually so each entry's cost lands in its [`CheckerCategory`]
///   histogram and each step can be captured.
///
/// All three produce identical diagnostics (the clean lane only ever proves
/// "none"). Results land in the worker's report buffer and the batch tally.
///
/// With the verdict cache on (and the instrumented lane off — see the
/// bypass predicate in [`crate::cache`]), the trace is fingerprinted first:
/// a hit replays the memoized verdict — identical diagnostics, identical
/// profile deltas — without touching the checker at all, and a miss runs
/// the normal lanes and memoizes their outcome.
///
/// [`CheckerCategory`]: crate::telemetry::CheckerCategory
#[allow(clippy::too_many_arguments)]
fn check_span(
    shared: &Shared,
    idx: usize,
    model: &Arc<dyn PersistencyModel>,
    fast: Option<BuiltinModel>,
    trace_id: u64,
    words: &[PackedEntry],
    entries: u32,
    scratch: &mut CheckerScratch,
    resolver: &mut LocResolver,
    reports: &mut Vec<TraceReport>,
    tally: &mut BatchTally,
    wcache: Option<&mut WorkerCache>,
) {
    let timing = shared.telemetry.timing;
    let recorder = shared.recorders.get(idx);
    let profiling = shared.telemetry.profile.is_enabled();
    // Verdict-cache probe. The bypass predicate is the instrumented lane's
    // own condition: per-entry timing and flight-recorder capture (incl.
    // ERROR bundles) must observe every occurrence, so those traces are
    // checked cold and never cached.
    let mut cache_slot: Option<(&VerdictCache, &mut WorkerCache, pmtest_trace::TraceFingerprint)> =
        None;
    if let (Some(cache), Some(wc)) = (shared.verdict_cache.as_ref(), wcache) {
        if timing || recorder.is_some() {
            wc.tally.bypasses += 1;
        } else {
            let fp = wc.fingerprint(words);
            if let Some(verdict) = wc.lookup(cache, fp, profiling) {
                if profiling {
                    if let Some((ops, warns)) = &verdict.profile {
                        shared.telemetry.profile.record_trace(ops, warns);
                    }
                }
                let diags = verdict.diags.clone();
                tally.traces += 1;
                tally.entries += u64::from(entries);
                tally.diags += diags.len() as u64;
                for diag in &diags {
                    shared.telemetry.diag_counter(diag.kind).inc();
                }
                reports.push(TraceReport { trace_id, diags });
                return;
            }
            cache_slot = Some((cache, wc, fp));
        }
    }
    let diags = if timing || recorder.is_some() {
        let started = Instant::now();
        let fused = fast.is_some();
        let decoded = decode_all(words);
        let mut checker = TraceChecker::with_scratch(model.as_ref(), scratch);
        let mut last = started;
        for (index, entry) in decoded.iter().enumerate() {
            checker.process(entry);
            if timing {
                let now = Instant::now();
                shared
                    .telemetry
                    .checker_histogram(&entry.event)
                    .record(now.duration_since(last).as_nanos() as u64);
                last = now;
            }
            if let Some(rec) = recorder {
                rec.record(capture_step(trace_id, index, entry, checker.shadow()));
            }
        }
        let diags = checker.finish();
        if timing {
            let elapsed = started.elapsed().as_nanos() as u64;
            shared.telemetry.check_latency.record(elapsed);
            if fused {
                shared.telemetry.fused_replay.record(elapsed);
            }
            shared.telemetry.worker_stats[idx].lock().merge(&TraceStats::from_entries(&decoded));
        }
        diags
    } else if fast.is_some_and(|f| packed_clean(f, words)) {
        Vec::new()
    } else {
        check_packed_with(words, model.as_ref(), scratch, resolver)
    };
    if let Some(rec) = recorder {
        if diags.iter().any(|d| d.severity() == Severity::Fail) {
            let steps: Vec<_> =
                rec.window().into_iter().filter(|s| s.trace_id == trace_id).collect();
            let bundle = DiagnosisBundle::from_window(
                model.name(),
                BundleReason::Error,
                trace_id,
                diags.clone(),
                steps,
            );
            let mut bundles = shared.bundles.lock();
            if bundles.len() < MAX_BUNDLES {
                bundles.push(bundle);
            } else {
                shared.bundles_dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    if let Some((cache, wc, fp)) = cache_slot {
        // Cache miss: memoize the cold check's full verdict. The profile
        // deltas are computed once and double as this trace's own profile
        // fold, so a profiled miss pays the walk exactly as often as the
        // uncached path does.
        let profile = if profiling {
            let deltas = crate::telemetry::profile_deltas(words, resolver, &diags);
            shared.telemetry.profile.record_trace(&deltas.0, &deltas.1);
            Some(deltas)
        } else {
            None
        };
        wc.install(cache, fp, CachedVerdict::new(diags.clone(), profile));
    } else if profiling {
        crate::telemetry::profile_span(&shared.telemetry.profile, words, resolver, &diags);
    }
    tally.traces += 1;
    tally.entries += u64::from(entries);
    tally.diags += diags.len() as u64;
    for diag in &diags {
        shared.telemetry.diag_counter(diag.kind).inc();
    }
    reports.push(TraceReport { trace_id, diags });
}

impl Drop for Engine {
    fn drop(&mut self) {
        // Close the plane: workers drain what is queued, then exit.
        self.shared.plane.close();
        for handle in std::mem::take(&mut *self.handles.lock()) {
            let _ = handle.join();
        }
    }
}

impl fmt::Debug for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("workers", &self.workers)
            .field("outstanding", &self.shared.outstanding.load(Ordering::Relaxed))
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::DiagKind;
    use pmtest_interval::ByteRange;
    use pmtest_trace::Event;

    fn failing_trace(id: u64) -> Trace {
        let mut t = Trace::new(id);
        let r = ByteRange::with_len(0, 8);
        t.push(Event::Write(r).here());
        t.push(Event::IsPersist(r).here());
        t
    }

    fn clean_trace(id: u64) -> Trace {
        let mut t = Trace::new(id);
        let r = ByteRange::with_len(0, 8);
        t.push(Event::Write(r).here());
        t.push(Event::Flush(r).here());
        t.push(Event::Fence.here());
        t.push(Event::IsPersist(r).here());
        t
    }

    #[test]
    fn recorder_captures_a_bundle_on_error() {
        let engine = Engine::new(EngineConfig {
            telemetry: TelemetryConfig::recorder_only(),
            ..EngineConfig::default()
        });
        engine.submit(clean_trace(0)).unwrap();
        engine.submit(failing_trace(1)).unwrap();
        let bundles = engine.take_bundles();
        assert_eq!(bundles.len(), 1, "only the failing trace bundles");
        let b = &bundles[0];
        assert_eq!(b.reason, crate::BundleReason::Error);
        assert_eq!(b.trace_id, 1);
        assert_eq!(b.model, "x86");
        assert_eq!(b.firing, Some(0));
        // The window is filtered to the failing trace's own steps.
        assert_eq!(b.steps.len(), 2);
        assert!(b.steps.iter().all(|s| s.trace_id == 1));
        assert_eq!(b.diags[0].kind, DiagKind::NotPersisted);
        // Drained: a second take sees nothing new.
        assert!(engine.take_bundles().is_empty());
        assert_eq!(engine.bundles_dropped(), 0);
    }

    #[test]
    fn bundle_queue_is_bounded() {
        let engine = Engine::new(EngineConfig {
            telemetry: TelemetryConfig::recorder_only(),
            ..EngineConfig::default()
        });
        for id in 0..20 {
            engine.submit(failing_trace(id)).unwrap();
        }
        engine.wait_idle();
        assert_eq!(engine.take_bundles().len(), 16);
        assert_eq!(engine.bundles_dropped(), 4);
    }

    #[test]
    fn capture_bundle_freezes_windows_on_demand() {
        let engine = Engine::new(EngineConfig {
            telemetry: TelemetryConfig::recorder_only(),
            ..EngineConfig::default()
        });
        engine.submit(clean_trace(3)).unwrap();
        let bundles = engine.capture_bundle();
        assert_eq!(bundles.len(), 1);
        assert_eq!(bundles[0].reason, crate::BundleReason::Manual);
        assert_eq!(bundles[0].trace_id, 3);
        assert_eq!(bundles[0].steps.len(), 4);
        assert!(bundles[0].diags.is_empty());
        // No ERROR fired, so nothing landed in the automatic queue.
        assert!(engine.take_bundles().is_empty());
    }

    #[test]
    fn recorder_off_captures_nothing() {
        let engine = Engine::new(EngineConfig::default());
        engine.submit(failing_trace(0)).unwrap();
        assert!(engine.take_bundles().is_empty());
        assert!(engine.capture_bundle().is_empty());
        assert_eq!(engine.take_report().fail_count(), 1);
    }

    #[test]
    fn recorder_does_not_change_the_report() {
        let plain = Engine::new(EngineConfig::default());
        let recorded = Engine::new(EngineConfig {
            telemetry: TelemetryConfig::recorder_only(),
            ..EngineConfig::default()
        });
        for id in 0..8 {
            let mk = if id % 2 == 0 { failing_trace } else { clean_trace };
            plain.submit(mk(id)).unwrap();
            recorded.submit(mk(id)).unwrap();
        }
        assert_eq!(plain.take_report(), recorded.take_report());
    }

    #[test]
    fn single_worker_checks_in_submission_order() {
        let engine = Engine::new(EngineConfig::default());
        for id in 0..10 {
            engine.submit(if id % 2 == 0 { failing_trace(id) } else { clean_trace(id) }).unwrap();
        }
        let report = engine.take_report();
        assert_eq!(report.traces().len(), 10);
        assert_eq!(report.fail_count(), 5);
        let ids: Vec<u64> = report.traces().iter().map(|t| t.trace_id).collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn multiple_workers_produce_the_same_report() {
        let engine = Engine::new(EngineConfig { workers: 4, ..EngineConfig::default() });
        assert_eq!(engine.workers(), 4);
        for id in 0..100 {
            engine.submit(failing_trace(id)).unwrap();
        }
        let report = engine.take_report();
        assert_eq!(report.traces().len(), 100);
        assert_eq!(report.fail_count(), 100);
        assert!(report.iter().all(|d| d.kind == DiagKind::NotPersisted));
    }

    #[test]
    fn report_accumulates_take_drains() {
        let engine = Engine::new(EngineConfig::default());
        engine.submit(failing_trace(0)).unwrap();
        assert_eq!(engine.report().fail_count(), 1);
        engine.submit(failing_trace(1)).unwrap();
        assert_eq!(engine.report().fail_count(), 2, "report keeps history");
        assert_eq!(engine.take_report().fail_count(), 2);
        assert_eq!(engine.report().fail_count(), 0, "take drained");
    }

    #[test]
    fn wait_idle_on_empty_engine_returns() {
        let engine = Engine::new(EngineConfig::default());
        engine.wait_idle();
        assert!(engine.report().is_clean());
    }

    #[test]
    fn submissions_from_many_threads() {
        let engine = Arc::new(Engine::new(EngineConfig { workers: 2, ..EngineConfig::default() }));
        std::thread::scope(|s| {
            for t in 0..4 {
                let engine = engine.clone();
                s.spawn(move || {
                    for i in 0..25 {
                        engine.submit(clean_trace(t * 25 + i)).unwrap();
                    }
                });
            }
        });
        let report = engine.take_report();
        assert_eq!(report.traces().len(), 100);
        assert!(report.is_clean());
    }

    #[test]
    fn each_producer_thread_registers_its_own_ring() {
        let engine = Arc::new(Engine::new(EngineConfig { workers: 2, ..EngineConfig::default() }));
        std::thread::scope(|s| {
            for t in 0..3 {
                let engine = engine.clone();
                s.spawn(move || {
                    for i in 0..5 {
                        engine.submit(clean_trace(t * 5 + i)).unwrap();
                    }
                });
            }
        });
        engine.wait_idle();
        let stats = engine.stats();
        assert!(stats.rings_registered >= 3, "one ring per producer thread");
        assert_eq!(stats.traces_checked, 15);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = Engine::new(EngineConfig { workers: 0, ..EngineConfig::default() });
    }

    #[test]
    fn batch_submission_checks_every_trace() {
        let engine = Engine::new(EngineConfig { workers: 3, ..EngineConfig::default() });
        engine.submit_batch(Vec::new()).unwrap(); // no-op
        engine.submit_batch((0..32).map(failing_trace).collect()).unwrap();
        engine.submit_batch((32..64).map(clean_trace).collect()).unwrap();
        let report = engine.take_report();
        assert_eq!(report.traces().len(), 64);
        assert_eq!(report.fail_count(), 32);
        let ids: Vec<u64> = report.traces().iter().map(|t| t.trace_id).collect();
        assert_eq!(ids, (0..64).collect::<Vec<_>>(), "merge is ordered by trace id");
    }

    #[test]
    fn arena_submission_checks_every_sealed_trace() {
        let engine = Engine::new(EngineConfig { workers: 2, ..EngineConfig::default() });
        engine.submit_arena(TraceArena::new()).unwrap(); // no seals: no-op
        let mut arena = TraceArena::new();
        let r = ByteRange::with_len(0, 8);
        for id in 0..10 {
            arena.push(Event::Write(r).here());
            arena.push(Event::IsPersist(r).here());
            arena.seal(id);
        }
        engine.submit_arena(arena).unwrap();
        let report = engine.take_report();
        assert_eq!(report.traces().len(), 10);
        assert_eq!(report.fail_count(), 10);
        let stats = engine.stats();
        assert_eq!(stats.batches_submitted, 1, "empty arenas are not counted");
        assert_eq!(stats.traces_submitted, 10);
        // The checked arena went back to the pool.
        assert_eq!(engine.arena_pool().stats().released, 1);
    }

    #[test]
    fn stats_track_batches_and_queue_depth() {
        let engine = Engine::new(EngineConfig::default());
        engine.submit(clean_trace(0)).unwrap();
        engine.submit_batch((1..32).map(clean_trace).collect()).unwrap();
        engine.wait_idle();
        let stats = engine.stats();
        assert_eq!(stats.batches_submitted, 2, "empty batches are not counted");
        assert_eq!(stats.traces_submitted, 32);
        assert_eq!(stats.traces_checked, 32);
        assert!(stats.queue_highwater >= 31, "batch of 31 must register in the high-water mark");
        assert!((stats.mean_batch_size() - 16.0).abs() < f64::EPSILON);
    }

    #[test]
    fn backpressure_stalls_are_counted_and_survivable() {
        // One worker with a one-slot ring: the second in-flight submission
        // must stall until the worker drains the first.
        let engine = Engine::new(EngineConfig { queue_capacity: 1, ..EngineConfig::default() });
        for id in 0..200 {
            engine.submit(failing_trace(id)).unwrap();
        }
        let report = engine.take_report();
        assert_eq!(report.traces().len(), 200, "stalled submissions still deliver");
        assert!(engine.stats().backpressure_stalls > 0, "queue of 1 must have stalled");
    }

    #[test]
    fn buffers_are_recycled_through_the_pool() {
        let engine = Engine::new(EngineConfig::default());
        for id in 0..50 {
            engine.submit(clean_trace(id)).unwrap();
        }
        engine.wait_idle();
        let stats = engine.buffer_pool().stats();
        assert_eq!(stats.released, 50, "every checked trace returns its buffer");
        let buf = engine.buffer_pool().acquire();
        assert!(buf.is_empty(), "recycled buffer must be cleared");
    }

    #[test]
    fn shutdown_returns_full_report_once() {
        let engine = Engine::new(EngineConfig { workers: 2, ..EngineConfig::default() });
        for id in 0..20 {
            engine.submit(failing_trace(id)).unwrap();
        }
        let report = engine.shutdown();
        assert_eq!(report.traces().len(), 20);
        assert_eq!(report.fail_count(), 20);
    }

    #[test]
    fn with_report_borrows_accumulated_results() {
        let engine = Engine::new(EngineConfig::default());
        engine.submit(failing_trace(0)).unwrap();
        assert_eq!(engine.with_report(Report::fail_count), 1);
        engine.submit(failing_trace(1)).unwrap();
        assert_eq!(engine.with_report(Report::fail_count), 2, "results accumulate");
        assert_eq!(engine.take_report().fail_count(), 2);
        assert_eq!(engine.with_report(|r| r.traces().len()), 0, "take drained");
    }

    #[test]
    fn telemetry_snapshot_counts_diagnostics_by_kind() {
        let engine = Engine::new(EngineConfig::default());
        for id in 0..4 {
            engine.submit(failing_trace(id)).unwrap();
        }
        engine.wait_idle();
        let snap = engine.telemetry_snapshot();
        assert_eq!(snap.counter("engine_traces_checked"), Some(4));
        assert_eq!(snap.counter("engine_entries_processed"), Some(8));
        let not_persisted = snap
            .counters
            .iter()
            .find(|c| {
                c.name == "engine_diag_total"
                    && c.labels.iter().any(|(k, v)| k == "code" && v == "not_persisted")
            })
            .expect("per-kind counter registered");
        assert_eq!(not_persisted.value, 4);
        assert!(not_persisted.labels.iter().any(|(k, v)| k == "severity" && v == "FAIL"));
        assert_eq!(snap.counter_sum("engine_diag_total"), 4, "no other kind fired");
        assert!(snap.gauge("engine_queue_depth").is_some(), "sampled on submit");
        assert!(snap.gauge("pool_hit_rate").is_some());
        assert!(snap.counter("engine_ring_steals").is_some(), "ingest counters exported");
        assert!(snap.counter("engine_rings_registered").unwrap() >= 1);
        assert!(snap.gauge("engine_ring_occupancy").is_some());
        // Timing layer off: histograms exist but hold no observations, and
        // the per-worker trace stats stay zero.
        assert_eq!(snap.histogram("engine_check_latency_ns").unwrap().count, 0);
        assert_eq!(engine.worker_trace_stats(), vec![TraceStats::default()]);
        assert!(engine.telemetry_summary().contains("timing off"));
    }

    #[test]
    fn shadow_pool_recycles_scratch_state_across_batches() {
        let engine = Engine::new(EngineConfig::default());
        for id in 0..50 {
            engine.submit(clean_trace(id)).unwrap();
        }
        engine.wait_idle();
        let snap = engine.telemetry_snapshot();
        let recycled = snap.counter("shadow_pool_recycled").unwrap_or(0);
        let fresh = snap.counter("shadow_pool_fresh").unwrap();
        assert_eq!(fresh, 1, "one worker allocates scratch state exactly once");
        assert_eq!(recycled + fresh, 50, "one acquisition per single-trace batch");
        let hit = snap.gauge("shadow_pool_hit_rate").unwrap();
        assert!(hit > 0.9, "steady state must recycle, hit rate {hit}");
        // Tiny clean traces never push a segment map past the flat
        // representation.
        assert_eq!(snap.counter("engine_segmap_repr_switches"), Some(0));
    }

    #[test]
    fn queue_capacity_is_reported() {
        let engine = Engine::new(EngineConfig { queue_capacity: 42, ..EngineConfig::default() });
        assert_eq!(engine.queue_capacity(), 42);
    }

    #[test]
    fn derived_queue_capacity_keeps_the_trace_window_consistent() {
        assert_eq!(derived_queue_capacity(1), 256, "unbatched default unchanged");
        assert_eq!(derived_queue_capacity(0), 256, "degenerate batch treated as 1");
        assert_eq!(derived_queue_capacity(4), 64);
        assert_eq!(derived_queue_capacity(32), 32, "floor absorbs scheduling gaps");
        assert_eq!(derived_queue_capacity(1024), 32, "floor keeps slack for workers");
    }

    #[test]
    fn timing_layer_populates_latency_histograms_and_worker_stats() {
        let engine = Engine::new(EngineConfig {
            telemetry: TelemetryConfig::enabled(),
            ..EngineConfig::default()
        });
        for id in 0..8 {
            engine.submit(clean_trace(id)).unwrap();
        }
        engine.wait_idle();
        let snap = engine.telemetry_snapshot();
        let check = snap.histogram("engine_check_latency_ns").unwrap();
        assert_eq!(check.count, 8);
        assert!(check.p50 > 0.0 && check.p99 >= check.p50);
        let is_persist = snap.histogram_with("engine_checker_ns", "checker", "is_persist").unwrap();
        assert_eq!(is_persist.count, 8, "one isPersist per clean trace");
        let replay = snap.histogram_with("engine_checker_ns", "checker", "model_replay").unwrap();
        assert_eq!(replay.count, 24, "write + flush + fence per clean trace");
        assert_eq!(snap.histogram("engine_dispatch_latency_ns").unwrap().count, 8);
        assert!(snap.counter_sum("engine_worker_busy_ns") > 0);
        assert!(snap.gauge("engine_worker_utilization").is_some());
        let mut totals = TraceStats::default();
        for stats in engine.worker_trace_stats() {
            totals.merge(&stats);
        }
        assert_eq!(totals.writes, 8);
        assert_eq!(totals.entries, 32);
        assert_eq!(snap.counter_sum("engine_worker_entries"), 32);
        let summary = engine.telemetry_summary();
        assert!(summary.contains("8 traces checked"), "{summary}");
        assert!(summary.contains("p50"), "{summary}");
    }

    /// The clean lane must be invisible in results: traces it proves clean
    /// and traces it defers to the full checker land in the same report a
    /// custom (non-builtin, lane-less) model would produce.
    #[test]
    fn clean_lane_does_not_change_the_report() {
        /// x86 rules without `builtin()`: forces the dynamic-dispatch path,
        /// which never consults the clean lane.
        #[derive(Debug)]
        struct OpaqueX86(X86Model);
        impl PersistencyModel for OpaqueX86 {
            fn name(&self) -> &str {
                "x86"
            }
            fn apply(
                &self,
                shadow: &mut crate::shadow::ShadowMemory,
                entry: &pmtest_trace::Entry,
                diags: &mut Vec<crate::diag::Diag>,
            ) {
                self.0.apply(shadow, entry, diags);
            }
            fn check_persist(
                &self,
                shadow: &crate::shadow::ShadowMemory,
                range: ByteRange,
                loc: pmtest_trace::SourceLoc,
                diags: &mut Vec<crate::diag::Diag>,
            ) {
                self.0.check_persist(shadow, range, loc, diags);
            }
            fn check_ordered_before(
                &self,
                shadow: &crate::shadow::ShadowMemory,
                first: ByteRange,
                second: ByteRange,
                loc: pmtest_trace::SourceLoc,
                diags: &mut Vec<crate::diag::Diag>,
            ) {
                self.0.check_ordered_before(shadow, first, second, loc, diags);
            }
        }
        let fast = Engine::new(EngineConfig::default());
        let slow = Engine::new(EngineConfig {
            model: Arc::new(OpaqueX86(X86Model::new())),
            ..EngineConfig::default()
        });
        for id in 0..12 {
            let mk = if id % 3 == 0 { failing_trace } else { clean_trace };
            fast.submit(mk(id)).unwrap();
            slow.submit(mk(id)).unwrap();
        }
        assert_eq!(fast.take_report(), slow.take_report());
    }

    #[test]
    fn timing_layer_populates_all_five_stage_histograms() {
        let engine = Engine::new(EngineConfig {
            telemetry: TelemetryConfig::timing_only(),
            ..EngineConfig::default()
        });
        for id in 0..8 {
            engine.submit(clean_trace(id)).unwrap();
        }
        engine.wait_idle();
        let snap = engine.telemetry_snapshot();
        for stage in crate::telemetry::Stage::ALL {
            let h = snap
                .histogram_with("engine_stage_ns", "stage", stage.label())
                .unwrap_or_else(|| panic!("stage {} missing", stage.label()));
            assert_eq!(h.count, 8, "one {} observation per batch", stage.label());
        }
    }

    #[test]
    fn snapshot_exposes_ring_steal_parker_and_arena_counters() {
        let engine = Engine::new(EngineConfig::default());
        for id in 0..4 {
            engine.submit(clean_trace(id)).unwrap();
        }
        engine.wait_idle();
        let snap = engine.telemetry_snapshot();
        // Steal/affinity accounting: every claimed batch is one or the other.
        let steals = snap.counter("engine_ring_steals").unwrap();
        let affinity = snap.counter("engine_ring_affinity_hits").unwrap();
        assert_eq!(steals + affinity, 4, "each batch claim is a steal or an affinity hit");
        // Parker counters are present (values depend on scheduling).
        assert!(snap.counter("engine_parker_parks").is_some());
        assert!(snap.counter("engine_parker_wakes").is_some());
        assert!(snap.counter("engine_parker_recruit_cas_fails").is_some());
        // Per-ring gauges carry a ring label.
        assert!(snap.gauge("engine_ring_highwater").is_some());
        assert!(snap.gauge("engine_ring_occupancy_traces").is_some());
        assert!(snap.counter("engine_ring_pushed").is_some());
        // Arena/intern counters register even when the batched path is idle.
        assert_eq!(snap.counter("engine_arena_slab_allocs"), Some(0));
        assert_eq!(snap.counter_sum("engine_intern_hits"), 0);
        // Span accounting is exported alongside the event ring's.
        assert_eq!(snap.counter("engine_spans_dropped"), Some(0));
    }

    #[test]
    fn tracing_layer_yields_a_loadable_chrome_trace() {
        let engine = Engine::new(EngineConfig {
            telemetry: TelemetryConfig::tracing_only(),
            ..EngineConfig::default()
        });
        for id in 0..6 {
            engine.submit(clean_trace(id)).unwrap();
        }
        engine.wait_idle();
        let trace = engine.chrome_trace();
        let stats = pmtest_obs::trace_event::validate_str(&trace).expect("trace must validate");
        assert!(stats.pairs >= 18, "claim+replay+merge per batch, got {}", stats.pairs);
        for name in ["claim", "replay", "merge"] {
            assert!(trace.contains(name), "span {name} missing from {trace}");
        }
        // Tracing off: still a valid (empty) document.
        let engine = Engine::new(EngineConfig::default());
        engine.submit(clean_trace(0)).unwrap();
        engine.wait_idle();
        let trace = engine.chrome_trace();
        let stats = pmtest_obs::trace_event::validate_str(&trace).unwrap();
        assert_eq!(stats.events, 0, "tracing off records nothing");
    }

    #[test]
    fn scrape_endpoint_serves_prometheus_and_json() {
        use std::io::{Read as _, Write as _};
        let engine = Engine::new(EngineConfig {
            telemetry: TelemetryConfig::off().with_scrape("127.0.0.1:0"),
            ..EngineConfig::default()
        });
        for id in 0..3 {
            engine.submit(failing_trace(id)).unwrap();
        }
        engine.wait_idle();
        let addr = engine.scrape_addr().expect("scrape endpoint is live");
        let get = |path: &str| {
            let mut conn = std::net::TcpStream::connect(addr).unwrap();
            write!(conn, "GET {path} HTTP/1.1\r\nHost: pmtest\r\nConnection: close\r\n\r\n")
                .unwrap();
            let mut body = String::new();
            conn.read_to_string(&mut body).unwrap();
            body
        };
        let metrics = get("/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200"), "{metrics}");
        assert!(metrics.contains("engine_traces_checked 3"), "{metrics}");
        assert!(metrics.contains("engine_stage_ns"), "stage histograms are exported");
        let json = get("/snapshot.json");
        assert!(json.contains("application/json"), "{json}");
        assert!(json.contains("engine_traces_checked"), "{json}");
        // No scrape configured: no endpoint.
        let plain = Engine::new(EngineConfig::default());
        assert!(plain.scrape_addr().is_none());
    }

    /// A model whose checkers panic, killing the worker thread — the only
    /// way the plane can go dead while an `Engine` is alive.
    #[derive(Debug)]
    struct PanickingModel;

    impl PersistencyModel for PanickingModel {
        fn name(&self) -> &str {
            "panicking"
        }

        fn apply(
            &self,
            _shadow: &mut crate::shadow::ShadowMemory,
            _entry: &pmtest_trace::Entry,
            _diags: &mut Vec<crate::diag::Diag>,
        ) {
            panic!("model deliberately kills the worker");
        }

        fn check_persist(
            &self,
            _shadow: &crate::shadow::ShadowMemory,
            _range: ByteRange,
            _loc: pmtest_trace::SourceLoc,
            _diags: &mut Vec<crate::diag::Diag>,
        ) {
            panic!("model deliberately kills the worker");
        }

        fn check_ordered_before(
            &self,
            _shadow: &crate::shadow::ShadowMemory,
            _first: ByteRange,
            _second: ByteRange,
            _loc: pmtest_trace::SourceLoc,
            _diags: &mut Vec<crate::diag::Diag>,
        ) {
            panic!("model deliberately kills the worker");
        }
    }

    #[test]
    fn submit_after_worker_death_is_an_error_not_a_panic() {
        let engine = Engine::new(EngineConfig {
            model: Arc::new(PanickingModel),
            ..EngineConfig::default()
        });
        let mut t = Trace::new(0);
        t.push(Event::Write(ByteRange::with_len(0, 8)).here());
        let _ = engine.submit(t); // worker dies checking this trace
                                  // Spin until the death is observable as a dead ingest plane.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            let mut t = Trace::new(1);
            t.push(Event::Write(ByteRange::with_len(0, 8)).here());
            match engine.submit(t) {
                Err(SubmitError) => break,
                Ok(()) => assert!(
                    std::time::Instant::now() < deadline,
                    "worker death never surfaced as SubmitError"
                ),
            }
            std::thread::yield_now();
        }
        assert!(SubmitError.to_string().contains("no longer accepting"));
    }

    #[test]
    fn report_does_not_hang_after_worker_panic() {
        // A panicking checker must not strand its batch's accounting: the
        // abandoned batch, and any batches the dying worker pool discards
        // from the rings, all have to retire or this report blocks forever.
        let engine = Engine::new(EngineConfig {
            model: Arc::new(PanickingModel),
            queue_capacity: 4,
            ..EngineConfig::default()
        });
        for id in 0..50 {
            let mut t = Trace::new(id);
            t.push(Event::Write(ByteRange::with_len(0, 8)).here());
            // Early submissions kill the worker; later ones race the death
            // and either land in the dying ring or error out. Every accepted
            // trace must still retire.
            let _ = engine.submit(t);
        }
        let report = engine.report();
        assert!(report.traces().is_empty(), "no trace survives a panicking checker");
        assert!(engine.take_report().is_clean());
    }

    #[test]
    fn telemetry_snapshot_exports_exploration_counters() {
        use crate::explore::{ExploreConfig, RecoveryProc};
        use pmtest_pmem::crash::{CrashSim, ValuedOp};

        struct NoopProc;
        impl RecoveryProc for NoopProc {
            fn name(&self) -> &str {
                "noop"
            }

            fn check(&self, _point: usize, _image: &[u8]) -> Result<(), String> {
                Ok(())
            }
        }

        let engine = Engine::new(EngineConfig::default());
        let snap = engine.telemetry_snapshot();
        assert_eq!(snap.counter("crash_points_enumerated"), Some(0));
        assert_eq!(snap.gauge("prefix_share_hit_rate"), Some(0.0), "no sweeps yet");

        let sim = CrashSim::new(
            vec![0; 128],
            vec![
                ValuedOp::Write { range: ByteRange::with_len(0, 1), data: vec![0xAA] },
                ValuedOp::Flush(ByteRange::with_len(0, 1)),
                ValuedOp::Fence,
                ValuedOp::Write { range: ByteRange::with_len(64, 1), data: vec![1] },
                ValuedOp::Flush(ByteRange::with_len(64, 1)),
                ValuedOp::Fence,
            ],
        );
        let report = engine.explore(&sim, &NoopProc, &ExploreConfig::default());
        assert!(report.is_clean());
        assert!(report.stats.images_checked > 0);

        let snap = engine.telemetry_snapshot();
        assert_eq!(
            snap.counter("crash_points_enumerated"),
            Some(report.stats.crash_points_enumerated)
        );
        assert_eq!(snap.counter("images_checked"), Some(report.stats.images_checked));
        assert_eq!(snap.counter("prefix_share_hits"), Some(report.stats.prefix_share_hits));
        assert_eq!(snap.counter("prefix_share_misses"), Some(0), "model-mode ascending sweep");
        assert_eq!(snap.gauge("prefix_share_hit_rate"), Some(1.0));

        // A second sweep accumulates rather than resets.
        engine.explore(&sim, &NoopProc, &ExploreConfig::default());
        let snap = engine.telemetry_snapshot();
        assert_eq!(
            snap.counter("crash_points_enumerated"),
            Some(2 * report.stats.crash_points_enumerated)
        );
        assert_eq!(snap.counter("images_checked"), Some(2 * report.stats.images_checked));
    }
}
