use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, Sender};
use parking_lot::{Condvar, Mutex};
use pmtest_trace::Trace;

use crate::checker::check_trace;
use crate::diag::{Report, TraceReport};
use crate::model::{PersistencyModel, X86Model};

/// Configuration of the checking engine.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// The persistency model whose checking rules to apply.
    pub model: Arc<dyn PersistencyModel>,
    /// Number of worker threads (the paper uses one unless stated, §6.1;
    /// Fig. 12b scales this up).
    pub workers: usize,
    /// Per-worker trace-queue depth. Bounding the queue keeps memory finite
    /// and reproduces the paper's behaviour that a saturated checking
    /// pipeline backpressures the program (Fig. 12a).
    pub queue_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self { model: Arc::new(X86Model::new()), workers: 1, queue_capacity: 256 }
    }
}

/// The decoupled checking engine: a master dispatching traces round-robin to
/// a pool of worker threads (Fig. 8).
///
/// The program under test keeps executing while workers validate completed
/// traces — this pipelining is the second half of the paper's performance
/// story (§3.2, "Runtime Testing"). [`Engine::wait_idle`] is the
/// `PMTest_GET_RESULT` barrier: it blocks until every submitted trace has
/// been checked.
///
/// # Examples
///
/// ```
/// use pmtest_core::{Engine, EngineConfig};
/// use pmtest_trace::{Event, Trace};
/// use pmtest_interval::ByteRange;
///
/// let engine = Engine::new(EngineConfig::default());
/// let mut trace = Trace::new(0);
/// let r = ByteRange::with_len(0, 8);
/// trace.push(Event::Write(r).here());
/// trace.push(Event::IsPersist(r).here()); // will FAIL
/// engine.submit(trace);
/// let report = engine.take_report();
/// assert_eq!(report.fail_count(), 1);
/// ```
pub struct Engine {
    shared: Arc<Shared>,
    worker_txs: Vec<Sender<Trace>>,
    next_worker: AtomicUsize,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

struct Shared {
    /// Traces submitted but not yet checked. Producers only touch this
    /// atomic (plus the channel), keeping `submit` off the results lock.
    outstanding: AtomicU64,
    results: Mutex<Vec<TraceReport>>,
    idle_lock: Mutex<()>,
    idle: Condvar,
    traces_checked: AtomicU64,
    entries_processed: AtomicU64,
    diagnostics: AtomicU64,
}

/// Lifetime counters of an [`Engine`] (useful for the benchmark harnesses
/// and for sizing trace batches).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Traces fully checked.
    pub traces_checked: u64,
    /// Trace entries processed across all traces.
    pub entries_processed: u64,
    /// Diagnostics (FAIL + WARN) produced.
    pub diagnostics: u64,
}

impl Engine {
    /// Spawns the worker pool.
    ///
    /// # Panics
    ///
    /// Panics if `config.workers` is zero.
    #[must_use]
    pub fn new(config: EngineConfig) -> Self {
        assert!(config.workers > 0, "engine needs at least one worker");
        let shared = Arc::new(Shared {
            outstanding: AtomicU64::new(0),
            results: Mutex::new(Vec::new()),
            idle_lock: Mutex::new(()),
            idle: Condvar::new(),
            traces_checked: AtomicU64::new(0),
            entries_processed: AtomicU64::new(0),
            diagnostics: AtomicU64::new(0),
        });
        let mut worker_txs = Vec::with_capacity(config.workers);
        let mut handles = Vec::with_capacity(config.workers);
        assert!(config.queue_capacity > 0, "engine queue capacity must be positive");
        for i in 0..config.workers {
            let (tx, rx) = bounded::<Trace>(config.queue_capacity);
            let shared = shared.clone();
            let model = config.model.clone();
            let handle = std::thread::Builder::new()
                .name(format!("pmtest-worker-{i}"))
                .spawn(move || {
                    while let Ok(trace) = rx.recv() {
                        let diags = check_trace(&trace, model.as_ref());
                        shared.traces_checked.fetch_add(1, Ordering::Relaxed);
                        shared
                            .entries_processed
                            .fetch_add(trace.len() as u64, Ordering::Relaxed);
                        shared.diagnostics.fetch_add(diags.len() as u64, Ordering::Relaxed);
                        shared.results.lock().push(TraceReport { trace_id: trace.id(), diags });
                        if shared.outstanding.fetch_sub(1, Ordering::AcqRel) == 1 {
                            // Last outstanding trace: wake any waiter. The
                            // brief lock pairs with the wait below.
                            drop(shared.idle_lock.lock());
                            shared.idle.notify_all();
                        }
                    }
                })
                .expect("spawn pmtest worker");
            worker_txs.push(tx);
            handles.push(handle);
        }
        Self {
            shared,
            worker_txs,
            next_worker: AtomicUsize::new(0),
            handles: Mutex::new(handles),
        }
    }

    /// Number of worker threads.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.worker_txs.len()
    }

    /// Lifetime counters (never reset, even by
    /// [`take_report`](Self::take_report)).
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            traces_checked: self.shared.traces_checked.load(Ordering::Relaxed),
            entries_processed: self.shared.entries_processed.load(Ordering::Relaxed),
            diagnostics: self.shared.diagnostics.load(Ordering::Relaxed),
        }
    }

    /// Submits a trace for asynchronous checking (round-robin dispatch).
    pub fn submit(&self, trace: Trace) {
        self.shared.outstanding.fetch_add(1, Ordering::AcqRel);
        let idx = self.next_worker.fetch_add(1, Ordering::Relaxed) % self.worker_txs.len();
        self.worker_txs[idx]
            .send(trace)
            .expect("pmtest worker thread terminated unexpectedly");
    }

    /// Blocks until every submitted trace has been checked
    /// (`PMTest_GET_RESULT`, §4.2).
    pub fn wait_idle(&self) {
        if self.shared.outstanding.load(Ordering::Acquire) == 0 {
            return;
        }
        let mut guard = self.shared.idle_lock.lock();
        while self.shared.outstanding.load(Ordering::Acquire) > 0 {
            self.shared.idle.wait(&mut guard);
        }
    }

    /// Waits for all outstanding traces, then returns a copy of every result
    /// so far (results keep accumulating).
    #[must_use]
    pub fn report(&self) -> Report {
        self.wait_idle();
        Report::from_traces(self.shared.results.lock().clone())
    }

    /// Waits for all outstanding traces, then drains and returns the results.
    #[must_use]
    pub fn take_report(&self) -> Report {
        self.wait_idle();
        Report::from_traces(std::mem::take(&mut *self.shared.results.lock()))
    }

    /// Shuts the worker pool down, returning everything checked so far
    /// (`PMTest_EXIT`, §4.2).
    ///
    /// Consumes the engine; the channels disconnect and workers are joined.
    pub fn shutdown(mut self) -> Report {
        self.wait_idle();
        let report = self.take_report();
        self.worker_txs.clear();
        for handle in std::mem::take(&mut *self.handles.lock()) {
            let _ = handle.join();
        }
        report
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        // Disconnect the channels so workers exit their recv loops.
        self.worker_txs.clear();
        for handle in std::mem::take(&mut *self.handles.lock()) {
            let _ = handle.join();
        }
    }
}

impl fmt::Debug for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("workers", &self.worker_txs.len())
            .field("outstanding", &self.shared.outstanding.load(Ordering::Relaxed))
            .field("checked", &self.shared.results.lock().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::DiagKind;
    use pmtest_interval::ByteRange;
    use pmtest_trace::Event;

    fn failing_trace(id: u64) -> Trace {
        let mut t = Trace::new(id);
        let r = ByteRange::with_len(0, 8);
        t.push(Event::Write(r).here());
        t.push(Event::IsPersist(r).here());
        t
    }

    fn clean_trace(id: u64) -> Trace {
        let mut t = Trace::new(id);
        let r = ByteRange::with_len(0, 8);
        t.push(Event::Write(r).here());
        t.push(Event::Flush(r).here());
        t.push(Event::Fence.here());
        t.push(Event::IsPersist(r).here());
        t
    }

    #[test]
    fn single_worker_checks_in_submission_order() {
        let engine = Engine::new(EngineConfig::default());
        for id in 0..10 {
            engine.submit(if id % 2 == 0 { failing_trace(id) } else { clean_trace(id) });
        }
        let report = engine.take_report();
        assert_eq!(report.traces().len(), 10);
        assert_eq!(report.fail_count(), 5);
        let ids: Vec<u64> = report.traces().iter().map(|t| t.trace_id).collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn multiple_workers_produce_the_same_report() {
        let engine = Engine::new(EngineConfig {
            workers: 4,
            ..EngineConfig::default()
        });
        assert_eq!(engine.workers(), 4);
        for id in 0..100 {
            engine.submit(failing_trace(id));
        }
        let report = engine.take_report();
        assert_eq!(report.traces().len(), 100);
        assert_eq!(report.fail_count(), 100);
        assert!(report.iter().all(|d| d.kind == DiagKind::NotPersisted));
    }

    #[test]
    fn report_accumulates_take_drains() {
        let engine = Engine::new(EngineConfig::default());
        engine.submit(failing_trace(0));
        assert_eq!(engine.report().fail_count(), 1);
        engine.submit(failing_trace(1));
        assert_eq!(engine.report().fail_count(), 2, "report keeps history");
        assert_eq!(engine.take_report().fail_count(), 2);
        assert_eq!(engine.report().fail_count(), 0, "take drained");
    }

    #[test]
    fn wait_idle_on_empty_engine_returns() {
        let engine = Engine::new(EngineConfig::default());
        engine.wait_idle();
        assert!(engine.report().is_clean());
    }

    #[test]
    fn submissions_from_many_threads() {
        let engine = Arc::new(Engine::new(EngineConfig {
            workers: 2,
            ..EngineConfig::default()
        }));
        std::thread::scope(|s| {
            for t in 0..4 {
                let engine = engine.clone();
                s.spawn(move || {
                    for i in 0..25 {
                        engine.submit(clean_trace(t * 25 + i));
                    }
                });
            }
        });
        let report = engine.take_report();
        assert_eq!(report.traces().len(), 100);
        assert!(report.is_clean());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = Engine::new(EngineConfig { workers: 0, ..EngineConfig::default() });
    }
}
