use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam::channel::{bounded, Sender, TrySendError};
use parking_lot::{Condvar, Mutex};
use pmtest_obs::{EventLog, TelemetrySnapshot};
use pmtest_trace::{BufferPool, FlightRecorder, Trace, TraceStats};

use crate::bundle::{capture_step, BundleReason, DiagnosisBundle};
use crate::checker::{check_trace_with, CheckerScratch, TraceChecker};
use crate::diag::{Report, Severity, TraceReport};
use crate::model::{PersistencyModel, X86Model};
use crate::telemetry::{EngineTelemetry, TelemetryConfig};

/// Configuration of the checking engine.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// The persistency model whose checking rules to apply.
    pub model: Arc<dyn PersistencyModel>,
    /// Number of worker threads (the paper uses one unless stated, §6.1;
    /// Fig. 12b scales this up).
    pub workers: usize,
    /// Per-worker queue depth, in *batches*. Bounding the queue keeps memory
    /// finite and reproduces the paper's behaviour that a saturated checking
    /// pipeline backpressures the program (Fig. 12a).
    pub queue_capacity: usize,
    /// What the engine records beyond its always-on counters (latency
    /// histograms, the structured event ring). Defaults to everything off.
    pub telemetry: TelemetryConfig,
    /// Route batches to workers in pure round-robin order instead of the
    /// default load-aware scan. The load-aware policy consults live queue
    /// depths, so the trace→worker assignment depends on checking speed;
    /// with this knob on, the assignment is a pure function of submission
    /// order. Reports are sorted by trace id either way — this exists for
    /// harnesses (the differential fuzzer's replay mode) that want the
    /// *schedule* itself reproducible, e.g. to pin down shard-merge bugs.
    pub deterministic_dispatch: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            model: Arc::new(X86Model::new()),
            workers: 1,
            queue_capacity: 256,
            telemetry: TelemetryConfig::off(),
            deterministic_dispatch: false,
        }
    }
}

/// One message on a worker channel: a single trace or a batch of traces.
///
/// The single-trace variant keeps the unbatched path (the paper's default)
/// free of the extra `Vec` a one-element batch would allocate.
enum TraceBatch {
    One(Trace),
    Many(Vec<Trace>),
}

impl TraceBatch {
    fn len(&self) -> u64 {
        match self {
            TraceBatch::One(_) => 1,
            TraceBatch::Many(traces) => traces.len() as u64,
        }
    }
}

/// What actually travels on a worker channel: the traces plus their dispatch
/// accounting. The accounting settles on drop, so the `outstanding` /
/// `queued` counters stay consistent no matter how the batch dies — checked
/// normally, abandoned mid-batch by a panicking checker, or discarded inside
/// a disconnected channel when a worker is gone.
struct BatchMsg {
    traces: TraceBatch,
    accounting: BatchAccounting,
    /// Send time, for the dispatch-latency histogram. `None` unless the
    /// telemetry timing layer is on — reading the clock per submit would
    /// otherwise dominate short traces.
    submitted: Option<Instant>,
}

/// Drop-guard for one dispatched batch. Dropping it marks the batch's traces
/// as no longer queued or outstanding, waking idle waiters if it was the
/// last work in flight.
struct BatchAccounting {
    shared: Arc<Shared>,
    idx: usize,
    n: u64,
}

impl Drop for BatchAccounting {
    fn drop(&mut self) {
        self.shared.queued[self.idx].fetch_sub(self.n, Ordering::Relaxed);
        self.shared.retire(self.n);
    }
}

/// Error returned by [`Engine::submit`] / [`Engine::submit_batch`] when the
/// worker pool is no longer accepting traces — its threads have terminated,
/// either because the engine was shut down or because a worker panicked.
///
/// The submitted traces are dropped; results already collected remain
/// available through [`Engine::report`] / [`Engine::take_report`]. Those
/// calls stay safe after a worker death: every dispatched batch settles its
/// idle-tracking accounting even if a panicking checker abandons it or a
/// disconnected channel discards it, so the report barrier cannot hang on
/// traces that will never be checked.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SubmitError;

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("checking engine is no longer accepting traces (workers terminated)")
    }
}

impl std::error::Error for SubmitError {}

/// Per-worker queue depth (in batches) that [`SessionBuilder`] derives when
/// none is configured explicitly: sized so the pipeline buffers roughly the
/// same number of *traces* regardless of batch size.
///
/// The engine's historical default of 256 was tuned for unbatched
/// submission. A batched session multiplies it: 256 batches of 32 traces is
/// an 8192-trace pipeline whose memory high-water dwarfs the checking
/// backlog it buys, while a *fixed* small depth starves the unbatched path.
/// Deriving `256 / batch_capacity` (floored at 8 so a worker always has a
/// few batches of slack, capped at the historical 256) keeps the buffered
/// trace count — and therefore backpressure onset — consistent across batch
/// sizes. See DESIGN.md §12.
///
/// [`SessionBuilder`]: crate::SessionBuilder
#[must_use]
pub fn derived_queue_capacity(batch_capacity: usize) -> usize {
    (256 / batch_capacity.max(1)).clamp(8, 256)
}

/// Pool of recycled [`CheckerScratch`] instances shared by the workers.
///
/// A worker takes one scratch per received batch and returns it afterwards,
/// so the pool never holds more instances than there are workers — but the
/// shadow memory, transaction log tree, and interner *allocations* inside
/// each instance survive indefinitely. Together with the entry
/// [`BufferPool`] this removes the last per-trace allocation from the
/// steady-state checking path.
struct ShadowPool {
    // Boxed so acquire/release move one pointer under the lock, not the
    // whole scratch struct.
    #[allow(clippy::vec_box)]
    free: Mutex<Vec<Box<CheckerScratch>>>,
    /// Acquisitions served by recycling a pooled instance.
    recycled: AtomicU64,
    /// Acquisitions that had to allocate a fresh instance.
    fresh: AtomicU64,
    /// Instances retained when released; beyond this they are dropped.
    cap: usize,
}

impl ShadowPool {
    fn new(cap: usize) -> Self {
        Self {
            free: Mutex::new(Vec::with_capacity(cap)),
            recycled: AtomicU64::new(0),
            fresh: AtomicU64::new(0),
            cap,
        }
    }

    fn acquire(&self) -> Box<CheckerScratch> {
        if let Some(scratch) = self.free.lock().pop() {
            self.recycled.fetch_add(1, Ordering::Relaxed);
            scratch
        } else {
            self.fresh.fetch_add(1, Ordering::Relaxed);
            Box::default()
        }
    }

    fn release(&self, scratch: Box<CheckerScratch>) {
        let mut free = self.free.lock();
        if free.len() < self.cap {
            free.push(scratch);
        }
    }

    /// (recycled, fresh) acquisition counts.
    fn counts(&self) -> (u64, u64) {
        (self.recycled.load(Ordering::Relaxed), self.fresh.load(Ordering::Relaxed))
    }
}

/// The decoupled checking engine: a master dispatching trace batches to a
/// pool of worker threads (Fig. 8).
///
/// The program under test keeps executing while workers validate completed
/// traces — this pipelining is the second half of the paper's performance
/// story (§3.2, "Runtime Testing"). [`Engine::wait_idle`] is the
/// `PMTest_GET_RESULT` barrier: it blocks until every submitted trace has
/// been checked.
///
/// Three mechanisms keep the submission path cheap (Fig. 12's scalability
/// depends on all of them):
///
/// * **Batching** — [`submit_batch`](Self::submit_batch) moves many traces
///   through the channel, the dispatch bookkeeping, and the idle-tracking
///   atomics in one step.
/// * **Sharded results** — each worker appends finished [`TraceReport`]s to
///   its own shard; shards merge only when a report is requested, so workers
///   never contend on a global results lock.
/// * **Buffer recycling** — workers return each trace's entry buffer to a
///   [`BufferPool`] that sessions draw from, keeping the per-trace heap
///   allocation off the hot path.
///
/// Dispatch combines submitter affinity with a bounded fill-first spill:
/// each submitting thread has a home worker, and a batch goes to the first
/// worker at or after the home index whose backlog is still shallow
/// (least-loaded once every queue in reach is saturated). The spill never
/// reaches further than the host's available parallelism — past that,
/// extra active workers only add context switches, so sustained overload
/// becomes backpressure on the submitter instead of a pool-wide wake-up.
/// The number of *active* workers therefore tracks the offered load — N
/// producers keep about N workers warm on N separate channels — which is
/// what keeps adding workers from ever reducing throughput on hosts with
/// fewer cores than workers.
///
/// # Examples
///
/// ```
/// use pmtest_core::{Engine, EngineConfig};
/// use pmtest_trace::{Event, Trace};
/// use pmtest_interval::ByteRange;
///
/// let engine = Engine::new(EngineConfig::default());
/// let mut trace = Trace::new(0);
/// let r = ByteRange::with_len(0, 8);
/// trace.push(Event::Write(r).here());
/// trace.push(Event::IsPersist(r).here()); // will FAIL
/// engine.submit(trace).unwrap();
/// let report = engine.take_report();
/// assert_eq!(report.fail_count(), 1);
/// ```
pub struct Engine {
    shared: Arc<Shared>,
    worker_txs: Vec<Sender<BatchMsg>>,
    next_worker: AtomicUsize,
    deterministic_dispatch: bool,
    queue_capacity: usize,
    /// How many workers (starting at the submitter's home index) dispatch
    /// may spill across: the host's available parallelism. Spilling wider
    /// can only add context switches — workers beyond the spill window are
    /// reached through backpressure, never through queue-hopping.
    spill_window: usize,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

struct Shared {
    /// Traces submitted but not yet checked. Producers only touch this
    /// atomic (plus the channel), keeping `submit` off the result shards.
    outstanding: AtomicU64,
    /// Per-worker result shards; worker `i` writes only `shards[i]`.
    shards: Vec<Mutex<Vec<TraceReport>>>,
    /// Results merged out of the shards so far, kept sorted by trace id.
    /// Drained by [`Engine::take_report`], appended to by every report
    /// request — so [`Engine::report`] clones an already-built [`Report`]
    /// and [`Engine::with_report`] borrows it without copying at all.
    collected: Mutex<Report>,
    /// Traces queued per worker, for load-aware dispatch.
    queued: Vec<AtomicU64>,
    /// Entry buffers recycled between workers (release) and sessions
    /// (acquire).
    pool: Arc<BufferPool>,
    /// Checker scratch state (shadow memory, tx scope, interner) recycled
    /// across batches, one instance held per busy worker.
    shadow_pool: ShadowPool,
    idle_lock: Mutex<()>,
    idle: Condvar,
    traces_checked: AtomicU64,
    entries_processed: AtomicU64,
    diagnostics: AtomicU64,
    batches_submitted: AtomicU64,
    traces_submitted: AtomicU64,
    queue_highwater: AtomicU64,
    backpressure_stalls: AtomicU64,
    /// Typed metric handles (histograms, per-kind diagnostic counters, the
    /// event ring). Always present; whether clocks are read depends on
    /// [`TelemetryConfig::timing`].
    telemetry: EngineTelemetry,
    /// Per-worker flight recorders. Empty unless
    /// [`TelemetryConfig::recorder`] is on, so the off path never touches
    /// them (`recorders.get(idx)` is `None`).
    recorders: Vec<FlightRecorder>,
    /// Diagnosis bundles captured on ERROR, drained by
    /// [`Engine::take_bundles`]. Bounded at [`MAX_BUNDLES`]; captures past
    /// the bound increment `bundles_dropped` instead of growing the queue.
    bundles: Mutex<Vec<DiagnosisBundle>>,
    /// ERROR bundles discarded because the bundle queue was full.
    bundles_dropped: AtomicU64,
    /// Name of the configured persistency model, for bundle headers built
    /// outside the workers ([`Engine::capture_bundle`]).
    model_name: String,
}

/// Most ERROR bundles retained between [`Engine::take_bundles`] drains. One
/// failing checker in a loop would otherwise buffer a window of every
/// iteration; the first failures are the interesting ones.
const MAX_BUNDLES: usize = 16;

/// Queued traces a worker absorbs before fill-first dispatch spills to the
/// next index (see [`Engine::pick_worker`]). Measured in traces, not
/// batches, so batched and unbatched submission spill at the same backlog.
/// Two 32-trace batches of slack keeps a worker fed across its dequeues
/// without letting long traces pile deeply behind one queue.
const QUEUE_SPILL_THRESHOLD: u64 = 64;

/// The submitting thread's dispatch-affinity slot: a small process-wide
/// sequence number assigned the first time a thread dispatches, reduced
/// `mod workers` into that thread's *home* worker. Distinct submitting
/// threads land on distinct home workers (until the pool size wraps), so
/// concurrent producers neither contend on one channel nor wake more
/// workers than there are producers.
fn submitter_slot() -> usize {
    use std::cell::Cell;
    static NEXT_SLOT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    SLOT.with(|slot| {
        let mut v = slot.get();
        if v == usize::MAX {
            v = NEXT_SLOT.fetch_add(1, Ordering::Relaxed);
            slot.set(v);
        }
        v
    })
}

impl Shared {
    /// Marks `n` traces as no longer outstanding, waking idle waiters when
    /// the count reaches zero. Used by workers after finishing a batch and
    /// by the dispatch rollback when a send fails.
    fn retire(&self, n: u64) {
        if self.outstanding.fetch_sub(n, Ordering::AcqRel) == n {
            // Last outstanding trace: wake any waiter. The brief lock pairs
            // with the wait in `wait_idle`.
            drop(self.idle_lock.lock());
            self.idle.notify_all();
        }
    }
}

/// Lifetime counters of an [`Engine`] (useful for the benchmark harnesses
/// and for sizing trace batches).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Traces fully checked.
    pub traces_checked: u64,
    /// Trace entries processed across all traces.
    pub entries_processed: u64,
    /// Diagnostics (FAIL + WARN) produced.
    pub diagnostics: u64,
    /// Batches accepted by [`Engine::submit`] / [`Engine::submit_batch`]
    /// (a bare `submit` counts as a batch of one).
    pub batches_submitted: u64,
    /// Traces accepted across all batches. `traces_submitted /
    /// batches_submitted` is the mean batch size.
    pub traces_submitted: u64,
    /// Highest number of traces ever queued on a single worker — how deep
    /// the checking pipeline ran behind the program.
    pub queue_highwater: u64,
    /// Times a submission found its worker's queue full and had to block
    /// until the worker caught up (Fig. 12a's backpressure regime).
    pub backpressure_stalls: u64,
}

impl EngineStats {
    /// Mean traces per submitted batch (0 if nothing was submitted).
    #[must_use]
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches_submitted == 0 {
            0.0
        } else {
            self.traces_submitted as f64 / self.batches_submitted as f64
        }
    }
}

impl Engine {
    /// Spawns the worker pool.
    ///
    /// # Panics
    ///
    /// Panics if `config.workers` or `config.queue_capacity` is zero.
    #[must_use]
    pub fn new(config: EngineConfig) -> Self {
        assert!(config.workers > 0, "engine needs at least one worker");
        assert!(config.queue_capacity > 0, "engine queue capacity must be positive");
        let shared = Arc::new(Shared {
            outstanding: AtomicU64::new(0),
            shards: (0..config.workers).map(|_| Mutex::new(Vec::new())).collect(),
            collected: Mutex::new(Report::default()),
            queued: (0..config.workers).map(|_| AtomicU64::new(0)).collect(),
            pool: Arc::new(BufferPool::new()),
            shadow_pool: ShadowPool::new(config.workers),
            idle_lock: Mutex::new(()),
            idle: Condvar::new(),
            traces_checked: AtomicU64::new(0),
            entries_processed: AtomicU64::new(0),
            diagnostics: AtomicU64::new(0),
            batches_submitted: AtomicU64::new(0),
            traces_submitted: AtomicU64::new(0),
            queue_highwater: AtomicU64::new(0),
            backpressure_stalls: AtomicU64::new(0),
            telemetry: EngineTelemetry::new(config.workers, config.telemetry),
            recorders: if config.telemetry.recorder {
                (0..config.workers)
                    .map(|_| FlightRecorder::new(config.telemetry.recorder_capacity))
                    .collect()
            } else {
                Vec::new()
            },
            bundles: Mutex::new(Vec::new()),
            bundles_dropped: AtomicU64::new(0),
            model_name: config.model.name().to_owned(),
        });
        let mut worker_txs = Vec::with_capacity(config.workers);
        let mut handles = Vec::with_capacity(config.workers);
        for i in 0..config.workers {
            let (tx, rx) = bounded::<BatchMsg>(config.queue_capacity);
            let shared = shared.clone();
            let model = config.model.clone();
            let handle = std::thread::Builder::new()
                .name(format!("pmtest-worker-{i}"))
                .spawn(move || {
                    while let Ok(msg) = rx.recv() {
                        // Destructured so the accounting guard outlives the
                        // checking: a panicking checker unwinds through it
                        // and the batch still retires (otherwise `wait_idle`
                        // would block forever on the lost traces).
                        let BatchMsg { traces, accounting: _accounting, submitted } = msg;
                        let dequeued = submitted.map(|sent| {
                            let now = Instant::now();
                            shared
                                .telemetry
                                .dispatch_latency
                                .record(now.duration_since(sent).as_nanos() as u64);
                            now
                        });
                        // One recycled scratch serves the whole batch; it is
                        // reset (not reallocated) between traces.
                        let mut scratch = shared.shadow_pool.acquire();
                        match traces {
                            TraceBatch::One(trace) => {
                                worker_check(&shared, i, &model, trace, &mut scratch);
                            }
                            TraceBatch::Many(traces) => {
                                for trace in traces {
                                    worker_check(&shared, i, &model, trace, &mut scratch);
                                }
                            }
                        }
                        shared.telemetry.segmap_repr_switches.add(scratch.take_repr_switch_delta());
                        shared.shadow_pool.release(scratch);
                        if let Some(start) = dequeued {
                            shared.telemetry.worker_busy[i].add(start.elapsed().as_nanos() as u64);
                        }
                    }
                })
                .expect("spawn pmtest worker");
            worker_txs.push(tx);
            handles.push(handle);
        }
        Self {
            shared,
            worker_txs,
            next_worker: AtomicUsize::new(0),
            deterministic_dispatch: config.deterministic_dispatch,
            queue_capacity: config.queue_capacity,
            spill_window: std::thread::available_parallelism()
                .map_or(1, std::num::NonZeroUsize::get)
                .min(config.workers),
            handles: Mutex::new(handles),
        }
    }

    /// Number of worker threads.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.worker_txs.len()
    }

    /// Per-worker queue depth, in batches (whatever
    /// [`EngineConfig::queue_capacity`] was at construction — possibly
    /// derived from the batch size, see [`derived_queue_capacity`]).
    #[must_use]
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// The pool of recycled trace-entry buffers. Sessions draw replacement
    /// buffers from here; workers return each checked trace's buffer.
    #[must_use]
    pub fn buffer_pool(&self) -> &Arc<BufferPool> {
        &self.shared.pool
    }

    /// Lifetime counters (never reset, even by
    /// [`take_report`](Self::take_report)).
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            traces_checked: self.shared.traces_checked.load(Ordering::Relaxed),
            entries_processed: self.shared.entries_processed.load(Ordering::Relaxed),
            diagnostics: self.shared.diagnostics.load(Ordering::Relaxed),
            batches_submitted: self.shared.batches_submitted.load(Ordering::Relaxed),
            traces_submitted: self.shared.traces_submitted.load(Ordering::Relaxed),
            queue_highwater: self.shared.queue_highwater.load(Ordering::Relaxed),
            backpressure_stalls: self.shared.backpressure_stalls.load(Ordering::Relaxed),
        }
    }

    /// The typed metric handles shared with sessions (batch-fill histogram,
    /// flush-cause counters).
    pub(crate) fn telemetry(&self) -> &EngineTelemetry {
        &self.shared.telemetry
    }

    /// The engine's structured event log. Empty unless
    /// [`TelemetryConfig::events`] is on (or it is enabled here at runtime
    /// via [`EventLog::set_enabled`]).
    #[must_use]
    pub fn event_log(&self) -> &EventLog {
        &self.shared.telemetry.events
    }

    /// A full machine-readable snapshot of the engine's telemetry: registry
    /// metrics (per-checker latency histograms, per-kind diagnostic
    /// counters, queue-depth and worker-utilization gauges), the lifetime
    /// [`EngineStats`] counters, buffer-pool statistics, live per-worker
    /// queue depths, and the contents of the event ring.
    ///
    /// Export it with [`TelemetrySnapshot::to_json_lines`],
    /// [`TelemetrySnapshot::to_prometheus`], or dump it to disk via
    /// [`pmtest_obs::writer`].
    #[must_use]
    pub fn telemetry_snapshot(&self) -> TelemetrySnapshot {
        let mut snap = self.shared.telemetry.snapshot();
        let stats = self.stats();
        snap.push_counter("engine_traces_checked", &[], stats.traces_checked);
        snap.push_counter("engine_entries_processed", &[], stats.entries_processed);
        snap.push_counter("engine_diagnostics", &[], stats.diagnostics);
        snap.push_counter("engine_batches_submitted", &[], stats.batches_submitted);
        snap.push_counter("engine_traces_submitted", &[], stats.traces_submitted);
        snap.push_counter("engine_queue_highwater", &[], stats.queue_highwater);
        snap.push_counter("engine_backpressure_stalls", &[], stats.backpressure_stalls);
        snap.push_gauge("engine_workers", &[], self.workers() as f64);
        for (i, queued) in self.shared.queued.iter().enumerate() {
            let worker = i.to_string();
            snap.push_gauge(
                "engine_worker_queued",
                &[("worker", &worker)],
                queued.load(Ordering::Relaxed) as f64,
            );
        }
        let pool = self.shared.pool.stats();
        snap.push_counter("pool_recycled", &[], pool.recycled);
        snap.push_counter("pool_fresh", &[], pool.fresh);
        snap.push_counter("pool_released", &[], pool.released);
        snap.push_counter("pool_dropped", &[], pool.dropped);
        snap.push_gauge("pool_hit_rate", &[], pool.hit_rate());
        let (recycled, fresh) = self.shared.shadow_pool.counts();
        snap.push_counter("shadow_pool_recycled", &[], recycled);
        snap.push_counter("shadow_pool_fresh", &[], fresh);
        let acquisitions = recycled + fresh;
        snap.push_gauge(
            "shadow_pool_hit_rate",
            &[],
            if acquisitions == 0 { 0.0 } else { recycled as f64 / acquisitions as f64 },
        );
        snap
    }

    /// One human-readable line summarizing [`telemetry_snapshot`]
    /// (Self::telemetry_snapshot): traces checked, check-latency quantiles,
    /// queue high-water, diagnostic totals.
    #[must_use]
    pub fn telemetry_summary(&self) -> String {
        crate::telemetry::summary_line(&self.telemetry_snapshot())
    }

    /// Aggregated [`TraceStats`] per worker — how checker-dense and
    /// epoch-dense each worker's share of the workload was. All zeros unless
    /// [`TelemetryConfig::timing`] is on.
    #[must_use]
    pub fn worker_trace_stats(&self) -> Vec<TraceStats> {
        self.shared.telemetry.worker_stats.iter().map(|s| *s.lock()).collect()
    }

    /// Submits one trace for asynchronous checking.
    ///
    /// # Errors
    ///
    /// Returns [`SubmitError`] if the worker pool has terminated (the engine
    /// was shut down, or a worker panicked); the trace is dropped.
    pub fn submit(&self, trace: Trace) -> Result<(), SubmitError> {
        self.dispatch(TraceBatch::One(trace))
    }

    /// Submits a batch of traces, all to the same worker, paying the
    /// dispatch cost once. An empty batch is a no-op.
    ///
    /// # Errors
    ///
    /// Returns [`SubmitError`] if the worker pool has terminated; the whole
    /// batch is dropped.
    pub fn submit_batch(&self, traces: Vec<Trace>) -> Result<(), SubmitError> {
        if traces.is_empty() {
            return Ok(());
        }
        self.dispatch(TraceBatch::Many(traces))
    }

    fn dispatch(&self, batch: TraceBatch) -> Result<(), SubmitError> {
        let n = batch.len();
        let idx = self.pick_worker();
        self.shared.outstanding.fetch_add(n, Ordering::AcqRel);
        let depth = self.shared.queued[idx].fetch_add(n, Ordering::Relaxed) + n;
        // From here the accounting settles when `msg` (or its batch) drops —
        // whether the worker finishes it, a panicking checker abandons it,
        // or a disconnected channel discards it. No explicit rollback.
        let msg = BatchMsg {
            traces: batch,
            accounting: BatchAccounting { shared: self.shared.clone(), idx, n },
            submitted: self.shared.telemetry.timing.then(Instant::now),
        };
        let msg = match self.worker_txs[idx].try_send(msg) {
            Ok(()) => {
                self.note_submitted(n, depth);
                return Ok(());
            }
            Err(TrySendError::Full(msg)) => {
                // Queue full: the program now blocks behind the checking
                // pipeline — the backpressure regime of Fig. 12a.
                self.shared.backpressure_stalls.fetch_add(1, Ordering::Relaxed);
                msg
            }
            Err(TrySendError::Disconnected(_)) => return Err(SubmitError),
        };
        match self.worker_txs[idx].send(msg) {
            Ok(()) => {
                self.note_submitted(n, depth);
                Ok(())
            }
            Err(_) => Err(SubmitError),
        }
    }

    /// Records a successfully delivered batch: submission counters, plus the
    /// queue high-water mark. The mark is only updated here — after the send
    /// — so a batch bounced off a disconnected channel never records a queue
    /// depth that existed only on paper.
    fn note_submitted(&self, n: u64, depth: u64) {
        self.shared.batches_submitted.fetch_add(1, Ordering::Relaxed);
        self.shared.traces_submitted.fetch_add(n, Ordering::Relaxed);
        self.shared.queue_highwater.fetch_max(depth, Ordering::Relaxed);
        // Sampled on every submit: the depth the delivered batch landed at.
        self.shared.telemetry.queue_depth.set(depth);
    }

    /// Affinity + fill-first dispatch: each submitting thread has a *home*
    /// worker; a batch goes to the first worker at or after the home index
    /// whose backlog is under [`QUEUE_SPILL_THRESHOLD`] traces, and to the
    /// least-loaded queue when every worker is past it. With
    /// [`EngineConfig::deterministic_dispatch`] the scan is skipped and a
    /// round-robin rotation decides.
    ///
    /// Dispatch used to pick the minimum-depth queue with a rotating
    /// tie-break, which inverted scaling on oversubscribed hosts (8 workers
    /// *slower* than 4 at the same load): any non-empty queue loses the
    /// depth comparison to an empty one, so under continuous submission
    /// every batch went to a different — usually sleeping — worker and the
    /// active set was always the whole pool, paying a wake/sleep transition
    /// per batch and context-switching among more threads than cores. Home
    /// affinity makes the active set track the number of *submitting
    /// threads* instead: N producers feed (about) N warm workers and their
    /// N separate channels (submission contention stays split), while
    /// excess workers sleep. The fill-first spill engages further workers
    /// when a home queue develops a real backlog — but only within the
    /// host's available parallelism (`spill_window`): past that, an extra
    /// active worker can only add context switches, so sustained overload
    /// turns into backpressure on the submitter (Fig. 12a's regime) rather
    /// than a pool-wide wake-up.
    fn pick_worker(&self) -> usize {
        let workers = self.worker_txs.len();
        if workers == 1 {
            return 0;
        }
        if self.deterministic_dispatch {
            return self.next_worker.fetch_add(1, Ordering::Relaxed) % workers;
        }
        let home = submitter_slot() % workers;
        let mut best = home;
        let mut best_depth = u64::MAX;
        for offset in 0..self.spill_window {
            let idx = (home + offset) % workers;
            let depth = self.shared.queued[idx].load(Ordering::Relaxed);
            if depth < QUEUE_SPILL_THRESHOLD {
                return idx;
            }
            if depth < best_depth {
                best = idx;
                best_depth = depth;
            }
        }
        best
    }

    /// Blocks until every submitted trace has been checked
    /// (`PMTest_GET_RESULT`, §4.2).
    pub fn wait_idle(&self) {
        if self.shared.outstanding.load(Ordering::Acquire) == 0 {
            return;
        }
        let mut guard = self.shared.idle_lock.lock();
        while self.shared.outstanding.load(Ordering::Acquire) > 0 {
            self.shared.idle.wait(&mut guard);
        }
    }

    /// Merges every worker shard into the accumulated, sorted [`Report`].
    /// Callers must already hold no shard or collected lock.
    fn drain_shards(&self) -> parking_lot::MutexGuard<'_, Report> {
        let mut collected = self.shared.collected.lock();
        for shard in &self.shared.shards {
            collected.extend_traces(std::mem::take(&mut *shard.lock()));
        }
        collected
    }

    /// Waits for all outstanding traces, then returns a copy of every result
    /// so far (results keep accumulating). The accumulated report is kept
    /// merged and sorted between calls, so each call clones only once — for
    /// read-only access without even that clone, use
    /// [`with_report`](Self::with_report).
    #[must_use]
    pub fn report(&self) -> Report {
        self.wait_idle();
        self.drain_shards().clone()
    }

    /// Waits for all outstanding traces, then runs `f` on a borrow of the
    /// accumulated results — the zero-copy variant of
    /// [`report`](Self::report). Results keep accumulating; `f` must not
    /// call back into report methods (the results lock is held).
    pub fn with_report<R>(&self, f: impl FnOnce(&Report) -> R) -> R {
        self.wait_idle();
        f(&self.drain_shards())
    }

    /// Waits for all outstanding traces, then drains and returns the results.
    #[must_use]
    pub fn take_report(&self) -> Report {
        self.wait_idle();
        std::mem::take(&mut *self.drain_shards())
    }

    /// Drains the diagnosis bundles captured so far (one per ERROR trace
    /// while [`TelemetryConfig::recorder`] is on, bounded at 16 between
    /// drains — the counterexamples that matter are the first ones).
    /// Returns an empty vec when the recorder is off.
    #[must_use]
    pub fn take_bundles(&self) -> Vec<DiagnosisBundle> {
        self.wait_idle();
        std::mem::take(&mut *self.shared.bundles.lock())
    }

    /// ERROR bundles discarded because more than 16 traces failed between
    /// [`take_bundles`](Self::take_bundles) drains.
    #[must_use]
    pub fn bundles_dropped(&self) -> u64 {
        self.shared.bundles_dropped.load(Ordering::Relaxed)
    }

    /// On-demand capture: waits for the pipeline to drain, then freezes
    /// every worker's current flight-recorder window into a
    /// [`BundleReason::Manual`] bundle (one per worker that has recorded
    /// anything). Unlike the automatic ERROR path this does not require a
    /// failing checker — use it to inspect interval state of a passing run.
    /// Empty when the recorder is off.
    #[must_use]
    pub fn capture_bundle(&self) -> Vec<DiagnosisBundle> {
        self.wait_idle();
        self.shared
            .recorders
            .iter()
            .filter_map(|rec| {
                let steps = rec.window();
                let last = steps.last()?;
                Some(DiagnosisBundle::from_window(
                    &self.shared.model_name,
                    BundleReason::Manual,
                    last.trace_id,
                    Vec::new(),
                    steps,
                ))
            })
            .collect()
    }

    /// Shuts the worker pool down, returning everything checked so far
    /// (`PMTest_EXIT`, §4.2).
    ///
    /// Consumes the engine; the channels disconnect and workers are joined.
    /// `take_report` already waits for every outstanding trace, so this
    /// performs exactly one idle wait.
    pub fn shutdown(mut self) -> Report {
        let report = self.take_report();
        self.worker_txs.clear();
        for handle in std::mem::take(&mut *self.handles.lock()) {
            let _ = handle.join();
        }
        report
    }
}

/// Checks one trace on worker `idx`: runs the checkers on the worker's
/// recycled `scratch`, records stats, files the result in the worker's
/// shard, and recycles the entry buffer.
///
/// With the telemetry timing layer on, the checker loop is run manually so
/// each entry's cost lands in its [`CheckerCategory`] histogram
/// (`engine_checker_ns{checker=…}`) — `isPersist` separable from
/// `TX_CHECKER` separable from plain model replay; otherwise the trace goes
/// through the clock-free [`check_trace_with`] fast path. For built-in
/// models the whole-trace time also lands in `engine_fused_replay_ns`, the
/// latency of the fused single-pass replay.
///
/// [`CheckerCategory`]: crate::telemetry::CheckerCategory
fn worker_check(
    shared: &Shared,
    idx: usize,
    model: &Arc<dyn PersistencyModel>,
    trace: Trace,
    scratch: &mut CheckerScratch,
) {
    let timing = shared.telemetry.timing;
    let recorder = shared.recorders.get(idx);
    let trace_id = trace.id();
    let diags = if timing || recorder.is_some() {
        let started = Instant::now();
        let fused = model.builtin().is_some();
        let mut checker = TraceChecker::with_scratch(model.as_ref(), scratch);
        let mut last = started;
        for (index, entry) in trace.entries().iter().enumerate() {
            checker.process(entry);
            if timing {
                let now = Instant::now();
                shared
                    .telemetry
                    .checker_histogram(&entry.event)
                    .record(now.duration_since(last).as_nanos() as u64);
                last = now;
            }
            if let Some(rec) = recorder {
                rec.record(capture_step(trace_id, index, entry, checker.shadow()));
            }
        }
        let diags = checker.finish();
        if timing {
            let elapsed = started.elapsed().as_nanos() as u64;
            shared.telemetry.check_latency.record(elapsed);
            if fused {
                shared.telemetry.fused_replay.record(elapsed);
            }
            shared.telemetry.worker_stats[idx].lock().merge(&TraceStats::from_trace(&trace));
        }
        diags
    } else {
        check_trace_with(&trace, model.as_ref(), scratch)
    };
    if let Some(rec) = recorder {
        if diags.iter().any(|d| d.severity() == Severity::Fail) {
            let steps: Vec<_> =
                rec.window().into_iter().filter(|s| s.trace_id == trace_id).collect();
            let bundle = DiagnosisBundle::from_window(
                model.name(),
                BundleReason::Error,
                trace_id,
                diags.clone(),
                steps,
            );
            let mut bundles = shared.bundles.lock();
            if bundles.len() < MAX_BUNDLES {
                bundles.push(bundle);
            } else {
                shared.bundles_dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    shared.traces_checked.fetch_add(1, Ordering::Relaxed);
    shared.entries_processed.fetch_add(trace.len() as u64, Ordering::Relaxed);
    shared.diagnostics.fetch_add(diags.len() as u64, Ordering::Relaxed);
    for diag in &diags {
        shared.telemetry.diag_counter(diag.kind).inc();
    }
    shared.shards[idx].lock().push(TraceReport { trace_id, diags });
    shared.pool.release(trace.into_entries());
}

impl Drop for Engine {
    fn drop(&mut self) {
        // Disconnect the channels so workers exit their recv loops.
        self.worker_txs.clear();
        for handle in std::mem::take(&mut *self.handles.lock()) {
            let _ = handle.join();
        }
    }
}

impl fmt::Debug for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("workers", &self.worker_txs.len())
            .field("outstanding", &self.shared.outstanding.load(Ordering::Relaxed))
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::DiagKind;
    use pmtest_interval::ByteRange;
    use pmtest_trace::Event;

    fn failing_trace(id: u64) -> Trace {
        let mut t = Trace::new(id);
        let r = ByteRange::with_len(0, 8);
        t.push(Event::Write(r).here());
        t.push(Event::IsPersist(r).here());
        t
    }

    fn clean_trace(id: u64) -> Trace {
        let mut t = Trace::new(id);
        let r = ByteRange::with_len(0, 8);
        t.push(Event::Write(r).here());
        t.push(Event::Flush(r).here());
        t.push(Event::Fence.here());
        t.push(Event::IsPersist(r).here());
        t
    }

    #[test]
    fn recorder_captures_a_bundle_on_error() {
        let engine = Engine::new(EngineConfig {
            telemetry: TelemetryConfig::recorder_only(),
            ..EngineConfig::default()
        });
        engine.submit(clean_trace(0)).unwrap();
        engine.submit(failing_trace(1)).unwrap();
        let bundles = engine.take_bundles();
        assert_eq!(bundles.len(), 1, "only the failing trace bundles");
        let b = &bundles[0];
        assert_eq!(b.reason, crate::BundleReason::Error);
        assert_eq!(b.trace_id, 1);
        assert_eq!(b.model, "x86");
        assert_eq!(b.firing, Some(0));
        // The window is filtered to the failing trace's own steps.
        assert_eq!(b.steps.len(), 2);
        assert!(b.steps.iter().all(|s| s.trace_id == 1));
        assert_eq!(b.diags[0].kind, DiagKind::NotPersisted);
        // Drained: a second take sees nothing new.
        assert!(engine.take_bundles().is_empty());
        assert_eq!(engine.bundles_dropped(), 0);
    }

    #[test]
    fn bundle_queue_is_bounded() {
        let engine = Engine::new(EngineConfig {
            telemetry: TelemetryConfig::recorder_only(),
            ..EngineConfig::default()
        });
        for id in 0..20 {
            engine.submit(failing_trace(id)).unwrap();
        }
        engine.wait_idle();
        assert_eq!(engine.take_bundles().len(), 16);
        assert_eq!(engine.bundles_dropped(), 4);
    }

    #[test]
    fn capture_bundle_freezes_windows_on_demand() {
        let engine = Engine::new(EngineConfig {
            telemetry: TelemetryConfig::recorder_only(),
            ..EngineConfig::default()
        });
        engine.submit(clean_trace(3)).unwrap();
        let bundles = engine.capture_bundle();
        assert_eq!(bundles.len(), 1);
        assert_eq!(bundles[0].reason, crate::BundleReason::Manual);
        assert_eq!(bundles[0].trace_id, 3);
        assert_eq!(bundles[0].steps.len(), 4);
        assert!(bundles[0].diags.is_empty());
        // No ERROR fired, so nothing landed in the automatic queue.
        assert!(engine.take_bundles().is_empty());
    }

    #[test]
    fn recorder_off_captures_nothing() {
        let engine = Engine::new(EngineConfig::default());
        engine.submit(failing_trace(0)).unwrap();
        assert!(engine.take_bundles().is_empty());
        assert!(engine.capture_bundle().is_empty());
        assert_eq!(engine.take_report().fail_count(), 1);
    }

    #[test]
    fn recorder_does_not_change_the_report() {
        let plain = Engine::new(EngineConfig::default());
        let recorded = Engine::new(EngineConfig {
            telemetry: TelemetryConfig::recorder_only(),
            ..EngineConfig::default()
        });
        for id in 0..8 {
            let mk = if id % 2 == 0 { failing_trace } else { clean_trace };
            plain.submit(mk(id)).unwrap();
            recorded.submit(mk(id)).unwrap();
        }
        assert_eq!(plain.take_report(), recorded.take_report());
    }

    #[test]
    fn single_worker_checks_in_submission_order() {
        let engine = Engine::new(EngineConfig::default());
        for id in 0..10 {
            engine.submit(if id % 2 == 0 { failing_trace(id) } else { clean_trace(id) }).unwrap();
        }
        let report = engine.take_report();
        assert_eq!(report.traces().len(), 10);
        assert_eq!(report.fail_count(), 5);
        let ids: Vec<u64> = report.traces().iter().map(|t| t.trace_id).collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn multiple_workers_produce_the_same_report() {
        let engine = Engine::new(EngineConfig { workers: 4, ..EngineConfig::default() });
        assert_eq!(engine.workers(), 4);
        for id in 0..100 {
            engine.submit(failing_trace(id)).unwrap();
        }
        let report = engine.take_report();
        assert_eq!(report.traces().len(), 100);
        assert_eq!(report.fail_count(), 100);
        assert!(report.iter().all(|d| d.kind == DiagKind::NotPersisted));
    }

    #[test]
    fn report_accumulates_take_drains() {
        let engine = Engine::new(EngineConfig::default());
        engine.submit(failing_trace(0)).unwrap();
        assert_eq!(engine.report().fail_count(), 1);
        engine.submit(failing_trace(1)).unwrap();
        assert_eq!(engine.report().fail_count(), 2, "report keeps history");
        assert_eq!(engine.take_report().fail_count(), 2);
        assert_eq!(engine.report().fail_count(), 0, "take drained");
    }

    #[test]
    fn wait_idle_on_empty_engine_returns() {
        let engine = Engine::new(EngineConfig::default());
        engine.wait_idle();
        assert!(engine.report().is_clean());
    }

    #[test]
    fn submissions_from_many_threads() {
        let engine = Arc::new(Engine::new(EngineConfig { workers: 2, ..EngineConfig::default() }));
        std::thread::scope(|s| {
            for t in 0..4 {
                let engine = engine.clone();
                s.spawn(move || {
                    for i in 0..25 {
                        engine.submit(clean_trace(t * 25 + i)).unwrap();
                    }
                });
            }
        });
        let report = engine.take_report();
        assert_eq!(report.traces().len(), 100);
        assert!(report.is_clean());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = Engine::new(EngineConfig { workers: 0, ..EngineConfig::default() });
    }

    #[test]
    fn batch_submission_checks_every_trace() {
        let engine = Engine::new(EngineConfig { workers: 3, ..EngineConfig::default() });
        engine.submit_batch(Vec::new()).unwrap(); // no-op
        engine.submit_batch((0..32).map(failing_trace).collect()).unwrap();
        engine.submit_batch((32..64).map(clean_trace).collect()).unwrap();
        let report = engine.take_report();
        assert_eq!(report.traces().len(), 64);
        assert_eq!(report.fail_count(), 32);
        let ids: Vec<u64> = report.traces().iter().map(|t| t.trace_id).collect();
        assert_eq!(ids, (0..64).collect::<Vec<_>>(), "merge is ordered by trace id");
    }

    #[test]
    fn stats_track_batches_and_queue_depth() {
        let engine = Engine::new(EngineConfig::default());
        engine.submit(clean_trace(0)).unwrap();
        engine.submit_batch((1..32).map(clean_trace).collect()).unwrap();
        engine.wait_idle();
        let stats = engine.stats();
        assert_eq!(stats.batches_submitted, 2, "empty batches are not counted");
        assert_eq!(stats.traces_submitted, 32);
        assert_eq!(stats.traces_checked, 32);
        assert!(stats.queue_highwater >= 31, "batch of 31 must register in the high-water mark");
        assert!((stats.mean_batch_size() - 16.0).abs() < f64::EPSILON);
    }

    #[test]
    fn backpressure_stalls_are_counted_and_survivable() {
        // One worker with a one-batch queue: the second in-flight submission
        // must stall until the worker drains the first.
        let engine = Engine::new(EngineConfig { queue_capacity: 1, ..EngineConfig::default() });
        for id in 0..200 {
            engine.submit(failing_trace(id)).unwrap();
        }
        let report = engine.take_report();
        assert_eq!(report.traces().len(), 200, "stalled submissions still deliver");
        assert!(engine.stats().backpressure_stalls > 0, "queue of 1 must have stalled");
    }

    #[test]
    fn buffers_are_recycled_through_the_pool() {
        let engine = Engine::new(EngineConfig::default());
        for id in 0..50 {
            engine.submit(clean_trace(id)).unwrap();
        }
        engine.wait_idle();
        let stats = engine.buffer_pool().stats();
        assert_eq!(stats.released, 50, "every checked trace returns its buffer");
        let buf = engine.buffer_pool().acquire();
        assert!(buf.is_empty(), "recycled buffer must be cleared");
    }

    #[test]
    fn shutdown_returns_full_report_once() {
        let engine = Engine::new(EngineConfig { workers: 2, ..EngineConfig::default() });
        for id in 0..20 {
            engine.submit(failing_trace(id)).unwrap();
        }
        let report = engine.shutdown();
        assert_eq!(report.traces().len(), 20);
        assert_eq!(report.fail_count(), 20);
    }

    #[test]
    fn with_report_borrows_accumulated_results() {
        let engine = Engine::new(EngineConfig::default());
        engine.submit(failing_trace(0)).unwrap();
        assert_eq!(engine.with_report(Report::fail_count), 1);
        engine.submit(failing_trace(1)).unwrap();
        assert_eq!(engine.with_report(Report::fail_count), 2, "results accumulate");
        assert_eq!(engine.take_report().fail_count(), 2);
        assert_eq!(engine.with_report(|r| r.traces().len()), 0, "take drained");
    }

    #[test]
    fn telemetry_snapshot_counts_diagnostics_by_kind() {
        let engine = Engine::new(EngineConfig::default());
        for id in 0..4 {
            engine.submit(failing_trace(id)).unwrap();
        }
        engine.wait_idle();
        let snap = engine.telemetry_snapshot();
        assert_eq!(snap.counter("engine_traces_checked"), Some(4));
        assert_eq!(snap.counter("engine_entries_processed"), Some(8));
        let not_persisted = snap
            .counters
            .iter()
            .find(|c| {
                c.name == "engine_diag_total"
                    && c.labels.iter().any(|(k, v)| k == "code" && v == "not_persisted")
            })
            .expect("per-kind counter registered");
        assert_eq!(not_persisted.value, 4);
        assert!(not_persisted.labels.iter().any(|(k, v)| k == "severity" && v == "FAIL"));
        assert_eq!(snap.counter_sum("engine_diag_total"), 4, "no other kind fired");
        assert!(snap.gauge("engine_queue_depth").is_some(), "sampled on submit");
        assert!(snap.gauge("pool_hit_rate").is_some());
        // Timing layer off: histograms exist but hold no observations, and
        // the per-worker trace stats stay zero.
        assert_eq!(snap.histogram("engine_check_latency_ns").unwrap().count, 0);
        assert_eq!(engine.worker_trace_stats(), vec![TraceStats::default()]);
        assert!(engine.telemetry_summary().contains("timing off"));
    }

    #[test]
    fn shadow_pool_recycles_scratch_state_across_batches() {
        let engine = Engine::new(EngineConfig::default());
        for id in 0..50 {
            engine.submit(clean_trace(id)).unwrap();
        }
        engine.wait_idle();
        let snap = engine.telemetry_snapshot();
        let recycled = snap.counter("shadow_pool_recycled").unwrap_or(0);
        let fresh = snap.counter("shadow_pool_fresh").unwrap();
        assert_eq!(fresh, 1, "one worker allocates scratch state exactly once");
        assert_eq!(recycled + fresh, 50, "one acquisition per single-trace batch");
        let hit = snap.gauge("shadow_pool_hit_rate").unwrap();
        assert!(hit > 0.9, "steady state must recycle, hit rate {hit}");
        // Tiny clean traces never push a segment map past the flat
        // representation.
        assert_eq!(snap.counter("engine_segmap_repr_switches"), Some(0));
    }

    #[test]
    fn queue_capacity_is_reported() {
        let engine = Engine::new(EngineConfig { queue_capacity: 42, ..EngineConfig::default() });
        assert_eq!(engine.queue_capacity(), 42);
    }

    #[test]
    fn derived_queue_capacity_keeps_the_trace_window_consistent() {
        assert_eq!(derived_queue_capacity(1), 256, "unbatched default unchanged");
        assert_eq!(derived_queue_capacity(0), 256, "degenerate batch treated as 1");
        assert_eq!(derived_queue_capacity(4), 64);
        assert_eq!(derived_queue_capacity(32), 8);
        assert_eq!(derived_queue_capacity(1024), 8, "floor keeps slack for workers");
    }

    #[test]
    fn timing_layer_populates_latency_histograms_and_worker_stats() {
        let engine = Engine::new(EngineConfig {
            telemetry: TelemetryConfig::enabled(),
            ..EngineConfig::default()
        });
        for id in 0..8 {
            engine.submit(clean_trace(id)).unwrap();
        }
        engine.wait_idle();
        let snap = engine.telemetry_snapshot();
        let check = snap.histogram("engine_check_latency_ns").unwrap();
        assert_eq!(check.count, 8);
        assert!(check.p50 > 0.0 && check.p99 >= check.p50);
        let is_persist = snap.histogram_with("engine_checker_ns", "checker", "is_persist").unwrap();
        assert_eq!(is_persist.count, 8, "one isPersist per clean trace");
        let replay = snap.histogram_with("engine_checker_ns", "checker", "model_replay").unwrap();
        assert_eq!(replay.count, 24, "write + flush + fence per clean trace");
        assert_eq!(snap.histogram("engine_dispatch_latency_ns").unwrap().count, 8);
        assert!(snap.counter_sum("engine_worker_busy_ns") > 0);
        assert!(snap.gauge("engine_worker_utilization").is_some());
        let mut totals = TraceStats::default();
        for stats in engine.worker_trace_stats() {
            totals.merge(&stats);
        }
        assert_eq!(totals.writes, 8);
        assert_eq!(totals.entries, 32);
        assert_eq!(snap.counter_sum("engine_worker_entries"), 32);
        let summary = engine.telemetry_summary();
        assert!(summary.contains("8 traces checked"), "{summary}");
        assert!(summary.contains("p50"), "{summary}");
    }

    /// A model whose checkers panic, killing the worker thread — the only
    /// way the submission channel can disconnect while an `Engine` is alive.
    #[derive(Debug)]
    struct PanickingModel;

    impl PersistencyModel for PanickingModel {
        fn name(&self) -> &str {
            "panicking"
        }

        fn apply(
            &self,
            _shadow: &mut crate::shadow::ShadowMemory,
            _entry: &pmtest_trace::Entry,
            _diags: &mut Vec<crate::diag::Diag>,
        ) {
            panic!("model deliberately kills the worker");
        }

        fn check_persist(
            &self,
            _shadow: &crate::shadow::ShadowMemory,
            _range: ByteRange,
            _loc: pmtest_trace::SourceLoc,
            _diags: &mut Vec<crate::diag::Diag>,
        ) {
            panic!("model deliberately kills the worker");
        }

        fn check_ordered_before(
            &self,
            _shadow: &crate::shadow::ShadowMemory,
            _first: ByteRange,
            _second: ByteRange,
            _loc: pmtest_trace::SourceLoc,
            _diags: &mut Vec<crate::diag::Diag>,
        ) {
            panic!("model deliberately kills the worker");
        }
    }

    #[test]
    fn submit_after_worker_death_is_an_error_not_a_panic() {
        let engine = Engine::new(EngineConfig {
            model: Arc::new(PanickingModel),
            ..EngineConfig::default()
        });
        let mut t = Trace::new(0);
        t.push(Event::Write(ByteRange::with_len(0, 8)).here());
        let _ = engine.submit(t); // worker dies checking this trace
                                  // Spin until the death is observable as a disconnected channel.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            let mut t = Trace::new(1);
            t.push(Event::Write(ByteRange::with_len(0, 8)).here());
            match engine.submit(t) {
                Err(SubmitError) => break,
                Ok(()) => assert!(
                    std::time::Instant::now() < deadline,
                    "worker death never surfaced as SubmitError"
                ),
            }
            std::thread::yield_now();
        }
        assert!(SubmitError.to_string().contains("no longer accepting"));
    }

    #[test]
    fn report_does_not_hang_after_worker_panic() {
        // A panicking checker must not strand its batch's accounting: the
        // abandoned batch, and any batches later discarded by the
        // disconnected channel, all have to retire or this report blocks
        // forever.
        let engine = Engine::new(EngineConfig {
            model: Arc::new(PanickingModel),
            queue_capacity: 4,
            ..EngineConfig::default()
        });
        for id in 0..50 {
            let mut t = Trace::new(id);
            t.push(Event::Write(ByteRange::with_len(0, 8)).here());
            // Early submissions kill the worker; later ones race the death
            // and either land in the dying queue or error out. Every
            // accepted trace must still retire.
            let _ = engine.submit(t);
        }
        let report = engine.report();
        assert!(report.traces().is_empty(), "no trace survives a panicking checker");
        assert!(engine.take_report().is_clean());
    }
}
