use std::fmt;

/// A fence-delimited epoch number.
///
/// The engine breaks a thread's execution into epochs separated by ordering
/// points (`sfence` on x86; `ofence`/`dfence` on HOPS) and uses the epoch as
/// its unit of time (§3.1): the global timestamp starts at 0 and increments
/// at every fence.
pub type Epoch = u64;

/// The epoch window in which a write may become durable (§3.1).
///
/// `(start, ∞)` means the write may persist at any time from `start` onward
/// but is never *guaranteed* to; a closed interval `(start, end)` means the
/// write is guaranteed durable once the fence that began epoch `end`
/// completes.
///
/// # Examples
///
/// ```
/// use pmtest_core::EpochInterval;
///
/// let a = EpochInterval::closed(0, 1);
/// let b = EpochInterval::open(1);
/// assert!(a.is_closed());
/// assert!(!b.is_closed());
/// assert!(a.ends_before_starts(&b), "Fig. 7: (0,1) is ordered before (1,∞)");
/// assert!(!a.overlaps(&b));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EpochInterval {
    start: Epoch,
    end: Option<Epoch>,
}

impl EpochInterval {
    /// An interval that opened at `start` and may persist any time onward.
    #[must_use]
    pub fn open(start: Epoch) -> Self {
        Self { start, end: None }
    }

    /// An interval guaranteed to complete by `end`.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    #[must_use]
    pub fn closed(start: Epoch, end: Epoch) -> Self {
        assert!(end >= start, "interval end {end} before start {start}");
        Self { start, end: Some(end) }
    }

    /// The epoch in which the write was issued.
    #[must_use]
    pub fn start(&self) -> Epoch {
        self.start
    }

    /// The epoch by which the write is guaranteed durable, if any.
    #[must_use]
    pub fn end(&self) -> Option<Epoch> {
        self.end
    }

    /// Whether the write is guaranteed durable ([`end`](Self::end) is set).
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.end.is_some()
    }

    /// Closes the interval at `end` if it is still open.
    pub fn close(&mut self, end: Epoch) {
        if self.end.is_none() {
            debug_assert!(end >= self.start);
            self.end = Some(end);
        }
    }

    /// Whether the two windows can both be "in flight" at the same time —
    /// the paper's overlap test for `isOrderedBefore` (§4.4).
    #[must_use]
    pub fn overlaps(&self, other: &EpochInterval) -> bool {
        let self_before = matches!(self.end, Some(e) if e <= other.start);
        let other_before = matches!(other.end, Some(e) if e <= self.start);
        !(self_before || other_before)
    }

    /// Whether this write is guaranteed durable before `other` can begin to
    /// persist: closed, with `end <= other.start`.
    #[must_use]
    pub fn ends_before_starts(&self, other: &EpochInterval) -> bool {
        matches!(self.end, Some(e) if e <= other.start)
    }

    /// Whether this write was issued in a strictly earlier epoch than
    /// `other` — the HOPS ordering test (§5.2), where fences already order
    /// persists across epochs.
    #[must_use]
    pub fn starts_before(&self, other: &EpochInterval) -> bool {
        self.start < other.start
    }
}

impl fmt::Display for EpochInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.end {
            Some(e) => write!(f, "({}, {})", self.start, e),
            None => write!(f, "({}, \u{221e})", self.start),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_and_closed_basics() {
        let o = EpochInterval::open(3);
        assert_eq!(o.start(), 3);
        assert_eq!(o.end(), None);
        assert!(!o.is_closed());
        let c = EpochInterval::closed(3, 5);
        assert!(c.is_closed());
        assert_eq!(c.end(), Some(5));
    }

    #[test]
    #[should_panic(expected = "before start")]
    fn inverted_interval_panics() {
        let _ = EpochInterval::closed(5, 3);
    }

    #[test]
    fn close_is_idempotent() {
        let mut iv = EpochInterval::open(1);
        iv.close(4);
        assert_eq!(iv.end(), Some(4));
        iv.close(9);
        assert_eq!(iv.end(), Some(4), "already closed stays put");
    }

    #[test]
    fn figure7_semantics() {
        // PI(0x10) = (0,1), PI(0x50) = (1,∞): ordered, not overlapping.
        let a = EpochInterval::closed(0, 1);
        let b = EpochInterval::open(1);
        assert!(!a.overlaps(&b));
        assert!(a.ends_before_starts(&b));
        assert!(!b.ends_before_starts(&a));
    }

    #[test]
    fn figure4_semantics() {
        // PI(A) = (1,2), PI(B) = (1,∞): overlap ⇒ isOrderedBefore fails.
        let a = EpochInterval::closed(1, 2);
        let b = EpochInterval::open(1);
        assert!(a.overlaps(&b));
        assert!(!a.ends_before_starts(&b));
    }

    #[test]
    fn two_open_intervals_overlap() {
        let a = EpochInterval::open(0);
        let b = EpochInterval::open(5);
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
    }

    #[test]
    fn disjoint_closed_intervals_do_not_overlap() {
        let a = EpochInterval::closed(0, 1);
        let b = EpochInterval::closed(1, 2);
        assert!(!a.overlaps(&b));
        assert!(a.ends_before_starts(&b));
        // Reverse direction detected.
        assert!(!b.ends_before_starts(&a));
    }

    #[test]
    fn hops_starts_before() {
        let a = EpochInterval::open(0);
        let b = EpochInterval::open(1);
        assert!(a.starts_before(&b));
        assert!(!b.starts_before(&a));
        assert!(!a.starts_before(&EpochInterval::open(0)), "same epoch unordered");
    }

    #[test]
    fn display_uses_infinity() {
        assert_eq!(EpochInterval::open(2).to_string(), "(2, ∞)");
        assert_eq!(EpochInterval::closed(0, 1).to_string(), "(0, 1)");
    }
}
