//! Golden advisor reports and renders.
//!
//! Two hand-written wasteful programs — one per dialect, planting the same
//! duplicate-flush / duplicate-log / extra-fence patterns — are profiled on
//! an engine and pinned three ways: the `ADVISOR_*.json` document must stay
//! byte-identical, the `pmtest-explain --advise` render must stay
//! byte-identical, and the JSON must pass the `obs-check` advisor
//! validation. Regenerate with `PMTEST_BLESS=1 cargo test -p
//! pmtest-explain`.

use std::path::PathBuf;

use pmtest_difftest::program::Program;
use pmtest_explain::{profile_program, render_advisor, render_advisor_diff};
use pmtest_obs::advisor::{self, AdvisorReport};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn check_golden(name: &str, got: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("PMTEST_BLESS").is_some() {
        std::fs::create_dir_all(golden_dir()).expect("create golden dir");
        std::fs::write(&path, got).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden {} ({e}); regenerate with PMTEST_BLESS=1", path.display())
    });
    assert_eq!(got, &golden, "{name}: drifted; PMTEST_BLESS=1 to regenerate");
}

/// x86 dialect: duplicate flush, duplicate undo-log entry, back-to-back
/// fences, and a flush of never-written data.
fn wasteful_x86() -> Program {
    Program::from_text(
        "dialect x86\n\
         tx_begin\n\
         tx_add 0 8\n\
         tx_add 0 8\n\
         write 0 8\n\
         flush 0 64\n\
         flush 0 64\n\
         fence\n\
         fence\n\
         flush 128 64\n\
         fence\n\
         tx_commit\n",
    )
    .expect("valid x86 program")
}

/// HOPS dialect: the same wasteful shapes expressed with ofence/dfence —
/// the profiler detects them dialect-independently even though the HOPS
/// checkers treat flush/fence as foreign operations.
fn wasteful_hops() -> Program {
    Program::from_text(
        "dialect hops\n\
         tx_begin\n\
         tx_add 0 8\n\
         tx_add 0 8\n\
         write 0 8\n\
         ofence\n\
         ofence\n\
         write 64 8\n\
         dfence\n\
         dfence\n\
         tx_commit\n",
    )
    .expect("valid hops program")
}

#[test]
fn advisor_json_and_render_match_goldens() {
    for (stem, program) in [("advise_x86", wasteful_x86()), ("advise_hops", wasteful_hops())] {
        let report = profile_program(&program);
        let json = report.to_json();
        let stats = advisor::validate(&json)
            .unwrap_or_else(|e| panic!("{stem}: emitted advisor JSON fails validation: {e}"));
        assert!(stats.suggestions > 0, "{stem}: wasteful program must yield suggestions");
        check_golden(&format!("{stem}.json"), &json);
        check_golden(&format!("{stem}.advise.txt"), &render_advisor(&report, stem, 10));
    }
}

#[test]
fn advisor_report_is_byte_deterministic_across_runs() {
    let program = wasteful_x86();
    let first = profile_program(&program).to_json();
    for _ in 0..3 {
        assert_eq!(profile_program(&program).to_json(), first, "advisor JSON must be stable");
    }
}

#[test]
fn diff_against_fixed_program_matches_golden() {
    let old = profile_program(&wasteful_x86());
    // The "fixed" run: duplicate log, duplicate flushes, extra fences, and
    // the unwritten-range flush all removed.
    let fixed = Program::from_text(
        "dialect x86\n\
         tx_begin\n\
         tx_add 0 8\n\
         write 0 8\n\
         flush 0 64\n\
         fence\n\
         tx_commit\n",
    )
    .expect("valid x86 program");
    let new = profile_program(&fixed);
    check_golden("advise_x86.diff.txt", &render_advisor_diff(&old, &new, "advise_x86"));
}

#[test]
fn golden_json_round_trips_through_parser() {
    if std::env::var_os("PMTEST_BLESS").is_some() {
        return;
    }
    let text = std::fs::read_to_string(golden_dir().join("advise_x86.json"))
        .expect("golden present (PMTEST_BLESS=1 to regenerate)");
    let report = AdvisorReport::from_json(&text).expect("golden parses");
    assert_eq!(report.to_json(), text, "parse→serialize is the identity on the golden");
}
