//! Golden timeline renders for the committed difftest corpus.
//!
//! Every corpus seed has a checked-in `<stem>.explain.txt` render next to
//! it; this test replays `pmtest-explain`'s renderer over each program and
//! diffs against the golden. Regenerate with `PMTEST_BLESS=1 cargo test -p
//! pmtest-explain`.
//!
//! The acceptance-criteria cross-check rides along: the culprit the
//! timeline highlights must be exactly the `culprit` field the engine's
//! `Report::to_json_lines()` emits for the same program.

use pmtest_difftest::corpus::{corpus_dir, load_corpus};
use pmtest_difftest::exec::{run_engine, EngineRun};
use pmtest_explain::explain_program;
use pmtest_obs::json::{self, JsonValue};

fn render_culprit(render: &str) -> Option<String> {
    let line = render.lines().find(|l| l.starts_with("culprit: "))?;
    Some(line.trim_start_matches("culprit: ").split(' ').next().unwrap().to_owned())
}

/// The `culprit` of the first FAIL line of the engine's JSON-lines report.
fn report_culprit(program: &pmtest_difftest::program::Program) -> Option<String> {
    let report = run_engine(program, EngineRun { workers: 1, batch_capacity: 1 }, 1)
        .expect("engine accepts corpus program");
    for line in report.to_json_lines().lines() {
        let doc = json::parse(line).expect("report line parses");
        if doc.get("severity").and_then(JsonValue::as_str) == Some("FAIL") {
            return match doc.get("culprit") {
                Some(JsonValue::String(s)) => Some(s.clone()),
                _ => None,
            };
        }
    }
    None
}

#[test]
fn corpus_renders_match_goldens() {
    let bless = std::env::var_os("PMTEST_BLESS").is_some();
    let entries = load_corpus();
    assert!(!entries.is_empty(), "corpus must not be empty");
    for (name, program) in &entries {
        let stem = name.trim_end_matches(".txt");
        let render = explain_program(program, stem);
        let golden_path = corpus_dir().join(format!("{stem}.explain.txt"));
        if bless {
            std::fs::write(&golden_path, &render).expect("write golden");
            continue;
        }
        let golden = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
            panic!("missing golden {} ({e}); regenerate with PMTEST_BLESS=1", golden_path.display())
        });
        assert_eq!(render, golden, "{stem}: render drifted; PMTEST_BLESS=1 to regenerate");
    }
}

#[test]
fn highlighted_culprit_matches_the_engine_report() {
    for (name, program) in load_corpus() {
        let stem = name.trim_end_matches(".txt");
        let render = explain_program(&program, stem);
        let rendered = render_culprit(&render);
        let reported = report_culprit(&program);
        assert_eq!(
            rendered, reported,
            "{stem}: timeline culprit and Report::to_json_lines culprit disagree"
        );
        // Clean seeds must highlight nothing; failing seeds must locate.
        if render.contains("<- FAIL") {
            assert!(reported.is_some(), "{stem}: FAIL without a culprit");
            assert!(render.contains("<- culprit"), "{stem}: culprit row not highlighted");
        } else {
            assert!(reported.is_none(), "{stem}: clean render but reported culprit");
        }
    }
}
