//! End-to-end: a failing corpus program runs through a flight-recorder
//! engine, the emitted diagnosis bundle validates against the obs schema,
//! loads back, and renders the same culprit the direct program render
//! highlights.

use pmtest_core::{BundleReason, Engine, EngineConfig, TelemetryConfig};
use pmtest_difftest::corpus::load_corpus;
use pmtest_difftest::exec::model_for;
use pmtest_explain::{explain_bundle, explain_program, load_bundle};
use pmtest_obs::bundle::{is_bundle, validate_bundle};

fn recorder_engine(program: &pmtest_difftest::program::Program) -> Engine {
    Engine::new(EngineConfig {
        model: model_for(program.dialect),
        workers: 1,
        deterministic_dispatch: true,
        telemetry: TelemetryConfig {
            recorder_capacity: program.ops.len().max(1),
            ..TelemetryConfig::recorder_only()
        },
        ..EngineConfig::default()
    })
}

#[test]
fn corpus_bundles_validate_and_render_the_same_culprit() {
    for (name, program) in load_corpus() {
        let engine = recorder_engine(&program);
        engine.submit(program.trace(0)).unwrap();
        let report = engine.take_report();
        let mut bundles = engine.take_bundles();
        if report.fail_count() == 0 {
            assert!(bundles.is_empty(), "{name}: clean program must not auto-bundle");
            bundles = engine.capture_bundle();
            assert_eq!(bundles.len(), 1, "{name}: manual capture");
            assert_eq!(bundles[0].reason, BundleReason::Manual);
        } else {
            assert_eq!(bundles.len(), 1, "{name}: one ERROR bundle per failing trace");
            assert_eq!(bundles[0].reason, BundleReason::Error);
            assert!(bundles[0].firing.is_some());
        }
        let text = bundles[0].to_json_lines();
        assert!(is_bundle(&text), "{name}");
        validate_bundle(&text).unwrap_or_else(|e| panic!("{name}: emitted bundle invalid: {e}"));

        // The loaded window replays to the same number of entries (the
        // recorder saw the whole trace: capacity >= ops).
        let loaded = load_bundle(&text).unwrap();
        assert_eq!(loaded.trace.len(), program.trace(0).len(), "{name}");

        // And the bundle render highlights the same culprit line as the
        // direct program render.
        let direct = explain_program(&program, "direct");
        let via_bundle = explain_bundle(&text, "bundle").unwrap();
        let culprit_of = |render: &str| {
            render
                .lines()
                .find(|l| l.starts_with("culprit: "))
                .map(|l| l.split(' ').nth(1).unwrap().to_owned())
        };
        assert_eq!(culprit_of(&direct), culprit_of(&via_bundle), "{name}");
    }
}
