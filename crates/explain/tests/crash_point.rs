//! Crash-point timeline rendering: `explain_crash_point` splices a crash
//! divider into the epoch/interval grid and appends the oracle's
//! per-line pending/forced summary for the chosen point.

use pmtest_difftest::program::{Dialect, Op, Program};
use pmtest_explain::explain_crash_point;

fn sample() -> Program {
    Program {
        dialect: Dialect::X86,
        ops: vec![
            Op::Write { addr: 0, len: 8 },  // valued op 0
            Op::Flush { addr: 0, len: 8 },  // valued op 1
            Op::Fence,                      // valued op 2 -> boundary point 3
            Op::Write { addr: 64, len: 8 }, // valued op 3
            Op::CheckPersist { addr: 0, len: 8 },
        ],
    }
}

#[test]
fn boundary_point_renders_divider_and_state_summary() {
    let render = explain_crash_point(&sample(), "demo", 3).unwrap();
    // The divider lands after the fence row (program op 2) and before the
    // second write (program op 3).
    let divider = render.lines().position(|l| l.contains("CRASH point 3/4")).unwrap();
    let fence_row = render.lines().position(|l| l.contains("[2]")).unwrap();
    let write_row = render.lines().position(|l| l.contains("[3]")).unwrap();
    assert!(fence_row < divider && divider < write_row, "{render}");
    assert!(render.contains("fence boundary"), "{render}");
    // Only the first line is dirty, and its single store is forced durable.
    assert!(render.contains("dirty lines: 1, reachable states: 1"), "{render}");
    assert!(render.contains("1 forced durable"), "{render}");
    assert!(render.contains("every store is guaranteed durable"), "{render}");
}

#[test]
fn final_point_reports_worst_case_culprit() {
    // Point 4 is the end-of-program boundary: the second write is still
    // unflushed, so it is the earliest losable store; its site encodes the
    // program op index (difftest:3).
    let render = explain_crash_point(&sample(), "demo", 4).unwrap();
    assert!(render.contains("fence boundary"), "{render}");
    assert!(render.contains("worst-case culprit: op 3 @ difftest:3"), "{render}");
}

#[test]
fn interior_point_is_labeled_covered() {
    // Point 1: the first write has executed but its flush/fence have not —
    // an interior point whose states the next boundary covers.
    let render = explain_crash_point(&sample(), "demo", 1).unwrap();
    assert!(render.contains("interior"), "{render}");
    assert!(render.contains("dirty lines: 1, reachable states: 2"), "{render}");
    assert!(render.contains("worst-case culprit: op 0 @ difftest:0"), "{render}");
}

#[test]
fn point_zero_cuts_before_the_first_store() {
    let render = explain_crash_point(&sample(), "demo", 0).unwrap();
    let divider = render.lines().position(|l| l.contains("CRASH point 0/4")).unwrap();
    let first_row = render.lines().position(|l| l.contains("[0]")).unwrap();
    assert!(divider < first_row, "{render}");
    assert!(render.contains("dirty lines: 0, reachable states: 1"), "{render}");
}

#[test]
fn out_of_range_point_is_rejected() {
    let err = explain_crash_point(&sample(), "demo", 5).unwrap_err();
    assert!(err.contains("out of range"), "{err}");
}
