//! Advisor-report renderers: the human-readable face of the optimization
//! advisor's `ADVISOR_*.json` documents (see DESIGN.md §16).
//!
//! [`render_advisor`] prints the top-K suggestion table followed by a
//! per-site drill-down (each profiled site's operation mix, WARN
//! diagnostics, and the suggestions anchored there);
//! [`render_advisor_diff`] prints the run-over-run `(kind, site)` deltas —
//! regressions first — so persistency-efficiency changes review like bench
//! deltas. [`profile_program`] runs a difftest program through a
//! profiling-enabled engine so corpus seeds can be advised directly.

use std::fmt::Write as _;

use pmtest_core::{Engine, EngineConfig, TelemetryConfig};
use pmtest_difftest::exec::model_for;
use pmtest_difftest::program::Program;
use pmtest_obs::advisor::{diff, AdvisorReport};

/// Checks a difftest program on a single-worker, profiling-only engine and
/// returns the advisor's report for it.
#[must_use]
pub fn profile_program(program: &Program) -> AdvisorReport {
    let engine = Engine::new(EngineConfig {
        model: model_for(program.dialect),
        workers: 1,
        deterministic_dispatch: true,
        telemetry: TelemetryConfig::profiling_only(),
        ..EngineConfig::default()
    });
    engine.submit(program.trace(0)).expect("engine accepts one trace");
    engine.wait_idle();
    engine.advisor_report()
}

/// Renders an advisor report: header, top-`top` suggestion table, per-site
/// drill-down. `source` names the input in the first output line.
#[must_use]
pub fn render_advisor(report: &AdvisorReport, source: &str, top: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "pmtest-advise: {source}");
    let _ = writeln!(
        out,
        "profile: {} trace(s), {} site(s), {} suggestion(s)",
        report.traces,
        report.sites.len(),
        report.suggestions.len()
    );
    if report.suggestions.is_empty() {
        out.push_str("no wasteful persistency patterns detected\n");
        return out;
    }

    let shown = report.top(top);
    let site_w = shown.iter().map(|s| s.site.len()).max().unwrap_or(4).max(4);
    let _ = writeln!(out, "\ntop {} of {}:", shown.len(), report.suggestions.len());
    let _ = writeln!(
        out,
        "{:>4}  {:>8}  {:<17} {:<site_w$}  {:>6}  {:>8}",
        "rank", "score", "kind", "site", "count", "wasted B"
    );
    for s in shown {
        let _ = writeln!(
            out,
            "{:>4}  {:>8}  {:<17} {:<site_w$}  {:>6}  {:>8}",
            s.rank,
            s.score,
            s.kind.code(),
            s.site,
            s.count,
            s.wasted_bytes
        );
    }

    out.push_str("\nper-site drill-down:\n");
    for site in &report.sites {
        let key = site.site();
        let d = &site.ops;
        let _ = writeln!(
            out,
            "{key} — {} write(s), {} flush(es), {} fence(s), {} log(s)",
            d.writes, d.flushes, d.fences, d.logs
        );
        for (code, n) in &site.warns {
            let _ = writeln!(out, "  warn {code} x{n}");
        }
        for s in report.at_site(&key) {
            let _ = writeln!(out, "  #{} {}: {}", s.rank, s.kind.code(), s.detail);
        }
    }
    out
}

/// Renders the `(kind, site)` deltas between two advisor reports —
/// regressions (score up or newly appeared) first, improvements last,
/// unchanged pairs omitted. `source` names the new input.
#[must_use]
pub fn render_advisor_diff(old: &AdvisorReport, new: &AdvisorReport, source: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "pmtest-advise diff: {source}");
    let _ = writeln!(
        out,
        "old: {} trace(s), {} suggestion(s); new: {} trace(s), {} suggestion(s)",
        old.traces,
        old.suggestions.len(),
        new.traces,
        new.suggestions.len()
    );
    let entries = diff(old, new);
    if entries.is_empty() {
        out.push_str("no change in wasteful persistency patterns\n");
        return out;
    }
    let side = |v: &Option<(u64, u64, u64)>| match v {
        Some((count, wasted, score)) => format!("{count} x / {wasted} B / score {score}"),
        None => "absent".to_owned(),
    };
    for e in &entries {
        let verdict = match (e.old.is_none(), e.new.is_none()) {
            (true, _) => "NEW",
            (_, true) => "fixed",
            _ if e.score_delta() > 0 => "worse",
            _ => "better",
        };
        let _ = writeln!(
            out,
            "{:>+6}  {:<6} {:<17} {}: {} -> {}",
            e.score_delta(),
            verdict,
            e.kind.code(),
            e.site,
            side(&e.old),
            side(&e.new)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wasteful_program() -> Program {
        Program::from_text(
            "dialect x86\n\
             write 0 64\n\
             flush 0 64\n\
             flush 0 64\n\
             fence\n\
             fence\n",
        )
        .expect("valid program")
    }

    #[test]
    fn profile_program_finds_planted_waste() {
        let report = profile_program(&wasteful_program());
        assert_eq!(report.traces, 1);
        let kinds: Vec<_> = report.suggestions.iter().map(|s| s.kind.code()).collect();
        assert!(kinds.contains(&"flush_coalescing"), "{kinds:?}");
        assert!(kinds.contains(&"redundant_fence"), "{kinds:?}");
    }

    #[test]
    fn render_has_table_and_drilldown() {
        let report = profile_program(&wasteful_program());
        let render = render_advisor(&report, "demo", 10);
        assert!(render.starts_with("pmtest-advise: demo\n"), "{render}");
        assert!(render.contains("rank"), "{render}");
        assert!(render.contains("per-site drill-down"), "{render}");
        assert!(render.contains("flush_coalescing"), "{render}");
    }

    #[test]
    fn diff_render_marks_fixed_and_new() {
        let old = profile_program(&wasteful_program());
        let fixed = Program::from_text("dialect x86\nwrite 0 64\nflush 0 64\nfence\n")
            .expect("valid program");
        let new = profile_program(&fixed);
        let render = render_advisor_diff(&old, &new, "demo");
        assert!(render.contains("fixed"), "{render}");
        assert!(!render.contains("NEW"), "{render}");
    }
}
