//! Loading diagnosis bundles back into replayable traces.
//!
//! A bundle's `step` lines carry each entry as a corpus-dialect op token
//! (`write 0 8`, `tx_commit`, …) plus its `file:line` source location, so
//! the original trace window reconstructs exactly and the interval
//! inference re-runs deterministically.

use std::collections::HashMap;
use std::sync::Arc;

use pmtest_core::{HopsModel, PersistencyModel, X86Model};
use pmtest_interval::ByteRange;
use pmtest_obs::bundle::validate_bundle;
use pmtest_obs::json::{self, JsonValue};
use pmtest_trace::{Event, SourceLoc, Trace};

/// A diagnosis bundle reconstructed from its JSON-lines form.
#[derive(Debug)]
pub struct LoadedBundle {
    /// Persistency model named by the header (`x86` or `hops`).
    pub model: String,
    /// Capture reason from the header (`error` or `manual`).
    pub reason: String,
    /// Trace id from the header.
    pub trace_id: u64,
    /// The recorded window, rebuilt as a replayable trace.
    pub trace: Trace,
}

/// The checking model for a bundle header's model name.
///
/// # Errors
///
/// Unknown model names are an error — a bundle from a custom model cannot
/// be re-inferred here.
pub fn model_from_name(name: &str) -> Result<Arc<dyn PersistencyModel>, String> {
    match name {
        "x86" => Ok(Arc::new(X86Model::new())),
        "hops" => Ok(Arc::new(HopsModel::new())),
        other => Err(format!("unknown persistency model {other:?}")),
    }
}

/// Parses a `file:line` location, interning the file name (locations borrow
/// `&'static str`; a CLI loads a handful of files, so the leak is bounded).
///
/// # Errors
///
/// The text must contain a `:` with a `u32` after it.
pub fn parse_loc(s: &str) -> Result<SourceLoc, String> {
    let (file, line) = s.rsplit_once(':').ok_or_else(|| format!("location {s:?} has no line"))?;
    let line: u32 = line.parse().map_err(|_| format!("location {s:?} has a bad line number"))?;
    Ok(SourceLoc::new(intern(file), line))
}

fn intern(file: &str) -> &'static str {
    use std::sync::Mutex;
    use std::sync::OnceLock;
    static INTERNED: OnceLock<Mutex<HashMap<String, &'static str>>> = OnceLock::new();
    let mut map = INTERNED.get_or_init(|| Mutex::new(HashMap::new())).lock().unwrap();
    if let Some(&s) = map.get(file) {
        return s;
    }
    let leaked: &'static str = Box::leak(file.to_owned().into_boxed_str());
    map.insert(file.to_owned(), leaked);
    leaked
}

/// Parses one corpus-dialect op token (the format `pmtest_core::op_token`
/// emits) back into an [`Event`].
///
/// # Errors
///
/// Unknown mnemonics and malformed operands are errors.
pub fn parse_op(token: &str) -> Result<Event, String> {
    let mut parts = token.split_whitespace();
    let head = parts.next().ok_or("empty op token")?;
    let mut num = |what: &str| -> Result<u64, String> {
        parts
            .next()
            .ok_or_else(|| format!("op {token:?}: missing {what}"))?
            .parse::<u64>()
            .map_err(|_| format!("op {token:?}: bad {what}"))
    };
    let mut range = |what: &str| -> Result<ByteRange, String> {
        let addr = num(&format!("{what} addr"))?;
        let len = num(&format!("{what} len"))?;
        Ok(ByteRange::with_len(addr, len))
    };
    let event = match head {
        "write" => Event::Write(range("write")?),
        "flush" => Event::Flush(range("flush")?),
        "fence" => Event::Fence,
        "ofence" => Event::OFence,
        "dfence" => Event::DFence,
        "tx_begin" => Event::TxBegin,
        "tx_commit" => Event::TxEnd,
        "tx_add" => Event::TxAdd(range("tx_add")?),
        "check_persist" => Event::IsPersist(range("check_persist")?),
        "check_ordered" => {
            Event::IsOrderedBefore(range("check_ordered first")?, range("check_ordered second")?)
        }
        "tx_checker_start" => Event::TxCheckerStart,
        "tx_checker_end" => Event::TxCheckerEnd,
        "exclude" => Event::Exclude(range("exclude")?),
        "include" => Event::Include(range("include")?),
        other => return Err(format!("unknown op mnemonic {other:?}")),
    };
    if let Some(extra) = parts.next() {
        return Err(format!("op {token:?}: trailing operand {extra:?}"));
    }
    Ok(event)
}

/// Parses and schema-validates a bundle, rebuilding the recorded window as
/// a trace.
///
/// # Errors
///
/// Schema violations (via `pmtest_obs::bundle::validate_bundle`) and op /
/// location parse failures.
pub fn load_bundle(text: &str) -> Result<LoadedBundle, String> {
    validate_bundle(text)?;
    let mut model = String::new();
    let mut reason = String::new();
    let mut trace_id = 0u64;
    let mut steps: Vec<(Event, SourceLoc)> = Vec::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let doc = json::parse(line).map_err(|e| format!("{e}"))?;
        match doc.get("kind").and_then(JsonValue::as_str) {
            Some("header") => {
                model = doc.get("model").and_then(JsonValue::as_str).unwrap_or("").to_owned();
                reason = doc.get("reason").and_then(JsonValue::as_str).unwrap_or("").to_owned();
                trace_id = doc.get("trace_id").and_then(JsonValue::as_f64).unwrap_or(0.0) as u64;
            }
            Some("step") => {
                let op = doc.get("op").and_then(JsonValue::as_str).ok_or("step without op")?;
                let loc = doc.get("loc").and_then(JsonValue::as_str).ok_or("step without loc")?;
                steps.push((parse_op(op)?, parse_loc(loc)?));
            }
            _ => {}
        }
    }
    let mut trace = Trace::new(trace_id);
    for (event, loc) in steps {
        trace.push(event.at(loc));
    }
    Ok(LoadedBundle { model, reason, trace_id, trace })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_tokens_round_trip() {
        for event in [
            Event::Write(ByteRange::with_len(0, 8)),
            Event::Flush(ByteRange::with_len(16, 32)),
            Event::Fence,
            Event::OFence,
            Event::DFence,
            Event::TxBegin,
            Event::TxEnd,
            Event::TxAdd(ByteRange::with_len(0, 8)),
            Event::IsPersist(ByteRange::with_len(0, 8)),
            Event::IsOrderedBefore(ByteRange::with_len(0, 8), ByteRange::with_len(64, 8)),
            Event::TxCheckerStart,
            Event::TxCheckerEnd,
            Event::Exclude(ByteRange::with_len(8, 8)),
            Event::Include(ByteRange::with_len(8, 8)),
        ] {
            let token = pmtest_core::op_token(&event);
            assert_eq!(parse_op(&token).unwrap(), event, "round-trip {token}");
        }
        assert!(parse_op("write 0").is_err());
        assert!(parse_op("warble 0 8").is_err());
        assert!(parse_op("fence 1").is_err());
    }

    #[test]
    fn locs_parse_and_intern() {
        let a = parse_loc("difftest:4").unwrap();
        assert_eq!(a.file(), "difftest");
        assert_eq!(a.line(), 4);
        let b = parse_loc("difftest:9").unwrap();
        assert!(std::ptr::eq(a.file().as_ptr(), b.file().as_ptr()), "file names interned");
        assert!(parse_loc("nofile").is_err());
        assert!(parse_loc("x:y").is_err());
    }
}
