//! The annotated epoch/interval timeline renderer.
//!
//! One row per trace entry, one column per epoch. A write row carries its
//! persist-interval bar: `[===]` once the interval closed, `[==>` while it
//! is still open at the end of the trace (i.e. the write is not guaranteed
//! durable). Fences render as horizontal dividers showing the epoch
//! transition. Checker rows mark the epoch they executed in with `?` and
//! are annotated `<- pass` or `<- FAIL <code>`; the culprit write of the
//! firing (first FAIL) diagnostic is highlighted with `<- culprit`.

use std::fmt::Write as _;

use pmtest_core::{op_token, Diag, PersistencyModel, Severity, TraceChecker};
use pmtest_interval::ByteRange;
use pmtest_trace::{Event, SourceLoc, Trace};

/// Interval attribution for one write row, updated after every replayed
/// step while the shadow memory still credits the row's source location.
struct WriteRow {
    entry_index: usize,
    loc: SourceLoc,
    range: ByteRange,
    /// `(begin, end)` of the persist interval; `end == None` = still open.
    interval: Option<(u64, Option<u64>)>,
    /// Set once the shadow stops attributing any segment of `range` to this
    /// write (it was overwritten); the last observed interval is kept.
    frozen: bool,
}

fn is_checker(event: &Event) -> bool {
    matches!(event, Event::IsPersist(_) | Event::IsOrderedBefore(..) | Event::TxCheckerEnd)
}

fn fence_token(event: &Event) -> Option<&'static str> {
    match event {
        Event::Fence => Some("fence"),
        Event::OFence => Some("ofence"),
        Event::DFence => Some("dfence"),
        _ => None,
    }
}

/// Replays `trace` against `model` and renders the annotated timeline.
/// `source` names the input in the first output line.
#[must_use]
pub fn render_trace(trace: &Trace, model: &dyn PersistencyModel, source: &str) -> String {
    // ---- replay, tracking per-write interval attribution ----------------
    let mut checker = TraceChecker::new(model);
    let mut rows: Vec<WriteRow> = Vec::new();
    let mut epochs_after: Vec<u64> = Vec::with_capacity(trace.len());
    for (i, entry) in trace.entries().iter().enumerate() {
        if let Event::Write(range) = entry.event {
            rows.push(WriteRow {
                entry_index: i,
                loc: entry.loc,
                range,
                interval: None,
                frozen: false,
            });
        }
        checker.process(entry);
        let shadow = checker.shadow();
        epochs_after.push(shadow.timestamp());
        for row in rows.iter_mut().filter(|r| !r.frozen) {
            let segs: Vec<_> = shadow
                .persist_intervals(row.range)
                .into_iter()
                .filter(|(_, _, wl)| *wl == Some(row.loc))
                .collect();
            if segs.is_empty() {
                row.frozen = row.interval.is_some();
            } else {
                let begin = segs.iter().map(|(_, iv, _)| iv.start()).min().unwrap_or(0);
                let end = segs
                    .iter()
                    .map(|(_, iv, _)| iv.end())
                    .try_fold(0u64, |acc, e| e.map(|e| acc.max(e)));
                row.interval = Some((begin, end));
            }
        }
    }
    let diags = checker.finish();
    let firing = diags.iter().find(|d| d.severity() == Severity::Fail);
    let culprit = firing.and_then(|d| d.culprit);
    let epochs = epochs_after.last().copied().unwrap_or(0) + 1;

    // ---- layout ---------------------------------------------------------
    let entries = trace.entries();
    let opw = entries.iter().map(|e| op_token(&e.event).len()).max().unwrap_or(0).max("op".len());
    let locw = entries.iter().map(|e| e.loc.to_string().len()).max().unwrap_or(0).max("loc".len());
    let cellw = format!("epoch {}", epochs - 1).len() + 2;
    let prefixw = 4 + 2 + opw + 2 + locw + 2;

    let mut out = String::new();
    let _ = writeln!(out, "pmtest-explain: {source}");
    let _ = writeln!(
        out,
        "model {}, {} entries, epochs 0..{}",
        model.name(),
        entries.len(),
        epochs - 1
    );
    if let (Some(d), Some(c)) = (firing, culprit) {
        let _ = writeln!(out, "culprit: {c} ({} @ {})", d.kind.code(), d.loc);
    }
    out.push('\n');

    // Grid header: epoch columns.
    let mut header = format!("{:prefixw$}", "");
    for c in 0..epochs {
        let _ = write!(header, "|{:^cellw$}", format!("epoch {c}"));
    }
    header.push('|');
    out.push_str(header.trim_end());
    out.push('\n');

    // ---- rows -----------------------------------------------------------
    for (i, entry) in entries.iter().enumerate() {
        if let Some(tok) = fence_token(&entry.event) {
            let before = if i == 0 { 0 } else { epochs_after[i - 1] };
            let after = epochs_after[i];
            let label = format!(" -- [{i}] {tok} @ {}: epoch {before} -> {after} ", entry.loc);
            let width = prefixw + epochs as usize * (cellw + 1) + 1;
            let _ = writeln!(out, "{label:-<width$}");
            continue;
        }

        let op = op_token(&entry.event);
        let mut line = format!("{:>4}  {:<opw$}  {:<locw$}  ", format!("[{i}]"), op, entry.loc);
        let row = rows.iter().find(|r| r.entry_index == i);
        for c in 0..epochs {
            line.push('|');
            let cell = cell_text(row, entry, c, epochs, epochs_after[i], cellw);
            line.push_str(&cell);
        }
        line.push('|');

        // Annotations.
        let mut notes: Vec<String> = Vec::new();
        for d in diags.iter().filter(|d| d.loc == entry.loc) {
            let note = format!("<- {} {}", severity_label(d), d.kind.code());
            if !notes.contains(&note) {
                notes.push(note);
            }
        }
        if notes.is_empty() && is_checker(&entry.event) {
            notes.push("<- pass".to_owned());
        }
        if culprit == Some(entry.loc) {
            notes.push("<- culprit".to_owned());
        }
        if !notes.is_empty() {
            let _ = write!(line, "  {}", notes.join(" "));
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }

    // ---- diagnostics footer ---------------------------------------------
    if !diags.is_empty() {
        out.push('\n');
        out.push_str("diagnostics:\n");
        for d in &diags {
            let mut line = format!("  {} {} @ {}", severity_label(d), d.kind.code(), d.loc);
            if let Some(c) = d.culprit {
                let _ = write!(line, " culprit {c}");
            }
            let _ = writeln!(out, "{line}: {}", d.message);
        }
    }
    out
}

fn severity_label(d: &Diag) -> &'static str {
    match d.severity() {
        Severity::Fail => "FAIL",
        Severity::Warn => "warn",
    }
}

/// One epoch cell of a row: the interval bar for writes, a `?` marker at
/// the executing epoch for checkers, spaces otherwise.
fn cell_text(
    row: Option<&WriteRow>,
    entry: &pmtest_trace::Entry,
    c: u64,
    epochs: u64,
    entry_epoch: u64,
    cellw: usize,
) -> String {
    if let Some(WriteRow { interval: Some((begin, end)), .. }) = row {
        let covered = match end {
            Some(e) => c >= *begin && c <= *e,
            None => c >= *begin,
        };
        if covered {
            let mut cell: Vec<char> = vec!['='; cellw];
            if c == *begin {
                cell[0] = '[';
            }
            match end {
                Some(e) if c == *e => cell[cellw - 1] = ']',
                None if c == epochs - 1 => cell[cellw - 1] = '>',
                _ => {}
            }
            return cell.into_iter().collect();
        }
        return " ".repeat(cellw);
    }
    if is_checker(&entry.event) && c == entry_epoch {
        return format!("{:^cellw$}", "?");
    }
    " ".repeat(cellw)
}
